package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []struct {
		ch, eb, off, length int
	}{
		{0, 0, 64, 64},
		{0, 0, 0, 128},
		{1, 0, 0, 64},
		{3, 17, 4096, 1920},
		{255, MaxEBlocks - 1, MaxEBlockBytes - Align, Align},
		{7, 123, 0, MaxLPageBytes},
		{12, 42, 8*1024*1024 - 64, 64},
	}
	for _, c := range cases {
		a, err := Pack(c.ch, c.eb, c.off, c.length)
		if err != nil {
			t.Fatalf("Pack(%+v): %v", c, err)
		}
		if !a.IsValid() {
			t.Fatalf("Pack(%+v) produced invalid sentinel", c)
		}
		if a.Channel() != c.ch || a.EBlock() != c.eb || a.Offset() != c.off || a.Length() != c.length {
			t.Fatalf("roundtrip mismatch: got ch=%d eb=%d off=%d len=%d want %+v",
				a.Channel(), a.EBlock(), a.Offset(), a.Length(), c)
		}
		if a.End() != c.off+c.length {
			t.Fatalf("End() = %d, want %d", a.End(), c.off+c.length)
		}
	}
}

func TestPackRejectsSentinelCollision(t *testing.T) {
	// channel 0, eblock 0, offset 0, length Align packs to raw zero.
	if _, err := Pack(0, 0, 0, Align); err == nil {
		t.Fatal("expected error for sentinel-colliding encoding")
	}
}

func TestPackValidation(t *testing.T) {
	bad := []struct {
		name                string
		ch, eb, off, length int
	}{
		{"negative channel", -1, 0, 0, 128},
		{"channel too big", MaxChannels, 0, 0, 128},
		{"negative eblock", 0, -1, 0, 128},
		{"eblock too big", 0, MaxEBlocks, 0, 128},
		{"negative offset", 0, 0, -64, 128},
		{"unaligned offset", 0, 0, 63, 128},
		{"offset too big", 0, 0, MaxEBlockBytes, 128},
		{"zero length", 0, 0, 0, 0},
		{"negative length", 0, 0, 0, -64},
		{"unaligned length", 0, 0, 0, 100},
		{"length too big", 0, 0, 0, MaxLPageBytes + Align},
	}
	for _, c := range bad {
		if _, err := Pack(c.ch, c.eb, c.off, c.length); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestZeroIsInvalid(t *testing.T) {
	var a PhysAddr
	if a.IsValid() {
		t.Fatal("zero PhysAddr must be invalid")
	}
	if a.String() != "phys(invalid)" {
		t.Fatalf("unexpected String: %q", a.String())
	}
}

func TestPackUnpackQuick(t *testing.T) {
	f := func(ch uint8, eb uint32, offU, lenU uint32) bool {
		eblock := int(eb % MaxEBlocks)
		off := int(offU%(1<<offBits)) * Align
		length := (int(lenU%(1<<lenBits)) + 1) * Align
		a, err := Pack(int(ch), eblock, off, length)
		if err != nil {
			// Only the sentinel collision may fail here.
			return ch == 0 && eblock == 0 && off == 0 && length == Align
		}
		return a.Channel() == int(ch) && a.EBlock() == eblock &&
			a.Offset() == off && a.Length() == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressOrderingWithinEBlock(t *testing.T) {
	// Within one EBLOCK, higher offsets compare greater as raw words when
	// lengths are equal — the property the GC monotonic scan relies on is
	// on offsets, but sanity-check Offset ordering here.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		o1 := rng.Intn(1<<offBits) * Align
		o2 := rng.Intn(1<<offBits) * Align
		if o1 == o2 {
			continue
		}
		a1 := MustPack(2, 5, o1, 128)
		a2 := MustPack(2, 5, o2, 128)
		if (o1 < o2) != (a1.Offset() < a2.Offset()) {
			t.Fatalf("offset ordering broken: %d %d", o1, o2)
		}
		if !a1.SameEBlock(a2) {
			t.Fatal("SameEBlock false for same eblock")
		}
	}
}

func TestSameEBlock(t *testing.T) {
	a := MustPack(1, 2, 0, 64)
	b := MustPack(1, 3, 0, 64)
	c := MustPack(2, 2, 0, 64)
	if a.SameEBlock(b) || a.SameEBlock(c) {
		t.Fatal("SameEBlock should be false across eblocks/channels")
	}
}

func TestAlignHelpers(t *testing.T) {
	if AlignUp(0) != 0 || AlignUp(1) != 64 || AlignUp(64) != 64 || AlignUp(65) != 128 {
		t.Fatal("AlignUp wrong")
	}
	if !IsAligned(0) || !IsAligned(128) || IsAligned(100) {
		t.Fatal("IsAligned wrong")
	}
}

func TestPageTypeString(t *testing.T) {
	types := map[PageType]string{
		PageUser: "user", PageMap: "map", PageSmallMap: "smallmap",
		PageSummary: "summary", PageSession: "session",
	}
	for ty, want := range types {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
		if !ty.Valid() {
			t.Errorf("%v should be valid", ty)
		}
	}
	if PageInvalid.Valid() || PageType(200).Valid() {
		t.Error("invalid types reported valid")
	}
}
