// Package addr defines logical page identities and packed physical flash
// addresses for the ELEOS controller.
//
// Following §III-B of the paper, a physical address fits in 8 bytes and
// identifies the channel, EBLOCK, start offset and length of an LPAGE.
// LPAGEs are aligned to 64 bytes (§III-A), so offsets and lengths are stored
// in 64-byte units.
package addr

import (
	"errors"
	"fmt"
)

// Align is the LPAGE alignment unit. All LPAGE offsets and lengths are
// multiples of Align; the smallest LPAGE is Align bytes (§III-A).
const Align = 64

// LPID uniquely identifies a logical page (§III-A).
type LPID uint64

// PageType classifies the content of a stored LPAGE. The type is kept in
// EBLOCK metadata along with the LPID (§IV-A1) so that garbage collection
// and recovery know which table a relocated page belongs to.
type PageType uint8

const (
	// PageInvalid is the zero value; never stored.
	PageInvalid PageType = iota
	// PageUser is an application LPAGE written through the batch interface.
	PageUser
	// PageMap is a mapping-table page (indexed by the small table).
	PageMap
	// PageSmallMap is a small-table page (indexed by the tiny table).
	PageSmallMap
	// PageSummary is an EBLOCK-summary-table page (indexed by the locator).
	PageSummary
	// PageSession is a session-table snapshot page.
	PageSession
)

func (t PageType) String() string {
	switch t {
	case PageUser:
		return "user"
	case PageMap:
		return "map"
	case PageSmallMap:
		return "smallmap"
	case PageSummary:
		return "summary"
	case PageSession:
		return "session"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(t))
	}
}

// Valid reports whether t is a storable page type.
func (t PageType) Valid() bool { return t > PageInvalid && t <= PageSession }

// Bit widths of the packed physical-address fields.
const (
	channelBits = 8
	eblockBits  = 20
	offBits     = 18 // offset within EBLOCK, in Align units (max 16 MB EBLOCK)
	lenBits     = 18 // LPAGE length, in Align units (max 16 MB LPAGE)

	// MaxChannels is the largest channel count addressable by PhysAddr.
	MaxChannels = 1 << channelBits
	// MaxEBlocks is the largest per-channel EBLOCK count addressable.
	MaxEBlocks = 1 << eblockBits
	// MaxEBlockBytes is the largest EBLOCK size addressable.
	MaxEBlockBytes = (1 << offBits) * Align
	// MaxLPageBytes is the largest LPAGE length addressable.
	MaxLPageBytes = (1 << lenBits) * Align
)

// PhysAddr is a packed 8-byte physical flash address: channel, EBLOCK,
// byte offset within the EBLOCK, and LPAGE length. The zero value is the
// invalid ("unmapped") address: a real address always has a non-zero
// length, because the smallest LPAGE is Align bytes.
type PhysAddr uint64

// Errors returned by Pack.
var (
	ErrChannelRange = errors.New("addr: channel out of range")
	ErrEBlockRange  = errors.New("addr: eblock out of range")
	ErrOffsetRange  = errors.New("addr: offset out of range or unaligned")
	ErrLengthRange  = errors.New("addr: length out of range, zero, or unaligned")
)

// Pack builds a PhysAddr from its components. Offset and length are in
// bytes and must be multiples of Align; length must be non-zero.
func Pack(channel, eblock int, offset, length int) (PhysAddr, error) {
	if channel < 0 || channel >= MaxChannels {
		return 0, fmt.Errorf("%w: %d", ErrChannelRange, channel)
	}
	if eblock < 0 || eblock >= MaxEBlocks {
		return 0, fmt.Errorf("%w: %d", ErrEBlockRange, eblock)
	}
	if offset < 0 || offset%Align != 0 || offset/Align >= 1<<offBits {
		return 0, fmt.Errorf("%w: %d", ErrOffsetRange, offset)
	}
	if length <= 0 || length%Align != 0 || length/Align > 1<<lenBits {
		return 0, fmt.Errorf("%w: %d", ErrLengthRange, length)
	}
	v := uint64(channel)
	v = v<<eblockBits | uint64(eblock)
	v = v<<offBits | uint64(offset/Align)
	// Store length-1 in Align units so a maximal length still fits and a
	// zero raw word remains the invalid sentinel only when length would be
	// zero; we instead guarantee invalidity by requiring length >= Align,
	// so the packed word is non-zero whenever length-1 units plus any other
	// field is non-zero. To keep "zero word == invalid" strictly true, the
	// length field stores length/Align (1..2^lenBits), and we reject the
	// single colliding encoding channel=0, eblock=0, offset=0, length=0.
	v = v<<lenBits | uint64(length/Align-1)
	a := PhysAddr(v)
	if a == 0 && length == Align {
		// channel 0, eblock 0, offset 0, length 64 packs to the zero word.
		// That location is inside the reserved checkpoint area and never
		// holds an LPAGE, so reject it rather than alias the sentinel.
		return 0, fmt.Errorf("%w: encoding collides with invalid sentinel", ErrOffsetRange)
	}
	return a, nil
}

// MustPack is Pack for statically-valid inputs; it panics on error.
func MustPack(channel, eblock int, offset, length int) PhysAddr {
	a, err := Pack(channel, eblock, offset, length)
	if err != nil {
		panic(err)
	}
	return a
}

// IsValid reports whether a is a real address (non-sentinel).
func (a PhysAddr) IsValid() bool { return a != 0 }

// Channel returns the flash channel index.
func (a PhysAddr) Channel() int {
	return int(uint64(a) >> (eblockBits + offBits + lenBits) & (1<<channelBits - 1))
}

// EBlock returns the EBLOCK index within the channel.
func (a PhysAddr) EBlock() int {
	return int(uint64(a) >> (offBits + lenBits) & (1<<eblockBits - 1))
}

// Offset returns the byte offset of the LPAGE within its EBLOCK.
func (a PhysAddr) Offset() int {
	return int(uint64(a)>>lenBits&(1<<offBits-1)) * Align
}

// Length returns the LPAGE length in bytes.
func (a PhysAddr) Length() int {
	return (int(uint64(a)&(1<<lenBits-1)) + 1) * Align
}

// End returns the byte offset one past the LPAGE within its EBLOCK.
func (a PhysAddr) End() int { return a.Offset() + a.Length() }

// SameEBlock reports whether a and b address the same EBLOCK.
func (a PhysAddr) SameEBlock(b PhysAddr) bool {
	return a.Channel() == b.Channel() && a.EBlock() == b.EBlock()
}

func (a PhysAddr) String() string {
	if !a.IsValid() {
		return "phys(invalid)"
	}
	return fmt.Sprintf("phys(ch=%d eb=%d off=%d len=%d)", a.Channel(), a.EBlock(), a.Offset(), a.Length())
}

// AlignUp rounds n up to the next multiple of Align.
func AlignUp(n int) int { return (n + Align - 1) &^ (Align - 1) }

// IsAligned reports whether n is a multiple of Align.
func IsAligned(n int) bool { return n%Align == 0 }
