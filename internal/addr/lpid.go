package addr

// LPIDs are partitioned into namespaces so that system-table pages
// (mapping-table pages, small-table pages, EBLOCK-summary pages, session
// snapshots) can be stored, relocated by GC, and logged exactly like user
// LPAGEs (§VI, §VIII). The top byte of an LPID carries the page type of a
// table page; user LPIDs keep a zero top byte.

const lpidTypeShift = 56

// MaxUserLPID is the largest LPID available to applications.
const MaxUserLPID LPID = 1<<lpidTypeShift - 1

// MakeTableLPID builds the LPID under which table page idx of type t is
// stored. t must be a table page type (not PageUser).
func MakeTableLPID(t PageType, idx uint64) LPID {
	return LPID(uint64(t)<<lpidTypeShift | idx&uint64(MaxUserLPID))
}

// TableType returns the table page type encoded in l, or PageUser when l is
// an application LPID.
func (l LPID) TableType() PageType {
	t := PageType(uint64(l) >> lpidTypeShift)
	if t == 0 {
		return PageUser
	}
	return t
}

// TableIndex returns the table page index encoded in l.
func (l LPID) TableIndex() uint64 { return uint64(l & MaxUserLPID) }

// IsUser reports whether l is an application LPID.
func (l LPID) IsUser() bool { return l.TableType() == PageUser }
