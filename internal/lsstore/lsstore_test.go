package lsstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"eleos/internal/blockftl"
	"eleos/internal/flash"
	"eleos/internal/nvme"
)

func newStore(t *testing.T, segKB int) (*Store, *nvme.Meter) {
	t.Helper()
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	// Use half the device as logical space (over-provisioning for the FTL).
	lbas := int(dev.Geometry().CapacityBytes() / 4096 / 2)
	ftl, err := blockftl.New(dev, 4096, lbas, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	meter := nvme.NewMeter(nvme.HighEnd())
	cfg := DefaultConfig()
	cfg.SegmentBytes = segKB << 10
	st, err := New(ftl, meter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, meter
}

func content(lpid, version uint64, size int) []byte {
	b := make([]byte, size)
	rng := rand.New(rand.NewSource(int64(lpid*31 + version)))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, _ := newStore(t, 64)
	want := content(1, 1, 1000)
	if err := s.Write(1, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read mismatch: %v", err)
	}
	// Also readable after the segment flushes.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err = s.Read(1)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatal("read after flush mismatch")
	}
}

func TestVariableSizesPacked(t *testing.T) {
	s, _ := newStore(t, 64)
	sizes := []int{1, 64, 777, 3000, 4096, 100}
	for i, sz := range sizes {
		if err := s.Write(uint64(i+1), content(uint64(i+1), 1, sz)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, sz := range sizes {
		got, err := s.Read(uint64(i + 1))
		if err != nil || !bytes.Equal(got, content(uint64(i+1), 1, sz)) {
			t.Fatalf("page %d mismatch: %v", i+1, err)
		}
	}
}

func TestBlockContextsPerSegment(t *testing.T) {
	s, m := newStore(t, 64)
	// Fill one 64 KB segment exactly: the flush is one range command whose
	// packets each become an SSD write context (§IX-C1 — the paper's 1 MB
	// buffer turns into 17 contexts; a 64 KB segment needs 2 packets).
	payload := 64<<10 - entryHeader - segHeaderBytes
	if err := s.Write(1, content(1, 1, payload)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	wantCtx := int64(nvme.Packets(64 << 10))
	if m.Commands != 1 || m.Contexts != wantCtx {
		t.Fatalf("commands=%d contexts=%d, want 1 and %d", m.Commands, m.Contexts, wantCtx)
	}
}

func TestSegmentContextsMatchPaperAt1MB(t *testing.T) {
	// The paper's exact number: a 1 MB buffer becomes 17 write contexts on
	// the block SSD.
	dev := flash.MustNewDevice(flash.Geometry{
		Channels: 8, EBlocksPerChannel: 16,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}, flash.Latency{})
	lbas := int(dev.Geometry().CapacityBytes() / 4096 / 2)
	ftl, err := blockftl.New(dev, 4096, lbas, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	meter := nvme.NewMeter(nvme.HighEnd())
	st, err := New(ftl, meter, DefaultConfig()) // 1 MB segments
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(1, content(1, 1, 1<<20-entryHeader-segHeaderBytes)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if meter.Contexts != 17 {
		t.Fatalf("contexts = %d, want the paper's 17", meter.Contexts)
	}
}

func TestOverwriteAndLiveAccounting(t *testing.T) {
	s, _ := newStore(t, 64)
	for v := uint64(1); v <= 5; v++ {
		if err := s.Write(9, content(9, v, 500)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Read(9)
	if err != nil || !bytes.Equal(got, content(9, 5, 500)) {
		t.Fatal("latest version lost")
	}
}

func TestCleaningMovesLivePages(t *testing.T) {
	s, _ := newStore(t, 64)
	// Write a cold page, then churn a hot one until cleaning must run.
	if err := s.Write(100, content(100, 1, 2000)); err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 4000; v++ {
		if err := s.Write(1, content(1, v, 3000)); err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SegmentsCleaned == 0 {
		t.Fatalf("cleaning never ran: %+v", st)
	}
	if st.GCBytesRead == 0 {
		t.Fatal("cleaning must read whole segments")
	}
	// Both pages still correct.
	got, err := s.Read(100)
	if err != nil || !bytes.Equal(got, content(100, 1, 2000)) {
		t.Fatal("cold page lost by cleaning")
	}
	got, err = s.Read(1)
	if err != nil || !bytes.Equal(got, content(1, 4000, 3000)) {
		t.Fatal("hot page wrong")
	}
	if st.PagesMoved == 0 {
		t.Fatal("expected live pages moved")
	}
}

func TestReadAmplificationOfCleaning(t *testing.T) {
	s, _ := newStore(t, 64)
	// Mostly-dead segments: cleaning reads far more than it moves.
	for v := uint64(1); v <= 500; v++ {
		if err := s.Write(1, content(1, v, 4000)); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Flush()
	st := s.Stats()
	if st.SegmentsCleaned == 0 {
		t.Skip("no cleaning triggered")
	}
	moved := st.PagesMoved * 4000
	if st.GCBytesRead <= moved*2 {
		t.Fatalf("expected high read amplification: read %d, moved %d bytes", st.GCBytesRead, moved)
	}
}

func TestErrors(t *testing.T) {
	s, _ := newStore(t, 64)
	if _, err := s.Read(404); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing page readable")
	}
	if err := s.Write(1, make([]byte, 65<<10)); !errors.Is(err, ErrTooLarge) {
		t.Fatal("oversized page accepted")
	}
	if err := s.Write(0, []byte{1}); err == nil {
		t.Fatal("lpid 0 accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	ftl, _ := blockftl.New(dev, 4096, 256, 0.1)
	m := nvme.NewMeter(nvme.HighEnd())
	if _, err := New(ftl, m, Config{SegmentBytes: 5000}); err == nil {
		t.Fatal("non-multiple segment accepted")
	}
	if _, err := New(ftl, m, Config{SegmentBytes: 1 << 20}); err == nil {
		t.Fatal("too-few-segments accepted")
	}
}

func TestChurnBeyondCapacityIntegrity(t *testing.T) {
	s, _ := newStore(t, 64)
	version := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 4000; i++ {
		lpid := uint64(rng.Intn(50) + 1)
		version[lpid]++
		if err := s.Write(lpid, content(lpid, version[lpid], 500+rng.Intn(2500))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	_ = s.Flush()
	for lpid, v := range version {
		got, err := s.Read(lpid)
		if err != nil {
			t.Fatalf("read %d: %v", lpid, err)
		}
		// Size varies per write; regenerate with the read length.
		if !bytes.Equal(got, content(lpid, v, len(got))) {
			t.Fatalf("lpid %d content wrong", lpid)
		}
	}
}

func TestMappingSnapshotsPersist(t *testing.T) {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	lbas := int(dev.Geometry().CapacityBytes() / 4096 / 2)
	ftl, err := blockftl.New(dev, 4096, lbas, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	meter := nvme.NewMeter(nvme.HighEnd())
	cfg := DefaultConfig()
	cfg.SegmentBytes = 64 << 10
	cfg.PersistMappingEvery = 2
	s, err := New(ftl, meter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		lpid := uint64(i%40 + 1)
		if err := s.Write(lpid, content(lpid, uint64(i), 2000)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.MappingSnapshots == 0 || st.SnapshotBytes == 0 {
		t.Fatalf("no mapping snapshots taken: %+v", st)
	}
	// Snapshots consume real log bandwidth: bytes written must exceed the
	// payload alone by at least the snapshot volume.
	payload := int64(600 * (2000 + 12))
	if st.BytesWritten < payload+st.SnapshotBytes/2 {
		t.Fatalf("snapshot I/O not visible: wrote %d, payload %d, snapshots %d",
			st.BytesWritten, payload, st.SnapshotBytes)
	}
	// User data still intact despite interleaved snapshots and cleaning.
	for lpid := uint64(1); lpid <= 40; lpid++ {
		got, err := s.Read(lpid)
		if err != nil {
			t.Fatalf("lpid %d: %v", lpid, err)
		}
		if len(got) != 2000 {
			t.Fatalf("lpid %d size %d", lpid, len(got))
		}
	}
	// Reserved LPIDs rejected for user writes.
	if err := s.Write(^uint64(0), []byte{1}); err == nil {
		t.Fatal("reserved lpid accepted")
	}
}

func TestHostRecoveryRebuildsMapping(t *testing.T) {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	lbas := int(dev.Geometry().CapacityBytes() / 4096 / 2)
	ftl, err := blockftl.New(dev, 4096, lbas, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	meter := nvme.NewMeter(nvme.HighEnd())
	cfg := DefaultConfig()
	cfg.SegmentBytes = 64 << 10
	s, err := New(ftl, meter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	version := map[uint64]uint64{}
	for i := 0; i < 500; i++ {
		lpid := uint64(i%30 + 1)
		version[lpid]++
		if err := s.Write(lpid, content(lpid, version[lpid], 1500)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// One more write left UNFLUSHED in the host buffer: lost at the crash.
	if err := s.Write(99, content(99, 1, 100)); err != nil {
		t.Fatal(err)
	}

	// Host crash: rebuild a store from the SSD alone.
	s2, err := Recover(ftl, nvme.NewMeter(nvme.HighEnd()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for lpid, v := range version {
		got, err := s2.Read(lpid)
		if err != nil {
			t.Fatalf("lpid %d lost in host recovery: %v", lpid, err)
		}
		if !bytes.Equal(got, content(lpid, v, 1500)) {
			t.Fatalf("lpid %d content wrong after recovery", lpid)
		}
	}
	// The buffered-only page is gone — host log structuring loses what was
	// not flushed (the burden ELEOS removes).
	if _, err := s2.Read(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unflushed page survived a host crash: %v", err)
	}
	// The recovered store keeps working: writes, cleaning, reads.
	for i := 0; i < 500; i++ {
		lpid := uint64(i%30 + 1)
		version[lpid]++
		if err := s2.Write(lpid, content(lpid, version[lpid], 1500)); err != nil {
			t.Fatalf("post-recovery write %d: %v", i, err)
		}
	}
	_ = s2.Flush()
	for lpid, v := range version {
		got, err := s2.Read(lpid)
		if err != nil || !bytes.Equal(got, content(lpid, v, 1500)) {
			t.Fatalf("lpid %d wrong after post-recovery churn: %v", lpid, err)
		}
	}
}

func TestHostRecoveryAfterCleaning(t *testing.T) {
	// Segments relocated by cleaning must still recover correctly (their
	// sequence numbers changed; latest position wins).
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	lbas := int(dev.Geometry().CapacityBytes() / 4096 / 2)
	ftl, _ := blockftl.New(dev, 4096, lbas, 0.15)
	meter := nvme.NewMeter(nvme.HighEnd())
	cfg := DefaultConfig()
	cfg.SegmentBytes = 64 << 10
	s, _ := New(ftl, meter, cfg)
	if err := s.Write(500, content(500, 1, 2000)); err != nil { // cold
		t.Fatal(err)
	}
	for v := uint64(1); v <= 4000; v++ { // hot churn forces cleaning
		if err := s.Write(1, content(1, v, 3000)); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Flush()
	if s.Stats().SegmentsCleaned == 0 {
		t.Skip("no cleaning happened")
	}
	s2, err := Recover(ftl, nvme.NewMeter(nvme.HighEnd()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Read(500)
	if err != nil || !bytes.Equal(got, content(500, 1, 2000)) {
		t.Fatalf("cold page wrong after clean+recover: %v", err)
	}
	got, err = s2.Read(1)
	if err != nil || !bytes.Equal(got, content(1, 4000, 3000)) {
		t.Fatalf("hot page wrong after clean+recover: %v", err)
	}
}
