// Package lsstore implements a host-based log-structured store in the
// style of LLAMA (§II-A), the paper's "Block" configuration for the
// Bw-tree: variable-size pages are packed into 1 MB segments in host
// memory and flushed to a conventional block-interface SSD one 4 KB block
// command at a time.
//
// Because the SSD exposes only blocks, the host must duplicate the log
// structuring the SSD already performs internally (§I): it keeps its own
// LPID→location mapping and runs its own garbage collection, organising
// segments as a circular log — the oldest segment (head) is cleaned by
// reading it back *in full*, parsing it to find still-live pages, and
// re-appending those at the tail (§IX-C2). That whole-segment read is the
// read amplification the paper measures in Fig. 10(c).
//
// Transport costs are charged to the supplied nvme.Meter: one command (and
// thus one SSD write context) per block, versus one per buffer for ELEOS.
package lsstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"eleos/internal/blockftl"
	"eleos/internal/nvme"
)

// Config tunes the store.
type Config struct {
	SegmentBytes   int     // host write buffer / cleaning unit (paper: 1 MB)
	GCFreeFraction float64 // clean when free segments fall below this fraction
	// HostParsePerByte is the host CPU cost of parsing a segment during
	// cleaning (charged to the meter's host resource).
	HostParsePerByte time.Duration
	// PersistMappingEvery, when non-zero, checkpoints the host mapping
	// table into the log every N flushed segments — the durability burden
	// §I charges host-based log structuring with ("the latest location
	// where the page has been written must be durable across system
	// crashes"). ELEOS needs no equivalent: its FTL mapping is durable in
	// the controller.
	PersistMappingEvery int
}

// DefaultConfig returns the paper's setup.
func DefaultConfig() Config {
	return Config{SegmentBytes: 1 << 20, GCFreeFraction: 0.1, HostParsePerByte: time.Nanosecond}
}

// Errors.
var (
	ErrNotFound  = errors.New("lsstore: page not found")
	ErrTooLarge  = errors.New("lsstore: page larger than a segment")
	ErrStoreFull = errors.New("lsstore: no free segments")
)

// Stats counts host-side log structuring work.
type Stats struct {
	PagesWritten     int64
	BytesWritten     int64 // segment bytes flushed to the SSD
	SegmentsFlushed  int64
	SegmentsCleaned  int64
	PagesMoved       int64
	GCBytesRead      int64 // whole-segment reads during cleaning
	MappingSnapshots int64
	SnapshotBytes    int64 // serialized host-mapping bytes written
}

const entryHeader = 12 // lpid u64 + len u32

// Each segment starts with a 16-byte header (magic, fill sequence, and —
// filled in at flush time — the payload end offset) so recovery can order
// segments and parse exactly the bytes this generation wrote, ignoring
// stale data from a previous use of the same blocks.
const (
	segMagic       = 0x4C535347 // "LSSG"
	segHeaderBytes = 16
)

// Mapping-snapshot chunks are stored under reserved LPIDs counting down
// from the top of the LPID space.
const mappingSnapshotLPID = ^uint64(0)

type location struct {
	seg, off, length int
}

type segState struct {
	inUse bool
	live  int    // live payload bytes
	seq   uint64 // fill sequence, for oldest-first cleaning
}

// Store is the host log-structured store. Safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	ftl   *blockftl.FTL
	meter *nvme.Meter
	cfg   Config

	blockBytes   int
	blocksPerSeg int
	numSegs      int

	mapping map[uint64]location
	segs    []segState
	seq     uint64

	cur        []byte // current segment accumulating in host memory
	curSeg     int    // -1 when none
	curOff     int
	cleaning   bool // re-entrancy guard: cleaning flushes the tail itself
	persisting bool // re-entrancy guard: snapshots flow through Write

	stats Stats
}

// New creates a store over the block FTL. The FTL's logical space is
// partitioned into segments.
func New(ftl *blockftl.FTL, meter *nvme.Meter, cfg Config) (*Store, error) {
	if cfg.SegmentBytes <= 0 || cfg.SegmentBytes%ftl.BlockBytes() != 0 {
		return nil, fmt.Errorf("lsstore: segment size %d must be a multiple of block size %d", cfg.SegmentBytes, ftl.BlockBytes())
	}
	blocksPerSeg := cfg.SegmentBytes / ftl.BlockBytes()
	numSegs := ftl.LBAs() / blocksPerSeg
	if numSegs < 3 {
		return nil, errors.New("lsstore: need at least 3 segments")
	}
	return &Store{
		ftl:          ftl,
		meter:        meter,
		cfg:          cfg,
		blockBytes:   ftl.BlockBytes(),
		blocksPerSeg: blocksPerSeg,
		numSegs:      numSegs,
		mapping:      make(map[uint64]location),
		segs:         make([]segState, numSegs),
		curSeg:       -1,
	}, nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Write appends one variable-size page to the log. The page becomes
// persistent when its segment flushes (Flush forces it).
func (s *Store) Write(lpid uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lpid == 0 {
		return errors.New("lsstore: lpid 0 is reserved")
	}
	if lpid >= mappingSnapshotLPID-64 {
		return errors.New("lsstore: lpid reserved for mapping snapshots")
	}
	return s.writeLocked(lpid, data)
}

func (s *Store) writeLocked(lpid uint64, data []byte) error {
	need := entryHeader + len(data)
	if need > s.cfg.SegmentBytes-segHeaderBytes {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	if s.curSeg >= 0 && s.curOff+need > s.cfg.SegmentBytes {
		if err := s.flushLocked(); err != nil {
			return err
		}
	}
	if s.curSeg < 0 {
		if err := s.openSegmentLocked(); err != nil {
			return err
		}
	}
	// Entry: self-describing header so cleaning can parse the segment.
	binary.LittleEndian.PutUint64(s.cur[s.curOff:], lpid)
	binary.LittleEndian.PutUint32(s.cur[s.curOff+8:], uint32(len(data)))
	copy(s.cur[s.curOff+entryHeader:], data)
	s.installLocked(lpid, location{seg: s.curSeg, off: s.curOff, length: len(data)})
	s.curOff += need
	s.stats.PagesWritten++
	return nil
}

// installLocked points lpid at loc, decrementing the old segment's live
// bytes.
func (s *Store) installLocked(lpid uint64, loc location) {
	if old, ok := s.mapping[lpid]; ok {
		s.segs[old.seg].live -= entryHeader + old.length
	}
	s.mapping[lpid] = loc
	s.segs[loc.seg].live += entryHeader + loc.length
}

func (s *Store) openSegmentLocked() error {
	for i := 0; i < s.numSegs; i++ {
		if !s.segs[i].inUse {
			s.seq++
			s.segs[i] = segState{inUse: true, seq: s.seq}
			s.curSeg = i
			if s.cur == nil {
				s.cur = make([]byte, s.cfg.SegmentBytes)
			}
			for j := range s.cur {
				s.cur[j] = 0
			}
			binary.LittleEndian.PutUint32(s.cur[0:], segMagic)
			binary.LittleEndian.PutUint64(s.cur[4:], s.seq)
			s.curOff = segHeaderBytes
			return nil
		}
	}
	return ErrStoreFull
}

// Flush writes the current partial segment to the SSD, block at a time.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.curSeg < 0 || s.curOff <= segHeaderBytes {
		return nil
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	base := s.curSeg * s.blocksPerSeg
	binary.LittleEndian.PutUint32(s.cur[12:], uint32(s.curOff)) // payload end
	nBlocks := (s.curOff + s.blockBytes - 1) / s.blockBytes
	// The host issues the whole segment as one range write; the transport
	// splits it into packets, and the block SSD — which "does not know any
	// logical relationship among the packets" — creates one write context
	// per packet (§IX-C1: 17 contexts per 1 MB).
	if err := s.ftl.WriteRange(base, s.cur[:nBlocks*s.blockBytes]); err != nil {
		return err
	}
	s.meter.WriteCommand(nBlocks*s.blockBytes, 0, nvme.Packets(nBlocks*s.blockBytes))
	s.stats.SegmentsFlushed++
	s.stats.BytesWritten += int64(nBlocks * s.blockBytes)
	s.curSeg = -1
	s.curOff = 0
	if !s.cleaning {
		s.maybeCleanLocked()
	}
	if s.cfg.PersistMappingEvery > 0 && !s.persisting && !s.cleaning &&
		s.stats.SegmentsFlushed%int64(s.cfg.PersistMappingEvery) == 0 {
		if err := s.persistMappingLocked(); err != nil {
			return err
		}
	}
	return nil
}

// persistMappingLocked checkpoints the host mapping table by appending its
// serialized image to the log under reserved LPIDs (LLAMA-style). Old
// snapshots become garbage automatically once the new chunks install.
func (s *Store) persistMappingLocked() error {
	s.persisting = true
	defer func() { s.persisting = false }()
	// Serialize: lpid u64 | seg u32 | off u32 | len u32 per entry.
	blob := make([]byte, 0, len(s.mapping)*20)
	for lpid, loc := range s.mapping {
		if lpid >= mappingSnapshotLPID-64 {
			continue // do not snapshot prior snapshots
		}
		var rec [20]byte
		binary.LittleEndian.PutUint64(rec[0:], lpid)
		binary.LittleEndian.PutUint32(rec[8:], uint32(loc.seg))
		binary.LittleEndian.PutUint32(rec[12:], uint32(loc.off))
		binary.LittleEndian.PutUint32(rec[16:], uint32(loc.length))
		blob = append(blob, rec[:]...)
	}
	// Chunk into segment-sized pieces under descending reserved LPIDs.
	chunk := s.cfg.SegmentBytes / 2
	for i := 0; len(blob) > 0; i++ {
		n := chunk
		if n > len(blob) {
			n = len(blob)
		}
		if err := s.writeLocked(mappingSnapshotLPID-uint64(i), blob[:n]); err != nil {
			return err
		}
		s.stats.SnapshotBytes += int64(n)
		blob = blob[n:]
	}
	s.stats.MappingSnapshots++
	return nil
}

// Read returns the latest version of a page.
func (s *Store) Read(lpid uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.mapping[lpid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, lpid)
	}
	return s.readLocked(loc, true)
}

func (s *Store) readLocked(loc location, charge bool) ([]byte, error) {
	// Pages still in the host write buffer are served from memory.
	if loc.seg == s.curSeg {
		out := make([]byte, loc.length)
		copy(out, s.cur[loc.off+entryHeader:loc.off+entryHeader+loc.length])
		return out, nil
	}
	base := loc.seg * s.blocksPerSeg
	first := loc.off / s.blockBytes
	last := (loc.off + entryHeader + loc.length - 1) / s.blockBytes
	buf := make([]byte, 0, (last-first+1)*s.blockBytes)
	for b := first; b <= last; b++ {
		blk, err := s.ftl.ReadBlock(base + b)
		if err != nil {
			return nil, err
		}
		if charge {
			s.meter.ReadCommand(s.blockBytes)
		}
		buf = append(buf, blk...)
	}
	lo := loc.off - first*s.blockBytes + entryHeader
	return append([]byte(nil), buf[lo:lo+loc.length]...), nil
}

// FreeSegments returns the number of unused segments.
func (s *Store) FreeSegments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.freeSegmentsLocked()
}

func (s *Store) freeSegmentsLocked() int {
	n := 0
	for i := range s.segs {
		if !s.segs[i].inUse {
			n++
		}
	}
	return n
}

func (s *Store) maybeCleanLocked() {
	min := int(s.cfg.GCFreeFraction * float64(s.numSegs))
	if min < 2 {
		min = 2
	}
	for s.freeSegmentsLocked() < min {
		if !s.cleanOneLocked() {
			return
		}
	}
}

// Recover rebuilds a store from the SSD after a host crash: every segment
// is self-describing (a sequence-numbered header followed by
// LPID+length-framed entries), so scanning segments in fill order and
// replaying their entries reproduces the mapping — the LLAMA-style host
// recovery whose burden the paper's design removes. Pages still in the
// host's volatile write buffer at the crash are lost, as in any host
// log-structured store.
func Recover(ftl *blockftl.FTL, meter *nvme.Meter, cfg Config) (*Store, error) {
	s, err := New(ftl, meter, cfg)
	if err != nil {
		return nil, err
	}
	type segHit struct {
		seg int
		seq uint64
	}
	var hits []segHit
	for seg := 0; seg < s.numSegs; seg++ {
		blk, err := ftl.ReadBlock(seg * s.blocksPerSeg)
		if err != nil {
			continue // never written
		}
		meter.ReadCommand(s.blockBytes)
		if binary.LittleEndian.Uint32(blk[0:]) != segMagic {
			continue
		}
		hits = append(hits, segHit{seg: seg, seq: binary.LittleEndian.Uint64(blk[4:])})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].seq < hits[j].seq })
	for _, h := range hits {
		// Whole-segment read, exactly like cleaning.
		base := h.seg * s.blocksPerSeg
		seg := make([]byte, 0, cfg.SegmentBytes)
		for b := 0; b < s.blocksPerSeg; b++ {
			blk, err := ftl.ReadBlock(base + b)
			if err != nil {
				blk = make([]byte, s.blockBytes)
			}
			meter.ReadCommand(s.blockBytes)
			seg = append(seg, blk...)
		}
		s.segs[h.seg] = segState{inUse: true, seq: h.seq}
		if h.seq > s.seq {
			s.seq = h.seq
		}
		end := int(binary.LittleEndian.Uint32(seg[12:]))
		if end < segHeaderBytes || end > len(seg) {
			end = len(seg)
		}
		off := segHeaderBytes
		for off+entryHeader <= end {
			lpid := binary.LittleEndian.Uint64(seg[off:])
			length := int(binary.LittleEndian.Uint32(seg[off+8:]))
			if lpid == 0 && length == 0 {
				break
			}
			if length < 0 || off+entryHeader+length > end {
				break
			}
			s.installLocked(lpid, location{seg: h.seg, off: off, length: length})
			off += entryHeader + length
		}
	}
	return s, nil
}

// CleanNow forces one cleaning round (benchmarks). Returns whether a
// segment was cleaned.
func (s *Store) CleanNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cleanOneLocked()
}

// cleanOneLocked cleans the oldest flushed segment: reads it back in full,
// parses it, re-appends live pages at the tail, and frees it.
func (s *Store) cleanOneLocked() bool {
	if s.cleaning {
		return false
	}
	s.cleaning = true
	defer func() { s.cleaning = false }()
	victim, victimSeq := -1, uint64(0)
	for i := range s.segs {
		if !s.segs[i].inUse || i == s.curSeg {
			continue
		}
		if victim < 0 || s.segs[i].seq < victimSeq {
			victim, victimSeq = i, s.segs[i].seq
		}
	}
	if victim < 0 {
		return false
	}
	// Whole-segment read: the host cannot know which bytes are live
	// without parsing (§IX-C2) — this is Block's read amplification.
	base := victim * s.blocksPerSeg
	seg := make([]byte, 0, s.cfg.SegmentBytes)
	for b := 0; b < s.blocksPerSeg; b++ {
		blk, err := s.ftl.ReadBlock(base + b)
		if err != nil {
			// Unwritten tail blocks of a partial segment read as absent.
			blk = make([]byte, s.blockBytes)
		}
		s.meter.ReadCommand(s.blockBytes)
		seg = append(seg, blk...)
	}
	s.stats.GCBytesRead += int64(len(seg))
	s.meter.HostCompute(time.Duration(len(seg)) * s.cfg.HostParsePerByte)

	// Parse and re-append live pages, bounded by the header's payload end
	// (stale bytes from a previous generation of these blocks lie beyond).
	end := int(binary.LittleEndian.Uint32(seg[12:]))
	if end < segHeaderBytes || end > len(seg) {
		end = len(seg)
	}
	off := segHeaderBytes
	type moved struct {
		lpid uint64
		data []byte
	}
	var live []moved
	for off+entryHeader <= end {
		lpid := binary.LittleEndian.Uint64(seg[off:])
		length := int(binary.LittleEndian.Uint32(seg[off+8:]))
		if lpid == 0 && length == 0 {
			break // zero fill: end of segment content
		}
		if length < 0 || off+entryHeader+length > end {
			break
		}
		if loc, ok := s.mapping[lpid]; ok && loc.seg == victim && loc.off == off {
			live = append(live, moved{lpid: lpid, data: append([]byte(nil), seg[off+entryHeader:off+entryHeader+length]...)})
		}
		off += entryHeader + length
	}
	// Free the victim before re-appending so the tail has room.
	s.segs[victim] = segState{}
	s.stats.SegmentsCleaned++
	for _, m := range live {
		need := entryHeader + len(m.data)
		if s.curSeg >= 0 && s.curOff+need > s.cfg.SegmentBytes {
			if err := s.flushLocked(); err != nil {
				return false
			}
		}
		if s.curSeg < 0 {
			if err := s.openSegmentLocked(); err != nil {
				return false
			}
		}
		binary.LittleEndian.PutUint64(s.cur[s.curOff:], m.lpid)
		binary.LittleEndian.PutUint32(s.cur[s.curOff+8:], uint32(len(m.data)))
		copy(s.cur[s.curOff+entryHeader:], m.data)
		s.installLocked(m.lpid, location{seg: s.curSeg, off: s.curOff, length: len(m.data)})
		s.curOff += need
		s.stats.PagesMoved++
	}
	return true
}
