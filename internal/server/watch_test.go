package server_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/netproto"
	"eleos/internal/server"
)

// TestWatchStatsLifecycle is the acceptance test for the streaming
// telemetry path: subscribe, receive N periodic pushes, unsubscribe
// cleanly — and the connection must remain usable for ordinary requests
// afterwards.
func TestWatchStatsLifecycle(t *testing.T) {
	ctl, _, _, addrStr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(addrStr, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Background traffic so successive pushes actually differ.
	sess, err := cl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	stopWrites := make(chan struct{})
	var wg sync.WaitGroup
	wcl, err := client.Dial(addrStr, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer wcl.Close()
	wsess, err := wcl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopWrites:
				return
			default:
			}
			_ = wsess.Flush([]core.LPage{{LPID: addr.LPID(uint64(i%9) + 1), Data: pageData(i, 900)}})
		}
	}()

	var got []netproto.StatsFull
	err = cl.WatchStats(context.Background(), 20*time.Millisecond, func(sf netproto.StatsFull) error {
		got = append(got, sf)
		if len(got) >= 5 {
			return errEnough
		}
		return nil
	})
	close(stopWrites)
	wg.Wait()
	if !errors.Is(err, errEnough) {
		t.Fatalf("WatchStats = %v, want errEnough", err)
	}
	if len(got) != 5 {
		t.Fatalf("received %d pushes, want 5", len(got))
	}
	for i, sf := range got {
		if sf.Health.EBlocksTotal == 0 {
			t.Fatalf("push %d carries an empty health census", i)
		}
		if sf.Snap.Label("gc.policy") == "" {
			t.Fatalf("push %d is missing the gc.policy label", i)
		}
	}
	// Counters are monotonic across pushes (same registry, same server).
	for i := 1; i < len(got); i++ {
		if got[i].Snap.Counter("server.requests") < got[i-1].Snap.Counter("server.requests") {
			t.Fatalf("push %d went backwards", i)
		}
	}

	// The stream's connection is still a request/reply connection.
	if err := sess.Flush([]core.LPage{{LPID: 1, Data: pageData(0, 600)}}); err != nil {
		t.Fatalf("flush after unsubscribe: %v", err)
	}
	sf, err := cl.StatsFull()
	if err != nil {
		t.Fatalf("stats_full after unsubscribe: %v", err)
	}
	if sf.Snap.Counter("server.watch_pushes") < 5 {
		t.Fatalf("server.watch_pushes = %d, want >= 5", sf.Snap.Counter("server.watch_pushes"))
	}
	_ = ctl
}

var errEnough = errors.New("test: enough pushes")

// TestWatchStatsCtxCancel verifies ctx cancellation ends the stream with
// the clean unsubscribe handshake even when no push is imminent (long
// interval), without tearing the connection down.
func TestWatchStatsCtxCancel(t *testing.T) {
	_, _, _, addrStr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(addrStr, fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- cl.WatchStats(ctx, 30*time.Second, func(netproto.StatsFull) error { return nil })
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("WatchStats = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WatchStats did not return after ctx cancel")
	}
	// Clean handshake: the same client keeps working.
	if _, err := cl.StatsFull(); err != nil {
		t.Fatalf("stats_full after cancel: %v", err)
	}
}

// TestWatchStatsDrainAborts verifies Drain ends an active stream: the
// blocked subscriber is poked loose, the watcher goroutine is reaped,
// and Drain completes within its deadline.
func TestWatchStatsDrainAborts(t *testing.T) {
	_, _, srv, addrStr, done := startServer(t, server.Config{})
	cl, err := client.Dial(addrStr, fastOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	streamErr := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		first := true
		streamErr <- cl.WatchStats(context.Background(), 20*time.Millisecond, func(netproto.StatsFull) error {
			if first {
				first = false
				close(started)
			}
			return nil
		})
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("stream never delivered a push")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	select {
	case err := <-streamErr:
		if err == nil {
			t.Fatal("stream survived drain")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after drain")
	}
	select {
	case err := <-done:
		if !errors.Is(err, server.ErrDraining) {
			t.Fatalf("Serve = %v, want ErrDraining", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

// TestWatchStatsSlowConsumer verifies a subscriber that never drains its
// pushes cannot stall the server: once the socket buffers fill, the push
// write deadline fires and the server closes that connection, while
// other connections keep flowing.
func TestWatchStatsSlowConsumer(t *testing.T) {
	_, _, _, addrStr, _ := startServer(t, server.Config{IOTimeout: 300 * time.Millisecond})

	// A raw subscriber that sends watch_stats and then never reads again.
	conn, err := net.Dial("tcp", addrStr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A tiny receive buffer keeps the kernel from absorbing pushes on the
	// peer's behalf, so the server's write deadline fires quickly.
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	if err := netproto.WriteFrame(conn, netproto.MsgWatchStats, netproto.WatchStatsBody(netproto.MinWatchIntervalMS)); err != nil {
		t.Fatal(err)
	}
	typ, _, err := netproto.ReadFrame(conn, 0)
	if err != nil || typ != netproto.MsgRespWatchStats {
		t.Fatalf("subscribe reply: type 0x%02x err %v", typ, err)
	}
	// From here the peer is comatose: no reads, ever.

	// A healthy client on another connection must stay responsive the
	// whole time the slow consumer is wedging its own socket.
	cl, err := client.Dial(addrStr, fastOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess, err := cl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	killed := false
	for time.Now().Before(deadline) {
		if err := sess.Flush([]core.LPage{{LPID: 1, Data: pageData(1, 800)}}); err != nil {
			t.Fatalf("healthy client stalled: %v", err)
		}
		sf, err := cl.StatsFull()
		if err != nil {
			t.Fatalf("healthy client stats: %v", err)
		}
		// The wedged subscriber eventually loses its connection; active
		// conns settle back to just the healthy client's.
		if sf.Snap.Gauge("server.active_conns") <= 1 {
			killed = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !killed {
		t.Fatal("slow consumer was never disconnected")
	}
}
