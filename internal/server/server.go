// Package server is the network front-end of the controller: eleosd's
// TCP listener. Hosts speak the netproto framing over stream sockets —
// the deployment shape of the paper's testbed (§IX-A1), where writers
// reach the controller over NVMe-oF/TCP rather than linking it
// in-process.
//
// Each accepted connection gets one goroutine that decodes frames and
// feeds Controller.WriteBatchWire, so concurrent connections drive the
// parallel write pipeline exactly like in-process writers (DESIGN.md
// §4.1): their flash programs overlap across channels and their commit
// records share forced log pages. The front-end adds the service
// concerns the library cannot: a connection limit, backpressure by
// bounded in-flight batch bytes, per-request read/write deadlines, and a
// graceful drain (stop accepting, finish in-flight requests, checkpoint,
// close).
//
// Idempotence across reconnects is the session table's job: a client
// that retries flush_batch with the same (sid, wsn) after a dropped
// connection gets the Stale verdict server-side and is re-acknowledged
// with the session's highest applied WSN — the batch is not re-applied.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eleos/internal/addr"
	"eleos/internal/bufpool"
	"eleos/internal/core"
	"eleos/internal/metrics"
	"eleos/internal/netproto"
	"eleos/internal/qos"
	"eleos/internal/trace"
)

// Config tunes the front-end.
type Config struct {
	// MaxConns caps concurrently served connections; further accepts are
	// answered with CodeBusy and closed. Default 256.
	MaxConns int
	// MaxFrameBytes bounds one request frame. Default
	// netproto.DefaultMaxFrameBytes.
	MaxFrameBytes int
	// MaxInflightBytes bounds the batch bytes admitted into the
	// controller across all connections; flush requests beyond it block
	// on the socket (TCP backpressure) until space frees. Default 64 MB.
	MaxInflightBytes int64
	// IdleTimeout closes a connection that sends no request for this
	// long. Default 2 minutes.
	IdleTimeout time.Duration
	// IOTimeout bounds reading one request body and writing one reply.
	// Default 30 seconds.
	IOTimeout time.Duration
	// SlowBatchThreshold, when positive, logs one structured line for
	// every flush_batch that takes longer than this end to end, with the
	// batch's trace ID and its per-stage breakdown pulled from the flight
	// recorder. Zero (the default) disables the log.
	SlowBatchThreshold time.Duration
	// Coalesce opts into server-side batch coalescing: small flushes
	// from different connections merge into one controller batch (see
	// CoalesceConfig). Off by default.
	Coalesce CoalesceConfig
	// QoS opts into per-tenant admission control: token-bucket rate
	// limits and inflight-byte budgets keyed by the session's tenant
	// tag, charged before the global inflight semaphore and before the
	// coalescer (so merged batches never share budgets). Off by
	// default.
	QoS qos.Config
	// LegacyCopyPath restores the pre-pooling request loop — allocating
	// frame reads, copying batch decode, per-reply body allocations —
	// as the baseline arm of A/B benchmarks (benchrunner hotpath). Not
	// for production use.
	LegacyCopyPath bool
}

func (c Config) withDefaults() Config {
	if c.MaxConns == 0 {
		c.MaxConns = 256
	}
	if c.MaxFrameBytes == 0 {
		c.MaxFrameBytes = netproto.DefaultMaxFrameBytes
	}
	if c.MaxInflightBytes == 0 {
		c.MaxInflightBytes = 64 << 20
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 30 * time.Second
	}
	return c
}

// Stats counts front-end activity (monotonic; read with Stats()).
type Stats struct {
	Accepted      int64 // connections served
	Rejected      int64 // connections refused at the limit
	Requests      int64 // frames dispatched
	Batches       int64 // flush_batch requests applied or deduplicated
	BadFrames     int64 // connections dropped on malformed input
	Errors        int64 // RespError frames sent
	BytesIn       int64 // request frame bytes
	BytesOut      int64 // response frame bytes
	PeakInflight  int64 // high-water mark of admitted batch bytes
	DrainedConns  int64 // connections closed by drain
	ActiveConns   int64 // currently served connections
	InflightBytes int64 // currently admitted batch bytes
}

// ErrDraining is returned by Serve when the listener was closed by Drain,
// and to requests that arrive while the server is draining.
var ErrDraining = errors.New("server: draining")

// srvMetrics holds the front-end's instrument handles, resolved from the
// controller's registry in New. The counters double-book the mutex-held
// Stats fields into the shared registry so one stats_full snapshot
// covers every layer; request_ns times frame-read completion to reply
// written, per request.
type srvMetrics struct {
	on bool

	accepted  *metrics.Counter
	rejected  *metrics.Counter
	requests  *metrics.Counter
	batches   *metrics.Counter
	errors    *metrics.Counter
	badFrames *metrics.Counter
	bytesIn   *metrics.Counter
	bytesOut  *metrics.Counter

	watchPushes *metrics.Counter

	activeConns   *metrics.Gauge
	inflightBytes *metrics.Gauge

	requestNS *metrics.Histogram
}

func newSrvMetrics(reg *metrics.Registry) srvMetrics {
	return srvMetrics{
		on: reg.Enabled(),

		accepted:  reg.Counter("server.accepted"),
		rejected:  reg.Counter("server.rejected"),
		requests:  reg.Counter("server.requests"),
		batches:   reg.Counter("server.batches"),
		errors:    reg.Counter("server.errors"),
		badFrames: reg.Counter("server.bad_frames"),
		bytesIn:   reg.Counter("server.bytes_in"),
		bytesOut:  reg.Counter("server.bytes_out"),

		watchPushes: reg.Counter("server.watch_pushes"),

		activeConns:   reg.Gauge("server.active_conns"),
		inflightBytes: reg.Gauge("server.inflight_bytes"),

		requestNS: reg.Histogram("server.request_ns", metrics.DurationBounds()),
	}
}

// Server serves one controller over TCP.
type Server struct {
	ctl *core.Controller
	cfg Config
	met srvMetrics
	trc *trace.Recorder // the controller's flight recorder (nil-safe)
	co  *coalescer      // nil unless Config.Coalesce.Enabled
	qos *qos.Controller // nil-safe; disabled unless Config.QoS.Enabled

	connSeq atomic.Uint64 // connection serials for trace attribution

	// slowLogf sinks slow-batch lines; tests override it to capture them.
	slowLogf func(format string, args ...any)

	mu       sync.Mutex
	cond     *sync.Cond // waiters on inflight-byte capacity
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	stats    Stats
}

// New wraps a controller in a network front-end. The server registers
// its instruments into the controller's metrics registry, so the
// stats_full command exports one snapshot spanning server, core, wal and
// flash.
func New(ctl *core.Controller, cfg Config) *Server {
	s := &Server{ctl: ctl, cfg: cfg.withDefaults(), conns: make(map[net.Conn]struct{})}
	s.cond = sync.NewCond(&s.mu)
	s.met = newSrvMetrics(ctl.Metrics())
	s.trc = ctl.Tracer()
	s.slowLogf = log.Printf
	if s.cfg.Coalesce.Enabled {
		s.co = newCoalescer(ctl, s.cfg.Coalesce)
	}
	if s.cfg.QoS.Enabled {
		s.qos = qos.New(s.cfg.QoS, ctl.Metrics())
	}
	return s
}

// ListenAndServe listens on addr and serves until Drain or a listener
// error.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Drain closes it. It returns
// ErrDraining after a drain, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrDraining
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrDraining
			}
			return err
		}
		s.mu.Lock()
		switch {
		case s.draining:
			s.mu.Unlock()
			s.refuse(conn, netproto.CodeShuttingDown, "server draining")
		case int(s.stats.ActiveConns) >= s.cfg.MaxConns:
			s.stats.Rejected++
			s.mu.Unlock()
			s.met.rejected.Inc()
			s.refuse(conn, netproto.CodeBusy, "connection limit reached")
		default:
			s.conns[conn] = struct{}{}
			s.stats.Accepted++
			s.stats.ActiveConns++
			s.mu.Unlock()
			s.met.accepted.Inc()
			s.met.activeConns.Add(1)
			go s.handle(conn)
		}
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Stats snapshots the front-end counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// QoSStats snapshots per-tenant admission accounting (nil when QoS is
// disabled). The chaos harness checks it balances exactly after kills.
func (s *Server) QoSStats() map[string]qos.TenantStats { return s.qos.Stats() }

// refuse answers an over-limit connection with one error frame and
// closes it; the deadline keeps a stalled peer from pinning the
// goroutine.
func (s *Server) refuse(conn net.Conn, code uint16, msg string) {
	_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
	_ = netproto.WriteFrame(conn, netproto.MsgRespError, netproto.ErrorBody(code, msg))
	_ = conn.Close()
}

// Drain gracefully shuts the server down: stop accepting, unblock idle
// connections, let requests already being processed finish and be
// answered, then checkpoint the controller so a subsequent Open replays
// (almost) nothing. If ctx expires first the remaining connections are
// closed hard; the checkpoint still runs. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	ln := s.ln
	// Nudge connections parked in their idle read; a handler mid-request
	// is unaffected (its deadline is managed per phase) and finishes.
	for conn := range s.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.cond.Broadcast() // release backpressure waiters into ErrDraining
	s.mu.Unlock()
	s.qos.Drain() // abort per-tenant admission waiters too
	if ln != nil {
		_ = ln.Close()
	}
	if already {
		return nil
	}

	idle := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.stats.ActiveConns > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		<-idle
	}
	if err := s.ctl.Checkpoint(); err != nil && !errors.Is(err, core.ErrCrashed) {
		return fmt.Errorf("server: drain checkpoint: %w", err)
	}
	return ctx.Err()
}

// --- connection handling ---------------------------------------------------

// connState is one connection's reusable hot-path machinery: the frame
// writer with its scratch, the reply-body scratch the dispatch cases
// append into, the zero-copy page views of the coalesced flush path,
// and the connection's coalescing seat. One goroutine owns all of it —
// except while a stats watcher is active, when the watcher goroutine
// shares the socket's write side under wmu.
type connState struct {
	fw      *netproto.FrameWriter
	scratch []byte       // reply bodies are appended here
	views   []core.LPage // batch views for coalesced flushes
	pf      pendingFlush // reusable coalescing seat

	// wmu serializes frame writes (and the write deadline) between the
	// request/reply loop and the watch_stats push goroutine. Uncontended
	// unless the connection subscribed to watch_stats.
	wmu          sync.Mutex
	watch        *watcher
	pendingWatch uint32 // granted interval (ms) to start after the reply
}

// watcher is one connection's active watch_stats subscription.
type watcher struct {
	stop chan struct{}
	done chan struct{}
}

// stopWatcher tears down the connection's push goroutine, if any, and
// waits for it to finish (so its final push, if one was in flight, is on
// the wire before the caller writes anything else). Safe to call with no
// watcher active.
func (cn *connState) stopWatcher() {
	if cn.watch == nil {
		return
	}
	close(cn.watch.stop)
	<-cn.watch.done
	cn.watch = nil
}

// u64 builds a one-u64 reply body in the connection's scratch.
func (cn *connState) u64(v uint64) []byte {
	cn.scratch = netproto.AppendU64(cn.scratch[:0], v)
	return cn.scratch
}

func (s *Server) handle(conn net.Conn) {
	// The connection serial is the span root: every request event on this
	// connection carries it in SID, bracketed by conn_open/conn_close
	// instants, so a flight-recorder dump groups per connection even for
	// requests that never name a session.
	cid := s.connSeq.Add(1)
	s.trc.Emit(trace.KConnOpen, 0, cid, 0, 0, 0)
	cn := &connState{fw: netproto.NewFrameWriter(conn), pf: pendingFlush{done: make(chan struct{}, 1)}}
	defer func() {
		s.trc.Emit(trace.KConnClose, 0, cid, 0, 0, 0)
		// Close before reaping the watcher: a push blocked on a stalled
		// peer fails immediately once the socket is gone, so the reap
		// never waits out a write deadline.
		_ = conn.Close()
		cn.stopWatcher()
		s.mu.Lock()
		delete(s.conns, conn)
		s.stats.ActiveConns--
		if s.draining {
			s.stats.DrainedConns++
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		s.met.activeConns.Add(-1)
	}()
	legacy := s.cfg.LegacyCopyPath
	for {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
		if cn.watch != nil {
			// A watching connection is expected to sit quiet between
			// pushes; suspend the idle timeout. Drain's read-deadline poke
			// (an absolute past deadline) still overrides this and aborts
			// the stream.
			_ = conn.SetReadDeadline(time.Time{})
		} else {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		var (
			typ  byte
			body []byte
			fbuf *bufpool.Buf
			err  error
		)
		if legacy {
			typ, body, err = netproto.ReadFrame(conn, s.cfg.MaxFrameBytes)
		} else {
			typ, body, fbuf, err = netproto.ReadFrameBuf(conn, s.cfg.MaxFrameBytes)
		}
		if err != nil {
			// EOF and deadline pokes are routine; anything else malformed
			// costs the peer its connection.
			if !isExpectedReadErr(err) {
				s.mu.Lock()
				s.stats.BadFrames++
				s.mu.Unlock()
				s.met.badFrames.Inc()
			}
			return
		}
		// Request and inbound-byte accounting happen before dispatch, the
		// reply latency and outbound bytes after the reply is written: a
		// stats_full snapshot therefore includes the request that fetched
		// it in requests/bytes_in but not in bytes_out/request_ns.
		var t0 time.Time
		if s.met.on || s.trc.Enabled() {
			t0 = time.Now()
		}
		inBytes := int64(5 + len(body))
		s.mu.Lock()
		s.stats.Requests++
		s.stats.BytesIn += inBytes
		s.mu.Unlock()
		s.met.requests.Inc()
		s.met.bytesIn.Add(inBytes)
		rtyp, rhead, rtail := s.dispatch(cn, typ, body)
		// Every borrower of the request's bytes (batch decode, the group
		// write's page views, the flash programs) finished inside
		// dispatch; the frame goes back to the pool before the reply I/O.
		if fbuf != nil {
			fbuf.Release()
		}
		cn.wmu.Lock()
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
		if legacy {
			if rtail != nil {
				rhead = append(append(make([]byte, 0, len(rhead)+len(rtail)), rhead...), rtail...)
				rtail = nil
			}
			err = netproto.WriteFrame(conn, rtyp, rhead)
		} else {
			err = cn.fw.WriteFrame2(rtyp, rhead, rtail)
		}
		cn.wmu.Unlock()
		if err != nil {
			return
		}
		if cn.pendingWatch != 0 {
			// The subscription starts only after its grant reply is on the
			// wire, so the client never sees a push ahead of the grant.
			w := &watcher{stop: make(chan struct{}), done: make(chan struct{})}
			cn.watch = w
			go s.watchLoop(conn, cn, cn.pendingWatch, w.stop, w.done)
			cn.pendingWatch = 0
		}
		outBytes := int64(5 + len(rhead) + len(rtail))
		s.mu.Lock()
		s.stats.BytesOut += outBytes
		s.mu.Unlock()
		s.met.bytesOut.Add(outBytes)
		if s.met.on {
			s.met.requestNS.ObserveDuration(time.Since(t0))
		}
		s.trc.Span(trace.KRequest, 0, cid, 0, t0, int64(typ), int64(len(body)))
	}
}

// isExpectedReadErr separates routine connection endings (peer closed,
// idle/drain deadline, torn frame on a killed conn) from malformed input.
func isExpectedReadErr(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// dispatch executes one request and builds its reply frame as a
// (head, tail) pair: small reply bodies are appended into cn's scratch
// and returned as head, while page payloads travel as tail so the frame
// writer can emit them with writev instead of copying (the pooled
// zero-copy read_page reply). The caller consumes both before the next
// dispatch.
func (s *Server) dispatch(cn *connState, typ byte, body []byte) (rtyp byte, head, tail []byte) {
	switch typ {
	case netproto.MsgOpenSession:
		tenant, priority, err := netproto.ParseOpenSession(body)
		if err != nil {
			return s.badRequest(cn, err)
		}
		sid, err := s.ctl.OpenSessionTenant(tenant, priority)
		if err != nil {
			return s.errFrame(cn, err)
		}
		return netproto.MsgRespOpenSession, cn.u64(sid), nil

	case netproto.MsgCloseSession:
		sid, err := netproto.ParseU64(body)
		if err != nil {
			return s.badRequest(cn, err)
		}
		if err := s.ctl.CloseSession(sid); err != nil {
			return s.errFrame(cn, err)
		}
		return netproto.MsgRespCloseSession, nil, nil

	case netproto.MsgFlushBatch:
		sid, wsn, wire, err := netproto.ParseFlush(body)
		if err != nil {
			return s.badRequest(cn, err)
		}
		return s.flush(cn, sid, wsn, 0, wire)

	case netproto.MsgFlushBatchTraced:
		traceID, sid, wsn, wire, err := netproto.ParseFlushTraced(body)
		if err != nil {
			return s.badRequest(cn, err)
		}
		return s.flush(cn, sid, wsn, traceID, wire)

	case netproto.MsgRead:
		lpid, err := netproto.ParseU64(body)
		if err != nil {
			return s.badRequest(cn, err)
		}
		return s.readOne(cn, addr.LPID(lpid))

	case netproto.MsgReadBatch:
		lpids, err := netproto.ParseReadBatch(body)
		if err != nil {
			return s.badRequest(cn, err)
		}
		return s.readBatch(cn, lpids)

	case netproto.MsgStats:
		raw, err := json.Marshal(s.ctl.Stats())
		if err != nil {
			return s.errFrame(cn, err)
		}
		return netproto.MsgRespStats, raw, nil

	case netproto.MsgStatsFull:
		return netproto.MsgRespStatsFull, netproto.EncodeStatsFull(s.statsPayload()), nil

	case netproto.MsgWatchStats:
		ms, err := netproto.ParseWatchStats(body)
		if err != nil {
			return s.badRequest(cn, err)
		}
		if cn.watch != nil || cn.pendingWatch != 0 {
			return s.errCode(cn, netproto.CodeBadRequest, "watch_stats already active on this connection")
		}
		cn.pendingWatch = netproto.ClampWatchInterval(ms)
		return netproto.MsgRespWatchStats, netproto.WatchStatsBody(cn.pendingWatch), nil

	case netproto.MsgWatchStatsStop:
		if len(body) != 0 {
			return s.badRequest(cn, fmt.Errorf("watch_stats_stop: want empty body, have %d bytes", len(body)))
		}
		// Reap the pusher before replying: any final push is on the wire
		// ahead of the stop ack, so the client drains deterministically.
		cn.stopWatcher()
		cn.pendingWatch = 0
		return netproto.MsgRespWatchStatsStop, nil, nil

	case netproto.MsgTraceDump:
		return netproto.MsgRespTraceDump, netproto.EncodeTraceDump(s.ctl.TraceDump()), nil

	default:
		return s.badRequest(cn, fmt.Errorf("unknown message type 0x%02x", typ))
	}
}

// statsPayload assembles one stats_full body's worth of telemetry: the
// cross-layer instrument snapshot, the exporter labels, and the device
// health census taken alongside it.
func (s *Server) statsPayload() netproto.StatsFull {
	snap := s.ctl.MetricsSnapshot()
	snap.Labels = append(snap.Labels, metrics.Label{Key: "gc.policy", Value: s.ctl.GCPolicyName()})
	return netproto.StatsFull{Snap: snap, Health: s.ctl.DeviceHealth()}
}

// watchLoop is one connection's watch_stats pusher: every interval it
// snapshots the registry + health census and writes a stats push frame,
// sharing the socket's write side with the reply loop under cn.wmu. A
// peer that cannot drain pushes within IOTimeout loses the connection —
// the write deadline fires, the socket is closed, and the reader
// unblocks into its teardown path. Snapshot and encode happen outside
// wmu so a slow peer never holds the lock hostage longer than one
// kernel write.
func (s *Server) watchLoop(conn net.Conn, cn *connState, intervalMS uint32, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(time.Duration(intervalMS) * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		body := netproto.EncodeStatsFull(s.statsPayload())
		cn.wmu.Lock()
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
		err := netproto.WriteFrame(conn, netproto.MsgStatsPush, body)
		cn.wmu.Unlock()
		if err != nil {
			_ = conn.Close()
			return
		}
		out := int64(5 + len(body))
		s.mu.Lock()
		s.stats.BytesOut += out
		s.mu.Unlock()
		s.met.bytesOut.Add(out)
		s.met.watchPushes.Inc()
	}
}

// flush admits the batch under the in-flight byte bound, applies it, and
// acknowledges the session's highest applied WSN (which, for a retried
// stale WSN, is the dedup re-ACK of §III-A2). traceID 0 (a plain
// flush_batch, or a traced one from a client that declined to pick an
// ID) gets a server-assigned ID so the slow-batch log and the flight
// recorder can still name the batch.
func (s *Server) flush(cn *connState, sid, wsn, traceID uint64, wire []byte) (byte, []byte, []byte) {
	if traceID == 0 && s.trc.Enabled() {
		traceID = s.trc.NewTraceID()
	}
	n := int64(len(wire))
	// Per-tenant admission first: the tenant pays its own rate tokens
	// and budget bytes before touching shared capacity, so a throttled
	// tenant queues in its own lane instead of holding the global
	// semaphore. sid 0 and unknown sessions fall to the default tenant;
	// the unknown-session error still surfaces from the write below.
	tenant, prio := "", uint8(0)
	if s.qos.Enabled() && sid != 0 {
		if tn, p, err := s.ctl.SessionTenant(sid); err == nil {
			tenant, prio = tn, p
		}
	}
	if err := s.qos.Admit(tenant, prio, n); err != nil {
		return s.errCode(cn, netproto.CodeShuttingDown, err.Error())
	}
	if err := s.admit(n); err != nil {
		s.qos.Release(tenant, n)
		return s.errCode(cn, netproto.CodeShuttingDown, err.Error())
	}
	var t0 time.Time
	if s.cfg.SlowBatchThreshold > 0 {
		t0 = time.Now()
	}
	var err error
	switch {
	case s.co != nil && n <= s.co.cfg.ThresholdBytes:
		err = s.coalescedFlush(cn, sid, wsn, traceID, wire)
	case s.cfg.LegacyCopyPath:
		// The pre-pooling shape: copying decode, then the page-slice
		// write path.
		var pages []core.LPage
		if pages, err = core.DecodeBatch(wire); err == nil {
			err = s.ctl.WriteBatchTraced(sid, wsn, traceID, pages)
		}
	default:
		err = s.ctl.WriteBatchWireTraced(sid, wsn, traceID, wire)
	}
	s.release(n)
	s.qos.Release(tenant, n)
	if s.cfg.SlowBatchThreshold > 0 {
		if elapsed := time.Since(t0); elapsed > s.cfg.SlowBatchThreshold {
			s.logSlowBatch(traceID, sid, wsn, elapsed, err)
		}
	}
	if err != nil {
		return s.errFrame(cn, err)
	}
	s.mu.Lock()
	s.stats.Batches++
	s.mu.Unlock()
	s.met.batches.Inc()
	var highest uint64
	if sid != 0 {
		if highest, err = s.ctl.SessionHighestWSN(sid); err != nil {
			return s.errFrame(cn, err)
		}
	}
	return netproto.MsgRespFlushBatch, cn.u64(highest), nil
}

// readOne serves read_page. The stored length is looked up first (a
// short mapping-table probe) so the page bytes can be admitted under
// the same in-flight byte bound as writes before flash is touched; the
// reply then travels as a vectored tail, so a large page is never
// copied into the frame writer's scratch.
func (s *Server) readOne(cn *connState, lpid addr.LPID) (byte, []byte, []byte) {
	n, err := s.ctl.Length(lpid)
	if err != nil {
		return s.errFrame(cn, err)
	}
	if err := s.admit(int64(n)); err != nil {
		return s.errCode(cn, netproto.CodeShuttingDown, err.Error())
	}
	data, err := s.ctl.Read(lpid)
	s.release(int64(n))
	if err != nil {
		return s.errFrame(cn, err)
	}
	return netproto.MsgRespRead, nil, data
}

// readBatch serves read_batch: admit the total stored bytes, then let
// the core scatter-gather the found pages across flash channels.
// Unmapped LPIDs are not an error at this layer — they come back as
// per-entry not-found statuses, so one missing page cannot fail a
// 1000-page batch.
func (s *Server) readBatch(cn *connState, lpids64 []uint64) (byte, []byte, []byte) {
	lpids := make([]addr.LPID, len(lpids64))
	var total int64
	for i, v := range lpids64 {
		lpids[i] = addr.LPID(v)
		if n, err := s.ctl.Length(lpids[i]); err == nil {
			total += int64(n)
		}
	}
	if err := s.admit(total); err != nil {
		return s.errCode(cn, netproto.CodeShuttingDown, err.Error())
	}
	pages, err := s.ctl.ReadBatch(lpids)
	s.release(total)
	if err != nil {
		return s.errFrame(cn, err)
	}
	cn.scratch = netproto.AppendReadBatchResp(cn.scratch[:0], pages)
	return netproto.MsgRespReadBatch, cn.scratch, nil
}

// coalescedFlush runs one eligible flush through the coalescer: decode
// to zero-copy views in the connection's scratch, take a seat in the
// current round, and wait for the round's group write. The views alias
// the pooled request frame, which the connection goroutine keeps
// referenced until after dispatch returns — and it is parked here for
// the whole group write, so every view the leader reads stays alive.
func (s *Server) coalescedFlush(cn *connState, sid, wsn, traceID uint64, wire []byte) error {
	pages, err := core.AppendBatchView(cn.views[:0], wire)
	if err != nil {
		cn.views = cn.views[:0]
		return err
	}
	pf := &cn.pf
	pf.sub = core.SubFlush{SID: sid, WSN: wsn, TraceID: traceID, Pages: pages}
	s.co.submit(pf, int64(len(wire)))
	err = pf.sub.Err
	// Drop the frame aliases before the seat is reused: a parked view
	// must never outlive its frame's reference.
	clear(pages)
	cn.views = pages[:0]
	pf.sub.Pages = nil
	return err
}

// logSlowBatch emits one structured (JSON) log line for a flush_batch
// that overran SlowBatchThreshold, with the per-stage breakdown
// reconstructed from the flight recorder: only slow batches pay the
// dump-and-scan cost, the hot path just reads a clock.
func (s *Server) logSlowBatch(traceID, sid, wsn uint64, elapsed time.Duration, err error) {
	entry := struct {
		Msg     string            `json:"msg"`
		TraceID uint64            `json:"trace_id"`
		SID     uint64            `json:"sid"`
		WSN     uint64            `json:"wsn"`
		Elapsed string            `json:"elapsed"`
		Err     string            `json:"err,omitempty"`
		Stages  map[string]string `json:"stages,omitempty"`
	}{
		Msg:     "slow_batch",
		TraceID: traceID,
		SID:     sid,
		WSN:     wsn,
		Elapsed: elapsed.String(),
	}
	if err != nil {
		entry.Err = err.Error()
	}
	if traceID != 0 {
		stages := make(map[string]string)
		for _, ev := range s.trc.Dump().Events {
			if ev.TraceID != traceID || ev.Dur == 0 {
				continue
			}
			stages[ev.Kind.String()] = time.Duration(ev.Dur).String()
		}
		if len(stages) > 0 {
			entry.Stages = stages
		}
	}
	raw, jerr := json.Marshal(entry)
	if jerr != nil {
		s.slowLogf("slow_batch trace_id=%d sid=%d wsn=%d elapsed=%s", traceID, sid, wsn, elapsed)
		return
	}
	s.slowLogf("%s", raw)
}

// admit blocks until n batch bytes fit under MaxInflightBytes. A single
// batch larger than the whole bound is admitted alone rather than
// deadlocking. Draining aborts waiters.
func (s *Server) admit(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.draining {
			return ErrDraining
		}
		if s.stats.InflightBytes+n <= s.cfg.MaxInflightBytes || s.stats.InflightBytes == 0 {
			s.stats.InflightBytes += n
			if s.stats.InflightBytes > s.stats.PeakInflight {
				s.stats.PeakInflight = s.stats.InflightBytes
			}
			s.met.inflightBytes.Add(n)
			return nil
		}
		s.cond.Wait()
	}
}

func (s *Server) release(n int64) {
	s.mu.Lock()
	s.stats.InflightBytes -= n
	s.cond.Broadcast()
	s.mu.Unlock()
	s.met.inflightBytes.Add(-n)
}

func (s *Server) errFrame(cn *connState, err error) (byte, []byte, []byte) {
	return s.errCode(cn, netproto.CodeFor(err), err.Error())
}

func (s *Server) badRequest(cn *connState, err error) (byte, []byte, []byte) {
	return s.errCode(cn, netproto.CodeBadRequest, err.Error())
}

func (s *Server) errCode(cn *connState, code uint16, msg string) (byte, []byte, []byte) {
	s.mu.Lock()
	s.stats.Errors++
	s.mu.Unlock()
	s.met.errors.Inc()
	cn.scratch = netproto.AppendErrorBody(cn.scratch[:0], code, msg)
	return netproto.MsgRespError, cn.scratch, nil
}
