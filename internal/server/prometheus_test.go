package server_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eleos/internal/metrics"
	"eleos/internal/server"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exposition format byte-for-byte
// against testdata/prometheus.golden: HELP/TYPE headers, the
// tenant/source/channel label extraction (including a tenant tag that
// itself contains a dot), histogram buckets, and the eleos_info labels.
// Regenerate with: go test ./internal/server -run Golden -update
func TestWritePrometheusGolden(t *testing.T) {
	reg := metrics.New()
	reg.Counter("core.write.batches").Add(12)
	reg.Counter("core.write.bytes_accepted").Add(48_000)
	reg.Counter("flash.programmed_bytes").Add(96_000)
	reg.Counter("flash.src.user.bytes").Add(64_000)
	reg.Counter("flash.src.user.wblocks").Add(2)
	reg.Counter("flash.src.gc.bytes").Add(32_000)
	reg.Counter("flash.src.gc.wblocks").Add(1)
	reg.Counter("qos.default.admitted_bytes").Add(1000)
	reg.Counter("qos.default.throttled").Add(0)
	reg.Counter("qos.team.a.admitted_bytes").Add(2000) // tenant tag with a dot
	reg.Counter("qos.team.a.throttled").Add(3)
	reg.Counter("write.tenant.default.bytes").Add(900)
	reg.Counter("write.tenant.team.a.pages").Add(7)
	reg.Gauge("server.active_conns").Set(2)
	reg.Gauge("qos.team.a.inflight_bytes").Set(512)
	reg.Gauge("flash.chan0.queue_depth").Set(3)
	h := reg.Histogram("server.request_ns", []int64{1000, 1_000_000})
	h.Observe(500)
	h.Observe(2000)
	h.Observe(5_000_000)

	snap := reg.Snapshot()
	snap.Labels = append(snap.Labels, metrics.Label{Key: "gc.policy", Value: "wear-aware"})

	var sb strings.Builder
	server.WritePrometheus(&sb, snap)
	got := sb.String()

	goldenPath := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden file (regenerate with -update if intentional)")
		gl := strings.Split(string(want), "\n")
		ol := strings.Split(got, "\n")
		for i := 0; i < len(gl) || i < len(ol); i++ {
			var g, o string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(ol) {
				o = ol[i]
			}
			if g != o {
				t.Errorf("line %d:\n  golden: %s\n  got:    %s", i+1, g, o)
			}
		}
	}
}
