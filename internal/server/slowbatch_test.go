package server

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/netproto"
)

// newTestServer builds a server over a fresh in-memory controller; this
// internal-package helper exists so the slow-batch log sink can be
// overridden (it is deliberately not part of the public Config).
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	dev := flash.MustNewDevice(flash.Geometry{
		Channels: 2, EBlocksPerChannel: 32,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}, flash.Latency{})
	ctl, err := core.Format(dev, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return New(ctl, cfg)
}

// TestSlowBatchLog drives flush with a threshold every batch overruns and
// checks the structured line: valid JSON, the batch's identity, and a
// stage breakdown pulled from the flight recorder by trace ID.
func TestSlowBatchLog(t *testing.T) {
	s := newTestServer(t, Config{SlowBatchThreshold: time.Nanosecond})
	var mu sync.Mutex
	var lines []string
	s.slowLogf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	sid, err := s.ctl.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	wire := core.EncodeBatch([]core.LPage{{LPID: 7, Data: make([]byte, 1200)}})
	rtyp, _, _ := s.flush(&connState{}, sid, 1, 4242, wire)
	if rtyp != netproto.MsgRespFlushBatch {
		t.Fatalf("flush reply type 0x%02x", rtyp)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("got %d slow-batch lines, want 1: %q", len(lines), lines)
	}
	var entry struct {
		Msg     string            `json:"msg"`
		TraceID uint64            `json:"trace_id"`
		SID     uint64            `json:"sid"`
		WSN     uint64            `json:"wsn"`
		Elapsed string            `json:"elapsed"`
		Stages  map[string]string `json:"stages"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("slow-batch line is not JSON: %v\n%s", err, lines[0])
	}
	if entry.Msg != "slow_batch" || entry.TraceID != 4242 || entry.SID != sid || entry.WSN != 1 {
		t.Fatalf("unexpected identity: %+v", entry)
	}
	if entry.Elapsed == "" {
		t.Fatal("elapsed missing")
	}
	for _, stage := range []string{"claim", "init", "program_wait", "force_wait", "install"} {
		if entry.Stages[stage] == "" {
			t.Errorf("stage breakdown missing %q: %+v", stage, entry.Stages)
		}
	}
}

// TestSlowBatchLogOffByDefault checks the default config never logs.
func TestSlowBatchLogOffByDefault(t *testing.T) {
	s := newTestServer(t, Config{})
	var mu sync.Mutex
	calls := 0
	s.slowLogf = func(string, ...any) { mu.Lock(); calls++; mu.Unlock() }
	wire := core.EncodeBatch([]core.LPage{{LPID: 3, Data: make([]byte, 800)}})
	if rtyp, _, _ := s.flush(&connState{}, 0, 0, 0, wire); rtyp != netproto.MsgRespFlushBatch {
		t.Fatalf("flush reply type 0x%02x", rtyp)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 0 {
		t.Fatalf("slow-batch log fired %d times with the gate off", calls)
	}
}
