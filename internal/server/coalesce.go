package server

import (
	"sync"
	"time"

	"eleos/internal/core"
)

// CoalesceConfig tunes server-side batch coalescing: merging small
// pending flushes from different connections into one controller batch,
// so they share a single provision/program/commit cycle (the
// cross-connection analogue of the paper's batched-write interface, in
// the spirit of WAL group commit). Off by default — it trades up to
// Window of added latency per small flush for fewer forced log pages
// and larger, better-striped program batches.
//
// Coalescing is tenant-safe by construction: per-tenant QoS admission
// (rate tokens and inflight budget) is charged in Server.flush BEFORE a
// flush takes a seat in a round, so a merged group batch carries only
// bytes each tenant already paid for — one tenant can never ride
// another's budget through the merge.
type CoalesceConfig struct {
	// Enabled turns coalescing on.
	Enabled bool
	// Window bounds how long a round's leader waits for companion
	// flushes before writing the group. Default 100µs.
	Window time.Duration
	// MaxFlushes closes a round early once this many flushes joined.
	// Default 16.
	MaxFlushes int
	// MaxBytes closes a round early once the joined flushes' wire bytes
	// reach it. Default 1 MB.
	MaxBytes int64
	// ThresholdBytes is the eligibility bound: only flushes whose wire
	// body is at most this big coalesce — a large flush already fills
	// the pipeline by itself and would only delay its round. Default
	// 64 KB.
	ThresholdBytes int64
}

func (c CoalesceConfig) withDefaults() CoalesceConfig {
	if c.Window == 0 {
		c.Window = 100 * time.Microsecond
	}
	if c.MaxFlushes == 0 {
		c.MaxFlushes = 16
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 1 << 20
	}
	if c.ThresholdBytes == 0 {
		c.ThresholdBytes = 64 << 10
	}
	return c
}

// pendingFlush is one connection's seat in a coalescing round. Each
// connection owns exactly one and reuses it across requests: done is
// buffered and receives exactly one token per round the seat joined as
// a follower, so no allocation happens per coalesced flush.
type pendingFlush struct {
	sub  core.SubFlush
	done chan struct{}
}

// coalescer gathers eligible flushes into rounds with the leader /
// follower pattern of group commit: the first flush to arrive at an
// empty queue becomes the round's leader, waits out the window (or an
// early fill), and writes everything gathered as one controller group.
// Followers park on their seat's done channel; the leader wakes them
// after the group completes, each finding its outcome in sub.Err.
type coalescer struct {
	ctl *core.Controller
	cfg CoalesceConfig

	mu      sync.Mutex
	pending []*pendingFlush
	bytes   int64
	filled  chan struct{} // open round's early-close signal
	isFull  bool
}

func newCoalescer(ctl *core.Controller, cfg CoalesceConfig) *coalescer {
	cfg = cfg.withDefaults()
	return &coalescer{ctl: ctl, cfg: cfg, pending: make([]*pendingFlush, 0, cfg.MaxFlushes)}
}

// submit enters pf into the current round and blocks until the round's
// group write has completed; pf.sub.Err then holds this flush's
// outcome. The caller must keep pf.sub.Pages' backing bytes (the pooled
// request frame) alive until submit returns.
func (co *coalescer) submit(pf *pendingFlush, wireBytes int64) {
	co.mu.Lock()
	if len(co.pending) > 0 {
		// Follower: take a seat, close the round if this filled it, park.
		co.pending = append(co.pending, pf)
		co.bytes += wireBytes
		if !co.isFull && (len(co.pending) >= co.cfg.MaxFlushes || co.bytes >= co.cfg.MaxBytes) {
			co.isFull = true
			close(co.filled)
		}
		co.mu.Unlock()
		<-pf.done
		return
	}

	// Leader: open the round, wait for companions, write the group.
	co.pending = append(co.pending, pf)
	co.bytes = wireBytes
	filled := make(chan struct{})
	co.filled = filled
	co.isFull = false
	alreadyFull := co.cfg.MaxFlushes <= 1 || wireBytes >= co.cfg.MaxBytes
	co.mu.Unlock()

	if !alreadyFull {
		t := time.NewTimer(co.cfg.Window)
		select {
		case <-filled:
		case <-t.C:
		}
		t.Stop()
	}

	co.mu.Lock()
	batch := co.pending
	// The next arrival after this unlock elects a new leader; its round
	// may run concurrently with this group write, which the controller
	// handles like any concurrent batches.
	co.pending = make([]*pendingFlush, 0, co.cfg.MaxFlushes)
	co.bytes = 0
	co.filled = nil
	co.mu.Unlock()

	subs := make([]*core.SubFlush, len(batch))
	for i, p := range batch {
		subs[i] = &p.sub
	}
	co.ctl.WriteBatchGroup(subs)
	for _, p := range batch {
		if p != pf {
			p.done <- struct{}{}
		}
	}
}
