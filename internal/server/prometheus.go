package server

import (
	"fmt"
	"io"
	"strings"

	"eleos/internal/metrics"
)

// Prometheus text exposition of the registry snapshot. The registry
// names instruments with '.'-separated paths and encodes dimensions
// (tenant, program source, flash channel) into the path; the exporter
// lifts those back out as proper labels so one scrape config covers any
// number of tenants:
//
//	qos.<tenant>.admitted_bytes      -> eleos_qos_admitted_bytes_total{tenant="..."}
//	write.tenant.<tenant>.bytes      -> eleos_write_tenant_bytes_total{tenant="..."}
//	flash.src.<source>.wblocks       -> eleos_flash_src_wblocks_total{source="..."}
//	flash.chan<i>.<field>            -> eleos_flash_channel_<field>{channel="i"}
//
// Everything else flattens '.' to '_' under the eleos_ namespace;
// counters get the conventional _total suffix, histograms render as
// real Prometheus histograms (cumulative le buckets, _sum, _count), and
// exporter labels (gc.policy) become one eleos_info gauge.

// promHelp carries HELP strings for the families worth documenting;
// families not listed get a generic line.
var promHelp = map[string]string{
	"eleos_qos_admitted_bytes_total":    "Bytes admitted through per-tenant QoS admission.",
	"eleos_qos_throttled_total":         "Admissions delayed by per-tenant rate limiting.",
	"eleos_qos_inflight_bytes":          "Bytes currently inside a tenant's inflight budget.",
	"eleos_write_tenant_bytes_total":    "Logical bytes written, attributed to the issuing tenant.",
	"eleos_write_tenant_pages_total":    "Logical pages written, attributed to the issuing tenant.",
	"eleos_flash_src_bytes_total":       "Physical bytes programmed, split by traffic source.",
	"eleos_flash_src_wblocks_total":     "WBLOCK programs, split by traffic source.",
	"eleos_flash_programmed_bytes_total": "Physical bytes programmed to flash, all sources.",
	"eleos_core_write_bytes_accepted_total": "Logical bytes accepted by the controller write path.",
	"eleos_core_gc_bytes_moved_total":   "Valid bytes relocated by garbage collection.",
	"eleos_server_watch_pushes_total":   "stats_full frames pushed to watch_stats subscribers.",
	"eleos_info":                        "Exporter facts (active GC policy and friends) as labels.",
}

// promSample is one rendered sample line within a family.
type promSample struct {
	labels string // rendered {k="v"} pairs, "" for none
	value  string
}

// promFamily groups the samples that share a metric name.
type promFamily struct {
	name    string
	typ     string // counter | gauge
	samples []promSample
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers per family, labeled
// samples, deterministic order.
func WritePrometheus(w io.Writer, snap metrics.Snapshot) {
	fams := make(map[string]*promFamily)
	order := []string{}
	add := func(name, typ string, s promSample) {
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
			order = append(order, name)
		}
		f.samples = append(f.samples, s)
	}

	for _, c := range snap.Counters {
		name, labels := promName(c.Name)
		add(name+"_total", "counter", promSample{labels: labels, value: fmt.Sprintf("%d", c.Value)})
	}
	for _, g := range snap.Gauges {
		name, labels := promName(g.Name)
		add(name, "gauge", promSample{labels: labels, value: fmt.Sprintf("%d", g.Value)})
	}
	if len(snap.Labels) > 0 {
		var parts []string
		for _, l := range snap.Labels {
			parts = append(parts, fmt.Sprintf("%s=%q", promFlat(l.Key), l.Value))
		}
		add("eleos_info", "gauge", promSample{labels: "{" + strings.Join(parts, ",") + "}", value: "1"})
	}

	// Snapshot sections are sorted by instrument name; emitting families
	// in first-seen order keeps the output deterministic while holding
	// each family's samples contiguous, as the format requires.
	for _, name := range order {
		f := fams[name]
		writePromHeader(w, f.name, f.typ)
		for _, s := range f.samples {
			fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, s.value)
		}
	}

	for _, h := range snap.Histograms {
		name, labels := promName(h.Name)
		writePromHeader(w, name, "histogram")
		inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		leLabel := func(le string) string {
			if inner == "" {
				return fmt.Sprintf("{le=%q}", le)
			}
			return fmt.Sprintf("{%s,le=%q}", inner, le)
		}
		var cum int64
		for i, b := range h.Buckets {
			cum += b
			if i < len(h.Bounds) {
				fmt.Fprintf(w, "%s_bucket%s %d\n", name, leLabel(fmt.Sprintf("%d", h.Bounds[i])), cum)
			} else {
				fmt.Fprintf(w, "%s_bucket%s %d\n", name, leLabel("+Inf"), cum)
			}
		}
		fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, h.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count)
	}
}

func writePromHeader(w io.Writer, name, typ string) {
	help := promHelp[name]
	if help == "" {
		help = "eleos instrument " + name + "."
	}
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// promName maps a registry instrument name to its (family, labels)
// exposition form, extracting the path-encoded dimensions.
func promName(name string) (string, string) {
	// %q's escaping (backslash, quote, newline) matches the exposition
	// format's label-value escaping.
	if tenant, field, ok := promSplit(name, "qos."); ok {
		return "eleos_qos_" + promFlat(field), fmt.Sprintf("{tenant=%q}", tenant)
	}
	if tenant, field, ok := promSplit(name, "write.tenant."); ok {
		return "eleos_write_tenant_" + promFlat(field), fmt.Sprintf("{tenant=%q}", tenant)
	}
	if src, field, ok := promSplit(name, "flash.src."); ok {
		return "eleos_flash_src_" + promFlat(field), fmt.Sprintf("{source=%q}", src)
	}
	if rest, ok := strings.CutPrefix(name, "flash.chan"); ok {
		if i := strings.IndexByte(rest, '.'); i > 0 && isDigits(rest[:i]) {
			return "eleos_flash_channel_" + promFlat(rest[i+1:]), fmt.Sprintf("{channel=%q}", rest[:i])
		}
	}
	return "eleos_" + promFlat(name), ""
}

// promSplit splits "<prefix><label>.<field>" at the LAST dot after the
// prefix: field names never contain dots, tenant tags may.
func promSplit(name, prefix string) (label, field string, ok bool) {
	rest, found := strings.CutPrefix(name, prefix)
	if !found {
		return "", "", false
	}
	i := strings.LastIndexByte(rest, '.')
	if i <= 0 || i == len(rest)-1 {
		return "", "", false
	}
	return rest[:i], rest[i+1:], true
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// promFlat maps a dotted registry path segment to a legal metric-name
// fragment: dots become underscores, anything outside [a-zA-Z0-9_]
// becomes '_'.
func promFlat(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
