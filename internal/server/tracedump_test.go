package server_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/server"
	"eleos/internal/trace"
)

// TestTraceDumpLoopback is the acceptance test for the tracing wire
// path: batches flushed over loopback TCP with client-chosen trace IDs
// come back out of trace_dump with every write-path stage attributed to
// the right ID, and the dump renders to loadable Chrome trace JSON.
func TestTraceDumpLoopback(t *testing.T) {
	_, _, _, addrStr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(addrStr, fastOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sess, err := cl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ids := []uint64{1001, 1002, 1003}
	for i, id := range ids {
		batch := []core.LPage{
			{LPID: addr.LPID(uint64(i) + 1), Data: pageData(i, 1800)},
			{LPID: addr.LPID(uint64(i) + 50), Data: pageData(i, 600)},
		}
		if err := sess.FlushTraced(id, batch); err != nil {
			t.Fatal(err)
		}
	}
	// One untraced flush: the server must assign it a fresh nonzero ID.
	if err := sess.Flush([]core.LPage{{LPID: 99, Data: pageData(9, 500)}}); err != nil {
		t.Fatal(err)
	}

	d, err := cl.TraceDump()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) == 0 {
		t.Fatal("trace dump came back empty")
	}
	if d.EpochUnixNano == 0 {
		t.Fatal("dump epoch missing")
	}

	// Every client-chosen ID must carry the full write-path span set.
	stages := []trace.Kind{
		trace.KBatchStart, trace.KClaim, trace.KInit, trace.KProgramWait,
		trace.KForceWait, trace.KInstall, trace.KBatchEnd,
	}
	byID := map[uint64]map[trace.Kind]int{}
	for _, ev := range d.Events {
		if ev.TraceID == 0 {
			continue
		}
		if byID[ev.TraceID] == nil {
			byID[ev.TraceID] = map[trace.Kind]int{}
		}
		byID[ev.TraceID][ev.Kind]++
	}
	for i, id := range ids {
		kinds := byID[id]
		if kinds == nil {
			t.Fatalf("trace ID %d absent from dump", id)
		}
		for _, k := range stages {
			if kinds[k] == 0 {
				t.Errorf("trace ID %d missing stage %v", id, k)
			}
		}
		for _, ev := range d.Events {
			if ev.TraceID == id && ev.Kind == trace.KBatchStart {
				if ev.SID != sess.SID() || ev.WSN != uint64(i+1) {
					t.Errorf("trace %d batch_start identity (sid %d, wsn %d), want (%d, %d)",
						id, ev.SID, ev.WSN, sess.SID(), i+1)
				}
			}
		}
	}
	// The untraced flush got a server-assigned ID: some traced batch at
	// WSN 4 beyond the three client IDs.
	var autoID uint64
	for _, ev := range d.Events {
		if ev.Kind == trace.KBatchStart && ev.WSN == 4 {
			autoID = ev.TraceID
		}
	}
	if autoID == 0 {
		t.Error("plain flush did not get a server-assigned trace ID")
	}
	for _, id := range ids {
		if autoID == id {
			t.Errorf("server-assigned ID %d collides with a client ID", autoID)
		}
	}
	// The connection and request roots made it in too.
	kindSeen := map[trace.Kind]bool{}
	for _, ev := range d.Events {
		kindSeen[ev.Kind] = true
	}
	for _, k := range []trace.Kind{trace.KConnOpen, trace.KRequest, trace.KWalForce, trace.KFlashProgram} {
		if !kindSeen[k] {
			t.Errorf("dump missing kind %v", k)
		}
	}

	// The same dump renders to Chrome trace JSON naming every stage.
	var buf bytes.Buffer
	if err := trace.ChromeJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome JSON invalid: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"batch_start", "claim", "init", "program_wait", "force_wait", "install", "batch_end"} {
		if !names[want] {
			t.Errorf("chrome JSON missing event %q", want)
		}
	}
}

// TestDebugHandler exercises the HTTP debug endpoint eleosd mounts on
// -debug-addr: /metrics plain text, /debug/trace Chrome JSON, pprof
// index, and the root directory page.
func TestDebugHandler(t *testing.T) {
	ctl, _, srv, addrStr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(addrStr, fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Flush(0, 0, []core.LPage{{LPID: 5, Data: pageData(1, 900)}}); err != nil {
		t.Fatal(err)
	}
	_ = ctl

	h := srv.DebugHandler()
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		return rec
	}

	metricsRec := get("/metrics")
	if ct := metricsRec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	metricsOut := metricsRec.Body.String()
	for _, want := range []string{
		"# TYPE eleos_server_batches_total counter",
		"eleos_server_batches_total 1",
		"eleos_core_write_batches_total 1",
		"# TYPE eleos_core_write_init_ns histogram",
		"eleos_core_write_init_ns_count 1",
		`eleos_flash_src_bytes_total{source="user"}`,
		`eleos_info{gc_policy="min-cost-decline"} 1`,
	} {
		if !strings.Contains(metricsOut, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metricsOut)
		}
	}
	if strings.Contains(metricsOut, "core.write") {
		t.Error("/metrics leaked dotted metric names")
	}

	traceRec := get("/debug/trace")
	if ct := traceRec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/trace content-type = %q", ct)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceRec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/trace invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("/debug/trace has no events after a flush")
	}

	if body := get("/debug/pprof/").Body.String(); !strings.Contains(body, "goroutine") {
		t.Error("pprof index missing goroutine profile")
	}
	if body := get("/").Body.String(); !strings.Contains(body, "/debug/trace") {
		t.Error("root page does not list /debug/trace")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Errorf("GET /nope: status %d, want 404", rec.Code)
	}
}
