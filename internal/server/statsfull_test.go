package server_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/health"
	"eleos/internal/metrics"
	"eleos/internal/server"
)

// pageData builds deterministic page content of the given size.
func pageData(i, n int) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(i*31 + j)
	}
	return b
}

// quiesce polls the controller's registry until two consecutive
// snapshots are identical — no in-flight recording is mutating it.
func quiesce(t *testing.T, ctl *core.Controller) metrics.Snapshot {
	t.Helper()
	prev := ctl.MetricsSnapshot()
	for i := 0; i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
		next := ctl.MetricsSnapshot()
		if reflect.DeepEqual(prev, next) {
			return next
		}
		prev = next
	}
	t.Fatal("registry did not quiesce")
	return metrics.Snapshot{}
}

// TestStatsFullRoundTripTCP is the acceptance test for the stats_full
// wire path: the snapshot a client decodes over loopback TCP equals the
// server-side registry snapshot field-for-field. The fetch itself is a
// request, so the server-side reference is the quiesced before-snapshot
// adjusted by exactly what the server counts before building the reply:
// one request and its 5-byte frame (bytes_out and the request latency
// are recorded only after the reply is written, so they are absent from
// the snapshot the reply carries).
func TestStatsFullRoundTripTCP(t *testing.T) {
	ctl, _, _, addrStr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(addrStr, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Generate traffic on every layer: session + ordered batches (core,
	// wal, flash, server) and a checkpoint.
	sess, err := cl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		batch := []core.LPage{
			{LPID: addr.LPID(uint64(i%7) + 1), Data: pageData(i, 1500)},
			{LPID: addr.LPID(uint64(i%5) + 10), Data: pageData(i, 700)},
		}
		if err := sess.Flush(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctl.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	want := quiesce(t, ctl)
	sf, err := cl.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	got := sf.Snap

	// Fold the fetch's own footprint into the expectation.
	for i := range want.Counters {
		switch want.Counters[i].Name {
		case "server.requests":
			want.Counters[i].Value++
		case "server.bytes_in":
			want.Counters[i].Value += 5 // empty stats_full request frame
		}
	}
	// The server attaches exporter labels that are not in the registry.
	want.Labels = append(want.Labels, metrics.Label{Key: "gc.policy", Value: ctl.GCPolicyName()})

	if !reflect.DeepEqual(got, want) {
		for _, diff := range snapshotDiff(want, got) {
			t.Error(diff)
		}
		t.Fatal("client-decoded snapshot differs from server-side registry snapshot")
	}

	// Sanity: the snapshot actually covers all four layers.
	for _, name := range []string{"core.write.batches", "wal.page_writes", "flash.programs", "server.batches"} {
		if got.Counter(name) == 0 {
			t.Fatalf("counter %s = 0 after traffic", name)
		}
	}
	if hv := got.Histogram("server.request_ns"); hv == nil || hv.Count == 0 {
		t.Fatalf("server.request_ns missing or empty: %+v", hv)
	}
	if hv := got.Histogram("core.write.init_ns"); hv == nil || hv.Count != got.Counter("core.write.batches") {
		t.Fatalf("core.write.init_ns = %+v, want one observation per batch", hv)
	}
	if got.Label("gc.policy") != "min-cost-decline" {
		t.Fatalf("gc.policy label = %q, want min-cost-decline (default)", got.Label("gc.policy"))
	}

	// The v3 health census rides the same reply; it must describe the
	// device consistently with itself and with the snapshot.
	h := sf.Health
	if h.EBlocksTotal == 0 {
		t.Fatal("health census is empty")
	}
	if sum := h.FreeEBlocks + h.OpenEBlocks + h.UsedEBlocks + h.BadEBlocks + h.ReservedEBlocks; sum != h.EBlocksTotal {
		t.Fatalf("EBLOCK states sum to %d, total is %d", sum, h.EBlocksTotal)
	}
	var hist int64
	for _, n := range h.EraseHist {
		hist += n
	}
	if hist != h.EBlocksTotal {
		t.Fatalf("erase histogram covers %d EBLOCKs of %d", hist, h.EBlocksTotal)
	}
	if h.ValidBytes <= 0 {
		t.Fatalf("ValidBytes = %d after writing data", h.ValidBytes)
	}
	// The controller attributed physical programs by source; the census
	// and the counters came from one server, so the per-source split must
	// cover every program exactly.
	var srcBytes int64
	for _, v := range health.SourceBytes(got) {
		srcBytes += v
	}
	if fp := got.Counter("flash.programmed_bytes"); srcBytes != fp {
		t.Fatalf("per-source bytes sum to %d, flash.programmed_bytes = %d", srcBytes, fp)
	}
}

// snapshotDiff renders per-field differences for debugging.
func snapshotDiff(want, got metrics.Snapshot) []string {
	var out []string
	cs := map[string][2]int64{}
	for _, c := range want.Counters {
		cs[c.Name] = [2]int64{c.Value, 0}
	}
	for _, c := range got.Counters {
		v := cs[c.Name]
		v[1] = c.Value
		cs[c.Name] = v
	}
	for name, v := range cs {
		if v[0] != v[1] {
			out = append(out, fmt.Sprintf("counter %s: want %d, got %d", name, v[0], v[1]))
		}
	}
	gs := map[string][2]int64{}
	for _, g := range want.Gauges {
		gs[g.Name] = [2]int64{g.Value, 0}
	}
	for _, g := range got.Gauges {
		v := gs[g.Name]
		v[1] = g.Value
		gs[g.Name] = v
	}
	for name, v := range gs {
		if v[0] != v[1] {
			out = append(out, fmt.Sprintf("gauge %s: want %d, got %d", name, v[0], v[1]))
		}
	}
	for _, h := range want.Histograms {
		g := got.Histogram(h.Name)
		if g == nil {
			out = append(out, fmt.Sprintf("histogram %s missing", h.Name))
			continue
		}
		if !reflect.DeepEqual(h, *g) {
			out = append(out, fmt.Sprintf("histogram %s: want count=%d sum=%d, got count=%d sum=%d", h.Name, h.Count, h.Sum, g.Count, g.Sum))
		}
	}
	return out
}
