package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"

	"eleos/internal/metrics"
	"eleos/internal/trace"
)

// DebugHandler returns the live debug endpoint eleosd mounts behind
// -debug-addr. It is deliberately separate from the netproto data plane:
// an operator points a browser (or curl, or chrome://tracing) at it
// without speaking the binary protocol, and a wedged write path does not
// take the diagnostics down with it — every route reads lock-free
// snapshots.
//
//	/metrics        plain-text exposition of the controller's registry
//	/debug/trace    flight-recorder dump as Chrome trace_event JSON
//	/debug/pprof/*  the standard runtime profiles
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetricsText)
	mux.HandleFunc("/debug/trace", s.serveTraceChrome)
	// net/http/pprof registers on DefaultServeMux at import; mount its
	// handlers explicitly so this mux works without the default one.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "eleosd debug endpoint\n\n/metrics\n/debug/trace\n/debug/pprof/\n")
	})
	return mux
}

// serveMetricsText renders the registry snapshot in Prometheus text
// exposition format (see WritePrometheus): # HELP/# TYPE headers, the
// path-encoded tenant/source/channel dimensions lifted into labels, and
// the exporter labels (gc.policy) as an eleos_info sample.
func (s *Server) serveMetricsText(w http.ResponseWriter, _ *http.Request) {
	snap := s.ctl.MetricsSnapshot()
	snap.Labels = append(snap.Labels, metrics.Label{Key: "gc.policy", Value: s.ctl.GCPolicyName()})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, snap)
}

// serveTraceChrome dumps the flight recorder as Chrome trace_event JSON,
// loadable directly in chrome://tracing or Perfetto.
func (s *Server) serveTraceChrome(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := trace.ChromeJSON(w, s.ctl.TraceDump()); err != nil {
		// Headers are gone; all we can do is cut the body short.
		return
	}
}
