package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"

	"eleos/internal/trace"
)

// DebugHandler returns the live debug endpoint eleosd mounts behind
// -debug-addr. It is deliberately separate from the netproto data plane:
// an operator points a browser (or curl, or chrome://tracing) at it
// without speaking the binary protocol, and a wedged write path does not
// take the diagnostics down with it — every route reads lock-free
// snapshots.
//
//	/metrics        plain-text exposition of the controller's registry
//	/debug/trace    flight-recorder dump as Chrome trace_event JSON
//	/debug/pprof/*  the standard runtime profiles
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetricsText)
	mux.HandleFunc("/debug/trace", s.serveTraceChrome)
	// net/http/pprof registers on DefaultServeMux at import; mount its
	// handlers explicitly so this mux works without the default one.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "eleosd debug endpoint\n\n/metrics\n/debug/trace\n/debug/pprof/\n")
	})
	return mux
}

// serveMetricsText renders the registry snapshot in the conventional
// one-line-per-sample text form. Registry names use '.' separators;
// the exposition flattens them to '_' so scrapers accept them.
func (s *Server) serveMetricsText(w http.ResponseWriter, _ *http.Request) {
	snap := s.ctl.MetricsSnapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flat := func(name string) string { return strings.ReplaceAll(name, ".", "_") }
	for _, c := range snap.Counters {
		fmt.Fprintf(w, "%s %d\n", flat(c.Name), c.Value)
	}
	for _, g := range snap.Gauges {
		fmt.Fprintf(w, "%s %d\n", flat(g.Name), g.Value)
	}
	for _, h := range snap.Histograms {
		n := flat(h.Name)
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(w, "%s_p50 %g\n", n, h.P50)
		fmt.Fprintf(w, "%s_p95 %g\n", n, h.P95)
		fmt.Fprintf(w, "%s_p99 %g\n", n, h.P99)
	}
}

// serveTraceChrome dumps the flight recorder as Chrome trace_event JSON,
// loadable directly in chrome://tracing or Perfetto.
func (s *Server) serveTraceChrome(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := trace.ChromeJSON(w, s.ctl.TraceDump()); err != nil {
		// Headers are gone; all we can do is cut the body short.
		return
	}
}
