package server_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"eleos/internal/addr"
	"eleos/internal/bufpool"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/server"
	"eleos/internal/trace"
)

// Tests for server-side batch coalescing: flushes from different
// connections merged into one controller group must keep every
// per-(sid,wsn) guarantee the individual path gives — ack semantics,
// dedup, WSN ordering, trace attribution, and fault isolation.

func coalesceOn(window time.Duration, maxFlushes int) server.Config {
	return server.Config{Coalesce: server.CoalesceConfig{
		Enabled: true, Window: window, MaxFlushes: maxFlushes,
	}}
}

// TestCoalescingLoopback runs the multi-client loopback workload with
// coalescing on: every batch acked and readable, none double-applied,
// and at least some rounds actually merged (GroupWrites).
func TestCoalescingLoopback(t *testing.T) {
	ctl, _, _, addrStr, _ := startServer(t, coalesceOn(3*time.Millisecond, 8))

	const (
		nClients      = 6
		batches       = 15
		pagesPerBatch = 2
	)
	type ack struct {
		lpid addr.LPID
		data []byte
	}
	var (
		mu    sync.Mutex
		acked []ack
	)
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for w := 0; w < nClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(addrStr, fastOpts(int64(w+1)))
			if err != nil {
				errs <- fmt.Errorf("client %d dial: %w", w, err)
				return
			}
			defer cl.Close()
			sess, err := cl.NewSession()
			if err != nil {
				errs <- fmt.Errorf("client %d session: %w", w, err)
				return
			}
			for i := 0; i < batches; i++ {
				pages := make([]core.LPage, pagesPerBatch)
				local := make([]ack, pagesPerBatch)
				for j := range pages {
					lpid := addr.LPID(uint64(w+1)*1_000_000 + uint64(i*pagesPerBatch+j))
					data := []byte(fmt.Sprintf("coalesce client=%d batch=%d page=%d", w, i, j))
					pages[j] = core.LPage{LPID: lpid, Data: data}
					local[j] = ack{lpid: lpid, data: data}
				}
				if err := sess.Flush(pages); err != nil {
					errs <- fmt.Errorf("client %d batch %d: %w", w, i, err)
					return
				}
				mu.Lock()
				acked = append(acked, local...)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := ctl.Stats()
	if got, want := st.BatchesWritten, int64(nClients*batches); got != want {
		t.Fatalf("BatchesWritten = %d, want %d (double-apply or loss)", got, want)
	}
	if st.StaleWrites != 0 {
		t.Fatalf("StaleWrites = %d, want 0", st.StaleWrites)
	}
	// With six clients flushing inside a 3ms window, merging must have
	// happened — otherwise coalescing is silently disabled.
	if st.GroupWrites == 0 {
		t.Fatal("no flushes were coalesced (GroupWrites = 0)")
	}
	if st.GroupedFlushes < 2*st.GroupWrites {
		t.Fatalf("GroupedFlushes = %d with GroupWrites = %d: groups of <2", st.GroupedFlushes, st.GroupWrites)
	}

	verifier, err := client.Dial(addrStr, fastOpts(99))
	if err != nil {
		t.Fatal(err)
	}
	defer verifier.Close()
	for _, a := range acked {
		got, err := verifier.Read(a.lpid)
		if err != nil {
			t.Fatalf("read %d: %v", a.lpid, err)
		}
		if !bytes.HasPrefix(got, a.data) {
			t.Fatalf("lpid %d: got %q, want prefix %q", a.lpid, got, a.data)
		}
	}
}

// TestCoalescingStaleAndDeferred drives the two non-trivial claim
// outcomes through deterministic two-flush rounds (window long, rounds
// close by fill): a stale duplicate re-ACKed without re-applying, and
// an early WSN deferred out of its group, completing once its
// predecessor lands.
func TestCoalescingStaleAndDeferred(t *testing.T) {
	ctl, _, _, addrStr, _ := startServer(t, coalesceOn(200*time.Millisecond, 2))

	clA, err := client.Dial(addrStr, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer clA.Close()
	clB, err := client.Dial(addrStr, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	sidA, err := clA.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	sidB, err := clB.OpenSession()
	if err != nil {
		t.Fatal(err)
	}

	// pair fires both flushes so they land in one round (MaxFlushes=2
	// closes it early; the long window means a lone flush would wait).
	pair := func(fa, fb func() error) {
		t.Helper()
		var wg sync.WaitGroup
		ferrs := make(chan error, 2)
		for _, f := range []func() error{fa, fb} {
			wg.Add(1)
			go func(f func() error) {
				defer wg.Done()
				ferrs <- f()
			}(f)
		}
		wg.Wait()
		close(ferrs)
		for err := range ferrs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	flush := func(cl *client.Client, sid, wsn uint64, lpid addr.LPID, data string) func() error {
		return func() error {
			_, err := cl.Flush(sid, wsn, []core.LPage{{LPID: lpid, Data: []byte(data)}})
			return err
		}
	}

	// Round 1: both sessions' first batches merge and apply.
	pair(flush(clA, sidA, 1, 100, "A1 original"), flush(clB, sidB, 1, 200, "B1"))

	// Round 2: A resends WSN 1 (a retry after a lost ack) alongside B's
	// fresh WSN 2. The duplicate must ACK without being re-applied.
	pair(flush(clA, sidA, 1, 100, "A1 DUPLICATE"), flush(clB, sidB, 2, 201, "B2"))

	st := ctl.Stats()
	if st.StaleWrites != 1 {
		t.Fatalf("StaleWrites = %d, want 1", st.StaleWrites)
	}
	if st.BatchesWritten != 3 {
		t.Fatalf("BatchesWritten = %d, want 3 (duplicate re-applied?)", st.BatchesWritten)
	}

	// Round 3: A skips ahead to WSN 3 (its WSN 2 is still in flight on
	// another connection) while B flushes WSN 3. B's sub must not stall:
	// the group writes it, A's early sub is deferred to the individual
	// path, and completes once WSN 2 arrives below.
	done := make(chan struct{})
	go func() {
		defer close(done)
		pair(flush(clA, sidA, 3, 102, "A3 early"), flush(clB, sidB, 3, 202, "B3"))
	}()

	time.Sleep(50 * time.Millisecond) // let round 3 claim and defer A's sub
	clC, err := client.Dial(addrStr, fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	defer clC.Close()
	if _, err := clC.Flush(sidA, 2, []core.LPage{{LPID: 101, Data: []byte("A2 late")}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deferred early-WSN flush never completed")
	}

	verifier, err := client.Dial(addrStr, fastOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer verifier.Close()
	want := map[addr.LPID]string{
		100: "A1 original", // not the duplicate's payload
		101: "A2 late",
		102: "A3 early",
		200: "B1", 201: "B2", 202: "B3",
	}
	for lpid, data := range want {
		got, err := verifier.Read(lpid)
		if err != nil {
			t.Fatalf("read %d: %v", lpid, err)
		}
		if !bytes.HasPrefix(got, []byte(data)) {
			t.Fatalf("lpid %d: got %q, want prefix %q", lpid, got, data)
		}
	}
}

// TestCoalescingTraceAttribution: when flushes from several connections
// merge into one group, each one's trace ID must still carry the full
// write-path stage set — shared spans are emitted once per sub, under
// the sub's own identity.
func TestCoalescingTraceAttribution(t *testing.T) {
	ctl, _, _, addrStr, _ := startServer(t, coalesceOn(10*time.Millisecond, 4))

	const nClients = 4
	traceIDs := make([]uint64, nClients)
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for w := 0; w < nClients; w++ {
		traceIDs[w] = uint64(0x71ace000 + w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(addrStr, fastOpts(int64(w+1)))
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			sid, err := cl.OpenSession()
			if err != nil {
				errs <- err
				return
			}
			pages := []core.LPage{{LPID: addr.LPID(300 + w), Data: pageData(w, 600)}}
			if _, err := cl.FlushTraced(traceIDs[w], sid, 1, pages); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ctl.Stats().GroupWrites == 0 {
		t.Fatal("flushes did not coalesce; trace attribution under merging untested")
	}

	cl, err := client.Dial(addrStr, fastOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	dump, err := cl.TraceDump()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[uint64]map[trace.Kind]int{}
	for _, ev := range dump.Events {
		if ev.TraceID == 0 {
			continue
		}
		if byID[ev.TraceID] == nil {
			byID[ev.TraceID] = map[trace.Kind]int{}
		}
		byID[ev.TraceID][ev.Kind]++
	}
	stages := []trace.Kind{
		trace.KBatchStart, trace.KClaim, trace.KInit, trace.KProgramWait,
		trace.KForceWait, trace.KInstall, trace.KBatchEnd,
	}
	for _, tid := range traceIDs {
		got := byID[tid]
		if got == nil {
			t.Fatalf("trace %#x has no events", tid)
		}
		for _, k := range stages {
			if got[k] == 0 {
				t.Errorf("trace %#x missing stage %v (got %v)", tid, k, got)
			}
		}
	}
}

// TestCoalescingMediaFaultRetry: a media failure under a merged group
// must fail every sub-flush in it, and each client's retry of its own
// (sid, wsn) must land exactly once.
func TestCoalescingMediaFaultRetry(t *testing.T) {
	ctl, dev, _, addrStr, _ := startServer(t, coalesceOn(3*time.Millisecond, 4))

	const nClients = 4
	type cs struct {
		cl  *client.Client
		sid uint64
	}
	clients := make([]cs, nClients)
	for w := range clients {
		cl, err := client.Dial(addrStr, fastOpts(int64(w+1)))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		sid, err := cl.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		clients[w] = cs{cl, sid}
		// Warm flush so the fault round is the only in-flight work when
		// the failure is armed.
		if _, err := cl.Flush(sid, 1, []core.LPage{{LPID: addr.LPID(400 + w), Data: pageData(w, 200)}}); err != nil {
			t.Fatal(err)
		}
	}

	// The next program attempt is the fault round's user-data program.
	dev.FailNthProgram(1)

	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for w, c := range clients {
		wg.Add(1)
		go func(w int, c cs) {
			defer wg.Done()
			pages := []core.LPage{{LPID: addr.LPID(500 + w), Data: pageData(100 + w, 300)}}
			if _, err := c.cl.Flush(c.sid, 2, pages); err != nil {
				errs <- fmt.Errorf("client %d: %w", w, err)
			}
		}(w, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if dev.Stats().WriteFailures == 0 {
		t.Fatal("armed program failure never fired")
	}
	retries := int64(0)
	for _, c := range clients {
		retries += c.cl.Stats().Retries
	}
	if retries == 0 {
		t.Fatal("no client retried after the media failure")
	}
	st := ctl.Stats()
	if got, want := st.BatchesWritten, int64(2*nClients); got != want {
		t.Fatalf("BatchesWritten = %d, want %d (retry double-applied or lost)", got, want)
	}
	verifier, err := client.Dial(addrStr, fastOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	defer verifier.Close()
	for w := range clients {
		got, err := verifier.Read(addr.LPID(500 + w))
		if err != nil {
			t.Fatalf("read %d: %v", 500+w, err)
		}
		if !bytes.HasPrefix(got, pageData(100+w, 300)) {
			t.Fatalf("lpid %d content wrong after retry", 500+w)
		}
	}
}

// TestPooledPathPoisonIntegrity turns on buffer poisoning (released
// pooled buffers are scribbled with bufpool.PoisonByte) and runs the
// zero-copy flush paths end to end. If any layer reads a frame after
// its refcount dropped — decode views, coalesced sub-flushes, program
// buffers — the scribble corrupts page content and the read-back
// catches it. Run under -race in CI for the ordering half of the proof.
func TestPooledPathPoisonIntegrity(t *testing.T) {
	bufpool.SetPoison(true)
	t.Cleanup(func() { bufpool.SetPoison(false) })

	run := func(t *testing.T, scfg server.Config) {
		_, _, _, addrStr, _ := startServer(t, scfg)
		const nClients = 3
		var wg sync.WaitGroup
		errs := make(chan error, nClients)
		for w := 0; w < nClients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cl, err := client.Dial(addrStr, fastOpts(int64(w+1)))
				if err != nil {
					errs <- err
					return
				}
				defer cl.Close()
				sess, err := cl.NewSession()
				if err != nil {
					errs <- err
					return
				}
				for i := 0; i < 10; i++ {
					// One small page (coalescible) and one large page (a
					// vectored reply on read-back).
					pages := []core.LPage{
						{LPID: addr.LPID(uint64(w+1)*10_000 + uint64(2*i)), Data: pageData(w*100+i, 64)},
						{LPID: addr.LPID(uint64(w+1)*10_000 + uint64(2*i+1)), Data: pageData(w*100+i+50, 8000)},
					}
					if err := sess.Flush(pages); err != nil {
						errs <- fmt.Errorf("client %d flush %d: %w", w, i, err)
						return
					}
					for _, p := range pages {
						got, err := cl.Read(p.LPID)
						if err != nil {
							errs <- fmt.Errorf("client %d read %d: %w", w, p.LPID, err)
							return
						}
						if !bytes.HasPrefix(got, p.Data) {
							errs <- fmt.Errorf("client %d lpid %d: content corrupted (use-after-release?)", w, p.LPID)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	t.Run("direct", func(t *testing.T) { run(t, server.Config{}) })
	t.Run("coalesced", func(t *testing.T) { run(t, coalesceOn(2*time.Millisecond, 8)) })
}
