package server_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/netproto"
	"eleos/internal/qos"
	"eleos/internal/server"
)

// qosPage builds one LPage of n deterministic bytes.
func qosPage(lpid addr.LPID, n int) core.LPage {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(int(lpid) + i)
	}
	return core.LPage{LPID: lpid, Data: data}
}

// TestQoSTenantTagEndToEnd opens tagged sessions over the wire and
// checks the tag survives the server round trip into the controller's
// session table — including across a checkpointed restart.
func TestQoSTenantTagEndToEnd(t *testing.T) {
	ctl, dev, _, address, _ := startServer(t, server.Config{})
	c, err := client.Dial(address, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sess, err := c.NewSessionTenant("alpha", 7)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush([]core.LPage{qosPage(10, 3000)}); err != nil {
		t.Fatal(err)
	}

	tn, prio, err := ctl.SessionTenant(sess.SID())
	if err != nil || tn != "alpha" || prio != 7 {
		t.Fatalf("SessionTenant = (%q,%d,%v), want (alpha,7,nil)", tn, prio, err)
	}
	if tn, prio, err = ctl.SessionTenant(plain.SID()); err != nil || tn != "" || prio != 0 {
		t.Fatalf("untagged SessionTenant = (%q,%d,%v), want (\"\",0,nil)", tn, prio, err)
	}

	// Restart: the SessionOpen log record (or checkpoint image) must
	// bring the tag back.
	if err := ctl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ctl.Crash()
	ctl2, err := core.Open(dev, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tn, prio, err = ctl2.SessionTenant(sess.SID()); err != nil || tn != "alpha" || prio != 7 {
		t.Fatalf("post-recovery SessionTenant = (%q,%d,%v), want (alpha,7,nil)", tn, prio, err)
	}
}

// TestQoSBudgetThrottlesTenant caps one tenant's inflight budget below
// a single flush and shows the capped tenant serializes while an
// uncapped tenant is untouched; accounting balances afterwards.
func TestQoSBudgetThrottlesTenant(t *testing.T) {
	_, _, srv, address, _ := startServer(t, server.Config{
		QoS: qos.Config{
			Enabled: true,
			Tenants: map[string]qos.Limits{
				"capped": {MaxInflightBytes: 4 << 10},
			},
		},
	})

	var wrote atomic.Int64
	run := func(tenant string, seed int64, lpidBase addr.LPID) error {
		c, err := client.Dial(address, fastOpts(seed))
		if err != nil {
			return err
		}
		defer c.Close()
		sess, err := c.NewSessionTenant(tenant, 1)
		if err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			// 8 KB batches: double the capped tenant's budget, so every
			// capped flush is the oversized-alone case and serializes.
			if err := sess.Flush([]core.LPage{qosPage(lpidBase+addr.LPID(i), 8<<10)}); err != nil {
				return err
			}
			wrote.Add(8 << 10)
		}
		return nil
	}

	errs := make(chan error, 2)
	go func() { errs <- run("capped", 2, 100) }()
	go func() { errs <- run("free", 3, 200) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	st := srv.QoSStats()
	capped, ok := st["capped"]
	if !ok {
		t.Fatalf("no QoS accounting for capped tenant: %v", st)
	}
	if capped.InflightBytes != 0 || capped.Waiters != 0 {
		t.Fatalf("capped tenant not drained: %+v", capped)
	}
	if capped.AdmittedBytes < 8*(8<<10) {
		t.Fatalf("capped admitted %d bytes, want >= %d", capped.AdmittedBytes, 8*(8<<10))
	}
	if free := st["free"]; free.ThrottledCount != 0 {
		t.Fatalf("free tenant throttled %d times, want 0", free.ThrottledCount)
	}
}

// TestQoSDrainAbortsThrottledFlush parks a flush on an exhausted rate
// bucket and drains the server: the waiter must come back with a
// retryable shutting-down error, not hang.
func TestQoSDrainAbortsThrottledFlush(t *testing.T) {
	_, _, srv, address, _ := startServer(t, server.Config{
		QoS: qos.Config{
			Enabled: true,
			Tenants: map[string]qos.Limits{
				// 16-byte bucket refilling 1 B/s: the first real flush
				// drains it and the second waits ~forever.
				"slow": {RateBytesPerSec: 1, BurstBytes: 16},
			},
		},
	})
	opts := fastOpts(4)
	opts.MaxAttempts = 1
	c, err := client.Dial(address, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.NewSessionTenant("slow", 0)
	if err != nil {
		t.Fatal(err)
	}

	flushErr := make(chan error, 1)
	go func() {
		err := sess.Flush([]core.LPage{qosPage(300, 4000)})
		if err == nil {
			err = sess.Flush([]core.LPage{qosPage(301, 4000)})
		}
		flushErr <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the flush park in the bucket

	drained := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
		close(drained)
	}()

	select {
	case err := <-flushErr:
		if err == nil {
			t.Fatal("throttled flush succeeded; want drain abort")
		}
		var re *netproto.RemoteError
		retryableRemote := errors.As(err, &re) && netproto.Retryable(re.Code)
		if !errors.Is(err, client.ErrAttemptsExhausted) && !retryableRemote {
			t.Fatalf("throttled flush err = %v, want retryable shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("throttled flush hung through drain")
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain hung")
	}
}
