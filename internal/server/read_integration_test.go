package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/server"
)

// startReadServer is startServer with the tiered read cache enabled, so
// the loopback integration exercises the full production read path:
// wire decode → backpressure admit → cache → scatter-gather flash read
// → vectored reply.
func startReadServer(t *testing.T, scfg server.Config) (*core.Controller, *flash.Device, string) {
	t.Helper()
	dev := flash.MustNewDevice(testGeometry(), flash.Latency{})
	cfg := core.DefaultConfig()
	cfg.AutoCheckpointLogBytes = 8 << 20
	cfg.ReadCacheBytes = 1 << 20
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(ctl, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = ln.Close() })
	return ctl, dev, ln.Addr().String()
}

func readPage(lpid addr.LPID, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(uint64(lpid)*31 + uint64(i)*7)
	}
	return p
}

// TestReadPathIntegration is the loopback round-trip for the read wire
// protocol: read_page and read_batch replies must be byte-exact against
// what was flushed, per-page not-found must come back as typed errors
// (read_page) or nil entries (read_batch), and warm re-reads must be
// served from the cache without touching flash.
func TestReadPathIntegration(t *testing.T) {
	_, dev, addrStr := startReadServer(t, server.Config{})
	cl, err := client.Dial(addrStr, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sess, err2 := cl.NewSession()
	if err2 != nil {
		t.Fatal(err2)
	}
	sizes := []int{64, 517, 4096, 9000, 128, 3000}
	var pages []core.LPage
	for i, sz := range sizes {
		pages = append(pages, core.LPage{LPID: addr.LPID(i + 1), Data: readPage(addr.LPID(i+1), sz)})
	}
	if err := sess.Flush(pages); err != nil {
		t.Fatal(err)
	}

	// read_page: byte-exact for every size, including ones large enough
	// to take the vectored (writev) reply path.
	for i, sz := range sizes {
		lpid := addr.LPID(i + 1)
		got, err := cl.Read(lpid)
		if err != nil {
			t.Fatalf("Read(%d): %v", lpid, err)
		}
		want := readPage(lpid, sz)
		if len(got) != addr.AlignUp(sz) || !bytes.Equal(got[:sz], want) {
			t.Fatalf("Read(%d): %d bytes, content mismatch", lpid, len(got))
		}
	}

	// read_page of an unmapped LPID: typed not-found across the wire.
	if _, err := cl.Read(999); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("Read(unmapped) err = %v, want core.ErrNotFound", err)
	}

	// read_batch: mixed found/missing, out of order; nil-ness is the
	// per-page not-found signal.
	lpids := []addr.LPID{4, 999, 1, 6, 2}
	got, err := cl.ReadBatch(lpids)
	if err != nil {
		t.Fatalf("ReadBatch: %v", err)
	}
	if len(got) != len(lpids) {
		t.Fatalf("ReadBatch: %d entries, want %d", len(got), len(lpids))
	}
	if got[1] != nil {
		t.Fatalf("unmapped entry not nil (%d bytes)", len(got[1]))
	}
	for gi, lpid := range lpids {
		if lpid == 999 {
			continue
		}
		want := readPage(lpid, sizes[int(lpid)-1])
		if !bytes.Equal(got[gi][:len(want)], want) {
			t.Fatalf("ReadBatch entry for LPID %d differs", lpid)
		}
	}

	// Warm reads are cache hits: flash RBLOCK reads must not grow.
	before := dev.Stats().RBlocksRead
	for i := 0; i < 40; i++ {
		if _, err := cl.Read(3); err != nil {
			t.Fatalf("warm Read: %v", err)
		}
	}
	if after := dev.Stats().RBlocksRead; after != before {
		t.Fatalf("warm wire reads touched flash: %d extra RBLOCKs", after-before)
	}
	sf, err := cl.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	snap := sf.Snap
	if snap.Counter("read.cache_hits") < 40 {
		t.Fatalf("read.cache_hits = %d, want >= 40", snap.Counter("read.cache_hits"))
	}
	if snap.Counter("read.reads") == 0 || snap.Counter("read.flash_loads") == 0 {
		t.Fatalf("read metrics missing: reads=%d flash_loads=%d",
			snap.Counter("read.reads"), snap.Counter("read.flash_loads"))
	}
}

// TestReadPathConcurrentClients drives overlapping reads and writes from
// many connections at once — the CI -race gate for the concurrent read
// path over the wire.
func TestReadPathConcurrentClients(t *testing.T) {
	_, _, addrStr := startReadServer(t, server.Config{})

	seed, err := client.Dial(addrStr, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := seed.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	const nPages = 24
	for i := 1; i <= nPages; i++ {
		if err := sess.Flush([]core.LPage{{LPID: addr.LPID(i), Data: readPage(addr.LPID(i), 400+i*13)}}); err != nil {
			t.Fatal(err)
		}
	}
	seed.Close()

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(addrStr, fastOpts(int64(10+w)))
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 120; i++ {
				lpid := addr.LPID(1 + (w*11+i)%nPages)
				want := readPage(lpid, 400+int(lpid)*13)
				var got []byte
				var err error
				if i%4 == 0 {
					var batch [][]byte
					batch, err = cl.ReadBatch([]addr.LPID{lpid})
					if err == nil {
						got = batch[0]
					}
				} else {
					got, err = cl.Read(lpid)
				}
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", w, err)
					return
				}
				if !bytes.Equal(got[:len(want)], want) {
					errc <- fmt.Errorf("reader %d: LPID %d content differs", w, lpid)
					return
				}
			}
		}(w)
	}
	// A writer churns a disjoint range through the same server while the
	// readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl, err := client.Dial(addrStr, fastOpts(99))
		if err != nil {
			errc <- err
			return
		}
		defer cl.Close()
		s, err := cl.NewSession()
		if err != nil {
			errc <- err
			return
		}
		for v := 0; v < 60; v++ {
			if err := s.Flush([]core.LPage{{LPID: addr.LPID(nPages + 1 + v%4), Data: readPage(addr.LPID(v), 1500)}}); err != nil {
				errc <- fmt.Errorf("writer: %v", err)
				return
			}
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case err := <-errc:
		t.Fatal(err)
	case <-done:
	}
}

// TestReadBackpressureDrain checks that reads blocked in the admit gate
// observe draining instead of hanging forever.
func TestReadBackpressureDrain(t *testing.T) {
	_, _, addrStr := startReadServer(t, server.Config{MaxInflightBytes: 1 << 20})
	cl, err := client.Dial(addrStr, client.Options{
		DialTimeout:    time.Second,
		RequestTimeout: 2 * time.Second,
		MaxAttempts:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess, err := cl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush([]core.LPage{{LPID: 1, Data: readPage(1, 2048)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read(1); err != nil {
		t.Fatal(err)
	}
}
