package server_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"eleos/internal/addr"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/server"
)

func testGeometry() flash.Geometry {
	return flash.Geometry{
		Channels: 4, EBlocksPerChannel: 48,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}
}

// startServer formats a fresh controller and serves it on loopback.
func startServer(t *testing.T, scfg server.Config) (*core.Controller, *flash.Device, *server.Server, string, chan error) {
	t.Helper()
	dev := flash.MustNewDevice(testGeometry(), flash.Latency{})
	cfg := core.DefaultConfig()
	cfg.AutoCheckpointLogBytes = 8 << 20
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(ctl, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	return ctl, dev, srv, ln.Addr().String(), done
}

func fastOpts(seed int64) client.Options {
	return client.Options{
		DialTimeout:    2 * time.Second,
		RequestTimeout: 5 * time.Second,
		MaxAttempts:    12,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     40 * time.Millisecond,
		Seed:           seed,
	}
}

// --- killer proxy -----------------------------------------------------------

// killerProxy sits between a client and the server, forwarding netproto
// frames. Arming it kills the next request's connection AFTER the full
// request frame reached the server but BEFORE any reply byte reaches the
// client — the mid-reply connection kill the retry protocol must absorb.
type killerProxy struct {
	ln      net.Listener
	backend string

	mu       sync.Mutex
	killNext bool
	kills    int
}

func newKillerProxy(t *testing.T, backend string) *killerProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killerProxy{ln: ln, backend: backend}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go p.pipe(conn)
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return p
}

func (p *killerProxy) addr() string { return p.ln.Addr().String() }

func (p *killerProxy) armKill() {
	p.mu.Lock()
	p.killNext = true
	p.mu.Unlock()
}

func (p *killerProxy) killCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kills
}

func (p *killerProxy) takeKill() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.killNext {
		return false
	}
	p.killNext = false
	p.kills++
	return true
}

func (p *killerProxy) pipe(cl net.Conn) {
	be, err := net.Dial("tcp", p.backend)
	if err != nil {
		_ = cl.Close()
		return
	}
	replies := make(chan struct{})
	go func() {
		_, _ = io.Copy(cl, be) // reply direction
		close(replies)
	}()
	finish := func() {
		_ = cl.Close()
		if tc, ok := be.(*net.TCPConn); ok {
			_ = tc.CloseWrite() // let the server finish reading, then see EOF
		}
		<-replies
		_ = be.Close()
	}
	defer finish()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(cl, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > 64<<20 {
			return
		}
		frame := make([]byte, 4+int(n))
		copy(frame, hdr[:])
		if _, err := io.ReadFull(cl, frame[4:]); err != nil {
			return
		}
		if _, err := be.Write(frame); err != nil {
			return
		}
		if p.takeKill() {
			// The request is on its way to the server; cut the client off
			// before the reply can cross back.
			return
		}
	}
}

// --- the acceptance scenario ------------------------------------------------

// TestLoopbackIntegration is the end-to-end durability + idempotence
// proof: N concurrent clients write over real TCP, one connection dies
// mid-reply and its client retries the same (sid, wsn) without the batch
// being double-applied, the server drains gracefully, and a controller
// reopened from the same flash recovers every acknowledged batch.
func TestLoopbackIntegration(t *testing.T) {
	ctl, dev, srv, addrStr, serveDone := startServer(t, server.Config{})
	proxy := newKillerProxy(t, addrStr)

	const (
		nClients      = 4
		batches       = 24
		pagesPerBatch = 3
	)
	type ack struct {
		lpid addr.LPID
		data []byte
	}
	var (
		mu    sync.Mutex
		acked []ack
		sids  []uint64
	)
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	var killedClient *client.Client
	for w := 0; w < nClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			target := addrStr
			if w == 0 {
				target = proxy.addr()
			}
			cl, err := client.Dial(target, fastOpts(int64(w+1)))
			if err != nil {
				errs <- fmt.Errorf("client %d dial: %w", w, err)
				return
			}
			if w == 0 {
				killedClient = cl
			}
			sess, err := cl.NewSession()
			if err != nil {
				errs <- fmt.Errorf("client %d session: %w", w, err)
				return
			}
			mu.Lock()
			sids = append(sids, sess.SID())
			mu.Unlock()
			for i := 0; i < batches; i++ {
				if w == 0 && i == batches/2 {
					proxy.armKill()
				}
				pages := make([]core.LPage, pagesPerBatch)
				local := make([]ack, pagesPerBatch)
				for j := range pages {
					lpid := addr.LPID(uint64(w+1)*1_000_000 + uint64(i*pagesPerBatch+j))
					data := []byte(fmt.Sprintf("client=%d batch=%d page=%d payload", w, i, j))
					pages[j] = core.LPage{LPID: lpid, Data: data}
					local[j] = ack{lpid: lpid, data: data}
				}
				if err := sess.Flush(pages); err != nil {
					errs <- fmt.Errorf("client %d batch %d: %w", w, i, err)
					return
				}
				mu.Lock()
				acked = append(acked, local...)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The kill really happened, the killed client really retried, and the
	// server really deduplicated the resent WSN instead of re-applying.
	if proxy.killCount() == 0 {
		t.Fatal("proxy never killed a connection")
	}
	cs := killedClient.Stats()
	if cs.Retries == 0 || cs.Dials < 2 {
		t.Fatalf("killed client did not retry/reconnect: %+v", cs)
	}
	st := ctl.Stats()
	if st.StaleWrites == 0 {
		t.Fatal("retry was not deduplicated by the session WSN protocol")
	}
	if got, want := st.BatchesWritten, int64(nClients*batches); got != want {
		t.Fatalf("BatchesWritten = %d, want %d (double-apply or loss)", got, want)
	}

	// Every acknowledged page is readable over the network.
	verifier, err := client.Dial(addrStr, fastOpts(99))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range acked {
		got, err := verifier.Read(a.lpid)
		if err != nil {
			t.Fatalf("read %d: %v", a.lpid, err)
		}
		if !bytes.HasPrefix(got, a.data) {
			t.Fatalf("lpid %d: got %q, want prefix %q", a.lpid, got, a.data)
		}
	}

	// Graceful drain: Serve returns ErrDraining, and the drain checkpoint
	// lands.
	ckptsBefore := ctl.Stats().Checkpoints
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case err := <-serveDone:
		if !errors.Is(err, server.ErrDraining) {
			t.Fatalf("Serve returned %v, want ErrDraining", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if ctl.Stats().Checkpoints <= ckptsBefore {
		t.Fatal("drain did not checkpoint")
	}
	if _, err := client.Dial(addrStr, client.Options{MaxAttempts: 1, DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial succeeded after drain closed the listener")
	}

	// Power-cycle: recover a fresh controller from the same flash and
	// verify every acknowledged batch and every session WSN survived.
	ctl.Crash()
	ctl2, err := core.Open(dev, core.DefaultConfig())
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	for _, a := range acked {
		got, err := ctl2.Read(a.lpid)
		if err != nil {
			t.Fatalf("recovered read %d: %v", a.lpid, err)
		}
		if !bytes.HasPrefix(got, a.data) {
			t.Fatalf("recovered lpid %d: got %q, want prefix %q", a.lpid, got, a.data)
		}
	}
	for _, sid := range sids {
		high, err := ctl2.SessionHighestWSN(sid)
		if err != nil {
			t.Fatalf("recovered session %d: %v", sid, err)
		}
		if high != batches {
			t.Fatalf("recovered session %d: highest WSN %d, want %d", sid, high, batches)
		}
	}
}

// --- focused behaviours -----------------------------------------------------

// TestStaleDuplicateNotReapplied resends an already-applied WSN carrying
// DIFFERENT content over a real socket: the server must re-acknowledge
// the highest WSN and must not overwrite the original data.
func TestStaleDuplicateNotReapplied(t *testing.T) {
	ctl, _, _, addrStr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(addrStr, fastOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	sid, err := cl.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	orig := []core.LPage{{LPID: 42, Data: []byte("original content")}}
	if _, err := cl.Flush(sid, 1, orig); err != nil {
		t.Fatal(err)
	}
	dup := []core.LPage{{LPID: 42, Data: []byte("SPOOFED REPLAY!!")}}
	high, err := cl.Flush(sid, 1, dup)
	if err != nil {
		t.Fatalf("stale duplicate errored: %v", err)
	}
	if high != 1 {
		t.Fatalf("re-ACK WSN = %d, want 1", high)
	}
	got, err := cl.Read(42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("original content")) {
		t.Fatalf("duplicate WSN overwrote data: %q", got)
	}
	if ctl.Stats().StaleWrites != 1 {
		t.Fatalf("StaleWrites = %d, want 1", ctl.Stats().StaleWrites)
	}
}

// TestCrossConnectionWSNOrdering sends WSN 2 on one connection before
// WSN 1 on another: the early batch must wait and both must apply in
// order.
func TestCrossConnectionWSNOrdering(t *testing.T) {
	ctl, _, _, addrStr, _ := startServer(t, server.Config{})
	cl1, err := client.Dial(addrStr, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := client.Dial(addrStr, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	sid, err := cl1.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() {
		_, err := cl2.Flush(sid, 2, []core.LPage{{LPID: 8, Data: []byte("second")}})
		done2 <- err
	}()
	time.Sleep(50 * time.Millisecond) // let WSN 2 arrive first and block
	if _, err := cl1.Flush(sid, 1, []core.LPage{{LPID: 8, Data: []byte("first")}}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("wsn 2: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("early WSN never unblocked")
	}
	got, err := cl1.Read(8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("second")) {
		t.Fatalf("final content %q, want the WSN-2 write", got)
	}
	if high, _ := ctl.SessionHighestWSN(sid); high != 2 {
		t.Fatalf("highest WSN %d, want 2", high)
	}
}

// TestConnLimit: past MaxConns, new connections are refused with a
// retryable busy error and succeed once a slot frees.
func TestConnLimit(t *testing.T) {
	_, _, srv, addrStr, _ := startServer(t, server.Config{MaxConns: 1})
	cl1, err := client.Dial(addrStr, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl1.Flush(0, 0, []core.LPage{{LPID: 1, Data: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	// Free the slot while client 2 is retrying against the limit.
	go func() {
		time.Sleep(100 * time.Millisecond)
		_ = cl1.Close()
	}()
	cl2, err := client.Dial(addrStr, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Read(1); err != nil {
		t.Fatalf("client 2 never got a slot: %v", err)
	}
	if srv.Stats().Rejected == 0 {
		t.Fatal("no connection was rejected at the limit")
	}
}

// TestBackpressureBounded: concurrent flushes never hold more admitted
// batch bytes than MaxInflightBytes.
func TestBackpressureBounded(t *testing.T) {
	const bound = 4096
	_, _, srv, addrStr, _ := startServer(t, server.Config{MaxInflightBytes: bound})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(addrStr, fastOpts(int64(w+1)))
			if err != nil {
				errs <- err
				return
			}
			sess, err := cl.NewSession()
			if err != nil {
				errs <- err
				return
			}
			data := make([]byte, 1500)
			for i := 0; i < 10; i++ {
				lpid := addr.LPID(uint64(w+1)*10_000 + uint64(i))
				if err := sess.Flush([]core.LPage{{LPID: lpid, Data: data}}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.PeakInflight > bound {
		t.Fatalf("peak inflight %d exceeded bound %d", st.PeakInflight, bound)
	}
	if st.InflightBytes != 0 {
		t.Fatalf("inflight bytes leaked: %d", st.InflightBytes)
	}
	if st.Batches != 40 {
		t.Fatalf("Batches = %d, want 40", st.Batches)
	}
}

// TestHostileFrames: a peer sending garbage loses its connection; the
// server keeps serving others.
func TestHostileFrames(t *testing.T) {
	_, _, srv, addrStr, _ := startServer(t, server.Config{MaxFrameBytes: 1 << 16})
	raw, err := net.Dial("tcp", addrStr)
	if err != nil {
		t.Fatal(err)
	}
	// A forged 4 GB length prefix must not be allocated or tolerated.
	var hostile [8]byte
	binary.LittleEndian.PutUint32(hostile[:4], 0xFFFFFFFF)
	if _, err := raw.Write(hostile[:]); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server answered a hostile frame instead of closing")
	}
	_ = raw.Close()
	// The server survived and still serves well-formed clients.
	cl, err := client.Dial(addrStr, fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Flush(0, 0, []core.LPage{{LPID: 2, Data: []byte("fine")}}); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().BadFrames == 0 {
		t.Fatal("hostile frame not counted")
	}
}

// TestReadErrorsMapToSentinels: a missing LPID crosses the wire as
// core.ErrNotFound and is not retried.
func TestReadErrorsMapToSentinels(t *testing.T) {
	_, _, _, addrStr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(addrStr, fastOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	before := cl.Stats().Requests
	if _, err := cl.Read(999_999); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("missing LPID error = %v, want core.ErrNotFound", err)
	}
	if got := cl.Stats().Requests - before; got != 1 {
		t.Fatalf("not-found was retried: %d round trips", got)
	}
}

// TestDrainIdle: draining with only idle connections returns promptly,
// checkpoints, and refuses later requests.
func TestDrainIdle(t *testing.T) {
	ctl, _, srv, addrStr, serveDone := startServer(t, server.Config{})
	cl, err := client.Dial(addrStr, fastOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Flush(0, 0, []core.LPage{{LPID: 3, Data: []byte("pre-drain")}}); err != nil {
		t.Fatal(err)
	}
	ckpts := ctl.Stats().Checkpoints
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain with idle conns: %v", err)
	}
	if ctl.Stats().Checkpoints <= ckpts {
		t.Fatal("drain did not checkpoint")
	}
	if err := <-serveDone; !errors.Is(err, server.ErrDraining) {
		t.Fatalf("Serve returned %v", err)
	}
	if _, err := cl.Read(3); err == nil {
		t.Fatal("request succeeded after drain")
	}
	// Drain is idempotent.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestStatsOverWire round-trips controller stats as JSON.
func TestStatsOverWire(t *testing.T) {
	_, _, _, addrStr, _ := startServer(t, server.Config{})
	cl, err := client.Dial(addrStr, fastOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Flush(0, 0, []core.LPage{{LPID: 9, Data: []byte("counted")}}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.ControllerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchesWritten != 1 || st.PagesWritten != 1 {
		t.Fatalf("stats over wire: %+v", st)
	}
}
