// Package btree provides the B+-tree storage engine pieces of §IX-A3's
// TPC-C experiment: the paper ran TPC-C on AsterixDB's B+-tree with *page
// compression* enabled, so that 4 KB pages became variable-size pages
// (averaging 1.91 KB) whose write trace drives Fig. 9 and Table II.
//
// The tree structure itself is the in-place-update page tree from
// internal/bwtree (a B+-tree with an in-memory search layer); this package
// contributes the storage-side behaviours:
//
//   - CompressingStore compresses every flushed page image with DEFLATE,
//     turning the engine's fixed-size pages into variable-size pages;
//   - CaptureStore observes the flushed (compressed) page sizes, which is
//     how the experiment's I/O trace is collected.
package btree

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"eleos/internal/bwtree"
)

// CompressingStore wraps a PageStore, DEFLATE-compressing page images on
// the way down and decompressing on the way up.
type CompressingStore struct {
	Inner bwtree.PageStore
	// Level is the flate level (0 = flate.DefaultCompression).
	Level int

	rawBytes        atomic.Int64
	compressedBytes atomic.Int64
}

// FlushBatch compresses each page and flushes the batch.
func (s *CompressingStore) FlushBatch(pages []bwtree.Page) error {
	out := make([]bwtree.Page, len(pages))
	for i, p := range pages {
		c, err := s.compress(p.Data)
		if err != nil {
			return err
		}
		s.rawBytes.Add(int64(len(p.Data)))
		s.compressedBytes.Add(int64(len(c)))
		out[i] = bwtree.Page{PID: p.PID, Data: c}
	}
	return s.Inner.FlushBatch(out)
}

// ReadPage reads and decompresses one page.
func (s *CompressingStore) ReadPage(pid uint64) ([]byte, error) {
	c, err := s.Inner.ReadPage(pid)
	if err != nil {
		return nil, err
	}
	r := flate.NewReader(bytes.NewReader(c))
	defer r.Close()
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("btree: decompress page %d: %w", pid, err)
	}
	return raw, nil
}

// BytesWritten reports compressed bytes shipped downstream.
func (s *CompressingStore) BytesWritten() int64 { return s.Inner.BytesWritten() }

// Ratio returns compressedBytes/rawBytes so far (0 if nothing flushed).
func (s *CompressingStore) Ratio() float64 {
	raw := s.rawBytes.Load()
	if raw == 0 {
		return 0
	}
	return float64(s.compressedBytes.Load()) / float64(raw)
}

func (s *CompressingStore) compress(raw []byte) ([]byte, error) {
	level := s.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CaptureStore observes flushed page sizes, recording the I/O trace of
// §IX-A3 ("the I/O trace was collected during the running phase").
type CaptureStore struct {
	Inner bwtree.PageStore

	mu        sync.Mutex
	capturing bool
	writes    []PageWrite
}

// PageWrite is one trace event: a page of Size bytes written under PID.
type PageWrite struct {
	PID  uint64
	Size int
}

// StartCapture begins recording flushes.
func (s *CaptureStore) StartCapture() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capturing = true
	s.writes = nil
}

// StopCapture stops recording and returns the trace.
func (s *CaptureStore) StopCapture() []PageWrite {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capturing = false
	out := s.writes
	s.writes = nil
	return out
}

// FlushBatch records sizes (when capturing) and flushes downstream.
func (s *CaptureStore) FlushBatch(pages []bwtree.Page) error {
	s.mu.Lock()
	if s.capturing {
		for _, p := range pages {
			s.writes = append(s.writes, PageWrite{PID: p.PID, Size: len(p.Data)})
		}
	}
	s.mu.Unlock()
	return s.Inner.FlushBatch(pages)
}

// ReadPage passes through.
func (s *CaptureStore) ReadPage(pid uint64) ([]byte, error) { return s.Inner.ReadPage(pid) }

// BytesWritten passes through.
func (s *CaptureStore) BytesWritten() int64 { return s.Inner.BytesWritten() }
