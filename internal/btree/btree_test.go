package btree

import (
	"bytes"
	"strings"
	"testing"

	"eleos/internal/bwtree"
)

func TestCompressingStoreRoundTrip(t *testing.T) {
	s := &CompressingStore{Inner: bwtree.NewMemStore()}
	text := []byte(strings.Repeat("HELLO COMPRESSIBLE WORLD ", 100))
	if err := s.FlushBatch([]bwtree.Page{{PID: 1, Data: text}}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPage(1)
	if err != nil || !bytes.Equal(got, text) {
		t.Fatalf("roundtrip failed: %v", err)
	}
	if r := s.Ratio(); r <= 0 || r >= 0.5 {
		t.Fatalf("repetitive text should compress hard, ratio=%.2f", r)
	}
}

func TestCompressingStoreIncompressible(t *testing.T) {
	s := &CompressingStore{Inner: bwtree.NewMemStore()}
	data := make([]byte, 4096)
	state := uint64(1)
	for i := range data {
		state = state*6364136223846793005 + 1
		data[i] = byte(state >> 56)
	}
	if err := s.FlushBatch([]bwtree.Page{{PID: 2, Data: data}}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPage(2)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("incompressible roundtrip failed")
	}
}

func TestCompressingStoreEmptyRatio(t *testing.T) {
	s := &CompressingStore{Inner: bwtree.NewMemStore()}
	if s.Ratio() != 0 {
		t.Fatal("empty store ratio should be 0")
	}
}

func TestCaptureStoreRecordsOnlyWhileCapturing(t *testing.T) {
	c := &CaptureStore{Inner: bwtree.NewMemStore()}
	pg := []bwtree.Page{{PID: 1, Data: make([]byte, 100)}}
	if err := c.FlushBatch(pg); err != nil {
		t.Fatal(err)
	}
	c.StartCapture()
	if err := c.FlushBatch([]bwtree.Page{{PID: 2, Data: make([]byte, 200)}, {PID: 3, Data: make([]byte, 300)}}); err != nil {
		t.Fatal(err)
	}
	writes := c.StopCapture()
	if len(writes) != 2 || writes[0] != (PageWrite{PID: 2, Size: 200}) || writes[1] != (PageWrite{PID: 3, Size: 300}) {
		t.Fatalf("capture wrong: %+v", writes)
	}
	// After StopCapture, flushes are not recorded.
	_ = c.FlushBatch(pg)
	if got := c.StopCapture(); len(got) != 0 {
		t.Fatal("capture leaked")
	}
	// Reads pass through.
	if _, err := c.ReadPage(1); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedTreeEndToEnd(t *testing.T) {
	store := &CompressingStore{Inner: bwtree.NewMemStore()}
	tree, err := bwtree.New(store, bwtree.Config{MaxPageBytes: 2048, WriteBufferBytes: 8192, CacheBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 500; k++ {
		row := []byte(strings.Repeat("ROW DATA ", 10))
		if err := tree.Set(k, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 500; k += 7 {
		got, err := tree.Get(k)
		if err != nil || string(got) != strings.Repeat("ROW DATA ", 10) {
			t.Fatalf("key %d wrong after compressed store roundtrip: %v", k, err)
		}
	}
}
