package nvme

import (
	"testing"
	"time"
)

func TestPacketsMatchesPaperFootnote(t *testing.T) {
	// The paper's footnote 5: a 1 MB buffer is split into 17 packets.
	if got := Packets(1 << 20); got != 17 {
		t.Fatalf("Packets(1MB) = %d, want 17", got)
	}
	if Packets(0) != 0 || Packets(-5) != 0 {
		t.Fatal("non-positive sizes should need 0 packets")
	}
	if Packets(1) != 1 || Packets(MaxPacketBytes) != 1 || Packets(MaxPacketBytes+1) != 2 {
		t.Fatal("packet boundary arithmetic wrong")
	}
}

func TestBatchVsBlockContextAsymmetry(t *testing.T) {
	// One 1 MB batch command must create 1 context; 256 block commands for
	// the same bytes create 256 (the paper's 17x-internal-writes effect is
	// per-packet contexts; with 4 KB blocks it is per-block).
	batch := NewMeter(HighEnd())
	batch.WriteCommand(1<<20, 256, 1)
	block := NewMeter(HighEnd())
	for i := 0; i < 256; i++ {
		block.WriteCommand(4096, 1, 1)
	}
	if batch.Contexts != 1 || block.Contexts != 256 {
		t.Fatalf("contexts: batch=%d block=%d", batch.Contexts, block.Contexts)
	}
	if block.Ctrl <= batch.Ctrl {
		t.Fatalf("block controller time (%v) should exceed batch (%v)", block.Ctrl, batch.Ctrl)
	}
	if block.Commands != 256 || batch.Commands != 1 {
		t.Fatal("command counts wrong")
	}
	if batch.Bytes != block.Bytes {
		t.Fatal("bytes should match")
	}
}

func TestElapsedIsBottleneck(t *testing.T) {
	m := NewMeter(HighEnd())
	m.Host = 5 * time.Millisecond
	m.Ctrl = 9 * time.Millisecond
	m.Wire = time.Millisecond
	if m.Elapsed(0) != 9*time.Millisecond {
		t.Fatalf("Elapsed = %v", m.Elapsed(0))
	}
	if m.Bottleneck(0) != "controller-cpu" {
		t.Fatalf("Bottleneck = %s", m.Bottleneck(0))
	}
	if m.Elapsed(20*time.Millisecond) != 20*time.Millisecond {
		t.Fatal("media should dominate")
	}
	if m.Bottleneck(20*time.Millisecond) != "flash" {
		t.Fatalf("Bottleneck = %s", m.Bottleneck(20*time.Millisecond))
	}
}

func TestProfilesShape(t *testing.T) {
	// The STT100 controller must be far slower per byte than HighEnd —
	// that is what moves the paper's Table II bottleneck to the CPU.
	weak, fast := STT100(), HighEnd()
	if weak.CtrlPerByte <= fast.CtrlPerByte {
		t.Fatal("STT100 should have higher per-byte cost")
	}
	if weak.CtrlPerPacket <= fast.CtrlPerPacket {
		t.Fatal("STT100 should have higher per-packet cost")
	}
	// Batch of 1 MB on STT100 should take on the order of 1MB/85MB/s.
	m := NewMeter(weak)
	m.WriteCommand(1<<20, 256, 1)
	perSec := float64(time.Second) / float64(m.Ctrl)
	mbps := perSec * 1.0 // 1 MB per command
	if mbps < 50 || mbps > 150 {
		t.Fatalf("STT100 staging rate %.1f MB/s, want ~85", mbps)
	}
}

func TestHighEndTableIIShape(t *testing.T) {
	// Reproduce Table II's ratios coarsely at the meter level.
	// Block: one 4 KB command per page.
	block := NewMeter(HighEnd())
	block.WriteCommand(4096, 1, 1)
	blockPagesPerSec := float64(time.Second) / float64(block.Ctrl)

	// Batch FP: 1 MB buffer of 256 fixed 4 KB pages.
	fp := NewMeter(HighEnd())
	fp.WriteCommand(1<<20, 256, 1)
	fpPagesPerSec := 256 * float64(time.Second) / float64(fp.Ctrl)

	// Batch VP: 1 MB of ~524 avg-2KB pages.
	vp := NewMeter(HighEnd())
	vp.WriteCommand(1<<20, 524, 1)
	vpPagesPerSec := 524 * float64(time.Second) / float64(vp.Ctrl)

	if r := fpPagesPerSec / blockPagesPerSec; r < 3 || r > 12 {
		t.Fatalf("FP/Block ratio %.1f outside Table II's ~4.8x ballpark", r)
	}
	if r := vpPagesPerSec / fpPagesPerSec; r < 1.4 || r > 2.5 {
		t.Fatalf("VP/FP ratio %.1f outside Table II's ~1.76x ballpark", r)
	}
}

func TestReadCommand(t *testing.T) {
	m := NewMeter(HighEnd())
	m.ReadCommand(4096)
	if m.Commands != 1 || m.Packets != 1 || m.Bytes != 4096 {
		t.Fatalf("read accounting: %+v", m)
	}
	if m.Host == 0 || m.Ctrl == 0 || m.Wire == 0 {
		t.Fatal("read should charge all resources")
	}
}

func TestComputeCharges(t *testing.T) {
	m := NewMeter(HighEnd())
	m.HostCompute(time.Millisecond)
	m.CtrlCompute(2 * time.Millisecond)
	if m.Host != time.Millisecond || m.Ctrl != 2*time.Millisecond {
		t.Fatal("compute charges wrong")
	}
}

func TestReset(t *testing.T) {
	m := NewMeter(STT100())
	m.WriteCommand(1<<20, 10, 1)
	m.Reset()
	if m.Host != 0 || m.Ctrl != 0 || m.Wire != 0 || m.Commands != 0 {
		t.Fatal("Reset incomplete")
	}
	if m.Profile().Name != "stt100" {
		t.Fatal("Reset lost profile")
	}
}

func TestStringHasProfile(t *testing.T) {
	m := NewMeter(HighEnd())
	if s := m.String(); len(s) == 0 || s[:5] != "meter" {
		t.Fatalf("String = %q", s)
	}
}
