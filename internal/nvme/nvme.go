// Package nvme models the host↔SSD transport of the paper's testbed:
// NVMe-oF over TCP through stream sockets (§IX-A1).
//
// The model is pure cost accounting in virtual time. A write buffer is
// split into packets bounded by the maximum IP datagram (65,532 bytes
// including a 20-byte header — the paper's footnote 5: a 1 MB buffer
// becomes 17 packets). Costs are charged to three resources:
//
//   - host CPU: per-command I/O execution path plus per-packet send cost;
//   - controller CPU: per-packet socket processing (the dominant cost on
//     the paper's ARM controller), per-write-context creation, per-LPAGE
//     batch parsing, per-byte staging, and per-commit-record force;
//   - wire: bytes over the configured link bandwidth.
//
// A workload's elapsed time is the busiest resource, including the flash
// media time reported by the device — the pipelined-bottleneck model that
// reproduces who wins in Fig. 9, Table II and Fig. 10.
//
// The crucial asymmetry between the interfaces (§IX-C1): the batch
// interface creates ONE write context per buffer, while the block
// interface creates one per command — 17× more internal writes and commit
// records for the same 1 MB.
package nvme

import (
	"fmt"
	"time"
)

// MaxPacketBytes is the data capacity of one NVMe-oF/TCP packet: the
// maximum IP datagram (65,532 bytes) minus the 20-byte header.
const MaxPacketBytes = 65532 - 20

// Packets returns how many transport packets carry n bytes (1 MB -> 17).
func Packets(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + MaxPacketBytes - 1) / MaxPacketBytes
}

// CostProfile parameterises the host and controller CPU and the wire.
type CostProfile struct {
	Name string

	HostPerCommand time.Duration // host I/O execution path per command
	HostPerPacket  time.Duration // host-side packetisation/send

	CtrlPerPacket   time.Duration // controller socket/TCP processing
	CtrlPerContext  time.Duration // write-context creation & management
	CtrlPerPage     time.Duration // per-LPAGE parse of a batch
	CtrlPerByte     time.Duration // staging/copy bandwidth of the controller
	CtrlPerLogForce time.Duration // commit-record generation & flush wait

	WireBytesPerSec float64 // link bandwidth (paper: 100 Gbps)
}

// STT100 models the paper's Broadcom STT100 platform: an ARM Cortex-A72
// controller whose socket stack consumes most of its CPU (>60% in the
// paper), capping controller throughput near the observed ~85 MB/s.
func STT100() CostProfile {
	return CostProfile{
		Name:            "stt100",
		HostPerCommand:  4 * time.Microsecond,
		HostPerPacket:   1 * time.Microsecond,
		CtrlPerPacket:   22 * time.Microsecond,
		CtrlPerContext:  65 * time.Microsecond,
		CtrlPerPage:     600 * time.Nanosecond,
		CtrlPerByte:     11 * time.Nanosecond, // ~90 MB/s staging
		CtrlPerLogForce: 18 * time.Microsecond,
		WireBytesPerSec: 100e9 / 8,
	}
}

// HighEnd models the paper's Table II setup: the same controller logic run
// as a simulator on a high-end server CPU, so the per-packet/context costs
// shrink and staging runs near memory bandwidth.
func HighEnd() CostProfile {
	return CostProfile{
		Name:            "highend",
		HostPerCommand:  2 * time.Microsecond,
		HostPerPacket:   300 * time.Nanosecond,
		CtrlPerPacket:   2 * time.Microsecond,
		CtrlPerContext:  12 * time.Microsecond,
		CtrlPerPage:     150 * time.Nanosecond,
		CtrlPerByte:     time.Nanosecond, // ~1 GB/s staging
		CtrlPerLogForce: 3 * time.Microsecond,
		WireBytesPerSec: 100e9 / 8,
	}
}

// Meter accumulates virtual busy time per resource.
type Meter struct {
	profile CostProfile

	Host time.Duration
	Ctrl time.Duration
	Wire time.Duration

	Commands int64
	Packets  int64
	Contexts int64
	Bytes    int64
}

// NewMeter creates a meter for the given profile.
func NewMeter(p CostProfile) *Meter { return &Meter{profile: p} }

// Profile returns the meter's cost profile.
func (m *Meter) Profile() CostProfile { return m.profile }

// WriteCommand charges one write command carrying `bytes` of payload that
// the controller parses into `pages` LPAGEs under `contexts` write
// contexts. The batch interface passes contexts = 1 per buffer; the block
// interface issues one command (hence one context) per block.
func (m *Meter) WriteCommand(bytes, pages, contexts int) {
	p := m.profile
	pk := Packets(bytes)
	m.Host += p.HostPerCommand + time.Duration(pk)*p.HostPerPacket
	m.Ctrl += time.Duration(pk)*p.CtrlPerPacket +
		time.Duration(contexts)*(p.CtrlPerContext+p.CtrlPerLogForce) +
		time.Duration(pages)*p.CtrlPerPage +
		time.Duration(bytes)*p.CtrlPerByte
	if p.WireBytesPerSec > 0 {
		m.Wire += time.Duration(float64(bytes) / p.WireBytesPerSec * float64(time.Second))
	}
	m.Commands++
	m.Packets += int64(pk)
	m.Contexts += int64(contexts)
	m.Bytes += int64(bytes)
}

// ReadCommand charges one read command returning `bytes`.
func (m *Meter) ReadCommand(bytes int) {
	p := m.profile
	pk := Packets(bytes)
	m.Host += p.HostPerCommand + time.Duration(pk)*p.HostPerPacket
	m.Ctrl += time.Duration(pk)*p.CtrlPerPacket + time.Duration(bytes)*p.CtrlPerByte
	if p.WireBytesPerSec > 0 {
		m.Wire += time.Duration(float64(bytes) / p.WireBytesPerSec * float64(time.Second))
	}
	m.Commands++
	m.Packets += int64(pk)
	m.Bytes += int64(bytes)
}

// HostCompute charges host-side CPU work outside the I/O path (host-based
// log structuring: GC parsing, mapping maintenance).
func (m *Meter) HostCompute(d time.Duration) { m.Host += d }

// CtrlCompute charges controller-side CPU work outside the command path
// (in-SSD GC).
func (m *Meter) CtrlCompute(d time.Duration) { m.Ctrl += d }

// Elapsed returns the workload's virtual elapsed time: the busiest of the
// host CPU, controller CPU, wire, and flash media (pipelined bottleneck).
func (m *Meter) Elapsed(media time.Duration) time.Duration {
	e := m.Host
	if m.Ctrl > e {
		e = m.Ctrl
	}
	if m.Wire > e {
		e = m.Wire
	}
	if media > e {
		e = media
	}
	return e
}

// Bottleneck names the binding resource for reporting.
func (m *Meter) Bottleneck(media time.Duration) string {
	e := m.Elapsed(media)
	switch e {
	case m.Ctrl:
		return "controller-cpu"
	case m.Host:
		return "host-cpu"
	case m.Wire:
		return "wire"
	default:
		return "flash"
	}
}

// Reset zeroes the meter.
func (m *Meter) Reset() {
	p := m.profile
	*m = Meter{profile: p}
}

func (m *Meter) String() string {
	return fmt.Sprintf("meter(%s host=%v ctrl=%v wire=%v cmds=%d pkts=%d ctxs=%d bytes=%d)",
		m.profile.Name, m.Host, m.Ctrl, m.Wire, m.Commands, m.Packets, m.Contexts, m.Bytes)
}
