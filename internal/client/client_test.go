package client

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"eleos/internal/core"
	"eleos/internal/netproto"
)

// fakeServer runs a scripted netproto endpoint: each script entry
// handles one accepted connection.
type connScript func(t *testing.T, conn net.Conn)

func fakeServer(t *testing.T, scripts ...connScript) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, script := range scripts {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			script(t, conn)
			_ = conn.Close()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln.Addr().String()
}

// readOne consumes one request frame.
func readOne(t *testing.T, conn net.Conn) (byte, []byte) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, body, err := netproto.ReadFrame(conn, 0)
	if err != nil {
		t.Errorf("fake server read: %v", err)
	}
	return typ, body
}

func reply(t *testing.T, conn net.Conn, typ byte, body []byte) {
	t.Helper()
	if err := netproto.WriteFrame(conn, typ, body); err != nil {
		t.Errorf("fake server write: %v", err)
	}
}

func testOpts(seed int64) Options {
	return Options{
		DialTimeout:    time.Second,
		RequestTimeout: 2 * time.Second,
		MaxAttempts:    6,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
		Seed:           seed,
	}
}

// TestRetryAfterMidReplyKill: the server applies the flush but the
// connection dies before the reply; the client must reconnect and resend
// the same (sid, wsn), and succeed on the second connection's re-ACK.
func TestRetryAfterMidReplyKill(t *testing.T) {
	var firstSID, firstWSN, secondSID, secondWSN uint64
	addr := fakeServer(t,
		func(t *testing.T, conn net.Conn) {
			typ, body := readOne(t, conn)
			if typ != netproto.MsgFlushBatch {
				t.Errorf("first request type 0x%02x", typ)
			}
			firstSID, firstWSN, _, _ = netproto.ParseFlush(body)
			// Kill without replying: the "applied but un-ACKed" case.
		},
		func(t *testing.T, conn net.Conn) {
			typ, body := readOne(t, conn)
			if typ != netproto.MsgFlushBatch {
				t.Errorf("retry request type 0x%02x", typ)
			}
			secondSID, secondWSN, _, _ = netproto.ParseFlush(body)
			reply(t, conn, netproto.MsgRespFlushBatch, netproto.U64Body(secondWSN))
		},
	)
	cl, err := Dial(addr, testOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	high, err := cl.Flush(77, 5, []core.LPage{{LPID: 1, Data: []byte("x")}})
	if err != nil {
		t.Fatalf("flush across kill: %v", err)
	}
	if high != 5 {
		t.Fatalf("acked WSN %d, want 5", high)
	}
	if firstSID != secondSID || firstWSN != secondWSN {
		t.Fatalf("retry changed identity: (%d,%d) then (%d,%d)", firstSID, firstWSN, secondSID, secondWSN)
	}
	st := cl.Stats()
	if st.Retries != 1 || st.Dials != 2 {
		t.Fatalf("stats after kill: %+v", st)
	}
}

// TestOpenSessionNotResentAfterSend: a reply lost after the request was
// sent must NOT be retried for the non-idempotent open.
func TestOpenSessionNotResentAfterSend(t *testing.T) {
	addr := fakeServer(t,
		func(t *testing.T, conn net.Conn) {
			readOne(t, conn) // swallow the open, kill the conn
		},
		func(t *testing.T, conn net.Conn) {
			t.Error("open_session was resent after a post-send failure")
		},
	)
	cl, err := Dial(addr, testOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.OpenSession(); err == nil {
		t.Fatal("lost open_session reply reported success")
	}
	if errors.Is(err, ErrAttemptsExhausted) {
		t.Fatal("open_session burned the retry budget")
	}
}

// TestBusyRetriedTransparently: retryable server rejections (busy,
// draining) are absorbed by the retry loop even for non-idempotent
// requests, since the server did not execute them.
func TestBusyRetriedTransparently(t *testing.T) {
	addr := fakeServer(t,
		func(t *testing.T, conn net.Conn) {
			readOne(t, conn)
			reply(t, conn, netproto.MsgRespError, netproto.ErrorBody(netproto.CodeBusy, "full"))
		},
		func(t *testing.T, conn net.Conn) {
			readOne(t, conn)
			reply(t, conn, netproto.MsgRespOpenSession, netproto.U64Body(1234))
		},
	)
	cl, err := Dial(addr, testOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	sid, err := cl.OpenSession()
	if err != nil {
		t.Fatalf("busy not retried: %v", err)
	}
	if sid != 1234 {
		t.Fatalf("sid = %d", sid)
	}
}

// TestNonRetryableFailsFast: a bad-batch rejection returns immediately
// with the mapped sentinel.
func TestNonRetryableFailsFast(t *testing.T) {
	addr := fakeServer(t, func(t *testing.T, conn net.Conn) {
		readOne(t, conn)
		reply(t, conn, netproto.MsgRespError, netproto.ErrorBody(netproto.CodeBadBatch, "magic"))
	})
	cl, err := Dial(addr, testOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	before := cl.Stats().Requests
	_, err = cl.FlushWire(1, 1, []byte("garbage"))
	if !errors.Is(err, core.ErrBadBatch) {
		t.Fatalf("error = %v, want core.ErrBadBatch", err)
	}
	if cl.Stats().Requests-before != 1 {
		t.Fatal("non-retryable error was retried")
	}
}

// TestUnexpectedReplyTypeDropsConn: framing desync is fatal for the
// connection but the (idempotent) request recovers on a fresh one.
func TestUnexpectedReplyTypeDropsConn(t *testing.T) {
	addr := fakeServer(t,
		func(t *testing.T, conn net.Conn) {
			readOne(t, conn)
			reply(t, conn, netproto.MsgRespStats, []byte("{}")) // wrong type for a read
		},
		func(t *testing.T, conn net.Conn) {
			readOne(t, conn)
			reply(t, conn, netproto.MsgRespRead, []byte("recovered"))
		},
	)
	cl, err := Dial(addr, testOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	data, err := cl.Read(1)
	if err != nil {
		t.Fatalf("read across desync: %v", err)
	}
	if string(data) != "recovered" {
		t.Fatalf("data %q", data)
	}
	if cl.Stats().Dials != 2 {
		t.Fatalf("desync did not force a reconnect: %+v", cl.Stats())
	}
}

// TestDialExhaustsAttempts: a dead address fails with
// ErrAttemptsExhausted after MaxAttempts dials.
func TestDialExhaustsAttempts(t *testing.T) {
	// Reserve then release a port so nothing listens on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	_ = ln.Close()
	opts := testOpts(6)
	opts.MaxAttempts = 3
	if _, err := Dial(dead, opts); !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("dial to dead addr: %v", err)
	}
}

// TestSessionCloseToleratesAppliedRetry: ErrUnknownSession on close
// means an earlier attempt already applied.
func TestSessionCloseToleratesAppliedRetry(t *testing.T) {
	addr := fakeServer(t,
		func(t *testing.T, conn net.Conn) {
			typ, _ := readOne(t, conn)
			if typ != netproto.MsgOpenSession {
				t.Errorf("want open, got 0x%02x", typ)
			}
			reply(t, conn, netproto.MsgRespOpenSession, netproto.U64Body(50))
			readOne(t, conn) // the close
			reply(t, conn, netproto.MsgRespError, netproto.ErrorBody(netproto.CodeUnknownSession, "gone"))
		},
	)
	cl, err := Dial(addr, testOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("close after applied retry: %v", err)
	}
}

// TestBackoffBounds: the jittered exponential backoff stays within
// [base/2, max] and is monotone in expectation up to the cap.
func TestBackoffBounds(t *testing.T) {
	c := &Client{opts: testOpts(8).withDefaults()}
	c.rng = rand.New(rand.NewSource(42))
	base, max := c.opts.BackoffBase, c.opts.BackoffMax
	for attempt := 1; attempt <= 20; attempt++ {
		for i := 0; i < 100; i++ {
			d := c.backoffLocked(attempt)
			if d < base/2 || d > max {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, base/2, max)
			}
		}
	}
	// Deep attempts saturate at the cap's jitter window, not overflow.
	if d := c.backoffLocked(62); d < max/2 || d > max {
		t.Fatalf("saturated backoff %v outside [%v, %v]", d, max/2, max)
	}
}
