package client_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"eleos/internal/chaos"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/server"
)

// Reconnect coverage: the client must absorb repeated mid-batch
// connection kills with bounded backoff, and a permanently-down server
// must surface ErrAttemptsExhausted promptly — a retryable signal the
// caller can act on, never a hang.

func reconnectOpts() client.Options {
	return client.Options{
		DialTimeout:    2 * time.Second,
		RequestTimeout: 5 * time.Second,
		MaxAttempts:    6,
		BackoffBase:    time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		Seed:           1,
	}
}

func startBackend(t *testing.T) (*core.Controller, string) {
	t.Helper()
	dev := flash.MustNewDevice(flash.Geometry{
		Channels: 4, EBlocksPerChannel: 48,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}, flash.Latency{})
	ctl, err := core.Format(dev, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(ctl, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	return ctl, ln.Addr().String()
}

// TestReconnectUnderRepeatedKills kills the connection after every other
// request frame — each kill lands after the batch reached the server and
// before its ack reached the client — and asserts every batch is acked
// exactly once with the client reconnecting through bounded retries.
func TestReconnectUnderRepeatedKills(t *testing.T) {
	ctl, backend := startBackend(t)
	px, err := chaos.NewProxy(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	cl, err := client.Dial(px.Addr(), reconnectOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sid, err := cl.OpenSession()
	if err != nil {
		t.Fatal(err)
	}

	const batches = 20
	for wsn := uint64(1); wsn <= batches; wsn++ {
		if wsn%2 == 0 {
			px.ArmKill()
		}
		if _, err := cl.Flush(sid, wsn, []core.LPage{{LPID: 100, Data: []byte("reconnect batch payload")}}); err != nil {
			t.Fatalf("wsn %d: %v", wsn, err)
		}
	}

	if px.Kills() != batches/2 {
		t.Errorf("proxy fired %d kills, want %d", px.Kills(), batches/2)
	}
	st := cl.Stats()
	if st.Retries < int64(batches/2) {
		t.Errorf("client retried %d times, expected at least one retry per kill (%d)", st.Retries, batches/2)
	}
	// Bounded: each kill costs a handful of attempts, never an unbounded
	// retry storm.
	if max := int64(batches/2) * int64(reconnectOpts().MaxAttempts); st.Retries > max {
		t.Errorf("client retried %d times, beyond the %d the backoff policy allows", st.Retries, max)
	}
	high, err := ctl.SessionHighestWSN(sid)
	if err != nil {
		t.Fatal(err)
	}
	if high != batches {
		t.Errorf("server applied WSN %d, want %d — a kill dropped or double-applied a batch", high, batches)
	}
	// Session stats must show the killed retries were absorbed by WSN
	// dedup, not re-applied.
	cstats, err := cl.ControllerStats()
	if err != nil {
		t.Fatal(err)
	}
	if cstats.StaleWrites == 0 {
		t.Error("no stale writes recorded; retries were never deduplicated")
	}
}

// TestDialPermanentlyDownFailsFast: dialing an address nobody listens on
// exhausts MaxAttempts with bounded backoff and returns
// ErrAttemptsExhausted — quickly, and never a hang.
func TestDialPermanentlyDownFailsFast(t *testing.T) {
	// Grab a port and close it again: a definitely-dead address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	_ = ln.Close()

	start := time.Now()
	_, err = client.Dial(dead, reconnectOpts())
	elapsed := time.Since(start)
	if !errors.Is(err, client.ErrAttemptsExhausted) {
		t.Fatalf("Dial to dead address: %v, want ErrAttemptsExhausted", err)
	}
	// 6 attempts with ≤20ms backoff must come back in well under the
	// request timeout; generous bound for loaded CI hosts.
	if elapsed > 3*time.Second {
		t.Fatalf("Dial took %v to fail; backoff is not bounded", elapsed)
	}
}

// TestFlushAfterServerDiesFailsFast: a client with a live session keeps
// retrying through a server that went down for good, then surfaces
// ErrAttemptsExhausted instead of hanging; the same client recovers once
// a server is back.
func TestFlushAfterServerDiesFailsFast(t *testing.T) {
	ctl, backend := startBackend(t)
	px, err := chaos.NewProxy(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	cl, err := client.Dial(px.Addr(), reconnectOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sid, err := cl.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Flush(sid, 1, []core.LPage{{LPID: 7, Data: []byte("before outage")}}); err != nil {
		t.Fatal(err)
	}

	// Point the proxy into the void: every reconnect now fails.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	_ = deadLn.Close()
	px.SetBackend(deadAddr)
	px.ArmKill() // cut the live connection at the next frame

	start := time.Now()
	_, err = cl.Flush(sid, 2, []core.LPage{{LPID: 8, Data: []byte("during outage")}})
	elapsed := time.Since(start)
	if !errors.Is(err, client.ErrAttemptsExhausted) {
		t.Fatalf("flush during outage: %v, want ErrAttemptsExhausted", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("flush took %v to fail; retry loop is unbounded", elapsed)
	}

	// The error was retryable in the operational sense: with the server
	// back, the same client and session resume where they left off.
	px.SetBackend(backend)
	if _, err := cl.Flush(sid, 2, []core.LPage{{LPID: 8, Data: []byte("during outage")}}); err != nil {
		t.Fatalf("flush after restore: %v", err)
	}
	high, err := ctl.SessionHighestWSN(sid)
	if err != nil {
		t.Fatal(err)
	}
	if high != 2 {
		t.Fatalf("session WSN %d after recovery, want 2", high)
	}
}
