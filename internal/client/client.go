// Package client is the host-side library for the eleosd network
// front-end: it dials the netproto TCP endpoint and makes the batched
// write interface robust over an unreliable connection.
//
// Robustness is the whole point of the package. The transport gives no
// reply-delivery guarantee — a connection can die after the server
// applied a batch but before the acknowledgment arrived — so the client
// leans on the controller's durable session protocol (§III-A2): every
// flush carries (sid, wsn), and a retry of the same pair after a
// reconnect is answered from the session's highest applied WSN without
// being re-applied. That makes the retry loop here safe:
//
//	dial (exponential backoff + jitter) → send → await reply (deadline)
//	  on connection error / timeout: reconnect, resend SAME (sid, wsn)
//	  on CodeBusy / CodeShuttingDown / CodeWriteFailed: back off, retry
//	  on any other server error: fail fast
//
// Reads and stats are idempotent and retried the same way. OpenSession is
// the one non-idempotent request: it is retried only while dialing; once
// the request may have reached the server, a failure is returned to the
// caller (a leaked server-side session is possible and harmless — it
// holds no resources beyond a table entry).
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"eleos/internal/addr"
	"eleos/internal/core"
	"eleos/internal/netproto"
	"eleos/internal/session"
	"eleos/internal/trace"
)

// Options tunes the client.
type Options struct {
	// DialTimeout bounds one TCP connect attempt. Default 5s.
	DialTimeout time.Duration
	// RequestTimeout bounds one send+reply round trip. Default 30s.
	RequestTimeout time.Duration
	// MaxAttempts caps tries per request (first try included). Default 8.
	MaxAttempts int
	// BackoffBase and BackoffMax bound the exponential backoff between
	// attempts; the actual sleep is uniformly jittered in
	// [backoff/2, backoff]. Defaults 25ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxFrameBytes bounds reply frames. Default
	// netproto.DefaultMaxFrameBytes.
	MaxFrameBytes int
	// Seed drives backoff jitter (0 picks a nondeterministic seed).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 8
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.MaxFrameBytes == 0 {
		o.MaxFrameBytes = netproto.DefaultMaxFrameBytes
	}
	return o
}

// Stats counts client activity.
type Stats struct {
	Dials    int64 // successful connects (first dial included)
	Requests int64 // round trips attempted
	Retries  int64 // attempts beyond the first, per request
	Timeouts int64 // round trips ended by deadline
}

// ErrAttemptsExhausted reports that MaxAttempts tries all failed; it
// wraps the last failure.
var ErrAttemptsExhausted = errors.New("client: retry attempts exhausted")

// Client is a connection to an eleosd server. Methods serialize on an
// internal lock: one in-flight request per client (open one client per
// concurrent stream, as the benchmarks do).
type Client struct {
	addr string
	opts Options

	mu    sync.Mutex
	conn  net.Conn
	fw    *netproto.FrameWriter // frame assembly for the current conn
	rng   *rand.Rand
	stats Stats

	// Encode scratch, reused across requests under mu: batchBuf holds
	// the encoded batch wire (the frame's vectored tail), headBuf the
	// small fixed body prefix. The steady-state flush path allocates
	// neither a body nor a frame.
	batchBuf []byte
	headBuf  []byte
}

// Dial connects to an eleosd address. The initial connect retries with
// backoff like any other request, so a server that is still starting is
// not an error.
func Dial(address string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Client{addr: address, opts: opts, rng: rand.New(rand.NewSource(seed))}
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if lastErr = c.connectLocked(); lastErr == nil {
			return c, nil
		}
		if attempt < c.opts.MaxAttempts {
			c.stats.Retries++
			c.sleepBackoffLocked(attempt)
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrAttemptsExhausted, lastErr)
}

// Close tears the connection down. The client stays usable: the next
// request reconnects.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropConnLocked()
}

// Stats snapshots the client counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// --- public requests -------------------------------------------------------

// OpenSession opens a durable write-ordering session server-side and
// returns its SID. The session carries the default (empty) tenant tag.
func (c *Client) OpenSession() (uint64, error) {
	return c.OpenSessionTenant("", 0)
}

// OpenSessionTenant opens a session tagged with a tenant name and a
// priority (higher is more urgent). The server uses the tag for QoS
// admission and fairness accounting; the default tag ("", 0) is the
// legacy untagged session.
func (c *Client) OpenSessionTenant(tenant string, priority uint8) (uint64, error) {
	body, err := netproto.OpenSessionBody(tenant, priority)
	if err != nil {
		return 0, err
	}
	rbody, err := c.call(netproto.MsgOpenSession, body, netproto.MsgRespOpenSession, false)
	if err != nil {
		return 0, err
	}
	return netproto.ParseU64(rbody)
}

// CloseSession closes a session. A retry that lands after the close
// already applied reports ErrUnknownSession; callers that retried can
// treat that as success (Session.Close does).
func (c *Client) CloseSession(sid uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.headBuf = netproto.AppendU64(c.headBuf[:0], sid)
	_, err := c.callLocked(netproto.MsgCloseSession, c.headBuf, nil, netproto.MsgRespCloseSession, true)
	return err
}

// Flush durably writes one batch under (sid, wsn) and returns the
// session's highest applied WSN from the acknowledgment. Safe to retry:
// the server deduplicates by WSN. For sid 0 (unordered) the returned WSN
// is 0 — and retries are NOT idempotent, so unordered flushes are
// attempted once.
func (c *Client) Flush(sid, wsn uint64, pages []core.LPage) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batchBuf = core.AppendBatch(c.batchBuf[:0], pages)
	return c.flushLocked(netproto.MsgFlushBatch, 0, sid, wsn, c.batchBuf)
}

// FlushWire is Flush for an already-encoded batch buffer.
func (c *Client) FlushWire(sid, wsn uint64, wire []byte) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked(netproto.MsgFlushBatch, 0, sid, wsn, wire)
}

// FlushTraced is Flush carrying a caller-chosen trace ID, so the batch's
// events in the server's flight recorder are attributable to this exact
// request (trace ID 0 lets the server assign one). Same idempotence
// rules as Flush.
func (c *Client) FlushTraced(traceID, sid, wsn uint64, pages []core.LPage) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batchBuf = core.AppendBatch(c.batchBuf[:0], pages)
	return c.flushLocked(netproto.MsgFlushBatchTraced, traceID, sid, wsn, c.batchBuf)
}

// FlushWireTraced is FlushTraced for an already-encoded batch buffer.
func (c *Client) FlushWireTraced(traceID, sid, wsn uint64, wire []byte) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked(netproto.MsgFlushBatchTraced, traceID, sid, wsn, wire)
}

// flushLocked sends one flush as a [head, wire] vectored frame: the
// fixed prefix goes into reused scratch and the batch bytes ride the
// frame's tail without ever being concatenated into a request body.
func (c *Client) flushLocked(typ byte, traceID, sid, wsn uint64, wire []byte) (uint64, error) {
	traced := typ == netproto.MsgFlushBatchTraced
	c.headBuf = netproto.AppendFlushHead(c.headBuf[:0], traced, traceID, sid, wsn)
	rbody, err := c.callLocked(typ, c.headBuf, wire, netproto.MsgRespFlushBatch, sid != 0)
	if err != nil {
		return 0, err
	}
	return netproto.ParseU64(rbody)
}

// Read returns the stored (alignment-padded) content of an LPAGE.
func (c *Client) Read(lpid addr.LPID) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.headBuf = netproto.AppendU64(c.headBuf[:0], uint64(lpid))
	return c.callLocked(netproto.MsgRead, c.headBuf, nil, netproto.MsgRespRead, true)
}

// ReadBatch fetches many LPAGEs in one round trip; the server
// scatter-gathers them across flash channels. The result is indexed
// like lpids, with nil entries for LPIDs that are not mapped —
// per-page absence is data, not an error. Reads are idempotent and
// always retried across reconnects.
func (c *Client) ReadBatch(lpids []addr.LPID) ([][]byte, error) {
	if len(lpids) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	lp64 := make([]uint64, len(lpids))
	for i, lpid := range lpids {
		lp64[i] = uint64(lpid)
	}
	c.batchBuf = netproto.AppendReadBatchBody(c.batchBuf[:0], lp64)
	rbody, err := c.callLocked(netproto.MsgReadBatch, c.batchBuf, nil, netproto.MsgRespReadBatch, true)
	if err != nil {
		return nil, err
	}
	return netproto.ParseReadBatchResp(rbody)
}

// ControllerStats fetches the server's controller statistics.
func (c *Client) ControllerStats() (core.Stats, error) {
	var st core.Stats
	rbody, err := c.call(netproto.MsgStats, nil, netproto.MsgRespStats, true)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(rbody, &st)
}

// StatsFull fetches the server's full telemetry payload — every counter,
// gauge and latency histogram across server, core, wal and flash, plus
// the device-health census — via the stats_full command. Idempotent and
// retried like a read.
func (c *Client) StatsFull() (netproto.StatsFull, error) {
	rbody, err := c.call(netproto.MsgStatsFull, nil, netproto.MsgRespStatsFull, true)
	if err != nil {
		return netproto.StatsFull{}, err
	}
	return netproto.DecodeStatsFull(rbody)
}

// WatchStats subscribes to the server's periodic stats push stream and
// calls fn for every pushed payload. interval is the requested sampling
// period (0 asks for the server default); the server clamps it and the
// granted period governs the stream. The stream runs until ctx is done
// or fn returns an error — both end it with a clean unsubscribe
// handshake (stop request, drain any in-flight pushes, stop ack) that
// leaves the connection reusable, returning ctx.Err() or fn's error
// respectively. A transport failure tears the connection down and is
// returned as-is; there is no automatic re-subscribe.
//
// The client is locked for the whole stream: one watch per Client, and
// no other requests can interleave (use a dedicated Client, as
// `eleosctl top` does).
func (c *Client) WatchStats(ctx context.Context, interval time.Duration, fn func(netproto.StatsFull) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if err := c.connectLocked(); err != nil {
			return fmt.Errorf("client: watch_stats: %w", err)
		}
	}

	// Subscribe and read the grant (the clamped interval).
	c.stats.Requests++
	_ = c.conn.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	if err := c.fw.WriteFrame(netproto.MsgWatchStats, netproto.WatchStatsBody(uint32(interval/time.Millisecond))); err != nil {
		_ = c.dropConnLocked()
		return fmt.Errorf("client: watch_stats subscribe: %w", err)
	}
	rtyp, rbody, err := netproto.ReadFrame(c.conn, c.opts.MaxFrameBytes)
	if err != nil {
		_ = c.dropConnLocked()
		return fmt.Errorf("client: watch_stats subscribe: %w", err)
	}
	var granted uint32
	switch rtyp {
	case netproto.MsgRespWatchStats:
		if granted, err = netproto.ParseWatchStats(rbody); err != nil {
			_ = c.dropConnLocked()
			return err
		}
	case netproto.MsgRespError:
		re, perr := netproto.ParseError(rbody)
		if perr != nil {
			_ = c.dropConnLocked()
			return perr
		}
		return re
	default:
		_ = c.dropConnLocked()
		return fmt.Errorf("client: unexpected reply type 0x%02x", rtyp)
	}

	// A watchdog pokes the read deadline when ctx ends, so a stream
	// blocked waiting for the next push notices the cancellation without
	// waiting a full period. It fires at most once; the unsubscribe
	// handshake below sets fresh deadlines afterwards.
	watchdone := make(chan struct{})
	defer close(watchdone)
	conn := c.conn // stable for the goroutine even if the conn is dropped
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetReadDeadline(time.Now())
		case <-watchdone:
		}
	}()

	// Each push must arrive within ~2 periods plus the usual request
	// slack; a server that stops pushing without closing is a dead peer.
	frameWait := 2*time.Duration(granted)*time.Millisecond + c.opts.RequestTimeout
	for {
		if ctx.Err() != nil {
			return c.watchStopLocked(ctx.Err())
		}
		_ = c.conn.SetReadDeadline(time.Now().Add(frameWait))
		rtyp, rbody, err := netproto.ReadFrame(c.conn, c.opts.MaxFrameBytes)
		if err != nil {
			if ctx.Err() != nil {
				// The watchdog's deadline poke, not a dead peer.
				return c.watchStopLocked(ctx.Err())
			}
			c.noteTimeout(err)
			_ = c.dropConnLocked()
			return fmt.Errorf("client: watch_stats stream: %w", err)
		}
		if rtyp != netproto.MsgStatsPush {
			_ = c.dropConnLocked()
			return fmt.Errorf("client: unexpected stream frame type 0x%02x", rtyp)
		}
		sf, err := netproto.DecodeStatsFull(rbody)
		if err != nil {
			_ = c.dropConnLocked()
			return err
		}
		if err := fn(sf); err != nil {
			return c.watchStopLocked(err)
		}
	}
}

// watchStopLocked runs the clean unsubscribe handshake — stop request,
// drain in-flight pushes, stop ack — and returns cause (why the stream
// ended) on success, or the transport error if the handshake itself
// broke the connection.
func (c *Client) watchStopLocked(cause error) error {
	_ = c.conn.SetDeadline(time.Now().Add(c.opts.RequestTimeout))
	if err := c.fw.WriteFrame(netproto.MsgWatchStatsStop, nil); err != nil {
		_ = c.dropConnLocked()
		return fmt.Errorf("client: watch_stats stop: %w", err)
	}
	for {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.opts.RequestTimeout))
		rtyp, _, err := netproto.ReadFrame(c.conn, c.opts.MaxFrameBytes)
		if err != nil {
			_ = c.dropConnLocked()
			return fmt.Errorf("client: watch_stats stop: %w", err)
		}
		switch rtyp {
		case netproto.MsgStatsPush:
			// A push that was already in flight when the stop landed;
			// discard and keep draining.
		case netproto.MsgRespWatchStatsStop:
			return cause
		default:
			_ = c.dropConnLocked()
			return fmt.Errorf("client: unexpected reply type 0x%02x during watch stop", rtyp)
		}
	}
}

// TraceDump fetches the server's flight recorder — the last few thousand
// write-path, GC and media events — via the trace_dump command.
// Idempotent and retried like a read.
func (c *Client) TraceDump() (trace.Dump, error) {
	rbody, err := c.call(netproto.MsgTraceDump, nil, netproto.MsgRespTraceDump, true)
	if err != nil {
		return trace.Dump{}, err
	}
	return netproto.DecodeTraceDump(rbody)
}

// --- session handle --------------------------------------------------------

// Session tracks the WSN counter for one server-side session, giving the
// fire-and-forget interface applications want: Flush assigns the next
// WSN, retries safely, and advances only on acknowledgment.
type Session struct {
	c    *Client
	sid  uint64
	next uint64
}

// NewSession opens a server-side session and wraps it.
func (c *Client) NewSession() (*Session, error) {
	return c.NewSessionTenant("", 0)
}

// NewSessionTenant opens a tenant-tagged server-side session and wraps
// it (see OpenSessionTenant).
func (c *Client) NewSessionTenant(tenant string, priority uint8) (*Session, error) {
	sid, err := c.OpenSessionTenant(tenant, priority)
	if err != nil {
		return nil, err
	}
	return &Session{c: c, sid: sid, next: 1}, nil
}

// SID returns the server-assigned session ID.
func (s *Session) SID() uint64 { return s.sid }

// NextWSN returns the WSN the next Flush will carry.
func (s *Session) NextWSN() uint64 { return s.next }

// Flush writes one batch at the session's next WSN, retrying across
// reconnects; the WSN advances only after the server acknowledged it.
func (s *Session) Flush(pages []core.LPage) error {
	high, err := s.c.Flush(s.sid, s.next, pages)
	if err != nil {
		return err
	}
	if high < s.next {
		return fmt.Errorf("client: server acknowledged WSN %d for flush %d", high, s.next)
	}
	s.next++
	return nil
}

// FlushTraced is Flush carrying a caller-chosen trace ID (see
// Client.FlushTraced).
func (s *Session) FlushTraced(traceID uint64, pages []core.LPage) error {
	high, err := s.c.FlushTraced(traceID, s.sid, s.next, pages)
	if err != nil {
		return err
	}
	if high < s.next {
		return fmt.Errorf("client: server acknowledged WSN %d for flush %d", high, s.next)
	}
	s.next++
	return nil
}

// Close closes the server-side session. ErrUnknownSession from a
// retried close means an earlier attempt already applied.
func (s *Session) Close() error {
	err := s.c.CloseSession(s.sid)
	if errors.Is(err, session.ErrUnknownSession) {
		return nil
	}
	return err
}

// --- transport -------------------------------------------------------------

// call runs one request with the retry loop. wantResp is the expected
// success frame type. idempotent marks requests safe to resend even when
// a connection error leaves it unknown whether the server executed them
// (flush with a session WSN, read, stats); non-idempotent requests still
// retry failures known to precede execution: dial errors and
// busy/draining/write-failed rejections.
func (c *Client) call(typ byte, body []byte, wantResp byte, idempotent bool) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.callLocked(typ, body, nil, wantResp, idempotent)
}

// callLocked is call with mu already held and the request body split as
// head||tail (either may be nil); flushes pass the encoded batch as the
// tail so it is never copied into a combined body.
func (c *Client) callLocked(typ byte, head, tail []byte, wantResp byte, idempotent bool) ([]byte, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		rbody, err := c.roundTripLocked(typ, head, tail, wantResp)
		if err == nil {
			return rbody, nil
		}
		lastErr = err
		var re *netproto.RemoteError
		switch {
		case errors.As(err, &re):
			if !netproto.Retryable(re.Code) {
				return nil, err
			}
			// Busy/draining rejections close the conn server-side;
			// write-failed aborted without installing. Reconnect and
			// retry regardless of idempotence.
			_ = c.dropConnLocked()
		case !idempotent && !errors.Is(err, errNotSent):
			// The request may have executed and the reply is lost;
			// resending could double-apply. Surface the uncertainty.
			return nil, err
		}
		if attempt >= c.opts.MaxAttempts {
			break
		}
		c.stats.Retries++
		c.sleepBackoffLocked(attempt)
	}
	return nil, fmt.Errorf("%w: %v", ErrAttemptsExhausted, lastErr)
}

// errNotSent tags failures that happened before the request could have
// reached the server, so even non-idempotent requests may retry.
var errNotSent = errors.New("client: request not sent")

// roundTripLocked performs one send+receive on the current connection,
// (re)connecting first if needed.
func (c *Client) roundTripLocked(typ byte, head, tail []byte, wantResp byte) ([]byte, error) {
	if c.conn == nil {
		if err := c.connectLocked(); err != nil {
			return nil, fmt.Errorf("%w: %v", errNotSent, err)
		}
	}
	c.stats.Requests++
	deadline := time.Now().Add(c.opts.RequestTimeout)
	_ = c.conn.SetDeadline(deadline)
	if err := c.fw.WriteFrame2(typ, head, tail); err != nil {
		c.noteTimeout(err)
		_ = c.dropConnLocked()
		return nil, fmt.Errorf("client: send: %w", err)
	}
	rtyp, rbody, err := netproto.ReadFrame(c.conn, c.opts.MaxFrameBytes)
	if err != nil {
		c.noteTimeout(err)
		_ = c.dropConnLocked()
		return nil, fmt.Errorf("client: receive: %w", err)
	}
	switch rtyp {
	case wantResp:
		return rbody, nil
	case netproto.MsgRespError:
		re, perr := netproto.ParseError(rbody)
		if perr != nil {
			_ = c.dropConnLocked()
			return nil, perr
		}
		return nil, re
	default:
		// A mismatched reply means framing desync; the connection is
		// unusable.
		_ = c.dropConnLocked()
		return nil, fmt.Errorf("client: unexpected reply type 0x%02x", rtyp)
	}
}

func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	c.conn = conn
	c.fw = netproto.NewFrameWriter(conn)
	c.stats.Dials++
	return nil
}

func (c *Client) dropConnLocked() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *Client) noteTimeout(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.stats.Timeouts++
	}
}

// sleepBackoffLocked sleeps the jittered exponential backoff for the
// given attempt number (1-based for the first retry).
func (c *Client) sleepBackoffLocked(attempt int) {
	time.Sleep(c.backoffLocked(attempt))
}

func (c *Client) backoffLocked(attempt int) time.Duration {
	d := c.opts.BackoffBase << (attempt - 1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	// Uniform jitter in [d/2, d] decorrelates retry storms from many
	// clients reconnecting at once.
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}
