package chaos

// Minimize greedily shrinks a failing schedule while the failure still
// reproduces: it tries dropping each crash, kill, erase fault, and
// program fault (in that order — cheapest reproductions first), then
// halving the batch count and shedding writers. Every candidate is
// re-executed with Run; a reduction is kept only if the reduced schedule
// still fails. The result is the smallest schedule this greedy walk
// finds, plus how many executions it spent.
//
// Minimization is itself deterministic: candidates are enumerated in a
// fixed order and Run is seeded by the schedule, so the same failing
// schedule always minimizes to the same repro.
func Minimize(s Schedule, opts Options, budget int) (Schedule, int) {
	runs := 0
	fails := func(c Schedule) bool {
		if runs >= budget {
			return false
		}
		runs++
		return Run(c, opts).Failed()
	}
	if !fails(s) {
		// Not reproducible within budget (or budget exhausted): return the
		// original so the caller still has the full failing schedule.
		return s, runs
	}
	cur := s
	for {
		next, ok := reduceOnce(cur, fails)
		if !ok || runs >= budget {
			return cur, runs
		}
		cur = next
	}
}

// reduceOnce tries every single-step reduction of s in canonical order
// and returns the first one that still fails.
func reduceOnce(s Schedule, fails func(Schedule) bool) (Schedule, bool) {
	for i := range s.Crashes {
		c := s.clone()
		c.Crashes = append(c.Crashes[:i:i], c.Crashes[i+1:]...)
		if fails(c) {
			return c, true
		}
	}
	for i := range s.Kills {
		c := s.clone()
		c.Kills = append(c.Kills[:i:i], c.Kills[i+1:]...)
		if fails(c) {
			return c, true
		}
	}
	for i := range s.EraseFaults {
		c := s.clone()
		c.EraseFaults = append(c.EraseFaults[:i:i], c.EraseFaults[i+1:]...)
		if fails(c) {
			return c, true
		}
	}
	for i := range s.ProgramFaults {
		c := s.clone()
		c.ProgramFaults = append(c.ProgramFaults[:i:i], c.ProgramFaults[i+1:]...)
		if fails(c) {
			return c, true
		}
	}
	if s.Batches > 1 {
		c := s.clone()
		c.Batches = s.Batches / 2
		c.normalize() // drops kills/crashes beyond the shrunk run
		if fails(c) {
			return c, true
		}
	}
	if s.Writers > 1 {
		c := s.clone()
		c.Writers = s.Writers - 1
		c.normalize()
		if fails(c) {
			return c, true
		}
	}
	if s.Pages > 1 {
		c := s.clone()
		c.Pages = s.Pages - 1
		if fails(c) {
			return c, true
		}
	}
	return s, false
}

func (s Schedule) clone() Schedule {
	c := s
	c.ProgramFaults = append([]int(nil), s.ProgramFaults...)
	c.EraseFaults = append([]int(nil), s.EraseFaults...)
	c.Kills = append([]Kill(nil), s.Kills...)
	c.Crashes = append([]int(nil), s.Crashes...)
	return c
}
