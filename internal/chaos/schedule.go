// Package chaos is the deterministic chaos harness: a seeded schedule
// generator and executor that composes every fault type the repo supports
// — injected program failures, injected erase failures, mid-batch TCP
// connection kills, and crash→recover loops — into randomized
// multi-writer schedules over the real network stack, then asserts the
// shared invariant set (internal/chaos/invariant) after every schedule.
//
// Determinism is the contract: a Schedule is a pure function of its seed,
// its encoding is byte-stable (golden-tested), and a failing run prints
// the seed so `go test ./internal/chaos -run TestChaosReplay
// -chaos.seed=N` replays it exactly. On failure the harness also runs a
// greedy minimizer (Minimize) that drops and shrinks fault events while
// the failure still reproduces, so the replayed repro is minimal.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Kill is one mid-batch connection kill: writer Writer's proxy cuts the
// connection after the request frame carrying WSN reaches the server but
// before the reply reaches the client — the ack-lost retry window.
type Kill struct {
	Writer int
	WSN    uint64
}

// Schedule is one fully determined chaos scenario. All faults are armed
// or triggered at exact, reproducible points: program/erase faults at
// 1-based media attempt offsets counted from arming (post-Format),
// kills at exact (writer, WSN) sends, crashes at exact global acked-batch
// thresholds.
type Schedule struct {
	Seed    int64
	Writers int
	Batches int // batches per writer
	Pages   int // unique pages per batch (plus one churn page)

	ProgramFaults []int  // ascending program-attempt offsets
	EraseFaults   []int  // ascending erase-attempt offsets
	Kills         []Kill // ordered by (Writer, WSN)
	Crashes       []int  // ascending global acked thresholds

	// Tenants[w] / Priorities[w] tag writer w's session (chaos/v2).
	// Empty tag + zero priority is the default untagged session; any
	// tagged writer makes the run start its server with per-tenant QoS
	// admission enabled, so quota accounting and tenant attribution are
	// chased through every kill, media fault, and crash→recover loop.
	// Absent (v1 schedules) means all writers untagged.
	Tenants    []string
	Priorities []uint8
}

// Tenant returns writer w's tag and priority (default for v1 schedules).
func (s Schedule) Tenant(w int) (string, uint8) {
	tag, prio := "", uint8(0)
	if w < len(s.Tenants) {
		tag = s.Tenants[w]
	}
	if w < len(s.Priorities) {
		prio = s.Priorities[w]
	}
	return tag, prio
}

// Tagged reports whether any writer carries a non-default tenant tag.
func (s Schedule) Tagged() bool {
	for w := 0; w < s.Writers; w++ {
		if tag, prio := s.Tenant(w); tag != "" || prio != 0 {
			return true
		}
	}
	return false
}

// Generation bounds. Program-fault offsets keep a minimum gap: when an
// armed fault lands on a WAL log page, the failover retry is the very
// next program attempt, so adjacent offsets can chain through the log's
// forward candidates and shut the log down — a designed durability limit,
// not a scenario schedules should trip by accident.
const (
	minWriters        = 2
	maxWriters        = 4
	minBatches        = 12
	maxBatches        = 30
	maxPagesPerBatch  = 3
	maxProgramFaults  = 4
	maxEraseFaults    = 2
	maxKills          = 3
	maxCrashes        = 2
	programFaultGap   = 8
	minProgramOffset  = 3
	firstEraseOffset  = 4
	eraseFaultGap     = 3
	totalAckedPadding = 2 // crashes trigger at least this far before the end
)

// Generate derives a Schedule from a seed. Same seed, same schedule,
// always — the generator consumes the seeded rng in a fixed order and
// never reads ambient state.
func Generate(seed int64) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{
		Seed:    seed,
		Writers: minWriters + rng.Intn(maxWriters-minWriters+1),
		Batches: minBatches + rng.Intn(maxBatches-minBatches+1),
		Pages:   1 + rng.Intn(maxPagesPerBatch),
	}

	off := minProgramOffset + rng.Intn(10)
	for i, n := 0, 1+rng.Intn(maxProgramFaults); i < n; i++ {
		s.ProgramFaults = append(s.ProgramFaults, off)
		off += programFaultGap + rng.Intn(24)
	}

	off = firstEraseOffset + rng.Intn(4)
	for i, n := 0, rng.Intn(maxEraseFaults+1); i < n; i++ {
		s.EraseFaults = append(s.EraseFaults, off)
		off += eraseFaultGap + rng.Intn(8)
	}

	seen := map[Kill]bool{}
	for i, n := 0, 1+rng.Intn(maxKills); i < n; i++ {
		k := Kill{Writer: rng.Intn(s.Writers), WSN: uint64(1 + rng.Intn(s.Batches))}
		if !seen[k] {
			seen[k] = true
			s.Kills = append(s.Kills, k)
		}
	}

	total := s.Writers * s.Batches
	for i, n := 0, rng.Intn(maxCrashes+1); i < n; i++ {
		th := total/4 + rng.Intn(total/2)
		s.Crashes = append(s.Crashes, th)
	}

	// Tenant tags, drawn strictly after every fault draw so a given seed
	// keeps the exact fault layout it had before chaos/v2: roughly half
	// the writers share one of two named tenants, the rest stay default.
	for w := 0; w < s.Writers; w++ {
		if rng.Intn(2) == 1 {
			s.Tenants = append(s.Tenants, fmt.Sprintf("t%d", rng.Intn(2)))
			s.Priorities = append(s.Priorities, uint8(rng.Intn(2)*7))
		} else {
			s.Tenants = append(s.Tenants, "")
			s.Priorities = append(s.Priorities, 0)
		}
	}
	s.normalize()
	return s
}

// normalize sorts events into canonical order and drops events that the
// current Writers/Batches bounds make unreachable; Encode output is only
// byte-stable over normalized schedules, and the minimizer re-normalizes
// after every reduction.
func (s *Schedule) normalize() {
	sort.Ints(s.ProgramFaults)
	sort.Ints(s.EraseFaults)
	kills := s.Kills[:0]
	for _, k := range s.Kills {
		if k.Writer < s.Writers && k.WSN <= uint64(s.Batches) {
			kills = append(kills, k)
		}
	}
	sort.Slice(kills, func(i, j int) bool {
		if kills[i].Writer != kills[j].Writer {
			return kills[i].Writer < kills[j].Writer
		}
		return kills[i].WSN < kills[j].WSN
	})
	s.Kills = kills
	total := s.Writers * s.Batches
	crashes := s.Crashes[:0]
	for _, th := range s.Crashes {
		if th > total-totalAckedPadding {
			th = total - totalAckedPadding
		}
		if th < 1 {
			th = 1
		}
		crashes = append(crashes, th)
	}
	sort.Ints(crashes)
	s.Crashes = crashes
	// Tenant slices track the (possibly reduced) writer count; padding
	// with defaults keeps Tenant(w) total.
	if len(s.Tenants) > s.Writers {
		s.Tenants = s.Tenants[:s.Writers]
	}
	if len(s.Priorities) > s.Writers {
		s.Priorities = s.Priorities[:s.Writers]
	}
}

// FaultKinds counts the distinct fault types the schedule composes.
func (s Schedule) FaultKinds() int {
	n := 0
	for _, present := range []bool{
		len(s.ProgramFaults) > 0,
		len(s.EraseFaults) > 0,
		len(s.Kills) > 0,
		len(s.Crashes) > 0,
	} {
		if present {
			n++
		}
	}
	return n
}

// Events counts individual fault events.
func (s Schedule) Events() int {
	return len(s.ProgramFaults) + len(s.EraseFaults) + len(s.Kills) + len(s.Crashes)
}

// Encode renders the schedule in its canonical byte-stable text form.
// The format is versioned and line-based; Parse inverts it exactly, and a
// golden test pins the encoding of a fixed seed so generator refactors
// cannot silently change the replayed corpus.
func (s Schedule) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos/v2 seed=%d\n", s.Seed)
	fmt.Fprintf(&b, "writers=%d batches=%d pages=%d\n", s.Writers, s.Batches, s.Pages)
	for w := 0; w < s.Writers; w++ {
		if tag, prio := s.Tenant(w); tag != "" || prio != 0 {
			fmt.Fprintf(&b, "tenant w=%d tag=%s prio=%d\n", w, tag, prio)
		}
	}
	for _, off := range s.ProgramFaults {
		fmt.Fprintf(&b, "pfault %d\n", off)
	}
	for _, off := range s.EraseFaults {
		fmt.Fprintf(&b, "efault %d\n", off)
	}
	for _, k := range s.Kills {
		fmt.Fprintf(&b, "kill w=%d wsn=%d\n", k.Writer, k.WSN)
	}
	for _, th := range s.Crashes {
		fmt.Fprintf(&b, "crash acked=%d\n", th)
	}
	return b.String()
}

// Parse decodes Encode's output.
func Parse(text string) (Schedule, error) {
	var s Schedule
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) < 2 {
		return s, fmt.Errorf("chaos: schedule too short (%d lines)", len(lines))
	}
	// v2 added tenant lines; v1 schedules (all writers untagged) still
	// parse, so an archived repro never goes stale.
	if _, err := fmt.Sscanf(lines[0], "chaos/v2 seed=%d", &s.Seed); err != nil {
		if _, err := fmt.Sscanf(lines[0], "chaos/v1 seed=%d", &s.Seed); err != nil {
			return s, fmt.Errorf("chaos: bad header %q: %v", lines[0], err)
		}
	}
	if _, err := fmt.Sscanf(lines[1], "writers=%d batches=%d pages=%d", &s.Writers, &s.Batches, &s.Pages); err != nil {
		return s, fmt.Errorf("chaos: bad config line %q: %v", lines[1], err)
	}
	for _, ln := range lines[2:] {
		switch {
		case strings.HasPrefix(ln, "tenant "):
			var (
				w    int
				tag  string
				prio int
			)
			if _, err := fmt.Sscanf(ln, "tenant w=%d tag=%s prio=%d", &w, &tag, &prio); err != nil {
				return s, fmt.Errorf("chaos: bad line %q: %v", ln, err)
			}
			if w < 0 || w >= s.Writers || prio < 0 || prio > 255 {
				return s, fmt.Errorf("chaos: tenant line out of range %q", ln)
			}
			for len(s.Tenants) < s.Writers {
				s.Tenants = append(s.Tenants, "")
				s.Priorities = append(s.Priorities, 0)
			}
			s.Tenants[w], s.Priorities[w] = tag, uint8(prio)
		case strings.HasPrefix(ln, "pfault "):
			var off int
			if _, err := fmt.Sscanf(ln, "pfault %d", &off); err != nil {
				return s, fmt.Errorf("chaos: bad line %q: %v", ln, err)
			}
			s.ProgramFaults = append(s.ProgramFaults, off)
		case strings.HasPrefix(ln, "efault "):
			var off int
			if _, err := fmt.Sscanf(ln, "efault %d", &off); err != nil {
				return s, fmt.Errorf("chaos: bad line %q: %v", ln, err)
			}
			s.EraseFaults = append(s.EraseFaults, off)
		case strings.HasPrefix(ln, "kill "):
			var k Kill
			if _, err := fmt.Sscanf(ln, "kill w=%d wsn=%d", &k.Writer, &k.WSN); err != nil {
				return s, fmt.Errorf("chaos: bad line %q: %v", ln, err)
			}
			s.Kills = append(s.Kills, k)
		case strings.HasPrefix(ln, "crash "):
			var th int
			if _, err := fmt.Sscanf(ln, "crash acked=%d", &th); err != nil {
				return s, fmt.Errorf("chaos: bad line %q: %v", ln, err)
			}
			s.Crashes = append(s.Crashes, th)
		default:
			return s, fmt.Errorf("chaos: unknown line %q", ln)
		}
	}
	return s, nil
}
