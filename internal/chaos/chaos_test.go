package chaos_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eleos/internal/chaos"
	"eleos/internal/trace"
)

var (
	flagSeed   = flag.Int64("chaos.seed", 0, "replay one chaos seed (TestChaosReplay)")
	flagSeeds  = flag.Int("chaos.seeds", 0, "run generated seeds 1..N (TestChaosLong)")
	flagForce  = flag.Bool("chaos.force", false, "force an invariant violation to demonstrate the red path")
	flagUpdate = flag.Bool("chaos.update", false, "rewrite golden files")
)

// runAndReport executes a schedule and, on failure, prints everything an
// operator needs: the violations, the seed replay command, the greedily
// minimized schedule, and a Chrome trace of the doomed run.
func runAndReport(t *testing.T, s chaos.Schedule, opts chaos.Options) chaos.Result {
	t.Helper()
	r := chaos.Run(s, opts)
	if !r.Failed() {
		return r
	}
	t.Errorf("chaos schedule (seed %d) failed:\n  %s", s.Seed, strings.Join(r.Violations, "\n  "))
	t.Logf("replay: go test ./internal/chaos -run TestChaosReplay -chaos.seed=%d", s.Seed)
	t.Logf("failing schedule:\n%s", s.Encode())
	if r.Trace != nil {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("chaos-seed%d.trace.json", s.Seed))
		if f, err := os.Create(path); err == nil {
			if trace.ChromeJSON(f, *r.Trace) == nil {
				t.Logf("chrome trace: %s", path)
			}
			_ = f.Close()
		}
	}
	min, runs := chaos.Minimize(s, opts, 20)
	t.Logf("minimized after %d runs:\n%s", runs, min.Encode())
	return r
}

// corpusSeeds is the fixed CI smoke corpus. Pinned: the golden schedule
// test keeps the generator stable, so these replay the same schedules on
// every run. Seeds 5 and 6 were added with chaos/v2 so the corpus always
// includes tenant-tagged schedules running the QoS admission path.
var corpusSeeds = []int64{1, 2, 3, 4, 5, 6}

// TestChaosCorpus runs the fixed seed corpus — the chaos-smoke CI job.
func TestChaosCorpus(t *testing.T) {
	for _, seed := range corpusSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			s := chaos.Generate(seed)
			r := runAndReport(t, s, chaos.Options{})
			t.Logf("seed %d: %d writers × %d batches, %d fault kinds, fired %d pfaults %d efaults, %d kills, %d recoveries",
				seed, s.Writers, s.Batches, s.FaultKinds(),
				r.FiredProgramFaults, r.FiredEraseFaults, r.Kills, r.Recoveries)
		})
	}
}

// TestChaosComposed is the acceptance schedule: all four fault types in
// one run — program faults, an erase fault, mid-batch connection kills,
// and a crash→recover loop — and the full invariant set still holds.
func TestChaosComposed(t *testing.T) {
	s := chaos.Schedule{
		Seed:          77,
		Writers:       3,
		Batches:       16,
		Pages:         2,
		ProgramFaults: []int{7, 21},
		EraseFaults:   []int{5},
		Kills:         []chaos.Kill{{Writer: 0, WSN: 4}, {Writer: 2, WSN: 9}},
		Crashes:       []int{20},
	}
	if s.FaultKinds() != 4 {
		t.Fatalf("composed schedule covers %d fault kinds, want 4", s.FaultKinds())
	}
	r := runAndReport(t, s, chaos.Options{})
	if r.Failed() {
		return // runAndReport already diagnosed
	}
	if r.Acked != int64(s.Writers*s.Batches) {
		t.Errorf("acked %d batches, want %d", r.Acked, s.Writers*s.Batches)
	}
	if r.FiredProgramFaults != 2 {
		t.Errorf("fired %d program faults, want 2", r.FiredProgramFaults)
	}
	if r.FiredEraseFaults != 1 {
		t.Errorf("fired %d erase faults, want 1", r.FiredEraseFaults)
	}
	if r.Kills != 2 {
		t.Errorf("%d connection kills fired, want 2", r.Kills)
	}
	if r.Recoveries != 1 {
		t.Errorf("%d crash-recover loops ran, want 1", r.Recoveries)
	}
}

// TestChaosTenantComposed is the multi-tenant acceptance schedule: three
// tenants (two named, one default) with distinct priorities, all four
// fault kinds, and per-tenant QoS admission live — after the run, every
// session must still be attributed to its exact tenant/priority (through
// the crash→recover loop) and every tenant's quota ledger must balance
// to zero inflight bytes.
func TestChaosTenantComposed(t *testing.T) {
	s := chaos.Schedule{
		Seed:          78,
		Writers:       3,
		Batches:       16,
		Pages:         2,
		ProgramFaults: []int{7, 21},
		EraseFaults:   []int{5},
		Kills:         []chaos.Kill{{Writer: 0, WSN: 4}, {Writer: 2, WSN: 9}},
		Crashes:       []int{20},
		Tenants:       []string{"gold", "bronze", ""},
		Priorities:    []uint8{9, 1, 0},
	}
	if !s.Tagged() {
		t.Fatal("schedule is not tenant-tagged")
	}
	r := runAndReport(t, s, chaos.Options{})
	if r.Failed() {
		return // runAndReport already diagnosed
	}
	if r.Acked != int64(s.Writers*s.Batches) {
		t.Errorf("acked %d batches, want %d", r.Acked, s.Writers*s.Batches)
	}
	if r.Recoveries != 1 {
		t.Errorf("%d crash-recover loops ran, want 1", r.Recoveries)
	}
}

// TestChaosScheduleGolden pins the byte encoding of a fixed seed so a
// generator refactor cannot silently change the replayed corpus. Run
// with -chaos.update to rebless after an intentional format change.
func TestChaosScheduleGolden(t *testing.T) {
	enc := chaos.Generate(42).Encode()
	parsed, err := chaos.Parse(enc)
	if err != nil {
		t.Fatalf("Parse(Encode): %v", err)
	}
	if parsed.Encode() != enc {
		t.Fatalf("Encode/Parse not a round trip:\n%s\nvs\n%s", enc, parsed.Encode())
	}
	path := filepath.Join("testdata", "seed42.golden")
	if *flagUpdate {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(enc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -chaos.update to bless): %v", err)
	}
	if string(want) != enc {
		t.Fatalf("generated schedule drifted from golden.\ngolden:\n%s\ngenerated:\n%s", want, enc)
	}
}

// TestChaosEncodeParseRoundTrip fuzz-lite: every generated schedule
// encodes to a string Parse inverts exactly.
func TestChaosEncodeParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		enc := chaos.Generate(seed).Encode()
		p, err := chaos.Parse(enc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.Encode() != enc {
			t.Fatalf("seed %d: round trip drift", seed)
		}
	}
}

// TestChaosDeterminism: same seed ⇒ byte-identical schedule, and the same
// schedule executed twice yields the same pass/fail outcome.
func TestChaosDeterminism(t *testing.T) {
	for _, seed := range []int64{7, 1234, 987654321} {
		if chaos.Generate(seed).Encode() != chaos.Generate(seed).Encode() {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
	}
	s := chaos.Schedule{
		Seed: 9, Writers: 2, Batches: 8, Pages: 1,
		ProgramFaults: []int{6}, Kills: []chaos.Kill{{Writer: 1, WSN: 3}},
	}
	r1 := chaos.Run(s, chaos.Options{})
	r2 := chaos.Run(s, chaos.Options{})
	if r1.Failed() != r2.Failed() {
		t.Fatalf("outcome drift: run1 failed=%v run2 failed=%v\nrun1: %v\nrun2: %v",
			r1.Failed(), r2.Failed(), r1.Violations, r2.Violations)
	}
	if r1.Failed() {
		t.Fatalf("determinism schedule unexpectedly failed: %v", r1.Violations)
	}
}

// TestChaosForcedViolationMinimizes exercises the red path end to end
// against a healthy store: ForceViolation corrupts one expectation, the
// run goes red with a trace, and the minimizer shrinks the schedule while
// the failure keeps reproducing.
func TestChaosForcedViolationMinimizes(t *testing.T) {
	s := chaos.Schedule{
		Seed: 5, Writers: 2, Batches: 6, Pages: 1,
		ProgramFaults: []int{6}, Kills: []chaos.Kill{{Writer: 1, WSN: 2}},
	}
	opts := chaos.Options{ForceViolation: true}
	r := chaos.Run(s, opts)
	if !r.Failed() {
		t.Fatal("forced violation did not fail the run")
	}
	if r.Trace == nil {
		t.Fatal("failing run captured no flight-recorder trace")
	}
	min, runs := chaos.Minimize(s, opts, 30)
	if runs == 0 {
		t.Fatal("minimizer ran nothing")
	}
	if min.Events() >= s.Events() && min.Batches >= s.Batches && min.Writers >= s.Writers {
		t.Fatalf("minimizer made no progress: %d events, %d batches, %d writers", min.Events(), min.Batches, min.Writers)
	}
	if !chaos.Run(min, opts).Failed() {
		t.Fatalf("minimized schedule no longer reproduces:\n%s", min.Encode())
	}
	t.Logf("minimized %d→%d events, %d→%d batches in %d runs", s.Events(), min.Events(), s.Batches, min.Batches, runs)
}

// TestChaosReplay replays one seed on demand:
//
//	go test ./internal/chaos -run TestChaosReplay -chaos.seed=N [-chaos.force]
//
// This is the documented one-command repro workflow: it prints the
// decoded schedule, executes it, and on failure prints the violations,
// the minimized schedule, and a Chrome trace path.
func TestChaosReplay(t *testing.T) {
	if *flagSeed == 0 {
		t.Skip("pass -chaos.seed=N to replay a specific seed")
	}
	s := chaos.Generate(*flagSeed)
	t.Logf("schedule for seed %d:\n%s", *flagSeed, s.Encode())
	runAndReport(t, s, chaos.Options{ForceViolation: *flagForce, Logf: t.Logf})
}

// TestChaosLong runs generated seeds 1..N — the opt-in long-run mode the
// CI workflow_dispatch job uses:
//
//	go test ./internal/chaos -run TestChaosLong -chaos.seeds=50 -timeout 60m
func TestChaosLong(t *testing.T) {
	if *flagSeeds == 0 {
		t.Skip("pass -chaos.seeds=N to run the long corpus")
	}
	for seed := int64(1); seed <= int64(*flagSeeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runAndReport(t, chaos.Generate(seed), chaos.Options{})
		})
	}
}
