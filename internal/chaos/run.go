package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eleos/internal/addr"
	"eleos/internal/chaos/invariant"
	"eleos/internal/client"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/provision"
	"eleos/internal/qos"
	"eleos/internal/server"
	"eleos/internal/trace"
)

// Options tunes one schedule execution. The zero value is usable.
type Options struct {
	// Deadline bounds the whole run; a writer that cannot make progress
	// past it reports a harness violation instead of hanging. Default 90s.
	Deadline time.Duration
	// ForceViolation corrupts one invariant expectation on purpose so the
	// red path — seed printing, trace capture, schedule minimization — can
	// be demonstrated and tested against a healthy store.
	ForceViolation bool
	// Logf, when set, receives progress lines (crashes, recoveries).
	Logf func(format string, args ...any)
}

// Result is the outcome of executing one schedule.
type Result struct {
	Schedule   Schedule
	Violations []string // empty = every invariant held

	// Coverage accounting for reports.
	FiredProgramFaults int64
	FiredEraseFaults   int64
	Kills              int
	Recoveries         int
	Acked              int64
	MediaAborts        int64 // client-observed ErrWriteFailed returns
	VerifiedReads      int64 // reader-verified byte-exact reads of acked pages

	// Trace is the final controller's flight-recorder dump, captured only
	// on failure so the doomed schedule can be rendered as a Chrome trace.
	Trace *trace.Dump
}

// Failed reports whether any invariant (or the harness itself) failed.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// RunSeed generates and executes the schedule derived from seed.
func RunSeed(seed int64, opts Options) Result { return Run(Generate(seed), opts) }

func chaosGeometry() flash.Geometry {
	return flash.Geometry{
		Channels: 4, EBlocksPerChannel: 48,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}
}

func chaosConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.AutoCheckpointLogBytes = 8 << 20
	// The tiered read cache runs through the whole corpus: every reader
	// verification and every invariant content check below exercises
	// cache coherence under faults, kills, and crash→recover loops.
	cfg.ReadCacheBytes = 4 << 20
	return cfg
}

// tolerable classifies errors that scheduled faults legitimately surface
// through churn and drain paths: media aborts, injected erase failures
// (which also retire the block), transient space exhaustion, and calls
// that landed on a crashed controller.
func tolerable(err error) bool {
	return errors.Is(err, core.ErrWriteFailed) ||
		errors.Is(err, core.ErrCrashed) ||
		errors.Is(err, provision.ErrNoSpace) ||
		errors.Is(err, flash.ErrEraseFailed) ||
		errors.Is(err, flash.ErrBadBlock)
}

// --- deterministic workload content ----------------------------------------

const churnPageSize = 4000

// uniqueLPID places writer w's batch wsn page i in a private LPID range.
func uniqueLPID(w int, wsn uint64, i int) addr.LPID {
	return addr.LPID(uint64(w+1)<<20 | wsn<<2 | uint64(i))
}

// churnLPID is writer w's repeatedly-overwritten page; its expected final
// content is the last acknowledged version.
func churnLPID(w int) addr.LPID { return addr.LPID(uint64(w+1) << 20) }

func pageSize(w int, wsn uint64, i int) int {
	return 150 + int((uint64(w)*131+wsn*97+uint64(i)*53)%1900)
}

// pageData is the deterministic content for (lpid, version) — the same
// construction as the core test suite's pageContent, re-derived here so
// the expected bytes never depend on executor state.
func pageData(lpid addr.LPID, version uint64, size int) []byte {
	b := make([]byte, size)
	rng := rand.New(rand.NewSource(int64(uint64(lpid)*1_000_003 + version)))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

func buildBatch(s Schedule, w int, wsn uint64) []core.LPage {
	pages := make([]core.LPage, 0, s.Pages+1)
	for i := 0; i < s.Pages; i++ {
		lpid := uniqueLPID(w, wsn, i)
		pages = append(pages, core.LPage{LPID: lpid, Data: pageData(lpid, wsn, pageSize(w, wsn, i))})
	}
	cl := churnLPID(w)
	pages = append(pages, core.LPage{LPID: cl, Data: pageData(cl, wsn, churnPageSize)})
	return pages
}

func traceID(w int, wsn uint64) uint64 { return uint64(w+1)<<32 | wsn }

// --- coordinator: the current controller/server pair ------------------------

// coordinator owns the live controller+server pair and replaces both on a
// crash→recover loop. Writers never see it: they dial fixed proxy
// addresses, and the coordinator repoints the proxies after recovery.
type coordinator struct {
	cfg  core.Config
	scfg server.Config
	dev  *flash.Device

	mu         sync.Mutex
	ctl        *core.Controller
	srv        *server.Server
	addr       string
	recoveries int
}

func (co *coordinator) startLocked(ctl *core.Controller) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := server.New(ctl, co.scfg)
	go func() { _ = srv.Serve(ln) }()
	co.ctl, co.srv, co.addr = ctl, srv, ln.Addr().String()
	return nil
}

func (co *coordinator) current() *core.Controller {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.ctl
}

func (co *coordinator) address() string {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.addr
}

// crashAndRecover kills the volatile state, drains the dead server, and
// reopens the device read-only into a fresh controller+server.
func (co *coordinator) crashAndRecover() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.ctl.Crash()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = co.srv.Drain(ctx) // in-flight requests die on ErrCrashed; tolerated
	cancel()
	ctl2, err := core.Open(co.dev, co.cfg)
	if err != nil {
		return fmt.Errorf("recovery Open: %w", err)
	}
	co.recoveries++
	return co.startLocked(ctl2)
}

func (co *coordinator) drainFinal() {
	co.mu.Lock()
	srv := co.srv
	co.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = srv.Drain(ctx) // drain checkpoint may absorb a scheduled fault
	cancel()
}

// qosStats snapshots the final server's per-tenant admission accounting
// (nil when QoS is disabled). Counters reset when a crash replaces the
// server, so across recoveries only the balance — not the totals — is
// meaningful.
func (co *coordinator) qosStats() map[string]qos.TenantStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.srv.QoSStats()
}

// --- the executor -----------------------------------------------------------

// Run executes one schedule end to end over the real network stack and
// checks the shared invariant set. It is safe to call concurrently with
// itself (each run owns its device, server, proxies, and clients).
func Run(s Schedule, opts Options) Result {
	res := Result{Schedule: s}
	if opts.Deadline == 0 {
		opts.Deadline = 90 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	deadline := time.Now().Add(opts.Deadline)

	var (
		violMu  sync.Mutex
		harness []string
	)
	fail := func(format string, args ...any) {
		violMu.Lock()
		harness = append(harness, "harness: "+fmt.Sprintf(format, args...))
		violMu.Unlock()
	}

	dev := flash.MustNewDevice(chaosGeometry(), flash.Latency{})
	cfg := chaosConfig()
	ctl, err := core.Format(dev, cfg)
	if err != nil {
		res.Violations = []string{fmt.Sprintf("harness: format: %v", err)}
		return res
	}

	// Arm every media fault relative to post-Format sequence points, so
	// offsets are independent of how many programs formatting issued.
	for _, n := range s.ProgramFaults {
		dev.FailNthProgram(n)
	}
	for _, n := range s.EraseFaults {
		dev.FailNthErase(n)
	}

	scfg := server.Config{IOTimeout: 5 * time.Second, IdleTimeout: time.Minute}
	if s.Tagged() {
		// Tagged schedules run the real per-tenant admission path. No rate
		// shaping (it would fight the run deadline) but a finite inflight
		// budget per tenant, so every flush charges and releases real
		// quota — the post-run balance check then proves kills, media
		// aborts, and crash→recover loops never leak admitted bytes.
		scfg.QoS = qos.Config{
			Enabled: true,
			Default: qos.Limits{MaxInflightBytes: 64 << 10},
		}
	}
	co := &coordinator{
		cfg:  cfg,
		scfg: scfg,
		dev:  dev,
	}
	co.mu.Lock()
	err = co.startLocked(ctl)
	co.mu.Unlock()
	if err != nil {
		res.Violations = []string{fmt.Sprintf("harness: start server: %v", err)}
		return res
	}

	proxies := make([]*Proxy, s.Writers)
	for w := range proxies {
		px, perr := NewProxy(co.address())
		if perr != nil {
			res.Violations = []string{fmt.Sprintf("harness: proxy: %v", perr)}
			return res
		}
		defer px.Close()
		proxies[w] = px
	}

	readerProxies := make([]*Proxy, s.Writers)
	for w := range readerProxies {
		px, perr := NewProxy(co.address())
		if perr != nil {
			res.Violations = []string{fmt.Sprintf("harness: reader proxy: %v", perr)}
			return res
		}
		defer px.Close()
		readerProxies[w] = px
	}

	killAt := make([]map[uint64]bool, s.Writers)
	for i := range killAt {
		killAt[i] = map[uint64]bool{}
	}
	for _, k := range s.Kills {
		killAt[k.Writer][k.WSN] = true
	}

	var (
		acked       atomic.Int64
		mediaAborts atomic.Int64
		sids        = make([]uint64, s.Writers)
		ackedHigh   = make([]atomic.Uint64, s.Writers)
	)

	// Crash coordinator: fires each crash→recover loop at its exact global
	// acked threshold, then repoints every proxy at the reborn server.
	stopCrash := make(chan struct{})
	crashDone := make(chan struct{})
	go func() {
		defer close(crashDone)
		for _, th := range s.Crashes {
			for acked.Load() < int64(th) {
				select {
				case <-stopCrash:
					return
				default:
				}
				if time.Now().After(deadline) {
					return
				}
				time.Sleep(500 * time.Microsecond)
			}
			logf("chaos: seed=%d crash at acked=%d", s.Seed, acked.Load())
			if cerr := co.crashAndRecover(); cerr != nil {
				fail("crash/recover: %v", cerr)
				return
			}
			for _, px := range proxies {
				px.SetBackend(co.address())
			}
			for _, px := range readerProxies {
				px.SetBackend(co.address())
			}
		}
	}()

	// Background churn: checkpoint/GC pressure racing the writers, and the
	// erase traffic that scheduled erase faults land on. Throttled to a
	// realistic background cadence — every checkpoint rewrites dirty
	// mapping/summary pages, and an unthrottled loop fills the device with
	// page garbage faster than GC can relocate it.
	stopChurn := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		geo := chaosGeometry()
		for i := 0; ; i++ {
			select {
			case <-stopChurn:
				return
			default:
			}
			cur := co.current()
			var cerr error
			if i%8 == 0 {
				cerr = cur.Checkpoint()
			} else {
				cerr = cur.GCNow(i % geo.Channels)
			}
			if cerr != nil && !tolerable(cerr) {
				fail("churn: %v", cerr)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Reader goroutines (one per writer) race the whole fault schedule:
	// each continuously re-reads pages its writer has already seen acked —
	// unique pages are immutable once acknowledged, so their bytes are
	// pinned for the rest of the run, through connection kills, media
	// faults, and crash→recover loops. The readers dial their own proxies
	// (repointed on recovery like the writers') and go through the wire
	// read path and the tiered cache, so a stale cache entry or a torn
	// concurrent read surfaces as a content violation, not a flake.
	var verifiedReads atomic.Int64
	stopRead := make(chan struct{})
	var rwg sync.WaitGroup
	for w := 0; w < s.Writers; w++ {
		rwg.Add(1)
		go func(w int) {
			defer rwg.Done()
			if rerr := runReader(s, w, readerProxies[w], stopRead, deadline, &ackedHigh[w], &verifiedReads); rerr != nil {
				fail("reader %d: %v", w, rerr)
			}
		}(w)
	}

	var wg sync.WaitGroup
	for w := 0; w < s.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tag, prio := s.Tenant(w)
			if werr := runWriter(s, w, tag, prio, proxies[w], killAt[w], deadline, &acked, &mediaAborts, &sids[w], &ackedHigh[w]); werr != nil {
				fail("writer %d: %v", w, werr)
			}
		}(w)
	}
	wg.Wait()
	close(stopRead)
	rwg.Wait()

	// All thresholds are ≤ total acked batches, so once the writers are
	// done the coordinator finishes its remaining loops promptly; only a
	// stuck harness needs the stop signal.
	select {
	case <-crashDone:
	case <-time.After(time.Until(deadline)):
	}
	close(stopCrash)
	<-crashDone
	close(stopChurn)
	<-churnDone

	// Drain still-armed countdowns with checkpoint/GC rounds so the fault
	// accounting below is exact: fired = armed − still-pending.
	for i := 0; i < 60; i++ {
		p, e := dev.PendingInjectedFailures()
		if p == 0 && e == 0 {
			break
		}
		cur := co.current()
		if cerr := cur.Checkpoint(); cerr != nil && !tolerable(cerr) {
			fail("fault drain checkpoint: %v", cerr)
			break
		}
		for ch := 0; ch < chaosGeometry().Channels; ch++ {
			if cerr := cur.GCNow(ch); cerr != nil && !tolerable(cerr) {
				fail("fault drain gc: %v", cerr)
				break
			}
		}
	}
	pendP, pendE := dev.PendingInjectedFailures()
	res.FiredProgramFaults = int64(len(s.ProgramFaults) - pendP)
	res.FiredEraseFaults = int64(len(s.EraseFaults) - pendE)

	co.drainFinal()

	for _, px := range proxies {
		res.Kills += px.Kills()
	}
	co.mu.Lock()
	res.Recoveries = co.recoveries
	co.mu.Unlock()
	res.Acked = acked.Load()
	res.MediaAborts = mediaAborts.Load()
	res.VerifiedReads = verifiedReads.Load()

	exp := invariant.Expect{
		ProgramFaults:        res.FiredProgramFaults,
		EraseFaults:          res.FiredEraseFaults,
		MetricsProgramFaults: invariant.Skip,
		MetricsEraseFaults:   invariant.Skip,
		MinMediaAborts:       0,
	}
	if res.Recoveries == 0 {
		// No registry reinstall happened, so the metrics view must agree
		// with the device exactly — fault counts and the per-source
		// program attribution alike — and the programs counter covers
		// the whole run (every batch costs at least one program).
		exp.MetricsProgramFaults = res.FiredProgramFaults
		exp.MetricsEraseFaults = res.FiredEraseFaults
		exp.MinPrograms = int64(s.Writers * s.Batches)
		exp.CheckMetricsAttribution = true
	}
	if s.Tagged() {
		// Quota balance + fairness: every tenant's ledger must be settled
		// on the final server, and (when no recovery reset the counters)
		// every tenant that finished its workload must show at least its
		// acked payload bytes admitted — each batch carries a churn page
		// of churnPageSize bytes, so that is a hard floor on wire bytes.
		exp.Quotas = map[string]invariant.QuotaSnapshot{}
		for tenant, st := range co.qosStats() {
			exp.Quotas[tenant] = invariant.QuotaSnapshot{
				AdmittedBytes:  st.AdmittedBytes,
				ThrottledCount: st.ThrottledCount,
				InflightBytes:  st.InflightBytes,
				Waiters:        st.Waiters,
			}
		}
		if res.Recoveries == 0 {
			exp.MinAdmitted = map[string]int64{}
			for w := 0; w < s.Writers; w++ {
				tag, _ := s.Tenant(w)
				exp.MinAdmitted[tag] += int64(ackedHigh[w].Load()) * churnPageSize
			}
		}
	}
	for w := 0; w < s.Writers; w++ {
		high := ackedHigh[w].Load()
		if high == 0 {
			continue // writer failed before its first ack; harness already red
		}
		tag, prio := s.Tenant(w)
		exp.Sessions = append(exp.Sessions, invariant.Session{
			SID: sids[w], MinWSN: high, Exact: high == uint64(s.Batches),
			Tenant: tag, Priority: prio, CheckTenant: true,
		})
		for wsn := uint64(1); wsn <= high; wsn++ {
			for i := 0; i < s.Pages; i++ {
				lpid := uniqueLPID(w, wsn, i)
				exp.Pages = append(exp.Pages, invariant.Page{LPID: lpid, Want: pageData(lpid, wsn, pageSize(w, wsn, i))})
			}
		}
		cl := churnLPID(w)
		exp.Pages = append(exp.Pages, invariant.Page{LPID: cl, Want: pageData(cl, high, churnPageSize)})
	}
	if opts.ForceViolation {
		// Deliberately wrong expectation: the store is healthy, the check
		// goes red, and the seed/minimize/replay pipeline can be exercised.
		exp.ProgramFaults++
	}

	res.Violations = append(res.Violations, invariant.Check(co.current(), exp)...)
	violMu.Lock()
	res.Violations = append(res.Violations, harness...)
	violMu.Unlock()
	if res.Failed() {
		d := co.current().TraceDump()
		res.Trace = &d
	}
	return res
}

// runWriter drives one session over its proxy: sequential WSNs, arming
// its scheduled connection kills, retrying every failure with the same
// WSN (the retry contract WSN dedup makes idempotent) until the deadline.
// A tagged writer opens its session under its tenant/priority, so its
// flushes run through per-tenant admission.
func runWriter(s Schedule, w int, tenant string, priority uint8, px *Proxy, killAt map[uint64]bool, deadline time.Time,
	acked, mediaAborts *atomic.Int64, sidOut *uint64, ackedOut *atomic.Uint64) error {
	copts := client.Options{
		DialTimeout:    2 * time.Second,
		RequestTimeout: 5 * time.Second,
		MaxAttempts:    4,
		BackoffBase:    time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		Seed:           s.Seed*1000 + int64(w) + 1,
	}
	cl, err := client.Dial(px.Addr(), copts)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer cl.Close()

	var sid uint64
	for {
		sid, err = cl.OpenSessionTenant(tenant, priority)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("open session: %w", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	*sidOut = sid

	for wsn := uint64(1); wsn <= uint64(s.Batches); wsn++ {
		pages := buildBatch(s, w, wsn)
		if killAt[wsn] {
			px.ArmKill()
		}
		for {
			_, err = cl.FlushTraced(traceID(w, wsn), sid, wsn, pages)
			if err == nil {
				break
			}
			if errors.Is(err, core.ErrWriteFailed) {
				mediaAborts.Add(1)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("wsn %d: %w", wsn, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		ackedOut.Store(wsn)
		acked.Add(1)
	}
	return nil
}

// runReader continuously verifies its writer's acknowledged pages over
// the wire while the schedule's faults fire. Unique pages are immutable
// once acked, so for any wsn ≤ the writer's published high-water mark
// the expected bytes are fully determined; a mismatch is a coherence
// violation (stale cache, torn concurrent read, or lost acked write),
// while connection kills, crash windows, and draining servers are
// tolerated churn the retry loop rides out. Every fourth verification
// goes through read_batch so the scatter-gather path runs under faults
// too.
func runReader(s Schedule, w int, px *Proxy, stop <-chan struct{}, deadline time.Time,
	high *atomic.Uint64, verified *atomic.Int64) error {
	copts := client.Options{
		DialTimeout:    2 * time.Second,
		RequestTimeout: 5 * time.Second,
		MaxAttempts:    3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		Seed:           s.Seed*2000 + int64(w) + 1,
	}
	cl, err := client.Dial(px.Addr(), copts)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(s.Seed*3000 + int64(w)))
	check := func(lpid addr.LPID, got []byte, want []byte) error {
		if len(got) != addr.AlignUp(len(want)) {
			return fmt.Errorf("read %d: length %d, want aligned %d", lpid, len(got), addr.AlignUp(len(want)))
		}
		if !bytes.Equal(got[:len(want)], want) {
			return fmt.Errorf("read %d: content differs from acknowledged version", lpid)
		}
		return nil
	}
	for n := 0; ; n++ {
		select {
		case <-stop:
			return nil
		default:
		}
		if time.Now().After(deadline) {
			return nil
		}
		h := high.Load()
		if h == 0 {
			time.Sleep(time.Millisecond)
			continue
		}
		if n%4 == 3 {
			// One read_batch over up to 4 distinct acked pages.
			count := 4
			if int(h)*s.Pages < count {
				count = int(h) * s.Pages
			}
			lpids := make([]addr.LPID, 0, count)
			wants := make([][]byte, 0, count)
			for len(lpids) < count {
				wsn := uint64(rng.Intn(int(h))) + 1
				i := rng.Intn(s.Pages)
				lpid := uniqueLPID(w, wsn, i)
				lpids = append(lpids, lpid)
				wants = append(wants, pageData(lpid, wsn, pageSize(w, wsn, i)))
			}
			pages, rerr := cl.ReadBatch(lpids)
			if rerr != nil {
				if errors.Is(rerr, core.ErrNotFound) {
					return fmt.Errorf("read_batch: acked pages reported missing: %w", rerr)
				}
				time.Sleep(time.Millisecond) // kill/crash churn; retry
				continue
			}
			for i, got := range pages {
				if got == nil {
					return fmt.Errorf("read_batch: acked page %d missing", lpids[i])
				}
				if cerr := check(lpids[i], got, wants[i]); cerr != nil {
					return cerr
				}
				verified.Add(1)
			}
			continue
		}
		wsn := uint64(rng.Intn(int(h))) + 1
		i := rng.Intn(s.Pages)
		lpid := uniqueLPID(w, wsn, i)
		want := pageData(lpid, wsn, pageSize(w, wsn, i))
		got, rerr := cl.Read(lpid)
		if rerr != nil {
			if errors.Is(rerr, core.ErrNotFound) {
				return fmt.Errorf("read: acked page %d not found: %w", lpid, rerr)
			}
			time.Sleep(time.Millisecond) // kill/crash churn; retry
			continue
		}
		if cerr := check(lpid, got, want); cerr != nil {
			return cerr
		}
		verified.Add(1)
	}
}
