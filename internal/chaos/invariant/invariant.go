// Package invariant holds the shared post-schedule invariant checker used
// by the fault-schedule tests in internal/core and by the chaos harness in
// internal/chaos. It is deliberately a leaf package (it imports only addr,
// flash, and metrics, never core) so that package-core tests can import it
// without a cycle, and there is exactly one implementation of the
// invariants every fault scenario in the repo must hold:
//
//  1. Content integrity — every acknowledged page reads back with the
//     exact content of its highest acknowledged version, at the aligned
//     length, zero-padded past the logical size.
//  2. Session monotonicity — each session's recovered high WSN is at
//     least (or, for uncrashed runs, exactly) the highest WSN the client
//     saw acknowledged.
//  3. No leaked actions — the active-action table is empty once traffic
//     quiesces, or an abort path pinned log truncation forever.
//  4. No leaked pins — the inflight/pinned EBLOCK maps are empty after
//     quiesce, and core.erase_while_pinned is zero: no erase ever raced a
//     commit-force window (the PR 4 data-loss bug class).
//  5. Exact fault accounting — the device counted exactly the injected
//     program/erase faults, and the metrics registry agrees.
//  6. Cache coherence — every content check reads twice; with the tiered
//     read cache enabled the second read is served from cache and must
//     agree byte-for-byte with the first (flash-backed) read.
//  7. Tenant attribution — a tagged session still carries its exact
//     tenant/priority after recovery, so no tenant's acked data can be
//     re-attributed by a crash.
//  8. Quota balance — per-tenant admission accounting is exact after the
//     run quiesces: zero inflight bytes and zero parked waiters per
//     tenant (every admitted byte was released, through kills, media
//     aborts, and crash→recover loops alike), plus optional per-tenant
//     admitted-traffic floors. Together with the per-session progress
//     checks this is the harness's fairness invariant: every tenant both
//     finished its workload and settled its ledger.
//  9. Programmed-byte conservation — the per-source program attribution
//     (user / GC / checkpoint / WAL / recovery) partitions the device's
//     program counters exactly: the source sums equal WBlocksWritten and
//     BytesWritten, and no controller program is unattributed. WAF
//     reported from flash.src.* is therefore reconciled against the
//     media's own ledger, not a parallel estimate. Device-side, so it
//     survives any number of crash→recover registry swaps.
//  10. Erase conservation — every erase pulse the device counted
//     (EraseAttempts, which includes injected failures and over-limit
//     rejections) bumped exactly one EBLOCK's wear counter, so the
//     per-EBLOCK erase counts sum to EraseAttempts and successful
//     erases never exceed attempts. The wear histogram the health
//     telemetry exports is thus an exact partition of real erases.
package invariant

import (
	"bytes"
	"fmt"

	"eleos/internal/addr"
	"eleos/internal/flash"
	"eleos/internal/metrics"
)

// Store is the narrow view of *core.Controller the checker needs. It is
// declared here rather than importing core so the checker stays a leaf
// package; core.Controller satisfies it.
type Store interface {
	Read(lpid addr.LPID) ([]byte, error)
	SessionHighestWSN(sid uint64) (uint64, error)
	ActiveActions() int
	InflightEBlocks() int
	PinnedEBlocks() int
	MetricsSnapshot() metrics.Snapshot
	Device() *flash.Device
}

// Page is one acknowledged page: LPID and the exact content of its
// highest acknowledged version.
type Page struct {
	LPID addr.LPID
	Want []byte
}

// Session is one session's acknowledgement high-water mark. With Exact
// unset the store may have recovered beyond MinWSN (a crash can lose the
// ack but not the write); with Exact set the stored WSN must match.
// With CheckTenant set the store must also report exactly the given
// tenant/priority for the session — tags are durable state, so recovery
// must reproduce them bit-for-bit (requires a store implementing
// TenantStore; core.Controller does).
type Session struct {
	SID    uint64
	MinWSN uint64
	Exact  bool

	Tenant      string
	Priority    uint8
	CheckTenant bool
}

// TenantStore is the optional Store extension for tenant attribution.
type TenantStore interface {
	SessionTenant(sid uint64) (tenant string, priority uint8, err error)
}

// QuotaSnapshot is one tenant's admission accounting as observed after
// the run quiesced (mirrors qos.TenantStats without importing qos, so
// this package stays a leaf).
type QuotaSnapshot struct {
	AdmittedBytes  int64
	ThrottledCount int64
	InflightBytes  int64
	Waiters        int
}

// Skip disables an exact-count expectation.
const Skip = -1

// Expect parameterizes the schedule-specific half of the invariant set.
// The structural invariants (no leaked actions, no leaked pins, zero
// erase-while-pinned) are always checked.
type Expect struct {
	// ProgramFaults / EraseFaults are the exact number of injected faults
	// that fired, checked against the device's persistent Stats counters.
	// Skip to ignore (e.g. when a prior run on the same device already
	// consumed faults that this Expect does not account for).
	ProgramFaults int64
	EraseFaults   int64

	// MetricsProgramFaults / MetricsEraseFaults are the same counts as
	// seen by the metrics registry. These reset when a registry is
	// (re)installed on the device — across a crash→Open recovery, pass
	// Skip here while keeping the device-side counts exact.
	MetricsProgramFaults int64
	MetricsEraseFaults   int64

	// MinPrograms, when > 0, requires flash.programs >= MinPrograms —
	// a sanity floor proving the schedule actually generated traffic.
	MinPrograms int64

	// AllowUnattributed permits programs charged to SrcUnattributed
	// (direct Device.Program calls outside the controller). Unset, any
	// unattributed program is a violation: every controller-issued
	// program names its source, which is what makes the WAF split
	// trustworthy.
	AllowUnattributed bool

	// CheckMetricsAttribution additionally requires the metrics
	// registry's flash.src.* and flash.programmed_bytes counters to
	// equal the device's own ledger. Only exact while one registry
	// observed the device's whole life — set it for schedules with no
	// crash→recover registry swap.
	CheckMetricsAttribution bool

	// MinMediaAborts requires core.write.media_aborts >= this. Clients
	// can observe fewer aborts than injected faults (GC and checkpoints
	// absorb some), but core must have counted every abort it returned.
	MinMediaAborts int64

	Sessions []Session
	Pages    []Page

	// Quotas are the per-tenant admission snapshots taken after the final
	// drain, keyed by tenant name ("" = default). For every entry the
	// checker requires an exactly balanced ledger: zero inflight bytes
	// and zero parked waiters.
	Quotas map[string]QuotaSnapshot
	// MinAdmitted requires tenant key's AdmittedBytes ≥ the value — a
	// traffic floor proving the tenant's writers really ran through
	// admission (only meaningful when no recovery reset the counters).
	MinAdmitted map[string]int64
}

// maxPageViolations caps per-page violation reports so a totally corrupt
// store yields a readable summary instead of thousands of lines.
const maxPageViolations = 20

// Check runs the full invariant set against a quiesced store and returns
// human-readable violations; empty means every invariant holds. It never
// mutates the store beyond reads.
func Check(s Store, e Expect) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	// Structural invariants: always on.
	if n := s.ActiveActions(); n != 0 {
		fail("active actions: %d entries leaked after quiesce", n)
	}
	if n := s.InflightEBlocks(); n != 0 {
		fail("inflight eblocks: %d entries leaked after quiesce", n)
	}
	if n := s.PinnedEBlocks(); n != 0 {
		fail("pinned eblocks: %d entries leaked after quiesce", n)
	}
	snap := s.MetricsSnapshot()
	if n := snap.Counter("core.erase_while_pinned"); n != 0 {
		fail("erase while pinned: %d erases raced a commit-force window", n)
	}

	// Fault accounting.
	st := s.Device().Stats()
	if e.ProgramFaults != Skip && st.WriteFailures != e.ProgramFaults {
		fail("device WriteFailures = %d, want exactly %d", st.WriteFailures, e.ProgramFaults)
	}
	if e.EraseFaults != Skip && st.EraseFailures != e.EraseFaults {
		fail("device EraseFailures = %d, want exactly %d", st.EraseFailures, e.EraseFaults)
	}
	if e.MetricsProgramFaults != Skip {
		if got := snap.Counter("flash.program_failures"); got != e.MetricsProgramFaults {
			fail("flash.program_failures = %d, want exactly %d", got, e.MetricsProgramFaults)
		}
	}
	if e.MetricsEraseFaults != Skip {
		if got := snap.Counter("flash.erase_failures"); got != e.MetricsEraseFaults {
			fail("flash.erase_failures = %d, want exactly %d", got, e.MetricsEraseFaults)
		}
	}
	if e.MinPrograms > 0 {
		if got := snap.Counter("flash.programs"); got < e.MinPrograms {
			fail("flash.programs = %d, want at least %d", got, e.MinPrograms)
		}
	}
	if got := snap.Counter("core.write.media_aborts"); got < e.MinMediaAborts {
		fail("core.write.media_aborts = %d, below %d client-observed aborts", got, e.MinMediaAborts)
	}

	// Programmed-byte conservation: the source split partitions the
	// device's program ledger exactly, through every kill and recovery.
	var srcWB, srcBytes int64
	for src := flash.Source(0); src < flash.NumSources; src++ {
		srcWB += st.SrcWBlocks[src]
		srcBytes += st.SrcBytes[src]
	}
	if srcWB != st.WBlocksWritten {
		fail("programmed-wblock conservation: sources sum to %d, device wrote %d", srcWB, st.WBlocksWritten)
	}
	if srcBytes != st.BytesWritten {
		fail("programmed-byte conservation: sources sum to %d, device wrote %d", srcBytes, st.BytesWritten)
	}
	if !e.AllowUnattributed && st.SrcWBlocks[flash.SrcUnattributed] != 0 {
		fail("attribution: %d WBLOCK programs (%d bytes) bypassed source attribution",
			st.SrcWBlocks[flash.SrcUnattributed], st.SrcBytes[flash.SrcUnattributed])
	}
	if e.CheckMetricsAttribution {
		if got := snap.Counter("flash.programmed_bytes"); got != st.BytesWritten {
			fail("flash.programmed_bytes = %d, device wrote %d", got, st.BytesWritten)
		}
		for src := flash.Source(0); src < flash.NumSources; src++ {
			name := "flash.src." + src.String()
			if got := snap.Counter(name + ".wblocks"); got != st.SrcWBlocks[src] {
				fail("%s.wblocks = %d, device counted %d", name, got, st.SrcWBlocks[src])
			}
			if got := snap.Counter(name + ".bytes"); got != st.SrcBytes[src] {
				fail("%s.bytes = %d, device counted %d", name, got, st.SrcBytes[src])
			}
		}
	}

	// Erase conservation: every pulse bumped exactly one wear counter.
	dev := s.Device()
	geo := dev.Geometry()
	var wearSum int64
	for ch := 0; ch < geo.Channels; ch++ {
		for eb := 0; eb < geo.EBlocksPerChannel; eb++ {
			if ec, err := dev.EraseCount(ch, eb); err == nil {
				wearSum += int64(ec)
			}
		}
	}
	if wearSum != st.EraseAttempts {
		fail("erase conservation: per-EBLOCK wear sums to %d, device attempted %d erases", wearSum, st.EraseAttempts)
	}
	if st.EBlocksErased > st.EraseAttempts {
		fail("erase accounting: %d successful erases exceed %d attempts", st.EBlocksErased, st.EraseAttempts)
	}

	// Session monotonicity and tenant attribution.
	for _, sess := range e.Sessions {
		high, err := s.SessionHighestWSN(sess.SID)
		if err != nil {
			fail("session %d: SessionHighestWSN: %v", sess.SID, err)
			continue
		}
		if sess.Exact && high != sess.MinWSN {
			fail("session %d: highest WSN %d, want exactly %d", sess.SID, high, sess.MinWSN)
		} else if high < sess.MinWSN {
			fail("session %d: highest WSN %d below acknowledged %d", sess.SID, high, sess.MinWSN)
		}
		if sess.CheckTenant {
			ts, ok := s.(TenantStore)
			if !ok {
				fail("session %d: tenant check requested but store has no SessionTenant", sess.SID)
				continue
			}
			tenant, prio, err := ts.SessionTenant(sess.SID)
			if err != nil {
				fail("session %d: SessionTenant: %v", sess.SID, err)
			} else if tenant != sess.Tenant || prio != sess.Priority {
				fail("session %d: attributed to (%q, %d), want (%q, %d)",
					sess.SID, tenant, prio, sess.Tenant, sess.Priority)
			}
		}
	}

	// Quota balance.
	for tenant, qs := range e.Quotas {
		label := tenant
		if label == "" {
			label = "default"
		}
		if qs.InflightBytes != 0 {
			fail("qos %s: %d inflight bytes leaked after drain", label, qs.InflightBytes)
		}
		if qs.Waiters != 0 {
			fail("qos %s: %d waiters still parked after drain", label, qs.Waiters)
		}
		if min := e.MinAdmitted[tenant]; qs.AdmittedBytes < min {
			fail("qos %s: admitted %d bytes, want at least %d", label, qs.AdmittedBytes, min)
		}
	}
	for tenant, min := range e.MinAdmitted {
		if _, ok := e.Quotas[tenant]; !ok && min > 0 {
			label := tenant
			if label == "" {
				label = "default"
			}
			fail("qos %s: expected at least %d admitted bytes but no accounting was recorded", label, min)
		}
	}

	// Content integrity.
	pageFails := 0
	for _, p := range e.Pages {
		msg := checkPage(s, p)
		if msg == "" {
			continue
		}
		pageFails++
		if pageFails <= maxPageViolations {
			v = append(v, msg)
		}
	}
	if pageFails > maxPageViolations {
		fail("content: … and %d more page violations", pageFails-maxPageViolations)
	}
	return v
}

func checkPage(s Store, p Page) string {
	// Read twice: on a controller with the tiered read cache enabled the
	// first read fills (or already hits) the cache and the second is
	// near-certainly served from it, so the pair checks cache coherence —
	// a cached entry that survived an install or GC relocation it should
	// not have shows up as the second read disagreeing with the first, or
	// with the acknowledged bytes. On cacheless controllers both reads
	// take the flash path and the check degrades to plain content
	// integrity.
	got, err := s.Read(p.LPID)
	if err != nil {
		return fmt.Sprintf("content: Read(%d): %v", p.LPID, err)
	}
	if len(got) != addr.AlignUp(len(p.Want)) {
		return fmt.Sprintf("content: Read(%d) length %d, want aligned %d", p.LPID, len(got), addr.AlignUp(len(p.Want)))
	}
	if !bytes.Equal(got[:len(p.Want)], p.Want) {
		return fmt.Sprintf("content: Read(%d) differs from acknowledged version", p.LPID)
	}
	for _, b := range got[len(p.Want):] {
		if b != 0 {
			return fmt.Sprintf("content: Read(%d) padding not zero", p.LPID)
		}
	}
	again, err := s.Read(p.LPID)
	if err != nil {
		return fmt.Sprintf("content: cached re-Read(%d): %v", p.LPID, err)
	}
	if !bytes.Equal(again, got) {
		return fmt.Sprintf("content: cached re-Read(%d) disagrees with flash read", p.LPID)
	}
	return ""
}

// TB is the sliver of *testing.T the test helper needs; an interface so
// this package does not import testing (which would drag test flags into
// non-test binaries like benchrunner).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// MustHold runs Check and reports every violation through tb.Errorf.
func MustHold(tb TB, s Store, e Expect) {
	tb.Helper()
	for _, viol := range Check(s, e) {
		tb.Errorf("invariant violated: %s", viol)
	}
}
