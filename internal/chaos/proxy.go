package chaos

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
)

// Proxy sits between one chaos writer and the server, forwarding netproto
// frames. It supports the two interventions the harness needs:
//
//   - ArmKill cuts the writer's connection AFTER the next full request
//     frame has reached the server but BEFORE any reply byte reaches the
//     client — the ack-lost window the retry protocol must absorb.
//   - SetBackend repoints the proxy at a new server address; the writer's
//     client reconnects through the stable proxy address after a
//     crash→recover loop restarts the server elsewhere.
//
// It is exported within the module so the client reconnect tests can
// reuse it against a plain server.
type Proxy struct {
	ln net.Listener

	mu       sync.Mutex
	backend  string
	killNext bool
	kills    int
}

// NewProxy listens on loopback and forwards to backend.
func NewProxy(backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, backend: backend}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go p.pipe(conn)
		}
	}()
	return p, nil
}

// Addr returns the stable address writers dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting. In-flight pipes die with their connections.
func (p *Proxy) Close() { _ = p.ln.Close() }

// SetBackend repoints future connections at a new server address.
func (p *Proxy) SetBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

// ArmKill makes the proxy kill the connection after the next request
// frame is forwarded. One-shot.
func (p *Proxy) ArmKill() {
	p.mu.Lock()
	p.killNext = true
	p.mu.Unlock()
}

// Kills returns how many armed kills have fired.
func (p *Proxy) Kills() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kills
}

func (p *Proxy) takeKill() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.killNext {
		return false
	}
	p.killNext = false
	p.kills++
	return true
}

func (p *Proxy) currentBackend() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.backend
}

func (p *Proxy) pipe(cl net.Conn) {
	be, err := net.Dial("tcp", p.currentBackend())
	if err != nil {
		_ = cl.Close()
		return
	}
	replies := make(chan struct{})
	go func() {
		_, _ = io.Copy(cl, be) // reply direction
		close(replies)
	}()
	finish := func() {
		_ = cl.Close()
		if tc, ok := be.(*net.TCPConn); ok {
			_ = tc.CloseWrite() // let the server finish reading, then see EOF
		}
		<-replies
		_ = be.Close()
	}
	defer finish()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(cl, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > 64<<20 {
			return
		}
		frame := make([]byte, 4+int(n))
		copy(frame, hdr[:])
		if _, err := io.ReadFull(cl, frame[4:]); err != nil {
			return
		}
		if _, err := be.Write(frame); err != nil {
			return
		}
		if p.takeKill() {
			// The request is on its way to the server; cut the client off
			// before the reply can cross back.
			return
		}
	}
}
