// Package gc defines pluggable victim-selection policies for the
// controller's garbage collector (§VI-A, DESIGN.md §10.3).
//
// The core keeps everything that must stay correct regardless of
// policy — skipping EBLOCKs with inflight or pinned actions, the
// truncated-log fast path, the nothing-reclaimable filter — and
// delegates only the ranking: each eligible EBLOCK becomes a Candidate
// and the policy with the LOWEST Score wins the round. A policy is
// therefore a pure function over per-EBLOCK facts and cannot break
// crash consistency, only waste bandwidth.
package gc

import "math"

// Candidate is one GC-eligible EBLOCK's facts at selection time.
type Candidate struct {
	Ch, EB     int
	Avail      uint64 // reclaimable bytes (obsolete LPAGEs + fragmentation)
	CapBytes   uint64 // EBLOCK capacity
	Age        uint64 // update-sequence distance since close, >= 1
	EraseCount uint32 // wear on this EBLOCK
	Timestamp  uint64 // close time (update seq)
}

// reclaimable returns E, the reclaimable fraction, clamped to [0, 1].
func (c Candidate) reclaimable() float64 {
	if c.CapBytes == 0 {
		return 0
	}
	e := float64(c.Avail) / float64(c.CapBytes)
	if e > 1 {
		return 1
	}
	return e
}

// Policy ranks GC candidates; the lowest score is collected first.
// Implementations must be pure (no state mutation in Score) — the core
// calls Score under its lock, once per candidate per round.
type Policy interface {
	// Name identifies the policy in stats_full labels and logs.
	Name() string
	// Score rates a candidate. Return +Inf to decline it entirely.
	Score(c Candidate) float64
}

// MinCostDecline is the paper's default: (1-E)/(E²·age) — prefer
// EBLOCKs whose reclaim cost per byte is low AND declining slowly,
// biasing toward cold, mostly-garbage blocks (§VI-A).
type MinCostDecline struct{}

func (MinCostDecline) Name() string { return "min-cost-decline" }

func (MinCostDecline) Score(c Candidate) float64 {
	e := c.reclaimable()
	if e <= 0 {
		return math.Inf(1)
	}
	age := float64(c.Age)
	if age < 1 {
		age = 1
	}
	return (1 - e) / (e * e * age)
}

// Greedy picks the most reclaimable space right now: score 1-E. Cheap
// and effective under uniform workloads; wasteful under skew, where it
// repeatedly collects hot blocks just before they would have emptied
// further.
type Greedy struct{}

func (Greedy) Name() string { return "greedy" }

func (Greedy) Score(c Candidate) float64 {
	e := c.reclaimable()
	if e <= 0 {
		return math.Inf(1)
	}
	return 1 - e
}

// Oldest collects in close-time order — circular-log cleaning (LLAMA
// style). The core re-timestamps survivors to the current update
// sequence so moved cold data does not immediately become "oldest"
// again.
type Oldest struct{}

func (Oldest) Name() string { return "oldest" }

func (Oldest) Score(c Candidate) float64 {
	if c.reclaimable() <= 0 {
		return math.Inf(1)
	}
	return float64(c.Timestamp)
}

// CostBenefit is the LFS cleaner's ranking (Rosenblum & Ousterhout):
// maximize benefit/cost = E·age/(2-E) — the (2-E) denominator charges
// reading the whole block plus rewriting its live 1-E fraction. Encoded
// as a negated score so lower still wins.
type CostBenefit struct{}

func (CostBenefit) Name() string { return "cost-benefit" }

func (CostBenefit) Score(c Candidate) float64 {
	e := c.reclaimable()
	if e <= 0 {
		return math.Inf(1)
	}
	age := float64(c.Age)
	if age < 1 {
		age = 1
	}
	return -(e * age) / (2 - e)
}

// WearAware is MinCostDecline with a wear penalty: the base score is
// inflated by WearBias per prior erase, steering collection toward
// low-wear EBLOCKs when reclaim economics are otherwise close, which
// evens erase counts across the device over time.
type WearAware struct {
	// WearBias is the per-erase score inflation; 0 selects the 0.05
	// default (each erase makes a block 5% less attractive).
	WearBias float64
}

func (WearAware) Name() string { return "wear-aware" }

func (w WearAware) Score(c Candidate) float64 {
	base := MinCostDecline{}.Score(c)
	if math.IsInf(base, 1) {
		return base
	}
	bias := w.WearBias
	if bias <= 0 {
		bias = 0.05
	}
	return base * (1 + bias*float64(c.EraseCount))
}
