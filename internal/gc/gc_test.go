package gc

import (
	"math"
	"testing"
)

// pick returns the index of the lowest-scoring candidate (the victim),
// or -1 if every candidate is declined.
func pick(p Policy, cands []Candidate) int {
	best, bestScore := -1, math.Inf(1)
	for i, c := range cands {
		if s := p.Score(c); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// cand builds a candidate over a 100-byte EBLOCK for readable ratios.
func cand(avail, age uint64, erase uint32, ts uint64) Candidate {
	return Candidate{Avail: avail, CapBytes: 100, Age: age, EraseCount: erase, Timestamp: ts}
}

// TestPoliciesDivergeGreedyVsCostBenefit: greedy chases raw free space
// (X: 80% reclaimable but brand new); cost-benefit and min-cost-decline
// weigh age and prefer the cold half-empty block (Y).
func TestPoliciesDivergeGreedyVsCostBenefit(t *testing.T) {
	layout := []Candidate{
		cand(80, 1, 0, 100), // X: hot, mostly garbage
		cand(50, 100, 0, 1), // Y: cold, half garbage
	}
	if got := pick(Greedy{}, layout); got != 0 {
		t.Fatalf("greedy picked %d, want 0 (most reclaimable)", got)
	}
	if got := pick(CostBenefit{}, layout); got != 1 {
		t.Fatalf("cost-benefit picked %d, want 1 (age-weighted)", got)
	}
	if got := pick(MinCostDecline{}, layout); got != 1 {
		t.Fatalf("min-cost-decline picked %d, want 1 (slow decline)", got)
	}
}

// TestPoliciesDivergeWearAware: P and Q have similar reclaim economics
// (min-cost-decline narrowly prefers P), but P has been erased 100
// times; the wear penalty flips the choice to the pristine Q.
func TestPoliciesDivergeWearAware(t *testing.T) {
	layout := []Candidate{
		cand(50, 10, 100, 5), // P: slightly better economics, heavy wear
		cand(45, 10, 0, 5),   // Q: slightly worse economics, no wear
	}
	if got := pick(MinCostDecline{}, layout); got != 0 {
		t.Fatalf("min-cost-decline picked %d, want 0", got)
	}
	if got := pick(Greedy{}, layout); got != 0 {
		t.Fatalf("greedy picked %d, want 0", got)
	}
	if got := pick(WearAware{}, layout); got != 1 {
		t.Fatalf("wear-aware picked %d, want 1 (low wear)", got)
	}
}

// TestOldestIgnoresReclaimEconomics: oldest is pure close-time order —
// it takes the oldest block even when a younger one has far more
// garbage.
func TestOldestIgnoresReclaimEconomics(t *testing.T) {
	layout := []Candidate{
		cand(90, 5, 0, 50), // younger, almost all garbage
		cand(10, 90, 0, 2), // oldest, barely any garbage
	}
	if got := pick(Oldest{}, layout); got != 1 {
		t.Fatalf("oldest picked %d, want 1", got)
	}
	if got := pick(Greedy{}, layout); got != 0 {
		t.Fatalf("greedy picked %d, want 0", got)
	}
}

// TestNothingReclaimableDeclined: every policy must return +Inf for a
// candidate with no reclaimable bytes — collecting it would burn an
// erase for zero space.
func TestNothingReclaimableDeclined(t *testing.T) {
	empty := cand(0, 50, 3, 7)
	for _, p := range []Policy{MinCostDecline{}, Greedy{}, Oldest{}, CostBenefit{}, WearAware{}} {
		if s := p.Score(empty); !math.IsInf(s, 1) {
			t.Errorf("%s scored empty candidate %v, want +Inf", p.Name(), s)
		}
	}
	if got := pick(MinCostDecline{}, []Candidate{empty, empty}); got != -1 {
		t.Fatalf("pick over declined candidates = %d, want -1", got)
	}
}

// TestScoreClampsOverfullAvail: Avail can transiently exceed capacity
// (fragmentation accounting); E clamps to 1 and the scores stay finite
// and minimal rather than going negative or NaN.
func TestScoreClampsOverfullAvail(t *testing.T) {
	over := cand(250, 10, 0, 1)
	for _, p := range []Policy{MinCostDecline{}, Greedy{}, WearAware{}} {
		s := p.Score(over)
		if math.IsNaN(s) || s < 0 {
			t.Errorf("%s scored overfull candidate %v, want finite >= 0", p.Name(), s)
		}
	}
	if s := (CostBenefit{}).Score(over); math.IsNaN(s) {
		t.Errorf("cost-benefit scored overfull candidate NaN")
	}
	// A fully-reclaimable block must beat any partially-reclaimable one
	// under min-cost-decline (score 0 — free space, no movement).
	if s := (MinCostDecline{}).Score(over); s != 0 {
		t.Errorf("min-cost-decline full-garbage score = %v, want 0", s)
	}
}

// TestWearBiasDefault: zero-valued WearAware applies the documented 5%
// default rather than no penalty.
func TestWearBiasDefault(t *testing.T) {
	c := cand(50, 10, 20, 5)
	base := MinCostDecline{}.Score(c)
	got := WearAware{}.Score(c)
	want := base * (1 + 0.05*20)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("wear-aware default bias score = %v, want %v", got, want)
	}
	custom := WearAware{WearBias: 0.5}.Score(c)
	if math.Abs(custom-base*(1+0.5*20)) > 1e-12 {
		t.Fatalf("wear-aware custom bias score = %v", custom)
	}
}

// TestPolicyNames pins the names surfaced in stats_full labels.
func TestPolicyNames(t *testing.T) {
	want := map[string]Policy{
		"min-cost-decline": MinCostDecline{},
		"greedy":           Greedy{},
		"oldest":           Oldest{},
		"cost-benefit":     CostBenefit{},
		"wear-aware":       WearAware{},
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("%T.Name() = %q, want %q", p, p.Name(), name)
		}
	}
}
