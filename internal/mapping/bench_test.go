package mapping

import (
	"testing"

	"eleos/internal/addr"
)

func BenchmarkGetSet(b *testing.B) {
	t, _ := New(DefaultConfig())
	a := addr.MustPack(1, 2, 128, 1920)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lpid := addr.LPID(i % 100000)
		if err := t.Set(lpid, a, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := t.Get(lpid); err != nil {
			b.Fatal(err)
		}
	}
}
