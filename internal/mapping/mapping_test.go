package mapping

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"eleos/internal/addr"
)

func smallConfig() Config {
	return Config{EntriesPerPage: 8, AddrsPerSmallPage: 4}
}

func newTable(t *testing.T, cfg Config) *Table {
	t.Helper()
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// flashFake stores flushed table pages by fake address.
type flashFake struct {
	next  int
	store map[addr.PhysAddr][]byte
}

func newFlashFake() *flashFake {
	return &flashFake{next: 1, store: make(map[addr.PhysAddr][]byte)}
}

func (f *flashFake) put(b []byte) addr.PhysAddr {
	a := addr.MustPack(1, f.next, 0, addr.AlignUp(len(b)))
	f.next++
	cp := make([]byte, len(b))
	copy(cp, b)
	f.store[a] = cp
	return a
}

func (f *flashFake) loader(a addr.PhysAddr) ([]byte, error) {
	b, ok := f.store[a]
	if !ok {
		return nil, errors.New("fake: unknown address")
	}
	return append([]byte(nil), b...), nil
}

func TestGetUnmapped(t *testing.T) {
	tb := newTable(t, smallConfig())
	a, err := tb.Get(42)
	if err != nil {
		t.Fatal(err)
	}
	if a.IsValid() {
		t.Fatal("unmapped LPID should return invalid address")
	}
}

func TestSetGet(t *testing.T) {
	tb := newTable(t, smallConfig())
	want := addr.MustPack(2, 3, 128, 256)
	if err := tb.Set(5, want, 10); err != nil {
		t.Fatal(err)
	}
	got, err := tb.Get(5)
	if err != nil || got != want {
		t.Fatalf("Get = %v, %v", got, err)
	}
	// Overwrite.
	want2 := addr.MustPack(2, 4, 0, 64)
	if err := tb.Set(5, want2, 11); err != nil {
		t.Fatal(err)
	}
	got, _ = tb.Get(5)
	if got != want2 {
		t.Fatal("overwrite lost")
	}
}

func TestSetIfConditional(t *testing.T) {
	tb := newTable(t, smallConfig())
	a1 := addr.MustPack(0, 1, 0, 64)
	a2 := addr.MustPack(0, 2, 0, 64)
	a3 := addr.MustPack(0, 3, 0, 64)
	if err := tb.Set(7, a1, 1); err != nil {
		t.Fatal(err)
	}
	ok, err := tb.SetIf(7, a1, a2, 2)
	if err != nil || !ok {
		t.Fatalf("SetIf should succeed: %v %v", ok, err)
	}
	ok, err = tb.SetIf(7, a1, a3, 3)
	if err != nil || ok {
		t.Fatalf("SetIf with stale old should fail: %v %v", ok, err)
	}
	got, _ := tb.Get(7)
	if got != a2 {
		t.Fatalf("Get = %v, want %v", got, a2)
	}
}

func TestDirtyTrackingAndMinRecLSN(t *testing.T) {
	tb := newTable(t, smallConfig())
	if tb.MinRecLSN() != 0 {
		t.Fatal("clean table should report 0")
	}
	_ = tb.Set(0, addr.MustPack(0, 1, 0, 64), 100) // page 0
	_ = tb.Set(9, addr.MustPack(0, 1, 64, 64), 50) // page 1
	_ = tb.Set(1, addr.MustPack(0, 1, 128, 64), 7) // page 0 again: recLSN stays 100
	if got := tb.DirtyPages(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("DirtyPages = %v", got)
	}
	if tb.MinRecLSN() != 50 {
		t.Fatalf("MinRecLSN = %d", tb.MinRecLSN())
	}
	fake := newFlashFake()
	img, err := tb.SerializePage(1)
	if err != nil {
		t.Fatal(err)
	}
	tb.MarkFlushed(1, fake.put(img), 200)
	if got := tb.DirtyPages(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("after flush DirtyPages = %v", got)
	}
	if tb.MinRecLSN() != 100 {
		t.Fatalf("MinRecLSN after flush = %d", tb.MinRecLSN())
	}
	// Flushing dirtied small page 0 (mapping page 1 lives in small page 0).
	if got := tb.DirtySmallPages(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("DirtySmallPages = %v", got)
	}
}

func TestFlushLoadRoundTrip(t *testing.T) {
	cfg := smallConfig()
	tb := newTable(t, cfg)
	fake := newFlashFake()
	tb.SetLoader(fake.loader)

	addrs := map[addr.LPID]addr.PhysAddr{}
	for i := 0; i < 40; i++ {
		lpid := addr.LPID(i)
		a := addr.MustPack(1, 2, i*64, 64)
		addrs[lpid] = a
		if err := tb.Set(lpid, a, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Flush all dirty mapping pages, then all dirty small pages.
	for _, idx := range tb.DirtyPages() {
		img, err := tb.SerializePage(idx)
		if err != nil {
			t.Fatal(err)
		}
		tb.MarkFlushed(idx, fake.put(img), 2)
	}
	for _, sp := range tb.DirtySmallPages() {
		tb.MarkSmallFlushed(sp, fake.put(tb.SerializeSmallPage(sp)))
	}
	tiny := tb.TinyTable()
	if len(tiny) == 0 {
		t.Fatal("tiny table empty after flush")
	}

	// Simulate crash: fresh table, rebuild from tiny.
	tb2 := newTable(t, cfg)
	tb2.SetLoader(fake.loader)
	if err := tb2.LoadFromTiny(tiny); err != nil {
		t.Fatal(err)
	}
	for lpid, want := range addrs {
		got, err := tb2.Get(lpid)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Get(%d) = %v, want %v", lpid, got, want)
		}
	}
	if tb2.Stats().Loads == 0 {
		t.Fatal("expected page loads from flash")
	}
}

func TestCacheEviction(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheLimit = 2
	tb := newTable(t, cfg)
	fake := newFlashFake()
	tb.SetLoader(fake.loader)
	// Create 4 pages, flush them all so they are clean and evictable.
	for p := 0; p < 4; p++ {
		lpid := addr.LPID(p * cfg.EntriesPerPage)
		if err := tb.Set(lpid, addr.MustPack(1, 1, p*64, 64), 1); err != nil {
			t.Fatal(err)
		}
		img, _ := tb.SerializePage(p)
		tb.MarkFlushed(p, fake.put(img), 1)
	}
	if tb.Stats().Evictions == 0 {
		t.Fatal("expected evictions with cache limit 2")
	}
	// All entries still reachable (reloaded from flash on miss).
	for p := 0; p < 4; p++ {
		lpid := addr.LPID(p * cfg.EntriesPerPage)
		got, err := tb.Get(lpid)
		if err != nil {
			t.Fatal(err)
		}
		if got != addr.MustPack(1, 1, p*64, 64) {
			t.Fatalf("page %d entry lost after eviction", p)
		}
	}
}

func TestDirtyPagesNeverEvicted(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheLimit = 1
	tb := newTable(t, cfg)
	// Dirty 3 pages with no loader: they must all stay cached.
	for p := 0; p < 3; p++ {
		if err := tb.Set(addr.LPID(p*cfg.EntriesPerPage), addr.MustPack(1, 1, 0, 64), 1); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 3; p++ {
		got, err := tb.Get(addr.LPID(p * cfg.EntriesPerPage))
		if err != nil || !got.IsValid() {
			t.Fatalf("dirty page %d evicted: %v %v", p, got, err)
		}
	}
}

func TestPageAddrConditionalRelocation(t *testing.T) {
	tb := newTable(t, smallConfig())
	fake := newFlashFake()
	tb.SetLoader(fake.loader)
	_ = tb.Set(0, addr.MustPack(1, 1, 0, 64), 1)
	img, _ := tb.SerializePage(0)
	old := fake.put(img)
	tb.MarkFlushed(0, old, 2)
	if tb.PageAddr(0) != old {
		t.Fatal("PageAddr wrong after flush")
	}
	newA := fake.put(img)
	if !tb.SetPageAddrIf(0, old, newA, 3) {
		t.Fatal("conditional page relocation should succeed")
	}
	if tb.SetPageAddrIf(0, old, newA, 4) {
		t.Fatal("stale conditional relocation should fail")
	}
	if tb.PageAddr(0) != newA {
		t.Fatal("PageAddr not updated")
	}
	// Out-of-range index.
	if tb.SetPageAddrIf(99, old, newA, 5) {
		t.Fatal("out-of-range relocation should fail")
	}
}

func TestSmallPageConditionalRelocation(t *testing.T) {
	tb := newTable(t, smallConfig())
	a1 := addr.MustPack(1, 1, 0, 64)
	a2 := addr.MustPack(1, 2, 0, 64)
	tb.MarkSmallFlushed(0, a1)
	if !tb.SmallPageAddrIf(0, a1, a2) {
		t.Fatal("small relocation should succeed")
	}
	if tb.SmallPageAddrIf(0, a1, a2) {
		t.Fatal("stale small relocation should fail")
	}
	tiny := tb.TinyTable()
	if len(tiny) != 1 || tiny[0] != a2 {
		t.Fatalf("tiny = %v", tiny)
	}
}

func TestLoaderErrorsPropagate(t *testing.T) {
	tb := newTable(t, smallConfig())
	// Register a flushed page address but no loader.
	tb.SetPageAddr(0, addr.MustPack(1, 1, 0, 64), 1)
	if _, err := tb.Get(0); err == nil {
		t.Fatal("expected error without loader")
	}
	tb.SetLoader(func(a addr.PhysAddr) ([]byte, error) { return nil, errors.New("io error") })
	if _, err := tb.Get(0); err == nil {
		t.Fatal("expected loader error")
	}
	// Corrupt image.
	tb.SetLoader(func(a addr.PhysAddr) ([]byte, error) { return make([]byte, 64), nil })
	if _, err := tb.Get(0); !errors.Is(err, ErrBadPage) {
		t.Fatalf("expected ErrBadPage, got %v", err)
	}
}

func TestDropCache(t *testing.T) {
	tb := newTable(t, smallConfig())
	_ = tb.Set(1, addr.MustPack(1, 1, 0, 64), 1)
	tb.DropCache()
	got, err := tb.Get(1)
	if err != nil || got.IsValid() {
		t.Fatal("DropCache should lose volatile state")
	}
	if len(tb.DirtyPages()) != 0 || tb.MinRecLSN() != 0 {
		t.Fatal("DropCache left dirty state")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{EntriesPerPage: 8},
		{EntriesPerPage: 8, AddrsPerSmallPage: -1},
		{EntriesPerPage: 8, AddrsPerSmallPage: 8, CacheLimit: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

// Property: a sequence of random Set/SetIf operations, interleaved with
// flush+reload cycles, always leaves Get returning the latest installed
// address per LPID.
func TestRandomOpsMatchModelQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := smallConfig()
		cfg.CacheLimit = 3
		tb, _ := New(cfg)
		fake := newFlashFake()
		tb.SetLoader(fake.loader)
		model := map[addr.LPID]addr.PhysAddr{}
		for op := 0; op < 300; op++ {
			lpid := addr.LPID(rng.Intn(64))
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5:
				a := addr.MustPack(1, 1+rng.Intn(10), rng.Intn(100)*64, 64*(1+rng.Intn(4)))
				if tb.Set(lpid, a, 1) != nil {
					return false
				}
				model[lpid] = a
			case 6, 7:
				old := model[lpid]
				a := addr.MustPack(2, 1+rng.Intn(10), rng.Intn(100)*64, 64)
				ok, err := tb.SetIf(lpid, old, a, 1)
				if err != nil {
					return false
				}
				if ok != (old == model[lpid]) {
					return false
				}
				if ok {
					model[lpid] = a
				}
			default:
				// Flush everything dirty (checkpoint-like).
				for _, idx := range tb.DirtyPages() {
					img, err := tb.SerializePage(idx)
					if err != nil {
						return false
					}
					tb.MarkFlushed(idx, fake.put(img), 1)
				}
			}
			if op%37 == 0 {
				for lp, want := range model {
					got, err := tb.Get(lp)
					if err != nil || got != want {
						return false
					}
				}
			}
		}
		for lp, want := range model {
			got, err := tb.Get(lp)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
