// Package mapping implements the three-level mapping table of §III-B.
//
// The bottom level maps each LPID to the packed physical address (which
// includes the LPAGE length) of its latest version. Mapping pages are too
// numerous to pin in memory, so a *small table* records the flash address
// of every mapping page, and a *tiny table* records the flash addresses of
// the small table's own pages; the tiny table is small enough to live in
// the checkpoint record.
//
// Mapping pages and small-table pages are stored on flash as ordinary
// LPAGEs (namespaced LPIDs), so garbage collection relocates them with the
// same machinery as user data; recovery's first log pass repairs their
// addresses before the second pass needs them (§VIII-C1).
//
// The page cache is striped across shards keyed by mapping-page index, so
// concurrent installs and lookups of different pages do not serialize on
// one mutex. The LRU list backing CacheLimit is global (eviction pressure
// is a whole-table property) and is only maintained when a limit is set.
package mapping

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"

	"eleos/internal/addr"
	"eleos/internal/record"
)

// Loader reads a previously flushed table page from flash given its
// physical address. Supplied by the controller.
type Loader func(a addr.PhysAddr) ([]byte, error)

// Config sizes the table.
type Config struct {
	// EntriesPerPage is the number of LPID slots per mapping page.
	EntriesPerPage int
	// AddrsPerSmallPage is the number of mapping-page addresses per
	// small-table page.
	AddrsPerSmallPage int
	// CacheLimit caps the number of mapping pages held in memory
	// (0 = unlimited). Dirty pages are never evicted (no-steal).
	CacheLimit int
}

// DefaultConfig returns sizes giving ~2 KB mapping pages.
func DefaultConfig() Config {
	return Config{EntriesPerPage: 256, AddrsPerSmallPage: 256}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.EntriesPerPage <= 0 || c.AddrsPerSmallPage <= 0 {
		return errors.New("mapping: page sizes must be positive")
	}
	if c.CacheLimit < 0 {
		return errors.New("mapping: cache limit must be non-negative")
	}
	return nil
}

// Stats counts cache behaviour.
type Stats struct {
	Hits      int64
	Misses    int64
	Loads     int64
	Evictions int64
}

type page struct {
	entries []addr.PhysAddr
	dirty   bool
	recLSN  record.LSN // LSN that first dirtied the page since its last flush
}

// numShards stripes the page cache. Must be a power of two.
const numShards = 16

type shard struct {
	mu    sync.Mutex
	pages map[int]*page
}

// Table is the in-memory face of the mapping table. Safe for concurrent
// use: page operations lock only the owning shard (plus the small-table
// mutex on a miss), so lookups and installs of different pages proceed in
// parallel.
//
// Lock order: lruMu -> shard.mu -> tablesMu.
type Table struct {
	cfg    Config
	shards [numShards]shard
	cached atomic.Int64 // total cached pages across shards

	lruMu sync.Mutex
	lru   []int // cached page indices, least recently used first

	tablesMu   sync.Mutex
	loader     Loader
	small      []addr.PhysAddr // flash address of mapping page i (0 = never flushed)
	smallDirty map[int]record.LSN
	tiny       []addr.PhysAddr // flash address of small page j (checkpoint record)

	hits      atomic.Int64
	misses    atomic.Int64
	loads     atomic.Int64
	evictions atomic.Int64
}

// New creates an empty table.
func New(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{cfg: cfg, smallDirty: make(map[int]record.LSN)}
	for i := range t.shards {
		t.shards[i].pages = make(map[int]*page)
	}
	return t, nil
}

// SetLoader installs the flash reader used for cache misses.
func (t *Table) SetLoader(l Loader) {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	t.loader = l
}

// Config returns the table configuration.
func (t *Table) Config() Config { return t.cfg }

// Stats returns cache statistics.
func (t *Table) Stats() Stats {
	return Stats{
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Loads:     t.loads.Load(),
		Evictions: t.evictions.Load(),
	}
}

func (t *Table) pageOf(lpid addr.LPID) (pageIdx, slot int) {
	return int(lpid.TableIndex()) / t.cfg.EntriesPerPage, int(lpid.TableIndex()) % t.cfg.EntriesPerPage
}

func (t *Table) shard(idx int) *shard { return &t.shards[idx&(numShards-1)] }

// cacheMaintain records a use of page idx and evicts clean pages (LRU
// first) while the cache is over budget. idx doubles as the page to keep:
// it was just returned to a caller and must not be evicted even if clean.
// No-op when no cache limit is configured — unlimited caches skip the LRU
// bookkeeping entirely.
func (t *Table) cacheMaintain(idx int) {
	if t.cfg.CacheLimit <= 0 {
		return
	}
	t.lruMu.Lock()
	defer t.lruMu.Unlock()
	moved := false
	for i, v := range t.lru {
		if v == idx {
			t.lru = append(append(t.lru[:i], t.lru[i+1:]...), idx)
			moved = true
			break
		}
	}
	if !moved {
		t.lru = append(t.lru, idx)
	}
	for int(t.cached.Load()) > t.cfg.CacheLimit {
		evicted := false
		for i := 0; i < len(t.lru); {
			v := t.lru[i]
			if v == idx {
				i++
				continue
			}
			sh := t.shard(v)
			sh.mu.Lock()
			p := sh.pages[v]
			if p == nil {
				sh.mu.Unlock()
				t.lru = append(t.lru[:i], t.lru[i+1:]...) // stale entry
				continue
			}
			if p.dirty {
				sh.mu.Unlock()
				i++
				continue
			}
			delete(sh.pages, v)
			sh.mu.Unlock()
			t.cached.Add(-1)
			t.evictions.Add(1)
			t.lru = append(t.lru[:i], t.lru[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return // everything dirty: over-budget until next checkpoint
		}
	}
}

// getPageLocked returns the page for idx in sh, loading it from flash if it
// was flushed before. Caller holds sh.mu. A page that was never flushed and
// is not cached is implicitly all-unmapped; create is false → nil is
// returned for such pages.
func (t *Table) getPageLocked(sh *shard, idx int, create bool) (*page, error) {
	if p, ok := sh.pages[idx]; ok {
		t.hits.Add(1)
		return p, nil
	}
	t.misses.Add(1)
	t.tablesMu.Lock()
	var home addr.PhysAddr
	if idx < len(t.small) {
		home = t.small[idx]
	}
	loader := t.loader
	t.tablesMu.Unlock()
	if home.IsValid() {
		if loader == nil {
			return nil, errors.New("mapping: page not cached and no loader installed")
		}
		raw, err := loader(home)
		if err != nil {
			return nil, fmt.Errorf("mapping: load page %d: %w", idx, err)
		}
		p, err := decodePage(raw, idx, t.cfg.EntriesPerPage)
		if err != nil {
			return nil, err
		}
		sh.pages[idx] = p
		t.cached.Add(1)
		t.loads.Add(1)
		return p, nil
	}
	if !create {
		return nil, nil
	}
	p := &page{entries: make([]addr.PhysAddr, t.cfg.EntriesPerPage)}
	sh.pages[idx] = p
	t.cached.Add(1)
	return p, nil
}

// Get returns the latest physical address of lpid (invalid if unmapped).
func (t *Table) Get(lpid addr.LPID) (addr.PhysAddr, error) {
	idx, slot := t.pageOf(lpid)
	sh := t.shard(idx)
	sh.mu.Lock()
	p, err := t.getPageLocked(sh, idx, false)
	if err != nil {
		sh.mu.Unlock()
		return 0, err
	}
	var a addr.PhysAddr
	if p != nil {
		a = p.entries[slot]
	}
	sh.mu.Unlock()
	if p != nil {
		t.cacheMaintain(idx)
	}
	return a, nil
}

// Set unconditionally installs a new address for lpid (user writes and
// redo). lsn is the log record LSN backing the change.
func (t *Table) Set(lpid addr.LPID, a addr.PhysAddr, lsn record.LSN) error {
	idx, slot := t.pageOf(lpid)
	sh := t.shard(idx)
	sh.mu.Lock()
	p, err := t.getPageLocked(sh, idx, true)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	p.entries[slot] = a
	if !p.dirty {
		p.dirty = true
		p.recLSN = lsn
	}
	sh.mu.Unlock()
	t.cacheMaintain(idx)
	return nil
}

// SetIf installs a new address only if the current address equals old —
// the conditional install used by GC commits (§VI-C). It reports whether
// the install happened.
func (t *Table) SetIf(lpid addr.LPID, old, new addr.PhysAddr, lsn record.LSN) (bool, error) {
	idx, slot := t.pageOf(lpid)
	sh := t.shard(idx)
	sh.mu.Lock()
	p, err := t.getPageLocked(sh, idx, true)
	if err != nil {
		sh.mu.Unlock()
		return false, err
	}
	ok := p.entries[slot] == old
	if ok {
		p.entries[slot] = new
		if !p.dirty {
			p.dirty = true
			p.recLSN = lsn
		}
	}
	sh.mu.Unlock()
	t.cacheMaintain(idx)
	return ok, nil
}

// DirtyPages returns the indices of dirty mapping pages, ascending.
func (t *Table) DirtyPages() []int {
	var out []int
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for idx, p := range sh.pages {
			if p.dirty {
				out = append(out, idx)
			}
		}
		sh.mu.Unlock()
	}
	sort.Ints(out)
	return out
}

// SerializePage returns the on-flash image of mapping page idx, 64-byte
// aligned for storage as an LPAGE.
func (t *Table) SerializePage(idx int) ([]byte, error) {
	sh := t.shard(idx)
	sh.mu.Lock()
	p, err := t.getPageLocked(sh, idx, true)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	img := encodePage(p.entries, idx)
	sh.mu.Unlock()
	t.cacheMaintain(idx)
	return img, nil
}

// MarkFlushed records that mapping page idx was durably written at a; the
// page becomes clean and the small table (dirtying its small page) is
// updated. lsn is the flush's log LSN.
func (t *Table) MarkFlushed(idx int, a addr.PhysAddr, lsn record.LSN) {
	sh := t.shard(idx)
	sh.mu.Lock()
	if p, ok := sh.pages[idx]; ok {
		p.dirty = false
		p.recLSN = 0
	}
	sh.mu.Unlock()
	t.tablesMu.Lock()
	t.setSmallLocked(idx, a, lsn)
	t.tablesMu.Unlock()
}

// setSmallLocked requires tablesMu.
func (t *Table) setSmallLocked(idx int, a addr.PhysAddr, lsn record.LSN) {
	for idx >= len(t.small) {
		t.small = append(t.small, 0)
	}
	t.small[idx] = a
	sp := idx / t.cfg.AddrsPerSmallPage
	if _, ok := t.smallDirty[sp]; !ok {
		t.smallDirty[sp] = lsn
	}
}

// PageAddr returns the flash address of mapping page idx (invalid if the
// page was never flushed).
func (t *Table) PageAddr(idx int) addr.PhysAddr {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	if idx < 0 || idx >= len(t.small) {
		return 0
	}
	return t.small[idx]
}

// SetPageAddr installs a mapping-page address directly (recovery pass 1).
func (t *Table) SetPageAddr(idx int, a addr.PhysAddr, lsn record.LSN) {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	t.setSmallLocked(idx, a, lsn)
}

// SetPageAddrIf conditionally relocates mapping page idx from old to new
// (GC of a PageMap LPAGE). Reports whether the install happened.
func (t *Table) SetPageAddrIf(idx int, old, new addr.PhysAddr, lsn record.LSN) bool {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	if idx < 0 || idx >= len(t.small) || t.small[idx] != old {
		return false
	}
	// The cached copy (if any) stays valid: the content did not change,
	// only its flash home.
	t.setSmallLocked(idx, new, lsn)
	return true
}

// --- small table pagination ----------------------------------------------

// DirtySmallPages returns the indices of dirty small-table pages.
func (t *Table) DirtySmallPages() []int {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	out := make([]int, 0, len(t.smallDirty))
	for sp := range t.smallDirty {
		out = append(out, sp)
	}
	sort.Ints(out)
	return out
}

// SerializeSmallPage returns the on-flash image of small-table page sp.
func (t *Table) SerializeSmallPage(sp int) []byte {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	lo := sp * t.cfg.AddrsPerSmallPage
	entries := make([]addr.PhysAddr, t.cfg.AddrsPerSmallPage)
	for i := range entries {
		if lo+i < len(t.small) {
			entries[i] = t.small[lo+i]
		}
	}
	return encodePage(entries, sp)
}

// MarkSmallFlushed records that small page sp was durably written at a,
// updating the tiny table.
func (t *Table) MarkSmallFlushed(sp int, a addr.PhysAddr) {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	delete(t.smallDirty, sp)
	for sp >= len(t.tiny) {
		t.tiny = append(t.tiny, 0)
	}
	t.tiny[sp] = a
}

// SmallPageAddrIf conditionally relocates small page sp (GC of a
// PageSmallMap LPAGE) in the tiny table.
func (t *Table) SmallPageAddrIf(sp int, old, new addr.PhysAddr) bool {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	if sp < 0 || sp >= len(t.tiny) || t.tiny[sp] != old {
		return false
	}
	t.tiny[sp] = new
	return true
}

// SmallPageAddr returns the flash address of small-table page sp (invalid
// if never flushed).
func (t *Table) SmallPageAddr(sp int) addr.PhysAddr {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	if sp < 0 || sp >= len(t.tiny) {
		return 0
	}
	return t.tiny[sp]
}

// SetSmallPageAddr installs a small-page address directly (recovery).
func (t *Table) SetSmallPageAddr(sp int, a addr.PhysAddr) {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	for sp >= len(t.tiny) {
		t.tiny = append(t.tiny, 0)
	}
	t.tiny[sp] = a
}

// TinyTable returns a copy of the tiny table for the checkpoint record.
func (t *Table) TinyTable() []addr.PhysAddr {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	return append([]addr.PhysAddr(nil), t.tiny...)
}

// LoadFromTiny rebuilds the small table at recovery: the tiny table comes
// from the checkpoint record; each small page is read via the loader.
// Small pages that were never flushed contribute unmapped ranges.
func (t *Table) LoadFromTiny(tiny []addr.PhysAddr) error {
	t.tablesMu.Lock()
	defer t.tablesMu.Unlock()
	if t.loader == nil {
		return errors.New("mapping: no loader installed")
	}
	t.tiny = append([]addr.PhysAddr(nil), tiny...)
	t.small = t.small[:0]
	for sp, a := range tiny {
		if !a.IsValid() {
			continue
		}
		raw, err := t.loader(a)
		if err != nil {
			return fmt.Errorf("mapping: load small page %d: %w", sp, err)
		}
		p, err := decodePage(raw, sp, t.cfg.AddrsPerSmallPage)
		if err != nil {
			return err
		}
		lo := sp * t.cfg.AddrsPerSmallPage
		for i, e := range p.entries {
			for lo+i >= len(t.small) {
				t.small = append(t.small, 0)
			}
			t.small[lo+i] = e
		}
	}
	return nil
}

// MinRecLSN returns the smallest LSN that dirtied any cached mapping page
// or small page (0 if nothing is dirty). Used for the truncation LSN
// (§VIII-B).
func (t *Table) MinRecLSN() record.LSN {
	var min record.LSN
	consider := func(l record.LSN) {
		if l != 0 && (min == 0 || l < min) {
			min = l
		}
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, p := range sh.pages {
			if p.dirty {
				consider(p.recLSN)
			}
		}
		sh.mu.Unlock()
	}
	t.tablesMu.Lock()
	for _, l := range t.smallDirty {
		consider(l)
	}
	t.tablesMu.Unlock()
	return min
}

// DropCache discards all cached pages and volatile state (crash
// simulation). The small/tiny tables are volatile too; recovery rebuilds
// them.
func (t *Table) DropCache() {
	t.lruMu.Lock()
	t.lru = nil
	t.lruMu.Unlock()
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.pages = make(map[int]*page)
		sh.mu.Unlock()
	}
	t.cached.Store(0)
	t.tablesMu.Lock()
	t.small = nil
	t.smallDirty = make(map[int]record.LSN)
	t.tiny = nil
	t.tablesMu.Unlock()
}

// --- page images -----------------------------------------------------------

const pageMagic = 0x4D415050 // "MAPP"

// encodePage lays out: magic u32 | idx u32 | count u32 | entries 8B each |
// crc u32, padded to the 64-byte LPAGE alignment.
func encodePage(entries []addr.PhysAddr, idx int) []byte {
	n := 12 + len(entries)*8 + 4
	buf := make([]byte, addr.AlignUp(n))
	binary.LittleEndian.PutUint32(buf[0:], pageMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(idx))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(entries)))
	off := 12
	for _, e := range entries {
		binary.LittleEndian.PutUint64(buf[off:], uint64(e))
		off += 8
	}
	crc := crc32.ChecksumIEEE(buf[:off])
	binary.LittleEndian.PutUint32(buf[off:], crc)
	return buf
}

// ErrBadPage reports a corrupt table page image.
var ErrBadPage = errors.New("mapping: bad table page image")

func decodePage(raw []byte, wantIdx, wantEntries int) (*page, error) {
	if len(raw) < 16 {
		return nil, fmt.Errorf("%w: short", ErrBadPage)
	}
	if binary.LittleEndian.Uint32(raw[0:]) != pageMagic {
		return nil, fmt.Errorf("%w: magic", ErrBadPage)
	}
	idx := int(binary.LittleEndian.Uint32(raw[4:]))
	count := int(binary.LittleEndian.Uint32(raw[8:]))
	if idx != wantIdx {
		return nil, fmt.Errorf("%w: index %d, want %d", ErrBadPage, idx, wantIdx)
	}
	if count != wantEntries {
		return nil, fmt.Errorf("%w: %d entries, want %d", ErrBadPage, count, wantEntries)
	}
	need := 12 + count*8 + 4
	if len(raw) < need {
		return nil, fmt.Errorf("%w: truncated", ErrBadPage)
	}
	if crc32.ChecksumIEEE(raw[:12+count*8]) != binary.LittleEndian.Uint32(raw[12+count*8:]) {
		return nil, fmt.Errorf("%w: checksum", ErrBadPage)
	}
	p := &page{entries: make([]addr.PhysAddr, count)}
	for i := 0; i < count; i++ {
		p.entries[i] = addr.PhysAddr(binary.LittleEndian.Uint64(raw[12+i*8:]))
	}
	return p, nil
}
