// Package health derives device-health telemetry from the raw
// instruments: write amplification, GC efficiency, wear distribution and
// space accounting. The paper's claim — batched variable-size pages
// reduce flash writes — is an accounting argument, and this package turns
// the per-source program counters (flash.src.*) and the controller's
// byte counters into the numbers that argument is about.
//
// Two kinds of telemetry live here:
//
//   - DeviceHealth: a point-in-time wear/space census of the EBLOCK
//     array, built by the controller under its lock and shipped inside
//     stats_full v3 as a fixed-size binary block.
//   - Report: rolling rates (WAF, throughput, GC efficiency, cache hit
//     rate, throttle rate) computed from the counter deltas between two
//     successive metrics snapshots — the same arithmetic on both ends of
//     the wire, so `eleosctl top` and server-side consumers agree.
package health

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"eleos/internal/metrics"
)

// EraseHistBuckets is the number of erase-count histogram buckets in a
// DeviceHealth: bucket 0 counts never-erased EBLOCKs, bucket i (i >= 1)
// counts erase counts in [2^(i-1), 2^i), and the last bucket absorbs the
// overflow.
const EraseHistBuckets = 16

// UtilHistBuckets is the number of valid-utilization deciles: bucket i
// counts Used EBLOCKs whose valid fraction falls in [i/10, (i+1)/10),
// with 1.0 landing in the last bucket. This is the distribution each GC
// victim-selection policy is optimizing over.
const UtilHistBuckets = 10

// DeviceHealth is a point-in-time wear and space census of the flash
// array. All fields are int64 so the wire form is a fixed-size
// little-endian block (WireBytes); the zero value is a valid "empty
// device" census.
type DeviceHealth struct {
	// EBLOCK population by summary state. Reserved covers the
	// checkpoint-area EBLOCKs outside normal allocation.
	EBlocksTotal    int64
	FreeEBlocks     int64
	OpenEBlocks     int64
	UsedEBlocks     int64
	BadEBlocks      int64
	ReservedEBlocks int64

	// Wear: per-EBLOCK erase counts from the media itself (ground truth,
	// not the recoverable summary mirror).
	EraseTotal int64
	EraseMin   int64
	EraseMax   int64
	EraseHist  [EraseHistBuckets]int64

	// Space: free bytes are erased and allocatable, valid bytes back
	// live pages, dead bytes are reclaimable garbage awaiting GC.
	FreeBytes  int64
	ValidBytes int64
	DeadBytes  int64
	UtilHist   [UtilHistBuckets]int64
}

// WireBytes is the encoded size of a DeviceHealth: every field in
// declaration order as a little-endian int64.
const WireBytes = (6 + 3 + EraseHistBuckets + 3 + UtilHistBuckets) * 8

// EraseBucket returns the EraseHist bucket index for one erase count.
func EraseBucket(count int64) int {
	if count <= 0 {
		return 0
	}
	b := 1
	for count > 1 && b < EraseHistBuckets-1 {
		count >>= 1
		b++
	}
	return b
}

// UtilBucket returns the UtilHist bucket index for a valid fraction in
// [0, 1]; out-of-range inputs clamp.
func UtilBucket(frac float64) int {
	b := int(frac * UtilHistBuckets)
	if b < 0 {
		b = 0
	}
	if b >= UtilHistBuckets {
		b = UtilHistBuckets - 1
	}
	return b
}

// fields returns pointers to every field in wire order.
func (h *DeviceHealth) fields() []*int64 {
	fs := make([]*int64, 0, WireBytes/8)
	fs = append(fs, &h.EBlocksTotal, &h.FreeEBlocks, &h.OpenEBlocks,
		&h.UsedEBlocks, &h.BadEBlocks, &h.ReservedEBlocks,
		&h.EraseTotal, &h.EraseMin, &h.EraseMax)
	for i := range h.EraseHist {
		fs = append(fs, &h.EraseHist[i])
	}
	fs = append(fs, &h.FreeBytes, &h.ValidBytes, &h.DeadBytes)
	for i := range h.UtilHist {
		fs = append(fs, &h.UtilHist[i])
	}
	return fs
}

// AppendBinary appends the fixed-size wire form to dst.
func (h *DeviceHealth) AppendBinary(dst []byte) []byte {
	for _, f := range h.fields() {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(*f))
	}
	return dst
}

// DecodeBinary decodes a DeviceHealth from exactly WireBytes bytes.
func DecodeBinary(b []byte) (DeviceHealth, error) {
	var h DeviceHealth
	if len(b) != WireBytes {
		return h, fmt.Errorf("health: want %d bytes, have %d", WireBytes, len(b))
	}
	for i, f := range h.fields() {
		*f = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return h, nil
}

// --- rolling rates ----------------------------------------------------------

// Report is the rolling-rate view between two metrics snapshots. Rates
// are per second of the sampling interval; ratios are over the
// interval's deltas. A zero denominator yields a zero ratio, never NaN.
type Report struct {
	Interval time.Duration

	// Write path.
	UserBytes  int64   // logical bytes accepted (Δcore.write.bytes_accepted)
	FlashBytes int64   // physical bytes programmed (Δflash.programmed_bytes)
	WAF        float64 // FlashBytes / UserBytes
	UserMBps   float64
	FlashMBps  float64
	BatchesPS  float64
	PagesPS    float64

	// GC.
	GCMovedBytes int64
	GCFreed      int64
	GCEfficiency float64 // valid bytes relocated per EBLOCK reclaimed

	// Read path.
	ReadsPS      float64
	CacheHitRate float64 // hits / (hits + misses) over the interval

	// QoS.
	ThrottledPS float64 // sum of qos.*.throttled deltas per second
}

// Ratio divides num by den, returning 0 for an empty denominator.
func Ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Compute derives the rolling report from two snapshots of the same
// registry taken dt apart. Counters are monotonic, so negative deltas
// (a registry swap, e.g. across crash recovery) clamp to zero.
func Compute(prev, cur metrics.Snapshot, dt time.Duration) Report {
	delta := func(name string) int64 {
		d := cur.Counter(name) - prev.Counter(name)
		if d < 0 {
			d = 0
		}
		return d
	}
	secs := dt.Seconds()
	rate := func(d int64) float64 {
		if secs <= 0 {
			return 0
		}
		return float64(d) / secs
	}
	r := Report{Interval: dt}
	r.UserBytes = delta("core.write.bytes_accepted")
	r.FlashBytes = delta("flash.programmed_bytes")
	r.WAF = Ratio(r.FlashBytes, r.UserBytes)
	r.UserMBps = rate(r.UserBytes) / (1 << 20)
	r.FlashMBps = rate(r.FlashBytes) / (1 << 20)
	r.BatchesPS = rate(delta("core.write.batches"))
	r.PagesPS = rate(delta("core.write.pages"))
	r.GCMovedBytes = delta("core.gc.bytes_moved")
	r.GCFreed = delta("core.gc.eblocks_freed")
	r.GCEfficiency = Ratio(r.GCMovedBytes, r.GCFreed)
	r.ReadsPS = rate(delta("read.reads"))
	hits := delta("read.cache_hits")
	misses := delta("read.cache_misses")
	r.CacheHitRate = Ratio(hits, hits+misses)
	var throttled int64
	for _, c := range cur.Counters {
		if t, f, ok := splitLabeled(c.Name, "qos."); ok && f == "throttled" {
			d := c.Value - prev.Counter(c.Name)
			if d > 0 {
				throttled += d
			}
			_ = t
		}
	}
	r.ThrottledPS = rate(throttled)
	return r
}

// SourceBytes extracts the per-source programmed-byte counters
// ("flash.src.<source>.bytes") from a snapshot, keyed by source name.
func SourceBytes(snap metrics.Snapshot) map[string]int64 {
	out := make(map[string]int64)
	for _, c := range snap.Counters {
		if src, field, ok := splitLabeled(c.Name, "flash.src."); ok && field == "bytes" {
			out[src] = c.Value
		}
	}
	return out
}

// TenantStats aggregates one tenant's per-tenant instruments from a
// snapshot: the QoS admission counters and the write-attribution bytes.
type TenantStats struct {
	Tenant        string
	AdmittedBytes int64
	Throttled     int64
	InflightBytes int64
	WriteBytes    int64
	WritePages    int64
}

// Tenants extracts every tenant's row from a snapshot, sorted by tenant
// name, merging the qos.<tenant>.* counters/gauges with the
// write.tenant.<tenant>.* attribution counters.
func Tenants(snap metrics.Snapshot) []TenantStats {
	rows := make(map[string]*TenantStats)
	row := func(t string) *TenantStats {
		r := rows[t]
		if r == nil {
			r = &TenantStats{Tenant: t}
			rows[t] = r
		}
		return r
	}
	for _, c := range snap.Counters {
		if t, f, ok := splitLabeled(c.Name, "qos."); ok {
			switch f {
			case "admitted_bytes":
				row(t).AdmittedBytes = c.Value
			case "throttled":
				row(t).Throttled = c.Value
			}
			continue
		}
		if t, f, ok := splitLabeled(c.Name, "write.tenant."); ok {
			switch f {
			case "bytes":
				row(t).WriteBytes = c.Value
			case "pages":
				row(t).WritePages = c.Value
			}
		}
	}
	for _, g := range snap.Gauges {
		if t, f, ok := splitLabeled(g.Name, "qos."); ok && f == "inflight_bytes" {
			row(t).InflightBytes = g.Value
		}
	}
	out := make([]TenantStats, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sortTenants(out)
	return out
}

func sortTenants(ts []TenantStats) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Tenant < ts[j-1].Tenant; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// splitLabeled splits "<prefix><label>.<field>" into (label, field),
// splitting at the LAST dot: field names (admitted_bytes, wblocks, ...)
// never contain dots, but a tenant tag may, so the label keeps any
// interior dots.
func splitLabeled(name, prefix string) (label, field string, ok bool) {
	if !strings.HasPrefix(name, prefix) {
		return "", "", false
	}
	rest := name[len(prefix):]
	i := strings.LastIndexByte(rest, '.')
	if i <= 0 || i == len(rest)-1 {
		return "", "", false
	}
	return rest[:i], rest[i+1:], true
}
