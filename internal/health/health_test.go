package health

import (
	"testing"
	"time"

	"eleos/internal/metrics"
)

// TestEraseBucket pins the power-of-two bucketing incl. the open-ended
// last bucket.
func TestEraseBucket(t *testing.T) {
	for _, tc := range []struct {
		count int64
		want  int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 13, 14}, {1 << 14, 15}, {1 << 40, 15},
	} {
		if got := EraseBucket(tc.count); got != tc.want {
			t.Errorf("EraseBucket(%d) = %d, want %d", tc.count, got, tc.want)
		}
	}
}

// TestUtilBucket pins the decile mapping with clamping at both ends.
func TestUtilBucket(t *testing.T) {
	for _, tc := range []struct {
		frac float64
		want int
	}{
		{-0.1, 0}, {0, 0}, {0.05, 0}, {0.1, 1}, {0.55, 5}, {0.999, 9}, {1, 9}, {1.5, 9},
	} {
		if got := UtilBucket(tc.frac); got != tc.want {
			t.Errorf("UtilBucket(%v) = %d, want %d", tc.frac, got, tc.want)
		}
	}
}

// TestBinaryRoundTripFull drives every field through the codec.
func TestBinaryRoundTripFull(t *testing.T) {
	var h DeviceHealth
	for i, f := range h.fields() {
		*f = int64(i*1000 + 7)
	}
	b := h.AppendBinary(nil)
	if len(b) != WireBytes {
		t.Fatalf("encoded %d bytes, want %d", len(b), WireBytes)
	}
	got, err := DecodeBinary(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip diverged:\n%+v\n%+v", got, h)
	}
	if _, err := DecodeBinary(b[:WireBytes-1]); err == nil {
		t.Fatal("short block decoded")
	}
}

// TestCompute checks the delta math: rates over the interval, counter
// resets clamped to zero, and the labeled throttle sum.
func TestCompute(t *testing.T) {
	mk := func(user, flash, reads, hits, misses, thrA, thrB int64) metrics.Snapshot {
		reg := metrics.New()
		reg.Counter("core.write.bytes_accepted").Add(user)
		reg.Counter("flash.programmed_bytes").Add(flash)
		reg.Counter("core.write.batches").Add(user / 1000)
		reg.Counter("read.reads").Add(reads)
		reg.Counter("read.cache_hits").Add(hits)
		reg.Counter("read.cache_misses").Add(misses)
		reg.Counter("core.gc.bytes_moved").Add(flash / 4)
		reg.Counter("core.gc.eblocks_freed").Add(flash / (1 << 20))
		reg.Counter("qos.a.throttled").Add(thrA)
		reg.Counter("qos.b.c.throttled").Add(thrB) // dotted tenant
		return reg.Snapshot()
	}
	prev := mk(1<<20, 2<<20, 100, 50, 50, 3, 1)
	cur := mk(3<<20, 6<<20, 300, 200, 100, 5, 4)
	r := Compute(prev, cur, 2*time.Second)

	if r.UserBytes != 2<<20 || r.FlashBytes != 4<<20 {
		t.Fatalf("deltas: user %d flash %d", r.UserBytes, r.FlashBytes)
	}
	if r.WAF != 2 {
		t.Fatalf("WAF = %v, want 2", r.WAF)
	}
	if r.UserMBps != 1 || r.FlashMBps != 2 {
		t.Fatalf("rates: %v user MB/s, %v flash MB/s", r.UserMBps, r.FlashMBps)
	}
	if r.ReadsPS != 100 {
		t.Fatalf("ReadsPS = %v", r.ReadsPS)
	}
	// Δhits 150, Δmisses 50 → 75%.
	if r.CacheHitRate != 0.75 {
		t.Fatalf("CacheHitRate = %v", r.CacheHitRate)
	}
	// Δthrottled (2 + 3) over 2s.
	if r.ThrottledPS != 2.5 {
		t.Fatalf("ThrottledPS = %v", r.ThrottledPS)
	}

	// A counter reset (cur < prev, e.g. recovery swapped registries)
	// clamps to zero instead of going negative.
	r = Compute(cur, prev, time.Second)
	if r.UserBytes != 0 || r.FlashBytes != 0 || r.WAF != 0 {
		t.Fatalf("reset not clamped: %+v", r)
	}
}

// TestSourceBytesAndTenants checks the labeled-counter views, including
// a tenant name that itself contains a dot — the reason labels split at
// the last dot.
func TestSourceBytesAndTenants(t *testing.T) {
	reg := metrics.New()
	reg.Counter("flash.src.user.bytes").Add(100)
	reg.Counter("flash.src.gc.bytes").Add(40)
	reg.Counter("flash.src.gc.wblocks").Add(2) // not a bytes field: excluded
	reg.Counter("qos.team.a.admitted_bytes").Add(7)
	reg.Counter("qos.team.a.throttled").Add(3)
	reg.Counter("write.tenant.team.a.bytes").Add(5)
	reg.Counter("write.tenant.team.a.pages").Add(2)
	reg.Counter("qos.plain.admitted_bytes").Add(9)
	reg.Gauge("qos.plain.inflight_bytes").Set(11)
	snap := reg.Snapshot()

	src := SourceBytes(snap)
	if src["user"] != 100 || src["gc"] != 40 || len(src) != 2 {
		t.Fatalf("SourceBytes = %v", src)
	}

	rows := Tenants(snap)
	if len(rows) != 2 {
		t.Fatalf("Tenants = %+v", rows)
	}
	// Sorted by name: "plain" before "team.a".
	if rows[0].Tenant != "plain" || rows[0].AdmittedBytes != 9 || rows[0].InflightBytes != 11 {
		t.Fatalf("plain row = %+v", rows[0])
	}
	ta := rows[1]
	if ta.Tenant != "team.a" || ta.AdmittedBytes != 7 || ta.Throttled != 3 ||
		ta.WriteBytes != 5 || ta.WritePages != 2 {
		t.Fatalf("team.a row = %+v", ta)
	}
}
