package bwtree

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"eleos/internal/blockftl"
	"eleos/internal/core"
	"eleos/internal/flash"
	"eleos/internal/lsstore"
	"eleos/internal/nvme"
)

func value(key uint64, version int) []byte {
	b := make([]byte, 100)
	rng := rand.New(rand.NewSource(int64(key)*17 + int64(version)))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

func smallConfig() Config {
	return Config{MaxPageBytes: 1024, WriteBufferBytes: 8 << 10, CacheBytes: 16 << 10}
}

func TestSetGetMem(t *testing.T) {
	tr, err := New(NewMemStore(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		if err := tr.Set(k, value(k, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 100; k++ {
		got, err := tr.Get(k)
		if err != nil || !bytes.Equal(got, value(k, 1)) {
			t.Fatalf("key %d: %v", k, err)
		}
	}
	if _, err := tr.Get(999); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing key found")
	}
}

func TestUpdatesInPlace(t *testing.T) {
	tr, _ := New(NewMemStore(), smallConfig())
	for v := 1; v <= 20; v++ {
		if err := tr.Set(42, value(42, v)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.Get(42)
	if err != nil || !bytes.Equal(got, value(42, 20)) {
		t.Fatal("latest update lost")
	}
	if tr.Stats().Updates != 19 || tr.Stats().Inserts != 1 {
		t.Fatalf("stats: %+v", tr.Stats())
	}
}

func TestSplitsKeepOrder(t *testing.T) {
	tr, _ := New(NewMemStore(), smallConfig())
	rng := rand.New(rand.NewSource(8))
	keys := rng.Perm(2000)
	for _, k := range keys {
		if err := tr.Set(uint64(k), value(uint64(k), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().Splits == 0 || tr.Len() < 2 {
		t.Fatal("expected splits")
	}
	for _, k := range keys {
		got, err := tr.Get(uint64(k))
		if err != nil || !bytes.Equal(got, value(uint64(k), 1)) {
			t.Fatalf("key %d lost after splits: %v", k, err)
		}
	}
}

func TestEvictionAndReload(t *testing.T) {
	store := NewMemStore()
	tr, _ := New(store, smallConfig())
	for k := uint64(1); k <= 1000; k++ {
		if err := tr.Set(k, value(k, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Evictions == 0 {
		t.Fatal("tiny cache must evict")
	}
	// All keys remain reachable (reloaded from the store on miss).
	for k := uint64(1); k <= 1000; k += 13 {
		got, err := tr.Get(k)
		if err != nil || !bytes.Equal(got, value(k, 1)) {
			t.Fatalf("key %d unreachable after eviction: %v", k, err)
		}
	}
	if tr.Stats().CacheMisses == 0 {
		t.Fatal("expected cache misses")
	}
}

func TestLeafRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := &leaf{}
		n := rng.Intn(50)
		key := uint64(0)
		for i := 0; i < n; i++ {
			key += uint64(rng.Intn(100) + 1)
			v := make([]byte, rng.Intn(200))
			rng.Read(v)
			l.keys = append(l.keys, key)
			l.vals = append(l.vals, v)
			l.bytes += recOverhead + len(v)
		}
		got, err := decodeLeaf(encodeLeaf(l))
		if err != nil || len(got.keys) != n || got.bytes != l.bytes {
			return false
		}
		for i := range got.keys {
			if got.keys[i] != l.keys[i] || !bytes.Equal(got.vals[i], l.vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeLeafRejectsGarbage(t *testing.T) {
	if _, err := decodeLeaf(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := decodeLeaf(make([]byte, 100)); err == nil {
		t.Fatal("zeros accepted")
	}
	l := &leaf{keys: []uint64{1}, vals: [][]byte{{1, 2, 3}}, bytes: recOverhead + 3}
	img := encodeLeaf(l)
	if _, err := decodeLeaf(img[:len(img)-1]); err == nil {
		t.Fatal("truncated accepted")
	}
	// Zero padding after the records is fine (FP mode).
	padded := append(img, make([]byte, 64)...)
	if _, err := decodeLeaf(padded); err != nil {
		t.Fatalf("padding rejected: %v", err)
	}
}

func TestOverEleosVPStore(t *testing.T) {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	ctl, err := core.Format(dev, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	meter := nvme.NewMeter(nvme.HighEnd())
	store := &EleosStore{C: ctl, Meter: meter}
	tr, err := New(store, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	version := map[uint64]int{}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(300) + 1)
		version[k]++
		if err := tr.Set(k, value(k, version[k])); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if err := tr.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for k, v := range version {
		got, err := tr.Get(k)
		if err != nil || !bytes.Equal(got, value(k, v)) {
			t.Fatalf("key %d wrong: %v", k, err)
		}
	}
	if store.BytesWritten() == 0 || meter.Contexts == 0 {
		t.Fatal("store accounting missing")
	}
	// Batch interface: far fewer contexts than pages.
	if meter.Contexts >= tr.Stats().PagesOut {
		t.Fatalf("contexts %d should be << pages %d", meter.Contexts, tr.Stats().PagesOut)
	}
}

func TestOverEleosFPStorePadsPages(t *testing.T) {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	ctl, err := core.Format(dev, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	store := &EleosStore{C: ctl, FixedPageBytes: 1024}
	tr, err := New(store, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		if err := tr.Set(k, value(k, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pagesOut := tr.Stats().PagesOut
	if pagesOut == 0 {
		t.Fatal("nothing flushed")
	}
	if store.BytesWritten() != pagesOut*1024 {
		t.Fatalf("FP store should write fixed pages: %d != %d*1024", store.BytesWritten(), pagesOut)
	}
	for k := uint64(1); k <= 200; k++ {
		got, err := tr.Get(k)
		if err != nil || !bytes.Equal(got, value(k, 1)) {
			t.Fatalf("key %d wrong in FP mode: %v", k, err)
		}
	}
}

func TestOverBlockStore(t *testing.T) {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	lbas := int(dev.Geometry().CapacityBytes() / 4096 / 2)
	ftl, err := blockftl.New(dev, 4096, lbas, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	meter := nvme.NewMeter(nvme.HighEnd())
	cfg := lsstore.DefaultConfig()
	cfg.SegmentBytes = 64 << 10
	ls, err := lsstore.New(ftl, meter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(&BlockStore{LS: ls}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	version := map[uint64]int{}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(300) + 1)
		version[k]++
		if err := tr.Set(k, value(k, version[k])); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if err := tr.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for k, v := range version {
		got, err := tr.Get(k)
		if err != nil || !bytes.Equal(got, value(k, v)) {
			t.Fatalf("key %d wrong: %v", k, err)
		}
	}
	// Block interface: one context per 4 KB block — at least as many
	// contexts as 4 KB units flushed.
	if meter.Contexts < tr.Stats().PagesOut/40 {
		t.Fatalf("suspiciously few block contexts: %d", meter.Contexts)
	}
}

func TestAvgLeafFillAround70Pct(t *testing.T) {
	// Random inserts should land leaf utilization near the classic ~70%
	// the paper cites (§I-B). Allow a generous band.
	tr, _ := New(NewMemStore(), Config{MaxPageBytes: 4096, WriteBufferBytes: 1 << 20, CacheBytes: 256 << 20})
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30000; i++ {
		if err := tr.Set(rng.Uint64()%1_000_000, value(uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	fill := tr.AvgLeafFill()
	if fill < 0.5 || fill > 0.95 {
		t.Fatalf("avg leaf fill %.2f outside plausible band", fill)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(NewMemStore(), Config{MaxPageBytes: 10, WriteBufferBytes: 100, CacheBytes: 100}); err == nil {
		t.Fatal("tiny page accepted")
	}
	if _, err := New(NewMemStore(), Config{MaxPageBytes: 1024, WriteBufferBytes: 512, CacheBytes: 4096}); err == nil {
		t.Fatal("buffer smaller than page accepted")
	}
	if _, err := New(NewMemStore(), Config{MaxPageBytes: 1024, WriteBufferBytes: 4096, CacheBytes: 10}); err == nil {
		t.Fatal("cache smaller than page accepted")
	}
}
