package bwtree

import (
	"sync/atomic"

	"eleos/internal/addr"
	"eleos/internal/core"
	"eleos/internal/lsstore"
	"eleos/internal/nvme"
)

// EleosStore adapts the ELEOS controller as a PageStore using the batched
// variable-size-page interface (the paper's "Batch (VP)").
type EleosStore struct {
	C     *core.Controller
	Meter *nvme.Meter
	// FixedPageBytes, when non-zero, pads every page to this size before
	// writing — the paper's prior fixed-page design, "Batch (FP)".
	FixedPageBytes int

	bytes atomic.Int64
}

// FlushBatch writes the whole buffer with a single batched write command.
func (s *EleosStore) FlushBatch(pages []Page) error {
	lp := make([]core.LPage, len(pages))
	total := 0
	for i, p := range pages {
		data := p.Data
		if s.FixedPageBytes > 0 {
			padded := make([]byte, s.FixedPageBytes)
			copy(padded, data)
			data = padded
		}
		lp[i] = core.LPage{LPID: addr.LPID(p.PID), Data: data}
		total += addr.AlignUp(len(data))
	}
	if err := s.C.WriteBatch(0, 0, lp); err != nil {
		return err
	}
	// One command, one write context for the entire buffer (§IX-C1).
	if s.Meter != nil {
		s.Meter.WriteCommand(total, len(pages), 1)
	}
	s.bytes.Add(int64(total))
	return nil
}

// ReadPage reads one page through the read-by-LPID interface (§V).
func (s *EleosStore) ReadPage(pid uint64) ([]byte, error) {
	data, err := s.C.Read(addr.LPID(pid))
	if err != nil {
		return nil, err
	}
	if s.Meter != nil {
		s.Meter.ReadCommand(len(data))
	}
	return data, nil
}

// BytesWritten reports bytes shipped to the SSD.
func (s *EleosStore) BytesWritten() int64 { return s.bytes.Load() }

// BlockStore adapts the host log-structured store over a conventional
// block SSD (the paper's "Block"). Transport costs are charged inside
// lsstore, one command per block.
type BlockStore struct {
	LS *lsstore.Store
}

// FlushBatch appends each page to the host log; lsstore flushes full
// segments block-at-a-time.
func (s *BlockStore) FlushBatch(pages []Page) error {
	for _, p := range pages {
		if err := s.LS.Write(p.PID, p.Data); err != nil {
			return err
		}
	}
	// The write buffer semantics of the paper's Block configuration: the
	// Bw-tree flush corresponds to forcing the segment out.
	return s.LS.Flush()
}

// ReadPage reads one page from the host log.
func (s *BlockStore) ReadPage(pid uint64) ([]byte, error) {
	return s.LS.Read(pid)
}

// BytesWritten reports segment bytes shipped to the SSD.
func (s *BlockStore) BytesWritten() int64 { return s.LS.Stats().BytesWritten }

// MemStore is an in-memory PageStore for tests.
type MemStore struct {
	pages map[uint64][]byte
	bytes int64
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{pages: make(map[uint64][]byte)} }

// FlushBatch stores the pages in memory.
func (s *MemStore) FlushBatch(pages []Page) error {
	for _, p := range pages {
		s.pages[p.PID] = append([]byte(nil), p.Data...)
		s.bytes += int64(len(p.Data))
	}
	return nil
}

// ReadPage returns a stored page.
func (s *MemStore) ReadPage(pid uint64) ([]byte, error) {
	p, ok := s.pages[pid]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), p...), nil
}

// BytesWritten reports bytes stored.
func (s *MemStore) BytesWritten() int64 { return s.bytes }
