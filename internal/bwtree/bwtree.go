// Package bwtree implements the key-value store used in the paper's
// evaluation (§IX-A3): a Bw-tree modified exactly as the authors describe —
// updates are applied in place on pages (no delta chains), the tree no
// longer tracks SSD locations of its pages (the batch interface's LPIDs
// replace that), and host garbage collection is delegated to the page
// store.
//
// Pages are variable size up to a maximum (4 KB in the paper); a buffer
// cache sized as a fraction of the dataset holds decoded leaves, and dirty
// leaves evicted from the cache accumulate in a write buffer (1 MB in the
// paper) that is flushed to the PageStore as one batch. The interior
// search layer is held in memory, as interior nodes are a fraction of a
// percent of the data and always cache-resident in the paper's runs.
package bwtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Page is one serialized tree page handed to the page store.
type Page struct {
	PID  uint64
	Data []byte
}

// PageStore abstracts the storage backend: ELEOS batch (variable or fixed
// pages) or a host log-structured store over a block SSD.
type PageStore interface {
	// FlushBatch durably writes a buffer of pages as one batch.
	FlushBatch(pages []Page) error
	// ReadPage returns the latest version of a page.
	ReadPage(pid uint64) ([]byte, error)
	// BytesWritten reports total bytes sent to the SSD (Fig. 10(b)).
	BytesWritten() int64
}

// Config tunes the tree.
type Config struct {
	MaxPageBytes     int   // split threshold (paper: 4 KB)
	WriteBufferBytes int   // flush threshold (paper: 1 MB)
	CacheBytes       int64 // buffer cache capacity
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{MaxPageBytes: 4096, WriteBufferBytes: 1 << 20, CacheBytes: 64 << 20}
}

// Errors.
var (
	ErrNotFound = errors.New("bwtree: key not found")
	ErrBadPage  = errors.New("bwtree: bad page image")
)

// Stats counts tree activity.
type Stats struct {
	Lookups     int64
	Updates     int64
	Inserts     int64
	CacheHits   int64
	CacheMisses int64
	Evictions   int64
	Splits      int64
	Flushes     int64
	PagesOut    int64
}

type leaf struct {
	keys  []uint64
	vals  [][]byte
	bytes int // serialized size
	dirty bool
}

const (
	pageHeader  = 8 // magic u32 + count u32
	recOverhead = 12
)

func (l *leaf) size() int { return pageHeader + l.bytes }

// Tree is the Bw-tree store. Safe for concurrent use.
type Tree struct {
	mu    sync.Mutex
	store PageStore
	cfg   Config

	bounds  []bound // sorted by min key; leaf i covers [min_i, min_{i+1})
	cache   map[uint64]*leaf
	lru     []uint64
	used    int64
	nextPID uint64

	writeBuf      []Page
	writeBufBytes int
	buffered      map[uint64][]byte // pages in writeBuf, readable until flushed

	stats Stats
}

type bound struct {
	min uint64
	pid uint64
}

// New creates an empty tree over the store.
func New(store PageStore, cfg Config) (*Tree, error) {
	if cfg.MaxPageBytes < 64 || cfg.WriteBufferBytes < cfg.MaxPageBytes {
		return nil, errors.New("bwtree: bad page/buffer sizes")
	}
	if cfg.CacheBytes < int64(cfg.MaxPageBytes) {
		return nil, errors.New("bwtree: cache smaller than one page")
	}
	t := &Tree{
		store:    store,
		cfg:      cfg,
		cache:    make(map[uint64]*leaf),
		buffered: make(map[uint64][]byte),
		nextPID:  1,
	}
	// One empty root leaf covering the whole key space.
	t.bounds = []bound{{min: 0, pid: t.allocPID()}}
	t.cache[t.bounds[0].pid] = &leaf{dirty: true}
	return t, nil
}

func (t *Tree) allocPID() uint64 {
	pid := t.nextPID
	t.nextPID++
	return pid
}

// Stats returns a snapshot of the counters.
func (t *Tree) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// leafFor returns the index in bounds covering key.
func (t *Tree) leafFor(key uint64) int {
	i := sort.Search(len(t.bounds), func(i int) bool { return t.bounds[i].min > key })
	return i - 1
}

func (t *Tree) touch(pid uint64) {
	for i, v := range t.lru {
		if v == pid {
			t.lru = append(append(t.lru[:i], t.lru[i+1:]...), pid)
			return
		}
	}
	t.lru = append(t.lru, pid)
}

// loadLocked returns the decoded leaf, reading it from the store on a miss.
func (t *Tree) loadLocked(pid uint64) (*leaf, error) {
	if l, ok := t.cache[pid]; ok {
		t.stats.CacheHits++
		t.touch(pid)
		return l, nil
	}
	t.stats.CacheMisses++
	raw, ok := t.buffered[pid]
	if !ok {
		var err error
		raw, err = t.store.ReadPage(pid)
		if err != nil {
			return nil, err
		}
	}
	l, err := decodeLeaf(raw)
	if err != nil {
		return nil, err
	}
	t.cache[pid] = l
	t.used += int64(l.size())
	t.touch(pid)
	return l, t.evictLocked(pid)
}

// evictLocked evicts LRU leaves while the cache is over budget; dirty
// victims enter the write buffer (§IX-A3's write path).
func (t *Tree) evictLocked(keep uint64) error {
	for t.used > t.cfg.CacheBytes && len(t.lru) > 1 {
		victim := uint64(0)
		for _, pid := range t.lru {
			if pid != keep {
				victim = pid
				break
			}
		}
		if victim == 0 {
			return nil
		}
		l := t.cache[victim]
		if l.dirty {
			if err := t.bufferPageLocked(victim, l); err != nil {
				return err
			}
		}
		delete(t.cache, victim)
		for i, v := range t.lru {
			if v == victim {
				t.lru = append(t.lru[:i], t.lru[i+1:]...)
				break
			}
		}
		t.used -= int64(l.size())
		t.stats.Evictions++
	}
	return nil
}

// bufferPageLocked serializes a dirty leaf into the write buffer, flushing
// the buffer when it reaches the configured size.
func (t *Tree) bufferPageLocked(pid uint64, l *leaf) error {
	img := encodeLeaf(l)
	t.writeBuf = append(t.writeBuf, Page{PID: pid, Data: img})
	t.buffered[pid] = img
	t.writeBufBytes += l.size()
	l.dirty = false
	if t.writeBufBytes >= t.cfg.WriteBufferBytes {
		return t.flushBufLocked()
	}
	return nil
}

func (t *Tree) flushBufLocked() error {
	if len(t.writeBuf) == 0 {
		return nil
	}
	if err := t.store.FlushBatch(t.writeBuf); err != nil {
		return err
	}
	t.stats.Flushes++
	t.stats.PagesOut += int64(len(t.writeBuf))
	t.writeBuf = nil
	t.writeBufBytes = 0
	t.buffered = make(map[uint64][]byte)
	return nil
}

// FlushAll writes out every dirty page and drains the write buffer.
func (t *Tree) FlushAll() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for pid, l := range t.cache {
		if l.dirty {
			if err := t.bufferPageLocked(pid, l); err != nil {
				return err
			}
		}
	}
	return t.flushBufLocked()
}

// Set inserts or updates a record (in place — the paper's modified
// Bw-tree).
func (t *Tree) Set(key uint64, val []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	bi := t.leafFor(key)
	l, err := t.loadLocked(t.bounds[bi].pid)
	if err != nil {
		return err
	}
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	if i < len(l.keys) && l.keys[i] == key {
		t.used += int64(len(val) - len(l.vals[i]))
		l.bytes += len(val) - len(l.vals[i])
		l.vals[i] = append([]byte(nil), val...)
		t.stats.Updates++
	} else {
		l.keys = append(l.keys, 0)
		copy(l.keys[i+1:], l.keys[i:])
		l.keys[i] = key
		l.vals = append(l.vals, nil)
		copy(l.vals[i+1:], l.vals[i:])
		l.vals[i] = append([]byte(nil), val...)
		l.bytes += recOverhead + len(val)
		t.used += int64(recOverhead + len(val))
		t.stats.Inserts++
	}
	l.dirty = true
	if l.size() > t.cfg.MaxPageBytes {
		t.splitLocked(bi, l)
	}
	return t.evictLocked(t.bounds[t.leafFor(key)].pid)
}

// splitLocked splits an oversized leaf at its byte midpoint.
func (t *Tree) splitLocked(bi int, l *leaf) {
	half := l.bytes / 2
	acc := 0
	cut := 0
	for i := range l.keys {
		acc += recOverhead + len(l.vals[i])
		if acc >= half {
			cut = i + 1
			break
		}
	}
	if cut == 0 || cut >= len(l.keys) {
		return // single giant record: cannot split further
	}
	right := &leaf{
		keys:  append([]uint64(nil), l.keys[cut:]...),
		vals:  append([][]byte(nil), l.vals[cut:]...),
		dirty: true,
	}
	for i := range right.vals {
		right.bytes += recOverhead + len(right.vals[i])
	}
	l.keys = l.keys[:cut]
	l.vals = l.vals[:cut]
	l.bytes -= right.bytes
	l.dirty = true
	t.used -= int64(right.bytes) // the left leaf shrank by the moved records

	pid := t.allocPID()
	t.cache[pid] = right
	t.used += int64(right.size())
	t.touch(pid)
	nb := bound{min: right.keys[0], pid: pid}
	t.bounds = append(t.bounds, bound{})
	copy(t.bounds[bi+2:], t.bounds[bi+1:])
	t.bounds[bi+1] = nb
	t.stats.Splits++
}

// Get returns the value for key.
func (t *Tree) Get(key uint64) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Lookups++
	bi := t.leafFor(key)
	l, err := t.loadLocked(t.bounds[bi].pid)
	if err != nil {
		return nil, err
	}
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	if i >= len(l.keys) || l.keys[i] != key {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	out := append([]byte(nil), l.vals[i]...)
	return out, t.evictLocked(t.bounds[bi].pid)
}

// Len returns the number of leaves.
func (t *Tree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.bounds)
}

// AvgLeafFill returns the mean serialized leaf size divided by the max
// page size — the B-tree storage utilization the paper puts at ~70%
// (§I-B). Only cached leaves are sampled.
func (t *Tree) AvgLeafFill() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.cache) == 0 {
		return 0
	}
	total := 0
	for _, l := range t.cache {
		total += l.size()
	}
	return float64(total) / float64(len(t.cache)) / float64(t.cfg.MaxPageBytes)
}

// --- page images -------------------------------------------------------------

const leafMagic = 0x42574C46 // "BWLF"

func encodeLeaf(l *leaf) []byte {
	buf := make([]byte, pageHeader, l.size())
	binary.LittleEndian.PutUint32(buf[0:], leafMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(l.keys)))
	for i, k := range l.keys {
		buf = binary.LittleEndian.AppendUint64(buf, k)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.vals[i])))
		buf = append(buf, l.vals[i]...)
	}
	return buf
}

func decodeLeaf(raw []byte) (*leaf, error) {
	if len(raw) < pageHeader || binary.LittleEndian.Uint32(raw[0:]) != leafMagic {
		return nil, ErrBadPage
	}
	n := int(binary.LittleEndian.Uint32(raw[4:]))
	l := &leaf{keys: make([]uint64, 0, n), vals: make([][]byte, 0, n)}
	off := pageHeader
	for i := 0; i < n; i++ {
		if off+recOverhead > len(raw) {
			return nil, ErrBadPage
		}
		k := binary.LittleEndian.Uint64(raw[off:])
		vl := int(binary.LittleEndian.Uint32(raw[off+8:]))
		off += recOverhead
		if vl < 0 || off+vl > len(raw) {
			return nil, ErrBadPage
		}
		l.keys = append(l.keys, k)
		l.vals = append(l.vals, append([]byte(nil), raw[off:off+vl]...))
		l.bytes += recOverhead + vl
		off += vl
	}
	return l, nil
}
