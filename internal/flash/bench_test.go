package flash

import "testing"

func BenchmarkProgram(b *testing.B) {
	g := Geometry{Channels: 8, EBlocksPerChannel: 1024, EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10}
	d := MustNewDevice(g, Latency{})
	data := make([]byte, g.WBlockBytes)
	per := g.WBlocksPerEBlock()
	b.SetBytes(int64(g.WBlockBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := i % g.Channels
		pos := i / g.Channels
		eb := (pos / per) % g.EBlocksPerChannel
		wb := pos % per
		if wb == 0 && pos >= per*g.EBlocksPerChannel {
			b.StopTimer()
			_ = d.Erase(ch, eb)
			b.StartTimer()
		}
		if err := d.Program(ch, eb, wb, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadExtent(b *testing.B) {
	d := MustNewDevice(SmallGeometry(), Latency{})
	data := make([]byte, d.Geometry().WBlockBytes)
	_ = d.Program(0, 0, 0, data)
	b.SetBytes(1920)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.ReadExtent(0, 0, 64, 1920); err != nil {
			b.Fatal(err)
		}
	}
}
