package flash

import (
	"errors"
	"sync"
	"testing"

	"eleos/internal/metrics"
)

func TestFailNthProgram(t *testing.T) {
	d := MustNewDevice(SmallGeometry(), Latency{})
	reg := metrics.New()
	d.SetMetrics(reg)

	// Arm the 2nd and 4th program attempts from now.
	d.FailNthProgram(2)
	d.FailNthProgram(4)

	data := make([]byte, d.Geometry().WBlockBytes)
	var failures int
	// Program across distinct EBLOCKs so a failure never disables a later
	// target.
	for eb := 0; eb < 6; eb++ {
		if err := d.Program(0, eb, 0, data); err != nil {
			if !errors.Is(err, ErrWriteFailed) {
				t.Fatalf("eb %d: %v", eb, err)
			}
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("failures = %d, want 2", failures)
	}
	if got := d.Stats().WriteFailures; got != 2 {
		t.Fatalf("WriteFailures = %d, want 2", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("flash.program_failures"); got != 2 {
		t.Fatalf("flash.program_failures = %d, want 2", got)
	}
	if got := snap.Counter("flash.programs"); got != 6 {
		t.Fatalf("flash.programs = %d, want 6", got)
	}
	// A failed EBLOCK is disabled until erased, as with address injection.
	if err := d.Program(0, 1, 1, data); !errors.Is(err, ErrEBlockDisabled) {
		t.Fatalf("program into failed eblock: %v, want ErrEBlockDisabled", err)
	}
}

func TestFailNthProgramConcurrentExactCount(t *testing.T) {
	d := MustNewDevice(SmallGeometry(), Latency{})
	reg := metrics.New()
	d.SetMetrics(reg)
	const injected = 3
	for i := 0; i < injected; i++ {
		d.FailNthProgram(i*2 + 1)
	}
	// Fire plenty of programs from concurrent goroutines; whichever ones
	// land on the armed sequence numbers fail — exactly `injected` in
	// total, no matter the interleaving.
	geo := d.Geometry()
	data := make([]byte, geo.WBlockBytes)
	var wg sync.WaitGroup
	for ch := 0; ch < geo.Channels; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			for eb := 0; eb < geo.EBlocksPerChannel; eb++ {
				// Errors expected on armed attempts; the EBLOCK is then
				// skipped (next iteration uses a fresh one).
				_ = d.Program(ch, eb, 0, data)
			}
		}(ch)
	}
	wg.Wait()
	if got := d.Stats().WriteFailures; got != injected {
		t.Fatalf("WriteFailures = %d, want %d", got, injected)
	}
	if got := reg.Snapshot().Counter("flash.program_failures"); got != injected {
		t.Fatalf("flash.program_failures = %d, want %d", got, injected)
	}
}

func TestSetMetricsLatencyAndQueueDepth(t *testing.T) {
	d := MustNewDevice(SmallGeometry(), Latency{})
	reg := metrics.New()
	d.SetMetrics(reg)
	defer d.Close()

	geo := d.Geometry()
	data := make([]byte, geo.WBlockBytes)
	cmds := []BatchCmd{
		{Channel: 0, EBlock: 0, WBlock: 0, Data: data},
		{Channel: 0, EBlock: 0, WBlock: 1, Data: data},
		{Channel: 1, EBlock: 0, WBlock: 0, Data: data},
	}
	res := d.SubmitBatch(cmds).Wait()
	if res.Attempted != 3 || len(res.FailedEBlocks) != 0 {
		t.Fatalf("batch result: %+v", res)
	}
	if err := d.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("flash.programs"); got != 3 {
		t.Fatalf("flash.programs = %d, want 3", got)
	}
	if got := snap.Counter("flash.erases"); got != 1 {
		t.Fatalf("flash.erases = %d, want 1", got)
	}
	if hv := snap.Histogram("flash.program_ns"); hv == nil || hv.Count != 3 {
		t.Fatalf("flash.program_ns = %+v, want 3 observations", hv)
	}
	if hv := snap.Histogram("flash.erase_ns"); hv == nil || hv.Count != 1 {
		t.Fatalf("flash.erase_ns = %+v, want 1 observation", hv)
	}
	// Queues drained: every channel's depth gauge is back to zero.
	for _, g := range snap.Gauges {
		if g.Value != 0 {
			t.Fatalf("gauge %s = %d after drain, want 0", g.Name, g.Value)
		}
	}

	// A disabled registry uninstalls instrumentation without breaking I/O.
	d.SetMetrics(metrics.NewDisabled())
	if err := d.Program(2, 0, 0, data); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter("flash.programs"); got != 3 {
		t.Fatalf("uninstalled metrics still counting: %d", got)
	}
}
