package flash

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	d := MustNewDevice(SmallGeometry(), Latency{})
	// Program a few wblocks, erase one eblock, fail another.
	if err := d.Program(0, 0, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(1, 2, 0, bytes.Repeat([]byte{7}, d.Geometry().WBlockBytes)); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(1, 2, 1, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := d.Erase(2, 3); err != nil {
		t.Fatal(err)
	}
	d.FailNextProgram(3, 1, 0)
	_ = d.Program(3, 1, 0, []byte{1}) // leaves eblock disabled

	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDevice(bytes.NewReader(buf.Bytes()), Latency{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Geometry() != d.Geometry() {
		t.Fatal("geometry mismatch")
	}
	got, err := d2.ReadRBlocks(0, 0, 0, 1)
	if err != nil || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatal("data lost in image")
	}
	got, _ = d2.ReadRBlocks(1, 2, 0, 1)
	if got[0] != 7 {
		t.Fatal("full wblock lost")
	}
	np, _ := d2.NextProgramPosition(1, 2)
	if np != 2 {
		t.Fatalf("program position lost: %d", np)
	}
	ec, _ := d2.EraseCount(2, 3)
	if ec != 1 {
		t.Fatal("erase count lost")
	}
	// Disabled eblock stays disabled.
	if err := d2.Program(3, 1, 1, []byte{1}); !errors.Is(err, ErrEBlockDisabled) {
		t.Fatalf("failed state lost: %v", err)
	}
}

func TestImageFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dev.img")
	d := MustNewDevice(SmallGeometry(), Latency{})
	if err := d.Program(0, 5, 0, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadFile(path, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.ReadRBlocks(0, 5, 0, 1)
	if err != nil || got[0] != 42 {
		t.Fatal("file image roundtrip lost data")
	}
}

func TestImageRejectsCorruption(t *testing.T) {
	d := MustNewDevice(SmallGeometry(), Latency{})
	_ = d.Program(0, 0, 0, []byte{1, 2, 3})
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	// Corrupt the programmed data of eblock (0,0): header is 64 bytes,
	// its per-eblock metadata 24, the written bitmap 8, the length 8 —
	// data starts at offset 104.
	img[104] ^= 0xFF
	if _, err := ReadDevice(bytes.NewReader(img), Latency{}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("corruption not detected: %v", err)
	}
	img[104] ^= 0xFF // restore
	// Truncated.
	if _, err := ReadDevice(bytes.NewReader(img[:20]), Latency{}); !errors.Is(err, ErrBadImage) {
		t.Fatal("truncation not detected")
	}
	// Bad magic.
	img[0] ^= 0xFF
	if _, err := ReadDevice(bytes.NewReader(img), Latency{}); !errors.Is(err, ErrBadImage) {
		t.Fatal("bad magic not detected")
	}
}
