package flash

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(SmallGeometry(), Latency{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeometryValidate(t *testing.T) {
	good := []Geometry{DefaultGeometry(), SmallGeometry()}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("%+v should validate: %v", g, err)
		}
	}
	bad := []Geometry{
		{},
		{Channels: 1},
		{Channels: 1, EBlocksPerChannel: 1, RBlockBytes: 100, WBlockBytes: 400, EBlockBytes: 800},
		{Channels: 1, EBlocksPerChannel: 1, RBlockBytes: 4096, WBlockBytes: 4000, EBlockBytes: 8000},
		{Channels: 1, EBlocksPerChannel: 1, RBlockBytes: 4096, WBlockBytes: 8192, EBlockBytes: 10000},
		{Channels: 1, EBlocksPerChannel: 1, RBlockBytes: 4096, WBlockBytes: 8192, EBlockBytes: 16384, EraseLimit: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geometry %d validated", i)
		}
	}
}

func TestGeometryDerived(t *testing.T) {
	g := SmallGeometry()
	if g.WBlocksPerEBlock() != 16 {
		t.Fatalf("WBlocksPerEBlock = %d", g.WBlocksPerEBlock())
	}
	if g.RBlocksPerWBlock() != 4 {
		t.Fatalf("RBlocksPerWBlock = %d", g.RBlocksPerWBlock())
	}
	if g.RBlocksPerEBlock() != 64 {
		t.Fatalf("RBlocksPerEBlock = %d", g.RBlocksPerEBlock())
	}
	want := int64(4) * 16 * (256 << 10)
	if g.CapacityBytes() != want {
		t.Fatalf("CapacityBytes = %d, want %d", g.CapacityBytes(), want)
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	d := testDevice(t)
	data := bytes.Repeat([]byte{0xAB}, d.Geometry().WBlockBytes)
	if err := d.Program(1, 2, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadRBlocks(1, 2, 0, d.Geometry().RBlocksPerWBlock())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data differs from programmed data")
	}
}

func TestProgramShortDataZeroPadded(t *testing.T) {
	d := testDevice(t)
	if err := d.Program(0, 1, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadRBlocks(0, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 0 {
		t.Fatalf("unexpected prefix %v", got[:4])
	}
	for _, b := range got[3:] {
		if b != 0 {
			t.Fatal("padding not zero")
		}
	}
}

func TestEraseBeforeWriteEnforced(t *testing.T) {
	d := testDevice(t)
	if err := d.Program(0, 0, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	err := d.Program(0, 0, 0, []byte{2})
	if !errors.Is(err, ErrWriteTwice) {
		t.Fatalf("expected ErrWriteTwice, got %v", err)
	}
	if err := d.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(0, 0, 0, []byte{2}); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

func TestSequentialProgramOrder(t *testing.T) {
	d := testDevice(t)
	err := d.Program(0, 0, 1, []byte{1})
	if !errors.Is(err, ErrWriteOrder) {
		t.Fatalf("expected ErrWriteOrder, got %v", err)
	}
	for wb := 0; wb < 3; wb++ {
		if err := d.Program(0, 0, wb, []byte{byte(wb)}); err != nil {
			t.Fatal(err)
		}
	}
	np, _ := d.NextProgramPosition(0, 0)
	if np != 3 {
		t.Fatalf("NextProgramPosition = %d", np)
	}
}

func TestReadSpansWBlocks(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	a := bytes.Repeat([]byte{0x11}, g.WBlockBytes)
	b := bytes.Repeat([]byte{0x22}, g.WBlockBytes)
	if err := d.Program(2, 3, 0, a); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(2, 3, 1, b); err != nil {
		t.Fatal(err)
	}
	// Read the last RBLOCK of wblock 0 and the first of wblock 1.
	start := g.RBlocksPerWBlock() - 1
	got, err := d.ReadRBlocks(2, 3, start, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x11 || got[g.RBlockBytes] != 0x22 {
		t.Fatal("cross-wblock read wrong")
	}
}

func TestReadExtent(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	data := make([]byte, g.WBlockBytes)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := d.Program(0, 5, 0, data); err != nil {
		t.Fatal(err)
	}
	// An extent crossing an RBLOCK boundary.
	off, length := g.RBlockBytes-100, 300
	got, nR, err := d.ReadExtent(0, 5, off, length)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[off:off+length]) {
		t.Fatal("extent content wrong")
	}
	if nR != 2 {
		t.Fatalf("expected 2 rblocks transferred, got %d", nR)
	}
	if _, _, err := d.ReadExtent(0, 5, g.EBlockBytes-10, 20); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestExplicitWriteFailureDisablesEBlock(t *testing.T) {
	d := testDevice(t)
	d.FailNextProgram(1, 1, 1)
	if err := d.Program(1, 1, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	err := d.Program(1, 1, 1, []byte{2})
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("expected ErrWriteFailed, got %v", err)
	}
	// Subsequent WBLOCKs of the same EBLOCK cannot be written (§VII).
	err = d.Program(1, 1, 2, []byte{3})
	if !errors.Is(err, ErrEBlockDisabled) {
		t.Fatalf("expected ErrEBlockDisabled, got %v", err)
	}
	// Prior data remains readable.
	got, err := d.ReadRBlocks(1, 1, 0, 1)
	if err != nil || got[0] != 1 {
		t.Fatalf("prior data unreadable: %v %v", got[:1], err)
	}
	// Erase restores writability.
	if err := d.Erase(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(1, 1, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if d.Stats().WriteFailures != 1 {
		t.Fatalf("WriteFailures = %d", d.Stats().WriteFailures)
	}
}

func TestProbabilisticFailuresDeterministic(t *testing.T) {
	run := func() int64 {
		d := testDevice(t)
		d.SetFailureProbability(0.3, 7)
		for eb := 0; eb < 8; eb++ {
			for wb := 0; wb < 4; wb++ {
				_ = d.Program(0, eb, wb, []byte{1})
			}
		}
		return d.Stats().WriteFailures
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic failures: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("expected some failures at p=0.3")
	}
}

func TestEraseLimit(t *testing.T) {
	g := SmallGeometry()
	g.EraseLimit = 2
	d := MustNewDevice(g, Latency{})
	if err := d.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	err := d.Erase(0, 0)
	if !errors.Is(err, ErrBadBlock) {
		t.Fatalf("expected ErrBadBlock, got %v", err)
	}
	bad, _ := d.IsBad(0, 0)
	if !bad {
		t.Fatal("block should be bad")
	}
	if err := d.Program(0, 0, 0, []byte{1}); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("program to bad block: %v", err)
	}
	n, _ := d.EraseCount(0, 0)
	if n != 3 {
		t.Fatalf("EraseCount = %d", n)
	}
}

func TestIsWritten(t *testing.T) {
	d := testDevice(t)
	w, err := d.IsWritten(0, 0, 0)
	if err != nil || w {
		t.Fatal("fresh wblock should be unwritten")
	}
	if err := d.Program(0, 0, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	w, _ = d.IsWritten(0, 0, 0)
	if !w {
		t.Fatal("wblock should be written")
	}
	if err := d.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	w, _ = d.IsWritten(0, 0, 0)
	if w {
		t.Fatal("erased wblock should be unwritten")
	}
}

func TestVirtualTimeAccounting(t *testing.T) {
	lat := Latency{
		ReadRBlock:    10 * time.Microsecond,
		ProgramWBlock: 100 * time.Microsecond,
		EraseEBlock:   time.Millisecond,
	}
	d := MustNewDevice(SmallGeometry(), lat)
	if err := d.Program(0, 0, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Program(1, 0, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadRBlocks(0, 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Erase(2, 5); err != nil {
		t.Fatal(err)
	}
	if got := d.ChannelTime(0); got != 130*time.Microsecond {
		t.Fatalf("channel 0 time = %v", got)
	}
	if got := d.ChannelTime(1); got != 100*time.Microsecond {
		t.Fatalf("channel 1 time = %v", got)
	}
	if got := d.MediaTime(); got != time.Millisecond {
		t.Fatalf("media time = %v (erase channel should dominate)", got)
	}
	d.ResetTime()
	if d.MediaTime() != 0 {
		t.Fatal("ResetTime did not zero")
	}
}

func TestFailedProgramStillConsumesTime(t *testing.T) {
	lat := Latency{ProgramWBlock: 50 * time.Microsecond}
	d := MustNewDevice(SmallGeometry(), lat)
	d.FailNextProgram(0, 0, 0)
	if err := d.Program(0, 0, 0, []byte{1}); !errors.Is(err, ErrWriteFailed) {
		t.Fatal("expected failure")
	}
	if d.ChannelTime(0) != 50*time.Microsecond {
		t.Fatal("failed program should consume program time")
	}
}

func TestStatsCounting(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	_ = d.Program(0, 0, 0, make([]byte, 100))
	_, _ = d.ReadRBlocks(0, 0, 0, 2)
	_ = d.Erase(3, 3)
	s := d.Stats()
	if s.WBlocksWritten != 1 || s.RBlocksRead != 2 || s.EBlocksErased != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.BytesWritten != int64(g.WBlockBytes) || s.BytesRead != int64(2*g.RBlockBytes) {
		t.Fatalf("byte stats: %+v", s)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	if err := d.Program(g.Channels, 0, 0, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("channel range not enforced")
	}
	if err := d.Program(0, g.EBlocksPerChannel, 0, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("eblock range not enforced")
	}
	if err := d.Program(0, 0, g.WBlocksPerEBlock(), nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("wblock range not enforced")
	}
	if err := d.Program(0, 0, 0, make([]byte, g.WBlockBytes+1)); !errors.Is(err, ErrDataTooLarge) {
		t.Fatal("oversized data not rejected")
	}
	if _, err := d.ReadRBlocks(0, 0, 0, g.RBlocksPerEBlock()+1); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("read range not enforced")
	}
	if _, err := d.ReadRBlocks(0, 0, 0, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("zero-length read not rejected")
	}
	if err := d.Erase(-1, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("erase range not enforced")
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	d := testDevice(t)
	got, err := d.ReadRBlocks(3, 7, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten flash should read zero")
		}
	}
}
