package flash

import (
	"bytes"
	"errors"
	"testing"

	"eleos/internal/metrics"
)

// TestFailNthErase mirrors TestFailNthProgram for the erase twin: armed
// countdowns fire on exactly the n-th erase attempts, the device and
// metrics counters account exactly, and a failed erase leaves the
// EBLOCK's content and program position intact so a retry succeeds.
func TestFailNthErase(t *testing.T) {
	d := MustNewDevice(SmallGeometry(), Latency{})
	reg := metrics.New()
	d.SetMetrics(reg)

	data := []byte("survives a failed erase pulse")
	if err := d.Program(0, 0, 0, data); err != nil {
		t.Fatal(err)
	}

	// Arm the 2nd and 3rd erase attempts from now.
	d.FailNthErase(2)
	d.FailNthErase(3)
	if p, e := d.PendingInjectedFailures(); p != 0 || e != 2 {
		t.Fatalf("pending = (%d,%d), want (0,2)", p, e)
	}

	if err := d.Erase(1, 0); err != nil { // 1st: clean
		t.Fatalf("1st erase: %v", err)
	}
	if err := d.Erase(0, 0); !errors.Is(err, ErrEraseFailed) { // 2nd: armed
		t.Fatalf("2nd erase: %v, want ErrEraseFailed", err)
	}
	// The failed erase left the block un-erased: content readable,
	// position unchanged (re-programming wb 0 is still a write-twice).
	got, _, err := d.ReadExtent(0, 0, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("content after failed erase = %q, want %q", got, data)
	}
	if err := d.Program(0, 0, 0, data); !errors.Is(err, ErrWriteTwice) {
		t.Fatalf("reprogram after failed erase: %v, want ErrWriteTwice", err)
	}
	if err := d.Erase(2, 0); !errors.Is(err, ErrEraseFailed) { // 3rd: armed
		t.Fatalf("3rd erase: %v, want ErrEraseFailed", err)
	}
	if err := d.Erase(0, 0); err != nil { // 4th: retry succeeds
		t.Fatalf("retry erase: %v", err)
	}
	if err := d.Program(0, 0, 0, data); err != nil {
		t.Fatalf("program after successful retry: %v", err)
	}

	st := d.Stats()
	if st.EraseFailures != 2 {
		t.Fatalf("EraseFailures = %d, want 2", st.EraseFailures)
	}
	if st.EBlocksErased != 2 {
		t.Fatalf("EBlocksErased = %d, want 2 (failures must not count)", st.EBlocksErased)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("flash.erase_failures"); got != 2 {
		t.Fatalf("flash.erase_failures = %d, want 2", got)
	}
	if got := snap.Counter("flash.erases"); got != 4 {
		t.Fatalf("flash.erases = %d, want 4 attempts", got)
	}
	if p, e := d.PendingInjectedFailures(); p != 0 || e != 0 {
		t.Fatalf("pending after drain = (%d,%d), want (0,0)", p, e)
	}
}

// TestFailNthEraseCountsAgainstLimit: the failed pulse consumes an
// erase-limit cycle, so endurance accounting cannot be gamed by faults.
func TestFailNthEraseCountsAgainstLimit(t *testing.T) {
	geo := SmallGeometry()
	geo.EraseLimit = 2
	d := MustNewDevice(geo, Latency{})
	d.FailNthErase(1)
	if err := d.Erase(0, 0); !errors.Is(err, ErrEraseFailed) {
		t.Fatalf("armed erase: %v", err)
	}
	if err := d.Erase(0, 0); err != nil {
		t.Fatalf("2nd erase: %v", err)
	}
	if err := d.Erase(0, 0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("over-limit erase: %v, want ErrBadBlock", err)
	}
}
