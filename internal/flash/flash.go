// Package flash simulates the raw storage media of an Open-Channel SSD:
// an array of channels, each holding EBLOCKs composed of WBLOCKs, which in
// turn are composed of RBLOCKs (Table I of the paper).
//
// The simulator enforces NAND flash semantics that the FTL must respect:
//
//   - erase-before-write: a WBLOCK may be programmed only once between
//     erases of its EBLOCK;
//   - sequential programming: WBLOCKs within an EBLOCK must be programmed
//     in increasing order;
//   - bounded endurance: an EBLOCK that exceeds its erase limit goes bad;
//   - write failures: programs can be made to fail, either at explicit
//     addresses or with a seeded probability, after which the remainder of
//     the EBLOCK is unwritable until erased (§VII).
//
// All operations account virtual time against the owning channel, so the
// media's parallelism (channels operate independently) is modelled without
// wall-clock sleeps: the media-side elapsed time of a workload is the
// busiest channel's accumulated time.
package flash

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Geometry describes the shape of the simulated flash array.
type Geometry struct {
	Channels          int // number of independent flash channels
	EBlocksPerChannel int // erase blocks per channel
	EBlockBytes       int // size of an erase block (paper: 8 MB)
	WBlockBytes       int // smallest writable unit (paper: 32 KB)
	RBlockBytes       int // smallest readable unit (paper: 4 KB)
	EraseLimit        int // erases before an EBLOCK goes bad; 0 = unlimited
}

// DefaultGeometry returns the paper's Table I sizes with a modest channel
// and EBLOCK count suitable for in-memory simulation.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:          8,
		EBlocksPerChannel: 64,
		EBlockBytes:       8 << 20,
		WBlockBytes:       32 << 10,
		RBlockBytes:       4 << 10,
		EraseLimit:        0,
	}
}

// SmallGeometry returns a compact geometry convenient for unit tests:
// 4 channels x 16 EBLOCKs x 256 KB with 16 KB WBLOCKs and 4 KB RBLOCKs.
func SmallGeometry() Geometry {
	return Geometry{
		Channels:          4,
		EBlocksPerChannel: 16,
		EBlockBytes:       256 << 10,
		WBlockBytes:       16 << 10,
		RBlockBytes:       4 << 10,
		EraseLimit:        0,
	}
}

// Validate checks internal consistency of the geometry.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return errors.New("flash: geometry needs at least one channel")
	case g.EBlocksPerChannel <= 0:
		return errors.New("flash: geometry needs at least one eblock per channel")
	case g.RBlockBytes <= 0 || g.RBlockBytes%64 != 0:
		return errors.New("flash: rblock size must be a positive multiple of 64")
	case g.WBlockBytes <= 0 || g.WBlockBytes%g.RBlockBytes != 0:
		return errors.New("flash: wblock size must be a multiple of rblock size")
	case g.EBlockBytes <= 0 || g.EBlockBytes%g.WBlockBytes != 0:
		return errors.New("flash: eblock size must be a multiple of wblock size")
	case g.EraseLimit < 0:
		return errors.New("flash: erase limit must be non-negative")
	}
	return nil
}

// WBlocksPerEBlock returns the number of WBLOCKs in one EBLOCK.
func (g Geometry) WBlocksPerEBlock() int { return g.EBlockBytes / g.WBlockBytes }

// RBlocksPerWBlock returns the number of RBLOCKs in one WBLOCK.
func (g Geometry) RBlocksPerWBlock() int { return g.WBlockBytes / g.RBlockBytes }

// RBlocksPerEBlock returns the number of RBLOCKs in one EBLOCK.
func (g Geometry) RBlocksPerEBlock() int { return g.EBlockBytes / g.RBlockBytes }

// CapacityBytes returns the raw capacity of the whole array.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.Channels) * int64(g.EBlocksPerChannel) * int64(g.EBlockBytes)
}

// Latency models per-operation flash timing. Zero values disable timing.
type Latency struct {
	ReadRBlock    time.Duration // time to read one RBLOCK
	ProgramWBlock time.Duration // time to program one WBLOCK
	EraseEBlock   time.Duration // time to erase one EBLOCK
}

// TypicalNANDLatency returns latencies in the range of the MLC/TLC NAND the
// paper's CNEX device uses.
func TypicalNANDLatency() Latency {
	return Latency{
		ReadRBlock:    60 * time.Microsecond,
		ProgramWBlock: 800 * time.Microsecond,
		EraseEBlock:   5 * time.Millisecond,
	}
}

// Stats counts media operations since the device was created (or since
// ResetStats).
type Stats struct {
	RBlocksRead    int64
	WBlocksWritten int64
	EBlocksErased  int64
	BytesRead      int64
	BytesWritten   int64
	WriteFailures  int64
}

// Errors returned by device operations.
var (
	ErrOutOfRange     = errors.New("flash: address out of range")
	ErrWriteTwice     = errors.New("flash: wblock already programmed since last erase")
	ErrWriteOrder     = errors.New("flash: wblocks must be programmed sequentially within an eblock")
	ErrWriteFailed    = errors.New("flash: program operation failed")
	ErrEBlockDisabled = errors.New("flash: eblock unwritable after earlier program failure; erase first")
	ErrBadBlock       = errors.New("flash: eblock has exceeded its erase limit")
	ErrDataTooLarge   = errors.New("flash: data larger than a wblock")
)

type eblockState struct {
	wblocks    [][]byte // nil entry = erased/unwritten; allocated lazily
	nextWBlock int      // next sequential program position
	eraseCount int
	failed     bool // a program failed; block unwritable until erase
	bad        bool // exceeded erase limit
}

type channelState struct {
	eblocks []eblockState
	busy    time.Duration // accumulated virtual time
}

// Device is the simulated flash array. All methods are safe for concurrent
// use.
type Device struct {
	mu       sync.Mutex
	geo      Geometry
	lat      Latency
	channels []channelState
	stats    Stats

	failNext map[[3]int]bool // explicit one-shot program failures
	failProb float64
	rng      *rand.Rand
}

// NewDevice creates a device with the given geometry and latency model.
func NewDevice(geo Geometry, lat Latency) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		geo:      geo,
		lat:      lat,
		channels: make([]channelState, geo.Channels),
		failNext: make(map[[3]int]bool),
		rng:      rand.New(rand.NewSource(42)),
	}
	for i := range d.channels {
		d.channels[i].eblocks = make([]eblockState, geo.EBlocksPerChannel)
		for j := range d.channels[i].eblocks {
			d.channels[i].eblocks[j].wblocks = make([][]byte, geo.WBlocksPerEBlock())
		}
	}
	return d, nil
}

// MustNewDevice is NewDevice that panics on error; for tests and examples.
func MustNewDevice(geo Geometry, lat Latency) *Device {
	d, err := NewDevice(geo, lat)
	if err != nil {
		panic(err)
	}
	return d
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

func (d *Device) checkAddr(ch, eb int) error {
	if ch < 0 || ch >= d.geo.Channels || eb < 0 || eb >= d.geo.EBlocksPerChannel {
		return fmt.Errorf("%w: ch=%d eb=%d", ErrOutOfRange, ch, eb)
	}
	return nil
}

// FailNextProgram arranges for the next program of the given WBLOCK to
// fail. Used by tests and fault-injection benchmarks.
func (d *Device) FailNextProgram(ch, eb, wb int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failNext[[3]int{ch, eb, wb}] = true
}

// SetFailureProbability makes every program fail independently with
// probability p, using the device's seeded RNG (deterministic runs).
func (d *Device) SetFailureProbability(p float64, seed int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failProb = p
	d.rng = rand.New(rand.NewSource(seed))
}

// Program writes data into a WBLOCK. len(data) must not exceed the WBLOCK
// size; shorter data is implicitly zero-padded on read. Programs within an
// EBLOCK must be issued at strictly increasing WBLOCK indices.
func (d *Device) Program(ch, eb, wb int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkAddr(ch, eb); err != nil {
		return err
	}
	if wb < 0 || wb >= d.geo.WBlocksPerEBlock() {
		return fmt.Errorf("%w: wb=%d", ErrOutOfRange, wb)
	}
	if len(data) > d.geo.WBlockBytes {
		return fmt.Errorf("%w: %d > %d", ErrDataTooLarge, len(data), d.geo.WBlockBytes)
	}
	ebs := &d.channels[ch].eblocks[eb]
	if ebs.bad {
		return fmt.Errorf("%w: ch=%d eb=%d", ErrBadBlock, ch, eb)
	}
	if ebs.failed {
		return fmt.Errorf("%w: ch=%d eb=%d", ErrEBlockDisabled, ch, eb)
	}
	if ebs.wblocks[wb] != nil {
		return fmt.Errorf("%w: ch=%d eb=%d wb=%d", ErrWriteTwice, ch, eb, wb)
	}
	if wb != ebs.nextWBlock {
		return fmt.Errorf("%w: ch=%d eb=%d wb=%d (next=%d)", ErrWriteOrder, ch, eb, wb, ebs.nextWBlock)
	}
	// Programming consumes time whether or not it succeeds.
	d.channels[ch].busy += d.lat.ProgramWBlock
	key := [3]int{ch, eb, wb}
	fail := d.failNext[key]
	if fail {
		delete(d.failNext, key)
	} else if d.failProb > 0 && d.rng.Float64() < d.failProb {
		fail = true
	}
	if fail {
		ebs.failed = true
		d.stats.WriteFailures++
		return fmt.Errorf("%w: ch=%d eb=%d wb=%d", ErrWriteFailed, ch, eb, wb)
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	ebs.wblocks[wb] = buf
	ebs.nextWBlock = wb + 1
	d.stats.WBlocksWritten++
	d.stats.BytesWritten += int64(d.geo.WBlockBytes)
	return nil
}

// ReadRBlocks reads n consecutive RBLOCKs starting at RBLOCK index start
// within the EBLOCK (RBLOCK indices run across WBLOCK boundaries).
// Unwritten regions read as zeroes.
func (d *Device) ReadRBlocks(ch, eb, start, n int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkAddr(ch, eb); err != nil {
		return nil, err
	}
	if n <= 0 || start < 0 || start+n > d.geo.RBlocksPerEBlock() {
		return nil, fmt.Errorf("%w: rblocks [%d,%d)", ErrOutOfRange, start, start+n)
	}
	out := make([]byte, n*d.geo.RBlockBytes)
	rPerW := d.geo.RBlocksPerWBlock()
	for i := 0; i < n; i++ {
		r := start + i
		wb, rInW := r/rPerW, r%rPerW
		src := d.channels[ch].eblocks[eb].wblocks[wb]
		if src == nil {
			continue // erased: zeroes
		}
		lo := rInW * d.geo.RBlockBytes
		if lo < len(src) {
			hi := lo + d.geo.RBlockBytes
			if hi > len(src) {
				hi = len(src)
			}
			copy(out[i*d.geo.RBlockBytes:], src[lo:hi])
		}
	}
	d.channels[ch].busy += time.Duration(n) * d.lat.ReadRBlock
	d.stats.RBlocksRead += int64(n)
	d.stats.BytesRead += int64(n * d.geo.RBlockBytes)
	return out, nil
}

// ReadExtent reads an arbitrary byte extent [off, off+length) within an
// EBLOCK by reading the covering RBLOCKs and slicing out the extent —
// exactly the paper's §V read path. It returns the extent bytes along with
// the number of RBLOCKs transferred (for amplification accounting).
func (d *Device) ReadExtent(ch, eb, off, length int) ([]byte, int, error) {
	if length <= 0 || off < 0 || off+length > d.geo.EBlockBytes {
		return nil, 0, fmt.Errorf("%w: extent [%d,%d)", ErrOutOfRange, off, off+length)
	}
	first := off / d.geo.RBlockBytes
	last := (off + length - 1) / d.geo.RBlockBytes
	n := last - first + 1
	raw, err := d.ReadRBlocks(ch, eb, first, n)
	if err != nil {
		return nil, 0, err
	}
	lo := off - first*d.geo.RBlockBytes
	return raw[lo : lo+length], n, nil
}

// IsWritten reports whether a WBLOCK has been programmed since its last
// erase. Recovery uses this to fix up open-EBLOCK write positions
// (§VIII-C3).
func (d *Device) IsWritten(ch, eb, wb int) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkAddr(ch, eb); err != nil {
		return false, err
	}
	if wb < 0 || wb >= d.geo.WBlocksPerEBlock() {
		return false, fmt.Errorf("%w: wb=%d", ErrOutOfRange, wb)
	}
	return d.channels[ch].eblocks[eb].wblocks[wb] != nil, nil
}

// Erase erases an EBLOCK, making all its WBLOCKs writable again. It fails
// with ErrBadBlock once the erase limit is exceeded.
func (d *Device) Erase(ch, eb int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkAddr(ch, eb); err != nil {
		return err
	}
	ebs := &d.channels[ch].eblocks[eb]
	if ebs.bad {
		return fmt.Errorf("%w: ch=%d eb=%d", ErrBadBlock, ch, eb)
	}
	ebs.eraseCount++
	if d.geo.EraseLimit > 0 && ebs.eraseCount > d.geo.EraseLimit {
		ebs.bad = true
		return fmt.Errorf("%w: ch=%d eb=%d after %d erases", ErrBadBlock, ch, eb, ebs.eraseCount)
	}
	for i := range ebs.wblocks {
		ebs.wblocks[i] = nil
	}
	ebs.nextWBlock = 0
	ebs.failed = false
	d.channels[ch].busy += d.lat.EraseEBlock
	d.stats.EBlocksErased++
	return nil
}

// EraseCount returns how many times an EBLOCK has been erased.
func (d *Device) EraseCount(ch, eb int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkAddr(ch, eb); err != nil {
		return 0, err
	}
	return d.channels[ch].eblocks[eb].eraseCount, nil
}

// IsBad reports whether an EBLOCK has exceeded its erase limit.
func (d *Device) IsBad(ch, eb int) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkAddr(ch, eb); err != nil {
		return false, err
	}
	return d.channels[ch].eblocks[eb].bad, nil
}

// NextProgramPosition returns the next sequential WBLOCK index that a
// program to the EBLOCK must target.
func (d *Device) NextProgramPosition(ch, eb int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkAddr(ch, eb); err != nil {
		return 0, err
	}
	return d.channels[ch].eblocks[eb].nextWBlock, nil
}

// Stats returns a snapshot of the operation counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the operation counters (virtual time is separate).
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// ChannelTime returns the accumulated virtual busy time of one channel.
func (d *Device) ChannelTime(ch int) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ch < 0 || ch >= d.geo.Channels {
		return 0
	}
	return d.channels[ch].busy
}

// MediaTime returns the virtual elapsed media time of the workload so far:
// the busiest channel's accumulated time (channels run in parallel).
func (d *Device) MediaTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	var max time.Duration
	for i := range d.channels {
		if d.channels[i].busy > max {
			max = d.channels[i].busy
		}
	}
	return max
}

// ResetTime zeroes all channels' virtual busy time.
func (d *Device) ResetTime() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.channels {
		d.channels[i].busy = 0
	}
}
