// Package flash simulates the raw storage media of an Open-Channel SSD:
// an array of channels, each holding EBLOCKs composed of WBLOCKs, which in
// turn are composed of RBLOCKs (Table I of the paper).
//
// The simulator enforces NAND flash semantics that the FTL must respect:
//
//   - erase-before-write: a WBLOCK may be programmed only once between
//     erases of its EBLOCK;
//   - sequential programming: WBLOCKs within an EBLOCK must be programmed
//     in increasing order;
//   - bounded endurance: an EBLOCK that exceeds its erase limit goes bad;
//   - write failures: programs can be made to fail, either at explicit
//     addresses or with a seeded probability, after which the remainder of
//     the EBLOCK is unwritable until erased (§VII).
//
// All operations account virtual time against the owning channel, so the
// media's parallelism (channels operate independently) is modelled without
// wall-clock sleeps: the media-side elapsed time of a workload is the
// busiest channel's accumulated time.
//
// Channels are independently locked, and SubmitBatch queues program
// commands onto one worker goroutine per channel, so different channels
// also execute concurrently in wall-clock time. Each channel's virtual
// busy time is a sum over its own operations, so the totals do not depend
// on wall-clock interleaving and virtual-time results stay deterministic.
package flash

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eleos/internal/metrics"
	"eleos/internal/trace"
)

// Geometry describes the shape of the simulated flash array.
type Geometry struct {
	Channels          int // number of independent flash channels
	EBlocksPerChannel int // erase blocks per channel
	EBlockBytes       int // size of an erase block (paper: 8 MB)
	WBlockBytes       int // smallest writable unit (paper: 32 KB)
	RBlockBytes       int // smallest readable unit (paper: 4 KB)
	EraseLimit        int // erases before an EBLOCK goes bad; 0 = unlimited
}

// DefaultGeometry returns the paper's Table I sizes with a modest channel
// and EBLOCK count suitable for in-memory simulation.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:          8,
		EBlocksPerChannel: 64,
		EBlockBytes:       8 << 20,
		WBlockBytes:       32 << 10,
		RBlockBytes:       4 << 10,
		EraseLimit:        0,
	}
}

// SmallGeometry returns a compact geometry convenient for unit tests:
// 4 channels x 16 EBLOCKs x 256 KB with 16 KB WBLOCKs and 4 KB RBLOCKs.
func SmallGeometry() Geometry {
	return Geometry{
		Channels:          4,
		EBlocksPerChannel: 16,
		EBlockBytes:       256 << 10,
		WBlockBytes:       16 << 10,
		RBlockBytes:       4 << 10,
		EraseLimit:        0,
	}
}

// Validate checks internal consistency of the geometry.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return errors.New("flash: geometry needs at least one channel")
	case g.EBlocksPerChannel <= 0:
		return errors.New("flash: geometry needs at least one eblock per channel")
	case g.RBlockBytes <= 0 || g.RBlockBytes%64 != 0:
		return errors.New("flash: rblock size must be a positive multiple of 64")
	case g.WBlockBytes <= 0 || g.WBlockBytes%g.RBlockBytes != 0:
		return errors.New("flash: wblock size must be a multiple of rblock size")
	case g.EBlockBytes <= 0 || g.EBlockBytes%g.WBlockBytes != 0:
		return errors.New("flash: eblock size must be a multiple of wblock size")
	case g.EraseLimit < 0:
		return errors.New("flash: erase limit must be non-negative")
	}
	return nil
}

// WBlocksPerEBlock returns the number of WBLOCKs in one EBLOCK.
func (g Geometry) WBlocksPerEBlock() int { return g.EBlockBytes / g.WBlockBytes }

// RBlocksPerWBlock returns the number of RBLOCKs in one WBLOCK.
func (g Geometry) RBlocksPerWBlock() int { return g.WBlockBytes / g.RBlockBytes }

// RBlocksPerEBlock returns the number of RBLOCKs in one EBLOCK.
func (g Geometry) RBlocksPerEBlock() int { return g.EBlockBytes / g.RBlockBytes }

// CapacityBytes returns the raw capacity of the whole array.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.Channels) * int64(g.EBlocksPerChannel) * int64(g.EBlockBytes)
}

// Latency models per-operation flash timing. Zero values disable timing.
type Latency struct {
	ReadRBlock    time.Duration // time to read one RBLOCK
	ProgramWBlock time.Duration // time to program one WBLOCK
	EraseEBlock   time.Duration // time to erase one EBLOCK
}

// TypicalNANDLatency returns latencies in the range of the MLC/TLC NAND the
// paper's CNEX device uses.
func TypicalNANDLatency() Latency {
	return Latency{
		ReadRBlock:    60 * time.Microsecond,
		ProgramWBlock: 800 * time.Microsecond,
		EraseEBlock:   5 * time.Millisecond,
	}
}

// Source attributes a program operation to the subsystem that issued it.
// The write-amplification story is an accounting argument, and the split
// makes it exact: every successful program charges exactly one source, so
// the per-source sums reconcile with the device totals byte-for-byte (the
// chaos byte-conservation invariant).
type Source uint8

const (
	// SrcUnattributed marks programs issued through the legacy Program
	// entry point (direct device tests); controller-driven traffic never
	// uses it.
	SrcUnattributed Source = iota
	// SrcUser is a user write-buffer program.
	SrcUser
	// SrcGC is a garbage-collection or migration relocation program.
	SrcGC
	// SrcCheckpoint covers checkpoint-area records, table flushes and
	// forced EBLOCK closes.
	SrcCheckpoint
	// SrcWAL is a write-ahead-log page program.
	SrcWAL
	// SrcRecovery is any program issued while crash recovery is running.
	SrcRecovery
	// NumSources sizes per-source arrays.
	NumSources
)

func (s Source) String() string {
	switch s {
	case SrcUser:
		return "user"
	case SrcGC:
		return "gc"
	case SrcCheckpoint:
		return "checkpoint"
	case SrcWAL:
		return "wal"
	case SrcRecovery:
		return "recovery"
	default:
		return "unattributed"
	}
}

// Stats counts media operations since the device was created (or since
// ResetStats).
type Stats struct {
	RBlocksRead    int64
	WBlocksWritten int64
	EBlocksErased  int64
	BytesRead      int64
	BytesWritten   int64
	WriteFailures  int64
	EraseFailures  int64
	// EraseAttempts counts every erase pulse that reached the media —
	// successes, injected failures and over-limit rejections alike. Each
	// attempt bumps exactly one EBLOCK's wear counter, so on a fresh
	// device the per-EBLOCK erase counts sum to EraseAttempts (the chaos
	// erase-monotonicity invariant).
	EraseAttempts int64
	// SrcWBlocks/SrcBytes split the successful programs by issuing
	// subsystem; the sums over all sources equal WBlocksWritten and
	// BytesWritten exactly.
	SrcWBlocks [NumSources]int64
	SrcBytes   [NumSources]int64
}

// Errors returned by device operations.
var (
	ErrOutOfRange     = errors.New("flash: address out of range")
	ErrWriteTwice     = errors.New("flash: wblock already programmed since last erase")
	ErrWriteOrder     = errors.New("flash: wblocks must be programmed sequentially within an eblock")
	ErrWriteFailed    = errors.New("flash: program operation failed")
	ErrEraseFailed    = errors.New("flash: erase operation failed")
	ErrEBlockDisabled = errors.New("flash: eblock unwritable after earlier program failure; erase first")
	ErrBadBlock       = errors.New("flash: eblock has exceeded its erase limit")
	ErrDataTooLarge   = errors.New("flash: data larger than a wblock")
)

// eblockState keeps each WBLOCK's backing array across erases: the
// sequential-program rule makes "programmed" equivalent to
// wb < nextWBlock, so Erase only resets the position and the stale
// entries beyond it are unobservable (reads of unprogrammed WBLOCKs
// return zeroes by construction, exactly as an erased cell would).
// Each array is sized to the payload it stores — reads treat bytes
// past len as zero padding, so programs never zero-fill a WBLOCK tail
// — and its capacity survives erase, so a warmed device reprograms a
// recycled WBLOCK by re-slicing in place, allocating nothing.
type eblockState struct {
	wblocks    [][]byte // stored payloads, len = last program's size; capacity outlives erases
	nextWBlock int      // next sequential program position; wb < nextWBlock ⇔ programmed
	eraseCount int
	failed     bool // a program failed; block unwritable until erase
	bad        bool // exceeded erase limit
}

type channelState struct {
	mu      sync.Mutex
	eblocks []eblockState
	busy    time.Duration // accumulated virtual time
}

// Device is the simulated flash array. All methods are safe for concurrent
// use; operations on different channels do not contend.
type Device struct {
	geo      Geometry
	lat      Latency
	channels []channelState

	statsMu sync.Mutex
	stats   Stats

	injectMu       sync.Mutex
	failNext       map[[3]int]bool // explicit one-shot program failures
	failProb       float64
	rng            *rand.Rand
	programSeq     int64          // program attempts seen by shouldFail
	failAtSeq      map[int64]bool // programSeq values that must fail (FailNthProgram)
	eraseSeq       int64          // erase attempts seen by shouldFailErase
	failEraseAtSeq map[int64]bool // eraseSeq values that must fail (FailNthErase)

	// met is the instrument-handle set installed by SetMetrics; nil means
	// uninstrumented, so the hot path pays one atomic pointer load and a
	// branch. Swappable atomically because the controller installs it
	// after the device already exists.
	met atomic.Pointer[devMetrics]

	// trc is the flight recorder installed by SetTracer; like met it is
	// swapped atomically after the device exists, and a disabled recorder
	// costs the hot path one pointer load and a branch.
	trc atomic.Pointer[trace.Recorder]

	workerMu sync.Mutex
	workers  []chan batchSeg // lazily started, one per channel
	closed   bool

	// wallScale > 0 makes operations consume real wall-clock time (their
	// virtual latency times the scale) while holding the channel lock,
	// emulating channel occupancy for concurrency benchmarks. Stored as
	// nanoseconds-scale*1e6 in an atomic so it can be read lock-free.
	wallScaleMilli atomic.Int64
}

// SetWallLatencyScale makes device operations sleep scale×latency of real
// time while occupying their channel (0 disables, the default). Virtual
// time accounting is unaffected. Used by wall-clock concurrency benchmarks
// to model the pipeline overlap a real NAND channel would provide.
func (d *Device) SetWallLatencyScale(scale float64) {
	d.wallScaleMilli.Store(int64(scale * 1000))
}

// wallWait sleeps the scaled latency if wall-time emulation is on. Called
// with the channel lock held: the channel is busy for the duration.
func (d *Device) wallWait(lat time.Duration) {
	if s := d.wallScaleMilli.Load(); s > 0 {
		time.Sleep(lat * time.Duration(s) / 1000)
	}
}

// devMetrics holds the device's instrument handles, resolved once in
// SetMetrics. Latencies are wall-clock (they include channel-lock wait
// and any wallWait emulation), so histogram time only moves when the
// benchmark models occupancy — virtual-time accounting stays in
// ChannelTime/MediaTime.
type devMetrics struct {
	programs        *metrics.Counter
	programFailures *metrics.Counter
	programmedBytes *metrics.Counter
	erases          *metrics.Counter
	eraseFailures   *metrics.Counter
	programNS       *metrics.Histogram
	eraseNS         *metrics.Histogram
	queueDepth      []*metrics.Gauge               // per channel, in queued commands
	srcWBlocks      [NumSources]*metrics.Counter   // flash.src.<name>.wblocks
	srcBytes        [NumSources]*metrics.Counter   // flash.src.<name>.bytes
}

// SetMetrics installs instrument handles from reg: "flash.programs",
// "flash.program_failures", "flash.programmed_bytes", "flash.erases",
// "flash.erase_failures" counters, per-source
// "flash.src.<source>.wblocks"/"flash.src.<source>.bytes" counters, the
// "flash.program_ns"/"flash.erase_ns" wall-clock histograms, and one
// "flash.chan<i>.queue_depth" gauge per channel counting commands queued
// on the channel's submission worker. A nil or disabled registry
// uninstalls instrumentation. Install before submitting traffic: batches
// in flight across the swap can skew the queue-depth gauges.
func (d *Device) SetMetrics(reg *metrics.Registry) {
	if !reg.Enabled() {
		d.met.Store(nil)
		return
	}
	m := &devMetrics{
		programs:        reg.Counter("flash.programs"),
		programFailures: reg.Counter("flash.program_failures"),
		programmedBytes: reg.Counter("flash.programmed_bytes"),
		erases:          reg.Counter("flash.erases"),
		eraseFailures:   reg.Counter("flash.erase_failures"),
		programNS:       reg.Histogram("flash.program_ns", metrics.DurationBounds()),
		eraseNS:         reg.Histogram("flash.erase_ns", metrics.DurationBounds()),
		queueDepth:      make([]*metrics.Gauge, d.geo.Channels),
	}
	for i := range m.queueDepth {
		m.queueDepth[i] = reg.Gauge(fmt.Sprintf("flash.chan%d.queue_depth", i))
	}
	for s := Source(0); s < NumSources; s++ {
		m.srcWBlocks[s] = reg.Counter(fmt.Sprintf("flash.src.%s.wblocks", s))
		m.srcBytes[s] = reg.Counter(fmt.Sprintf("flash.src.%s.bytes", s))
	}
	d.met.Store(m)
}

// SetTracer installs a flight recorder: every program and erase emits a
// KFlashProgram/KFlashErase span with its (channel, eblock) identity.
// Media events carry trace ID 0 — attribution to a batch happens via the
// enclosing KProgramWait span's time window. A nil or disabled recorder
// uninstalls tracing.
func (d *Device) SetTracer(trc *trace.Recorder) {
	if !trc.Enabled() {
		d.trc.Store(nil)
		return
	}
	d.trc.Store(trc)
}

// tracer returns the installed recorder; nil-safe for Emit/Span/Now.
func (d *Device) tracer() *trace.Recorder { return d.trc.Load() }

// NewDevice creates a device with the given geometry and latency model.
func NewDevice(geo Geometry, lat Latency) (*Device, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		geo:      geo,
		lat:      lat,
		channels: make([]channelState, geo.Channels),
		failNext: make(map[[3]int]bool),
		rng:      rand.New(rand.NewSource(42)),
	}
	for i := range d.channels {
		d.channels[i].eblocks = make([]eblockState, geo.EBlocksPerChannel)
		for j := range d.channels[i].eblocks {
			d.channels[i].eblocks[j].wblocks = make([][]byte, geo.WBlocksPerEBlock())
		}
	}
	return d, nil
}

// MustNewDevice is NewDevice that panics on error; for tests and examples.
func MustNewDevice(geo Geometry, lat Latency) *Device {
	d, err := NewDevice(geo, lat)
	if err != nil {
		panic(err)
	}
	return d
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

func (d *Device) checkAddr(ch, eb int) error {
	if ch < 0 || ch >= d.geo.Channels || eb < 0 || eb >= d.geo.EBlocksPerChannel {
		return fmt.Errorf("%w: ch=%d eb=%d", ErrOutOfRange, ch, eb)
	}
	return nil
}

// FailNextProgram arranges for the next program of the given WBLOCK to
// fail. Used by tests and fault-injection benchmarks.
func (d *Device) FailNextProgram(ch, eb, wb int) {
	d.injectMu.Lock()
	defer d.injectMu.Unlock()
	d.failNext[[3]int{ch, eb, wb}] = true
}

// FailNthProgram arranges for the n-th program attempt from now (n=1 is
// the very next) to fail, whichever WBLOCK it targets. Unlike
// FailNextProgram it needs no address, so fault schedules stay
// deterministic even when concurrent provisioning makes the victim
// address unpredictable: each armed countdown fires on exactly one
// program attempt, so the device's WriteFailures count (and the
// "flash.program_failures" metric) grows by exactly the number of armed
// countdowns once at least that many programs have been attempted.
func (d *Device) FailNthProgram(n int) {
	if n < 1 {
		return
	}
	d.injectMu.Lock()
	defer d.injectMu.Unlock()
	if d.failAtSeq == nil {
		d.failAtSeq = make(map[int64]bool)
	}
	d.failAtSeq[d.programSeq+int64(n)] = true
}

// FailNthErase arranges for the n-th erase attempt from now (n=1 is the
// very next) to fail, whichever EBLOCK it targets — the erase twin of
// FailNthProgram, sharing its countdown design: each armed countdown
// fires on exactly one erase attempt, so EraseFailures (and the
// "flash.erase_failures" metric) grows by exactly the number of armed
// countdowns once that many erases have been attempted. A failed erase
// leaves the EBLOCK un-erased (its programmed content intact and its
// program position unchanged); the erase attempt still counts against
// the erase limit, as a real NAND erase pulse would.
func (d *Device) FailNthErase(n int) {
	if n < 1 {
		return
	}
	d.injectMu.Lock()
	defer d.injectMu.Unlock()
	if d.failEraseAtSeq == nil {
		d.failEraseAtSeq = make(map[int64]bool)
	}
	d.failEraseAtSeq[d.eraseSeq+int64(n)] = true
}

// PendingInjectedFailures reports how many armed FailNthProgram and
// FailNthErase countdowns have not fired yet. Chaos schedules use it to
// account exactly for injected faults: fired = armed - pending.
func (d *Device) PendingInjectedFailures() (programs, erases int) {
	d.injectMu.Lock()
	defer d.injectMu.Unlock()
	return len(d.failAtSeq), len(d.failEraseAtSeq)
}

// SetFailureProbability makes every program fail independently with
// probability p, using the device's seeded RNG (deterministic runs).
// A non-zero probability also switches SubmitBatch to synchronous
// execution: the shared RNG makes outcomes order-dependent, and the
// fault-injection experiments rely on the single-threaded draw order.
func (d *Device) SetFailureProbability(p float64, seed int64) {
	d.injectMu.Lock()
	defer d.injectMu.Unlock()
	d.failProb = p
	d.rng = rand.New(rand.NewSource(seed))
}

// shouldFail decides fault injection for one program.
func (d *Device) shouldFail(ch, eb, wb int) bool {
	d.injectMu.Lock()
	defer d.injectMu.Unlock()
	d.programSeq++
	if d.failAtSeq[d.programSeq] {
		delete(d.failAtSeq, d.programSeq)
		return true
	}
	key := [3]int{ch, eb, wb}
	if d.failNext[key] {
		delete(d.failNext, key)
		return true
	}
	return d.failProb > 0 && d.rng.Float64() < d.failProb
}

// shouldFailErase decides fault injection for one erase.
func (d *Device) shouldFailErase() bool {
	d.injectMu.Lock()
	defer d.injectMu.Unlock()
	d.eraseSeq++
	if d.failEraseAtSeq[d.eraseSeq] {
		delete(d.failEraseAtSeq, d.eraseSeq)
		return true
	}
	return false
}

// Program writes data into a WBLOCK. len(data) must not exceed the WBLOCK
// size; shorter data is implicitly zero-padded on read. Programs within an
// EBLOCK must be issued at strictly increasing WBLOCK indices.
// Attribution defaults to SrcUnattributed; controller paths use
// ProgramSrc.
func (d *Device) Program(ch, eb, wb int, data []byte) error {
	return d.ProgramSrc(SrcUnattributed, ch, eb, wb, data)
}

// ProgramSrc is Program with the issuing subsystem attributed: a
// successful program charges exactly one source's WBLOCK and byte
// counters, so the per-source sums reconcile with WBlocksWritten and
// BytesWritten exactly. Out-of-range sources are clamped to
// SrcUnattributed.
func (d *Device) ProgramSrc(src Source, ch, eb, wb int, data []byte) error {
	if src >= NumSources {
		src = SrcUnattributed
	}
	if err := d.checkAddr(ch, eb); err != nil {
		return err
	}
	if wb < 0 || wb >= d.geo.WBlocksPerEBlock() {
		return fmt.Errorf("%w: wb=%d", ErrOutOfRange, wb)
	}
	if len(data) > d.geo.WBlockBytes {
		return fmt.Errorf("%w: %d > %d", ErrDataTooLarge, len(data), d.geo.WBlockBytes)
	}
	cs := &d.channels[ch]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ebs := &cs.eblocks[eb]
	if ebs.bad {
		return fmt.Errorf("%w: ch=%d eb=%d", ErrBadBlock, ch, eb)
	}
	if ebs.failed {
		return fmt.Errorf("%w: ch=%d eb=%d", ErrEBlockDisabled, ch, eb)
	}
	if wb < ebs.nextWBlock {
		return fmt.Errorf("%w: ch=%d eb=%d wb=%d", ErrWriteTwice, ch, eb, wb)
	}
	if wb != ebs.nextWBlock {
		return fmt.Errorf("%w: ch=%d eb=%d wb=%d (next=%d)", ErrWriteOrder, ch, eb, wb, ebs.nextWBlock)
	}
	// Programming consumes time whether or not it succeeds.
	m := d.met.Load()
	trc := d.tracer()
	var t0 time.Time
	if m != nil || trc.Enabled() {
		t0 = time.Now()
	}
	cs.busy += d.lat.ProgramWBlock
	d.wallWait(d.lat.ProgramWBlock)
	if d.shouldFail(ch, eb, wb) {
		ebs.failed = true
		d.statsMu.Lock()
		d.stats.WriteFailures++
		d.statsMu.Unlock()
		if m != nil {
			m.programs.Inc()
			m.programFailures.Inc()
			m.programNS.ObserveDuration(time.Since(t0))
		}
		trc.Span(trace.KFlashProgram, 0, 0, 0, t0, int64(ch), int64(eb))
		return fmt.Errorf("%w: ch=%d eb=%d wb=%d", ErrWriteFailed, ch, eb, wb)
	}
	buf := ebs.wblocks[wb]
	if cap(buf) < len(data) {
		buf = make([]byte, len(data))
	} else {
		buf = buf[:len(data)]
	}
	copy(buf, data)
	ebs.wblocks[wb] = buf
	ebs.nextWBlock = wb + 1
	d.statsMu.Lock()
	d.stats.WBlocksWritten++
	d.stats.BytesWritten += int64(d.geo.WBlockBytes)
	d.stats.SrcWBlocks[src]++
	d.stats.SrcBytes[src] += int64(d.geo.WBlockBytes)
	d.statsMu.Unlock()
	if m != nil {
		m.programs.Inc()
		m.programmedBytes.Add(int64(d.geo.WBlockBytes))
		m.srcWBlocks[src].Inc()
		m.srcBytes[src].Add(int64(d.geo.WBlockBytes))
		m.programNS.ObserveDuration(time.Since(t0))
	}
	trc.Span(trace.KFlashProgram, 0, 0, 0, t0, int64(ch), int64(eb))
	return nil
}

// ReadRBlocks reads n consecutive RBLOCKs starting at RBLOCK index start
// within the EBLOCK (RBLOCK indices run across WBLOCK boundaries).
// Unwritten regions read as zeroes.
func (d *Device) ReadRBlocks(ch, eb, start, n int) ([]byte, error) {
	if err := d.checkAddr(ch, eb); err != nil {
		return nil, err
	}
	if n <= 0 || start < 0 || start+n > d.geo.RBlocksPerEBlock() {
		return nil, fmt.Errorf("%w: rblocks [%d,%d)", ErrOutOfRange, start, start+n)
	}
	cs := &d.channels[ch]
	cs.mu.Lock()
	out := make([]byte, n*d.geo.RBlockBytes)
	rPerW := d.geo.RBlocksPerWBlock()
	ebs := &cs.eblocks[eb]
	for i := 0; i < n; i++ {
		r := start + i
		wb, rInW := r/rPerW, r%rPerW
		if wb >= ebs.nextWBlock {
			continue // not programmed since the last erase: zeroes
		}
		src := ebs.wblocks[wb]
		lo := rInW * d.geo.RBlockBytes
		if lo < len(src) {
			hi := lo + d.geo.RBlockBytes
			if hi > len(src) {
				hi = len(src)
			}
			copy(out[i*d.geo.RBlockBytes:], src[lo:hi]) // tail past len(src) stays zero
		}
	}
	cs.busy += time.Duration(n) * d.lat.ReadRBlock
	d.wallWait(time.Duration(n) * d.lat.ReadRBlock)
	cs.mu.Unlock()
	d.statsMu.Lock()
	d.stats.RBlocksRead += int64(n)
	d.stats.BytesRead += int64(n * d.geo.RBlockBytes)
	d.statsMu.Unlock()
	return out, nil
}

// ReadExtent reads an arbitrary byte extent [off, off+length) within an
// EBLOCK by reading the covering RBLOCKs and slicing out the extent —
// exactly the paper's §V read path. It returns the extent bytes along with
// the number of RBLOCKs transferred (for amplification accounting).
func (d *Device) ReadExtent(ch, eb, off, length int) ([]byte, int, error) {
	if length <= 0 || off < 0 || off+length > d.geo.EBlockBytes {
		return nil, 0, fmt.Errorf("%w: extent [%d,%d)", ErrOutOfRange, off, off+length)
	}
	first := off / d.geo.RBlockBytes
	last := (off + length - 1) / d.geo.RBlockBytes
	n := last - first + 1
	raw, err := d.ReadRBlocks(ch, eb, first, n)
	if err != nil {
		return nil, 0, err
	}
	lo := off - first*d.geo.RBlockBytes
	return raw[lo : lo+length], n, nil
}

// IsWritten reports whether a WBLOCK has been programmed since its last
// erase. Recovery uses this to fix up open-EBLOCK write positions
// (§VIII-C3).
func (d *Device) IsWritten(ch, eb, wb int) (bool, error) {
	if err := d.checkAddr(ch, eb); err != nil {
		return false, err
	}
	if wb < 0 || wb >= d.geo.WBlocksPerEBlock() {
		return false, fmt.Errorf("%w: wb=%d", ErrOutOfRange, wb)
	}
	cs := &d.channels[ch]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return wb < cs.eblocks[eb].nextWBlock, nil
}

// Erase erases an EBLOCK, making all its WBLOCKs writable again. It fails
// with ErrBadBlock once the erase limit is exceeded.
func (d *Device) Erase(ch, eb int) error {
	if err := d.checkAddr(ch, eb); err != nil {
		return err
	}
	cs := &d.channels[ch]
	cs.mu.Lock()
	ebs := &cs.eblocks[eb]
	if ebs.bad {
		cs.mu.Unlock()
		return fmt.Errorf("%w: ch=%d eb=%d", ErrBadBlock, ch, eb)
	}
	ebs.eraseCount++
	d.statsMu.Lock()
	d.stats.EraseAttempts++
	d.statsMu.Unlock()
	if d.geo.EraseLimit > 0 && ebs.eraseCount > d.geo.EraseLimit {
		ebs.bad = true
		cs.mu.Unlock()
		return fmt.Errorf("%w: ch=%d eb=%d after %d erases", ErrBadBlock, ch, eb, ebs.eraseCount)
	}
	if d.shouldFailErase() {
		// The failed pulse consumes time and an erase-limit cycle but
		// changes nothing else: the EBLOCK keeps its programmed content
		// and position, so a caller may retry or retire it.
		cs.busy += d.lat.EraseEBlock
		d.wallWait(d.lat.EraseEBlock)
		cs.mu.Unlock()
		d.statsMu.Lock()
		d.stats.EraseFailures++
		d.statsMu.Unlock()
		if m := d.met.Load(); m != nil {
			m.erases.Inc()
			m.eraseFailures.Inc()
		}
		return fmt.Errorf("%w: ch=%d eb=%d", ErrEraseFailed, ch, eb)
	}
	// The backing arrays survive the erase (see eblockState): resetting
	// the program position makes every WBLOCK unprogrammed, and unread
	// stale bytes cost nothing. This keeps Erase O(1) and lets a warmed
	// device program without allocating.
	ebs.nextWBlock = 0
	ebs.failed = false
	m := d.met.Load()
	trc := d.tracer()
	var t0 time.Time
	if m != nil || trc.Enabled() {
		t0 = time.Now()
	}
	cs.busy += d.lat.EraseEBlock
	d.wallWait(d.lat.EraseEBlock)
	cs.mu.Unlock()
	d.statsMu.Lock()
	d.stats.EBlocksErased++
	d.statsMu.Unlock()
	if m != nil {
		m.erases.Inc()
		m.eraseNS.ObserveDuration(time.Since(t0))
	}
	trc.Span(trace.KFlashErase, 0, 0, 0, t0, int64(ch), int64(eb))
	return nil
}

// EraseCount returns how many times an EBLOCK has been erased.
func (d *Device) EraseCount(ch, eb int) (int, error) {
	if err := d.checkAddr(ch, eb); err != nil {
		return 0, err
	}
	cs := &d.channels[ch]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.eblocks[eb].eraseCount, nil
}

// IsBad reports whether an EBLOCK has exceeded its erase limit.
func (d *Device) IsBad(ch, eb int) (bool, error) {
	if err := d.checkAddr(ch, eb); err != nil {
		return false, err
	}
	cs := &d.channels[ch]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.eblocks[eb].bad, nil
}

// NextProgramPosition returns the next sequential WBLOCK index that a
// program to the EBLOCK must target.
func (d *Device) NextProgramPosition(ch, eb int) (int, error) {
	if err := d.checkAddr(ch, eb); err != nil {
		return 0, err
	}
	cs := &d.channels[ch]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.eblocks[eb].nextWBlock, nil
}

// Stats returns a snapshot of the operation counters.
func (d *Device) Stats() Stats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.stats
}

// ResetStats zeroes the operation counters (virtual time is separate).
func (d *Device) ResetStats() {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	d.stats = Stats{}
}

// ChannelTime returns the accumulated virtual busy time of one channel.
func (d *Device) ChannelTime(ch int) time.Duration {
	if ch < 0 || ch >= d.geo.Channels {
		return 0
	}
	cs := &d.channels[ch]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.busy
}

// MediaTime returns the virtual elapsed media time of the workload so far:
// the busiest channel's accumulated time (channels run in parallel).
func (d *Device) MediaTime() time.Duration {
	var max time.Duration
	for i := range d.channels {
		d.channels[i].mu.Lock()
		if d.channels[i].busy > max {
			max = d.channels[i].busy
		}
		d.channels[i].mu.Unlock()
	}
	return max
}

// ResetTime zeroes all channels' virtual busy time.
func (d *Device) ResetTime() {
	for i := range d.channels {
		d.channels[i].mu.Lock()
		d.channels[i].busy = 0
		d.channels[i].mu.Unlock()
	}
}

// --- per-channel submission queues -----------------------------------------

// BatchCmd is one WBLOCK program destined for a channel's submission queue.
type BatchCmd struct {
	Channel int
	EBlock  int
	WBlock  int
	Data    []byte
	// Src attributes the program for write-amplification accounting
	// (zero value: SrcUnattributed).
	Src Source
}

// BatchResult reports the outcome of a submitted batch.
type BatchResult struct {
	// FailedEBlocks lists the EBLOCKs that suffered a program failure,
	// sorted by (channel, eblock). Commands queued behind a failure in the
	// same EBLOCK are skipped (§VII: the EBLOCK is unwritable until erased).
	FailedEBlocks [][2]int
	// Attempted counts the programs actually issued (failures included,
	// skipped commands excluded).
	Attempted int
}

// Batch tracks an in-flight SubmitBatch until every queued command has
// completed.
type Batch struct {
	mu        sync.Mutex
	done      sync.Cond
	pending   int
	attempted int
	failed    map[[2]int]bool
}

type batchSeg struct {
	b    *Batch
	cmds []BatchCmd
	// A segment carries either programs (above) or reads (below), never both.
	rb    *ReadBatch
	rcmds []ReadCmd
}

// Wait blocks until all of the batch's commands have completed and returns
// the merged result.
func (b *Batch) Wait() BatchResult {
	b.mu.Lock()
	for b.pending > 0 {
		b.done.Wait()
	}
	res := BatchResult{Attempted: b.attempted}
	if len(b.failed) > 0 {
		res.FailedEBlocks = make([][2]int, 0, len(b.failed))
		for k := range b.failed {
			res.FailedEBlocks = append(res.FailedEBlocks, k)
		}
		sort.Slice(res.FailedEBlocks, func(i, j int) bool {
			a, c := res.FailedEBlocks[i], res.FailedEBlocks[j]
			if a[0] != c[0] {
				return a[0] < c[0]
			}
			return a[1] < c[1]
		})
	}
	b.mu.Unlock()
	return res
}

func (b *Batch) finish(attempted int, failed [][2]int) {
	b.mu.Lock()
	b.attempted += attempted
	for _, k := range failed {
		if b.failed == nil {
			b.failed = make(map[[2]int]bool)
		}
		b.failed[k] = true
	}
	if b.pending--; b.pending == 0 {
		b.done.Broadcast()
	}
	b.mu.Unlock()
}

// runSegment executes one channel's commands in order, skipping commands to
// EBLOCKs that failed earlier within this batch.
func (d *Device) runSegment(cmds []BatchCmd) (attempted int, failed [][2]int) {
	var failedSet map[[2]int]bool
	for _, c := range cmds {
		key := [2]int{c.Channel, c.EBlock}
		if failedSet[key] {
			continue
		}
		attempted++
		if err := d.ProgramSrc(c.Src, c.Channel, c.EBlock, c.WBlock, c.Data); err != nil {
			if failedSet == nil {
				failedSet = make(map[[2]int]bool)
			}
			failedSet[key] = true
			failed = append(failed, key)
		}
	}
	return attempted, failed
}

func (d *Device) workerLoop(q chan batchSeg) {
	for seg := range q {
		if seg.rb != nil {
			d.runReadSegment(seg.rb, seg.rcmds)
			if m := d.met.Load(); m != nil && len(seg.rcmds) > 0 {
				m.queueDepth[seg.rcmds[0].Channel].Add(-int64(len(seg.rcmds)))
			}
			seg.rb.finish()
			continue
		}
		attempted, failed := d.runSegment(seg.cmds)
		if m := d.met.Load(); m != nil && len(seg.cmds) > 0 {
			m.queueDepth[seg.cmds[0].Channel].Add(-int64(len(seg.cmds)))
		}
		seg.b.finish(attempted, failed)
	}
}

// queueFor returns channel ch's submission queue, starting its worker on
// first use. Returns nil when the device has been closed.
func (d *Device) queueFor(ch int) chan batchSeg {
	d.workerMu.Lock()
	defer d.workerMu.Unlock()
	if d.closed {
		return nil
	}
	if d.workers == nil {
		d.workers = make([]chan batchSeg, d.geo.Channels)
	}
	if d.workers[ch] == nil {
		q := make(chan batchSeg, 256)
		d.workers[ch] = q
		go d.workerLoop(q)
	}
	return d.workers[ch]
}

// SubmitBatch queues program commands onto the per-channel workers and
// returns a handle to wait on. Commands for the same channel execute in
// slice order (FIFO per channel, preserving the NAND sequential-program
// constraint for commands the caller ordered correctly); commands for
// different channels execute concurrently in wall-clock time. A failed
// program disables the rest of its EBLOCK for the remainder of the batch.
//
// Two situations fall back to synchronous execution in the caller's
// goroutine, in exact slice order: a configured failure probability (the
// shared seeded RNG makes outcomes draw-order dependent, and deterministic
// fault-injection runs require the single-threaded order), and a closed
// device.
func (d *Device) SubmitBatch(cmds []BatchCmd) *Batch {
	b := &Batch{}
	b.done.L = &b.mu
	if len(cmds) == 0 {
		return b
	}
	d.injectMu.Lock()
	sequential := d.failProb > 0
	d.injectMu.Unlock()
	if sequential {
		attempted, failed := d.runSegment(cmds)
		b.attempted, b.pending = attempted, 0
		for _, k := range failed {
			if b.failed == nil {
				b.failed = make(map[[2]int]bool)
			}
			b.failed[k] = true
		}
		return b
	}
	// Split into per-channel segments, preserving order within a channel:
	// a counting scatter into one backing array instead of a map of
	// growing slices, so the split costs three fixed allocations however
	// many commands the batch carries.
	counts := make([]int, d.geo.Channels)
	for _, c := range cmds {
		counts[c.Channel]++
	}
	backing := make([]BatchCmd, len(cmds))
	next := make([]int, d.geo.Channels)
	sum := 0
	for ch, cnt := range counts {
		next[ch] = sum
		sum += cnt
		if cnt > 0 {
			b.pending++
		}
	}
	for _, c := range cmds {
		backing[next[c.Channel]] = c
		next[c.Channel]++
	}
	m := d.met.Load()
	for ch, cnt := range counts {
		if cnt == 0 {
			continue
		}
		seg := backing[next[ch]-cnt : next[ch]]
		q := d.queueFor(ch)
		if q == nil {
			// Closed device: run inline.
			attempted, failed := d.runSegment(seg)
			b.finish(attempted, failed)
			continue
		}
		if m != nil {
			m.queueDepth[ch].Add(int64(cnt))
		}
		q <- batchSeg{b: b, cmds: seg}
	}
	return b
}

// ReadCmd is one extent read destined for a channel's submission queue.
// Index names the result slot in the owning ReadBatch, so callers can
// scatter commands across channels and still collect results in their
// original order.
type ReadCmd struct {
	Channel int
	EBlock  int
	Offset  int
	Length  int
	Index   int
}

// ReadResult is the outcome of one ReadCmd: the extent bytes, the number
// of RBLOCKs transferred (read-amplification accounting), and any media
// error.
type ReadResult struct {
	Data    []byte
	RBlocks int
	Err     error
}

// ReadBatch tracks an in-flight SubmitReads until every queued command
// has completed.
type ReadBatch struct {
	mu      sync.Mutex
	done    sync.Cond
	pending int
	results []ReadResult
}

// Wait blocks until all of the batch's reads have completed and returns
// the results indexed by each command's Index. The returned slice is
// owned by the caller once Wait returns.
func (rb *ReadBatch) Wait() []ReadResult {
	rb.mu.Lock()
	for rb.pending > 0 {
		rb.done.Wait()
	}
	res := rb.results
	rb.mu.Unlock()
	return res
}

func (rb *ReadBatch) finish() {
	rb.mu.Lock()
	if rb.pending--; rb.pending == 0 {
		rb.done.Broadcast()
	}
	rb.mu.Unlock()
}

// runReadSegment executes one channel's reads in order. Each command
// writes only its own result slot, so segments on different channels
// never race; Wait's lock acquisition orders the writes before the
// caller's reads.
func (d *Device) runReadSegment(rb *ReadBatch, cmds []ReadCmd) {
	for _, c := range cmds {
		data, nR, err := d.ReadExtent(c.Channel, c.EBlock, c.Offset, c.Length)
		rb.results[c.Index] = ReadResult{Data: data, RBlocks: nR, Err: err}
	}
}

// SubmitReads queues extent reads onto the per-channel workers — the read
// twin of SubmitBatch — and returns a handle to wait on. n is the number
// of result slots; every command's Index must be in [0, n). Commands for
// the same channel execute in slice order; different channels execute
// concurrently in wall-clock time, which is what makes a multi-channel
// ReadBatch scatter-gather rather than a serial loop. A closed device
// runs the reads inline in the caller's goroutine.
func (d *Device) SubmitReads(n int, cmds []ReadCmd) *ReadBatch {
	rb := &ReadBatch{results: make([]ReadResult, n)}
	rb.done.L = &rb.mu
	if len(cmds) == 0 {
		return rb
	}
	// Counting scatter into one backing array, as in SubmitBatch.
	counts := make([]int, d.geo.Channels)
	for _, c := range cmds {
		counts[c.Channel]++
	}
	backing := make([]ReadCmd, len(cmds))
	next := make([]int, d.geo.Channels)
	sum := 0
	for ch, cnt := range counts {
		next[ch] = sum
		sum += cnt
		if cnt > 0 {
			rb.pending++
		}
	}
	for _, c := range cmds {
		backing[next[c.Channel]] = c
		next[c.Channel]++
	}
	m := d.met.Load()
	for ch, cnt := range counts {
		if cnt == 0 {
			continue
		}
		seg := backing[next[ch]-cnt : next[ch]]
		q := d.queueFor(ch)
		if q == nil {
			// Closed device: run inline.
			d.runReadSegment(rb, seg)
			rb.finish()
			continue
		}
		if m != nil {
			m.queueDepth[ch].Add(int64(cnt))
		}
		q <- batchSeg{rb: rb, rcmds: seg}
	}
	return rb
}

// Close stops the per-channel worker goroutines. Callers must have waited
// on all outstanding batches first. The device itself stays usable:
// subsequent SubmitBatch calls execute synchronously.
func (d *Device) Close() {
	d.workerMu.Lock()
	defer d.workerMu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	for _, q := range d.workers {
		if q != nil {
			close(q)
		}
	}
	d.workers = nil
}
