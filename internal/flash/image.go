package flash

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Device images let tools persist a simulated device across process runs
// (cmd/eleosctl). The format stores the geometry, per-EBLOCK wear state,
// and only the programmed WBLOCKs (sparse).

const (
	imageMagic   = 0x464C4153 // "FLAS"
	imageVersion = 1
)

// ErrBadImage reports a corrupt or incompatible device image.
var ErrBadImage = errors.New("flash: bad device image")

// WriteTo serialises the device state. Each channel is locked while its
// EBLOCKs are serialised; callers wanting a fully consistent image must
// quiesce I/O first.
func (d *Device) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		m, err := bw.Write(b[:])
		n += int64(m)
		return err
	}
	hdr := []uint64{
		imageMagic, imageVersion,
		uint64(d.geo.Channels), uint64(d.geo.EBlocksPerChannel),
		uint64(d.geo.EBlockBytes), uint64(d.geo.WBlockBytes),
		uint64(d.geo.RBlockBytes), uint64(d.geo.EraseLimit),
	}
	for _, v := range hdr {
		if err := put(v); err != nil {
			return n, err
		}
	}
	for ch := range d.channels {
		cs := &d.channels[ch]
		cs.mu.Lock()
		err := func() error {
			for eb := range cs.eblocks {
				ebs := &cs.eblocks[eb]
				flags := uint64(0)
				if ebs.failed {
					flags |= 1
				}
				if ebs.bad {
					flags |= 2
				}
				meta := []uint64{uint64(ebs.eraseCount), uint64(ebs.nextWBlock), flags}
				for _, v := range meta {
					if err := put(v); err != nil {
						return err
					}
				}
				if d.geo.WBlocksPerEBlock() > 64 {
					return fmt.Errorf("flash: image format supports at most 64 wblocks per eblock")
				}
				// Programmed means wb < nextWBlock (backing arrays outlive
				// erases, so non-nil entries no longer imply live data); the
				// bitmap is always a prefix mask.
				written := uint64(1)<<uint(ebs.nextWBlock) - 1
				if err := put(written); err != nil {
					return err
				}
				for wb := 0; wb < ebs.nextWBlock; wb++ {
					data := ebs.wblocks[wb]
					if err := put(uint64(len(data))); err != nil {
						return err
					}
					m, err := bw.Write(data)
					n += int64(m)
					if err != nil {
						return err
					}
					if err := put(uint64(crc32.ChecksumIEEE(data))); err != nil {
						return err
					}
				}
			}
			return nil
		}()
		cs.mu.Unlock()
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadDevice deserialises a device image written by WriteTo.
func ReadDevice(r io.Reader, lat Latency) (*Device, error) {
	br := bufio.NewReader(r)
	get := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadImage, err)
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	hdr := make([]uint64, 8)
	for i := range hdr {
		v, err := get()
		if err != nil {
			return nil, err
		}
		hdr[i] = v
	}
	if hdr[0] != imageMagic || hdr[1] != imageVersion {
		return nil, fmt.Errorf("%w: magic/version", ErrBadImage)
	}
	geo := Geometry{
		Channels:          int(hdr[2]),
		EBlocksPerChannel: int(hdr[3]),
		EBlockBytes:       int(hdr[4]),
		WBlockBytes:       int(hdr[5]),
		RBlockBytes:       int(hdr[6]),
		EraseLimit:        int(hdr[7]),
	}
	d, err := NewDevice(geo, lat)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	for ch := range d.channels {
		for eb := range d.channels[ch].eblocks {
			ebs := &d.channels[ch].eblocks[eb]
			ec, err := get()
			if err != nil {
				return nil, err
			}
			next, err := get()
			if err != nil {
				return nil, err
			}
			flags, err := get()
			if err != nil {
				return nil, err
			}
			if int(next) > geo.WBlocksPerEBlock() {
				return nil, fmt.Errorf("%w: program position %d", ErrBadImage, next)
			}
			ebs.eraseCount = int(ec)
			ebs.nextWBlock = int(next)
			ebs.failed = flags&1 != 0
			ebs.bad = flags&2 != 0
			written, err := get()
			if err != nil {
				return nil, err
			}
			for wb := 0; wb < geo.WBlocksPerEBlock(); wb++ {
				if written&(1<<uint(wb)) == 0 {
					continue
				}
				length, err := get()
				if err != nil {
					return nil, err
				}
				if length > uint64(geo.WBlockBytes) {
					return nil, fmt.Errorf("%w: wblock length %d", ErrBadImage, length)
				}
				// Arrays are sized to the stored payload; reads treat
				// bytes past len as zero padding (and a programmed index
				// the bitmap omitted reads as all zeroes).
				data := make([]byte, length)
				if _, err := io.ReadFull(br, data); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
				}
				crc, err := get()
				if err != nil {
					return nil, err
				}
				if crc32.ChecksumIEEE(data) != uint32(crc) {
					return nil, fmt.Errorf("%w: wblock checksum", ErrBadImage)
				}
				ebs.wblocks[wb] = data
			}
		}
	}
	return d, nil
}

// SaveFile writes the device image to path.
func (d *Device) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := d.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a device image from path.
func LoadFile(path string, lat Latency) (*Device, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDevice(f, lat)
}
