package session

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpenAssignsUniqueNonZeroSIDs(t *testing.T) {
	tb := New(1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		sid := tb.Open()
		if sid == 0 {
			t.Fatal("zero SID")
		}
		if seen[sid] {
			t.Fatal("duplicate SID")
		}
		seen[sid] = true
	}
	if tb.Count() != 1000 {
		t.Fatalf("Count = %d", tb.Count())
	}
}

func TestWSNOrdering(t *testing.T) {
	tb := New(2)
	sid := tb.Open()

	v, high, err := tb.Check(sid, 1)
	if err != nil || v != Apply || high != 0 {
		t.Fatalf("first wsn: %v %d %v", v, high, err)
	}
	// Early: wsn 3 before 1 and 2 applied.
	v, _, err = tb.Check(sid, 3)
	if err != nil || v != Early {
		t.Fatalf("early wsn: %v %v", v, err)
	}
	if err := tb.Advance(sid, 1); err != nil {
		t.Fatal(err)
	}
	// Stale: wsn 1 again.
	v, high, err = tb.Check(sid, 1)
	if err != nil || v != Stale || high != 1 {
		t.Fatalf("stale wsn: %v %d %v", v, high, err)
	}
	// Out-of-order advance rejected.
	if err := tb.Advance(sid, 3); err == nil {
		t.Fatal("out-of-order advance accepted")
	}
	if err := tb.Advance(sid, 2); err != nil {
		t.Fatal(err)
	}
	got, err := tb.HighestWSN(sid)
	if err != nil || got != 2 {
		t.Fatalf("HighestWSN = %d %v", got, err)
	}
}

func TestUnknownSession(t *testing.T) {
	tb := New(3)
	if _, _, err := tb.Check(42, 1); !errors.Is(err, ErrUnknownSession) {
		t.Fatal("expected ErrUnknownSession")
	}
	if err := tb.Advance(42, 1); !errors.Is(err, ErrUnknownSession) {
		t.Fatal("expected ErrUnknownSession")
	}
	if err := tb.Close(42); !errors.Is(err, ErrUnknownSession) {
		t.Fatal("expected ErrUnknownSession")
	}
	if _, err := tb.HighestWSN(42); !errors.Is(err, ErrUnknownSession) {
		t.Fatal("expected ErrUnknownSession")
	}
}

func TestCloseRemovesSession(t *testing.T) {
	tb := New(4)
	sid := tb.Open()
	if !tb.IsOpen(sid) {
		t.Fatal("session should be open")
	}
	if err := tb.Close(sid); err != nil {
		t.Fatal(err)
	}
	if tb.IsOpen(sid) {
		t.Fatal("session should be closed")
	}
	if _, _, err := tb.Check(sid, 1); !errors.Is(err, ErrUnknownSession) {
		t.Fatal("closed session usable")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tb := New(5)
	sids := make([]uint64, 5)
	for i := range sids {
		sids[i] = tb.Open()
		for w := uint64(1); w <= uint64(i); w++ {
			if err := tb.Advance(sids[i], w); err != nil {
				t.Fatal(err)
			}
		}
	}
	img := tb.Serialize()
	tb2 := New(6)
	if err := tb2.Load(img); err != nil {
		t.Fatal(err)
	}
	for i, sid := range sids {
		got, err := tb2.HighestWSN(sid)
		if err != nil || got != uint64(i) {
			t.Fatalf("session %d: wsn %d %v", i, got, err)
		}
	}
	if tb2.Count() != len(sids) {
		t.Fatalf("Count = %d", tb2.Count())
	}
}

func TestSnapshotCorruption(t *testing.T) {
	tb := New(7)
	tb.Open()
	img := tb.Serialize()
	img[9] ^= 0xFF
	if err := New(8).Load(img); !errors.Is(err, ErrBadImage) {
		t.Fatal("corruption not detected")
	}
	if err := New(8).Load(nil); !errors.Is(err, ErrBadImage) {
		t.Fatal("nil image accepted")
	}
	if err := New(8).Load(make([]byte, 64)); !errors.Is(err, ErrBadImage) {
		t.Fatal("zero image accepted")
	}
}

func TestRecoveryHelpers(t *testing.T) {
	tb := New(9)
	tb.RestoreOpen(100, "", 0)
	tb.RestoreOpen(100, "", 0) // idempotent
	if tb.Count() != 1 {
		t.Fatal("RestoreOpen not idempotent")
	}
	tb.AdvanceTo(100, 5)
	tb.AdvanceTo(100, 3) // lower: no-op
	got, _ := tb.HighestWSN(100)
	if got != 5 {
		t.Fatalf("AdvanceTo: %d", got)
	}
	// AdvanceTo on unknown session creates it (replay may see commits for
	// sessions whose open record predates the truncation point but whose
	// snapshot was lost — tolerated defensively).
	tb.AdvanceTo(200, 7)
	got, _ = tb.HighestWSN(200)
	if got != 7 {
		t.Fatal("AdvanceTo should create missing sessions")
	}
	tb.RestoreClose(200)
	if tb.IsOpen(200) {
		t.Fatal("RestoreClose failed")
	}
	tb.DropVolatile()
	if tb.Count() != 0 {
		t.Fatal("DropVolatile failed")
	}
}

func TestSnapshotExcludesClosed(t *testing.T) {
	tb := New(12)
	kept := tb.Open()
	closed := tb.Open()
	if err := tb.Advance(kept, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Close(closed); err != nil {
		t.Fatal(err)
	}
	tb2 := New(13)
	if err := tb2.Load(tb.Serialize()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb2.HighestWSN(closed); !errors.Is(err, ErrUnknownSession) {
		t.Fatal("closed session resurrected by snapshot")
	}
	got, err := tb2.HighestWSN(kept)
	if err != nil || got != 1 {
		t.Fatalf("kept session: wsn %d %v", got, err)
	}
	if tb2.Count() != 1 {
		t.Fatalf("Count = %d", tb2.Count())
	}
}

func TestLoadReplacesContents(t *testing.T) {
	src := New(14)
	srcSID := src.Open()
	src.AdvanceTo(srcSID, 9)

	dst := New(15)
	stale := dst.Open()
	if err := dst.Load(src.Serialize()); err != nil {
		t.Fatal(err)
	}
	// Load is a full replacement, not a merge: pre-existing sessions that
	// the snapshot doesn't carry must be gone.
	if dst.IsOpen(stale) {
		t.Fatal("Load merged instead of replacing")
	}
	got, err := dst.HighestWSN(srcSID)
	if err != nil || got != 9 {
		t.Fatalf("loaded session: wsn %d %v", got, err)
	}
}

// TestRecoveryReplaySnapshotRoundTrip drives the full recovery shape: a
// table rebuilt via the Restore*/AdvanceTo replay helpers must serialize
// to an image that reproduces it exactly — the invariant checkpointing
// after recovery depends on.
func TestRecoveryReplaySnapshotRoundTrip(t *testing.T) {
	tb := New(16)
	tb.RestoreOpen(100, "", 0)
	tb.AdvanceTo(100, 3)
	tb.AdvanceTo(100, 7)
	tb.RestoreOpen(200, "", 0)
	tb.AdvanceTo(200, 1)
	tb.RestoreOpen(300, "", 0)
	tb.RestoreClose(300) // opened then closed before the crash
	tb.AdvanceTo(400, 5) // commit replayed before its open record

	tb2 := New(17)
	if err := tb2.Load(tb.Serialize()); err != nil {
		t.Fatal(err)
	}
	for sid, want := range map[uint64]uint64{100: 7, 200: 1, 400: 5} {
		got, err := tb2.HighestWSN(sid)
		if err != nil || got != want {
			t.Fatalf("sid %d: wsn %d %v, want %d", sid, got, err, want)
		}
	}
	if tb2.IsOpen(300) {
		t.Fatal("closed session survived replay round trip")
	}
	// The recovered table keeps working: the next WSN applies cleanly.
	if v, _, err := tb2.Check(100, 8); err != nil || v != Apply {
		t.Fatalf("post-recovery check: %v %v", v, err)
	}
}

func TestLoadForgedCount(t *testing.T) {
	tb := New(18)
	tb.Open()
	img := tb.Serialize()
	// A forged count field must fail the length bound before it can size
	// anything; recompute the CRC position honestly so only the count is
	// the lie being tested.
	binary.LittleEndian.PutUint32(img[4:], 0xFFFFFFF0)
	if err := New(19).Load(img); !errors.Is(err, ErrBadImage) {
		t.Fatalf("forged count: %v, want ErrBadImage", err)
	}
}

func TestLoadNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(300))
		rng.Read(b)
		tb := New(21)
		if err := tb.Load(b); err == nil {
			// Rare but legal: a random buffer that happens to be a valid
			// image must leave a usable table.
			_ = tb.Count()
		}
	}
}

func TestSerializeAligned(t *testing.T) {
	tb := New(10)
	for i := 0; i < 7; i++ {
		tb.Open()
	}
	if len(tb.Serialize())%64 != 0 {
		t.Fatal("snapshot not 64-byte aligned")
	}
}

// Property: for any sequence of WSNs presented in order 1..n with random
// duplicates interleaved, exactly the fresh ones get Apply and the session
// ends at highest = n.
func TestWSNSequenceQuick(t *testing.T) {
	f := func(dups []uint8) bool {
		tb := New(11)
		sid := tb.Open()
		next := uint64(1)
		for _, d := range dups {
			// Present a stale duplicate d% of the time.
			if next > 1 && d%3 == 0 {
				wsn := uint64(d)%(next-1) + 1
				v, high, err := tb.Check(sid, wsn)
				if err != nil || v != Stale || high != next-1 {
					return false
				}
				continue
			}
			v, _, err := tb.Check(sid, next)
			if err != nil || v != Apply {
				return false
			}
			if tb.Advance(sid, next) != nil {
				return false
			}
			next++
		}
		high, err := tb.HighestWSN(sid)
		return err == nil && high == next-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTenantTagRoundTrip(t *testing.T) {
	tb := New(30)
	a := tb.OpenTenant("alpha", 7)
	b := tb.OpenTenant("", 2)
	c := tb.Open()
	if err := tb.Advance(a, 1); err != nil {
		t.Fatal(err)
	}

	check := func(tab *Table, stage string) {
		t.Helper()
		for _, tc := range []struct {
			sid    uint64
			tenant string
			prio   uint8
		}{{a, "alpha", 7}, {b, "", 2}, {c, "", 0}} {
			tenant, prio, err := tab.Tenant(tc.sid)
			if err != nil {
				t.Fatalf("%s: Tenant(%d): %v", stage, tc.sid, err)
			}
			if tenant != tc.tenant || prio != tc.prio {
				t.Fatalf("%s: Tenant(%d) = (%q,%d), want (%q,%d)", stage, tc.sid, tenant, prio, tc.tenant, tc.prio)
			}
		}
	}
	check(tb, "live")

	// Tags survive the snapshot image.
	tb2 := New(31)
	if err := tb2.Load(tb.Serialize()); err != nil {
		t.Fatal(err)
	}
	check(tb2, "snapshot")
	if got, _ := tb2.HighestWSN(a); got != 1 {
		t.Fatalf("wsn after tagged round trip = %d", got)
	}

	// And the replay helpers.
	tb3 := New(32)
	tb3.AdvanceTo(a, 1) // commit replayed before its open record
	tb3.RestoreOpen(a, "alpha", 7)
	tenant, prio, err := tb3.Tenant(a)
	if err != nil || tenant != "alpha" || prio != 7 {
		t.Fatalf("replayed tag = (%q,%d,%v)", tenant, prio, err)
	}
	if _, _, err := tb3.Tenant(999); !errors.Is(err, ErrUnknownSession) {
		t.Fatal("Tenant on unknown session")
	}
}

// TestLoadLegacyV1Image pins backward compatibility: a checkpoint image
// written before tenant tags existed (magic "SESS", fixed 16-byte
// entries) must still load, with every session on the default tenant.
func TestLoadLegacyV1Image(t *testing.T) {
	entries := []struct{ sid, wsn uint64 }{{11, 3}, {22, 0}}
	raw := make([]byte, 8+len(entries)*16+4)
	binary.LittleEndian.PutUint32(raw[0:], 0x53455353) // "SESS"
	binary.LittleEndian.PutUint32(raw[4:], uint32(len(entries)))
	for i, e := range entries {
		binary.LittleEndian.PutUint64(raw[8+i*16:], e.sid)
		binary.LittleEndian.PutUint64(raw[8+i*16+8:], e.wsn)
	}
	crcAt := 8 + len(entries)*16
	binary.LittleEndian.PutUint32(raw[crcAt:], crc32.ChecksumIEEE(raw[:crcAt]))

	tb := New(33)
	if err := tb.Load(raw); err != nil {
		t.Fatalf("legacy image rejected: %v", err)
	}
	for _, e := range entries {
		got, err := tb.HighestWSN(e.sid)
		if err != nil || got != e.wsn {
			t.Fatalf("sid %d: wsn %d %v", e.sid, got, err)
		}
		tenant, prio, err := tb.Tenant(e.sid)
		if err != nil || tenant != "" || prio != 0 {
			t.Fatalf("sid %d: tag (%q,%d,%v), want default", e.sid, tenant, prio, err)
		}
	}
}

func TestVerdictString(t *testing.T) {
	if Apply.String() != "apply" || Stale.String() != "stale" || Early.String() != "early" {
		t.Fatal("verdict strings wrong")
	}
}
