// Package session implements the durable session table of §III-A2.
//
// A session orders write buffers: within a session each buffer carries a
// write sequence number (WSN), starting at 1 and increasing by one. The
// controller applies and acknowledges buffers in WSN order. A buffer whose
// WSN is not one past the session's highest applied WSN is either stale
// (already applied — the highest WSN is re-acknowledged so the host can
// resolve un-ACKed redos after a crash) or early (its predecessors have
// not arrived yet).
//
// Sessions survive controller crashes: the table is snapshotted in full at
// every checkpoint and session transitions are logged.
package session

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"sync"

	"eleos/internal/addr"
)

// Verdict classifies an incoming (SID, WSN) pair.
type Verdict int

const (
	// Apply: the WSN is exactly next; process the buffer.
	Apply Verdict = iota
	// Stale: the WSN was already applied; re-acknowledge, do not apply.
	Stale
	// Early: predecessors are missing; the caller must wait.
	Early
)

func (v Verdict) String() string {
	switch v {
	case Apply:
		return "apply"
	case Stale:
		return "stale"
	case Early:
		return "early"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Errors.
var (
	ErrUnknownSession = errors.New("session: unknown or closed session")
	ErrBadImage       = errors.New("session: bad snapshot image")
)

type state struct {
	highestWSN uint64
	open       bool
}

// Table tracks sessions. Safe for concurrent use.
type Table struct {
	mu       sync.Mutex
	rng      *rand.Rand
	sessions map[uint64]*state
}

// New creates an empty session table; seed drives SID generation (the
// paper assigns SIDs as random numbers).
func New(seed int64) *Table {
	return &Table{rng: rand.New(rand.NewSource(seed)), sessions: make(map[uint64]*state)}
}

// Open creates a session and returns its SID (never zero; zero denotes
// "no session" on write buffers).
func (t *Table) Open() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		sid := t.rng.Uint64()
		if sid == 0 {
			continue
		}
		if _, exists := t.sessions[sid]; exists {
			continue
		}
		t.sessions[sid] = &state{open: true}
		return sid
	}
}

// Close removes a session.
func (t *Table) Close(sid uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.sessions[sid]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	delete(t.sessions, sid)
	return nil
}

// IsOpen reports whether sid names an open session.
func (t *Table) IsOpen(sid uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.sessions[sid]
	return ok
}

// Check classifies wsn for the session and returns the session's highest
// applied WSN (the value to acknowledge for Stale verdicts).
func (t *Table) Check(sid, wsn uint64) (Verdict, uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[sid]
	if !ok {
		return Stale, 0, fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	switch {
	case wsn == s.highestWSN+1:
		return Apply, s.highestWSN, nil
	case wsn <= s.highestWSN:
		return Stale, s.highestWSN, nil
	default:
		return Early, s.highestWSN, nil
	}
}

// Advance records that wsn was applied. It must be exactly next.
func (t *Table) Advance(sid, wsn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[sid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	if wsn != s.highestWSN+1 {
		return fmt.Errorf("session: advance %d out of order (highest %d)", wsn, s.highestWSN)
	}
	s.highestWSN = wsn
	return nil
}

// HighestWSN returns the session's highest applied WSN.
func (t *Table) HighestWSN(sid uint64) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[sid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	return s.highestWSN, nil
}

// --- recovery --------------------------------------------------------------

// RestoreOpen recreates a session during recovery (idempotent).
func (t *Table) RestoreOpen(sid uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.sessions[sid]; !ok {
		t.sessions[sid] = &state{open: true}
	}
}

// RestoreClose removes a session during recovery (idempotent).
func (t *Table) RestoreClose(sid uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.sessions, sid)
}

// AdvanceTo raises the session's highest WSN to at least wsn (recovery
// replay; records may be re-applied idempotently).
func (t *Table) AdvanceTo(sid, wsn uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[sid]
	if !ok {
		s = &state{open: true}
		t.sessions[sid] = s
	}
	if wsn > s.highestWSN {
		s.highestWSN = wsn
	}
}

// Count returns the number of open sessions.
func (t *Table) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// DropVolatile clears all sessions (crash simulation).
func (t *Table) DropVolatile() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sessions = make(map[uint64]*state)
}

// --- snapshot (flushed in full at each checkpoint, §VIII-B) ----------------

const imageMagic = 0x53455353 // "SESS"

// Serialize returns the full-table snapshot image, 64-byte aligned.
func (t *Table) Serialize() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	sids := make([]uint64, 0, len(t.sessions))
	for sid := range t.sessions {
		sids = append(sids, sid)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	n := 8 + len(sids)*16 + 4
	buf := make([]byte, addr.AlignUp(n))
	binary.LittleEndian.PutUint32(buf[0:], imageMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(sids)))
	off := 8
	for _, sid := range sids {
		binary.LittleEndian.PutUint64(buf[off:], sid)
		binary.LittleEndian.PutUint64(buf[off+8:], t.sessions[sid].highestWSN)
		off += 16
	}
	crc := crc32.ChecksumIEEE(buf[:off])
	binary.LittleEndian.PutUint32(buf[off:], crc)
	return buf
}

// Load replaces the table contents with a snapshot image.
func (t *Table) Load(raw []byte) error {
	if len(raw) < 12 {
		return fmt.Errorf("%w: short", ErrBadImage)
	}
	if binary.LittleEndian.Uint32(raw[0:]) != imageMagic {
		return fmt.Errorf("%w: magic", ErrBadImage)
	}
	n := int(binary.LittleEndian.Uint32(raw[4:]))
	need := 8 + n*16 + 4
	if n < 0 || len(raw) < need {
		return fmt.Errorf("%w: truncated", ErrBadImage)
	}
	if crc32.ChecksumIEEE(raw[:8+n*16]) != binary.LittleEndian.Uint32(raw[8+n*16:]) {
		return fmt.Errorf("%w: checksum", ErrBadImage)
	}
	sessions := make(map[uint64]*state, n)
	for i := 0; i < n; i++ {
		off := 8 + i*16
		sid := binary.LittleEndian.Uint64(raw[off:])
		sessions[sid] = &state{highestWSN: binary.LittleEndian.Uint64(raw[off+8:]), open: true}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sessions = sessions
	return nil
}
