// Package session implements the durable session table of §III-A2.
//
// A session orders write buffers: within a session each buffer carries a
// write sequence number (WSN), starting at 1 and increasing by one. The
// controller applies and acknowledges buffers in WSN order. A buffer whose
// WSN is not one past the session's highest applied WSN is either stale
// (already applied — the highest WSN is re-acknowledged so the host can
// resolve un-ACKed redos after a crash) or early (its predecessors have
// not arrived yet).
//
// Sessions survive controller crashes: the table is snapshotted in full at
// every checkpoint and session transitions are logged.
package session

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"sync"

	"eleos/internal/addr"
)

// Verdict classifies an incoming (SID, WSN) pair.
type Verdict int

const (
	// Apply: the WSN is exactly next; process the buffer.
	Apply Verdict = iota
	// Stale: the WSN was already applied; re-acknowledge, do not apply.
	Stale
	// Early: predecessors are missing; the caller must wait.
	Early
)

func (v Verdict) String() string {
	switch v {
	case Apply:
		return "apply"
	case Stale:
		return "stale"
	case Early:
		return "early"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Errors.
var (
	ErrUnknownSession = errors.New("session: unknown or closed session")
	ErrBadImage       = errors.New("session: bad snapshot image")
)

type state struct {
	highestWSN uint64
	open       bool
	tenant     string
	priority   uint8
}

// MaxTenantLen bounds the tenant tag; it is encoded with a one-byte
// length in both the log record and the snapshot image.
const MaxTenantLen = 255

// Table tracks sessions. Safe for concurrent use.
type Table struct {
	mu       sync.Mutex
	rng      *rand.Rand
	sessions map[uint64]*state
}

// New creates an empty session table; seed drives SID generation (the
// paper assigns SIDs as random numbers).
func New(seed int64) *Table {
	return &Table{rng: rand.New(rand.NewSource(seed)), sessions: make(map[uint64]*state)}
}

// Open creates an untagged session and returns its SID (never zero; zero
// denotes "no session" on write buffers).
func (t *Table) Open() uint64 { return t.OpenTenant("", 0) }

// OpenTenant creates a session tagged with a tenant name and priority.
// The empty tenant is the legacy/default tenant. Tenants longer than
// MaxTenantLen are truncated (the wire codec rejects them before here).
func (t *Table) OpenTenant(tenant string, priority uint8) uint64 {
	if len(tenant) > MaxTenantLen {
		tenant = tenant[:MaxTenantLen]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		sid := t.rng.Uint64()
		if sid == 0 {
			continue
		}
		if _, exists := t.sessions[sid]; exists {
			continue
		}
		t.sessions[sid] = &state{open: true, tenant: tenant, priority: priority}
		return sid
	}
}

// Tenant returns a session's tenant tag and priority.
func (t *Table) Tenant(sid uint64) (string, uint8, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[sid]
	if !ok {
		return "", 0, fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	return s.tenant, s.priority, nil
}

// Close removes a session.
func (t *Table) Close(sid uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.sessions[sid]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	delete(t.sessions, sid)
	return nil
}

// IsOpen reports whether sid names an open session.
func (t *Table) IsOpen(sid uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.sessions[sid]
	return ok
}

// Check classifies wsn for the session and returns the session's highest
// applied WSN (the value to acknowledge for Stale verdicts).
func (t *Table) Check(sid, wsn uint64) (Verdict, uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[sid]
	if !ok {
		return Stale, 0, fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	switch {
	case wsn == s.highestWSN+1:
		return Apply, s.highestWSN, nil
	case wsn <= s.highestWSN:
		return Stale, s.highestWSN, nil
	default:
		return Early, s.highestWSN, nil
	}
}

// Advance records that wsn was applied. It must be exactly next.
func (t *Table) Advance(sid, wsn uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[sid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	if wsn != s.highestWSN+1 {
		return fmt.Errorf("session: advance %d out of order (highest %d)", wsn, s.highestWSN)
	}
	s.highestWSN = wsn
	return nil
}

// HighestWSN returns the session's highest applied WSN.
func (t *Table) HighestWSN(sid uint64) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[sid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownSession, sid)
	}
	return s.highestWSN, nil
}

// --- recovery --------------------------------------------------------------

// RestoreOpen recreates a session during recovery (idempotent). The
// tenant tag rides the SessionOpen log record, so replay restores it; a
// session first seen via AdvanceTo keeps the default tag until (if ever)
// its open record is replayed.
func (t *Table) RestoreOpen(sid uint64, tenant string, priority uint8) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.sessions[sid]; ok {
		// AdvanceTo may have materialized the session before its open
		// record replayed; attach the authoritative tag.
		s.tenant, s.priority = tenant, priority
		return
	}
	t.sessions[sid] = &state{open: true, tenant: tenant, priority: priority}
}

// RestoreClose removes a session during recovery (idempotent).
func (t *Table) RestoreClose(sid uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.sessions, sid)
}

// AdvanceTo raises the session's highest WSN to at least wsn (recovery
// replay; records may be re-applied idempotently).
func (t *Table) AdvanceTo(sid, wsn uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[sid]
	if !ok {
		s = &state{open: true}
		t.sessions[sid] = s
	}
	if wsn > s.highestWSN {
		s.highestWSN = wsn
	}
}

// Count returns the number of open sessions.
func (t *Table) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// DropVolatile clears all sessions (crash simulation).
func (t *Table) DropVolatile() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sessions = make(map[uint64]*state)
}

// --- snapshot (flushed in full at each checkpoint, §VIII-B) ----------------

const (
	imageMagic   = 0x53455353 // "SESS" — v1: fixed 16-byte entries, no tags
	imageMagicV2 = 0x32534553 // "SES2" — variable entries with tenant tags
)

// Serialize returns the full-table snapshot image, 64-byte aligned.
// Always written in the v2 format: sid, wsn, priority, tenant per entry,
// sorted by SID, CRC32 over the prefix.
func (t *Table) Serialize() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	sids := make([]uint64, 0, len(t.sessions))
	n := 8 + 4
	for sid, s := range t.sessions {
		sids = append(sids, sid)
		n += 16 + 2 + len(s.tenant)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	buf := make([]byte, addr.AlignUp(n))
	binary.LittleEndian.PutUint32(buf[0:], imageMagicV2)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(sids)))
	off := 8
	for _, sid := range sids {
		s := t.sessions[sid]
		binary.LittleEndian.PutUint64(buf[off:], sid)
		binary.LittleEndian.PutUint64(buf[off+8:], s.highestWSN)
		buf[off+16] = s.priority
		buf[off+17] = uint8(len(s.tenant))
		copy(buf[off+18:], s.tenant)
		off += 18 + len(s.tenant)
	}
	crc := crc32.ChecksumIEEE(buf[:off])
	binary.LittleEndian.PutUint32(buf[off:], crc)
	return buf
}

// Load replaces the table contents with a snapshot image. Both the
// legacy v1 image (untagged sessions) and the v2 image are accepted, so
// recovery can read checkpoints taken before tenant tags existed.
func (t *Table) Load(raw []byte) error {
	if len(raw) < 12 {
		return fmt.Errorf("%w: short", ErrBadImage)
	}
	magic := binary.LittleEndian.Uint32(raw[0:])
	n := int(binary.LittleEndian.Uint32(raw[4:]))
	// The smallest entry is 16 (v1) / 18 (v2) bytes, so a count beyond
	// len(raw)/16 is forged; bounding it here keeps a hostile image from
	// sizing the map (or spinning the decode loop) off a lie.
	if n < 0 || n > len(raw)/16 {
		return fmt.Errorf("%w: count", ErrBadImage)
	}
	sessions := make(map[uint64]*state, n)
	var off int
	switch magic {
	case imageMagic:
		need := 8 + n*16 + 4
		if len(raw) < need {
			return fmt.Errorf("%w: truncated", ErrBadImage)
		}
		for i := 0; i < n; i++ {
			o := 8 + i*16
			sid := binary.LittleEndian.Uint64(raw[o:])
			sessions[sid] = &state{highestWSN: binary.LittleEndian.Uint64(raw[o+8:]), open: true}
		}
		off = 8 + n*16
	case imageMagicV2:
		off = 8
		for i := 0; i < n; i++ {
			if off+18 > len(raw) {
				return fmt.Errorf("%w: truncated", ErrBadImage)
			}
			sid := binary.LittleEndian.Uint64(raw[off:])
			wsn := binary.LittleEndian.Uint64(raw[off+8:])
			prio := raw[off+16]
			tlen := int(raw[off+17])
			if off+18+tlen+4 > len(raw) {
				return fmt.Errorf("%w: truncated", ErrBadImage)
			}
			tenant := string(raw[off+18 : off+18+tlen])
			sessions[sid] = &state{highestWSN: wsn, open: true, tenant: tenant, priority: prio}
			off += 18 + tlen
		}
	default:
		return fmt.Errorf("%w: magic", ErrBadImage)
	}
	if len(raw) < off+4 {
		return fmt.Errorf("%w: truncated", ErrBadImage)
	}
	if crc32.ChecksumIEEE(raw[:off]) != binary.LittleEndian.Uint32(raw[off:]) {
		return fmt.Errorf("%w: checksum", ErrBadImage)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sessions = sessions
	return nil
}
