package record

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"eleos/internal/addr"
)

func roundTrip(t *testing.T, r Record) Record {
	t.Helper()
	b := Append(nil, r)
	got, n, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode(%v): %v", r, err)
	}
	if n != len(b) {
		t.Fatalf("Decode consumed %d of %d bytes", n, len(b))
	}
	if n != EncodedSize(r) {
		t.Fatalf("EncodedSize = %d, frame = %d", EncodedSize(r), n)
	}
	return got
}

func TestRoundTripAllKinds(t *testing.T) {
	a1 := addr.MustPack(1, 2, 128, 256)
	a2 := addr.MustPack(3, 4, 4096, 1920)
	recs := []Record{
		Update{Action: 7, LPID: 99, Type: addr.PageUser, New: a1},
		GCUpdate{Action: 8, LPID: 100, Type: addr.PageMap, Old: a1, New: a2},
		Commit{Action: 9, AKind: ActionUser, SID: 1234, WSN: 5},
		Commit{Action: 10, AKind: ActionGC},
		Abort{Action: 11},
		Garbage{Action: 12, Pairs: []AddrPair{{LPID: 1, Addr: a1}, {LPID: 2, Addr: a2}}},
		Garbage{Action: 13, Pairs: nil},
		Done{Action: 14},
		OpenEBlock{Channel: 2, EBlock: 17, Stream: StreamGC},
		CloseEBlock{Channel: 1, EBlock: 3, Timestamp: 42, DataWBlocks: 200, MetaWBlocks: 4},
		SessionOpen{SID: 777},
		SessionClose{SID: 777},
	}
	for _, r := range recs {
		got := roundTrip(t, r)
		// Normalise empty vs nil slices for Garbage.
		if g, ok := got.(Garbage); ok && len(g.Pairs) == 0 {
			g.Pairs = nil
			got = g
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("roundtrip mismatch:\n got %#v\nwant %#v", got, r)
		}
		if got.Kind() != r.Kind() {
			t.Errorf("kind mismatch: %v vs %v", got.Kind(), r.Kind())
		}
	}
}

func TestDecodeAllSequence(t *testing.T) {
	var buf []byte
	want := []Record{
		Update{Action: 1, LPID: 5, Type: addr.PageUser, New: addr.MustPack(0, 1, 0, 64)},
		Commit{Action: 1, AKind: ActionUser, SID: 3, WSN: 1},
		Done{Action: 1},
	}
	for _, r := range want {
		buf = Append(buf, r)
	}
	got, err := DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sequence mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestDecodeCorruption(t *testing.T) {
	b := Append(nil, Commit{Action: 1, AKind: ActionUser})
	// Flip a payload byte.
	b2 := append([]byte(nil), b...)
	b2[7] ^= 0xFF
	if _, _, err := Decode(b2); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("expected ErrBadCRC, got %v", err)
	}
	// Truncate.
	if _, _, err := Decode(b[:len(b)-2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("expected ErrTruncated, got %v", err)
	}
	// Empty.
	if _, _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatal("expected ErrTruncated for empty input")
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	b := Append(nil, Done{Action: 1})
	b[0] = byte(kindMax) // unknown kind; CRC covers kind so fix it up by re-CRC
	// Recompute CRC the cheap way: re-frame manually.
	// Easier: corrupt kind and expect either bad CRC or bad kind.
	if _, _, err := Decode(b); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestGarbageLengthLimit(t *testing.T) {
	// A Garbage record claiming more pairs than its payload could hold must
	// be rejected rather than over-allocating.
	g := Garbage{Action: 1, Pairs: []AddrPair{{LPID: 1, Addr: 1}}}
	b := Append(nil, g)
	// Payload: action(8) + count(4) + pair(16). Bump count to a huge value;
	// CRC will catch it first, which is fine — the decode must fail.
	b[13] = 0xFF
	if _, _, err := Decode(b); err == nil {
		t.Fatal("expected error for inflated pair count")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(action, lpid, old, new uint64, ty uint8, sid, wsn uint64) bool {
		recs := []Record{
			Update{Action: action, LPID: addr.LPID(lpid), Type: addr.PageType(ty), New: addr.PhysAddr(new)},
			GCUpdate{Action: action, LPID: addr.LPID(lpid), Type: addr.PageType(ty), Old: addr.PhysAddr(old), New: addr.PhysAddr(new)},
			Commit{Action: action, AKind: ActionKind(ty%4 + 1), SID: sid, WSN: wsn},
		}
		for _, r := range recs {
			b := Append(nil, r)
			got, n, err := Decode(b)
			if err != nil || n != len(b) || !reflect.DeepEqual(got, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGarbageManyPairsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		n := rng.Intn(200)
		g := Garbage{Action: rng.Uint64(), Pairs: make([]AddrPair, n)}
		for j := range g.Pairs {
			g.Pairs[j] = AddrPair{LPID: addr.LPID(rng.Uint64()), Addr: addr.PhysAddr(rng.Uint64())}
		}
		b := Append(nil, g)
		got, _, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		gg := got.(Garbage)
		if len(gg.Pairs) != n {
			t.Fatalf("pair count %d != %d", len(gg.Pairs), n)
		}
		for j := range gg.Pairs {
			if gg.Pairs[j] != g.Pairs[j] {
				t.Fatal("pair mismatch")
			}
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindUpdate; k < kindMax; k++ {
		if k.String() == "" || k.String()[0] == 'i' && k != KindInvalid {
			t.Errorf("kind %d has suspicious String %q", k, k.String())
		}
	}
	if ActionUser.String() != "user" || ActionGC.String() != "gc" ||
		ActionCheckpoint.String() != "checkpoint" || ActionMigration.String() != "migration" {
		t.Error("ActionKind strings wrong")
	}
	if StreamUser.String() != "user" || StreamGC.String() != "gc" || StreamLog.String() != "log" {
		t.Error("StreamKind strings wrong")
	}
}

func TestDecodeAllStopsOnGarbageTail(t *testing.T) {
	buf := Append(nil, Done{Action: 3})
	buf = append(buf, 0xDE, 0xAD) // torn tail
	if _, err := DecodeAll(buf); err == nil {
		t.Fatal("expected error on torn tail")
	}
}
