// Package record defines the redo-log record taxonomy of the ELEOS
// controller and its binary encoding.
//
// ELEOS follows a no-steal policy (§IV-A3): log records carry only redo
// information for the mapping table, the EBLOCK summary table, and the
// session table. Per §VIII-C2, system actions additionally produce lazy
// Garbage records (old addresses whose space becomes reclaimable) followed
// by a Done record, which recovery uses to reconstruct EBLOCK AVAIL values.
//
// Records are individually framed (kind, length, payload, CRC32) so a torn
// log page tail is detected and ignored.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"eleos/internal/addr"
)

// LSN is a log sequence number. LSNs are assigned densely by the log
// manager starting at 1; 0 means "no LSN".
type LSN uint64

// Kind identifies a record type on disk.
type Kind uint8

// Record kinds.
const (
	KindInvalid Kind = iota
	// KindUpdate: a system action wrote an LPAGE (data or table page) to a
	// new physical address.
	KindUpdate
	// KindGCUpdate: a GC/migration action relocated an LPAGE; carries the
	// old address for the conditional install (§VI-C).
	KindGCUpdate
	// KindCommit: a system action committed; forced before installing.
	KindCommit
	// KindAbort: a system action aborted (best effort; absence of a commit
	// record also implies abort).
	KindAbort
	// KindGarbage: lazy old-address records for AVAIL maintenance
	// (§VIII-C2). The listed addresses' space is reclaimable.
	KindGarbage
	// KindDone: no more records will be produced for the action.
	KindDone
	// KindOpenEBlock: an EBLOCK was opened for a write stream.
	KindOpenEBlock
	// KindCloseEBlock: an EBLOCK was closed (metadata flushed) (§VIII-C).
	KindCloseEBlock
	// KindSessionOpen / KindSessionClose: session lifetime (§III-A2).
	KindSessionOpen
	KindSessionClose
	// KindFreeEBlock: an EBLOCK was erased and returned to the free list.
	KindFreeEBlock
	kindMax
)

func (k Kind) String() string {
	switch k {
	case KindUpdate:
		return "update"
	case KindGCUpdate:
		return "gcupdate"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindGarbage:
		return "garbage"
	case KindDone:
		return "done"
	case KindOpenEBlock:
		return "open-eblock"
	case KindCloseEBlock:
		return "close-eblock"
	case KindSessionOpen:
		return "session-open"
	case KindSessionClose:
		return "session-close"
	case KindFreeEBlock:
		return "free-eblock"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(k))
	}
}

// ActionKind classifies the system action that produced a record.
type ActionKind uint8

// Action kinds (§IV, §VI, §VII, §VIII-B).
const (
	ActionUser ActionKind = iota + 1
	ActionGC
	ActionCheckpoint
	ActionMigration
)

func (k ActionKind) String() string {
	switch k {
	case ActionUser:
		return "user"
	case ActionGC:
		return "gc"
	case ActionCheckpoint:
		return "checkpoint"
	case ActionMigration:
		return "migration"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(k))
	}
}

// StreamKind identifies which open-EBLOCK write stream an EBLOCK serves
// (§IV-A1: one open EBLOCK per type of write).
type StreamKind uint8

const (
	StreamUser StreamKind = iota + 1
	StreamGC
	StreamLog
)

func (k StreamKind) String() string {
	switch k {
	case StreamUser:
		return "user"
	case StreamGC:
		return "gc"
	case StreamLog:
		return "log"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(k))
	}
}

// Record is a decoded log record.
type Record interface {
	Kind() Kind
	encodePayload(dst []byte) []byte
}

// AddrPair names an LPAGE instance at a particular physical address.
type AddrPair struct {
	LPID addr.LPID
	Addr addr.PhysAddr
}

// Update records that action Action stored the LPAGE (LPID, Type) at New.
type Update struct {
	Action uint64
	LPID   addr.LPID
	Type   addr.PageType
	New    addr.PhysAddr
}

// GCUpdate records a relocation of (LPID, Type) from Old to New by a GC or
// migration action; installed conditionally.
type GCUpdate struct {
	Action uint64
	LPID   addr.LPID
	Type   addr.PageType
	Old    addr.PhysAddr
	New    addr.PhysAddr
}

// Commit marks action Action committed. SID/WSN are zero for sessionless
// writes and for GC/checkpoint actions.
type Commit struct {
	Action uint64
	AKind  ActionKind
	SID    uint64
	WSN    uint64
}

// Abort marks action Action aborted.
type Abort struct {
	Action uint64
}

// Garbage lists addresses whose storage became reclaimable due to action
// Action (old versions overwritten by a commit, or relocations abandoned by
// a conditional-install failure).
type Garbage struct {
	Action uint64
	Pairs  []AddrPair
}

// Done marks that action Action will produce no further records.
type Done struct {
	Action uint64
}

// OpenEBlock records that (Channel, EBlock) was opened for Stream.
type OpenEBlock struct {
	Channel uint32
	EBlock  uint32
	Stream  StreamKind
}

// CloseEBlock records that (Channel, EBlock) was closed with its metadata
// flushed; Timestamp is the EBLOCK's closing timestamp (update sequence
// number proxy, §IV-A1).
type CloseEBlock struct {
	Channel     uint32
	EBlock      uint32
	Timestamp   uint64
	DataWBlocks uint32
	MetaWBlocks uint32
}

// SessionOpen records creation of session SID, tagged with the opening
// client's tenant name and priority (empty/zero for untagged sessions).
type SessionOpen struct {
	SID      uint64
	Priority uint8
	Tenant   string
}

// SessionClose records closing of session SID.
type SessionClose struct {
	SID uint64
}

// FreeEBlock records that (Channel, EBlock) was erased and freed.
type FreeEBlock struct {
	Channel uint32
	EBlock  uint32
}

func (Update) Kind() Kind       { return KindUpdate }
func (GCUpdate) Kind() Kind     { return KindGCUpdate }
func (Commit) Kind() Kind       { return KindCommit }
func (Abort) Kind() Kind        { return KindAbort }
func (Garbage) Kind() Kind      { return KindGarbage }
func (Done) Kind() Kind         { return KindDone }
func (OpenEBlock) Kind() Kind   { return KindOpenEBlock }
func (CloseEBlock) Kind() Kind  { return KindCloseEBlock }
func (SessionOpen) Kind() Kind  { return KindSessionOpen }
func (SessionClose) Kind() Kind { return KindSessionClose }
func (FreeEBlock) Kind() Kind   { return KindFreeEBlock }

func putU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func putU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }

func (r Update) encodePayload(dst []byte) []byte {
	dst = putU64(dst, r.Action)
	dst = putU64(dst, uint64(r.LPID))
	dst = append(dst, byte(r.Type))
	dst = putU64(dst, uint64(r.New))
	return dst
}

func (r GCUpdate) encodePayload(dst []byte) []byte {
	dst = putU64(dst, r.Action)
	dst = putU64(dst, uint64(r.LPID))
	dst = append(dst, byte(r.Type))
	dst = putU64(dst, uint64(r.Old))
	dst = putU64(dst, uint64(r.New))
	return dst
}

func (r Commit) encodePayload(dst []byte) []byte {
	dst = putU64(dst, r.Action)
	dst = append(dst, byte(r.AKind))
	dst = putU64(dst, r.SID)
	dst = putU64(dst, r.WSN)
	return dst
}

func (r Abort) encodePayload(dst []byte) []byte { return putU64(dst, r.Action) }

func (r Garbage) encodePayload(dst []byte) []byte {
	dst = putU64(dst, r.Action)
	dst = putU32(dst, uint32(len(r.Pairs)))
	for _, p := range r.Pairs {
		dst = putU64(dst, uint64(p.LPID))
		dst = putU64(dst, uint64(p.Addr))
	}
	return dst
}

func (r Done) encodePayload(dst []byte) []byte { return putU64(dst, r.Action) }

func (r OpenEBlock) encodePayload(dst []byte) []byte {
	dst = putU32(dst, r.Channel)
	dst = putU32(dst, r.EBlock)
	return append(dst, byte(r.Stream))
}

func (r CloseEBlock) encodePayload(dst []byte) []byte {
	dst = putU32(dst, r.Channel)
	dst = putU32(dst, r.EBlock)
	dst = putU64(dst, r.Timestamp)
	dst = putU32(dst, r.DataWBlocks)
	dst = putU32(dst, r.MetaWBlocks)
	return dst
}

func (r SessionOpen) encodePayload(dst []byte) []byte {
	dst = putU64(dst, r.SID)
	dst = append(dst, r.Priority)
	t := r.Tenant
	if len(t) > 255 {
		t = t[:255]
	}
	dst = append(dst, byte(len(t)))
	return append(dst, t...)
}

func (r SessionClose) encodePayload(dst []byte) []byte { return putU64(dst, r.SID) }

func (r FreeEBlock) encodePayload(dst []byte) []byte {
	dst = putU32(dst, r.Channel)
	return putU32(dst, r.EBlock)
}

// Frame layout: kind(1) | payloadLen(4) | payload | crc32(4) where the CRC
// covers kind, payloadLen and payload.
const frameOverhead = 1 + 4 + 4

// EncodedSize returns the framed size of r.
func EncodedSize(r Record) int {
	return frameOverhead + len(r.encodePayload(nil))
}

// Append appends the framed encoding of r to dst.
func Append(dst []byte, r Record) []byte {
	start := len(dst)
	dst = append(dst, byte(r.Kind()))
	dst = putU32(dst, 0) // payload length placeholder
	dst = r.encodePayload(dst)
	payloadLen := len(dst) - start - 5
	binary.LittleEndian.PutUint32(dst[start+1:], uint32(payloadLen))
	crc := crc32.ChecksumIEEE(dst[start:])
	return putU32(dst, crc)
}

// Decode errors.
var (
	ErrTruncated = errors.New("record: truncated frame")
	ErrBadCRC    = errors.New("record: checksum mismatch")
	ErrBadKind   = errors.New("record: unknown kind")
	ErrMalformed = errors.New("record: malformed payload")
)

type reader struct {
	b   []byte
	err error
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = ErrMalformed
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.err = ErrMalformed
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = ErrMalformed
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b) < n {
		r.err = ErrMalformed
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return ErrMalformed
	}
	return nil
}

// Decode decodes one framed record from the front of b, returning the
// record and the number of bytes consumed.
func Decode(b []byte) (Record, int, error) {
	if len(b) < frameOverhead {
		return nil, 0, ErrTruncated
	}
	kind := Kind(b[0])
	payloadLen := int(binary.LittleEndian.Uint32(b[1:]))
	total := frameOverhead + payloadLen
	if payloadLen < 0 || len(b) < total {
		return nil, 0, ErrTruncated
	}
	wantCRC := binary.LittleEndian.Uint32(b[5+payloadLen:])
	if crc32.ChecksumIEEE(b[:5+payloadLen]) != wantCRC {
		return nil, 0, ErrBadCRC
	}
	rd := &reader{b: b[5 : 5+payloadLen]}
	var rec Record
	switch kind {
	case KindUpdate:
		r := Update{Action: rd.u64(), LPID: addr.LPID(rd.u64())}
		r.Type = addr.PageType(rd.u8())
		r.New = addr.PhysAddr(rd.u64())
		rec = r
	case KindGCUpdate:
		r := GCUpdate{Action: rd.u64(), LPID: addr.LPID(rd.u64())}
		r.Type = addr.PageType(rd.u8())
		r.Old = addr.PhysAddr(rd.u64())
		r.New = addr.PhysAddr(rd.u64())
		rec = r
	case KindCommit:
		r := Commit{Action: rd.u64()}
		r.AKind = ActionKind(rd.u8())
		r.SID = rd.u64()
		r.WSN = rd.u64()
		rec = r
	case KindAbort:
		rec = Abort{Action: rd.u64()}
	case KindGarbage:
		r := Garbage{Action: rd.u64()}
		n := int(rd.u32())
		if rd.err == nil && n > payloadLen/16 {
			return nil, 0, ErrMalformed
		}
		r.Pairs = make([]AddrPair, 0, n)
		for i := 0; i < n; i++ {
			p := AddrPair{LPID: addr.LPID(rd.u64()), Addr: addr.PhysAddr(rd.u64())}
			r.Pairs = append(r.Pairs, p)
		}
		rec = r
	case KindDone:
		rec = Done{Action: rd.u64()}
	case KindOpenEBlock:
		r := OpenEBlock{Channel: rd.u32(), EBlock: rd.u32()}
		r.Stream = StreamKind(rd.u8())
		rec = r
	case KindCloseEBlock:
		r := CloseEBlock{Channel: rd.u32(), EBlock: rd.u32()}
		r.Timestamp = rd.u64()
		r.DataWBlocks = rd.u32()
		r.MetaWBlocks = rd.u32()
		rec = r
	case KindSessionOpen:
		r := SessionOpen{SID: rd.u64()}
		if payloadLen > 8 {
			r.Priority = rd.u8()
			r.Tenant = string(rd.bytes(int(rd.u8())))
		}
		// payloadLen == 8 is the pre-tenant encoding: untagged session.
		rec = r
	case KindSessionClose:
		rec = SessionClose{SID: rd.u64()}
	case KindFreeEBlock:
		rec = FreeEBlock{Channel: rd.u32(), EBlock: rd.u32()}
	default:
		return nil, 0, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
	if err := rd.done(); err != nil {
		return nil, 0, err
	}
	return rec, total, nil
}

// DecodeAll decodes every framed record in b (e.g. a log page payload).
func DecodeAll(b []byte) ([]Record, error) {
	var out []Record
	for len(b) > 0 {
		rec, n, err := Decode(b)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
		b = b[n:]
	}
	return out, nil
}
