package record

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanicsOnRandomBytes hammers Decode with arbitrary input;
// it must return errors, never panic or over-allocate.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		rec, n, err := Decode(b)
		if err == nil {
			if rec == nil || n <= 0 || n > len(b) {
				t.Fatalf("inconsistent success: rec=%v n=%d len=%d", rec, n, len(b))
			}
		}
	}
}

// TestDecodeMutatedValidFrames flips bytes of valid frames: every mutation
// must be either detected or decode to a well-formed record.
func TestDecodeMutatedValidFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := Append(nil, Update{Action: 5, LPID: 10, Type: 1, New: 0xABCD})
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		}
		rec, n, err := Decode(b)
		if err == nil && (rec == nil || n <= 0) {
			t.Fatal("inconsistent success on mutated frame")
		}
	}
}

// TestDecodeAllRandom ensures DecodeAll terminates on arbitrary input.
func TestDecodeAllRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(500))
		rng.Read(b)
		_, _ = DecodeAll(b)
	}
}
