package wal

import (
	"sync"
	"testing"

	"eleos/internal/metrics"
	"eleos/internal/record"
)

// TestStatsConcurrentWithGroupCommit is the regression test for the
// Stats/group-commit race: flushLocked drops l.mu around the physical
// page program and bumps PageWrites/RecordsFlushed on return, so the old
// struct-field Stats read could observe the counters mid-update. Stats
// now reads lock-free atomics; this test hammers Force from many
// committers while a reader polls Stats, and -race must stay clean.
// It also asserts the counters are monotonic across polls and exact at
// the end.
func TestStatsConcurrentWithGroupCommit(t *testing.T) {
	const (
		committers   = 8
		perCommitter = 200
	)
	sink := newFakeSink(4096)
	l, err := New(sink, 4096)
	if err != nil {
		t.Fatal(err)
	}

	var readers sync.WaitGroup
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readers.Add(1)
	go func() {
		defer readers.Done()
		var prev Stats
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := l.Stats()
			if s.Appends < prev.Appends || s.ForceCalls < prev.ForceCalls ||
				s.FreeRides < prev.FreeRides || s.PageWrites < prev.PageWrites ||
				s.RecordsFlushed < prev.RecordsFlushed {
				t.Errorf("stats went backwards: %+v -> %+v", prev, s)
				return
			}
			prev = s
		}
	}()

	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perCommitter; i++ {
				if _, err := l.AppendForce(record.Commit{Action: uint64(id*perCommitter + i + 1)}); err != nil {
					t.Errorf("committer %d: %v", id, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	s := l.Stats()
	wantAppends := int64(committers * perCommitter)
	if s.Appends != wantAppends {
		t.Fatalf("Appends = %d, want %d", s.Appends, wantAppends)
	}
	if s.ForceCalls != wantAppends {
		t.Fatalf("ForceCalls = %d, want %d", s.ForceCalls, wantAppends)
	}
	if s.RecordsFlushed != wantAppends {
		t.Fatalf("RecordsFlushed = %d, want %d", s.RecordsFlushed, wantAppends)
	}
	if s.PageWrites == 0 || s.PageWrites > wantAppends {
		t.Fatalf("PageWrites = %d out of range", s.PageWrites)
	}
	if got := s.GroupCommitSize(); got < 1 {
		t.Fatalf("GroupCommitSize = %v, want >= 1", got)
	}
}

// TestWithRegistryExportsCounters checks the registry migration: a log
// built with WithRegistry records into the shared registry under the
// wal.* names, Stats() mirrors those counters, and the group-commit
// size histogram fills.
func TestWithRegistryExportsCounters(t *testing.T) {
	reg := metrics.New()
	sink := newFakeSink(4096)
	l, err := New(sink, 4096, WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.AppendForce(record.Commit{Action: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter("wal.appends"); got != 10 {
		t.Fatalf("wal.appends = %d, want 10", got)
	}
	if got := snap.Counter("wal.force_calls"); got != 10 {
		t.Fatalf("wal.force_calls = %d, want 10", got)
	}
	if got := snap.Counter("wal.records_flushed"); got != 10 {
		t.Fatalf("wal.records_flushed = %d, want 10", got)
	}
	s := l.Stats()
	if s.Appends != snap.Counter("wal.appends") || s.PageWrites != snap.Counter("wal.page_writes") {
		t.Fatalf("Stats %+v disagrees with registry snapshot", s)
	}
	hv := snap.Histogram("wal.group_commit_records")
	if hv == nil || hv.Count != s.PageWrites {
		t.Fatalf("wal.group_commit_records count = %+v, want %d entries", hv, s.PageWrites)
	}
	if hv.Sum != s.RecordsFlushed {
		t.Fatalf("group-commit histogram sum = %d, want %d", hv.Sum, s.RecordsFlushed)
	}
}
