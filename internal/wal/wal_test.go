package wal

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"eleos/internal/record"
)

// fakeSink provisions slots round-robin across channels (as the real
// provisioner does, so that forward candidates do not all share one
// EBLOCK) and mimics flash failure semantics: a failed program disables
// the rest of its EBLOCK.
type fakeSink struct {
	pageBytes  int
	wblocksPer int
	channels   int
	seq        int
	programs   map[Slot][]byte
	fail       map[Slot]bool
	disabled   map[[2]int]bool // {channel,eblock} disabled after failure
	provCount  int
}

func newFakeSink(pageBytes int) *fakeSink {
	return &fakeSink{
		pageBytes:  pageBytes,
		wblocksPer: 8,
		channels:   2,
		programs:   make(map[Slot][]byte),
		fail:       make(map[Slot]bool),
		disabled:   make(map[[2]int]bool),
	}
}

func (f *fakeSink) ProvisionSlots(n int) ([]Slot, error) {
	out := make([]Slot, 0, n)
	for i := 0; i < n; i++ {
		s := Slot{
			Channel: f.seq % f.channels,
			WBlock:  (f.seq / f.channels) % f.wblocksPer,
			EBlock:  f.seq / (f.channels * f.wblocksPer),
		}
		out = append(out, s)
		f.seq++
	}
	f.provCount += n
	return out, nil
}

func (f *fakeSink) Program(s Slot, page []byte) error {
	if f.disabled[[2]int{s.Channel, s.EBlock}] {
		return errors.New("fake: eblock disabled")
	}
	if f.fail[s] {
		delete(f.fail, s)
		f.disabled[[2]int{s.Channel, s.EBlock}] = true
		return errors.New("fake: program failed")
	}
	if _, dup := f.programs[s]; dup {
		return errors.New("fake: write twice")
	}
	cp := make([]byte, len(page))
	copy(cp, page)
	f.programs[s] = cp
	return nil
}

func (f *fakeSink) Read(s Slot) ([]byte, error) {
	if p, ok := f.programs[s]; ok {
		return append([]byte(nil), p...), nil
	}
	return make([]byte, f.pageBytes), nil
}

const testPageBytes = 1024

func newTestLog(t *testing.T) (*Log, *fakeSink) {
	t.Helper()
	sink := newFakeSink(testPageBytes)
	l, err := New(sink, testPageBytes)
	if err != nil {
		t.Fatal(err)
	}
	return l, sink
}

func TestAppendAssignsDenseLSNs(t *testing.T) {
	l, _ := newTestLog(t)
	for i := 1; i <= 10; i++ {
		lsn, err := l.Append(record.Done{Action: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != record.LSN(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if l.NextLSN() != 11 {
		t.Fatalf("NextLSN = %d", l.NextLSN())
	}
	if l.DurableLSN() != 0 {
		t.Fatal("nothing should be durable before Force")
	}
}

func TestForceMakesDurable(t *testing.T) {
	l, sink := newTestLog(t)
	if _, err := l.AppendForce(record.Done{Action: 1}, record.Done{Action: 2}); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() != 2 {
		t.Fatalf("DurableLSN = %d", l.DurableLSN())
	}
	if len(sink.programs) != 1 {
		t.Fatalf("expected 1 page written, got %d", len(sink.programs))
	}
	// Force with empty buffer is a no-op.
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if len(sink.programs) != 1 {
		t.Fatal("empty Force should not write")
	}
}

func TestPageRollsOverWhenFull(t *testing.T) {
	l, sink := newTestLog(t)
	// Fill beyond one page.
	recSize := record.EncodedSize(record.Done{Action: 1})
	perPage := l.Capacity() / recSize
	for i := 0; i < perPage+1; i++ {
		if _, err := l.Append(record.Done{Action: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// The first page must have been flushed automatically.
	if len(sink.programs) != 1 {
		t.Fatalf("expected auto-flush of first page, got %d pages", len(sink.programs))
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	if len(sink.programs) != 2 {
		t.Fatalf("expected 2 pages, got %d", len(sink.programs))
	}
}

func TestRecordTooLarge(t *testing.T) {
	l, _ := newTestLog(t)
	pairs := make([]record.AddrPair, testPageBytes/16+10)
	_, err := l.Append(record.Garbage{Action: 1, Pairs: pairs})
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("expected ErrRecordTooLarge, got %v", err)
	}
}

func TestChainTraversal(t *testing.T) {
	l, sink := newTestLog(t)
	start, err := l.StartCandidates()
	if err != nil {
		t.Fatal(err)
	}
	var want []record.Record
	for i := 0; i < 100; i++ {
		r := record.Update{Action: uint64(i), LPID: 5, Type: 1, New: 77}
		want = append(want, r)
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if err := l.Force(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	var got []record.Record
	var lsns []record.LSN
	tail, err := FollowChain(sink, start, 1, func(p *ChainPage) error {
		lsn := p.FirstLSN
		for _, r := range p.Records {
			got = append(got, r)
			lsns = append(lsns, lsn)
			lsn++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %d records, want %d (or content mismatch)", len(got), len(want))
	}
	for i, lsn := range lsns {
		if lsn != record.LSN(i+1) {
			t.Fatalf("lsn[%d] = %d", i, lsn)
		}
	}
	if tail.LastLSN != 100 {
		t.Fatalf("tail.LastLSN = %d", tail.LastLSN)
	}
	if len(tail.Candidates) != numForward {
		t.Fatalf("tail candidates = %d", len(tail.Candidates))
	}
}

func TestWriteFailureFailsOverToCandidate(t *testing.T) {
	l, sink := newTestLog(t)
	start, _ := l.StartCandidates()
	if _, err := l.AppendForce(record.Done{Action: 1}); err != nil {
		t.Fatal(err)
	}
	// Fail the next page's home slot; it must be written to candidate 2.
	slot2 := Slot{Channel: 1, EBlock: 0, WBlock: 0}
	sink.fail[slot2] = true
	if _, err := l.AppendForce(record.Done{Action: 2}); err != nil {
		t.Fatalf("failover should succeed: %v", err)
	}
	// Chain traversal must still see both records, skipping the bad slot.
	var actions []uint64
	tail, err := FollowChain(sink, start, 1, func(p *ChainPage) error {
		for _, r := range p.Records {
			actions = append(actions, r.(record.Done).Action)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(actions, []uint64{1, 2}) {
		t.Fatalf("actions = %v", actions)
	}
	if tail.LastLSN != 2 {
		t.Fatalf("tail.LastLSN = %d", tail.LastLSN)
	}
}

func TestLogDeadAfterThreeFailures(t *testing.T) {
	l, sink := newTestLog(t)
	if _, err := l.AppendForce(record.Done{Action: 1}); err != nil {
		t.Fatal(err)
	}
	// Provision order alternates channels: {0,0,0} {1,0,0} {0,0,1} {1,0,1}.
	// Fail the next two candidate slots; their failures disable both
	// channel-0 and channel-1 eblock 0, so the third candidate (also in
	// channel 0, eblock 0) fails too — the log must die.
	sink.fail[Slot{1, 0, 0}] = true
	sink.fail[Slot{0, 0, 1}] = true
	_, err := l.AppendForce(record.Done{Action: 2})
	if !errors.Is(err, ErrLogDead) {
		t.Fatalf("expected ErrLogDead, got %v", err)
	}
	if !l.Dead() {
		t.Fatal("log should be dead")
	}
	if _, err := l.Append(record.Done{Action: 3}); !errors.Is(err, ErrLogDead) {
		t.Fatal("appends after death must fail")
	}
}

func TestResumeContinuesChain(t *testing.T) {
	l, sink := newTestLog(t)
	start, _ := l.StartCandidates()
	if _, err := l.AppendForce(record.Done{Action: 1}, record.Done{Action: 2}); err != nil {
		t.Fatal(err)
	}
	// Simulate crash: follow chain, then resume and keep writing.
	tail, err := FollowChain(sink, start, 1, func(p *ChainPage) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Resume(sink, testPageBytes, tail.LastLSN+1, tail.Candidates, tail.Pages)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l2.AppendForce(record.Done{Action: 3})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 {
		t.Fatalf("resumed lsn = %d, want 3", lsn)
	}
	var actions []uint64
	if _, err := FollowChain(sink, start, 1, func(p *ChainPage) error {
		for _, r := range p.Records {
			actions = append(actions, r.(record.Done).Action)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(actions, []uint64{1, 2, 3}) {
		t.Fatalf("actions = %v", actions)
	}
}

func TestPageForAndTruncate(t *testing.T) {
	l, _ := newTestLog(t)
	for i := 1; i <= 3; i++ {
		if _, err := l.AppendForce(record.Done{Action: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Three pages, one record each.
	s, first, ok := l.PageFor(2)
	if !ok || first != 2 {
		t.Fatalf("PageFor(2) = %v %d %v", s, first, ok)
	}
	if _, _, ok := l.PageFor(4); ok {
		t.Fatal("PageFor beyond durable should fail")
	}
	l.Truncate(3)
	if got := l.Pages(); len(got) != 1 || got[0].First != 3 {
		t.Fatalf("after truncate: %+v", got)
	}
	// After truncation, the earliest page following LSN 1 is the survivor.
	if _, first, ok := l.PageFor(1); !ok || first != 3 {
		t.Fatalf("PageFor(1) after truncate: first=%d ok=%v", first, ok)
	}
	s2, first2, ok := l.LastPage()
	if !ok || first2 != 3 || !s2.IsValid() {
		t.Fatal("LastPage wrong")
	}
}

func TestFollowChainIgnoresStalePages(t *testing.T) {
	// A page with the right format but wrong firstLSN (stale generation)
	// must not be treated as the successor.
	sink := newFakeSink(testPageBytes)
	l, _ := New(sink, testPageBytes)
	start, _ := l.StartCandidates()
	if _, err := l.AppendForce(record.Done{Action: 1}); err != nil {
		t.Fatal(err)
	}
	// Manually place a stale page (firstLSN 99) at the next candidate.
	stale := encodePage(testPageBytes, 99, 0, nil, nil)
	if err := sink.Program(Slot{0, 0, 1}, stale); err != nil {
		t.Fatal(err)
	}
	var n int
	tail, err := FollowChain(sink, start, 1, func(p *ChainPage) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || tail.LastLSN != 1 {
		t.Fatalf("stale page was followed: n=%d last=%d", n, tail.LastLSN)
	}
}

func TestDecodePageRejectsCorruption(t *testing.T) {
	page := encodePage(testPageBytes, 1, 1, record.Append(nil, record.Done{Action: 1}), []Slot{{0, 0, 1}})
	if _, err := DecodePage(Slot{}, page); err != nil {
		t.Fatalf("valid page rejected: %v", err)
	}
	for _, off := range []int{0, 8, 61, headerSize + 2} {
		bad := append([]byte(nil), page...)
		bad[off] ^= 0xFF
		if _, err := DecodePage(Slot{}, bad); !errors.Is(err, ErrBadPage) {
			t.Fatalf("corruption at %d not detected: %v", off, err)
		}
	}
	if _, err := DecodePage(Slot{}, page[:10]); !errors.Is(err, ErrBadPage) {
		t.Fatal("short page not rejected")
	}
	zero := make([]byte, testPageBytes)
	if _, err := DecodePage(Slot{}, zero); !errors.Is(err, ErrBadPage) {
		t.Fatal("unwritten page not rejected")
	}
}

func TestStartCandidatesStable(t *testing.T) {
	l, _ := newTestLog(t)
	a, err := l.StartCandidates()
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.StartCandidates()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("StartCandidates not stable: %v vs %v", a, b)
	}
	// First durable page must land on the first candidate.
	if _, err := l.AppendForce(record.Done{Action: 1}); err != nil {
		t.Fatal(err)
	}
	s, _, ok := l.LastPage()
	if !ok || s != a[0] {
		t.Fatalf("first page at %v, want %v", s, a[0])
	}
}

func TestNewRejectsTinyPages(t *testing.T) {
	if _, err := New(newFakeSink(16), 16); !errors.Is(err, ErrPageTooSmall) {
		t.Fatal("tiny page size accepted")
	}
}

func TestSlotString(t *testing.T) {
	if NoSlot.String() != "slot(none)" {
		t.Fatal(NoSlot.String())
	}
	s := Slot{1, 2, 3}
	if s.String() != fmt.Sprintf("slot(ch=%d eb=%d wb=%d)", 1, 2, 3) {
		t.Fatal(s.String())
	}
}

func TestManyPagesChainIntegrity(t *testing.T) {
	l, sink := newTestLog(t)
	start, _ := l.StartCandidates()
	total := 0
	for i := 0; i < 500; i++ {
		if _, err := l.Append(record.Update{Action: uint64(i), LPID: 1, Type: 1, New: 2}); err != nil {
			t.Fatal(err)
		}
		total++
		if i%13 == 0 {
			if err := l.Force(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	n := 0
	tail, err := FollowChain(sink, start, 1, func(p *ChainPage) error {
		n += len(p.Records)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != total || tail.LastLSN != record.LSN(total) {
		t.Fatalf("chain saw %d records (last %d), want %d", n, tail.LastLSN, total)
	}
	if len(tail.Pages) == 0 {
		t.Fatal("tail should report page index")
	}
}
