package wal

import (
	"testing"

	"eleos/internal/record"
)

func BenchmarkAppend(b *testing.B) {
	l, _ := New(newFakeSink(32<<10), 32<<10)
	r := record.Update{Action: 1, LPID: 2, Type: 1, New: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendForce(b *testing.B) {
	l, _ := New(newFakeSink(32<<10), 32<<10)
	r := record.Commit{Action: 1, AKind: record.ActionUser}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.AppendForce(r); err != nil {
			b.Fatal(err)
		}
	}
}
