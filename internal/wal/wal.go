// Package wal implements the ELEOS recovery log (§VIII-A).
//
// The log is a linked list of log pages, each one WBLOCK in size. Because a
// log-page write can fail, each page carries the addresses of the *next
// three* provisioned locations for its successor; on a write failure the
// successor is written to the next candidate, and recovery probes the
// candidates in order until it finds the first valid page. When a log page
// cannot be written to any of its three candidate locations, the log shuts
// down (the paper does the same).
//
// The package is independent of the rest of the controller: the owner
// supplies a Sink that provisions WBLOCK slots in log-stream order and
// performs the raw programs/reads.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"eleos/internal/metrics"
	"eleos/internal/record"
	"eleos/internal/trace"
)

// Slot names a WBLOCK that holds (or will hold) a log page.
type Slot struct {
	Channel int
	EBlock  int
	WBlock  int
}

// NoSlot is the invalid slot.
var NoSlot = Slot{-1, -1, -1}

// IsValid reports whether s names a real WBLOCK.
func (s Slot) IsValid() bool { return s.Channel >= 0 && s.EBlock >= 0 && s.WBlock >= 0 }

func (s Slot) String() string {
	if !s.IsValid() {
		return "slot(none)"
	}
	return fmt.Sprintf("slot(ch=%d eb=%d wb=%d)", s.Channel, s.EBlock, s.WBlock)
}

// Sink provisions log slots and performs raw WBLOCK I/O on them. Implemented
// by the controller (over the provisioner and flash device) and by test
// fakes.
type Sink interface {
	// ProvisionSlots returns the next n WBLOCK slots in log-stream order.
	// Slots are handed out exactly once and in a stable order.
	ProvisionSlots(n int) ([]Slot, error)
	// Program writes one full log page to the slot. A failed program makes
	// the remainder of the slot's EBLOCK unwritable until erased.
	Program(s Slot, page []byte) error
	// Read returns the slot's WBLOCK content (zeroes if unwritten).
	Read(s Slot) ([]byte, error)
}

// Errors.
var (
	ErrLogDead        = errors.New("wal: log shut down after exhausting forward candidates")
	ErrRecordTooLarge = errors.New("wal: record larger than log page capacity")
	ErrBadPage        = errors.New("wal: invalid log page")
	ErrPageTooSmall   = errors.New("wal: page size too small")
)

const (
	pageMagic   = 0x454C4F47 // "ELOG"
	pageVersion = 1
	headerSize  = 64
	numForward  = 3 // provisioned successor locations per page (§VIII-A)
)

// PageIndexEntry records where a durable page lives and which LSNs it holds.
type PageIndexEntry struct {
	First record.LSN
	Last  record.LSN
	Slot  Slot
}

// Stats counts log activity. Group commit shows up as FreeRides: a Force
// whose records an earlier caller's page write already made durable pays no
// page write of its own.
type Stats struct {
	Appends        int64 // records appended
	ForceCalls     int64 // Force invocations
	FreeRides      int64 // Force calls satisfied without writing a page
	PageWrites     int64 // physical log-page programs (capacity flushes included)
	RecordsFlushed int64 // records carried by those page writes
}

// logMetrics holds the log's instrument handles, resolved once at
// construction. The counters are the system of record for Stats():
// flushLocked increments PageWrites/RecordsFlushed *after* re-acquiring
// l.mu from the unlocked page program, so a struct-field version read
// under a different lock interleaving raced with group-commit writers —
// atomics make Stats() safe to call from any goroutine at any time.
type logMetrics struct {
	appends        *metrics.Counter
	forceCalls     *metrics.Counter
	freeRides      *metrics.Counter
	pageWrites     *metrics.Counter
	recordsFlushed *metrics.Counter
	groupCommit    *metrics.Histogram // records per physical page write
}

func newLogMetrics(reg *metrics.Registry) logMetrics {
	return logMetrics{
		appends:        reg.Counter("wal.appends"),
		forceCalls:     reg.Counter("wal.force_calls"),
		freeRides:      reg.Counter("wal.free_rides"),
		pageWrites:     reg.Counter("wal.page_writes"),
		recordsFlushed: reg.Counter("wal.records_flushed"),
		groupCommit:    reg.Histogram("wal.group_commit_records", metrics.SizeBounds()),
	}
}

// Option configures a Log at construction.
type Option func(*Log)

// WithRegistry records the log's activity counters into reg (names
// "wal.appends", "wal.force_calls", "wal.free_rides", "wal.page_writes",
// "wal.records_flushed" and the "wal.group_commit_records" histogram).
// Without it the log uses a private registry, so Stats() always works.
func WithRegistry(reg *metrics.Registry) Option {
	return func(l *Log) {
		if reg != nil {
			l.met = newLogMetrics(reg)
		}
	}
}

// WithTracer emits leader/free-ride attribution into the flight
// recorder: every Force produces one KWalForce event — a span covering
// the leader's physical page write (Arg1 = 1, Arg2 = records carried),
// or an instant for a follower whose records an earlier page write
// already made durable (Arg1 = 0).
func WithTracer(trc *trace.Recorder) Option {
	return func(l *Log) { l.trc = trc }
}

// GroupCommitSize returns the mean number of records made durable per
// physical log-page write — the group-commit amortization factor.
func (s Stats) GroupCommitSize() float64 {
	if s.PageWrites == 0 {
		return 0
	}
	return float64(s.RecordsFlushed) / float64(s.PageWrites)
}

// Log is the append side of the recovery log. Safe for concurrent use.
//
// Flushes release the log lock around the physical page program: the
// flusher snapshots the buffered records into an encoded page under the
// lock, programs it unlocked, and reconciles on return. Appends therefore
// proceed while a page write is in flight, and a Force whose records the
// in-flight page already covers waits only for that write, not for a page
// write of its own (leader/follower group commit).
type Log struct {
	mu        sync.Mutex
	flushCond *sync.Cond // broadcast when an in-flight flush completes
	flushing  bool       // a flush has released mu around its page program
	sink      Sink
	pageBytes int

	nextLSN    record.LSN // LSN the next appended record will receive
	durableLSN record.LSN // all records with LSN <= durableLSN are durable

	buf      []byte     // payload of the page being assembled
	bufFirst record.LSN // LSN of first record in buf
	bufCount int

	slots []Slot // provisioned future slots; slots[0] is the current page's home
	pages []PageIndexEntry
	dead  bool

	met logMetrics
	trc *trace.Recorder // nil-safe; see WithTracer
}

// New creates a fresh, empty log (after device format). The first page will
// be written to the first slot the sink provisions.
func New(sink Sink, pageBytes int, opts ...Option) (*Log, error) {
	if pageBytes <= headerSize+record.EncodedSize(record.Done{}) {
		return nil, ErrPageTooSmall
	}
	l := &Log{sink: sink, pageBytes: pageBytes, nextLSN: 1}
	l.flushCond = sync.NewCond(&l.mu)
	l.met = newLogMetrics(metrics.New())
	for _, o := range opts {
		o(l)
	}
	return l, nil
}

// Resume creates a log that continues an existing chain after recovery.
// nextLSN is one past the last durable LSN, candidates are the tail page's
// unwritten forward locations (in order), and pages is the durable-page
// index recovered from the chain walk (may be nil).
func Resume(sink Sink, pageBytes int, nextLSN record.LSN, candidates []Slot, pages []PageIndexEntry, opts ...Option) (*Log, error) {
	l, err := New(sink, pageBytes, opts...)
	if err != nil {
		return nil, err
	}
	l.nextLSN = nextLSN
	l.durableLSN = nextLSN - 1
	for _, s := range candidates {
		if s.IsValid() {
			l.slots = append(l.slots, s)
		}
	}
	l.pages = append(l.pages, pages...)
	return l, nil
}

// Capacity returns the payload bytes available per log page.
func (l *Log) Capacity() int { return l.pageBytes - headerSize }

// ensureSlots extends the provisioned-slot queue to at least n entries.
func (l *Log) ensureSlots(n int) error {
	for len(l.slots) < n {
		got, err := l.sink.ProvisionSlots(n - len(l.slots))
		if err != nil {
			return err
		}
		if len(got) == 0 {
			return errors.New("wal: sink provisioned no slots")
		}
		l.slots = append(l.slots, got...)
	}
	return nil
}

// Append buffers a record into the current log page and returns its LSN.
// The record is durable only after a successful Force whose durable LSN
// covers it.
func (l *Log) Append(r record.Record) (record.LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return 0, ErrLogDead
	}
	sz := record.EncodedSize(r)
	if sz > l.Capacity() {
		return 0, fmt.Errorf("%w: %d > %d", ErrRecordTooLarge, sz, l.Capacity())
	}
	if len(l.buf)+sz > l.Capacity() {
		// A flush in flight will drain the buffer; wait for it rather
		// than racing it for the slot queue.
		for l.flushing {
			l.flushCond.Wait()
			if l.dead {
				return 0, ErrLogDead
			}
		}
		if len(l.buf)+sz > l.Capacity() {
			if err := l.flushLocked(); err != nil {
				return 0, err
			}
		}
	}
	if l.bufCount == 0 {
		l.bufFirst = l.nextLSN
	}
	l.buf = record.Append(l.buf, r)
	l.bufCount++
	l.met.appends.Inc()
	lsn := l.nextLSN
	l.nextLSN++
	return lsn, nil
}

// Force makes all records appended before the call durable. It writes the
// partially-filled current page (if any) to flash; subsequent appends start
// a new page.
//
// Concurrent committers group-commit: the first Force to start a flush is
// the leader and its page write carries every record appended so far —
// including the followers' commit records. A follower whose records the
// leader's page covers waits for that single write and returns without a
// page write of its own, counted as a FreeRide. A follower whose records
// arrived after the leader snapshotted its page becomes the next leader.
func (l *Log) Force() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.met.forceCalls.Inc()
	target := l.nextLSN - 1 // last LSN this caller needs durable
	for {
		if l.dead {
			return ErrLogDead
		}
		if l.durableLSN >= target {
			l.met.freeRides.Inc()
			l.trc.Emit(trace.KWalForce, 0, 0, 0, 0, 0)
			return nil
		}
		if !l.flushing {
			break
		}
		l.flushCond.Wait()
	}
	return l.flushLocked()
}

// Stats returns a snapshot of the log activity counters. Reads are
// atomic loads — no lock — so callers may poll it concurrently with
// group-commit flushes.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:        l.met.appends.Value(),
		ForceCalls:     l.met.forceCalls.Value(),
		FreeRides:      l.met.freeRides.Value(),
		PageWrites:     l.met.pageWrites.Value(),
		RecordsFlushed: l.met.recordsFlushed.Value(),
	}
}

// AppendForce appends records and forces the log; it returns the LSN of the
// last appended record.
func (l *Log) AppendForce(rs ...record.Record) (record.LSN, error) {
	var last record.LSN
	for _, r := range rs {
		lsn, err := l.Append(r)
		if err != nil {
			return 0, err
		}
		last = lsn
	}
	if err := l.Force(); err != nil {
		return 0, err
	}
	return last, nil
}

// flushLocked writes the buffered records to flash. Called with l.mu held
// and no flush in flight; returns with l.mu held. The lock is released
// around each physical page program so concurrent Appends (and free-riding
// Forces) are not serialized behind NAND program latency; the records being
// flushed stay in l.buf until the program succeeds, and any records
// appended meanwhile are preserved for the next page.
func (l *Log) flushLocked() error {
	l.flushing = true
	defer func() {
		l.flushing = false
		l.flushCond.Broadcast()
	}()
	first := l.bufFirst
	count := l.bufCount
	nbytes := len(l.buf)
	// Try the current slot, then its forward candidates (§VIII-A). Each
	// attempt needs numForward further slots for its header.
	for attempt := 0; attempt < numForward; attempt++ {
		if err := l.ensureSlots(attempt + 1 + numForward); err != nil {
			return err
		}
		home := l.slots[attempt]
		page := encodePage(l.pageBytes, first, count, l.buf[:nbytes], l.slots[attempt+1:attempt+1+numForward])
		tWrite := l.trc.Now()
		l.mu.Unlock()
		err := l.sink.Program(home, page)
		l.mu.Lock()
		if err != nil {
			continue
		}
		l.trc.Span(trace.KWalForce, 0, 0, 0, tWrite, 1, int64(count))
		last := first + record.LSN(count) - 1
		l.pages = append(l.pages, PageIndexEntry{First: first, Last: last, Slot: home})
		l.durableLSN = last
		l.met.pageWrites.Inc()
		l.met.recordsFlushed.Add(int64(count))
		l.met.groupCommit.Observe(int64(count))
		l.buf = append(l.buf[:0], l.buf[nbytes:]...)
		l.bufCount -= count
		if l.bufCount > 0 {
			l.bufFirst = last + 1
		}
		l.slots = l.slots[attempt+1:]
		return nil
	}
	l.dead = true
	return ErrLogDead
}

// Dead reports whether the log has shut down after exhausting forward
// candidates.
func (l *Log) Dead() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead
}

// DurableLSN returns the highest durable LSN (0 if none).
func (l *Log) DurableLSN() record.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableLSN
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() record.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// PageFor returns the slot and first LSN of the earliest durable page whose
// records include or follow lsn. ok is false if no durable page qualifies.
func (l *Log) PageFor(lsn record.LSN) (s Slot, first record.LSN, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range l.pages {
		if p.Last >= lsn {
			return p.Slot, p.First, true
		}
	}
	return NoSlot, 0, false
}

// LastPage returns the most recent durable page's slot and first LSN.
func (l *Log) LastPage() (s Slot, first record.LSN, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pages) == 0 {
		return NoSlot, 0, false
	}
	p := l.pages[len(l.pages)-1]
	return p.Slot, p.First, true
}

// StartCandidates returns the slots where the next page may be written
// (used by checkpoints taken while the log is empty, so recovery can find
// the chain start). It provisions slots as needed.
func (l *Log) StartCandidates() ([]Slot, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.flushCond.Wait()
	}
	if l.dead {
		return nil, ErrLogDead
	}
	if err := l.ensureSlots(numForward); err != nil {
		return nil, err
	}
	out := make([]Slot, numForward)
	copy(out, l.slots[:numForward])
	return out, nil
}

// Truncate discards index entries for pages entirely below lsn. The pages'
// storage is reclaimed separately (log EBLOCK erasure via GC).
func (l *Log) Truncate(lsn record.LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := 0
	for i < len(l.pages) && l.pages[i].Last < lsn {
		i++
	}
	l.pages = append([]PageIndexEntry(nil), l.pages[i:]...)
}

// Pages returns a copy of the durable-page index (oldest first).
func (l *Log) Pages() []PageIndexEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]PageIndexEntry(nil), l.pages...)
}

// --- page encoding -------------------------------------------------------

func encodePage(pageBytes int, first record.LSN, count int, payload []byte, next []Slot) []byte {
	page := make([]byte, pageBytes)
	binary.LittleEndian.PutUint32(page[0:], pageMagic)
	page[4] = pageVersion
	binary.LittleEndian.PutUint64(page[8:], uint64(first))
	binary.LittleEndian.PutUint32(page[16:], uint32(count))
	binary.LittleEndian.PutUint32(page[20:], uint32(len(payload)))
	off := 24
	for i := 0; i < numForward; i++ {
		s := NoSlot
		if i < len(next) {
			s = next[i]
		}
		binary.LittleEndian.PutUint32(page[off:], uint32(int32(s.Channel)))
		binary.LittleEndian.PutUint32(page[off+4:], uint32(int32(s.EBlock)))
		binary.LittleEndian.PutUint32(page[off+8:], uint32(int32(s.WBlock)))
		off += 12
	}
	copy(page[headerSize:], payload)
	crc := crc32.ChecksumIEEE(page[:60])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(page[60:], crc)
	return page
}

// ChainPage is a decoded log page.
type ChainPage struct {
	Slot     Slot
	FirstLSN record.LSN
	Records  []record.Record
	Next     [numForward]Slot
}

// LastLSN returns the LSN of the page's final record.
func (p *ChainPage) LastLSN() record.LSN {
	return p.FirstLSN + record.LSN(len(p.Records)) - 1
}

// DecodePage parses and validates a raw log page.
func DecodePage(s Slot, page []byte) (*ChainPage, error) {
	if len(page) < headerSize {
		return nil, fmt.Errorf("%w: short page", ErrBadPage)
	}
	if binary.LittleEndian.Uint32(page[0:]) != pageMagic || page[4] != pageVersion {
		return nil, fmt.Errorf("%w: bad magic/version", ErrBadPage)
	}
	first := record.LSN(binary.LittleEndian.Uint64(page[8:]))
	count := int(binary.LittleEndian.Uint32(page[16:]))
	payloadLen := int(binary.LittleEndian.Uint32(page[20:]))
	if payloadLen < 0 || headerSize+payloadLen > len(page) {
		return nil, fmt.Errorf("%w: bad payload length", ErrBadPage)
	}
	payload := page[headerSize : headerSize+payloadLen]
	crc := crc32.ChecksumIEEE(page[:60])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if binary.LittleEndian.Uint32(page[60:]) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadPage)
	}
	recs, err := record.DecodeAll(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPage, err)
	}
	if len(recs) != count {
		return nil, fmt.Errorf("%w: record count mismatch", ErrBadPage)
	}
	cp := &ChainPage{Slot: s, FirstLSN: first, Records: recs}
	off := 24
	for i := 0; i < numForward; i++ {
		cp.Next[i] = Slot{
			Channel: int(int32(binary.LittleEndian.Uint32(page[off:]))),
			EBlock:  int(int32(binary.LittleEndian.Uint32(page[off+4:]))),
			WBlock:  int(int32(binary.LittleEndian.Uint32(page[off+8:]))),
		}
		off += 12
	}
	return cp, nil
}

// PageLSNRange cheaply parses a raw log page's LSN coverage without
// decoding its records. ok is false if the buffer is not a valid-looking
// log page header.
func PageLSNRange(page []byte) (first, last record.LSN, ok bool) {
	if len(page) < headerSize {
		return 0, 0, false
	}
	if binary.LittleEndian.Uint32(page[0:]) != pageMagic || page[4] != pageVersion {
		return 0, 0, false
	}
	first = record.LSN(binary.LittleEndian.Uint64(page[8:]))
	count := binary.LittleEndian.Uint32(page[16:])
	if count == 0 {
		return first, first - 1, true
	}
	return first, first + record.LSN(count) - 1, true
}

// ReadPage reads and decodes the log page at s.
func ReadPage(sink Sink, s Slot) (*ChainPage, error) {
	raw, err := sink.Read(s)
	if err != nil {
		return nil, err
	}
	return DecodePage(s, raw)
}

// ChainTail describes where a chain traversal stopped.
type ChainTail struct {
	LastLSN    record.LSN // highest durable LSN seen (0 if no pages)
	Candidates []Slot     // the unwritten forward locations where the log resumes
	Pages      []PageIndexEntry
}

// FollowChain walks the log chain starting from the candidate slots,
// expecting the first page to carry firstLSN == expectFirst. Each valid page
// is passed to fn in order. It returns the tail state for resuming appends.
func FollowChain(sink Sink, start []Slot, expectFirst record.LSN, fn func(*ChainPage) error) (*ChainTail, error) {
	tail := &ChainTail{LastLSN: expectFirst - 1, Candidates: append([]Slot(nil), start...)}
	candidates := start
	expect := expectFirst
	for {
		var page *ChainPage
		for _, c := range candidates {
			if !c.IsValid() {
				continue
			}
			p, err := ReadPage(sink, c)
			if err != nil {
				continue // unwritten, torn or stale page: probe next candidate
			}
			if p.FirstLSN != expect {
				continue // stale page from an earlier generation
			}
			page = p
			break
		}
		if page == nil {
			return tail, nil
		}
		if err := fn(page); err != nil {
			return nil, err
		}
		tail.LastLSN = page.LastLSN()
		tail.Pages = append(tail.Pages, PageIndexEntry{First: page.FirstLSN, Last: page.LastLSN(), Slot: page.Slot})
		tail.Candidates = page.Next[:]
		candidates = page.Next[:]
		expect = page.LastLSN() + 1
	}
}
