package wal

import (
	"math/rand"
	"testing"

	"eleos/internal/record"
)

// TestDecodePageNeverPanics hammers the log-page parser with arbitrary
// bytes; stale or torn pages must be rejected, never crash recovery.
func TestDecodePageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		b := make([]byte, rng.Intn(2*testPageBytes))
		rng.Read(b)
		_, _ = DecodePage(Slot{}, b)
	}
	// Mutations of a valid page.
	payload := record.Append(nil, record.Done{Action: 1})
	valid := encodePage(testPageBytes, 1, 1, payload, []Slot{{0, 0, 1}})
	for i := 0; i < 3000; i++ {
		b := append([]byte(nil), valid...)
		b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		_, _ = DecodePage(Slot{}, b)
	}
}

// TestPageLSNRangeRandom ensures the cheap header parser never panics and
// stays consistent with the full decoder on valid pages.
func TestPageLSNRangeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10000; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		_, _, _ = PageLSNRange(b)
	}
	payload := record.Append(record.Append(nil, record.Done{Action: 1}), record.Done{Action: 2})
	page := encodePage(testPageBytes, 41, 2, payload, nil)
	first, last, ok := PageLSNRange(page)
	if !ok || first != 41 || last != 42 {
		t.Fatalf("PageLSNRange = %d %d %v", first, last, ok)
	}
}
