package provision

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"eleos/internal/flash"
	"eleos/internal/record"
	"eleos/internal/summary"
)

// TestPlanGeometryPropertyQuick checks, for random batches over a long-run
// provisioner, the invariants every plan must satisfy:
//
//  1. placed LPAGE extents never overlap within an EBLOCK (across the
//     whole history of plans);
//  2. every byte of every placed page is covered by exactly the data IO
//     whose buffer range maps it to the right flash offset;
//  3. summary metadata gains one entry per placed page, in plan order;
//  4. placements within an EBLOCK have strictly increasing offsets over
//     time (the monotonicity GC's validity scan relies on, §VI-C).
func TestPlanGeometryPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		geo := flash.SmallGeometry()
		st, err := summary.New(geo, 8)
		if err != nil {
			return false
		}
		p, err := New(geo, st, DefaultConfig())
		if err != nil {
			return false
		}
		seq := uint64(0)
		clock := func() uint64 { seq++; return seq }

		type extent struct{ lo, hi int }
		placed := map[[2]int][]extent{} // (ch,eb) -> extents
		lastOff := map[[2]int]int{}     // monotonicity per eblock
		freed := map[[2]int]bool{}

		for round := 0; round < 30; round++ {
			n := 1 + rng.Intn(12)
			sizes := make([]int, n)
			for i := range sizes {
				sizes[i] = 64 * (1 + rng.Intn(64)) // 64 B .. 4 KB
			}
			pages := contiguousPages(sizes...)
			var plan *Plan
			if rng.Intn(3) == 0 {
				plan, err = p.ProvisionGC(rng.Intn(geo.Channels), pages, uint64(rng.Intn(1000)), clock, record.LSN(round+1))
			} else {
				plan, err = p.ProvisionBatch(pages, clock, record.LSN(round+1))
			}
			if err != nil {
				// Out of space is legal at this scale; treat the run as
				// finished rather than failed.
				return true
			}
			if len(plan.Pages) != n {
				t.Logf("placed %d of %d", len(plan.Pages), n)
				return false
			}
			// (1) + (4): record extents, check overlaps and monotonicity.
			for _, pg := range plan.Pages {
				key := [2]int{pg.Addr.Channel(), pg.Addr.EBlock()}
				if freed[key] {
					t.Logf("placement into freed eblock %v", key)
					return false
				}
				e := extent{lo: pg.Addr.Offset(), hi: pg.Addr.End()}
				for _, prev := range placed[key] {
					if e.lo < prev.hi && prev.lo < e.hi {
						t.Logf("overlap in %v: %+v vs %+v", key, e, prev)
						return false
					}
				}
				if last, ok := lastOff[key]; ok && e.lo <= last {
					t.Logf("non-monotonic placement in %v: %d after %d", key, e.lo, last)
					return false
				}
				lastOff[key] = e.lo
				placed[key] = append(placed[key], e)
			}
			// (2): byte-exact buffer->flash mapping via data IOs.
			type ioKey struct{ ch, eb, wb int }
			ios := map[ioKey]IO{}
			for _, io := range plan.IOs {
				if io.Inline == nil {
					ios[ioKey{io.Channel, io.EBlock, io.WBlock}] = io
				}
			}
			w := geo.WBlockBytes
			for _, pg := range plan.Pages {
				for i := 0; i < pg.Addr.Length(); i += 64 {
					flashOff := pg.Addr.Offset() + i
					io, ok := ios[ioKey{pg.Addr.Channel(), pg.Addr.EBlock(), flashOff / w}]
					if !ok {
						t.Logf("no IO covers %v+%d", pg.Addr, i)
						return false
					}
					bufPos := io.BufLo + (flashOff - io.WBlock*w)
					if bufPos != pg.BufOff+i {
						t.Logf("byte mapping wrong: flash %d maps buf %d, want %d", flashOff, bufPos, pg.BufOff+i)
						return false
					}
					if bufPos >= io.BufHi {
						t.Logf("byte beyond IO range")
						return false
					}
				}
			}
			// (3): summary metadata for still-open eblocks includes the
			// plan's pages in order (closed eblocks drop theirs).
			for _, pg := range plan.Pages {
				d, err := st.Desc(pg.Addr.Channel(), pg.Addr.EBlock())
				if err != nil {
					return false
				}
				if d.State != summary.Open {
					continue
				}
				meta := st.Meta(pg.Addr.Channel(), pg.Addr.EBlock())
				found := false
				for _, m := range meta {
					if m.LPID == pg.LPID && m.Offset == pg.Addr.Offset() && m.Length == pg.Addr.Length() {
						found = true
						break
					}
				}
				if !found {
					t.Logf("placement missing from metadata: %+v", pg)
					return false
				}
			}
			// Occasionally free a used eblock to recycle space (keeps the
			// run going and exercises reuse).
			if round%7 == 6 {
				for ch := 0; ch < geo.Channels; ch++ {
					used := st.UsedEBlocks(ch)
					sort.Ints(used)
					for _, eb := range used {
						d, _ := st.Desc(ch, eb)
						if d.Stream == record.StreamLog {
							continue
						}
						if err := st.FreeEBlock(ch, eb, record.LSN(round+1)); err == nil {
							key := [2]int{ch, eb}
							freed[key] = true
							delete(placed, key)
							delete(lastOff, key)
						}
						break
					}
				}
				// Reused eblocks accept new placements again.
				for k := range freed {
					delete(freed, k)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
