// Package provision implements ELEOS's two-tier write provisioning
// (§IV-A1) and I/O command generation (§IV-A2).
//
// Global provisioning partitions a write buffer into per-channel chunks of
// approximately equal size, respecting LPAGE boundaries so every LPAGE is
// stored contiguously within a single channel. Channel provisioning then
// allocates physical addresses at WBLOCK granularity from the channel's
// open EBLOCK for the requesting write stream (user, GC, or log), closing
// full EBLOCKs (scheduling their metadata flush as the final I/O commands)
// and opening fresh ones from the free list.
//
// Provisioning is two-phase: a *plan* is computed against a read-only view
// of the summary table, and only applied if the whole buffer fits. This
// keeps a mid-buffer out-of-space condition from leaving provisioned
// WBLOCK gaps that NAND's sequential-program rule could never fill.
package provision

import (
	"errors"
	"fmt"
	"sync"

	"eleos/internal/addr"
	"eleos/internal/flash"
	"eleos/internal/record"
	"eleos/internal/summary"
	"eleos/internal/wal"
)

// BatchPage describes one LPAGE of a write buffer presented for
// provisioning. BufOff is the page's byte offset in the buffer.
type BatchPage struct {
	LPID   addr.LPID
	Type   addr.PageType
	Length int
	BufOff int
}

// PlacedPage is a provisioned LPAGE.
type PlacedPage struct {
	LPID   addr.LPID
	Type   addr.PageType
	Addr   addr.PhysAddr
	BufOff int
}

// IO is one WBLOCK program command. Data comes either from the write
// buffer range [BufLo, BufHi) or, for metadata flushes, from Inline.
type IO struct {
	Channel int
	EBlock  int
	WBlock  int
	BufLo   int
	BufHi   int
	Inline  []byte
}

// OpenEvent records that the plan opens an EBLOCK.
type OpenEvent struct {
	Channel   int
	EBlock    int
	Stream    record.StreamKind
	Timestamp uint64 // GC bucket timestamp (0 for user stream)
}

// CloseEvent records that the plan closes an EBLOCK (metadata scheduled).
type CloseEvent struct {
	Channel     int
	EBlock      int
	Timestamp   uint64
	DataWBlocks int
	MetaWBlocks int
	TailFrag    int // unusable bytes between metadata and EBLOCK end
	Meta        []summary.MetaEntry
}

// FragEvent records run-tail fragmentation inside a still-open EBLOCK.
type FragEvent struct {
	Channel int
	EBlock  int
	Bytes   int
}

// Plan is the outcome of provisioning one write buffer.
type Plan struct {
	Pages  []PlacedPage
	IOs    []IO
	Opens  []OpenEvent
	Closes []CloseEvent
	Frags  []FragEvent
}

// Config tunes the provisioner.
type Config struct {
	// GCBuckets is the number of open GC EBLOCKs kept per channel for
	// cold/hot separation (§VI-B).
	GCBuckets int
	// GCBucketSpread is the timestamp distance beyond which GC writes get
	// a fresh bucket (while under the GCBuckets cap) instead of the
	// closest existing one.
	GCBucketSpread uint64
	// GCReserveEBlocks holds back this many free EBLOCKs per channel from
	// user and log allocation. GC relocation places survivors on the
	// victim's own channel, so without a reserve a channel can wedge:
	// zero free EBLOCKs, no open GC destination, and every victim worth
	// collecting needs a relocation that itself needs a free EBLOCK. The
	// reserve guarantees GC can always open a destination, and erasing
	// the victim immediately repays the loan.
	GCReserveEBlocks int
}

// DefaultConfig returns the defaults used by the paper's description.
func DefaultConfig() Config {
	return Config{GCBuckets: 3, GCBucketSpread: 1024, GCReserveEBlocks: 1}
}

// Errors.
var (
	ErrNoSpace      = errors.New("provision: no free eblocks available")
	ErrPageTooLarge = errors.New("provision: lpage larger than eblock capacity")
	ErrBadPage      = errors.New("provision: malformed batch page")
)

type gcBucket struct {
	eb int
	ts uint64
}

// Provisioner allocates flash space. Safe for concurrent use.
type Provisioner struct {
	mu  sync.Mutex
	geo flash.Geometry
	st  *summary.Table
	cfg Config

	userOpen []int        // per-channel open user EBLOCK (-1 = none)
	gcOpen   [][]gcBucket // per-channel open GC EBLOCKs
	rotate   int          // rotates chunk->channel assignment across buffers

	// The log alternates between two open EBLOCKs (on different channels
	// when possible) so that any three consecutive slots — a page's
	// forward candidates (§VIII-A) — span at least two EBLOCKs and a
	// single program failure cannot kill the whole candidate set.
	logStreams [2]logStream
	logParity  int
}

type logStream struct {
	ch, eb, wb int // eb < 0 when unallocated
}

// DebugTrace, when set by tests, receives provisioning events.
var DebugTrace func(format string, args ...any)

func dtrace(format string, args ...any) {
	if DebugTrace != nil {
		DebugTrace(format, args...)
	}
}

// New creates a provisioner over the summary table.
func New(geo flash.Geometry, st *summary.Table, cfg Config) (*Provisioner, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if cfg.GCBuckets <= 0 {
		return nil, errors.New("provision: GCBuckets must be positive")
	}
	p := &Provisioner{geo: geo, st: st, cfg: cfg}
	p.resetCursors()
	return p, nil
}

func (p *Provisioner) resetCursors() {
	p.userOpen = make([]int, p.geo.Channels)
	for i := range p.userOpen {
		p.userOpen[i] = -1
	}
	p.gcOpen = make([][]gcBucket, p.geo.Channels)
	p.logStreams = [2]logStream{{eb: -1}, {eb: -1}}
	p.logParity = 0
}

// RebuildFromSummary re-derives the open-EBLOCK cursors from the summary
// table after recovery. The log cursor is set separately via SetLogCursor
// because the log chain, not the summary table, is authoritative for it.
func (p *Provisioner) RebuildFromSummary() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.resetCursors()
	for _, ref := range p.st.OpenEBlocks() {
		switch ref.Stream {
		case record.StreamUser:
			p.userOpen[ref.Channel] = ref.EBlock
		case record.StreamGC:
			d, err := p.st.Desc(ref.Channel, ref.EBlock)
			if err != nil {
				continue
			}
			p.gcOpen[ref.Channel] = append(p.gcOpen[ref.Channel], gcBucket{eb: ref.EBlock, ts: d.Timestamp})
		}
	}
}

// SetLogCursorFromCandidates reconstructs the alternating log cursor from
// a chain tail's three forward candidates [c0 c1 c2] (recovery): c0 and c2
// belong to one stream, c1 to the other, and the next provisioned slot
// follows c2 on c1's stream.
func (p *Provisioner) SetLogCursorFromCandidates(cands []wal.Slot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.logStreams = [2]logStream{{eb: -1}, {eb: -1}}
	p.logParity = 0
	if len(cands) == 0 {
		return
	}
	if len(cands) >= 3 {
		c1, c2 := cands[1], cands[2]
		p.logStreams[0] = logStream{ch: c2.Channel, eb: c2.EBlock, wb: c2.WBlock + 1}
		p.logStreams[1] = logStream{ch: c1.Channel, eb: c1.EBlock, wb: c1.WBlock + 1}
		p.logParity = 1 // the slot after c2 comes from c1's stream
		return
	}
	// Degenerate tails (fewer than three candidates): continue after the
	// last one on a single stream; the other allocates fresh on demand.
	last := cands[len(cands)-1]
	p.logStreams[0] = logStream{ch: last.Channel, eb: last.EBlock, wb: last.WBlock + 1}
	p.logParity = 1
}

// LogCursor returns the next log slot position of the stream that will
// serve the next provisioned slot (eb = -1 if unallocated).
func (p *Provisioner) LogCursor() (ch, eb, wb int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.logStreams[p.logParity]
	return st.ch, st.eb, st.wb
}

func (p *Provisioner) wblockBytes() int { return p.geo.WBlockBytes }

func (p *Provisioner) metaWBlocksFor(n int) int {
	return (summary.MetaBlockSize(n) + p.wblockBytes() - 1) / p.wblockBytes()
}

// MaxLPageBytes returns the largest LPAGE the geometry can store: a fresh
// EBLOCK minus one metadata WBLOCK.
func (p *Provisioner) MaxLPageBytes() int {
	return p.geo.EBlockBytes - p.metaWBlocksFor(1)*p.wblockBytes()
}

// --- planning primitives ---------------------------------------------------

// chanPlanner provisions one channel chunk against a scratch view.
type chanPlanner struct {
	p      *Provisioner
	ch     int
	stream record.StreamKind
	bucket uint64 // GC bucket timestamp (stream == StreamGC)
	clock  func() uint64
	free   []int // remaining free eblocks (wear order)
	cur    int   // current eblock (-1 none)
	dataWB int   // provisioned data wblocks in cur
	meta   []summary.MetaEntry

	plan *Plan
	// current run
	runActive   bool
	runStartWB  int
	runStartBuf int
	runEndBuf   int
}

func (c *chanPlanner) wbytes() int { return c.p.geo.WBlockBytes }

// loadCursor initialises the planner from the provisioner's open EBLOCK for
// the stream (if any).
func (c *chanPlanner) loadCursor() error {
	c.cur = -1
	var eb int
	switch c.stream {
	case record.StreamUser:
		eb = c.p.userOpen[c.ch]
	case record.StreamGC:
		eb = c.p.pickBucket(c.ch, c.bucket)
	default:
		return fmt.Errorf("provision: unsupported stream %v", c.stream)
	}
	if eb < 0 {
		return nil
	}
	d, err := c.p.st.Desc(c.ch, eb)
	if err != nil {
		return err
	}
	if d.State != summary.Open {
		// The cursor is stale: a GC/migration path retired this EBLOCK
		// (erased it, or marked it Bad after a failed erase) without the
		// provisioner hearing about it. Programming a non-Open EBLOCK can
		// never be right, so drop the cursor and allocate fresh. Runs
		// under p.mu (all planners are built inside ProvisionBatch/GC).
		c.p.dropCursor(c.ch, eb)
		return nil
	}
	c.cur = eb
	c.dataWB = int(d.DataWBlocks)
	c.meta = c.p.st.Meta(c.ch, eb)
	return nil
}

// pickBucket returns the open GC EBLOCK whose timestamp is closest to ts.
// While under the bucket cap, a timestamp farther than the configured
// spread gets a fresh bucket instead (-1), keeping LPAGEs of similar age
// together (§VI-B).
func (p *Provisioner) pickBucket(ch int, ts uint64) int {
	best, bestDist := -1, uint64(0)
	for _, b := range p.gcOpen[ch] {
		var dist uint64
		if b.ts > ts {
			dist = b.ts - ts
		} else {
			dist = ts - b.ts
		}
		if best < 0 || dist < bestDist {
			best, bestDist = b.eb, dist
		}
	}
	if best >= 0 && len(p.gcOpen[ch]) < p.cfg.GCBuckets && bestDist > p.cfg.GCBucketSpread {
		return -1
	}
	return best
}

// fits reports whether an LPAGE of length at ebOff leaves room for the
// metadata block covering one more entry.
func (c *chanPlanner) fits(ebOff, length int) bool {
	dataEnd := ebOff + length
	if dataEnd > c.p.geo.EBlockBytes {
		return false
	}
	dataWBEnd := (dataEnd + c.wbytes() - 1) / c.wbytes()
	return dataWBEnd+c.p.metaWBlocksFor(len(c.meta)+1) <= c.p.geo.WBlocksPerEBlock()
}

// endRun finalises the active run: emits its data IOs, advances the data
// cursor, and accounts run-tail fragmentation.
func (c *chanPlanner) endRun() {
	if !c.runActive {
		return
	}
	w := c.wbytes()
	runStartEB := c.runStartWB * w
	runLen := c.runEndBuf - c.runStartBuf
	runEndEB := runStartEB + runLen
	endWB := (runEndEB + w - 1) / w
	for wb := c.runStartWB; wb < endWB; wb++ {
		lo := c.runStartBuf + (wb-c.runStartWB)*w
		hi := lo + w
		if hi > c.runEndBuf {
			hi = c.runEndBuf // device zero-pads; the paper copies junk instead
		}
		c.plan.IOs = append(c.plan.IOs, IO{Channel: c.ch, EBlock: c.cur, WBlock: wb, BufLo: lo, BufHi: hi})
	}
	frag := endWB*w - runEndEB
	if frag > 0 {
		c.plan.Frags = append(c.plan.Frags, FragEvent{Channel: c.ch, EBlock: c.cur, Bytes: frag})
	}
	c.dataWB = endWB
	c.runActive = false
}

// closeCur finalises and closes the current EBLOCK, scheduling its
// metadata flush as the trailing I/O commands.
func (c *chanPlanner) closeCur() {
	c.endRun()
	metaImg := summary.EncodeMetaBlock(c.meta)
	w := c.wbytes()
	metaWB := (len(metaImg) + w - 1) / w
	for k := 0; k < metaWB; k++ {
		lo := k * w
		hi := lo + w
		if hi > len(metaImg) {
			hi = len(metaImg)
		}
		c.plan.IOs = append(c.plan.IOs, IO{Channel: c.ch, EBlock: c.cur, WBlock: c.dataWB + k, Inline: metaImg[lo:hi]})
	}
	ts := c.bucket
	if c.stream == record.StreamUser {
		ts = c.clock()
	}
	tail := (c.p.geo.WBlocksPerEBlock() - c.dataWB - metaWB) * w
	c.plan.Closes = append(c.plan.Closes, CloseEvent{
		Channel: c.ch, EBlock: c.cur, Timestamp: ts,
		DataWBlocks: c.dataWB, MetaWBlocks: metaWB, TailFrag: tail,
		Meta: append([]summary.MetaEntry(nil), c.meta...),
	})
	c.cur = -1
	c.dataWB = 0
	c.meta = nil
}

// openFresh takes the next free EBLOCK for the stream. Non-GC streams
// leave GCReserveEBlocks behind so garbage collection always has a
// relocation destination on this channel.
func (c *chanPlanner) openFresh() error {
	reserve := 0
	if c.stream != record.StreamGC {
		reserve = c.p.cfg.GCReserveEBlocks
	}
	if len(c.free) <= reserve {
		return fmt.Errorf("%w: channel %d", ErrNoSpace, c.ch)
	}
	eb := c.free[0]
	c.free = c.free[1:]
	c.cur = eb
	c.dataWB = 0
	c.meta = nil
	ev := OpenEvent{Channel: c.ch, EBlock: eb, Stream: c.stream}
	if c.stream == record.StreamGC {
		ev.Timestamp = c.bucket
	}
	c.plan.Opens = append(c.plan.Opens, ev)
	return nil
}

// place provisions the chunk's pages in buffer order.
func (c *chanPlanner) place(pages []BatchPage) error {
	for _, pg := range pages {
		if pg.Length <= 0 || !addr.IsAligned(pg.Length) || !addr.IsAligned(pg.BufOff) {
			return fmt.Errorf("%w: lpid %d length %d off %d", ErrBadPage, pg.LPID, pg.Length, pg.BufOff)
		}
		if pg.Length > c.p.MaxLPageBytes() {
			return fmt.Errorf("%w: lpid %d length %d > %d", ErrPageTooLarge, pg.LPID, pg.Length, c.p.MaxLPageBytes())
		}
		for {
			if c.cur < 0 {
				if err := c.openFresh(); err != nil {
					return err
				}
			}
			if c.runActive && pg.BufOff != c.runEndBuf {
				// Non-contiguous buffer extents cannot share a run; end
				// the run at a WBLOCK boundary and start fresh.
				c.endRun()
			}
			if !c.runActive {
				c.runStartWB = c.dataWB
				c.runStartBuf = pg.BufOff
				c.runEndBuf = pg.BufOff
				c.runActive = true
			}
			ebOff := c.runStartWB*c.wbytes() + (pg.BufOff - c.runStartBuf)
			if c.fits(ebOff, pg.Length) {
				a, err := addr.Pack(c.ch, c.cur, ebOff, pg.Length)
				if err != nil {
					return err
				}
				c.plan.Pages = append(c.plan.Pages, PlacedPage{LPID: pg.LPID, Type: pg.Type, Addr: a, BufOff: pg.BufOff})
				c.meta = append(c.meta, summary.MetaEntry{LPID: pg.LPID, Type: pg.Type, Offset: ebOff, Length: pg.Length})
				c.runEndBuf = pg.BufOff + pg.Length
				break
			}
			// No room: close the EBLOCK (its metadata becomes the final
			// I/O commands) and retry in a fresh one.
			c.closeCur()
		}
	}
	c.endRun()
	return nil
}

// --- public planning entry points -----------------------------------------

// ProvisionBatch plans placement for a user write buffer across all
// channels (global + channel tiers). clock supplies the update-sequence
// timestamp used when EBLOCKs close. The plan is already applied to the
// summary table when this returns.
func (p *Provisioner) ProvisionBatch(pages []BatchPage, clock func() uint64, lsnHint record.LSN) (*Plan, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(pages) == 0 {
		return &Plan{}, nil
	}
	chunks := p.partition(pages)
	plan := &Plan{}
	finals := make(map[int]*chanPlanner)
	for i, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		ch := (p.rotate + i) % p.geo.Channels
		c := &chanPlanner{p: p, ch: ch, stream: record.StreamUser, clock: clock, free: p.st.FreeList(ch), plan: plan}
		if err := c.loadCursor(); err != nil {
			return nil, err
		}
		if err := c.place(chunk); err != nil {
			return nil, err
		}
		finals[ch] = c
	}
	p.rotate = (p.rotate + len(chunks)) % p.geo.Channels
	if err := p.applyLocked(plan, finals, record.StreamUser, lsnHint); err != nil {
		return nil, err
	}
	return plan, nil
}

// ProvisionGC plans placement for a GC (or migration) buffer within one
// channel, routing the pages to the open GC EBLOCK whose timestamp is
// closest to srcTS (§VI-B).
func (p *Provisioner) ProvisionGC(ch int, pages []BatchPage, srcTS uint64, clock func() uint64, lsnHint record.LSN) (*Plan, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	plan := &Plan{}
	if len(pages) == 0 {
		return plan, nil
	}
	c := &chanPlanner{p: p, ch: ch, stream: record.StreamGC, bucket: srcTS, clock: clock, free: p.st.FreeList(ch), plan: plan}
	if err := c.loadCursor(); err != nil {
		return nil, err
	}
	// Respect the bucket cap: if we have no cursor and the channel is at
	// capacity, reuse the closest bucket anyway (loadCursor already did);
	// a fresh bucket is only opened by place() when needed.
	if err := c.place(pages); err != nil {
		return nil, err
	}
	if err := p.applyLocked(plan, map[int]*chanPlanner{ch: c}, record.StreamGC, lsnHint); err != nil {
		return nil, err
	}
	return plan, nil
}

// applyLocked commits a successful plan to the summary table and cursors.
func (p *Provisioner) applyLocked(plan *Plan, finals map[int]*chanPlanner, stream record.StreamKind, lsn record.LSN) error {
	for _, ev := range plan.Opens {
		dtrace("apply open (%d,%d) stream=%v", ev.Channel, ev.EBlock, ev.Stream)
		if err := p.st.OpenEBlock(ev.Channel, ev.EBlock, ev.Stream, lsn); err != nil {
			return err
		}
		if ev.Stream == record.StreamGC {
			if err := p.st.SetTimestamp(ev.Channel, ev.EBlock, ev.Timestamp, lsn); err != nil {
				return err
			}
			p.gcOpen[ev.Channel] = append(p.gcOpen[ev.Channel], gcBucket{eb: ev.EBlock, ts: ev.Timestamp})
		}
	}
	for _, pg := range plan.Pages {
		if err := p.st.AppendMeta(pg.Addr.Channel(), pg.Addr.EBlock(), summary.MetaEntry{
			LPID: pg.LPID, Type: pg.Type, Offset: pg.Addr.Offset(), Length: pg.Addr.Length(),
		}); err != nil {
			return err
		}
	}
	for _, f := range plan.Frags {
		if err := p.st.AddAvail(f.Channel, f.EBlock, f.Bytes, lsn); err != nil {
			return err
		}
	}
	for _, cl := range plan.Closes {
		if err := p.st.SetDataWBlocks(cl.Channel, cl.EBlock, cl.DataWBlocks, lsn); err != nil {
			return err
		}
		dtrace("apply close (%d,%d)", cl.Channel, cl.EBlock)
		if err := p.st.CloseEBlock(cl.Channel, cl.EBlock, cl.Timestamp, cl.MetaWBlocks, lsn); err != nil {
			return fmt.Errorf("provision: apply close (cursor was %v): %w", cl, err)
		}
		if cl.TailFrag > 0 {
			if err := p.st.AddAvail(cl.Channel, cl.EBlock, cl.TailFrag, lsn); err != nil {
				return err
			}
		}
		p.dropCursor(cl.Channel, cl.EBlock)
	}
	for ch, c := range finals {
		if c.cur >= 0 {
			if err := p.st.SetDataWBlocks(ch, c.cur, c.dataWB, lsn); err != nil {
				return err
			}
			switch stream {
			case record.StreamUser:
				p.userOpen[ch] = c.cur
			case record.StreamGC:
				// Bucket membership handled in Opens; nothing further.
			}
		} else if stream == record.StreamUser {
			p.userOpen[ch] = -1
		}
	}
	return nil
}

func (p *Provisioner) dropCursor(ch, eb int) {
	if p.userOpen[ch] == eb {
		p.userOpen[ch] = -1
	}
	buckets := p.gcOpen[ch][:0]
	for _, b := range p.gcOpen[ch] {
		if b.eb != eb {
			buckets = append(buckets, b)
		}
	}
	p.gcOpen[ch] = buckets
}

// partition splits pages into up to Channels contiguous chunks of roughly
// equal byte size, respecting LPAGE boundaries (the global tier).
func (p *Provisioner) partition(pages []BatchPage) [][]BatchPage {
	total := 0
	for _, pg := range pages {
		total += pg.Length
	}
	n := p.geo.Channels
	target := (total + n - 1) / n
	var chunks [][]BatchPage
	start, acc := 0, 0
	for i, pg := range pages {
		acc += pg.Length
		if acc >= target && len(chunks) < n-1 {
			chunks = append(chunks, pages[start:i+1])
			start, acc = i+1, 0
		}
	}
	if start < len(pages) {
		chunks = append(chunks, pages[start:])
	}
	return chunks
}

// --- log stream -------------------------------------------------------------

// openEventForLog is returned alongside log slots so the controller can
// update bookkeeping without logging (the chain itself is the durable
// record for log EBLOCKs).
type LogEvent struct {
	OpenedCh, OpenedEB int // newly opened log EBLOCK (-1 if none)
	ClosedCh, ClosedEB int // log EBLOCK retired by this provisioning (-1 if none)
}

// ProvisionLogSlots hands out the next n log-page WBLOCK slots,
// alternating between the two open log EBLOCK streams and opening fresh
// EBLOCKs (rotating channels) as streams exhaust. Unlike batch
// provisioning this mutates immediately: the WAL requests slots while
// forcing a page, and a failed program is handled by the WAL's forward
// candidates, not by aborting.
func (p *Provisioner) ProvisionLogSlots(n int, lsnHint record.LSN) ([]wal.Slot, []LogEvent, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []wal.Slot
	var events []LogEvent
	for len(out) < n {
		st := &p.logStreams[p.logParity]
		if st.eb < 0 || st.wb >= p.geo.WBlocksPerEBlock() {
			ev := LogEvent{OpenedCh: -1, OpenedEB: -1, ClosedCh: -1, ClosedEB: -1}
			if st.eb >= 0 {
				d, err := p.st.Desc(st.ch, st.eb)
				if err != nil {
					return nil, nil, err
				}
				// Retire only if still open: a previous provisioning may
				// have closed this EBLOCK and then failed to allocate a
				// successor (out of space until GC ran), leaving the
				// cursor pointing at an already-retired EBLOCK.
				if d.State == summary.Open && d.Stream == record.StreamLog {
					if err := p.st.CloseEBlock(st.ch, st.eb, d.Timestamp, 0, lsnHint); err != nil {
						return nil, nil, fmt.Errorf("provision: retire log stream %d at wb=%d: %w", p.logParity, st.wb, err)
					}
					ev.ClosedCh, ev.ClosedEB = st.ch, st.eb
				}
			}
			ch, eb, err := p.takeLogEBlock(st.ch, p.logStreams[1-p.logParity].ch, lsnHint)
			if err != nil {
				return nil, nil, err
			}
			dtrace("log stream %d: closed (%d,%d) opened (%d,%d)", p.logParity, ev.ClosedCh, ev.ClosedEB, ch, eb)
			st.ch, st.eb, st.wb = ch, eb, 0
			ev.OpenedCh, ev.OpenedEB = ch, eb
			events = append(events, ev)
		}
		out = append(out, wal.Slot{Channel: st.ch, EBlock: st.eb, WBlock: st.wb})
		st.wb++
		p.logParity = 1 - p.logParity
	}
	return out, events, nil
}

// takeLogEBlock allocates a free EBLOCK for a log stream, preferring a
// channel different from both the stream's previous channel and its
// sibling stream's channel, so a failed program (which disables a whole
// EBLOCK) never threatens consecutive forward candidates.
func (p *Provisioner) takeLogEBlock(prevCh, siblingCh int, lsn record.LSN) (int, int, error) {
	start := (prevCh + 1) % p.geo.Channels
	if prevCh < 0 {
		start = 0
	}
	// First pass: avoid the sibling's channel; second pass: anything free.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < p.geo.Channels; i++ {
			ch := (start + i) % p.geo.Channels
			if pass == 0 && ch == siblingCh && p.geo.Channels > 1 {
				continue
			}
			if p.st.FreeCount(ch) <= p.cfg.GCReserveEBlocks {
				continue // leave the GC relocation reserve untouched
			}
			if eb, ok := p.st.TakeFree(ch); ok {
				if err := p.st.OpenEBlock(ch, eb, record.StreamLog, lsn); err != nil {
					return 0, 0, err
				}
				return ch, eb, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("%w: log stream", ErrNoSpace)
}

// AbandonLogEBlock retires a log EBLOCK whose program failed, so fresh
// slots come from a new EBLOCK. Safe to call for non-current EBLOCKs.
func (p *Provisioner) AbandonLogEBlock(ch, eb int, lsnHint record.LSN) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	dtrace("abandon log eblock (%d,%d)", ch, eb)
	d, err := p.st.Desc(ch, eb)
	if err != nil {
		return err
	}
	if d.State == summary.Open && d.Stream == record.StreamLog {
		// A failed program disables the rest of the EBLOCK, so no future
		// slot writes can land here: the current hint bounds its contents.
		ts := d.Timestamp
		if uint64(lsnHint) > ts {
			ts = uint64(lsnHint)
		}
		if err := p.st.CloseEBlock(ch, eb, ts, 0, lsnHint); err != nil {
			return err
		}
	}
	for i := range p.logStreams {
		if p.logStreams[i].ch == ch && p.logStreams[i].eb == eb {
			p.logStreams[i].eb = -1 // next provisioning opens fresh
		}
	}
	return nil
}

// UserOpen returns the channel's open user EBLOCK (-1 if none).
func (p *Provisioner) UserOpen(ch int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.userOpen[ch]
}

// GCOpen returns the channel's open GC EBLOCKs.
func (p *Provisioner) GCOpen(ch int) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.gcOpen[ch]))
	for _, b := range p.gcOpen[ch] {
		out = append(out, b.eb)
	}
	return out
}

// DropOpen forgets a cursor for an EBLOCK (used when migration retires an
// open EBLOCK after a write failure).
func (p *Provisioner) DropOpen(ch, eb int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dropCursor(ch, eb)
}
