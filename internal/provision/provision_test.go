package provision

import (
	"errors"
	"testing"

	"eleos/internal/addr"
	"eleos/internal/flash"
	"eleos/internal/record"
	"eleos/internal/summary"
)

// testEnv wires a provisioner over a small-geometry summary table.
type testEnv struct {
	geo flash.Geometry
	st  *summary.Table
	p   *Provisioner
	seq uint64
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	geo := flash.SmallGeometry() // 4 ch x 16 eb x 256KB, 16KB wblocks
	st, err := summary.New(geo, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(geo, st, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{geo: geo, st: st, p: p}
}

func (e *testEnv) clock() uint64 { e.seq++; return e.seq }

// contiguousPages builds n pages of the given sizes laid out back to back.
func contiguousPages(sizes ...int) []BatchPage {
	out := make([]BatchPage, len(sizes))
	off := 0
	for i, sz := range sizes {
		out[i] = BatchPage{LPID: addr.LPID(i + 1), Type: addr.PageUser, Length: sz, BufOff: off}
		off += sz
	}
	return out
}

func TestProvisionSinglePage(t *testing.T) {
	e := newEnv(t)
	plan, err := e.p.ProvisionBatch(contiguousPages(1920), e.clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pages) != 1 {
		t.Fatalf("pages = %d", len(plan.Pages))
	}
	pg := plan.Pages[0]
	if pg.Addr.Length() != 1920 || pg.Addr.Offset() != 0 {
		t.Fatalf("placed at %v", pg.Addr)
	}
	if len(plan.Opens) != 1 {
		t.Fatalf("opens = %d", len(plan.Opens))
	}
	// One data IO covering one WBLOCK.
	if len(plan.IOs) != 1 || plan.IOs[0].BufLo != 0 || plan.IOs[0].BufHi != 1920 {
		t.Fatalf("ios = %+v", plan.IOs)
	}
	// Summary updated: eblock open with 1 data wblock and a meta entry.
	d, _ := e.st.Desc(pg.Addr.Channel(), pg.Addr.EBlock())
	if d.State != summary.Open || d.DataWBlocks != 1 {
		t.Fatalf("desc = %+v", d)
	}
	m := e.st.Meta(pg.Addr.Channel(), pg.Addr.EBlock())
	if len(m) != 1 || m[0].LPID != 1 || m[0].Length != 1920 {
		t.Fatalf("meta = %+v", m)
	}
	// Run-tail fragmentation: 16KB wblock - 1920.
	if len(plan.Frags) != 1 || plan.Frags[0].Bytes != e.geo.WBlockBytes-1920 {
		t.Fatalf("frags = %+v", plan.Frags)
	}
}

func TestGlobalPartitionSpreadsChannels(t *testing.T) {
	e := newEnv(t)
	// 8 pages of a full wblock each: should spread across all 4 channels.
	sizes := make([]int, 8)
	for i := range sizes {
		sizes[i] = e.geo.WBlockBytes
	}
	plan, err := e.p.ProvisionBatch(contiguousPages(sizes...), e.clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	channels := map[int]int{}
	for _, pg := range plan.Pages {
		channels[pg.Addr.Channel()]++
	}
	if len(channels) != e.geo.Channels {
		t.Fatalf("used %d channels, want %d (%v)", len(channels), e.geo.Channels, channels)
	}
}

func TestVariableSizePackingNoInternalFragmentation(t *testing.T) {
	e := newEnv(t)
	// Three odd-sized pages pack back to back within one channel chunk
	// (ProvisionGC targets a single channel, isolating the packing).
	plan, err := e.p.ProvisionGC(1, contiguousPages(192, 64, 320), 10, e.clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pages) != 3 {
		t.Fatalf("pages = %d", len(plan.Pages))
	}
	// All in the same channel (total 576 < target split) and contiguous.
	p0, p1, p2 := plan.Pages[0], plan.Pages[1], plan.Pages[2]
	if !p0.Addr.SameEBlock(p1.Addr) || !p1.Addr.SameEBlock(p2.Addr) {
		t.Fatal("pages scattered across eblocks")
	}
	if p1.Addr.Offset() != p0.Addr.End() || p2.Addr.Offset() != p1.Addr.End() {
		t.Fatalf("pages not packed: %v %v %v", p0.Addr, p1.Addr, p2.Addr)
	}
}

func TestRunsStartAtWBlockBoundaries(t *testing.T) {
	e := newEnv(t)
	if _, err := e.p.ProvisionBatch(contiguousPages(100*64), e.clock, 1); err != nil {
		t.Fatal(err)
	}
	plan, err := e.p.ProvisionBatch(contiguousPages(64), e.clock, 2)
	if err != nil {
		t.Fatal(err)
	}
	off := plan.Pages[0].Addr.Offset()
	if off%e.geo.WBlockBytes != 0 {
		t.Fatalf("second batch did not start at a wblock boundary: %d", off)
	}
}

func TestEBlockCloseOnOverflow(t *testing.T) {
	e := newEnv(t)
	// Keep writing full-wblock pages into one channel until the first
	// eblock must close. SmallGeometry eblock = 16 wblocks; meta needs 1.
	w := e.geo.WBlockBytes
	var closes int
	var lastPlan *Plan
	for i := 0; i < 100; i++ {
		plan, err := e.p.ProvisionBatch(contiguousPages(w), e.clock, record.LSN(i+1))
		if err != nil {
			t.Fatal(err)
		}
		closes += len(plan.Closes)
		lastPlan = plan
		if closes > 0 {
			break
		}
	}
	if closes == 0 {
		t.Fatal("no eblock ever closed")
	}
	cl := lastPlan.Closes[0]
	if cl.MetaWBlocks < 1 {
		t.Fatalf("close without metadata: %+v", cl)
	}
	if cl.DataWBlocks+cl.MetaWBlocks > e.geo.WBlocksPerEBlock() {
		t.Fatalf("close overflows eblock: %+v", cl)
	}
	d, _ := e.st.Desc(cl.Channel, cl.EBlock)
	if d.State != summary.Used || d.MetaWBlocks != uint32(cl.MetaWBlocks) {
		t.Fatalf("summary after close: %+v", d)
	}
	// Meta IOs are the last IOs for that eblock and carry inline bytes.
	var metaIOs int
	for _, io := range lastPlan.IOs {
		if io.Inline != nil {
			metaIOs++
			if io.EBlock != cl.EBlock || io.Channel != cl.Channel {
				t.Fatal("meta IO targets wrong eblock")
			}
			if io.WBlock < cl.DataWBlocks {
				t.Fatal("meta IO before data region")
			}
		}
	}
	if metaIOs != cl.MetaWBlocks {
		t.Fatalf("meta IOs = %d, want %d", metaIOs, cl.MetaWBlocks)
	}
}

func TestMetadataDescribesAllPages(t *testing.T) {
	e := newEnv(t)
	w := e.geo.WBlockBytes
	var close *CloseEvent
	total := 0
	for i := 0; i < 40 && close == nil; i++ {
		plan, err := e.p.ProvisionBatch(contiguousPages(w), e.clock, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, pg := range plan.Pages {
			if pg.Addr.Channel() == 0 && pg.Addr.EBlock() == plan.Pages[0].Addr.EBlock() {
				_ = pg
			}
		}
		total++
		if len(plan.Closes) > 0 {
			close = &plan.Closes[0]
		}
	}
	if close == nil {
		t.Skip("no close observed")
	}
	// The close's metadata must decode and match its data region.
	img := summary.EncodeMetaBlock(close.Meta)
	entries, err := summary.DecodeMetaBlock(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("close with empty metadata")
	}
	for _, en := range entries {
		if en.Offset+en.Length > close.DataWBlocks*w {
			t.Fatalf("entry extends past data region: %+v", en)
		}
	}
}

func TestNoSpaceDoesNotMutate(t *testing.T) {
	geo := flash.SmallGeometry()
	geo.EBlocksPerChannel = 1
	st, _ := summary.New(geo, 8)
	p, _ := New(geo, st, DefaultConfig())
	// Fill channel 0's only eblock nearly full, then ask for more than fits
	// anywhere: with one eblock per channel and 4 channels, a batch bigger
	// than total capacity must fail without changing state.
	big := make([]int, 0)
	perEB := geo.EBlockBytes // over capacity per channel after meta reserve
	for i := 0; i < geo.Channels+1; i++ {
		big = append(big, perEB-geo.WBlockBytes)
	}
	before := make([]summary.Descriptor, geo.Channels)
	for ch := 0; ch < geo.Channels; ch++ {
		before[ch], _ = st.Desc(ch, 0)
	}
	_, err := p.ProvisionBatch(contiguousPages(big...), func() uint64 { return 1 }, 1)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
	for ch := 0; ch < geo.Channels; ch++ {
		after, _ := st.Desc(ch, 0)
		if after != before[ch] {
			t.Fatalf("channel %d mutated on failed provisioning: %+v -> %+v", ch, before[ch], after)
		}
	}
}

func TestPageTooLarge(t *testing.T) {
	e := newEnv(t)
	_, err := e.p.ProvisionBatch(contiguousPages(e.p.MaxLPageBytes()+64), e.clock, 1)
	if !errors.Is(err, ErrPageTooLarge) {
		t.Fatalf("expected ErrPageTooLarge, got %v", err)
	}
	// Exactly max fits.
	if _, err := e.p.ProvisionBatch(contiguousPages(e.p.MaxLPageBytes()), e.clock, 1); err != nil {
		t.Fatalf("max-size page rejected: %v", err)
	}
}

func TestBadPageValidation(t *testing.T) {
	e := newEnv(t)
	bad := []BatchPage{{LPID: 1, Type: addr.PageUser, Length: 100, BufOff: 0}}
	if _, err := e.p.ProvisionBatch(bad, e.clock, 1); !errors.Is(err, ErrBadPage) {
		t.Fatalf("unaligned length accepted: %v", err)
	}
	bad = []BatchPage{{LPID: 1, Type: addr.PageUser, Length: 0, BufOff: 0}}
	if _, err := e.p.ProvisionBatch(bad, e.clock, 1); !errors.Is(err, ErrBadPage) {
		t.Fatal("zero length accepted")
	}
}

func TestProvisionGCUsesBuckets(t *testing.T) {
	e := newEnv(t)
	// Two GC rounds with far-apart timestamps get separate buckets.
	p1, err := e.p.ProvisionGC(0, contiguousPages(128), 100, e.clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.p.ProvisionGC(0, contiguousPages(128), 100000, e.clock, 2)
	if err != nil {
		t.Fatal(err)
	}
	eb1 := p1.Pages[0].Addr.EBlock()
	eb2 := p2.Pages[0].Addr.EBlock()
	if eb1 == eb2 {
		t.Fatal("far-apart timestamps shared a bucket")
	}
	if len(e.p.GCOpen(0)) != 2 {
		t.Fatalf("buckets = %v", e.p.GCOpen(0))
	}
	// A timestamp near the first bucket reuses it.
	p3, err := e.p.ProvisionGC(0, contiguousPages(128), 150, e.clock, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Pages[0].Addr.EBlock() != eb1 {
		t.Fatal("nearby timestamp did not reuse bucket")
	}
	// GC eblocks carry the bucket timestamp.
	d, _ := e.st.Desc(0, eb1)
	if d.Stream != record.StreamGC || d.Timestamp != 100 {
		t.Fatalf("gc eblock desc: %+v", d)
	}
}

func TestGCBucketCap(t *testing.T) {
	geo := flash.SmallGeometry()
	st, _ := summary.New(geo, 8)
	cfg := DefaultConfig()
	cfg.GCBuckets = 2
	p, _ := New(geo, st, cfg)
	clock := func() uint64 { return 1 }
	for i, ts := range []uint64{10, 100000, 200000, 300000} {
		if _, err := p.ProvisionGC(1, contiguousPages(128), ts, clock, record.LSN(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(p.GCOpen(1)); got > 2 {
		t.Fatalf("bucket cap exceeded: %d", got)
	}
}

func TestProvisionLogSlots(t *testing.T) {
	e := newEnv(t)
	slots, events, err := e.p.ProvisionLogSlots(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 3 {
		t.Fatalf("slots = %d", len(slots))
	}
	// Two streams open: consecutive slots alternate EBLOCKs so that any
	// three consecutive forward candidates span two EBLOCKs.
	if len(events) != 2 || events[0].OpenedEB < 0 || events[1].OpenedEB < 0 {
		t.Fatalf("events = %+v", events)
	}
	if slots[0].Channel == slots[1].Channel && slots[0].EBlock == slots[1].EBlock {
		t.Fatalf("candidates share an eblock: %+v", slots)
	}
	if slots[0].Channel != slots[2].Channel || slots[0].EBlock != slots[2].EBlock ||
		slots[2].WBlock != slots[0].WBlock+1 {
		t.Fatalf("stream-0 slots not sequential: %+v", slots)
	}
	for _, sl := range slots {
		d, _ := e.st.Desc(sl.Channel, sl.EBlock)
		if d.State != summary.Open || d.Stream != record.StreamLog {
			t.Fatalf("log eblock desc: %+v", d)
		}
	}
	// Exhaust both streams: new eblocks open and old ones close.
	per := e.geo.WBlocksPerEBlock()
	slots2, events2, err := e.p.ProvisionLogSlots(2*per, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots2) != 2*per {
		t.Fatalf("slots2 = %d", len(slots2))
	}
	var opened, closed int
	for _, ev := range events2 {
		if ev.OpenedEB >= 0 {
			opened++
		}
		if ev.ClosedEB >= 0 {
			closed++
			d, _ := e.st.Desc(ev.ClosedCh, ev.ClosedEB)
			if d.State != summary.Used {
				t.Fatalf("closed log eblock not used: %+v", d)
			}
		}
	}
	if opened != 2 || closed != 2 {
		t.Fatalf("opened=%d closed=%d", opened, closed)
	}
}

func TestAbandonLogEBlock(t *testing.T) {
	e := newEnv(t)
	slots, _, err := e.p.ProvisionLogSlots(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.p.AbandonLogEBlock(slots[0].Channel, slots[0].EBlock, 5); err != nil {
		t.Fatal(err)
	}
	d, _ := e.st.Desc(slots[0].Channel, slots[0].EBlock)
	if d.State != summary.Used {
		t.Fatalf("abandoned log eblock: %+v", d)
	}
	// Fresh slots come from a new eblock.
	slots2, _, err := e.p.ProvisionLogSlots(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if slots2[0].Channel == slots[0].Channel && slots2[0].EBlock == slots[0].EBlock {
		t.Fatal("abandoned eblock reused")
	}
}

func TestRebuildFromSummary(t *testing.T) {
	e := newEnv(t)
	if _, err := e.p.ProvisionBatch(contiguousPages(128), e.clock, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.p.ProvisionGC(2, contiguousPages(128), 50, e.clock, 2); err != nil {
		t.Fatal(err)
	}
	// Fresh provisioner over the same summary table.
	p2, err := New(e.geo, e.st, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2.RebuildFromSummary()
	foundUser := false
	for ch := 0; ch < e.geo.Channels; ch++ {
		if p2.UserOpen(ch) >= 0 {
			foundUser = true
		}
	}
	if !foundUser {
		t.Fatal("user cursor not rebuilt")
	}
	if len(p2.GCOpen(2)) != 1 {
		t.Fatalf("gc buckets not rebuilt: %v", p2.GCOpen(2))
	}
}

func TestContinuedFillAcrossBatches(t *testing.T) {
	// Consecutive small batches accumulate into the same open eblock, each
	// starting at a wblock boundary (the provisioning invariant GC's
	// monotonic scan relies on: later writes have higher offsets).
	e := newEnv(t)
	lastOff := -1
	for i := 0; i < 10; i++ {
		plan, err := e.p.ProvisionGC(3, contiguousPages(64), 10, e.clock, record.LSN(i+1))
		if err != nil {
			t.Fatal(err)
		}
		off := plan.Pages[0].Addr.Offset()
		if off <= lastOff {
			t.Fatalf("offsets not increasing: %d then %d", lastOff, off)
		}
		lastOff = off
	}
}

func TestPartitionRespectsBoundariesAndOrder(t *testing.T) {
	e := newEnv(t)
	sizes := []int{64, 128, 19200, 64, 4096, 640, 64}
	pages := contiguousPages(sizes...)
	chunks := e.p.partition(pages)
	if len(chunks) == 0 || len(chunks) > e.geo.Channels {
		t.Fatalf("chunks = %d", len(chunks))
	}
	flat := 0
	for _, c := range chunks {
		for _, pg := range c {
			if pg.LPID != pages[flat].LPID {
				t.Fatal("partition reordered pages")
			}
			flat++
		}
	}
	if flat != len(pages) {
		t.Fatalf("partition lost pages: %d/%d", flat, len(pages))
	}
}

func TestEmptyBatch(t *testing.T) {
	e := newEnv(t)
	plan, err := e.p.ProvisionBatch(nil, e.clock, 1)
	if err != nil || len(plan.Pages) != 0 || len(plan.IOs) != 0 {
		t.Fatalf("empty batch: %+v %v", plan, err)
	}
}
