package summary

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"eleos/internal/addr"
	"eleos/internal/flash"
	"eleos/internal/record"
)

func newTestTable(t *testing.T) *Table {
	t.Helper()
	tb, err := New(flash.SmallGeometry(), 8)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestLifecycleTransitions(t *testing.T) {
	tb := newTestTable(t)
	d, err := tb.Desc(0, 0)
	if err != nil || d.State != Free {
		t.Fatalf("initial state: %+v %v", d, err)
	}
	if err := tb.OpenEBlock(0, 0, record.StreamUser, 5); err != nil {
		t.Fatal(err)
	}
	if err := tb.OpenEBlock(0, 0, record.StreamUser, 6); !errors.Is(err, ErrNotFree) {
		t.Fatalf("double open: %v", err)
	}
	d, _ = tb.Desc(0, 0)
	if d.State != Open || d.Stream != record.StreamUser {
		t.Fatalf("after open: %+v", d)
	}
	if err := tb.CloseEBlock(0, 0, 42, 2, 7); err != nil {
		t.Fatal(err)
	}
	d, _ = tb.Desc(0, 0)
	if d.State != Used || d.Timestamp != 42 || d.MetaWBlocks != 2 {
		t.Fatalf("after close: %+v", d)
	}
	if err := tb.CloseEBlock(0, 0, 43, 2, 8); !errors.Is(err, ErrNotOpen) {
		t.Fatalf("double close: %v", err)
	}
	if err := tb.FreeEBlock(0, 0, 9); err != nil {
		t.Fatal(err)
	}
	d, _ = tb.Desc(0, 0)
	if d.State != Free || d.EraseCount != 1 || d.Avail != 0 || d.Timestamp != 0 {
		t.Fatalf("after free: %+v", d)
	}
	if err := tb.FreeEBlock(0, 0, 10); !errors.Is(err, ErrNotUsed) {
		t.Fatalf("freeing free block: %v", err)
	}
}

func TestFreeOpenEBlockAfterMigration(t *testing.T) {
	tb := newTestTable(t)
	if err := tb.OpenEBlock(1, 1, record.StreamUser, 1); err != nil {
		t.Fatal(err)
	}
	// Migration erases open (write-failed) EBLOCKs too.
	if err := tb.FreeEBlock(1, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestTakeFreeWearLevelling(t *testing.T) {
	tb := newTestTable(t)
	// Cycle eblock 0 a few times to raise its erase count.
	for i := 0; i < 3; i++ {
		if err := tb.OpenEBlock(0, 0, record.StreamUser, 1); err != nil {
			t.Fatal(err)
		}
		if err := tb.CloseEBlock(0, 0, 1, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := tb.FreeEBlock(0, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	eb, ok := tb.TakeFree(0)
	if !ok || eb == 0 {
		t.Fatalf("TakeFree should avoid worn eblock 0, got %d %v", eb, ok)
	}
}

func TestFreeCountAndReserve(t *testing.T) {
	tb := newTestTable(t)
	g := flash.SmallGeometry()
	if tb.FreeCount(0) != g.EBlocksPerChannel {
		t.Fatalf("FreeCount = %d", tb.FreeCount(0))
	}
	if err := tb.Reserve(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tb.Reserve(0, 1); err != nil {
		t.Fatal(err)
	}
	if tb.FreeCount(0) != g.EBlocksPerChannel-2 {
		t.Fatalf("FreeCount after reserve = %d", tb.FreeCount(0))
	}
	d, _ := tb.Desc(0, 0)
	if d.State != Reserved {
		t.Fatal("reserve did not stick")
	}
}

func TestAvailAndWBlockAccounting(t *testing.T) {
	tb := newTestTable(t)
	_ = tb.OpenEBlock(2, 3, record.StreamGC, 1)
	if err := tb.AdvanceDataWBlocks(2, 3, 4, 2); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddAvail(2, 3, 1000, 3); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddAvail(2, 3, 24, 4); err != nil {
		t.Fatal(err)
	}
	d, _ := tb.Desc(2, 3)
	if d.DataWBlocks != 4 || d.Avail != 1024 {
		t.Fatalf("accounting: %+v", d)
	}
	if err := tb.SetDataWBlocks(2, 3, 7, 5); err != nil {
		t.Fatal(err)
	}
	d, _ = tb.Desc(2, 3)
	if d.DataWBlocks != 7 {
		t.Fatal("SetDataWBlocks failed")
	}
}

func TestMetaAppendOrderPreserved(t *testing.T) {
	tb := newTestTable(t)
	_ = tb.OpenEBlock(0, 2, record.StreamUser, 1)
	for i := 0; i < 10; i++ {
		e := MetaEntry{LPID: addr.LPID(i), Type: addr.PageUser, Offset: i * 64, Length: 64}
		if err := tb.AppendMeta(0, 2, e); err != nil {
			t.Fatal(err)
		}
	}
	m := tb.Meta(0, 2)
	if len(m) != 10 {
		t.Fatalf("meta len = %d", len(m))
	}
	for i, e := range m {
		if e.LPID != addr.LPID(i) || e.Offset != i*64 {
			t.Fatalf("meta[%d] = %+v", i, e)
		}
	}
	// Close drops metadata.
	_ = tb.CloseEBlock(0, 2, 1, 1, 2)
	if len(tb.Meta(0, 2)) != 0 {
		t.Fatal("close should drop in-memory metadata")
	}
}

func TestOpenEBlocksAndMinOpenLSN(t *testing.T) {
	tb := newTestTable(t)
	_ = tb.OpenEBlock(0, 2, record.StreamUser, 10)
	_ = tb.OpenEBlock(1, 3, record.StreamGC, 5)
	_ = tb.OpenEBlock(2, 4, record.StreamLog, 20)
	refs := tb.OpenEBlocks()
	if len(refs) != 3 {
		t.Fatalf("open count = %d", len(refs))
	}
	if tb.MinOpenLSN() != 5 {
		t.Fatalf("MinOpenLSN = %d", tb.MinOpenLSN())
	}
	_ = tb.CloseEBlock(1, 3, 1, 0, 30)
	if tb.MinOpenLSN() != 10 {
		t.Fatalf("MinOpenLSN after close = %d", tb.MinOpenLSN())
	}
}

func TestUsedEBlocks(t *testing.T) {
	tb := newTestTable(t)
	_ = tb.OpenEBlock(1, 0, record.StreamUser, 1)
	_ = tb.CloseEBlock(1, 0, 1, 0, 2)
	_ = tb.OpenEBlock(1, 5, record.StreamUser, 3)
	_ = tb.CloseEBlock(1, 5, 2, 0, 4)
	used := tb.UsedEBlocks(1)
	if len(used) != 2 || used[0] != 0 || used[1] != 5 {
		t.Fatalf("used = %v", used)
	}
}

func TestDirtyTrackingAndFlush(t *testing.T) {
	tb := newTestTable(t)
	if n := len(tb.DirtyPages()); n != 0 {
		t.Fatalf("fresh table dirty: %d", n)
	}
	_ = tb.OpenEBlock(0, 0, record.StreamUser, 100) // page 0
	_ = tb.AddAvail(3, 15, 64, 50)                  // last page
	dirty := tb.DirtyPages()
	if len(dirty) != 2 {
		t.Fatalf("dirty = %v", dirty)
	}
	if tb.MinRecLSN() != 50 {
		t.Fatalf("MinRecLSN = %d", tb.MinRecLSN())
	}
	img := tb.SerializePage(dirty[0], 200)
	a := addr.MustPack(1, 1, 0, addr.AlignUp(len(img)))
	tb.MarkFlushed(dirty[0], a, 200)
	if len(tb.DirtyPages()) != 1 {
		t.Fatal("flush did not clean page")
	}
	if tb.FlushLSNFor(0, 0) != 200 {
		t.Fatalf("FlushLSNFor = %d", tb.FlushLSNFor(0, 0))
	}
	loc := tb.Locator()
	if loc[dirty[0]] != a {
		t.Fatal("locator not updated")
	}
}

func TestSerializeLoadRoundTrip(t *testing.T) {
	tb := newTestTable(t)
	_ = tb.OpenEBlock(0, 3, record.StreamUser, 1)
	_ = tb.AdvanceDataWBlocks(0, 3, 5, 2)
	_ = tb.AddAvail(0, 3, 4096, 3)
	_ = tb.OpenEBlock(1, 1, record.StreamGC, 4)
	_ = tb.CloseEBlock(1, 1, 77, 1, 5)

	store := map[addr.PhysAddr][]byte{}
	next := 1
	for _, idx := range tb.DirtyPages() {
		img := tb.SerializePage(idx, 99)
		a := addr.MustPack(2, next, 0, addr.AlignUp(len(img)))
		next++
		store[a] = img
		tb.MarkFlushed(idx, a, 99)
	}
	loc := tb.Locator()

	tb2 := newTestTable(t)
	err := tb2.LoadFromLocator(loc, func(a addr.PhysAddr) ([]byte, error) {
		b, ok := store[a]
		if !ok {
			return nil, errors.New("missing")
		}
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := tb2.Desc(0, 3)
	if d.State != Open || d.DataWBlocks != 5 || d.Avail != 4096 || d.Stream != record.StreamUser {
		t.Fatalf("recovered (0,3): %+v", d)
	}
	d, _ = tb2.Desc(1, 1)
	if d.State != Used || d.Timestamp != 77 || d.MetaWBlocks != 1 {
		t.Fatalf("recovered (1,1): %+v", d)
	}
	if tb2.FlushLSNFor(0, 3) != 99 {
		t.Fatalf("recovered flush LSN = %d", tb2.FlushLSNFor(0, 3))
	}
	// Untouched eblocks default to Free.
	d, _ = tb2.Desc(3, 15)
	if d.State != Free {
		t.Fatalf("default state: %+v", d)
	}
}

func TestLoadRejectsCorruptPage(t *testing.T) {
	tb := newTestTable(t)
	_ = tb.OpenEBlock(0, 0, record.StreamUser, 1)
	idx := tb.DirtyPages()[0]
	img := tb.SerializePage(idx, 1)
	img[25] ^= 0xFF
	tb2 := newTestTable(t)
	loc := make([]addr.PhysAddr, tb2.NumPages())
	loc[idx] = addr.MustPack(1, 1, 0, addr.AlignUp(len(img)))
	err := tb2.LoadFromLocator(loc, func(addr.PhysAddr) ([]byte, error) { return img, nil })
	if !errors.Is(err, ErrBadPage) {
		t.Fatalf("expected ErrBadPage, got %v", err)
	}
}

func TestPageAddrIf(t *testing.T) {
	tb := newTestTable(t)
	a1 := addr.MustPack(1, 1, 0, 64)
	a2 := addr.MustPack(1, 2, 0, 64)
	tb.MarkFlushed(0, a1, 1)
	if !tb.PageAddrIf(0, a1, a2) {
		t.Fatal("relocation should succeed")
	}
	if tb.PageAddrIf(0, a1, a2) {
		t.Fatal("stale relocation should fail")
	}
	if tb.Locator()[0] != a2 {
		t.Fatal("locator not updated")
	}
	if tb.PageAddrIf(1000, a1, a2) {
		t.Fatal("out-of-range relocation should fail")
	}
}

func TestDropVolatile(t *testing.T) {
	tb := newTestTable(t)
	_ = tb.OpenEBlock(0, 0, record.StreamUser, 1)
	_ = tb.AppendMeta(0, 0, MetaEntry{LPID: 1, Type: addr.PageUser, Offset: 0, Length: 64})
	tb.DropVolatile()
	d, _ := tb.Desc(0, 0)
	if d.State != Free {
		t.Fatal("DropVolatile should reset descriptors")
	}
	if len(tb.Meta(0, 0)) != 0 || len(tb.DirtyPages()) != 0 {
		t.Fatal("DropVolatile left volatile state")
	}
}

func TestMetaBlockRoundTrip(t *testing.T) {
	entries := []MetaEntry{
		{LPID: 1, Type: addr.PageUser, Offset: 0, Length: 64},
		{LPID: 999, Type: addr.PageMap, Offset: 128, Length: 1920},
		{LPID: addr.MakeTableLPID(addr.PageSummary, 3), Type: addr.PageSummary, Offset: 32768, Length: 4096},
	}
	img := EncodeMetaBlock(entries)
	if len(img)%addr.Align != 0 {
		t.Fatal("meta block not aligned")
	}
	if len(img) != MetaBlockSize(len(entries)) {
		t.Fatal("MetaBlockSize mismatch")
	}
	got, err := DecodeMetaBlock(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("entries = %d", len(got))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, got[i], entries[i])
		}
	}
}

func TestMetaBlockCorruption(t *testing.T) {
	img := EncodeMetaBlock([]MetaEntry{{LPID: 1, Type: addr.PageUser, Offset: 0, Length: 64}})
	img[13] ^= 0x01
	if _, err := DecodeMetaBlock(img); !errors.Is(err, ErrBadMeta) {
		t.Fatal("corruption not detected")
	}
	if _, err := DecodeMetaBlock(make([]byte, 64)); !errors.Is(err, ErrBadMeta) {
		t.Fatal("zero block not rejected")
	}
	if _, err := DecodeMetaBlock(nil); !errors.Is(err, ErrBadMeta) {
		t.Fatal("nil block not rejected")
	}
}

func TestMetaBlockRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300)
		entries := make([]MetaEntry, n)
		for i := range entries {
			entries[i] = MetaEntry{
				LPID:   addr.LPID(rng.Uint64()),
				Type:   addr.PageType(1 + rng.Intn(5)),
				Offset: rng.Intn(1<<20) * addr.Align,
				Length: (1 + rng.Intn(1<<10)) * addr.Align,
			}
		}
		got, err := DecodeMetaBlock(EncodeMetaBlock(entries))
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRange(t *testing.T) {
	tb := newTestTable(t)
	if _, err := tb.Desc(99, 0); err == nil {
		t.Fatal("range not enforced")
	}
	if err := tb.OpenEBlock(0, 99, record.StreamUser, 1); err == nil {
		t.Fatal("range not enforced")
	}
	if err := tb.AddAvail(-1, 0, 1, 1); err == nil {
		t.Fatal("range not enforced")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Free: "free", Open: "open", Used: "used", Bad: "bad", Reserved: "reserved"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
