// Package summary implements the EBLOCK summary table of §III-B.
//
// Every EBLOCK has a descriptor holding its state (free / open / used /
// bad / reserved), erase count, counts of data and metadata WBLOCKs, the
// amount of reclaimable space (AVAIL) and a timestamp (an update sequence
// number proxy). Descriptors are under 32 bytes, and the table is
// paginated; a locator table with one address per summary page is small
// enough to live in the checkpoint record.
//
// Open EBLOCKs additionally carry in-memory metadata — one 16-byte entry
// (the paper's TAG) per stored LPAGE recording its LPID, type, offset and
// length — which is flushed to the EBLOCK's last WBLOCKs when it closes
// (§IV-A1) and is what garbage collection reads to find valid pages (§VI).
//
// Replay of summary updates is not idempotent by itself, so each summary
// page records the LSN at which it was flushed; recovery compares record
// LSNs against the flush LSN (§VIII-C3).
package summary

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"eleos/internal/addr"
	"eleos/internal/flash"
	"eleos/internal/record"
)

// State is an EBLOCK lifecycle state.
type State uint8

const (
	// Free: erased and available for allocation.
	Free State = iota
	// Open: partially written by one of the write streams.
	Open
	// Used: full, metadata flushed, eligible for GC.
	Used
	// Bad: exceeded erase limit or otherwise retired.
	Bad
	// Reserved: excluded from normal provisioning (checkpoint area).
	Reserved
)

func (s State) String() string {
	switch s {
	case Free:
		return "free"
	case Open:
		return "open"
	case Used:
		return "used"
	case Bad:
		return "bad"
	case Reserved:
		return "reserved"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(s))
	}
}

// Descriptor is the persistent per-EBLOCK state.
type Descriptor struct {
	State       State
	Stream      record.StreamKind // valid when Open (which stream owns it)
	EraseCount  uint32
	DataWBlocks uint32 // WBLOCKs provisioned for data
	MetaWBlocks uint32 // WBLOCKs holding flushed metadata
	Avail       uint64 // reclaimable bytes (obsolete LPAGEs + fragmentation)
	Timestamp   uint64 // close time (update seq); for log EBLOCKs the max LSN
}

// MetaEntry is one TAG: the identity and extent of a stored LPAGE.
type MetaEntry struct {
	LPID   addr.LPID
	Type   addr.PageType
	Offset int // byte offset within the EBLOCK
	Length int // byte length
}

// Table is the EBLOCK summary table. Safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	geo     flash.Geometry
	perPage int

	desc [][]Descriptor // [channel][eblock]

	meta    map[[2]int][]MetaEntry // open-EBLOCK metadata
	openLSN map[[2]int]record.LSN  // LSN at open, for the truncation LSN

	dirty    map[int]record.LSN // page index -> recLSN
	flushLSN map[int]record.LSN // page index -> LSN at last flush
	locator  []addr.PhysAddr    // page index -> flash address
}

// New creates a summary table for the geometry with perPage descriptors per
// summary page.
func New(geo flash.Geometry, perPage int) (*Table, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if perPage <= 0 {
		return nil, errors.New("summary: perPage must be positive")
	}
	t := &Table{
		geo:      geo,
		perPage:  perPage,
		desc:     make([][]Descriptor, geo.Channels),
		meta:     make(map[[2]int][]MetaEntry),
		openLSN:  make(map[[2]int]record.LSN),
		dirty:    make(map[int]record.LSN),
		flushLSN: make(map[int]record.LSN),
		locator:  make([]addr.PhysAddr, (geo.Channels*geo.EBlocksPerChannel+perPage-1)/perPage),
	}
	for ch := range t.desc {
		t.desc[ch] = make([]Descriptor, geo.EBlocksPerChannel)
	}
	return t, nil
}

// NumPages returns how many summary pages cover the table.
func (t *Table) NumPages() int { return len(t.locator) }

func (t *Table) pageOf(ch, eb int) int {
	return (ch*t.geo.EBlocksPerChannel + eb) / t.perPage
}

func (t *Table) markDirty(ch, eb int, lsn record.LSN) {
	idx := t.pageOf(ch, eb)
	if _, ok := t.dirty[idx]; !ok {
		t.dirty[idx] = lsn
	}
}

func (t *Table) check(ch, eb int) error {
	if ch < 0 || ch >= t.geo.Channels || eb < 0 || eb >= t.geo.EBlocksPerChannel {
		return fmt.Errorf("summary: eblock (%d,%d) out of range", ch, eb)
	}
	return nil
}

// Desc returns a copy of the descriptor.
func (t *Table) Desc(ch, eb int) (Descriptor, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return Descriptor{}, err
	}
	return t.desc[ch][eb], nil
}

// SetDesc installs a descriptor wholesale (recovery only).
func (t *Table) SetDesc(ch, eb int, d Descriptor, lsn record.LSN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	t.desc[ch][eb] = d
	t.markDirty(ch, eb, lsn)
	return nil
}

// Reserve excludes an EBLOCK from provisioning (checkpoint area).
func (t *Table) Reserve(ch, eb int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	t.desc[ch][eb].State = Reserved
	t.markDirty(ch, eb, 1)
	return nil
}

// FreeCount returns the number of free EBLOCKs in a channel.
func (t *Table) FreeCount(ch int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for eb := range t.desc[ch] {
		if t.desc[ch][eb].State == Free {
			n++
		}
	}
	return n
}

// TakeFree returns the free EBLOCK with the lowest erase count in the
// channel (wear-levelling), without changing its state.
func (t *Table) TakeFree(ch int) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	best, bestErase := -1, uint32(0)
	for eb := range t.desc[ch] {
		d := &t.desc[ch][eb]
		if d.State != Free {
			continue
		}
		if best < 0 || d.EraseCount < bestErase {
			best, bestErase = eb, d.EraseCount
		}
	}
	return best, best >= 0
}

// Errors for state transitions.
var (
	ErrNotFree = errors.New("summary: eblock not free")
	ErrNotOpen = errors.New("summary: eblock not open")
	ErrNotUsed = errors.New("summary: eblock not used")
)

// OpenEBlock transitions Free -> Open for the given stream.
func (t *Table) OpenEBlock(ch, eb int, stream record.StreamKind, lsn record.LSN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	d := &t.desc[ch][eb]
	if d.State != Free {
		return fmt.Errorf("%w: (%d,%d) is %v", ErrNotFree, ch, eb, d.State)
	}
	d.State = Open
	d.Stream = stream
	d.DataWBlocks = 0
	d.MetaWBlocks = 0
	d.Avail = 0
	d.Timestamp = 0
	t.meta[[2]int{ch, eb}] = nil
	t.openLSN[[2]int{ch, eb}] = lsn
	t.markDirty(ch, eb, lsn)
	return nil
}

// CloseEBlock transitions Open -> Used, recording the closing timestamp and
// how many WBLOCKs hold metadata; the in-memory metadata is dropped.
func (t *Table) CloseEBlock(ch, eb int, ts uint64, metaWBlocks int, lsn record.LSN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	d := &t.desc[ch][eb]
	if d.State != Open {
		return fmt.Errorf("%w: (%d,%d) is %v", ErrNotOpen, ch, eb, d.State)
	}
	d.State = Used
	d.Timestamp = ts
	d.MetaWBlocks = uint32(metaWBlocks)
	delete(t.meta, [2]int{ch, eb})
	delete(t.openLSN, [2]int{ch, eb})
	t.markDirty(ch, eb, lsn)
	return nil
}

// FreeEBlock transitions Used (or Open, after migration) -> Free following
// an erase, bumping the erase count.
func (t *Table) FreeEBlock(ch, eb int, lsn record.LSN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	d := &t.desc[ch][eb]
	if d.State != Used && d.State != Open {
		return fmt.Errorf("%w: (%d,%d) is %v", ErrNotUsed, ch, eb, d.State)
	}
	*d = Descriptor{State: Free, EraseCount: d.EraseCount + 1}
	delete(t.meta, [2]int{ch, eb})
	delete(t.openLSN, [2]int{ch, eb})
	t.markDirty(ch, eb, lsn)
	return nil
}

// MarkBad retires an EBLOCK.
func (t *Table) MarkBad(ch, eb int, lsn record.LSN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	t.desc[ch][eb].State = Bad
	delete(t.meta, [2]int{ch, eb})
	delete(t.openLSN, [2]int{ch, eb})
	t.markDirty(ch, eb, lsn)
	return nil
}

// AdvanceDataWBlocks accounts n more provisioned data WBLOCKs.
func (t *Table) AdvanceDataWBlocks(ch, eb, n int, lsn record.LSN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	t.desc[ch][eb].DataWBlocks += uint32(n)
	t.markDirty(ch, eb, lsn)
	return nil
}

// SetDataWBlocks sets the provisioned-data cursor (recovery fix-up).
func (t *Table) SetDataWBlocks(ch, eb, n int, lsn record.LSN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	t.desc[ch][eb].DataWBlocks = uint32(n)
	t.markDirty(ch, eb, lsn)
	return nil
}

// AddAvail adds n reclaimable bytes to the EBLOCK (obsolete versions,
// fragmentation, aborted writes).
func (t *Table) AddAvail(ch, eb, n int, lsn record.LSN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	t.desc[ch][eb].Avail += uint64(n)
	t.markDirty(ch, eb, lsn)
	return nil
}

// SetTimestamp updates the EBLOCK timestamp (log EBLOCKs track their
// highest contained LSN here, enabling truncation-based reclaim).
func (t *Table) SetTimestamp(ch, eb int, ts uint64, lsn record.LSN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	t.desc[ch][eb].Timestamp = ts
	t.markDirty(ch, eb, lsn)
	return nil
}

// RaiseTimestamp raises the EBLOCK timestamp to at least ts. Log EBLOCKs
// track the highest LSN actually programmed into them this way, so a page
// written into a slot provisioned before the EBLOCK was retired still
// protects the EBLOCK from premature truncation-reclaim.
func (t *Table) RaiseTimestamp(ch, eb int, ts uint64, lsn record.LSN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	if ts > t.desc[ch][eb].Timestamp {
		t.desc[ch][eb].Timestamp = ts
		t.markDirty(ch, eb, lsn)
	}
	return nil
}

// AppendMeta appends a TAG to an open EBLOCK's in-memory metadata.
func (t *Table) AppendMeta(ch, eb int, e MetaEntry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(ch, eb); err != nil {
		return err
	}
	k := [2]int{ch, eb}
	t.meta[k] = append(t.meta[k], e)
	return nil
}

// Meta returns a copy of an open EBLOCK's metadata entries in append order.
func (t *Table) Meta(ch, eb int) []MetaEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]MetaEntry(nil), t.meta[[2]int{ch, eb}]...)
}

// ClearMeta drops an EBLOCK's in-memory metadata (recovery replay of a
// close record, §VIII-C3 case 2).
func (t *Table) ClearMeta(ch, eb int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.meta, [2]int{ch, eb})
}

// OpenRef identifies an open EBLOCK and the stream that owns it.
type OpenRef struct {
	Channel int
	EBlock  int
	Stream  record.StreamKind
	OpenLSN record.LSN
}

// OpenEBlocks lists all open EBLOCKs.
func (t *Table) OpenEBlocks() []OpenRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []OpenRef
	for ch := range t.desc {
		for eb := range t.desc[ch] {
			if t.desc[ch][eb].State == Open {
				out = append(out, OpenRef{
					Channel: ch, EBlock: eb,
					Stream:  t.desc[ch][eb].Stream,
					OpenLSN: t.openLSN[[2]int{ch, eb}],
				})
			}
		}
	}
	return out
}

// MinOpenLSN returns the smallest open-LSN across open EBLOCKs (0 if none),
// a component of the truncation LSN (§VIII-B).
func (t *Table) MinOpenLSN() record.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	var min record.LSN
	for _, l := range t.openLSN {
		if l != 0 && (min == 0 || l < min) {
			min = l
		}
	}
	return min
}

// SetOpenLSN restores an open EBLOCK's open-LSN (recovery).
func (t *Table) SetOpenLSN(ch, eb int, lsn record.LSN) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.openLSN[[2]int{ch, eb}] = lsn
}

// FreeList returns the channel's free EBLOCKs ordered by ascending erase
// count (wear-levelling order). Planners pop from the front.
func (t *Table) FreeList(ch int) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int
	for eb := range t.desc[ch] {
		if t.desc[ch][eb].State == Free {
			out = append(out, eb)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := t.desc[ch][out[i]], t.desc[ch][out[j]]
		if a.EraseCount != b.EraseCount {
			return a.EraseCount < b.EraseCount
		}
		return out[i] < out[j]
	})
	return out
}

// UsedEBlocks lists the used EBLOCKs of a channel.
func (t *Table) UsedEBlocks(ch int) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int
	for eb := range t.desc[ch] {
		if t.desc[ch][eb].State == Used {
			out = append(out, eb)
		}
	}
	return out
}

// --- pagination / persistence ---------------------------------------------

const (
	pageMagic = 0x53554D4D // "SUMM"
	descBytes = 32
)

// DirtyPages returns indices of dirty summary pages, ascending.
func (t *Table) DirtyPages() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.dirty))
	for idx := range t.dirty {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// MinRecLSN returns the smallest LSN that dirtied any summary page.
func (t *Table) MinRecLSN() record.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	var min record.LSN
	for _, l := range t.dirty {
		if l != 0 && (min == 0 || l < min) {
			min = l
		}
	}
	return min
}

// SerializePage returns the flash image of summary page idx; flushLSN is
// embedded so recovery can guard replay (§VIII-C3).
func (t *Table) SerializePage(idx int, flushLSN record.LSN) []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 20 + t.perPage*descBytes + 4
	buf := make([]byte, addr.AlignUp(n))
	binary.LittleEndian.PutUint32(buf[0:], pageMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(idx))
	binary.LittleEndian.PutUint32(buf[8:], uint32(t.perPage))
	binary.LittleEndian.PutUint64(buf[12:], uint64(flushLSN))
	off := 20
	for i := 0; i < t.perPage; i++ {
		global := idx*t.perPage + i
		ch, eb := global/t.geo.EBlocksPerChannel, global%t.geo.EBlocksPerChannel
		var d Descriptor
		if ch < t.geo.Channels {
			d = t.desc[ch][eb]
		}
		buf[off] = byte(d.State)
		buf[off+1] = byte(d.Stream)
		binary.LittleEndian.PutUint32(buf[off+4:], d.EraseCount)
		binary.LittleEndian.PutUint32(buf[off+8:], d.DataWBlocks)
		binary.LittleEndian.PutUint32(buf[off+12:], d.MetaWBlocks)
		binary.LittleEndian.PutUint64(buf[off+16:], d.Avail)
		binary.LittleEndian.PutUint64(buf[off+24:], d.Timestamp)
		off += descBytes
	}
	crc := crc32.ChecksumIEEE(buf[:off])
	binary.LittleEndian.PutUint32(buf[off:], crc)
	return buf
}

// MarkFlushed records that summary page idx was durably written at a with
// flush LSN lsn; the page becomes clean.
func (t *Table) MarkFlushed(idx int, a addr.PhysAddr, lsn record.LSN) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.dirty, idx)
	t.flushLSN[idx] = lsn
	if idx >= 0 && idx < len(t.locator) {
		t.locator[idx] = a
	}
}

// Locator returns a copy of the locator table for the checkpoint record.
func (t *Table) Locator() []addr.PhysAddr {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]addr.PhysAddr(nil), t.locator...)
}

// PageAddrIf conditionally relocates summary page idx (GC of a PageSummary
// LPAGE).
func (t *Table) PageAddrIf(idx int, old, new addr.PhysAddr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < 0 || idx >= len(t.locator) || t.locator[idx] != old {
		return false
	}
	t.locator[idx] = new
	return true
}

// SetPageAddr installs a summary-page address directly (recovery pass 1).
func (t *Table) SetPageAddr(idx int, a addr.PhysAddr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx >= 0 && idx < len(t.locator) {
		t.locator[idx] = a
	}
}

// ErrBadPage reports a corrupt summary page image.
var ErrBadPage = errors.New("summary: bad page image")

// LoadFromLocator rebuilds descriptors from flushed summary pages at
// recovery. Pages with invalid locator entries retain zero descriptors.
func (t *Table) LoadFromLocator(locator []addr.PhysAddr, load func(addr.PhysAddr) ([]byte, error)) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	copy(t.locator, locator)
	for idx, a := range locator {
		if !a.IsValid() {
			continue
		}
		raw, err := load(a)
		if err != nil {
			return fmt.Errorf("summary: load page %d: %w", idx, err)
		}
		if err := t.loadPageLocked(idx, raw); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) loadPageLocked(idx int, raw []byte) error {
	if len(raw) < 24 {
		return fmt.Errorf("%w: short", ErrBadPage)
	}
	if binary.LittleEndian.Uint32(raw[0:]) != pageMagic {
		return fmt.Errorf("%w: magic", ErrBadPage)
	}
	if int(binary.LittleEndian.Uint32(raw[4:])) != idx {
		return fmt.Errorf("%w: index mismatch", ErrBadPage)
	}
	per := int(binary.LittleEndian.Uint32(raw[8:]))
	if per != t.perPage {
		return fmt.Errorf("%w: perPage mismatch", ErrBadPage)
	}
	flush := record.LSN(binary.LittleEndian.Uint64(raw[12:]))
	need := 20 + per*descBytes + 4
	if len(raw) < need {
		return fmt.Errorf("%w: truncated", ErrBadPage)
	}
	if crc32.ChecksumIEEE(raw[:20+per*descBytes]) != binary.LittleEndian.Uint32(raw[20+per*descBytes:]) {
		return fmt.Errorf("%w: checksum", ErrBadPage)
	}
	off := 20
	for i := 0; i < per; i++ {
		global := idx*per + i
		ch, eb := global/t.geo.EBlocksPerChannel, global%t.geo.EBlocksPerChannel
		if ch >= t.geo.Channels {
			break
		}
		t.desc[ch][eb] = Descriptor{
			State:       State(raw[off]),
			Stream:      record.StreamKind(raw[off+1]),
			EraseCount:  binary.LittleEndian.Uint32(raw[off+4:]),
			DataWBlocks: binary.LittleEndian.Uint32(raw[off+8:]),
			MetaWBlocks: binary.LittleEndian.Uint32(raw[off+12:]),
			Avail:       binary.LittleEndian.Uint64(raw[off+16:]),
			Timestamp:   binary.LittleEndian.Uint64(raw[off+24:]),
		}
		off += descBytes
	}
	t.flushLSN[idx] = flush
	return nil
}

// FlushLSNFor returns the flush LSN guarding the summary page covering
// (ch, eb): updates with record LSNs at or below it are already reflected.
func (t *Table) FlushLSNFor(ch, eb int) record.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLSN[t.pageOf(ch, eb)]
}

// DropVolatile discards all volatile state (crash simulation).
func (t *Table) DropVolatile() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for ch := range t.desc {
		for eb := range t.desc[ch] {
			t.desc[ch][eb] = Descriptor{}
		}
	}
	t.meta = make(map[[2]int][]MetaEntry)
	t.openLSN = make(map[[2]int]record.LSN)
	t.dirty = make(map[int]record.LSN)
	t.flushLSN = make(map[int]record.LSN)
	for i := range t.locator {
		t.locator[i] = 0
	}
}

// --- EBLOCK metadata block (flushed TAGs) ----------------------------------

const metaMagic = 0x4D455441 // "META"

// EncodeMetaBlock serializes TAG entries into the byte image flushed to an
// EBLOCK's final WBLOCKs on close.
func EncodeMetaBlock(entries []MetaEntry) []byte {
	n := 12 + len(entries)*16 + 4
	buf := make([]byte, addr.AlignUp(n))
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(entries)))
	off := 12
	for _, e := range entries {
		binary.LittleEndian.PutUint64(buf[off:], uint64(e.LPID))
		packed := uint64(e.Type)<<48 | uint64(e.Offset/addr.Align)<<24 | uint64(e.Length/addr.Align)
		binary.LittleEndian.PutUint64(buf[off+8:], packed)
		off += 16
	}
	crc := crc32.ChecksumIEEE(buf[:off])
	binary.LittleEndian.PutUint32(buf[off:], crc)
	return buf
}

// ErrBadMeta reports a corrupt or absent metadata block.
var ErrBadMeta = errors.New("summary: bad eblock metadata block")

// DecodeMetaBlock parses a metadata block image.
func DecodeMetaBlock(raw []byte) ([]MetaEntry, error) {
	if len(raw) < 16 {
		return nil, fmt.Errorf("%w: short", ErrBadMeta)
	}
	if binary.LittleEndian.Uint32(raw[0:]) != metaMagic {
		return nil, fmt.Errorf("%w: magic", ErrBadMeta)
	}
	n := int(binary.LittleEndian.Uint32(raw[4:]))
	need := 12 + n*16 + 4
	if n < 0 || len(raw) < need {
		return nil, fmt.Errorf("%w: truncated", ErrBadMeta)
	}
	if crc32.ChecksumIEEE(raw[:12+n*16]) != binary.LittleEndian.Uint32(raw[12+n*16:]) {
		return nil, fmt.Errorf("%w: checksum", ErrBadMeta)
	}
	out := make([]MetaEntry, n)
	for i := 0; i < n; i++ {
		off := 12 + i*16
		packed := binary.LittleEndian.Uint64(raw[off+8:])
		out[i] = MetaEntry{
			LPID:   addr.LPID(binary.LittleEndian.Uint64(raw[off:])),
			Type:   addr.PageType(packed >> 48),
			Offset: int(packed>>24&(1<<24-1)) * addr.Align,
			Length: int(packed&(1<<24-1)) * addr.Align,
		}
	}
	return out, nil
}

// MetaBlockSize returns the encoded size for n entries, 64-byte aligned.
func MetaBlockSize(n int) int { return addr.AlignUp(12 + n*16 + 4) }
