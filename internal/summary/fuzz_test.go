package summary

import (
	"math/rand"
	"testing"

	"eleos/internal/flash"
)

func fuzzGeometry() flash.Geometry { return flash.SmallGeometry() }

// TestDecodeMetaBlockNeverPanics hammers the TAG-block parser — GC reads
// these from flash, where a crashed close may have left anything.
func TestDecodeMetaBlockNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(600))
		rng.Read(b)
		entries, err := DecodeMetaBlock(b)
		if err == nil && entries == nil && len(b) >= 16 {
			// nil entries are fine only for an empty valid block.
			continue
		}
	}
}

// TestLoadPageNeverPanics hammers the summary-page parser.
func TestLoadPageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tb := newFuzzTable(t)
	for i := 0; i < 10000; i++ {
		b := make([]byte, rng.Intn(800))
		rng.Read(b)
		_ = tb.loadPageLocked(0, b)
	}
}

func newFuzzTable(t *testing.T) *Table {
	t.Helper()
	tb, err := New(fuzzGeometry(), 8)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}
