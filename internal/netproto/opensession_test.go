package netproto

import (
	"strings"
	"testing"
)

// TestOpenSessionRoundTrip: every representable (tenant, priority) pair
// must survive encode→decode, and the default pair must encode as the
// legacy empty body so old clients and new servers interoperate.
func TestOpenSessionRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		tenant   string
		priority uint8
		wantLen  int
	}{
		{"", 0, 0}, // default tag: legacy empty body
		{"alpha", 0, 3 + 5},
		{"", 7, 3},
		{"tenant-with-a-longer-name", 255, 3 + 25},
		{strings.Repeat("x", 255), 1, 3 + 255},
	} {
		body, err := OpenSessionBody(tc.tenant, tc.priority)
		if err != nil {
			t.Fatalf("OpenSessionBody(%q, %d): %v", tc.tenant, tc.priority, err)
		}
		if len(body) != tc.wantLen {
			t.Fatalf("OpenSessionBody(%q, %d) = %d bytes, want %d", tc.tenant, tc.priority, len(body), tc.wantLen)
		}
		tenant, prio, err := ParseOpenSession(body)
		if err != nil {
			t.Fatalf("ParseOpenSession(%q, %d): %v", tc.tenant, tc.priority, err)
		}
		if tenant != tc.tenant || prio != tc.priority {
			t.Fatalf("round trip (%q, %d) -> (%q, %d)", tc.tenant, tc.priority, tenant, prio)
		}
	}
}

// TestOpenSessionBodyRejectsOversizedTenant: the session layer caps
// tenant tags at 255 bytes (one length byte on the wire); the encoder
// must refuse rather than truncate.
func TestOpenSessionBodyRejectsOversizedTenant(t *testing.T) {
	if _, err := OpenSessionBody(strings.Repeat("x", 256), 0); err == nil {
		t.Fatal("256-byte tenant accepted")
	}
}

// TestParseOpenSessionRejects pins the malformed-body space: truncated
// headers, forged tenant lengths (both directions — trailing bytes are a
// length mismatch too), unknown versions, and the non-canonical
// versioned encoding of the default tag.
func TestParseOpenSessionRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"short header 1", []byte{1}},
		{"short header 2", []byte{1, 0}},
		{"unknown version", []byte{2, 0, 0}},
		{"version zero", []byte{0, 5, 1, 'a'}},
		{"tenant truncated", []byte{1, 0, 5, 'a', 'b'}},
		{"trailing bytes", []byte{1, 0, 1, 'a', 'b'}},
		{"forged tlen 255 empty", []byte{1, 0, 255}},
		{"non-canonical default", []byte{1, 0, 0}},
	} {
		if _, _, err := ParseOpenSession(tc.body); err == nil {
			t.Errorf("%s: %x accepted", tc.name, tc.body)
		}
	}
}
