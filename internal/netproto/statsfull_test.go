package netproto

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"eleos/internal/health"
	"eleos/internal/metrics"
)

func sampleSnapshot() metrics.Snapshot {
	reg := metrics.New()
	reg.Counter("wal.appends").Add(42)
	reg.Counter("core.write.batches").Add(7)
	reg.Gauge("server.inflight_bytes").Set(1 << 20)
	reg.Gauge("flash.chan0.queue_depth").Set(-3) // gauges may go negative on skew
	h := reg.Histogram("core.write.init_ns", metrics.DurationBounds())
	for _, v := range []int64{900, 1500, 3000, 1 << 40} {
		h.Observe(v)
	}
	reg.Histogram("wal.group_commit_records", metrics.SizeBounds()).Observe(12)
	snap := reg.Snapshot()
	snap.Labels = append(snap.Labels, metrics.Label{Key: "gc.policy", Value: "min-cost-decline"})
	return snap
}

func sampleHealth() health.DeviceHealth {
	var h health.DeviceHealth
	h.EBlocksTotal = 64
	h.FreeEBlocks = 40
	h.OpenEBlocks = 4
	h.UsedEBlocks = 17
	h.BadEBlocks = 1
	h.ReservedEBlocks = 2
	h.EraseTotal = 90
	h.EraseMin = 0
	h.EraseMax = 9
	h.EraseHist[0] = 30
	h.EraseHist[4] = 34
	h.FreeBytes = 40 << 20
	h.ValidBytes = 12 << 20
	h.DeadBytes = 5 << 20
	h.UtilHist[3] = 9
	h.UtilHist[9] = 8
	return h
}

func sampleStatsFull() StatsFull {
	return StatsFull{Snap: sampleSnapshot(), Health: sampleHealth()}
}

func TestStatsFullRoundTrip(t *testing.T) {
	sf := sampleStatsFull()
	body := EncodeStatsFull(sf)
	got, err := DecodeStatsFull(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sf) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, sf)
	}
}

func TestStatsFullEmptySnapshot(t *testing.T) {
	var sf StatsFull
	got, err := DecodeStatsFull(EncodeStatsFull(sf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sf) {
		t.Fatalf("empty round trip: %+v", got)
	}
	s := got.Snap
	if s.Counters != nil || s.Gauges != nil || s.Histograms != nil || s.Labels != nil {
		t.Fatalf("empty sections must decode as nil slices: %+v", s)
	}
}

func TestStatsFullLabelsRoundTrip(t *testing.T) {
	sf := StatsFull{Snap: metrics.Snapshot{Labels: []metrics.Label{
		{Key: "gc.policy", Value: "wear-aware"},
		{Key: "", Value: ""}, // empty key/value are legal on the wire
	}}}
	got, err := DecodeStatsFull(EncodeStatsFull(sf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sf) {
		t.Fatalf("labels round trip:\n got %+v\nwant %+v", got, sf)
	}
	if got.Snap.Label("gc.policy") != "wear-aware" {
		t.Fatalf("Label lookup = %q", got.Snap.Label("gc.policy"))
	}
}

func TestDecodeStatsFullRejectsOldVersions(t *testing.T) {
	// v1 and v2 bodies are rejected outright rather than defaulted: a
	// defaulted missing section (v1's labels, v2's health block) would
	// give one payload two valid encodings and break canonicality.
	full := EncodeStatsFull(StatsFull{})
	for _, v := range []byte{1, 2} {
		b := append([]byte(nil), full...)
		b[4] = v
		if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
			t.Fatalf("v%d body: %v, want ErrBadStats", v, err)
		}
	}
	// A faithful v2 body — no trailing health block — must fail even
	// before its version byte is inspected differently: decode stops at
	// the missing block.
	v2 := append([]byte(nil), full[:len(full)-health.WireBytes]...)
	if _, err := DecodeStatsFull(v2); !errors.Is(err, ErrBadStats) {
		t.Fatalf("missing health block: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullForgedLabelCount(t *testing.T) {
	full := EncodeStatsFull(StatsFull{})
	// Overwrite the nLabels word (just ahead of the health block) with a
	// giant count; the remaining bytes cannot hold it.
	b := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(b[len(b)-health.WireBytes-4:], 1<<31)
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("forged label count: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullForgedCounterCount(t *testing.T) {
	// A forged counter count must be rejected before it can size an
	// allocation: claim 2^31 counters in a tiny buffer.
	b := binary.LittleEndian.AppendUint32(nil, statsMagic)
	b = append(b, statsVersion)
	b = binary.LittleEndian.AppendUint32(b, 1<<31)
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("forged count: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullForgedBoundsCount(t *testing.T) {
	// One histogram claiming 65535 bounds in a short buffer.
	b := binary.LittleEndian.AppendUint32(nil, statsMagic)
	b = append(b, statsVersion)
	b = binary.LittleEndian.AppendUint32(b, 0) // counters
	b = binary.LittleEndian.AppendUint32(b, 0) // gauges
	b = binary.LittleEndian.AppendUint32(b, 1) // histograms
	b = binary.LittleEndian.AppendUint16(b, 1) // name len
	b = append(b, 'h')
	b = binary.LittleEndian.AppendUint64(b, 0)      // sum
	b = binary.LittleEndian.AppendUint16(b, 0xFFFF) // forged nBounds
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("forged bounds: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullForgedNameLen(t *testing.T) {
	b := binary.LittleEndian.AppendUint32(nil, statsMagic)
	b = append(b, statsVersion)
	b = binary.LittleEndian.AppendUint32(b, 1)      // one counter...
	b = binary.LittleEndian.AppendUint16(b, 0xFFFF) // ...whose name overruns
	b = append(b, make([]byte, 8)...)
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("forged name len: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullTruncated(t *testing.T) {
	full := EncodeStatsFull(sampleStatsFull())
	// Every proper prefix must fail cleanly, never panic. Truncation
	// always eats into (at least) the trailing health block, which is
	// required to be exactly health.WireBytes.
	for n := 0; n < len(full); n++ {
		if _, err := DecodeStatsFull(full[:n]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", n, len(full))
		}
	}
}

func TestDecodeStatsFullTrailingBytes(t *testing.T) {
	full := EncodeStatsFull(sampleStatsFull())
	if _, err := DecodeStatsFull(append(full, 0)); !errors.Is(err, ErrBadStats) {
		t.Fatalf("trailing byte: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullBadMagicVersion(t *testing.T) {
	b := binary.LittleEndian.AppendUint32(nil, 0xDEADBEEF)
	b = append(b, statsVersion)
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("bad magic: %v", err)
	}
	b = binary.LittleEndian.AppendUint32(nil, statsMagic)
	b = append(b, 99)
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestHealthBinaryRoundTrip(t *testing.T) {
	h := sampleHealth()
	b := h.AppendBinary(nil)
	if len(b) != health.WireBytes {
		t.Fatalf("encoded %d bytes, want %d", len(b), health.WireBytes)
	}
	got, err := health.DecodeBinary(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("health round trip:\n got %+v\nwant %+v", got, h)
	}
	if _, err := health.DecodeBinary(b[:len(b)-1]); err == nil {
		t.Fatal("short health block accepted")
	}
}

func TestWatchStatsCodec(t *testing.T) {
	for _, ms := range []uint32{0, 1, 10, 250, 1000, 60_000, 1 << 31} {
		body := WatchStatsBody(ms)
		got, err := ParseWatchStats(body)
		if err != nil {
			t.Fatalf("interval %d: %v", ms, err)
		}
		if got != ms {
			t.Fatalf("interval %d round-tripped to %d", ms, got)
		}
	}
	for _, bad := range [][]byte{nil, {1}, {1, 2, 3}, {1, 2, 3, 4, 5}} {
		if _, err := ParseWatchStats(bad); err == nil {
			t.Fatalf("body %v accepted", bad)
		}
	}
}

func TestClampWatchInterval(t *testing.T) {
	cases := map[uint32]uint32{
		0:                  DefaultWatchIntervalMS,
		1:                  MinWatchIntervalMS,
		MinWatchIntervalMS: MinWatchIntervalMS,
		250:                250,
		MaxWatchIntervalMS: MaxWatchIntervalMS,
		1 << 31:            MaxWatchIntervalMS,
	}
	for in, want := range cases {
		if got := ClampWatchInterval(in); got != want {
			t.Fatalf("ClampWatchInterval(%d) = %d, want %d", in, got, want)
		}
	}
}
