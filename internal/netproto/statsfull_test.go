package netproto

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"eleos/internal/metrics"
)

func sampleSnapshot() metrics.Snapshot {
	reg := metrics.New()
	reg.Counter("wal.appends").Add(42)
	reg.Counter("core.write.batches").Add(7)
	reg.Gauge("server.inflight_bytes").Set(1 << 20)
	reg.Gauge("flash.chan0.queue_depth").Set(-3) // gauges may go negative on skew
	h := reg.Histogram("core.write.init_ns", metrics.DurationBounds())
	for _, v := range []int64{900, 1500, 3000, 1 << 40} {
		h.Observe(v)
	}
	reg.Histogram("wal.group_commit_records", metrics.SizeBounds()).Observe(12)
	snap := reg.Snapshot()
	snap.Labels = append(snap.Labels, metrics.Label{Key: "gc.policy", Value: "min-cost-decline"})
	return snap
}

func TestStatsFullRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	body := EncodeStatsFull(snap)
	got, err := DecodeStatsFull(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, snap)
	}
}

func TestStatsFullEmptySnapshot(t *testing.T) {
	snap := metrics.Snapshot{}
	got, err := DecodeStatsFull(EncodeStatsFull(snap))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("empty round trip: %+v", got)
	}
	if got.Counters != nil || got.Gauges != nil || got.Histograms != nil || got.Labels != nil {
		t.Fatalf("empty sections must decode as nil slices: %+v", got)
	}
}

func TestStatsFullLabelsRoundTrip(t *testing.T) {
	snap := metrics.Snapshot{Labels: []metrics.Label{
		{Key: "gc.policy", Value: "wear-aware"},
		{Key: "", Value: ""}, // empty key/value are legal on the wire
	}}
	got, err := DecodeStatsFull(EncodeStatsFull(snap))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("labels round trip:\n got %+v\nwant %+v", got, snap)
	}
	if got.Label("gc.policy") != "wear-aware" {
		t.Fatalf("Label lookup = %q", got.Label("gc.policy"))
	}
}

func TestDecodeStatsFullRejectsV1(t *testing.T) {
	// A v1 body — everything up to but excluding the labels section — must
	// be rejected outright: defaulting the missing section would give one
	// snapshot two valid encodings and break canonicality.
	full := EncodeStatsFull(metrics.Snapshot{})
	v1 := append([]byte(nil), full[:len(full)-4]...) // strip nLabels
	v1[4] = 1                                        // version byte
	if _, err := DecodeStatsFull(v1); !errors.Is(err, ErrBadStats) {
		t.Fatalf("v1 body: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullForgedLabelCount(t *testing.T) {
	full := EncodeStatsFull(metrics.Snapshot{})
	b := append([]byte(nil), full[:len(full)-4]...)
	b = binary.LittleEndian.AppendUint32(b, 1<<31) // forged nLabels
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("forged label count: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullForgedCounterCount(t *testing.T) {
	// A forged counter count must be rejected before it can size an
	// allocation: claim 2^31 counters in a tiny buffer.
	b := binary.LittleEndian.AppendUint32(nil, statsMagic)
	b = append(b, statsVersion)
	b = binary.LittleEndian.AppendUint32(b, 1<<31)
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("forged count: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullForgedBoundsCount(t *testing.T) {
	// One histogram claiming 65535 bounds in a short buffer.
	b := binary.LittleEndian.AppendUint32(nil, statsMagic)
	b = append(b, statsVersion)
	b = binary.LittleEndian.AppendUint32(b, 0) // counters
	b = binary.LittleEndian.AppendUint32(b, 0) // gauges
	b = binary.LittleEndian.AppendUint32(b, 1) // histograms
	b = binary.LittleEndian.AppendUint16(b, 1) // name len
	b = append(b, 'h')
	b = binary.LittleEndian.AppendUint64(b, 0)      // sum
	b = binary.LittleEndian.AppendUint16(b, 0xFFFF) // forged nBounds
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("forged bounds: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullForgedNameLen(t *testing.T) {
	b := binary.LittleEndian.AppendUint32(nil, statsMagic)
	b = append(b, statsVersion)
	b = binary.LittleEndian.AppendUint32(b, 1)      // one counter...
	b = binary.LittleEndian.AppendUint16(b, 0xFFFF) // ...whose name overruns
	b = append(b, make([]byte, 8)...)
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("forged name len: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullTruncated(t *testing.T) {
	full := EncodeStatsFull(sampleSnapshot())
	// Every proper prefix must fail cleanly, never panic.
	for n := 0; n < len(full); n++ {
		if _, err := DecodeStatsFull(full[:n]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", n, len(full))
		}
	}
}

func TestDecodeStatsFullTrailingBytes(t *testing.T) {
	full := EncodeStatsFull(sampleSnapshot())
	if _, err := DecodeStatsFull(append(full, 0)); !errors.Is(err, ErrBadStats) {
		t.Fatalf("trailing byte: %v, want ErrBadStats", err)
	}
}

func TestDecodeStatsFullBadMagicVersion(t *testing.T) {
	b := binary.LittleEndian.AppendUint32(nil, 0xDEADBEEF)
	b = append(b, statsVersion)
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("bad magic: %v", err)
	}
	b = binary.LittleEndian.AppendUint32(nil, statsMagic)
	b = append(b, 99)
	if _, err := DecodeStatsFull(b); !errors.Is(err, ErrBadStats) {
		t.Fatalf("bad version: %v", err)
	}
}
