package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"eleos/internal/trace"
)

// The trace_dump response body carries a trace.Dump in a binary layout
// (little-endian throughout):
//
//	magic u32 | version u8
//	epochUnixNano i64 | dropped u64 | nEvents u32
//	{ kind u8 | seq u64 | ts i64 | dur i64 |
//	  traceID u64 | sid u64 | wsn u64 | arg1 i64 | arg2 i64 } × nEvents
//
// Every entry is a fixed 65 bytes, so the decoder caps the claimed event
// count by the bytes actually remaining before sizing any allocation,
// and trailing bytes are an error — the same hostile-input posture as
// stats_full and core.DecodeBatch. The codec is canonical (one valid
// encoding per dump), which FuzzDecodeTraceDump relies on.

const (
	traceMagic     = 0x454C5452 // "ELTR"
	traceVersion   = 1
	traceEntrySize = 65
)

// ErrBadTrace reports a malformed trace_dump body.
var ErrBadTrace = errors.New("netproto: malformed trace dump")

// EncodeTraceDump serialises a flight-recorder dump into the trace_dump
// response body.
func EncodeTraceDump(d trace.Dump) []byte {
	b := make([]byte, 0, 25+traceEntrySize*len(d.Events))
	b = binary.LittleEndian.AppendUint32(b, traceMagic)
	b = append(b, traceVersion)
	b = binary.LittleEndian.AppendUint64(b, uint64(d.EpochUnixNano))
	b = binary.LittleEndian.AppendUint64(b, d.Dropped)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.Events)))
	for _, ev := range d.Events {
		b = append(b, byte(ev.Kind))
		b = binary.LittleEndian.AppendUint64(b, ev.Seq)
		b = binary.LittleEndian.AppendUint64(b, uint64(ev.TS))
		b = binary.LittleEndian.AppendUint64(b, uint64(ev.Dur))
		b = binary.LittleEndian.AppendUint64(b, ev.TraceID)
		b = binary.LittleEndian.AppendUint64(b, ev.SID)
		b = binary.LittleEndian.AppendUint64(b, ev.WSN)
		b = binary.LittleEndian.AppendUint64(b, uint64(ev.Arg1))
		b = binary.LittleEndian.AppendUint64(b, uint64(ev.Arg2))
	}
	return b
}

// DecodeTraceDump parses a trace_dump response body. An empty event
// section decodes as a nil slice, mirroring what Recorder.Dump produces
// for a disabled recorder.
func DecodeTraceDump(body []byte) (trace.Dump, error) {
	var d trace.Dump
	if len(body) < 25 {
		return d, fmt.Errorf("%w: truncated header", ErrBadTrace)
	}
	if magic := binary.LittleEndian.Uint32(body); magic != traceMagic {
		return d, fmt.Errorf("%w: magic", ErrBadTrace)
	}
	if v := body[4]; v != traceVersion {
		return d, fmt.Errorf("%w: version %d", ErrBadTrace, v)
	}
	d.EpochUnixNano = int64(binary.LittleEndian.Uint64(body[5:]))
	d.Dropped = binary.LittleEndian.Uint64(body[13:])
	n := binary.LittleEndian.Uint32(body[21:])
	rest := body[25:]
	if int64(n)*traceEntrySize > int64(len(rest)) {
		return d, fmt.Errorf("%w: count %d exceeds buffer capacity", ErrBadTrace, n)
	}
	if int(n)*traceEntrySize != len(rest) {
		return d, fmt.Errorf("%w: %d trailing bytes", ErrBadTrace, len(rest)-int(n)*traceEntrySize)
	}
	if n == 0 {
		return d, nil
	}
	d.Events = make([]trace.Event, n)
	for i := range d.Events {
		e := rest[i*traceEntrySize:]
		d.Events[i] = trace.Event{
			Kind:    trace.Kind(e[0]),
			Seq:     binary.LittleEndian.Uint64(e[1:]),
			TS:      int64(binary.LittleEndian.Uint64(e[9:])),
			Dur:     int64(binary.LittleEndian.Uint64(e[17:])),
			TraceID: binary.LittleEndian.Uint64(e[25:]),
			SID:     binary.LittleEndian.Uint64(e[33:]),
			WSN:     binary.LittleEndian.Uint64(e[41:]),
			Arg1:    int64(binary.LittleEndian.Uint64(e[49:])),
			Arg2:    int64(binary.LittleEndian.Uint64(e[57:])),
		}
	}
	return d, nil
}
