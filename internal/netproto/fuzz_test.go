package netproto

import (
	"testing"

	"eleos/internal/metrics"
	"eleos/internal/trace"
)

// FuzzDecodeStatsFull feeds arbitrary bytes to the stats_full decoder
// (mirroring core's FuzzDecodeBatch): it must reject or accept without
// panicking or over-allocating, and anything it accepts must re-encode
// to the identical byte string (the codec is canonical: one valid
// encoding per snapshot).
func FuzzDecodeStatsFull(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeStatsFull(StatsFull{}))
	reg := metrics.New()
	reg.Counter("a").Add(1)
	reg.Gauge("g").Set(-7)
	reg.Histogram("h", metrics.DurationBounds()).Observe(1234)
	f.Add(EncodeStatsFull(StatsFull{Snap: reg.Snapshot(), Health: sampleHealth()}))
	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := DecodeStatsFull(data)
		if err != nil {
			return
		}
		re := EncodeStatsFull(sf)
		if string(re) != string(data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzParseWatchStats: same contract for the watch_stats interval codec.
// The body is a single fixed-width u32, so canonicality is exact: any
// accepted body re-encodes byte-identically.
func FuzzParseWatchStats(f *testing.F) {
	f.Add([]byte{})
	f.Add(WatchStatsBody(0))
	f.Add(WatchStatsBody(DefaultWatchIntervalMS))
	f.Add(WatchStatsBody(^uint32(0)))
	f.Fuzz(func(t *testing.T, data []byte) {
		ms, err := ParseWatchStats(data)
		if err != nil {
			return
		}
		if re := WatchStatsBody(ms); string(re) != string(data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeOpenSession: same contract for the open_session tenant-tag
// codec — no panics, and any body the parser accepts must re-encode to
// the identical bytes. Canonicality here has teeth: the default tag has
// exactly one encoding (the legacy empty body), so the fuzzer proves the
// versioned form can never alias it.
func FuzzDecodeOpenSession(f *testing.F) {
	f.Add([]byte{})
	if b, err := OpenSessionBody("tenant-a", 3); err == nil {
		f.Add(b)
	}
	if b, err := OpenSessionBody("", 255); err == nil {
		f.Add(b)
	}
	f.Add([]byte{1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tenant, prio, err := ParseOpenSession(data)
		if err != nil {
			return
		}
		re, err := OpenSessionBody(tenant, prio)
		if err != nil {
			t.Fatalf("accepted (%q, %d) does not re-encode: %v", tenant, prio, err)
		}
		if string(re) != string(data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeTraceDump: same contract for the trace_dump codec — no
// panics, no over-allocation, and accepted inputs re-encode
// byte-identically (the 65-byte fixed entries make the codec canonical).
func FuzzDecodeTraceDump(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTraceDump(trace.Dump{}))
	f.Add(EncodeTraceDump(sampleDump()))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeTraceDump(data)
		if err != nil {
			return
		}
		re := EncodeTraceDump(d)
		if string(re) != string(data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
	})
}
