package netproto

import (
	"testing"

	"eleos/internal/metrics"
	"eleos/internal/trace"
)

// FuzzDecodeStatsFull feeds arbitrary bytes to the stats_full decoder
// (mirroring core's FuzzDecodeBatch): it must reject or accept without
// panicking or over-allocating, and anything it accepts must re-encode
// to the identical byte string (the codec is canonical: one valid
// encoding per snapshot).
func FuzzDecodeStatsFull(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeStatsFull(metrics.Snapshot{}))
	reg := metrics.New()
	reg.Counter("a").Add(1)
	reg.Gauge("g").Set(-7)
	reg.Histogram("h", metrics.DurationBounds()).Observe(1234)
	f.Add(EncodeStatsFull(reg.Snapshot()))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeStatsFull(data)
		if err != nil {
			return
		}
		re := EncodeStatsFull(snap)
		if string(re) != string(data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeTraceDump: same contract for the trace_dump codec — no
// panics, no over-allocation, and accepted inputs re-encode
// byte-identically (the 65-byte fixed entries make the codec canonical).
func FuzzDecodeTraceDump(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTraceDump(trace.Dump{}))
	f.Add(EncodeTraceDump(sampleDump()))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeTraceDump(data)
		if err != nil {
			return
		}
		re := EncodeTraceDump(d)
		if string(re) != string(data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
	})
}
