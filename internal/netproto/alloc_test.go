package netproto

import (
	"bytes"
	"io"
	"testing"

	"eleos/internal/trace"
)

// Allocation regression tests for the pooled frame path (the tentpole's
// "≈0 allocs/op in the steady-state frame loop" claim, pinned here so a
// refactor that silently reintroduces a per-frame allocation fails CI
// rather than a benchmark eyeball). Each test warms its scratch once,
// then asserts testing.AllocsPerRun sees nothing.

func TestAppendHelpersAllocFree(t *testing.T) {
	scratch := make([]byte, 0, 4096)
	body := bytes.Repeat([]byte{0xA5}, 512)
	if n := testing.AllocsPerRun(200, func() {
		scratch = AppendFrame(scratch[:0], MsgFlushBatch, body)
		scratch = AppendU64(scratch[:0], 0xDEADBEEF)
		scratch = AppendErrorBody(scratch[:0], CodeBadRequest, "bad batch")
		scratch = AppendFlushHead(scratch[:0], true, 7, 3, 41)
	}); n != 0 {
		t.Fatalf("append helpers allocate: %v allocs/op", n)
	}
}

func TestReadFrameBufAllocFree(t *testing.T) {
	var buf bytes.Buffer
	body := bytes.Repeat([]byte{0x5A}, 2048)
	if err := WriteFrame(&buf, MsgFlushBatch, body); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	r := bytes.NewReader(wire)

	// Warm the pool's size class once outside the measured runs.
	_, _, pb, err := ReadFrameBuf(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	pb.Release()

	if n := testing.AllocsPerRun(200, func() {
		r.Reset(wire)
		typ, got, pb, err := ReadFrameBuf(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		if typ != MsgFlushBatch || len(got) != len(body) {
			t.Fatalf("frame mismatch: typ=%d len=%d", typ, len(got))
		}
		pb.Release()
	}); n != 0 {
		t.Fatalf("ReadFrameBuf allocates: %v allocs/op", n)
	}
}

func TestFrameWriterAllocFree(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	small := bytes.Repeat([]byte{1}, 64)          // copied path
	large := bytes.Repeat([]byte{2}, 64<<10)      // vectored path
	head := []byte{9, 9, 9, 9, 9, 9, 9, 9, 1, 2} // flush prefix shape

	// Warm: grows fw's scratch to the largest copied frame.
	for _, f := range []func() error{
		func() error { return fw.WriteFrame(MsgRespFlushBatch, small) },
		func() error { return fw.WriteFrame2(MsgFlushBatch, head, large) },
	} {
		if err := f(); err != nil {
			t.Fatal(err)
		}
	}

	if n := testing.AllocsPerRun(200, func() {
		if err := fw.WriteFrame(MsgRespFlushBatch, small); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("small (copied) WriteFrame allocates: %v allocs/op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := fw.WriteFrame2(MsgFlushBatch, head, large); err != nil {
			t.Fatalf("WriteFrame2: %v", err)
		}
	}); n != 0 {
		t.Fatalf("large (vectored) WriteFrame2 allocates: %v allocs/op", n)
	}
}

// BenchmarkPooledFrameLoop is the steady-state frame loop end to end —
// read a flush-sized request frame from a pooled buffer, emit a
// vectored response borrowing it, release — shaped for the CI gate
// that greps its -benchmem output for "0 allocs/op".
func BenchmarkPooledFrameLoop(b *testing.B) {
	var buf bytes.Buffer
	body := bytes.Repeat([]byte{0x3C}, 32<<10)
	if err := WriteFrame(&buf, MsgFlushBatch, body); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	r := bytes.NewReader(wire)
	fw := NewFrameWriter(io.Discard)
	var head [16]byte

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(wire)
		typ, got, pb, err := ReadFrameBuf(r, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := fw.WriteFrame2(typ, head[:], got); err != nil {
			b.Fatal(err)
		}
		pb.Release()
	}
	b.SetBytes(int64(len(wire)))
}

// The flight recorder rides the same hot loop (every request emits
// spans), so its emit path is pinned alloc-free alongside the codec.
func TestTraceEmitAllocFree(t *testing.T) {
	r := trace.New(1 << 12)
	start := r.Now()
	if n := testing.AllocsPerRun(200, func() {
		r.Emit(trace.KBatchStart, 7, 3, 41, 4, 0)
		r.Span(trace.KClaim, 7, 3, 41, start, 0, 0)
	}); n != 0 {
		t.Fatalf("trace emit allocates: %v allocs/op", n)
	}
}
