package netproto

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"eleos/internal/bufpool"
)

// The pooled frame path: the allocation-free twins of ReadFrame and
// WriteFrame. A request's bytes are read from the socket once, into a
// reference-counted pooled buffer, and borrowed — never copied — by the
// decode, coalescing and program stages downstream (bufpool documents
// the ownership rules). Responses are emitted through a per-connection
// FrameWriter that assembles small frames in reused scratch and sends
// large bodies as vectored [header, body] writes (writev on TCP), so
// the steady-state frame loop performs zero heap allocations.

// hdrPool recycles the 4-byte length-header scratch: a stack array
// would escape through the io.Reader interface call and cost one
// allocation per frame.
var hdrPool = sync.Pool{New: func() any { return new([4]byte) }}

// ReadFrameBuf is ReadFrame into a pooled buffer. The returned body
// aliases buf's storage; the caller owns one reference and must
// buf.Release() when every borrower of body is done. On error no buffer
// is retained.
func ReadFrameBuf(r io.Reader, max int) (typ byte, body []byte, buf *bufpool.Buf, err error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	hdr := hdrPool.Get().(*[4]byte)
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		hdrPool.Put(hdr)
		return 0, nil, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	hdrPool.Put(hdr)
	if n < 1 {
		return 0, nil, nil, ErrShortBody
	}
	if int64(n) > int64(max) {
		return 0, nil, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	buf = bufpool.Get(int(n))
	payload := buf.Bytes()
	if _, err := io.ReadFull(r, payload); err != nil {
		buf.Release()
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, nil, err
	}
	return payload[0], payload[1:], buf, nil
}

// AppendFrame appends a whole frame (header, type, body) to dst and
// returns the extended slice — the allocation-free WriteFrame shape for
// callers batching frames into reused scratch.
func AppendFrame(dst []byte, typ byte, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(body)))
	dst = append(dst, typ)
	return append(dst, body...)
}

// vecCopyLimit is the body size below which a vectored write degrades
// into a copy: one writev costs more in setup than the memcpy it
// saves, and tiny acks dominate the reply mix.
const vecCopyLimit = 1024

// FrameWriter emits frames over one connection from reused internal
// scratch. Not safe for concurrent use; each connection handler owns
// one. Frame bodies totalling at most vecCopyLimit are copied after the
// header and written as one Write (one TCP segment, like WriteFrame);
// larger bodies go out as a vectored [header, body] write with no copy.
//
// Body slices passed in are read synchronously and not retained, but
// they must not alias the writer's own scratch (callers build bodies in
// their own buffers; the writer only ever assembles frames).
type FrameWriter struct {
	w       io.Writer
	scratch []byte
	// The vectored write's net.Buffers lives in vecs (a field: a local
	// would escape through WriteTo's pointer receiver and allocate its
	// header per call) backed by vecArr (WriteTo consumes the slice it
	// advances over, so the header is rebuilt over this fixed array each
	// write rather than relying on surviving capacity).
	vecs   net.Buffers
	vecArr [2][]byte
}

// NewFrameWriter wraps a connection. The scratch grows to the largest
// copied frame and stays.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, scratch: make([]byte, 0, 512)}
}

// WriteFrame writes one frame with the given body.
func (fw *FrameWriter) WriteFrame(typ byte, body []byte) error {
	return fw.WriteFrame2(typ, body, nil)
}

// WriteFrame2 writes one frame whose body is the concatenation
// head||tail, without materialising the concatenation: small frames are
// copied into scratch and written once; for large frames the header and
// head are copied and the tail rides the vectored write untouched. The
// split fits flush requests exactly — a small fixed prefix (sid, wsn)
// ahead of a large borrowed batch buffer.
func (fw *FrameWriter) WriteFrame2(typ byte, head, tail []byte) error {
	n := len(head) + len(tail)
	if n <= vecCopyLimit {
		frame := fw.frameBuf(5 + n)
		binary.LittleEndian.PutUint32(frame, uint32(1+n))
		frame[4] = typ
		copy(frame[5:], head)
		copy(frame[5+len(head):], tail)
		_, err := fw.w.Write(frame)
		return err
	}
	pre := fw.frameBuf(5 + len(head))
	binary.LittleEndian.PutUint32(pre, uint32(1+n))
	pre[4] = typ
	copy(pre[5:], head)
	fw.vecArr[0], fw.vecArr[1] = pre, tail
	fw.vecs = net.Buffers(fw.vecArr[:])
	_, err := fw.vecs.WriteTo(fw.w)
	// Drop the tail references: the writer must not pin a caller's
	// (possibly pooled) buffer past the write.
	fw.vecs = nil
	fw.vecArr[0], fw.vecArr[1] = nil, nil
	return err
}

// frameBuf returns the scratch resized to n bytes, growing as needed.
func (fw *FrameWriter) frameBuf(n int) []byte {
	if cap(fw.scratch) < n {
		fw.scratch = make([]byte, 0, n)
	}
	return fw.scratch[:n]
}

// AppendErrorBody is ErrorBody appending into caller scratch.
func AppendErrorBody(dst []byte, code uint16, msg string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, code)
	return append(dst, msg...)
}

// AppendFlushHead appends the fixed flush_batch body prefix to dst: the
// trace ID when traced (the frame type must then be
// MsgFlushBatchTraced), then sid and wsn. The batch wire bytes travel
// separately (WriteFrame2 tail).
func AppendFlushHead(dst []byte, traced bool, traceID, sid, wsn uint64) []byte {
	if traced {
		dst = AppendU64(dst, traceID)
	}
	dst = AppendU64(dst, sid)
	return AppendU64(dst, wsn)
}
