package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"eleos/internal/health"
	"eleos/internal/metrics"
)

// The stats_full response body carries a full metrics.Snapshot plus the
// device-health census in a binary layout (little-endian throughout):
//
//	magic u32 | version u8
//	nCounters u32 | { nameLen u16 | name | value i64 } ...
//	nGauges   u32 | { nameLen u16 | name | value i64 } ...
//	nHists    u32 | { nameLen u16 | name | sum i64 | nBounds u16 |
//	                  bounds i64 × nBounds | buckets i64 × (nBounds+1) } ...
//	nLabels   u32 | { keyLen u16 | key | valLen u16 | value } ...
//	health block (health.WireBytes, fixed size)
//
// Version 2 added the trailing labels section, which carries exporter
// facts that are not instruments (e.g. the active "gc.policy" name).
// Version 3 appends the device-health census as a fixed-size block —
// ALWAYS present, never length-prefixed or flagged, because an optional
// block would give the zero-valued census two encodings and break the
// one-valid-encoding-per-snapshot canonicality contract the fuzzer
// enforces. The decoder is strict-v3: v1/v2 bodies are rejected rather
// than defaulted.
//
// Derived histogram fields (Count, P50/P95/P99) are NOT on the wire:
// Count is by construction the sum of the bucket values and the
// quantiles are a pure function of Bounds/Buckets, so the decoder
// recomputes them via Finalize and both ends agree field-for-field.
//
// Like core.DecodeBatch, the decoder treats every length and count as
// hostile: section counts are capped by the bytes actually remaining
// (divided by the minimum entry size), names and bound tables are
// bounds-checked before any allocation sized from them, and trailing
// bytes are an error.

const (
	statsMagic   = 0x454C4D53 // "ELMS"
	statsVersion = 3

	maxStatsName   = 4096 // instrument names are short; forged ones need not be honored
	maxStatsBounds = 4096 // DurationBounds is 24; a forged table must not size an alloc
)

// ErrBadStats reports a malformed stats_full body.
var ErrBadStats = errors.New("netproto: malformed stats snapshot")

// StatsFull is the full payload of a stats_full (or stats push) body:
// the instrument snapshot plus the device-health census taken alongside
// it.
type StatsFull struct {
	Snap   metrics.Snapshot
	Health health.DeviceHealth
}

// EncodeStatsFull serialises a snapshot + health census into the
// stats_full response body.
func EncodeStatsFull(sf StatsFull) []byte {
	s := sf.Snap
	n := 5 + 12 + health.WireBytes
	for _, c := range s.Counters {
		n += 10 + len(c.Name)
	}
	for _, g := range s.Gauges {
		n += 10 + len(g.Name)
	}
	for _, h := range s.Histograms {
		n += 12 + len(h.Name) + 8*len(h.Bounds) + 8*len(h.Buckets)
	}
	for _, l := range s.Labels {
		n += 4 + len(l.Key) + len(l.Value)
	}
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint32(b, statsMagic)
	b = append(b, statsVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Counters)))
	for _, c := range s.Counters {
		b = appendStatsName(b, c.Name)
		b = binary.LittleEndian.AppendUint64(b, uint64(c.Value))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Gauges)))
	for _, g := range s.Gauges {
		b = appendStatsName(b, g.Name)
		b = binary.LittleEndian.AppendUint64(b, uint64(g.Value))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Histograms)))
	for _, h := range s.Histograms {
		b = appendStatsName(b, h.Name)
		b = binary.LittleEndian.AppendUint64(b, uint64(h.Sum))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(h.Bounds)))
		for _, v := range h.Bounds {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
		for _, v := range h.Buckets {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Labels)))
	for _, l := range s.Labels {
		b = appendStatsName(b, l.Key)
		b = appendStatsName(b, l.Value)
	}
	return sf.Health.AppendBinary(b)
}

func appendStatsName(b []byte, name string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(name)))
	return append(b, name...)
}

// statsReader walks a stats_full body with bounds checks on every read.
type statsReader struct {
	b   []byte
	off int
}

func (r *statsReader) remaining() int { return len(r.b) - r.off }

func (r *statsReader) u16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, fmt.Errorf("%w: truncated u16", ErrBadStats)
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *statsReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("%w: truncated u32", ErrBadStats)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *statsReader) i64() (int64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated i64", ErrBadStats)
	}
	v := int64(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func (r *statsReader) name() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxStatsName {
		return "", fmt.Errorf("%w: name length %d", ErrBadStats, n)
	}
	if r.remaining() < int(n) {
		return "", fmt.Errorf("%w: truncated name", ErrBadStats)
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// sectionCount reads a section's element count and rejects counts the
// remaining bytes cannot possibly hold (minEntry is the smallest legal
// wire size of one element), so a forged count cannot size a giant
// preallocation.
func (r *statsReader) sectionCount(minEntry int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(minEntry) > int64(r.remaining()) {
		return 0, fmt.Errorf("%w: count %d exceeds buffer capacity", ErrBadStats, n)
	}
	return int(n), nil
}

// DecodeStatsFull parses a stats_full response body back into the
// snapshot + health census, recomputing the derived histogram fields.
// Empty sections decode as nil slices, mirroring what Registry.Snapshot
// produces, so a decoded snapshot compares deep-equal to the one that
// was encoded.
func DecodeStatsFull(body []byte) (StatsFull, error) {
	var sf StatsFull
	s := &sf.Snap
	r := &statsReader{b: body}
	magic, err := r.u32()
	if err != nil {
		return sf, err
	}
	if magic != statsMagic {
		return sf, fmt.Errorf("%w: magic", ErrBadStats)
	}
	if r.remaining() < 1 {
		return sf, fmt.Errorf("%w: truncated version", ErrBadStats)
	}
	if v := r.b[r.off]; v != statsVersion {
		return sf, fmt.Errorf("%w: version %d", ErrBadStats, v)
	}
	r.off++

	nc, err := r.sectionCount(10) // nameLen + empty name + value
	if err != nil {
		return sf, err
	}
	for i := 0; i < nc; i++ {
		name, err := r.name()
		if err != nil {
			return sf, err
		}
		v, err := r.i64()
		if err != nil {
			return sf, err
		}
		s.Counters = append(s.Counters, metrics.CounterValue{Name: name, Value: v})
	}

	ng, err := r.sectionCount(10)
	if err != nil {
		return sf, err
	}
	for i := 0; i < ng; i++ {
		name, err := r.name()
		if err != nil {
			return sf, err
		}
		v, err := r.i64()
		if err != nil {
			return sf, err
		}
		s.Gauges = append(s.Gauges, metrics.GaugeValue{Name: name, Value: v})
	}

	nh, err := r.sectionCount(12 + 8) // nameLen + sum + nBounds + overflow bucket
	if err != nil {
		return sf, err
	}
	for i := 0; i < nh; i++ {
		name, err := r.name()
		if err != nil {
			return sf, err
		}
		sum, err := r.i64()
		if err != nil {
			return sf, err
		}
		nb, err := r.u16()
		if err != nil {
			return sf, err
		}
		if int(nb) > maxStatsBounds {
			return sf, fmt.Errorf("%w: %d bounds", ErrBadStats, nb)
		}
		// nb bounds plus nb+1 buckets, 8 bytes each — checked as one
		// product before either allocation.
		need := (2*int(nb) + 1) * 8
		if r.remaining() < need {
			return sf, fmt.Errorf("%w: truncated histogram", ErrBadStats)
		}
		hv := metrics.HistogramValue{
			Name:    name,
			Sum:     sum,
			Buckets: make([]int64, int(nb)+1),
		}
		if nb > 0 {
			hv.Bounds = make([]int64, int(nb))
			for j := range hv.Bounds {
				hv.Bounds[j], _ = r.i64()
			}
		}
		var count int64
		for j := range hv.Buckets {
			hv.Buckets[j], _ = r.i64()
			count += hv.Buckets[j]
		}
		hv.Count = count
		hv.Finalize()
		s.Histograms = append(s.Histograms, hv)
	}

	nl, err := r.sectionCount(4) // keyLen + valLen, both empty
	if err != nil {
		return sf, err
	}
	for i := 0; i < nl; i++ {
		key, err := r.name()
		if err != nil {
			return sf, err
		}
		val, err := r.name()
		if err != nil {
			return sf, err
		}
		s.Labels = append(s.Labels, metrics.Label{Key: key, Value: val})
	}

	if r.remaining() != health.WireBytes {
		return sf, fmt.Errorf("%w: health block has %d bytes, want %d", ErrBadStats, r.remaining(), health.WireBytes)
	}
	sf.Health, err = health.DecodeBinary(r.b[r.off:])
	if err != nil {
		return sf, fmt.Errorf("%w: %v", ErrBadStats, err)
	}
	return sf, nil
}
