package netproto

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// --- read_batch request codec ----------------------------------------------

func TestReadBatchRoundTrip(t *testing.T) {
	for _, lpids := range [][]uint64{
		nil,
		{},
		{1},
		{7, 0, 1 << 60, 42, 42},
	} {
		body := ReadBatchBody(lpids)
		got, err := ParseReadBatch(body)
		if err != nil {
			t.Fatalf("ParseReadBatch(%v): %v", lpids, err)
		}
		if len(got) != len(lpids) {
			t.Fatalf("round trip length %d, want %d", len(got), len(lpids))
		}
		for i := range lpids {
			if got[i] != lpids[i] {
				t.Fatalf("lpid %d: %d != %d", i, got[i], lpids[i])
			}
		}
		// decode∘encode canonicality
		if re := ReadBatchBody(got); !bytes.Equal(re, body) {
			t.Fatalf("non-canonical: %x != %x", re, body)
		}
	}
}

func TestReadBatchForgedCount(t *testing.T) {
	// Count says 1<<30 LPIDs but the body has one: must reject before
	// allocating anything count-sized.
	body := binary.LittleEndian.AppendUint32(nil, 1<<30)
	body = AppendU64(body, 99)
	if _, err := ParseReadBatch(body); err == nil {
		t.Fatalf("forged count accepted")
	}
	// Count above the hard cap with a length that matches.
	big := binary.LittleEndian.AppendUint32(nil, MaxReadBatchPages+1)
	if _, err := ParseReadBatch(big); err == nil {
		t.Fatalf("over-cap count accepted")
	}
}

func TestReadBatchTruncatedAndTrailing(t *testing.T) {
	body := ReadBatchBody([]uint64{1, 2, 3})
	for cut := 1; cut < len(body); cut++ {
		if _, err := ParseReadBatch(body[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := ParseReadBatch(append(append([]byte{}, body...), 0)); err == nil {
		t.Fatalf("trailing byte accepted")
	}
	if _, err := ParseReadBatch(nil); err == nil {
		t.Fatalf("empty body accepted")
	}
}

// --- read_batch response codec ---------------------------------------------

func respPages() [][]byte {
	return [][]byte{
		bytes.Repeat([]byte{0xA1}, 100),
		nil, // not found
		{},  // present but empty
		bytes.Repeat([]byte{0xB2}, 4096),
	}
}

func TestReadBatchRespRoundTrip(t *testing.T) {
	pages := respPages()
	body := AppendReadBatchResp(nil, pages)
	got, err := ParseReadBatchResp(body)
	if err != nil {
		t.Fatalf("ParseReadBatchResp: %v", err)
	}
	if len(got) != len(pages) {
		t.Fatalf("length %d, want %d", len(got), len(pages))
	}
	for i, p := range pages {
		if (p == nil) != (got[i] == nil) {
			t.Fatalf("entry %d nil-ness differs", i)
		}
		if !bytes.Equal(got[i], p) {
			t.Fatalf("entry %d content differs", i)
		}
	}
	if re := AppendReadBatchResp(nil, got); !bytes.Equal(re, body) {
		t.Fatalf("non-canonical response encoding")
	}
}

func TestReadBatchRespForgedAndTruncated(t *testing.T) {
	// Forged count larger than the body could hold.
	forged := binary.LittleEndian.AppendUint32(nil, 1<<30)
	if _, err := ParseReadBatchResp(forged); err == nil {
		t.Fatalf("forged response count accepted")
	}
	// Forged per-page length.
	body := binary.LittleEndian.AppendUint32(nil, 1)
	body = append(body, ReadPageOK)
	body = binary.LittleEndian.AppendUint32(body, 1<<30)
	if _, err := ParseReadBatchResp(body); err == nil {
		t.Fatalf("forged page length accepted")
	}
	// Unknown status byte.
	bad := binary.LittleEndian.AppendUint32(nil, 1)
	bad = append(bad, 0x7F)
	if _, err := ParseReadBatchResp(bad); err == nil {
		t.Fatalf("unknown status accepted")
	}
	// Every truncation of a valid body must be rejected.
	full := AppendReadBatchResp(nil, respPages())
	for cut := 1; cut < len(full); cut++ {
		if _, err := ParseReadBatchResp(full[:cut]); err == nil {
			t.Fatalf("response truncation at %d accepted", cut)
		}
	}
	// Trailing bytes rejected.
	if _, err := ParseReadBatchResp(append(append([]byte{}, full...), 0xEE)); err == nil {
		t.Fatalf("response trailing byte accepted")
	}
}

// FuzzDecodeReadBatch: the read_batch request decoder must reject or
// accept arbitrary bytes without panicking or over-allocating, and
// accepted inputs must re-encode byte-identically (canonical codec) —
// the same contract as FuzzDecodeStatsFull/FuzzDecodeTraceDump.
func FuzzDecodeReadBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(ReadBatchBody(nil))
	f.Add(ReadBatchBody([]uint64{1, 2, 3, 1 << 50}))
	f.Fuzz(func(t *testing.T, data []byte) {
		lpids, err := ParseReadBatch(data)
		if err != nil {
			return
		}
		if re := ReadBatchBody(lpids); !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeReadBatchResp: same contract for the response decoder (the
// client-side surface an evil server could attack).
func FuzzDecodeReadBatchResp(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendReadBatchResp(nil, nil))
	f.Add(AppendReadBatchResp(nil, respPages()))
	f.Fuzz(func(t *testing.T, data []byte) {
		pages, err := ParseReadBatchResp(data)
		if err != nil {
			return
		}
		if re := AppendReadBatchResp(nil, pages); !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
	})
}

// --- pooled read_page reply path -------------------------------------------

// TestReadReplyAllocFree pins the pooled read_page reply: serving a page
// is WriteFrame2 with no head and the page bytes as the vectored tail —
// zero allocations once the writer's scratch is warm. This is the CI
// gate for the "pooled zero-copy reply frames" claim on the read path.
func TestReadReplyAllocFree(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	page := bytes.Repeat([]byte{0xC3}, 8192) // > vecCopyLimit: vectored
	small := bytes.Repeat([]byte{0x3C}, 256) // <= vecCopyLimit: copied
	scratch := make([]byte, 0, 4096)

	// Warm both paths and the batch-reply scratch.
	if err := fw.WriteFrame2(MsgRespRead, nil, page); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteFrame2(MsgRespRead, nil, small); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(200, func() {
		if err := fw.WriteFrame2(MsgRespRead, nil, page); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("vectored read_page reply allocates: %v allocs/op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := fw.WriteFrame2(MsgRespRead, nil, small); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("copied read_page reply allocates: %v allocs/op", n)
	}
	// The read_batch reply body builder reuses caller scratch.
	pages := [][]byte{page, nil, small}
	scratch = AppendReadBatchResp(scratch[:0], pages)
	if n := testing.AllocsPerRun(200, func() {
		scratch = AppendReadBatchResp(scratch[:0], pages)
	}); n != 0 {
		t.Fatalf("AppendReadBatchResp allocates: %v allocs/op", n)
	}
}
