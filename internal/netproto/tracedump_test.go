package netproto

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"eleos/internal/trace"
)

func sampleDump() trace.Dump {
	return trace.Dump{
		EpochUnixNano: 1700000000123456789,
		Dropped:       42,
		Events: []trace.Event{
			{Seq: 43, Kind: trace.KBatchStart, TS: 100, TraceID: 7, SID: 1, WSN: 9, Arg1: 4},
			{Seq: 44, Kind: trace.KClaim, TS: 150, Dur: 2000, TraceID: 7, SID: 1, WSN: 9},
			{Seq: 45, Kind: trace.KWalForce, TS: 5000, Dur: 12000, Arg1: 1, Arg2: 6},
			{Seq: 46, Kind: trace.KGC, TS: 9000, Dur: 300, Arg1: 3, Arg2: -17},
		},
	}
}

func TestTraceDumpRoundTrip(t *testing.T) {
	d := sampleDump()
	got, err := DecodeTraceDump(EncodeTraceDump(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}
}

func TestTraceDumpEmpty(t *testing.T) {
	d := trace.Dump{EpochUnixNano: 5, Dropped: 0}
	got, err := DecodeTraceDump(EncodeTraceDump(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("empty round trip: %+v", got)
	}
	if got.Events != nil {
		t.Fatalf("empty events must decode as nil slice: %+v", got.Events)
	}
}

func TestDecodeTraceDumpForgedCount(t *testing.T) {
	// A forged event count must be rejected before it can size an
	// allocation: claim 2^31 events in a 25-byte buffer.
	b := binary.LittleEndian.AppendUint32(nil, traceMagic)
	b = append(b, traceVersion)
	b = binary.LittleEndian.AppendUint64(b, 0) // epoch
	b = binary.LittleEndian.AppendUint64(b, 0) // dropped
	b = binary.LittleEndian.AppendUint32(b, 1<<31)
	if _, err := DecodeTraceDump(b); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("forged count: %v, want ErrBadTrace", err)
	}
}

func TestDecodeTraceDumpTruncated(t *testing.T) {
	full := EncodeTraceDump(sampleDump())
	// Every proper prefix must fail cleanly, never panic.
	for n := 0; n < len(full); n++ {
		if _, err := DecodeTraceDump(full[:n]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", n, len(full))
		}
	}
}

func TestDecodeTraceDumpTrailingBytes(t *testing.T) {
	full := EncodeTraceDump(sampleDump())
	if _, err := DecodeTraceDump(append(full, 0)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("trailing byte: %v, want ErrBadTrace", err)
	}
}

func TestDecodeTraceDumpBadMagicVersion(t *testing.T) {
	b := binary.LittleEndian.AppendUint32(nil, 0xDEADBEEF)
	b = append(b, traceVersion)
	b = append(b, make([]byte, 20)...)
	if _, err := DecodeTraceDump(b); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad magic: %v", err)
	}
	b = binary.LittleEndian.AppendUint32(nil, traceMagic)
	b = append(b, 99)
	b = append(b, make([]byte, 20)...)
	if _, err := DecodeTraceDump(b); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestFlushTracedBodyRoundTrip(t *testing.T) {
	wire := []byte{1, 2, 3, 4, 5}
	body := FlushTracedBody(77, 3, 12, wire)
	traceID, sid, wsn, gotWire, err := ParseFlushTraced(body)
	if err != nil {
		t.Fatal(err)
	}
	if traceID != 77 || sid != 3 || wsn != 12 || !reflect.DeepEqual(gotWire, wire) {
		t.Fatalf("parsed %d/%d/%d/%v", traceID, sid, wsn, gotWire)
	}
	for n := 0; n < 24; n++ {
		if _, _, _, _, err := ParseFlushTraced(body[:n]); !errors.Is(err, ErrShortBody) {
			t.Fatalf("short traced flush at %d: %v", n, err)
		}
	}
}
