// Package netproto defines the wire protocol of the eleosd network
// front-end: a length-prefixed binary framing over a TCP stream socket,
// standing in for the NVMe-oF/TCP transport of the paper's testbed
// (§IX-A1) the way internal/nvme cost-models it.
//
// Every message is one frame:
//
//	u32 length | u8 type | body
//
// length (little-endian) counts the type byte plus the body, so an empty
// message is a 5-byte frame. The commands mirror the controller's host
// interface: open/close session, flush_batch (carrying the §IX-A2 batch
// buffer of core.EncodeBatch verbatim, prefixed by sid+wsn), read by
// LPID, and stats. Responses either carry the command's payload or a
// RespError frame with a numeric code; the code tells the client whether
// a retry is safe (see Retryable).
//
// The protocol is deliberately strict: unknown types, oversized frames
// and short bodies all terminate the connection server-side. Idempotence
// of retried flush_batch commands is NOT a framing concern — it rides on
// the durable session table's WSN protocol (§III-A2): a client that
// resends (sid, wsn) after a dropped connection is answered from the
// session's highest applied WSN without re-applying the batch.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"eleos/internal/core"
	"eleos/internal/session"
)

// Message types.
const (
	// Requests.
	MsgOpenSession  = 0x01 // body: empty (default tag) | u8 ver | u8 prio | u8 len | tenant
	MsgCloseSession = 0x02 // body: sid u64
	MsgFlushBatch   = 0x03 // body: sid u64 | wsn u64 | batch wire bytes
	MsgRead         = 0x04 // body: lpid u64
	MsgStats        = 0x05 // body: empty
	MsgStatsFull    = 0x06 // body: empty
	MsgTraceDump    = 0x07 // body: empty
	// MsgFlushBatchTraced is MsgFlushBatch with a leading trace ID so the
	// flight recorder can attribute every stage of the batch to the
	// originating request. Its success response is MsgRespFlushBatch.
	MsgFlushBatchTraced = 0x08 // body: trace_id u64 | sid u64 | wsn u64 | batch wire bytes
	// MsgReadBatch reads many LPIDs in one round trip; the server
	// scatter-gathers the flash transfers across channels.
	MsgReadBatch = 0x09 // body: count u32 | lpid u64 × count
	// MsgWatchStats subscribes the connection to a periodic stats
	// stream: the server acknowledges with MsgRespWatchStats (carrying
	// the granted interval) and then pushes MsgStatsPush frames until
	// the client sends MsgWatchStatsStop or the connection dies.
	MsgWatchStats = 0x0A // body: interval_ms u32 (0 selects the default)
	// MsgWatchStatsStop unsubscribes. The server stops the pusher and
	// answers MsgRespWatchStatsStop after the final push, so the client
	// can drain deterministically and reuse the connection.
	MsgWatchStatsStop = 0x0B // body: empty

	// Responses.
	MsgRespOpenSession  = 0x81 // body: sid u64
	MsgRespCloseSession = 0x82 // body: empty
	MsgRespFlushBatch   = 0x83 // body: highest applied WSN u64
	MsgRespRead         = 0x84 // body: page bytes
	MsgRespStats        = 0x85 // body: JSON core.Stats
	MsgRespStatsFull    = 0x86 // body: binary metrics.Snapshot (EncodeStatsFull)
	MsgRespTraceDump    = 0x87 // body: binary trace.Dump (EncodeTraceDump)
	// MsgRespReadBatch carries per-page results: status 0 (ok, followed
	// by u32 len | bytes) or 1 (not found, nothing follows). Per-page
	// absence is data, not an error frame.
	MsgRespReadBatch = 0x89 // body: count u32 | (status u8 [| len u32 | bytes]) × count
	// MsgRespWatchStats acknowledges a subscription with the granted
	// (clamped) push interval.
	MsgRespWatchStats = 0x8A // body: interval_ms u32
	// MsgStatsPush is one server-initiated stats delta: a full
	// stats_full v3 body (snapshot + health census). Consumers compute
	// rates from successive pushes.
	MsgStatsPush = 0x8B // body: EncodeStatsFull
	// MsgRespWatchStatsStop acknowledges an unsubscribe; no pushes
	// follow it on the connection.
	MsgRespWatchStatsStop = 0x8C // body: empty
	MsgRespError          = 0xFF // body: code u16 | message bytes
)

// Watch-stats interval policy, shared by both ends: a requested 0 means
// DefaultWatchIntervalMS, and grants clamp into [Min, Max].
const (
	DefaultWatchIntervalMS = 1000
	MinWatchIntervalMS     = 10
	MaxWatchIntervalMS     = 60_000
)

// ClampWatchInterval maps a requested interval to the granted one.
func ClampWatchInterval(ms uint32) uint32 {
	if ms == 0 {
		return DefaultWatchIntervalMS
	}
	if ms < MinWatchIntervalMS {
		return MinWatchIntervalMS
	}
	if ms > MaxWatchIntervalMS {
		return MaxWatchIntervalMS
	}
	return ms
}

// WatchStatsBody encodes a watch_stats request (or response) body: the
// interval in milliseconds as one u32.
func WatchStatsBody(intervalMS uint32) []byte {
	return binary.LittleEndian.AppendUint32(nil, intervalMS)
}

// ParseWatchStats decodes a watch_stats request/response body. Exactly
// four bytes; trailing bytes are rejected so decode∘encode is canonical.
func ParseWatchStats(body []byte) (uint32, error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("%w: watch_stats wants 4 bytes, have %d", ErrShortBody, len(body))
	}
	return binary.LittleEndian.Uint32(body), nil
}

// Error codes carried by RespError frames.
const (
	CodeBadRequest     uint16 = 1 // malformed frame body; not retryable
	CodeBadBatch       uint16 = 2 // core.ErrBadBatch; not retryable
	CodeUnknownSession uint16 = 3 // session.ErrUnknownSession; not retryable
	CodeNotFound       uint16 = 4 // core.ErrNotFound; not retryable
	CodeWriteFailed    uint16 = 5 // core.ErrWriteFailed (media); retry same WSN
	CodeBusy           uint16 = 6 // connection limit reached; retry later
	CodeShuttingDown   uint16 = 7 // server draining; retry elsewhere/later
	CodeInternal       uint16 = 8 // anything else; not retryable
)

// DefaultMaxFrameBytes bounds a frame unless the peer configures its own
// cap: large enough for a multi-megabyte flush_batch, small enough that a
// hostile 4-byte length prefix cannot force a giant allocation.
const DefaultMaxFrameBytes = 16 << 20

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("netproto: frame exceeds size cap")
	ErrShortBody     = errors.New("netproto: frame body too short")
)

// RemoteError is a server-reported failure decoded from a RespError
// frame. Errors.Is matches the sentinel error for its code (e.g.
// core.ErrNotFound), so callers handle network and in-process failures
// with the same checks.
type RemoteError struct {
	Code uint16
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("netproto: remote error (code %d): %s", e.Code, e.Msg)
}

// Unwrap maps the code back to the library sentinel it was derived from.
func (e *RemoteError) Unwrap() error {
	switch e.Code {
	case CodeBadBatch:
		return core.ErrBadBatch
	case CodeUnknownSession:
		return session.ErrUnknownSession
	case CodeNotFound:
		return core.ErrNotFound
	case CodeWriteFailed:
		return core.ErrWriteFailed
	default:
		return nil
	}
}

// Retryable reports whether a retry of the same request is safe and
// useful after this error code. Write-failure retries are safe because
// the aborted action installed nothing and the WSN was not advanced;
// busy/draining retries are safe because the request was never executed.
func Retryable(code uint16) bool {
	return code == CodeWriteFailed || code == CodeBusy || code == CodeShuttingDown
}

// CodeFor maps a server-side error to the wire code for its RespError
// frame.
func CodeFor(err error) uint16 {
	switch {
	case errors.Is(err, core.ErrBadBatch):
		return CodeBadBatch
	case errors.Is(err, session.ErrUnknownSession):
		return CodeUnknownSession
	case errors.Is(err, core.ErrNotFound):
		return CodeNotFound
	case errors.Is(err, core.ErrWriteFailed):
		return CodeWriteFailed
	default:
		return CodeInternal
	}
}

// --- framing ---------------------------------------------------------------

// WriteFrame sends one frame as a single Write call (one TCP segment for
// small messages; no interleaving hazard between goroutines sharing a
// conn through their own locks).
func WriteFrame(w io.Writer, typ byte, body []byte) error {
	frame := make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(1+len(body)))
	frame[4] = typ
	copy(frame[5:], body)
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one frame, rejecting lengths beyond max (<=0 selects
// DefaultMaxFrameBytes). On EOF before any byte it returns io.EOF
// unchanged so callers can distinguish a clean close from a torn frame.
func ReadFrame(r io.Reader, max int) (typ byte, body []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, ErrShortBody
	}
	if int64(n) > int64(max) {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return payload[0], payload[1:], nil
}

// --- message bodies --------------------------------------------------------

// AppendU64 appends a little-endian u64 (exported for body builders).
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// U64Body encodes a body that is a single u64 (sid, lpid, wsn ack...).
func U64Body(v uint64) []byte { return AppendU64(nil, v) }

// ParseU64 decodes a single-u64 body.
func ParseU64(body []byte) (uint64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("%w: want 8 bytes, have %d", ErrShortBody, len(body))
	}
	return binary.LittleEndian.Uint64(body), nil
}

// openSessionVersion is the current versioned open_session body format.
const openSessionVersion = 1

// OpenSessionBody encodes an open_session request body. The default tag
// (empty tenant, priority 0) encodes as the empty body — byte-identical
// to the legacy pre-tenant request, so old clients are the degenerate
// case of the new codec. Any other tag uses the versioned form
// u8 version | u8 priority | u8 len | tenant.
func OpenSessionBody(tenant string, priority uint8) ([]byte, error) {
	if tenant == "" && priority == 0 {
		return nil, nil
	}
	if len(tenant) > session.MaxTenantLen {
		return nil, fmt.Errorf("netproto: tenant tag %d bytes exceeds %d", len(tenant), session.MaxTenantLen)
	}
	b := make([]byte, 0, 3+len(tenant))
	b = append(b, openSessionVersion, priority, byte(len(tenant)))
	return append(b, tenant...), nil
}

// ParseOpenSession decodes an open_session request body. The empty body
// is the default tag. Decode∘encode is byte-identical: unknown versions,
// tenant-length/body-length mismatches (which covers trailing bytes) and
// the non-canonical versioned encoding of the default tag are rejected.
func ParseOpenSession(body []byte) (tenant string, priority uint8, err error) {
	if len(body) == 0 {
		return "", 0, nil
	}
	if len(body) < 3 {
		return "", 0, fmt.Errorf("%w: open_session header", ErrShortBody)
	}
	if body[0] != openSessionVersion {
		return "", 0, fmt.Errorf("netproto: open_session version %d unsupported", body[0])
	}
	priority = body[1]
	tlen := int(body[2])
	if len(body) != 3+tlen {
		return "", 0, fmt.Errorf("%w: open_session wants %d tenant bytes, have %d",
			ErrShortBody, tlen, len(body)-3)
	}
	tenant = string(body[3:])
	if tenant == "" && priority == 0 {
		return "", 0, errors.New("netproto: non-canonical open_session: versioned body with default tag")
	}
	return tenant, priority, nil
}

// FlushBody encodes a flush_batch request body around an already-encoded
// batch buffer (core.EncodeBatch output).
func FlushBody(sid, wsn uint64, wire []byte) []byte {
	b := make([]byte, 0, 16+len(wire))
	b = AppendU64(b, sid)
	b = AppendU64(b, wsn)
	return append(b, wire...)
}

// ParseFlush decodes a flush_batch request body. The returned wire slice
// aliases body.
func ParseFlush(body []byte) (sid, wsn uint64, wire []byte, err error) {
	if len(body) < 16 {
		return 0, 0, nil, fmt.Errorf("%w: flush header", ErrShortBody)
	}
	sid = binary.LittleEndian.Uint64(body)
	wsn = binary.LittleEndian.Uint64(body[8:])
	return sid, wsn, body[16:], nil
}

// FlushTracedBody encodes a flush_batch_traced request body: FlushBody
// prefixed by the client-chosen trace ID (0 lets the server assign one).
func FlushTracedBody(traceID, sid, wsn uint64, wire []byte) []byte {
	b := make([]byte, 0, 24+len(wire))
	b = AppendU64(b, traceID)
	b = AppendU64(b, sid)
	b = AppendU64(b, wsn)
	return append(b, wire...)
}

// ParseFlushTraced decodes a flush_batch_traced request body. The
// returned wire slice aliases body.
func ParseFlushTraced(body []byte) (traceID, sid, wsn uint64, wire []byte, err error) {
	if len(body) < 24 {
		return 0, 0, 0, nil, fmt.Errorf("%w: traced flush header", ErrShortBody)
	}
	traceID = binary.LittleEndian.Uint64(body)
	sid = binary.LittleEndian.Uint64(body[8:])
	wsn = binary.LittleEndian.Uint64(body[16:])
	return traceID, sid, wsn, body[24:], nil
}

// Per-page statuses in a MsgRespReadBatch body.
const (
	ReadPageOK       byte = 0
	ReadPageNotFound byte = 1
)

// MaxReadBatchPages bounds the LPID count one read_batch may carry; the
// decoder rejects anything larger before allocating.
const MaxReadBatchPages = 1 << 16

// AppendReadBatchBody appends a read_batch request body to dst.
func AppendReadBatchBody(dst []byte, lpids []uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(lpids)))
	for _, lpid := range lpids {
		dst = AppendU64(dst, lpid)
	}
	return dst
}

// ReadBatchBody encodes a read_batch request body.
func ReadBatchBody(lpids []uint64) []byte {
	return AppendReadBatchBody(make([]byte, 0, 4+8*len(lpids)), lpids)
}

// ParseReadBatch decodes a read_batch request body. The count is
// validated against both MaxReadBatchPages and the exact body length —
// a forged count cannot force a large allocation, and trailing bytes are
// rejected so decode∘encode is canonical.
func ParseReadBatch(body []byte) ([]uint64, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: read_batch header", ErrShortBody)
	}
	count := binary.LittleEndian.Uint32(body)
	if count > MaxReadBatchPages {
		return nil, fmt.Errorf("netproto: read_batch count %d exceeds %d", count, MaxReadBatchPages)
	}
	if len(body) != 4+8*int(count) {
		return nil, fmt.Errorf("%w: read_batch wants %d bytes for %d lpids, have %d",
			ErrShortBody, 4+8*int(count), count, len(body))
	}
	lpids := make([]uint64, count)
	for i := range lpids {
		lpids[i] = binary.LittleEndian.Uint64(body[4+8*i:])
	}
	return lpids, nil
}

// AppendReadBatchResp appends a read_batch response body to dst. A nil
// page encodes as not-found; any non-nil page (empty included) encodes
// its bytes.
func AppendReadBatchResp(dst []byte, pages [][]byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pages)))
	for _, p := range pages {
		if p == nil {
			dst = append(dst, ReadPageNotFound)
			continue
		}
		dst = append(dst, ReadPageOK)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p)))
		dst = append(dst, p...)
	}
	return dst
}

// ParseReadBatchResp decodes a read_batch response body. Every length is
// bounds-checked against the remaining bytes before any allocation, the
// preallocation for the result slice is capped by what the body could
// possibly hold, and trailing bytes are rejected. Returned pages alias
// body.
func ParseReadBatchResp(body []byte) ([][]byte, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: read_batch response header", ErrShortBody)
	}
	count := int(binary.LittleEndian.Uint32(body))
	rest := body[4:]
	if count > len(rest) { // every entry takes at least one status byte
		return nil, fmt.Errorf("%w: read_batch response count %d exceeds body", ErrShortBody, count)
	}
	pages := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return nil, fmt.Errorf("%w: read_batch response entry %d", ErrShortBody, i)
		}
		status := rest[0]
		rest = rest[1:]
		switch status {
		case ReadPageNotFound:
			pages = append(pages, nil)
		case ReadPageOK:
			if len(rest) < 4 {
				return nil, fmt.Errorf("%w: read_batch response len %d", ErrShortBody, i)
			}
			n := int(binary.LittleEndian.Uint32(rest))
			rest = rest[4:]
			if n > len(rest) {
				return nil, fmt.Errorf("%w: read_batch response page %d wants %d bytes, have %d",
					ErrShortBody, i, n, len(rest))
			}
			pages = append(pages, rest[:n:n])
			rest = rest[n:]
		default:
			return nil, fmt.Errorf("netproto: read_batch response entry %d has unknown status %d", i, status)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("netproto: read_batch response has %d trailing bytes", len(rest))
	}
	return pages, nil
}

// ErrorBody encodes a RespError body.
func ErrorBody(code uint16, msg string) []byte {
	b := make([]byte, 2, 2+len(msg))
	binary.LittleEndian.PutUint16(b, code)
	return append(b, msg...)
}

// ParseError decodes a RespError body into a RemoteError.
func ParseError(body []byte) (*RemoteError, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("%w: error frame", ErrShortBody)
	}
	return &RemoteError{Code: binary.LittleEndian.Uint16(body), Msg: string(body[2:])}, nil
}
