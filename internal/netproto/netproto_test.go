package netproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"eleos/internal/core"
	"eleos/internal/session"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{nil, {}, []byte("x"), make([]byte, 4096)}
	for i, body := range bodies {
		buf.Reset()
		if err := WriteFrame(&buf, byte(i+1), body); err != nil {
			t.Fatal(err)
		}
		typ, got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, body) {
			t.Fatalf("frame %d: type %d body %d bytes", i, typ, len(got))
		}
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgStats, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(&buf, 100); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame accepted: %v", err)
	}
}

func TestReadFrameForgedLengthNoAlloc(t *testing.T) {
	// A hostile 4-byte prefix claiming 4 GB must be rejected by the cap,
	// never allocated.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 0xFFFFFFFF)
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:]), 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("forged length accepted: %v", err)
	}
}

func TestReadFrameShortAndTorn(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader(nil), 0); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
	// Zero-length frame (no type byte) is malformed.
	var zero [4]byte
	if _, _, err := ReadFrame(bytes.NewReader(zero[:]), 0); !errors.Is(err, ErrShortBody) {
		t.Fatalf("zero frame: %v", err)
	}
	// Header promises more than the stream holds.
	var buf bytes.Buffer
	_ = WriteFrame(&buf, MsgRead, []byte("abcdefgh"))
	torn := buf.Bytes()[:7]
	if _, _, err := ReadFrame(bytes.NewReader(torn), 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame: %v", err)
	}
}

func TestFlushBodyRoundTrip(t *testing.T) {
	wire := core.EncodeBatch([]core.LPage{{LPID: 7, Data: []byte("hello")}})
	body := FlushBody(11, 22, wire)
	sid, wsn, gotWire, err := ParseFlush(body)
	if err != nil || sid != 11 || wsn != 22 || !bytes.Equal(gotWire, wire) {
		t.Fatalf("flush round trip: sid=%d wsn=%d err=%v", sid, wsn, err)
	}
	if _, _, _, err := ParseFlush(body[:15]); !errors.Is(err, ErrShortBody) {
		t.Fatal("short flush body accepted")
	}
}

func TestU64Body(t *testing.T) {
	v, err := ParseU64(U64Body(1 << 60))
	if err != nil || v != 1<<60 {
		t.Fatalf("u64 round trip: %d %v", v, err)
	}
	if _, err := ParseU64([]byte{1, 2, 3}); !errors.Is(err, ErrShortBody) {
		t.Fatal("short u64 accepted")
	}
}

func TestErrorCodesRoundTrip(t *testing.T) {
	re, err := ParseError(ErrorBody(CodeNotFound, "lpid 9"))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(re, core.ErrNotFound) {
		t.Fatal("CodeNotFound does not unwrap to core.ErrNotFound")
	}
	if _, err := ParseError([]byte{1}); !errors.Is(err, ErrShortBody) {
		t.Fatal("short error body accepted")
	}
}

func TestCodeForMapsSentinels(t *testing.T) {
	cases := []struct {
		err  error
		code uint16
	}{
		{core.ErrBadBatch, CodeBadBatch},
		{session.ErrUnknownSession, CodeUnknownSession},
		{core.ErrNotFound, CodeNotFound},
		{core.ErrWriteFailed, CodeWriteFailed},
		{errors.New("anything else"), CodeInternal},
	}
	for _, c := range cases {
		if got := CodeFor(c.err); got != c.code {
			t.Fatalf("CodeFor(%v) = %d, want %d", c.err, got, c.code)
		}
		// Whatever comes back over the wire must Is-match the original
		// sentinel (internal errors map to no sentinel).
		re := &RemoteError{Code: c.code, Msg: c.err.Error()}
		if c.code != CodeInternal && !errors.Is(re, c.err) {
			t.Fatalf("code %d does not unwrap to %v", c.code, c.err)
		}
	}
}

func TestRetryable(t *testing.T) {
	for _, code := range []uint16{CodeWriteFailed, CodeBusy, CodeShuttingDown} {
		if !Retryable(code) {
			t.Fatalf("code %d should be retryable", code)
		}
	}
	for _, code := range []uint16{CodeBadRequest, CodeBadBatch, CodeUnknownSession, CodeNotFound, CodeInternal} {
		if Retryable(code) {
			t.Fatalf("code %d should not be retryable", code)
		}
	}
}

// TestReadFrameNeverPanics hammers the frame reader with random bytes —
// a hostile peer must not crash the server.
func TestReadFrameNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		_, _, _ = ReadFrame(bytes.NewReader(b), 1<<20)
	}
}
