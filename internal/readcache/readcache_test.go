package readcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"eleos/internal/metrics"
)

func page(n, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(n + i)
	}
	return b
}

// fill inserts key via the flight protocol.
func fill(t *testing.T, c *Cache, key uint64, data []byte) {
	t.Helper()
	got, f, leader := c.GetOrStart(key)
	if got != nil {
		t.Fatalf("fill(%d): unexpected hit", key)
	}
	if !leader {
		t.Fatalf("fill(%d): not leader", key)
	}
	c.Complete(key, f, data, nil)
}

func TestHitMissAndByteBudget(t *testing.T) {
	reg := metrics.New()
	c := New(Config{CapacityBytes: 1000, Metrics: reg})

	fill(t, c, 1, page(1, 400))
	fill(t, c, 2, page(2, 400))
	if got, ok := c.Get(1); !ok || got[0] != page(1, 400)[0] {
		t.Fatalf("key 1 should hit")
	}
	// 400+400 cached; inserting 400 more must evict the LRU (key 2 —
	// key 1 was touched more recently).
	fill(t, c, 3, page(3, 400))
	if c.Bytes() > 1000 {
		t.Fatalf("byte budget exceeded: %d", c.Bytes())
	}
	if _, ok := c.Get(2); ok {
		t.Fatalf("key 2 should have been evicted (LRU)")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatalf("key 1 (recently used) should survive")
	}
	snap := reg.Snapshot()
	if snap.Counter("read.cache_evictions") == 0 {
		t.Fatalf("expected evictions counted")
	}
	if snap.Gauge("read.cached_bytes") != c.Bytes() {
		t.Fatalf("cached_bytes gauge %d != %d", snap.Gauge("read.cached_bytes"), c.Bytes())
	}
}

func TestVariableSizePagesAreBudgetedInBytes(t *testing.T) {
	c := New(Config{CapacityBytes: 10_000})
	// Many tiny pages fit where few large ones would.
	for i := uint64(0); i < 50; i++ {
		fill(t, c, i, page(int(i), 100))
	}
	if c.Len() != 50 || c.Bytes() != 5000 {
		t.Fatalf("want 50 entries / 5000 bytes, got %d / %d", c.Len(), c.Bytes())
	}
	// One 8 KB page evicts dozens of small ones.
	fill(t, c, 100, page(100, 8000))
	if c.Bytes() > 10_000 {
		t.Fatalf("byte budget exceeded: %d", c.Bytes())
	}
	if _, ok := c.Get(100); !ok {
		t.Fatalf("large page should be cached")
	}
}

func TestOversizedPayloadNotCached(t *testing.T) {
	c := New(Config{CapacityBytes: 100})
	fill(t, c, 1, page(1, 200))
	if c.Len() != 0 {
		t.Fatalf("oversized payload must not be cached")
	}
}

func TestGhostListSecondChance(t *testing.T) {
	reg := metrics.New()
	c := New(Config{CapacityBytes: 300, GhostEntries: 16, Metrics: reg})
	fill(t, c, 1, page(1, 100))
	fill(t, c, 2, page(2, 100))
	fill(t, c, 3, page(3, 100))
	// Evict 1 (LRU tail).
	fill(t, c, 4, page(4, 100))
	if _, ok := c.Get(1); ok {
		t.Fatalf("key 1 should be evicted")
	}
	// Re-admit 1: its ghost entry marks it hot.
	fill(t, c, 1, page(1, 100))
	if reg.Snapshot().Counter("read.cache_ghost_hits") != 1 {
		t.Fatalf("expected one ghost hit")
	}
	// 1 is hot: scanning two cold keys through must not evict it.
	fill(t, c, 5, page(5, 100))
	fill(t, c, 6, page(6, 100))
	if _, ok := c.Get(1); !ok {
		t.Fatalf("hot key 1 should survive a cold scan (second chance)")
	}
}

func TestInvalidateRemovesAndSkipsGhost(t *testing.T) {
	c := New(Config{CapacityBytes: 1000, GhostEntries: 16})
	fill(t, c, 1, page(1, 100))
	c.Invalidate(1)
	if _, ok := c.Get(1); ok {
		t.Fatalf("invalidated key must miss")
	}
	if c.Bytes() != 0 {
		t.Fatalf("bytes not released: %d", c.Bytes())
	}
	// An invalidated key re-admitted is NOT a ghost hit (fresh write).
	fill(t, c, 1, page(1, 100))
	if c.ghost.Len() != 0 {
		t.Fatalf("invalidation must not feed the ghost list")
	}
}

func TestSingleFlightCoalesces(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20})
	var loads atomic.Int64
	var wg sync.WaitGroup
	want := page(7, 512)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, f, leader := c.GetOrStart(7)
			if data != nil {
				return // late arrival hit the cache
			}
			if leader {
				loads.Add(1)
				c.Complete(7, f, want, nil)
				return
			}
			got, err := f.Wait()
			if err != nil || len(got) != len(want) {
				t.Errorf("waiter got err=%v len=%d", err, len(got))
			}
		}()
	}
	wg.Wait()
	if loads.Load() != 1 {
		t.Fatalf("single-flight violated: %d loads", loads.Load())
	}
}

func TestPoisonedFlightDeliversButDoesNotCache(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20})
	_, f, leader := c.GetOrStart(9)
	if !leader {
		t.Fatalf("expected leadership")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, err := f.Wait()
		if err != nil || got == nil {
			panic(fmt.Sprintf("waiter got err=%v data=%v", err, got))
		}
	}()
	// Install races the fill: poison it.
	c.Invalidate(9)
	c.Complete(9, f, page(9, 64), nil)
	<-done
	if _, ok := c.Get(9); ok {
		t.Fatalf("poisoned fill must not populate the cache")
	}
	// A post-install lookup starts a FRESH flight (not the stale one).
	_, f2, leader2 := c.GetOrStart(9)
	if !leader2 || f2 == f {
		t.Fatalf("post-invalidate lookup must start a fresh flight")
	}
	c.Complete(9, f2, page(10, 64), nil)
}

func TestErrorFillNotCachedAndWaiterSeesError(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20})
	boom := errors.New("boom")
	_, f, _ := c.GetOrStart(3)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, f2, leader := c.GetOrStart(3)
		if leader {
			// The error fill completed before we registered; fine.
			c.Complete(3, f2, nil, boom)
			return
		}
		if _, err := f2.Wait(); !errors.Is(err, boom) {
			t.Errorf("waiter err = %v, want boom", err)
		}
	}()
	c.Complete(3, f, nil, boom)
	wg.Wait()
	if _, ok := c.Get(3); ok {
		t.Fatalf("errored fill must not be cached")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20})
	for i := uint64(0); i < 10; i++ {
		fill(t, c, i, page(int(i), 64))
	}
	_, f, _ := c.GetOrStart(99)
	c.InvalidateAll()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("InvalidateAll left %d entries / %d bytes", c.Len(), c.Bytes())
	}
	c.Complete(99, f, page(99, 64), nil)
	if _, ok := c.Get(99); ok {
		t.Fatalf("flight across InvalidateAll must be poisoned")
	}
}

func TestConcurrentHammer(t *testing.T) {
	c := New(Config{CapacityBytes: 4096, GhostEntries: 32})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := uint64((w*31 + i) % 64)
				switch i % 5 {
				case 4:
					c.Invalidate(key)
				default:
					data, f, leader := c.GetOrStart(key)
					if data != nil {
						_ = data[0]
					} else if leader {
						c.Complete(key, f, page(int(key), 64+int(key)), nil)
					} else {
						f.Wait()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() > 4096 {
		t.Fatalf("byte budget exceeded after hammer: %d", c.Bytes())
	}
}
