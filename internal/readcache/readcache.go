// Package readcache provides the server-side read cache for the
// production read path: a variable-size-page cache sized in bytes (pages
// in this system range from tiny log records to full WBLOCKs, so an
// entry-count budget would be meaningless), evicting in LRU order with an
// ARC-style ghost list that remembers recently evicted keys and grants
// re-admitted entries a second chance before the next eviction.
//
// The cache is deliberately dumb about coherence: it never reads flash
// and never looks at the mapping table. The owning controller drives it —
// Invalidate on every mapping install and GC relocation, a fresh cache on
// every crash→Open — so the only coherence rule the cache itself enforces
// is the single-flight poison protocol: a Flight registered before the
// owner's mapping lookup is poisoned by any concurrent Invalidate, which
// guarantees a fill racing an install can deliver its (then-current)
// bytes to waiters but can never install stale bytes into the cache.
//
// Lock order: the controller's mutex is always taken before the cache's;
// the cache calls back into nothing.
package readcache

import (
	"container/list"
	"sync"

	"eleos/internal/metrics"
)

// Config sizes the cache.
type Config struct {
	// CapacityBytes is the byte budget for cached page payloads.
	CapacityBytes int64
	// GhostEntries bounds the ghost list; 0 picks a default proportional
	// to a plausible entry count (capacity / 512).
	GhostEntries int
	// Metrics registers the read.cache_* instruments; nil or disabled
	// leaves the cache uninstrumented.
	Metrics *metrics.Registry
}

// entry is one cached page.
type entry struct {
	key  uint64
	data []byte
	// hot grants one extra LRU round-trip: set when the key was found in
	// the ghost list at insert (it was recently evicted and came back —
	// the ARC "frequency" signal) or on a cache hit.
	hot bool
}

// Flight is one in-flight fill. The leader loads from flash and calls
// Cache.Complete; everyone else blocks in Wait. A Flight poisoned by
// Invalidate still delivers its bytes to waiters — they looked up before
// the install, so those bytes are a legal read result — but the bytes are
// not cached.
type Flight struct {
	done     chan struct{}
	data     []byte
	err      error
	poisoned bool
}

// Wait blocks until the leader completes the fill and returns its result.
func (f *Flight) Wait() ([]byte, error) {
	<-f.done
	return f.data, f.err
}

// Cache is a byte-budget LRU with ghost list and single-flight fills.
// All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	lru      *list.List               // front = MRU; values are *entry
	index    map[uint64]*list.Element // key -> lru element
	flights  map[uint64]*Flight
	ghost    *list.List               // front = most recently evicted; values are uint64 keys
	ghostIdx map[uint64]*list.Element // key -> ghost element
	ghostCap int

	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter
	ghostHits *metrics.Counter
	bytesG    *metrics.Gauge
	entriesG  *metrics.Gauge
}

// New creates a cache. A non-positive capacity yields a cache that never
// stores anything but still single-flights concurrent fills.
func New(cfg Config) *Cache {
	gc := cfg.GhostEntries
	if gc <= 0 {
		gc = int(cfg.CapacityBytes / 512)
		if gc < 64 {
			gc = 64
		}
	}
	c := &Cache{
		capacity: cfg.CapacityBytes,
		lru:      list.New(),
		index:    make(map[uint64]*list.Element),
		flights:  make(map[uint64]*Flight),
		ghost:    list.New(),
		ghostIdx: make(map[uint64]*list.Element),
		ghostCap: gc,
	}
	if reg := cfg.Metrics; reg.Enabled() {
		c.hits = reg.Counter("read.cache_hits")
		c.misses = reg.Counter("read.cache_misses")
		c.evictions = reg.Counter("read.cache_evictions")
		c.ghostHits = reg.Counter("read.cache_ghost_hits")
		c.bytesG = reg.Gauge("read.cached_bytes")
		c.entriesG = reg.Gauge("read.cache_entries")
	}
	return c
}

// CapacityBytes returns the configured byte budget.
func (c *Cache) CapacityBytes() int64 { return c.capacity }

// Bytes returns the bytes currently cached.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// GetOrStart is the miss-coalescing lookup. Exactly one of three shapes
// comes back:
//
//	data != nil:              cache hit; data aliases the immutable cached
//	                          payload (safe: payloads are never mutated,
//	                          eviction only drops the reference).
//	flight != nil, !leader:   another goroutine is filling this key;
//	                          call flight.Wait().
//	flight != nil, leader:    the caller owns the fill: load from flash
//	                          and call Complete (on error too, or waiters
//	                          hang).
//
// Callers must register the flight BEFORE their mapping lookup so that a
// concurrent install's Invalidate poisons the fill (see package comment).
func (c *Cache) GetOrStart(key uint64) (data []byte, flight *Flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		e := el.Value.(*entry)
		e.hot = true
		c.lru.MoveToFront(el)
		c.hits.Inc()
		return e.data, nil, false
	}
	c.misses.Inc()
	if f, ok := c.flights[key]; ok {
		return nil, f, false
	}
	f := &Flight{done: make(chan struct{})}
	c.flights[key] = f
	return nil, f, true
}

// Complete finishes a leader's fill: waiters wake with (data, err), and
// on success the payload is cached unless the flight was poisoned by an
// Invalidate or the fill errored.
func (c *Cache) Complete(key uint64, f *Flight, data []byte, err error) {
	c.mu.Lock()
	f.data, f.err = data, err
	if c.flights[key] == f {
		delete(c.flights, key)
	}
	if err == nil && !f.poisoned && data != nil {
		c.insertLocked(key, data)
	}
	c.mu.Unlock()
	close(f.done)
}

// Get is a plain lookup with no fill protocol, for callers that fall back
// to an uncoalesced flash read on miss.
func (c *Cache) Get(key uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		e := el.Value.(*entry)
		e.hot = true
		c.lru.MoveToFront(el)
		c.hits.Inc()
		return e.data, true
	}
	c.misses.Inc()
	return nil, false
}

// Invalidate removes the key's entry and poisons any in-flight fill, so a
// racing load can no longer install bytes read under the old mapping. The
// flight is also unregistered: a lookup arriving after the install starts
// a fresh fill against the new mapping instead of joining the stale one.
// Called by the controller on every mapping install and GC relocation.
func (c *Cache) Invalidate(key uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.removeLocked(el, false)
	}
	if f, ok := c.flights[key]; ok {
		f.poisoned = true
		delete(c.flights, key)
	}
}

// InvalidateAll empties the cache and poisons every in-flight fill.
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.flights {
		f.poisoned = true
	}
	c.flights = make(map[uint64]*Flight)
	c.lru.Init()
	c.index = make(map[uint64]*list.Element)
	c.ghost.Init()
	c.ghostIdx = make(map[uint64]*list.Element)
	c.bytes = 0
	c.bytesG.Set(0)
	c.entriesG.Set(0)
}

// insertLocked admits a payload, evicting from the LRU tail until the
// byte budget holds. Payloads larger than the whole budget are not
// cached.
func (c *Cache) insertLocked(key uint64, data []byte) {
	if int64(len(data)) > c.capacity {
		return
	}
	if el, ok := c.index[key]; ok {
		// Possible when Complete races another leader after an
		// Invalidate cycle; keep the newer payload.
		c.removeLocked(el, false)
	}
	e := &entry{key: key, data: data}
	if gel, ok := c.ghostIdx[key]; ok {
		// Recently evicted and back again: the ARC frequency signal.
		c.ghost.Remove(gel)
		delete(c.ghostIdx, key)
		e.hot = true
		c.ghostHits.Inc()
	}
	c.index[key] = c.lru.PushFront(e)
	c.bytes += int64(len(data))
	for c.bytes > c.capacity {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		te := tail.Value.(*entry)
		if te.hot && tail != c.lru.Front() {
			// Second chance: one extra round-trip for hot entries.
			te.hot = false
			c.lru.MoveToFront(tail)
			continue
		}
		c.removeLocked(tail, true)
		c.evictions.Inc()
	}
	c.bytesG.Set(c.bytes)
	c.entriesG.Set(int64(c.lru.Len()))
}

// removeLocked drops an entry; toGhost remembers its key in the ghost
// list (evictions do, invalidations must not — an invalidated key coming
// back is a fresh write, not a frequency signal).
func (c *Cache) removeLocked(el *list.Element, toGhost bool) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.index, e.key)
	c.bytes -= int64(len(e.data))
	if toGhost {
		if gel, ok := c.ghostIdx[e.key]; ok {
			c.ghost.Remove(gel)
		}
		c.ghostIdx[e.key] = c.ghost.PushFront(e.key)
		for c.ghost.Len() > c.ghostCap {
			old := c.ghost.Back()
			delete(c.ghostIdx, old.Value.(uint64))
			c.ghost.Remove(old)
		}
	}
	c.bytesG.Set(c.bytes)
	c.entriesG.Set(int64(c.lru.Len()))
}
