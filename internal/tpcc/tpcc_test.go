package tpcc

import (
	"bytes"
	"testing"

	"eleos/internal/btree"
	"eleos/internal/bwtree"
)

func smallCfg() Config {
	return Config{Warehouses: 1, DistrictsPerWH: 3, CustomersPerDistrict: 50, ItemsPerWarehouse: 100, Seed: 1}
}

func TestLoadAndRun(t *testing.T) {
	tree, err := bwtree.New(bwtree.NewMemStore(), bwtree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(tree, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Load(); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(200); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.NewOrders == 0 || s.Payments == 0 || s.OrderStatuses == 0 {
		t.Fatalf("mix incomplete: %+v", s)
	}
	if s.RowsWritten == 0 || s.RowsRead == 0 {
		t.Fatalf("no row traffic: %+v", s)
	}
	// Rows must be retrievable.
	if _, err := tree.Get(key(tWarehouse, 1, 0, 0)); err != nil {
		t.Fatal("warehouse row missing")
	}
	if _, err := tree.Get(key(tCustomer, 1, 1, 1)); err != nil {
		t.Fatal("customer row missing")
	}
}

func TestRunnerValidation(t *testing.T) {
	tree, _ := bwtree.New(bwtree.NewMemStore(), bwtree.DefaultConfig())
	if _, err := NewRunner(tree, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestRowsCompressWell(t *testing.T) {
	// The paper's pages compress from 4 KB to ~1.91 KB (ratio ~0.48). Our
	// synthetic rows must land in a comparable band.
	capture := &btree.CaptureStore{Inner: bwtree.NewMemStore()}
	store := &btree.CompressingStore{Inner: capture}
	tree, err := bwtree.New(store, bwtree.Config{MaxPageBytes: 4096, WriteBufferBytes: 1 << 20, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewRunner(tree, smallCfg())
	if err := r.Load(); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(300); err != nil {
		t.Fatal(err)
	}
	if err := tree.FlushAll(); err != nil {
		t.Fatal(err)
	}
	ratio := store.Ratio()
	if ratio <= 0.1 || ratio >= 0.8 {
		t.Fatalf("compression ratio %.2f outside the paper-like band", ratio)
	}
	// Content survives compression round trips.
	if _, err := tree.Get(key(tCustomer, 1, 2, 10)); err != nil {
		t.Fatalf("read after compression: %v", err)
	}
}

func TestCollectTraceShape(t *testing.T) {
	tr, err := Collect(CollectOptions{Config: smallCfg(), Transactions: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Writes) == 0 {
		t.Fatal("empty trace")
	}
	avg := tr.AvgSize()
	// The paper's average is 1.91 KB for 4 KB pages; accept a wide band
	// but require real variable sizes well below the page size.
	if avg <= 200 || avg >= 3800 {
		t.Fatalf("avg compressed page %.0f bytes implausible", avg)
	}
	varied := false
	for _, w := range tr.Writes[1:] {
		if w.Size != tr.Writes[0].Size {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("trace sizes are constant; compression should vary them")
	}
	if tr.TotalBytes() <= 0 {
		t.Fatal("TotalBytes wrong")
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := Collect(CollectOptions{Config: smallCfg()}); err == nil {
		t.Fatal("zero transactions accepted")
	}
}

func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	tr := &Trace{PageBytes: 4096, Writes: []btree.PageWrite{{PID: 1, Size: 100}, {PID: 9, Size: 4096}}}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PageBytes != 4096 || len(got.Writes) != 2 || got.Writes[1] != tr.Writes[1] {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestDecodeTraceRejectsGarbage(t *testing.T) {
	if _, err := DecodeTrace(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeTrace(bytes.NewReader(make([]byte, 20))); err == nil {
		t.Fatal("zero header accepted")
	}
}

func TestKeyPackingClustersTables(t *testing.T) {
	// Keys of one table sort together; within a table, by warehouse then
	// district then id.
	k1 := key(tCustomer, 1, 1, 5)
	k2 := key(tCustomer, 1, 1, 6)
	k3 := key(tCustomer, 1, 2, 1)
	k4 := key(tStock, 1, 0, 1)
	if !(k1 < k2 && k2 < k3 && k3 < k4) {
		t.Fatalf("key ordering broken: %d %d %d %d", k1, k2, k3, k4)
	}
}
