// Package tpcc implements a TPC-C-style transaction workload over the
// B+-tree storage engine, standing in for the paper's AsterixDB TPC-C run
// (§IX-A3). The paper's artifact is an *I/O trace* of compressed
// variable-size page writes (4 KB pages averaging 1.91 KB compressed);
// this package generates transactions whose page writes, after DEFLATE
// page compression, produce a trace with the same shape, and provides the
// trace container that Fig. 9 and Table II replay.
package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"eleos/internal/bwtree"
)

// Table identifiers packed into the key space.
const (
	tWarehouse = 1 + iota
	tDistrict
	tCustomer
	tStock
	tOrder
	tOrderLine
	tHistory
	tItem
)

// key packs (table, warehouse, district, id) into a uint64 that sorts by
// table, then warehouse, then district, then id — clustering rows the way
// a composite-key B+-tree would.
func key(table, w, d int, id uint64) uint64 {
	return uint64(table)<<58 | uint64(w&0x3FF)<<48 | uint64(d&0xFF)<<40 | id&(1<<40-1)
}

// Config scales the workload.
type Config struct {
	Warehouses           int
	DistrictsPerWH       int
	CustomersPerDistrict int
	ItemsPerWarehouse    int
	Seed                 int64
}

// DefaultConfig returns a laptop-scale configuration (the paper used scale
// factor 1000 on a server; the trace shape, not its volume, is what the
// experiments consume).
func DefaultConfig() Config {
	return Config{
		Warehouses:           2,
		DistrictsPerWH:       10,
		CustomersPerDistrict: 300,
		ItemsPerWarehouse:    1000,
		Seed:                 1,
	}
}

// Runner drives transactions against the storage engine.
type Runner struct {
	tree *bwtree.Tree
	cfg  Config
	rng  *rand.Rand

	nextOrder   map[[2]int]uint64
	nextHistory uint64

	stats Stats
}

// Stats counts executed transactions.
type Stats struct {
	NewOrders     int64
	Payments      int64
	OrderStatuses int64
	RowsWritten   int64
	RowsRead      int64
}

// NewRunner creates a runner over the tree.
func NewRunner(tree *bwtree.Tree, cfg Config) (*Runner, error) {
	if cfg.Warehouses <= 0 || cfg.DistrictsPerWH <= 0 || cfg.CustomersPerDistrict <= 0 || cfg.ItemsPerWarehouse <= 0 {
		return nil, errors.New("tpcc: bad scale")
	}
	return &Runner{
		tree:      tree,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		nextOrder: make(map[[2]int]uint64),
	}, nil
}

// Stats returns a snapshot of the counters.
func (r *Runner) Stats() Stats { return r.stats }

// Load populates the base tables (the paper loads before tracing).
func (r *Runner) Load() error {
	for w := 1; w <= r.cfg.Warehouses; w++ {
		if err := r.set(key(tWarehouse, w, 0, 0), r.warehouseRow(w)); err != nil {
			return err
		}
		for i := 1; i <= r.cfg.ItemsPerWarehouse; i++ {
			if err := r.set(key(tItem, w, 0, uint64(i)), r.itemRow(i)); err != nil {
				return err
			}
			if err := r.set(key(tStock, w, 0, uint64(i)), r.stockRow(w, i)); err != nil {
				return err
			}
		}
		for d := 1; d <= r.cfg.DistrictsPerWH; d++ {
			if err := r.set(key(tDistrict, w, d, 0), r.districtRow(w, d)); err != nil {
				return err
			}
			for c := 1; c <= r.cfg.CustomersPerDistrict; c++ {
				if err := r.set(key(tCustomer, w, d, uint64(c)), r.customerRow(w, d, c)); err != nil {
					return err
				}
			}
			r.nextOrder[[2]int{w, d}] = 1
		}
	}
	return nil
}

// Run executes n transactions with the standard-ish mix: 45% new-order,
// 43% payment, 12% order-status.
func (r *Runner) Run(n int) error {
	for i := 0; i < n; i++ {
		var err error
		switch p := r.rng.Intn(100); {
		case p < 45:
			err = r.newOrder()
		case p < 88:
			err = r.payment()
		default:
			err = r.orderStatus()
		}
		if err != nil {
			return fmt.Errorf("tpcc: txn %d: %w", i, err)
		}
	}
	return nil
}

func (r *Runner) set(k uint64, row []byte) error {
	r.stats.RowsWritten++
	return r.tree.Set(k, row)
}

func (r *Runner) get(k uint64) ([]byte, error) {
	r.stats.RowsRead++
	return r.tree.Get(k)
}

func (r *Runner) pickWD() (int, int) {
	return r.rng.Intn(r.cfg.Warehouses) + 1, r.rng.Intn(r.cfg.DistrictsPerWH) + 1
}

func (r *Runner) newOrder() error {
	w, d := r.pickWD()
	c := r.rng.Intn(r.cfg.CustomersPerDistrict) + 1
	if _, err := r.get(key(tCustomer, w, d, uint64(c))); err != nil {
		return err
	}
	oID := r.nextOrder[[2]int{w, d}]
	r.nextOrder[[2]int{w, d}] = oID + 1
	if err := r.set(key(tDistrict, w, d, 0), r.districtRow(w, d)); err != nil {
		return err
	}
	if err := r.set(key(tOrder, w, d, oID), r.orderRow(w, d, int(oID), c)); err != nil {
		return err
	}
	lines := 5 + r.rng.Intn(11)
	for l := 1; l <= lines; l++ {
		item := r.rng.Intn(r.cfg.ItemsPerWarehouse) + 1
		if err := r.set(key(tStock, w, 0, uint64(item)), r.stockRow(w, item)); err != nil {
			return err
		}
		if err := r.set(key(tOrderLine, w, d, oID<<4|uint64(l)), r.orderLineRow(w, d, int(oID), l, item)); err != nil {
			return err
		}
	}
	r.stats.NewOrders++
	return nil
}

func (r *Runner) payment() error {
	w, d := r.pickWD()
	c := r.rng.Intn(r.cfg.CustomersPerDistrict) + 1
	if err := r.set(key(tWarehouse, w, 0, 0), r.warehouseRow(w)); err != nil {
		return err
	}
	if err := r.set(key(tDistrict, w, d, 0), r.districtRow(w, d)); err != nil {
		return err
	}
	if err := r.set(key(tCustomer, w, d, uint64(c)), r.customerRow(w, d, c)); err != nil {
		return err
	}
	r.nextHistory++
	if err := r.set(key(tHistory, w, d, r.nextHistory), r.historyRow(w, d, c)); err != nil {
		return err
	}
	r.stats.Payments++
	return nil
}

func (r *Runner) orderStatus() error {
	w, d := r.pickWD()
	c := r.rng.Intn(r.cfg.CustomersPerDistrict) + 1
	if _, err := r.get(key(tCustomer, w, d, uint64(c))); err != nil {
		return err
	}
	if last := r.nextOrder[[2]int{w, d}]; last > 1 {
		if _, err := r.get(key(tOrder, w, d, last-1)); err != nil {
			return err
		}
	}
	r.stats.OrderStatuses++
	return nil
}

// --- row builders ------------------------------------------------------------
//
// Rows carry realistic, repetitive text (names, street addresses, padded
// decimals) so DEFLATE page compression lands near the paper's ~2x ratio.

var (
	firstNames = []string{"JAMES", "MARY", "ROBERT", "PATRICIA", "JOHN", "JENNIFER", "MICHAEL", "LINDA", "DAVID", "ELIZABETH"}
	lastParts  = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}
	streets    = []string{"MAIN STREET", "OAK AVENUE", "MAPLE DRIVE", "CEDAR LANE", "ELM COURT", "PINE ROAD"}
	cities     = []string{"SPRINGFIELD", "RIVERSIDE", "FRANKLIN", "GREENVILLE", "BRISTOL", "CLINTON"}
)

func (r *Runner) lastName(c int) string {
	return lastParts[c/100%10] + lastParts[c/10%10] + lastParts[c%10]
}

// hexField produces n characters of random hexadecimal — data with ~4 bits
// of entropy per byte, standing in for ids, hashes and encoded values.
// Mixed with the structured fields it lands page compression near the
// paper's ~2:1 (4 KB -> 1.91 KB).
func (r *Runner) hexField(n int) string {
	const hexDigits = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hexDigits[r.rng.Intn(16)]
	}
	return string(b)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s[:n]
	}
	return s + strings.Repeat(" ", n-len(s))
}

func (r *Runner) address() string {
	return fmt.Sprintf("%-24s %-16s %02d%03d ZIPCODE %05d",
		streets[r.rng.Intn(len(streets))], cities[r.rng.Intn(len(cities))],
		r.rng.Intn(100), r.rng.Intn(1000), r.rng.Intn(100000))
}

func (r *Runner) warehouseRow(w int) []byte {
	return []byte(fmt.Sprintf("W_ID=%06d|W_NAME=%s|W_ADDR=%s|W_TAX=0.%04d|W_YTD=%012d.00",
		w, pad(fmt.Sprintf("WAREHOUSE%03d", w), 16), r.address(), r.rng.Intn(2000), r.rng.Intn(1_000_000)))
}

func (r *Runner) districtRow(w, d int) []byte {
	return []byte(fmt.Sprintf("D_ID=%03d|D_W_ID=%06d|D_NAME=%s|D_ADDR=%s|D_TAX=0.%04d|D_YTD=%012d.00|D_NEXT_O_ID=%08d",
		d, w, pad(fmt.Sprintf("DISTRICT%02d", d), 12), r.address(), r.rng.Intn(2000), r.rng.Intn(100_000), r.nextOrder[[2]int{w, d}]))
}

func (r *Runner) customerRow(w, d, c int) []byte {
	return []byte(fmt.Sprintf(
		"C_ID=%06d|C_D_ID=%03d|C_W_ID=%06d|C_FIRST=%s|C_MIDDLE=OE|C_LAST=%s|C_ADDR=%s|C_PHONE=%016d|C_SINCE=2021-01-01 00:00:00|C_CREDIT=GC|C_CREDIT_LIM=50000.00|C_DISCOUNT=0.%04d|C_BALANCE=%010d.00|C_DATA=%s",
		c, d, w, pad(firstNames[r.rng.Intn(len(firstNames))], 12), pad(r.lastName(c), 16),
		r.address(), r.rng.Int63n(1e15), r.rng.Intn(5000), r.rng.Intn(100000),
		r.hexField(192)))
}

func (r *Runner) stockRow(w, i int) []byte {
	return []byte(fmt.Sprintf("S_I_ID=%08d|S_W_ID=%06d|S_QUANTITY=%05d|S_DIST=%s|S_YTD=%08d|S_ORDER_CNT=%06d|S_DATA=%s",
		i, w, r.rng.Intn(100), r.hexField(96),
		r.rng.Intn(100000), r.rng.Intn(10000), pad("ORIGINAL STOCK ITEM DESCRIPTION", 40)))
}

func (r *Runner) itemRow(i int) []byte {
	return []byte(fmt.Sprintf("I_ID=%08d|I_NAME=%s|I_PRICE=%06d.%02d|I_DATA=%s",
		i, pad(fmt.Sprintf("ITEM NUMBER %06d", i), 24), r.rng.Intn(100), r.rng.Intn(100),
		pad("GENERIC ITEM DATA FIELD", 32)))
}

func (r *Runner) orderRow(w, d, o, c int) []byte {
	return []byte(fmt.Sprintf("O_ID=%08d|O_D_ID=%03d|O_W_ID=%06d|O_C_ID=%06d|O_ENTRY_D=2021-06-15 12:00:00|O_CARRIER_ID=%02d|O_OL_CNT=%02d|O_ALL_LOCAL=1",
		o, d, w, c, r.rng.Intn(10), 5+r.rng.Intn(11)))
}

func (r *Runner) orderLineRow(w, d, o, l, i int) []byte {
	return []byte(fmt.Sprintf("OL_O_ID=%08d|OL_D_ID=%03d|OL_W_ID=%06d|OL_NUMBER=%02d|OL_I_ID=%08d|OL_QUANTITY=%02d|OL_AMOUNT=%06d.%02d|OL_DIST_INFO=%s",
		o, d, w, l, i, r.rng.Intn(10)+1, r.rng.Intn(1000), r.rng.Intn(100), r.hexField(48)))
}

func (r *Runner) historyRow(w, d, c int) []byte {
	return []byte(fmt.Sprintf("H_C_ID=%06d|H_C_D_ID=%03d|H_C_W_ID=%06d|H_DATE=2021-06-15 12:00:00|H_AMOUNT=%06d.%02d|H_DATA=%s",
		c, d, w, r.rng.Intn(5000), r.rng.Intn(100), r.hexField(40)))
}
