package tpcc

import (
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"eleos/internal/btree"
	"eleos/internal/bwtree"
)

// Trace is the experiment artifact of §IX-A3: a sequence of compressed
// variable-size page writes collected while running TPC-C on the
// compressed B+-tree.
type Trace struct {
	PageBytes int // uncompressed page size (4 KB in the paper)
	Writes    []btree.PageWrite
}

// AvgSize returns the mean written page size (the paper reports 1.91 KB).
func (t *Trace) AvgSize() float64 {
	if len(t.Writes) == 0 {
		return 0
	}
	total := 0
	for _, w := range t.Writes {
		total += w.Size
	}
	return float64(total) / float64(len(t.Writes))
}

// TotalBytes returns the sum of written page sizes.
func (t *Trace) TotalBytes() int64 {
	var n int64
	for _, w := range t.Writes {
		n += int64(w.Size)
	}
	return n
}

// CollectOptions tunes trace collection.
type CollectOptions struct {
	Config       Config
	Transactions int
	PageBytes    int   // B+-tree page size (default 4096)
	CacheBytes   int64 // engine buffer cache (default 2 MB: aggressive eviction)
}

// Collect runs the TPC-C workload against a compressed B+-tree and
// captures the page-write trace of the running phase (loading is excluded,
// as in the paper).
func Collect(opts CollectOptions) (*Trace, error) {
	if opts.PageBytes == 0 {
		opts.PageBytes = 4096
	}
	if opts.CacheBytes == 0 {
		// Small enough that hot leaves cycle through eviction, so the
		// trace reflects steady-state page churn rather than one final
		// flush of half-empty pages.
		opts.CacheBytes = 512 << 10
	}
	if opts.Transactions <= 0 {
		return nil, errors.New("tpcc: need transactions to trace")
	}
	capture := &btree.CaptureStore{Inner: bwtree.NewMemStore()}
	// HuffmanOnly approximates the lightweight page compressors database
	// engines actually deploy (the paper's average is 1.91 KB from 4 KB
	// pages, i.e. roughly 2:1).
	store := &btree.CompressingStore{Inner: capture, Level: flate.HuffmanOnly}
	tree, err := bwtree.New(store, bwtree.Config{
		MaxPageBytes:     opts.PageBytes,
		WriteBufferBytes: 1 << 20,
		CacheBytes:       opts.CacheBytes,
	})
	if err != nil {
		return nil, err
	}
	runner, err := NewRunner(tree, opts.Config)
	if err != nil {
		return nil, err
	}
	if err := runner.Load(); err != nil {
		return nil, err
	}
	if err := tree.FlushAll(); err != nil {
		return nil, err
	}
	capture.StartCapture()
	if err := runner.Run(opts.Transactions); err != nil {
		return nil, err
	}
	if err := tree.FlushAll(); err != nil {
		return nil, err
	}
	return &Trace{PageBytes: opts.PageBytes, Writes: capture.StopCapture()}, nil
}

// --- file format ---------------------------------------------------------

const traceMagic = 0x54504343 // "TPCC"

// ErrBadTrace reports a corrupt trace stream.
var ErrBadTrace = errors.New("tpcc: bad trace stream")

// Encode writes the trace in a compact binary format.
func (t *Trace) Encode(w io.Writer) error {
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(t.PageBytes))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(t.Writes)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 12)
	for _, pw := range t.Writes {
		binary.LittleEndian.PutUint64(buf[0:], pw.PID)
		binary.LittleEndian.PutUint32(buf[8:], uint32(pw.Size))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// DecodeTrace reads a trace written by Encode.
func DecodeTrace(r io.Reader) (*Trace, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("%w: magic", ErrBadTrace)
	}
	t := &Trace{PageBytes: int(binary.LittleEndian.Uint32(hdr[4:]))}
	n := binary.LittleEndian.Uint64(hdr[8:])
	buf := make([]byte, 12)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		t.Writes = append(t.Writes, btree.PageWrite{
			PID:  binary.LittleEndian.Uint64(buf[0:]),
			Size: int(binary.LittleEndian.Uint32(buf[8:])),
		})
	}
	return t, nil
}
