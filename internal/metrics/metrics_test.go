package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	if r.Gauge("g") != g {
		t.Fatal("Gauge not get-or-create")
	}
}

func TestDisabledRegistryIsNoop(t *testing.T) {
	r := NewDisabled()
	if r.Enabled() {
		t.Fatal("disabled registry reports enabled")
	}
	c := r.Counter("a")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBounds())
	if c != nil || g != nil || h != nil {
		t.Fatal("disabled registry returned live instruments")
	}
	// Nil handles must be safe to record into.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	h.ObserveDuration(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments returned nonzero values")
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Fatalf("disabled snapshot not empty: %+v", snap)
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", nil).Observe(1)
	if snap := r.Snapshot(); snap.Counters != nil {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hv := snap.Histogram("h")
	if hv == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if hv.Count != 5 {
		t.Fatalf("count = %d, want 5", hv.Count)
	}
	if hv.Sum != 1+10+11+100+5000 {
		t.Fatalf("sum = %d", hv.Sum)
	}
	want := []int64{2, 2, 0, 1} // (<=10)x2, (<=100)x2, (<=1000)x0, overflow x1
	for i, b := range hv.Buckets {
		if b != want[i] {
			t.Fatalf("buckets = %v, want %v", hv.Buckets, want)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	r := New()
	h := r.Histogram("h", []int64{100, 200, 300, 400})
	// 100 uniform observations into (100,200]: quantiles interpolate there.
	for i := 0; i < 100; i++ {
		h.Observe(150)
	}
	hv := r.Snapshot().Histogram("h")
	if hv.P50 < 100 || hv.P50 > 200 {
		t.Fatalf("p50 = %v, want within (100,200]", hv.P50)
	}
	if hv.P99 < hv.P50 {
		t.Fatalf("p99 %v < p50 %v", hv.P99, hv.P50)
	}
	// Overflow-only observations clamp to the last bound.
	h2 := r.Histogram("h2", []int64{10})
	h2.Observe(99999)
	hv2 := r.Snapshot().Histogram("h2")
	if hv2.P99 != 10 {
		t.Fatalf("overflow quantile = %v, want clamp to 10", hv2.P99)
	}
	// Empty histogram: all quantiles zero.
	r.Histogram("h3", []int64{10})
	hv3 := r.Snapshot().Histogram("h3")
	if hv3.P50 != 0 || hv3.P95 != 0 || hv3.P99 != 0 {
		t.Fatalf("empty histogram quantiles nonzero: %+v", hv3)
	}
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(1000, 2, 4)
	want := []int64{1000, 2000, 4000, 8000}
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("ExpBounds = %v, want %v", b, want)
		}
	}
	db := DurationBounds()
	if len(db) != 24 || db[0] != 1000 {
		t.Fatalf("DurationBounds = %v", db)
	}
	for i := 1; i < len(db); i++ {
		if db[i] <= db[i-1] {
			t.Fatalf("DurationBounds not ascending at %d: %v", i, db)
		}
	}
}

func TestSnapshotSortedAndLookups(t *testing.T) {
	r := New()
	r.Counter("z").Inc()
	r.Counter("a").Add(2)
	r.Gauge("m").Set(9)
	snap := r.Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a" || snap.Counters[1].Name != "z" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	if snap.Counter("a") != 2 || snap.Counter("z") != 1 || snap.Counter("missing") != 0 {
		t.Fatalf("counter lookups wrong: %+v", snap.Counters)
	}
	if snap.Gauge("m") != 9 || snap.Gauge("missing") != 0 {
		t.Fatalf("gauge lookups wrong: %+v", snap.Gauges)
	}
	if snap.Histogram("missing") != nil {
		t.Fatal("missing histogram lookup not nil")
	}
}

// TestRegistryRaceHammer is the registry's concurrency contract test: N
// goroutines record into shared instruments while M readers snapshot.
// Under -race this doubles as the data-race proof; the assertions check
// that concurrently-taken counter snapshots are monotonic, histogram
// counts equal the bucket sum, and quantiles stay within the observed
// value range.
func TestRegistryRaceHammer(t *testing.T) {
	const (
		writers       = 8
		readers       = 4
		perWriter     = 5000
		histLow, hHi  = int64(1), int64(1 << 20)
		snapsPerReads = 200
	)
	r := New()
	c := r.Counter("hammer.count")
	g := r.Gauge("hammer.gauge")
	h := r.Histogram("hammer.lat", SizeBounds())

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			<-start
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(histLow + rng.Int63n(hHi))
				g.Add(-1)
			}
		}(int64(w + 1))
	}

	type obs struct {
		count int64
		hv    HistogramValue
	}
	readerObs := make([][]obs, readers)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			<-start
			for i := 0; i < snapsPerReads; i++ {
				snap := r.Snapshot()
				o := obs{count: snap.Counter("hammer.count")}
				if hv := snap.Histogram("hammer.lat"); hv != nil {
					o.hv = *hv
				}
				readerObs[idx] = append(readerObs[idx], o)
			}
		}(rd)
	}
	close(start)
	wg.Wait()

	for idx, seq := range readerObs {
		var prev int64 = -1
		for i, o := range seq {
			if o.count < prev {
				t.Fatalf("reader %d: counter went backwards at snapshot %d: %d -> %d", idx, i, prev, o.count)
			}
			prev = o.count
			var bsum int64
			for _, b := range o.hv.Buckets {
				bsum += b
			}
			if o.hv.Count != bsum {
				t.Fatalf("reader %d: histogram count %d != bucket sum %d", idx, o.hv.Count, bsum)
			}
			if o.hv.Count > 0 {
				for _, q := range []float64{o.hv.P50, o.hv.P95, o.hv.P99} {
					if q < 0 || q > float64(o.hv.Bounds[len(o.hv.Bounds)-1]) {
						t.Fatalf("reader %d: quantile %v outside bounds", idx, q)
					}
				}
				if o.hv.P50 > o.hv.P95+1e-9 || o.hv.P95 > o.hv.P99+1e-9 {
					t.Fatalf("reader %d: quantiles not ordered: p50=%v p95=%v p99=%v", idx, o.hv.P50, o.hv.P95, o.hv.P99)
				}
			}
		}
	}

	final := r.Snapshot()
	if got := final.Counter("hammer.count"); got != writers*perWriter {
		t.Fatalf("final count = %d, want %d", got, writers*perWriter)
	}
	if got := final.Gauge("hammer.gauge"); got != 0 {
		t.Fatalf("final gauge = %d, want 0", got)
	}
	hv := final.Histogram("hammer.lat")
	if hv.Count != writers*perWriter {
		t.Fatalf("final histogram count = %d, want %d", hv.Count, writers*perWriter)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := New()
	c := r.Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("bench", DurationBounds())
	b.RunParallel(func(pb *testing.PB) {
		var v int64 = 900
		for pb.Next() {
			h.Observe(v)
			v = (v * 7) % (1 << 30)
		}
	})
}
