// Package metrics is the controller's observability layer: a
// dependency-free registry of atomic counters, gauges and fixed-bucket
// latency histograms. The paper's headline result (Fig. 9–10, Table II)
// is an accounting argument — Block pays 17 write contexts per MB where
// Batch pays 1 — and this package makes that accounting visible at
// runtime: every layer (core write stages, flash programs, the WAL's
// group commit, GC, the network front-end) records into one registry,
// and one Snapshot exports the whole cost breakdown.
//
// Design constraints, in order:
//
//   - Hot paths pay a single atomic add. Instrument handles are resolved
//     by name once, at construction; recording never touches the
//     registry lock, allocates, or formats a string.
//   - Reads never block writers. Snapshot loads each atomic
//     individually; counters are monotonic under concurrent snapshots.
//   - A disabled registry strips instrumentation to a nil-receiver
//     branch: NewDisabled returns a registry whose instruments are nil,
//     and every recording method is nil-safe, so callers keep one code
//     path whether or not they are being observed.
//
// Histograms use fixed bucket upper bounds (exponential by default) and
// estimate p50/p95/p99 by linear interpolation within the covering
// bucket, the standard fixed-bucket quantile estimate.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil Counter
// (from a disabled registry) ignores all recordings.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (callers only add non-negative deltas; monotonicity is by
// convention, not enforcement).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value that can move both ways (queue
// depths, in-flight bytes). The nil Gauge ignores all recordings.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for the nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: bounds[i] is the inclusive
// upper bound of bucket i, and one overflow bucket catches everything
// beyond the last bound. Observations are three atomic adds (bucket,
// count, sum). The nil Histogram ignores all recordings.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// ExpBounds returns n exponential bucket upper bounds starting at start
// and multiplying by factor: start, start*factor, start*factor^2, ...
func ExpBounds(start, factor int64, n int) []int64 {
	out := make([]int64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBounds returns the default latency bucket bounds in
// nanoseconds: 1 µs doubling to ~8.4 s (24 buckets plus overflow).
func DurationBounds() []int64 { return ExpBounds(1000, 2, 24) }

// SizeBounds returns the default size/count bucket bounds: 1 doubling
// to ~1 M (21 buckets plus overflow).
func SizeBounds() []int64 { return ExpBounds(1, 2, 21) }

// Registry resolves named instruments and snapshots them. Registration
// (Counter/Gauge/Histogram) takes a lock and is get-or-create — calling
// twice with one name returns the same instrument — so construction-time
// resolution is idempotent across controller restarts on a shared
// device. Recording through the returned handles is lock-free.
type Registry struct {
	disabled bool

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty, enabled registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// NewDisabled returns a registry whose instruments are nil (recording is
// a no-op branch) and whose Snapshot is empty. Used to measure the cost
// of instrumentation itself (benchrunner metricsoverhead).
func NewDisabled() *Registry {
	r := New()
	r.disabled = true
	return r
}

// Enabled reports whether instruments from this registry record.
func (r *Registry) Enabled() bool { return r != nil && !r.disabled }

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a disabled registry.
func (r *Registry) Counter(name string) *Counter {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op handle) on a disabled registry.
func (r *Registry) Gauge(name string) *Gauge {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (bounds must be sorted ascending and
// non-empty; later calls reuse the first registration's bounds). Returns
// nil (a no-op handle) on a disabled registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = DurationBounds()
		}
		h = &Histogram{
			bounds:  append([]int64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// --- snapshots --------------------------------------------------------------

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram's snapshot. Buckets has one more entry
// than Bounds (the overflow bucket). Count is the sum over Buckets, so a
// snapshot taken during concurrent observation is internally consistent;
// Sum is loaded separately and may trail by in-flight observations. The
// quantiles are derived from Bounds/Buckets by Finalize and are NOT
// carried on the wire — both ends compute them identically.
type HistogramValue struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
	P50     float64 `json:"p50"`
	P95     float64 `json:"p95"`
	P99     float64 `json:"p99"`
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation within the covering bucket. Observations in the overflow
// bucket clamp to the last bound.
func (h *HistogramValue) Quantile(q float64) float64 {
	var total int64
	for _, b := range h.Buckets {
		total += b
	}
	if total == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, b := range h.Buckets {
		cum += b
		if float64(cum) >= rank && b > 0 {
			if i >= len(h.Bounds) {
				return float64(h.Bounds[len(h.Bounds)-1])
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(h.Bounds[i-1])
			}
			hi := float64(h.Bounds[i])
			return lo + (hi-lo)*(rank-float64(cum-b))/float64(b)
		}
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// Mean returns the mean observed value (0 when empty).
func (h *HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Finalize recomputes the derived quantile fields from Bounds/Buckets.
// Decoders call it after filling the raw fields so both wire ends agree
// field-for-field.
func (h *HistogramValue) Finalize() {
	h.P50 = h.Quantile(0.50)
	h.P95 = h.Quantile(0.95)
	h.P99 = h.Quantile(0.99)
}

// Label is one non-numeric fact attached to a snapshot by whoever
// exported it — e.g. the active GC policy name. Labels are not
// instruments: the registry never produces them; the exporter (server)
// appends them before encoding, sorted by key.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Snapshot is a point-in-time export of every instrument, sorted by name
// within each kind. The zero Snapshot (nil slices) is what a disabled
// registry produces and what the wire codec decodes for empty sections.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
	Labels     []Label          `json:"labels,omitempty"`
}

// Counter returns the named counter's value (0 if absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value (0 if absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Label returns the named label's value ("" if absent).
func (s Snapshot) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Histogram returns the named histogram's snapshot (nil if absent).
func (s Snapshot) Histogram(name string) *HistogramValue {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// Snapshot exports every registered instrument. It holds the
// registration lock only to collect the handle lists; the atomic loads
// run unlocked, so recorders are never blocked and successive snapshots
// of one counter are monotonic.
func (r *Registry) Snapshot() Snapshot {
	if !r.Enabled() {
		return Snapshot{}
	}
	r.mu.Lock()
	cs := make([]CounterValue, 0, len(r.counters))
	for name, c := range r.counters {
		cs = append(cs, CounterValue{Name: name, Value: c.Value()})
	}
	gs := make([]GaugeValue, 0, len(r.gauges))
	for name, g := range r.gauges {
		gs = append(gs, GaugeValue{Name: name, Value: g.Value()})
	}
	type namedHist struct {
		name string
		h    *Histogram
	}
	hs := make([]namedHist, 0, len(r.histograms))
	for name, h := range r.histograms {
		hs = append(hs, namedHist{name, h})
	}
	r.mu.Unlock()

	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	sort.Slice(gs, func(i, j int) bool { return gs[i].Name < gs[j].Name })
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	hvs := make([]HistogramValue, 0, len(hs))
	for _, nh := range hs {
		hv := HistogramValue{
			Name:    nh.name,
			Sum:     nh.h.sum.Load(),
			Bounds:  append([]int64(nil), nh.h.bounds...),
			Buckets: make([]int64, len(nh.h.buckets)),
		}
		for i := range nh.h.buckets {
			b := nh.h.buckets[i].Load()
			hv.Buckets[i] = b
			hv.Count += b
		}
		hv.Finalize()
		hvs = append(hvs, hv)
	}
	if len(cs) == 0 {
		cs = nil
	}
	if len(gs) == 0 {
		gs = nil
	}
	if len(hvs) == 0 {
		hvs = nil
	}
	return Snapshot{Counters: cs, Gauges: gs, Histograms: hvs}
}
