package ycsb

import (
	"testing"
	"testing/quick"
)

func TestZipfianBoundsQuick(t *testing.T) {
	z, err := NewZipfian(1000, 0.99, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if r := z.Next(); r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	z, _ := NewZipfian(10000, 0.99, 2)
	counts := make([]int, 10000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be far hotter than the median rank.
	if counts[0] < 20*counts[5000]+20 {
		t.Fatalf("insufficient skew: rank0=%d rank5000=%d", counts[0], counts[5000])
	}
	// Top 10% of ranks should take the majority of draws.
	top := 0
	for i := 0; i < 1000; i++ {
		top += counts[i]
	}
	if float64(top)/draws < 0.5 {
		t.Fatalf("top-10%% share %.2f too low for theta=0.99", float64(top)/draws)
	}
}

func TestZipfianValidation(t *testing.T) {
	if _, err := NewZipfian(0, 0.99, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipfian(10, 0, 1); err == nil {
		t.Fatal("theta=0 accepted")
	}
	if _, err := NewZipfian(10, 1, 1); err == nil {
		t.Fatal("theta=1 accepted")
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	s, err := NewScrambled(100000, 0.99, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Scrambling must not map the hottest rank to rank 0 consistently;
	// keys should span the space.
	seen := map[uint64]bool{}
	var max uint64
	for i := 0; i < 50000; i++ {
		k := s.Next()
		if k >= 100000 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
		if k > max {
			max = k
		}
	}
	if max < 50000 {
		t.Fatalf("scrambled keys clustered low: max=%d", max)
	}
	if len(seen) < 100 {
		t.Fatalf("too few distinct keys: %d", len(seen))
	}
}

func TestWorkloadMixMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 1000
	w, err := NewWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reads, updates := 0, 0
	for i := 0; i < 20000; i++ {
		op := w.Next()
		if op.Kind == OpRead {
			reads++
		} else {
			updates++
		}
		if op.Key >= 1000 {
			t.Fatalf("key %d out of range", op.Key)
		}
	}
	// Exactly 5% reads: 19 updates then 1 read (§IX-A3).
	if reads != 1000 || updates != 19000 {
		t.Fatalf("mix: %d reads, %d updates", reads, updates)
	}
	// The interleave is deterministic: every 20th op is a read.
	w2, _ := NewWorkload(cfg)
	for i := 0; i < 100; i++ {
		op := w2.Next()
		wantRead := i%20 == 19
		if (op.Kind == OpRead) != wantRead {
			t.Fatalf("op %d kind wrong", i)
		}
	}
}

func TestReadHeavyMix(t *testing.T) {
	cfg := ReadHeavyConfig()
	cfg.Records = 1000
	w, err := NewWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reads, updates := 0, 0
	for i := 0; i < 20000; i++ {
		if w.Next().Kind == OpRead {
			reads++
		} else {
			updates++
		}
	}
	// Inverted: 95% reads, 5% updates (the paper's omitted mix).
	if reads != 19000 || updates != 1000 {
		t.Fatalf("read-heavy mix: %d reads, %d updates", reads, updates)
	}
}

func TestValueDeterministicAndSized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Records = 10
	w, _ := NewWorkload(cfg)
	a := w.Value(5, 1)
	b := w.Value(5, 1)
	c := w.Value(5, 2)
	if len(a) != 100 {
		t.Fatalf("value size %d", len(a))
	}
	if string(a) != string(b) {
		t.Fatal("value not deterministic")
	}
	if string(a) == string(c) {
		t.Fatal("versions should differ")
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := NewWorkload(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestZipfianDeterministicQuick(t *testing.T) {
	f := func(seed int64) bool {
		a, err1 := NewZipfian(500, 0.9, seed)
		b, err2 := NewZipfian(500, 0.9, seed)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			if a.Next() != b.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
