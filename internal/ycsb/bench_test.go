package ycsb

import "testing"

func BenchmarkZipfianNext(b *testing.B) {
	z, err := NewZipfian(10_000_000, 0.99, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += z.Next()
	}
	_ = sink
}

func BenchmarkScrambledNext(b *testing.B) {
	s, err := NewScrambled(10_000_000, 0.99, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Next()
	}
	_ = sink
}
