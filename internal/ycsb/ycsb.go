// Package ycsb generates the YCSB workload of §IX-A3: 10 million unique
// records of 8-byte keys and 100-byte payloads, with operations choosing
// keys by a Zipfian distribution over existing keys and a write-heavy mix
// of 95% updates / 5% reads interleaved as 19 updates then 1 read.
package ycsb

import (
	"errors"
	"hash/fnv"
	"math"
	"math/rand"
)

// Zipfian draws ranks in [0, n) with the classic Gray et al. algorithm
// (the one YCSB uses), theta-skewed toward small ranks.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewZipfian creates a generator over n items with skew theta (YCSB uses
// 0.99).
func NewZipfian(n uint64, theta float64, seed int64) (*Zipfian, error) {
	if n == 0 {
		return nil, errors.New("ycsb: need at least one item")
	}
	if theta <= 0 || theta >= 1 {
		return nil, errors.New("ycsb: theta must be in (0,1)")
	}
	z := &Zipfian{n: n, theta: theta, rng: rand.New(rand.NewSource(seed))}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z, nil
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next rank in [0, n): rank 0 is the hottest.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Scrambled wraps Zipfian, hashing ranks so the hot keys are spread across
// the key space (YCSB's "scrambled zipfian").
type Scrambled struct {
	z *Zipfian
}

// NewScrambled creates a scrambled Zipfian generator.
func NewScrambled(n uint64, theta float64, seed int64) (*Scrambled, error) {
	z, err := NewZipfian(n, theta, seed)
	if err != nil {
		return nil, err
	}
	return &Scrambled{z: z}, nil
}

// Next returns a scrambled rank in [0, n).
func (s *Scrambled) Next() uint64 {
	h := fnv.New64a()
	var b [8]byte
	r := s.z.Next()
	for i := 0; i < 8; i++ {
		b[i] = byte(r >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64() % s.z.n
}

// OpKind is a workload operation type.
type OpKind int

const (
	// OpUpdate rewrites a record's payload.
	OpUpdate OpKind = iota
	// OpRead fetches a record.
	OpRead
)

// Op is one workload operation.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Config shapes the workload (defaults follow §IX-A3).
type Config struct {
	Records     uint64  // unique records (paper: 10M)
	ValueBytes  int     // payload size (paper: 100)
	Theta       float64 // Zipfian skew (0.99)
	UpdateEvery int     // updates per read in the interleave (paper: 19)
	// ReadHeavy inverts the mix to 95% reads / 5% updates — the workload
	// the paper evaluated but omitted "due to space constraints"
	// (footnote 2).
	ReadHeavy bool
	Seed      int64
}

// DefaultConfig returns the paper's write-heavy workload.
func DefaultConfig() Config {
	return Config{Records: 10_000_000, ValueBytes: 100, Theta: 0.99, UpdateEvery: 19, Seed: 1}
}

// ReadHeavyConfig returns the omitted read-heavy mix (95% reads).
func ReadHeavyConfig() Config {
	c := DefaultConfig()
	c.ReadHeavy = true
	return c
}

// Workload produces the operation stream.
type Workload struct {
	cfg   Config
	gen   *Scrambled
	rng   *rand.Rand
	opIdx int
}

// NewWorkload creates the generator.
func NewWorkload(cfg Config) (*Workload, error) {
	if cfg.Records == 0 || cfg.ValueBytes <= 0 || cfg.UpdateEvery < 0 {
		return nil, errors.New("ycsb: bad config")
	}
	g, err := NewScrambled(cfg.Records, cfg.Theta, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Workload{cfg: cfg, gen: g, rng: rand.New(rand.NewSource(cfg.Seed + 1))}, nil
}

// Next returns the next operation: UpdateEvery updates, then one read,
// repeating (the paper's interleave) — or the inverse when ReadHeavy.
func (w *Workload) Next() Op {
	minority := w.cfg.UpdateEvery == 0 || w.opIdx%(w.cfg.UpdateEvery+1) == w.cfg.UpdateEvery
	w.opIdx++
	kind := OpUpdate
	if minority != w.cfg.ReadHeavy {
		kind = OpRead
	}
	return Op{Kind: kind, Key: w.gen.Next()}
}

// Value builds the deterministic payload for (key, version).
func (w *Workload) Value(key uint64, version uint64) []byte {
	b := make([]byte, w.cfg.ValueBytes)
	state := key*6364136223846793005 + version*1442695040888963407 + 1
	for i := range b {
		state = state*6364136223846793005 + 1442695040888963407
		b[i] = byte(state >> 56)
	}
	return b
}

// Records returns the configured record count.
func (w *Workload) Records() uint64 { return w.cfg.Records }
