// Package bufpool is the shared buffer pool of the network hot path: a
// set of size-classed sync.Pools handing out reference-counted byte
// buffers, so the decode→claim→program pipeline can borrow one buffer
// through several layers and return it to the pool exactly once, when
// the last borrower is done.
//
// The target shape is the fixed-buffer packet idiom of zero-alloc
// network loops: a request's bytes are read from the socket once, into
// a pooled frame, and every later stage (batch decode, the aligned
// program buffer handed to the flash workers, the coalescer holding
// sub-flushes from several connections) holds a reference instead of a
// copy. The reference count exists because those lifetimes genuinely
// overlap — a coalesced batch keeps the frames of many connections
// alive until the flash programs complete — and a plain sync.Pool Put
// from the wrong layer would recycle bytes another layer still reads.
//
// Ownership rules (see DESIGN.md §6.5):
//
//   - Get returns a Buf with one reference, owned by the caller.
//   - A layer that stores the buffer past the current call must Retain
//     it and Release when done; slices of Bytes() are only valid while
//     the holder's reference is live.
//   - Release of the last reference returns the buffer to its pool.
//     Releasing more than retained panics — a use-after-put in waiting.
//
// SetPoison makes every recycled buffer get scribbled before reuse, so
// tests (and paranoid deployments) convert silent use-after-release
// into loud data corruption that content-integrity checks catch.
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Size classes are spaced ×4 from 4 KB to 16 MB — the typical span from
// one small flush frame to netproto.DefaultMaxFrameBytes. A request for
// more than the largest class gets a plain unpooled allocation.
var classSizes = [...]int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}

// PoisonByte is the fill pattern SetPoison(true) writes over released
// buffers. 0xDB reads as "dead buffer" in hex dumps and is nonzero, so
// code that relies on pool buffers arriving zeroed fails loudly too.
const PoisonByte = 0xDB

var poison atomic.Bool

// SetPoison toggles scribbling of released buffers (default off). Tests
// enable it to turn any use-after-release into detectable corruption.
func SetPoison(on bool) { poison.Store(on) }

// Buf is one pooled, reference-counted buffer. The zero value is not
// usable; obtain Bufs from Get.
type Buf struct {
	b     []byte // full backing array, len = class size
	n     int    // requested length; Bytes() = b[:n]
	class int32  // index into pools, -1 = unpooled
	refs  atomic.Int32
}

// pools[i] holds *Buf whose backing arrays are classSizes[i] long. The
// Buf structs ride along with their arrays, so a steady-state
// Get/Release cycle allocates nothing.
var pools [len(classSizes)]sync.Pool

func init() {
	for i := range pools {
		size := classSizes[i]
		class := int32(i)
		pools[i].New = func() any {
			return &Buf{b: make([]byte, size), class: class}
		}
	}
}

// Get returns a buffer of length n with one reference. Contents are NOT
// zeroed — callers that need zero bytes (alignment padding) must clear
// them. n larger than the biggest class is served by a one-off
// allocation whose Release is a no-op beyond refcount bookkeeping.
func Get(n int) *Buf {
	for i, size := range classSizes {
		if n <= size {
			u := pools[i].Get().(*Buf)
			u.n = n
			u.refs.Store(1)
			return u
		}
	}
	u := &Buf{b: make([]byte, n), n: n, class: -1}
	u.refs.Store(1)
	return u
}

// Bytes returns the buffer's payload slice. Valid only while the caller
// holds a live reference.
func (u *Buf) Bytes() []byte { return u.b[:u.n] }

// Cap returns the backing capacity (the class size).
func (u *Buf) Cap() int { return len(u.b) }

// Retain adds a reference. The holder must pair it with Release.
func (u *Buf) Retain() {
	if u.refs.Add(1) <= 1 {
		panic("bufpool: Retain of released buffer")
	}
}

// Refs returns the current reference count (for tests and assertions).
func (u *Buf) Refs() int32 { return u.refs.Load() }

// Release drops one reference; the last one returns the buffer to its
// pool. Releasing an already-dead buffer panics rather than silently
// corrupting whoever got the buffer next.
func (u *Buf) Release() {
	switch refs := u.refs.Add(-1); {
	case refs > 0:
		return
	case refs < 0:
		panic(fmt.Sprintf("bufpool: Release of dead buffer (refs %d)", refs))
	}
	if poison.Load() {
		b := u.b[:u.n]
		for i := range b {
			b[i] = PoisonByte
		}
	}
	if u.class >= 0 {
		pools[u.class].Put(u)
	}
}
