package bufpool

import (
	"sync"
	"testing"
)

func TestGetSizes(t *testing.T) {
	for _, n := range []int{0, 1, 4096, 4097, 1 << 20, 16 << 20, 16<<20 + 1} {
		u := Get(n)
		if len(u.Bytes()) != n {
			t.Fatalf("Get(%d): len %d", n, len(u.Bytes()))
		}
		if u.Cap() < n {
			t.Fatalf("Get(%d): cap %d", n, u.Cap())
		}
		u.Release()
	}
}

func TestOversizeUnpooled(t *testing.T) {
	u := Get(16<<20 + 1)
	if u.class != -1 {
		t.Fatalf("oversize buffer got class %d", u.class)
	}
	u.Release() // must not panic or pool
}

func TestRetainRelease(t *testing.T) {
	u := Get(64)
	u.Retain()
	if got := u.Refs(); got != 2 {
		t.Fatalf("refs = %d, want 2", got)
	}
	u.Release()
	if got := u.Refs(); got != 1 {
		t.Fatalf("refs = %d, want 1", got)
	}
	u.Release()
	if got := u.Refs(); got != 0 {
		t.Fatalf("refs = %d, want 0", got)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	u := Get(64)
	u.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	u.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	u := Get(64)
	u.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain of dead buffer did not panic")
		}
	}()
	u.Retain()
}

func TestPoison(t *testing.T) {
	SetPoison(true)
	defer SetPoison(false)
	u := Get(128)
	b := u.Bytes()
	for i := range b {
		b[i] = 0x42
	}
	u.Release()
	// b aliases the pooled array; after release it must be poisoned.
	for i, v := range b {
		if v != PoisonByte {
			t.Fatalf("byte %d = %#x after release, want %#x", i, v, PoisonByte)
		}
	}
}

func TestSteadyStateZeroAlloc(t *testing.T) {
	// Warm the pool, then check the Get/Release cycle allocates nothing.
	for _, n := range []int{512, 9000} {
		Get(n).Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		u := Get(512)
		u.Bytes()[0] = 1
		u.Release()
		u = Get(9000)
		u.Retain()
		u.Release()
		u.Release()
	})
	if allocs > 0 {
		t.Fatalf("steady-state Get/Release allocates %.1f per run, want 0", allocs)
	}
}

func TestConcurrentChurn(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				u := Get(1 + (g*977+i*131)%70000)
				b := u.Bytes()
				for j := 0; j < len(b); j += 997 {
					b[j] = byte(g)
				}
				if i%3 == 0 {
					u.Retain()
					u.Release()
				}
				u.Release()
			}
		}(g)
	}
	wg.Wait()
}
