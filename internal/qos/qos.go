// Package qos implements per-tenant admission control for the eleosd
// network front-end (DESIGN.md §10). Each tenant gets two independent
// brakes, both in bytes:
//
//   - a token bucket shaping sustained write bandwidth (RateBytesPerSec
//     with a BurstBytes allowance), and
//   - an inflight budget bounding the batch bytes a tenant may have
//     admitted into the controller at once (MaxInflightBytes).
//
// The server charges both BEFORE a flush enters the global inflight
// semaphore or the coalescer: a merged group batch therefore never lets
// one tenant ride another's budget — every sub-flush paid its own way
// at the door.
//
// Budget waiters are served in (priority, arrival) order, with a
// wait-age bypass: a waiter parked longer than StarvationWait is
// promoted ahead of higher-priority arrivals, so a low-priority tenant
// makes progress under a continuous high-priority load. Admission is
// head-of-line within a tenant — a small request cannot sneak past a
// blocked larger one, which keeps the queue order honest.
//
// Time is injected (Clock) so the refill and starvation arithmetic is
// testable without real sleeps.
package qos

import (
	"errors"
	"sort"
	"sync"
	"time"

	"eleos/internal/metrics"
)

// ErrDraining aborts admissions while the server shuts down.
var ErrDraining = errors.New("qos: draining")

// Clock abstracts time so tests can drive refill and starvation
// deterministically.
type Clock interface {
	Now() time.Time
	// After fires once d has elapsed (like time.After).
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Limits bounds one tenant. Zero fields are unlimited.
type Limits struct {
	// RateBytesPerSec caps sustained admitted bytes per second.
	RateBytesPerSec int64
	// BurstBytes is the token bucket capacity; 0 defaults to one
	// second's worth of rate.
	BurstBytes int64
	// MaxInflightBytes caps the tenant's concurrently admitted bytes.
	MaxInflightBytes int64
}

func (l Limits) burst() int64 {
	if l.BurstBytes > 0 {
		return l.BurstBytes
	}
	return l.RateBytesPerSec
}

// Config tunes the admission controller.
type Config struct {
	// Enabled turns per-tenant admission on; when false every Admit is
	// a no-op, so the QoS layer costs nothing when unused.
	Enabled bool
	// Default applies to tenants without an entry in Tenants (including
	// the default "" tenant of untagged sessions).
	Default Limits
	// Tenants maps tenant names to their limits.
	Tenants map[string]Limits
	// StarvationWait promotes a budget waiter parked at least this long
	// ahead of priority order. Default 100ms.
	StarvationWait time.Duration
	// Clock injects time; nil uses the real clock.
	Clock Clock
}

func (c Config) withDefaults() Config {
	if c.StarvationWait == 0 {
		c.StarvationWait = 100 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// TenantStats snapshots one tenant's admission accounting.
type TenantStats struct {
	AdmittedBytes  int64 // total bytes admitted
	ThrottledCount int64 // admissions that had to wait
	InflightBytes  int64 // currently admitted bytes
	Waiters        int   // admissions currently parked on the budget
}

type waiter struct {
	priority uint8
	n        int64
	since    time.Time
}

type tenantState struct {
	lim      Limits
	tokens   float64 // bucket level, bytes
	last     time.Time
	inflight int64
	waiters  []*waiter // arrival order

	admittedBytes  int64
	throttledCount int64

	mAdmitted *metrics.Counter
	mThrottle *metrics.Counter
	mInflight *metrics.Gauge
	mWaitNS   *metrics.Histogram
}

// Controller is the per-tenant admission gate. Safe for concurrent use.
// A nil Controller admits everything (disabled).
type Controller struct {
	cfg Config
	clk Clock
	reg *metrics.Registry

	mu       sync.Mutex
	cond     *sync.Cond
	draining bool
	drainCh  chan struct{}
	tenants  map[string]*tenantState
}

// New builds a Controller. reg may be nil (no instrument export);
// a disabled config returns a controller whose Admit is free.
func New(cfg Config, reg *metrics.Registry) *Controller {
	q := &Controller{
		cfg:     cfg.withDefaults(),
		reg:     reg,
		drainCh: make(chan struct{}),
		tenants: make(map[string]*tenantState),
	}
	q.clk = q.cfg.Clock
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Enabled reports whether admission control is active.
func (q *Controller) Enabled() bool { return q != nil && q.cfg.Enabled }

func (q *Controller) tenantLocked(name string) *tenantState {
	ts, ok := q.tenants[name]
	if !ok {
		lim, found := q.cfg.Tenants[name]
		if !found {
			lim = q.cfg.Default
		}
		ts = &tenantState{lim: lim, tokens: float64(lim.burst()), last: q.clk.Now()}
		if q.reg != nil {
			label := name
			if label == "" {
				label = "default"
			}
			ts.mAdmitted = q.reg.Counter("qos." + label + ".admitted_bytes")
			ts.mThrottle = q.reg.Counter("qos." + label + ".throttled")
			ts.mInflight = q.reg.Gauge("qos." + label + ".inflight_bytes")
			ts.mWaitNS = q.reg.Histogram("qos."+label+".wait_ns", metrics.DurationBounds())
		}
		q.tenants[name] = ts
	}
	return ts
}

// refillLocked credits tokens accrued since the last refill.
func (q *Controller) refillLocked(ts *tenantState, now time.Time) {
	dt := now.Sub(ts.last)
	if dt <= 0 {
		return
	}
	ts.last = now
	ts.tokens += dt.Seconds() * float64(ts.lim.RateBytesPerSec)
	if max := float64(ts.lim.burst()); ts.tokens > max {
		ts.tokens = max
	}
}

// turnLocked reports whether w is the tenant's next admission: the
// waiter with the highest effective priority, where being parked past
// StarvationWait beats any nominal priority, and arrival order breaks
// ties.
func (q *Controller) turnLocked(ts *tenantState, w *waiter, now time.Time) bool {
	best := -1
	bestStarved, bestPrio := false, uint8(0)
	for i, o := range ts.waiters {
		starved := now.Sub(o.since) >= q.cfg.StarvationWait
		if best == -1 ||
			(starved && !bestStarved) ||
			(starved == bestStarved && o.priority > bestPrio) {
			best, bestStarved, bestPrio = i, starved, o.priority
		}
	}
	return best >= 0 && ts.waiters[best] == w
}

func removeWaiter(ws []*waiter, w *waiter) []*waiter {
	for i, o := range ws {
		if o == w {
			return append(ws[:i], ws[i+1:]...)
		}
	}
	return ws
}

// Admit blocks until tenant may send n more bytes: the token bucket has
// n tokens (rate shaping) and the inflight budget has room. Draining
// aborts the wait. A request larger than the bucket or the whole budget
// is admitted when they are full/empty respectively rather than
// deadlocking (mirroring the server's global semaphore). Admitted bytes
// MUST be returned with Release.
func (q *Controller) Admit(tenant string, priority uint8, n int64) error {
	if !q.Enabled() || n <= 0 {
		return nil
	}
	q.mu.Lock()
	ts := q.tenantLocked(tenant)
	var t0 time.Time
	throttled := false

	// Phase 1: token bucket. Paid before the budget so a rate-capped
	// tenant queues here instead of holding budget slots.
	if ts.lim.RateBytesPerSec > 0 {
		for {
			if q.draining {
				q.mu.Unlock()
				return ErrDraining
			}
			now := q.clk.Now()
			q.refillLocked(ts, now)
			need := float64(n)
			if cap := float64(ts.lim.burst()); need > cap {
				need = cap // oversized burst: admit at full bucket
			}
			if ts.tokens >= need {
				ts.tokens -= need
				break
			}
			if !throttled {
				throttled, t0 = true, now
			}
			wait := time.Duration((need - ts.tokens) / float64(ts.lim.RateBytesPerSec) * float64(time.Second))
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			ch := q.clk.After(wait)
			q.mu.Unlock()
			select {
			case <-ch:
			case <-q.drainCh:
				return ErrDraining
			}
			q.mu.Lock()
		}
	}

	// Phase 2: inflight budget, priority queue with starvation bypass.
	if ts.lim.MaxInflightBytes > 0 {
		w := &waiter{priority: priority, n: n, since: q.clk.Now()}
		ts.waiters = append(ts.waiters, w)
		for {
			if q.draining {
				ts.waiters = removeWaiter(ts.waiters, w)
				q.cond.Broadcast()
				q.mu.Unlock()
				return ErrDraining
			}
			now := q.clk.Now()
			if q.turnLocked(ts, w, now) &&
				(ts.inflight+n <= ts.lim.MaxInflightBytes || ts.inflight == 0) {
				ts.waiters = removeWaiter(ts.waiters, w)
				break
			}
			if !throttled {
				throttled, t0 = true, now
			}
			q.cond.Wait()
		}
	}

	ts.inflight += n
	ts.admittedBytes += n
	if throttled {
		ts.throttledCount++
		ts.mThrottle.Inc()
		ts.mWaitNS.ObserveDuration(q.clk.Now().Sub(t0))
	}
	ts.mAdmitted.Add(n)
	ts.mInflight.Add(n)
	// Another waiter may now be the head (we left the queue).
	q.cond.Broadcast()
	q.mu.Unlock()
	return nil
}

// Release returns n admitted bytes to the tenant's budget. Call exactly
// once per successful Admit — the server pairs them per request, so a
// connection death releases its bytes when its in-flight request
// unwinds.
func (q *Controller) Release(tenant string, n int64) {
	if !q.Enabled() || n <= 0 {
		return
	}
	q.mu.Lock()
	ts := q.tenantLocked(tenant)
	ts.inflight -= n
	ts.mInflight.Add(-n)
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Drain aborts current and future admissions with ErrDraining.
// Idempotent.
func (q *Controller) Drain() {
	if q == nil {
		return
	}
	q.mu.Lock()
	if !q.draining {
		q.draining = true
		close(q.drainCh)
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Stats snapshots per-tenant accounting, keyed by tenant name.
func (q *Controller) Stats() map[string]TenantStats {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]TenantStats, len(q.tenants))
	for name, ts := range q.tenants {
		out[name] = TenantStats{
			AdmittedBytes:  ts.admittedBytes,
			ThrottledCount: ts.throttledCount,
			InflightBytes:  ts.inflight,
			Waiters:        len(ts.waiters),
		}
	}
	return out
}

// TenantNames lists tenants seen so far, sorted.
func (q *Controller) TenantNames() []string {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	names := make([]string, 0, len(q.tenants))
	for name := range q.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
