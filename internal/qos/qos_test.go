package qos

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eleos/internal/metrics"
)

// fakeClock is a manually advanced clock: After timers fire when
// Advance moves now past their deadline.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.timers = append(c.timers, fakeTimer{at: at, ch: ch})
	return ch
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var rest []fakeTimer
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			rest = append(rest, t)
		}
	}
	c.timers = rest
	c.mu.Unlock()
}

// admitDone runs Admit in a goroutine and returns a channel carrying
// its result.
func admitDone(q *Controller, tenant string, prio uint8, n int64) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- q.Admit(tenant, prio, n) }()
	return ch
}

func mustAdmitted(t *testing.T, ch <-chan error) {
	t.Helper()
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("admit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("admit did not complete")
	}
}

func mustBlocked(t *testing.T, ch <-chan error) {
	t.Helper()
	select {
	case err := <-ch:
		t.Fatalf("admit completed early (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestBucketBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	tests := []struct {
		name   string
		lim    Limits
		admits []int64 // sequential, all must pass without blocking
		then   int64   // next admit that must block...
		adv    time.Duration
	}{
		{
			name:   "burst allows rate exceedance once",
			lim:    Limits{RateBytesPerSec: 1000, BurstBytes: 4000},
			admits: []int64{1500, 1500, 1000}, // 4000 = full burst
			then:   1000,
			adv:    time.Second, // refills 1000 tokens
		},
		{
			name:   "burst defaults to one second of rate",
			lim:    Limits{RateBytesPerSec: 2048},
			admits: []int64{1024, 1024},
			then:   512,
			adv:    250 * time.Millisecond, // 512 tokens
		},
		{
			name:   "oversized burst admitted at full bucket",
			lim:    Limits{RateBytesPerSec: 100, BurstBytes: 200},
			admits: []int64{1 << 20}, // way over capacity: admitted, drains bucket
			then:   200,
			adv:    2 * time.Second,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			q := New(Config{Enabled: true, Default: tc.lim, Clock: clk}, nil)
			for i, n := range tc.admits {
				if err := q.Admit("t", 0, n); err != nil {
					t.Fatalf("admit %d (%d bytes): %v", i, n, err)
				}
				q.Release("t", n)
			}
			ch := admitDone(q, "t", 0, tc.then)
			mustBlocked(t, ch)
			clk.Advance(tc.adv)
			mustAdmitted(t, ch)
			if st := q.Stats()["t"]; st.ThrottledCount != 1 {
				t.Fatalf("throttled count = %d, want 1", st.ThrottledCount)
			}
		})
	}
}

func TestBudgetBlocksAndReleases(t *testing.T) {
	clk := newFakeClock()
	q := New(Config{Enabled: true, Default: Limits{MaxInflightBytes: 1000}, Clock: clk}, nil)
	if err := q.Admit("t", 0, 800); err != nil {
		t.Fatalf("admit: %v", err)
	}
	ch := admitDone(q, "t", 0, 300) // 800+300 > 1000: must wait
	mustBlocked(t, ch)
	if st := q.Stats()["t"]; st.Waiters != 1 || st.InflightBytes != 800 {
		t.Fatalf("stats = %+v, want 1 waiter / 800 inflight", st)
	}
	// Budget release on connection death: the dying request unwinds via
	// Release, which must unblock the waiter.
	q.Release("t", 800)
	mustAdmitted(t, ch)
	q.Release("t", 300)
	if st := q.Stats()["t"]; st.InflightBytes != 0 || st.Waiters != 0 {
		t.Fatalf("stats after drain = %+v, want all zero", st)
	}
}

func TestBudgetOversizedAdmittedAlone(t *testing.T) {
	clk := newFakeClock()
	q := New(Config{Enabled: true, Default: Limits{MaxInflightBytes: 100}, Clock: clk}, nil)
	if err := q.Admit("t", 0, 5000); err != nil { // inflight==0: no deadlock
		t.Fatalf("oversized admit: %v", err)
	}
	ch := admitDone(q, "t", 0, 10)
	mustBlocked(t, ch) // budget is over-committed until the giant releases
	q.Release("t", 5000)
	mustAdmitted(t, ch)
}

func TestBudgetPriorityOrder(t *testing.T) {
	clk := newFakeClock()
	q := New(Config{
		Enabled:        true,
		Default:        Limits{MaxInflightBytes: 100},
		StarvationWait: time.Hour, // effectively off for this test
		Clock:          clk,
	}, nil)
	if err := q.Admit("t", 0, 100); err != nil {
		t.Fatalf("admit: %v", err)
	}
	var order []string
	var mu sync.Mutex
	note := func(tag string, ch <-chan error) {
		go func() {
			if err := <-ch; err == nil {
				mu.Lock()
				order = append(order, tag)
				mu.Unlock()
			}
		}()
	}
	lo := admitDone(q, "t", 1, 100)
	mustBlocked(t, lo)
	hi := admitDone(q, "t", 9, 100)
	mustBlocked(t, hi)
	note("lo", lo)
	note("hi", hi)
	// Release the slot twice: the high-priority waiter must win the
	// first slot even though it arrived second.
	q.Release("t", 100)
	time.Sleep(50 * time.Millisecond)
	q.Release("t", 100)
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "hi" || order[1] != "lo" {
		t.Fatalf("admission order = %v, want [hi lo]", order)
	}
}

func TestStarvationBypass(t *testing.T) {
	clk := newFakeClock()
	q := New(Config{
		Enabled:        true,
		Default:        Limits{MaxInflightBytes: 100},
		StarvationWait: 500 * time.Millisecond,
		Clock:          clk,
	}, nil)
	if err := q.Admit("t", 0, 100); err != nil {
		t.Fatalf("admit: %v", err)
	}
	lo := admitDone(q, "t", 0, 100)
	mustBlocked(t, lo)
	// Age the low-priority waiter past the starvation threshold, then
	// add a fresh high-priority waiter.
	clk.Advance(time.Second)
	hi := admitDone(q, "t", 255, 100)
	mustBlocked(t, hi)
	// One slot frees: the starved waiter must beat the high priority.
	q.Release("t", 100)
	mustAdmitted(t, lo)
	mustBlocked(t, hi)
	q.Release("t", 100)
	mustAdmitted(t, hi)
}

func TestTenantIsolation(t *testing.T) {
	clk := newFakeClock()
	q := New(Config{
		Enabled: true,
		Default: Limits{},
		Tenants: map[string]Limits{"capped": {MaxInflightBytes: 10}},
		Clock:   clk,
	}, nil)
	if err := q.Admit("capped", 0, 10); err != nil {
		t.Fatalf("admit: %v", err)
	}
	ch := admitDone(q, "capped", 0, 10)
	mustBlocked(t, ch)
	// Another tenant (default limits: unlimited) is unaffected.
	for i := 0; i < 100; i++ {
		if err := q.Admit("free", 0, 1<<20); err != nil {
			t.Fatalf("free tenant admit %d: %v", i, err)
		}
	}
	q.Release("capped", 10)
	mustAdmitted(t, ch)
}

func TestDrainAbortsWaiters(t *testing.T) {
	clk := newFakeClock()
	q := New(Config{
		Enabled: true,
		Tenants: map[string]Limits{
			"budget": {MaxInflightBytes: 10},
			"rate":   {RateBytesPerSec: 1, BurstBytes: 1},
		},
		Clock: clk,
	}, nil)
	if err := q.Admit("budget", 0, 10); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := q.Admit("rate", 0, 1); err != nil {
		t.Fatalf("admit: %v", err)
	}
	budgetWait := admitDone(q, "budget", 0, 10)
	rateWait := admitDone(q, "rate", 0, 1)
	mustBlocked(t, budgetWait)
	mustBlocked(t, rateWait)
	q.Drain()
	for name, ch := range map[string]<-chan error{"budget": budgetWait, "rate": rateWait} {
		select {
		case err := <-ch:
			if !errors.Is(err, ErrDraining) {
				t.Fatalf("%s waiter: err = %v, want ErrDraining", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s waiter not aborted by drain", name)
		}
	}
	if err := q.Admit("budget", 0, 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain admit err = %v, want ErrDraining", err)
	}
}

func TestDisabledAndNilAreFree(t *testing.T) {
	var nilQ *Controller
	if err := nilQ.Admit("t", 0, 1<<30); err != nil {
		t.Fatalf("nil admit: %v", err)
	}
	nilQ.Release("t", 1<<30)
	nilQ.Drain()
	q := New(Config{Enabled: false, Default: Limits{MaxInflightBytes: 1}}, nil)
	for i := 0; i < 10; i++ {
		if err := q.Admit("t", 0, 1<<30); err != nil {
			t.Fatalf("disabled admit: %v", err)
		}
	}
}

func TestMetricsExport(t *testing.T) {
	clk := newFakeClock()
	reg := metrics.New()
	q := New(Config{Enabled: true, Default: Limits{MaxInflightBytes: 1 << 20}, Clock: clk}, reg)
	if err := q.Admit("alpha", 3, 4096); err != nil {
		t.Fatalf("admit: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("qos.alpha.admitted_bytes"); got != 4096 {
		t.Fatalf("admitted_bytes = %d, want 4096", got)
	}
	if got := snap.Gauge("qos.alpha.inflight_bytes"); got != 4096 {
		t.Fatalf("inflight gauge = %d, want 4096", got)
	}
	q.Release("alpha", 4096)
	if got := reg.Snapshot().Gauge("qos.alpha.inflight_bytes"); got != 0 {
		t.Fatalf("inflight gauge after release = %d, want 0", got)
	}
}

// TestAdmitReleaseHammer drives many goroutines across tenants under
// the real clock; run with -race. Accounting must balance exactly.
func TestAdmitReleaseHammer(t *testing.T) {
	q := New(Config{
		Enabled: true,
		Default: Limits{RateBytesPerSec: 64 << 20, BurstBytes: 1 << 20, MaxInflightBytes: 256 << 10},
	}, metrics.New())
	tenants := []string{"a", "b", "c", ""}
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tn := tenants[g%len(tenants)]
			for i := 0; i < 200; i++ {
				n := int64(1024 + (g*37+i*13)%4096)
				if err := q.Admit(tn, uint8(g%4), n); err != nil {
					t.Errorf("admit: %v", err)
					return
				}
				admitted.Add(n)
				q.Release(tn, n)
			}
		}(g)
	}
	wg.Wait()
	var total, inflight int64
	for _, st := range q.Stats() {
		total += st.AdmittedBytes
		inflight += st.InflightBytes
		if st.Waiters != 0 {
			t.Fatalf("leftover waiters: %+v", st)
		}
	}
	if total != admitted.Load() || inflight != 0 {
		t.Fatalf("accounting: admitted %d (want %d), inflight %d (want 0)",
			total, admitted.Load(), inflight)
	}
}
