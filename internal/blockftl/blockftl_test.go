package blockftl

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"eleos/internal/flash"
)

func newFTL(t *testing.T, lbas int) (*FTL, *flash.Device) {
	t.Helper()
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	f, err := New(dev, 4096, lbas, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	return f, dev
}

func blockContent(lba, version int, size int) []byte {
	b := make([]byte, size)
	rng := rand.New(rand.NewSource(int64(lba*7919 + version)))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	f, _ := newFTL(t, 100)
	want := blockContent(5, 1, 4096)
	if err := f.WriteBlock(5, want); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadBlock(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch")
	}
}

func TestStagedBlockReadableBeforeFlush(t *testing.T) {
	// A freshly written block sits in controller RAM until its WBLOCK
	// fills; it must still be readable.
	f, dev := newFTL(t, 100)
	if err := f.WriteBlock(1, blockContent(1, 1, 4096)); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().WBlocksWritten != 0 {
		t.Fatal("single 4KB block should not flush a 16KB wblock yet")
	}
	got, err := f.ReadBlock(1)
	if err != nil || !bytes.Equal(got, blockContent(1, 1, 4096)) {
		t.Fatal("staged block unreadable")
	}
}

func TestShortDataPadded(t *testing.T) {
	f, _ := newFTL(t, 10)
	if err := f.WriteBlock(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4096 || got[0] != 1 || got[3] != 0 {
		t.Fatal("padding wrong")
	}
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	f, _ := newFTL(t, 10)
	for v := 1; v <= 10; v++ {
		if err := f.WriteBlock(3, blockContent(3, v, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := f.ReadBlock(3)
	if err != nil || !bytes.Equal(got, blockContent(3, 10, 4096)) {
		t.Fatal("latest version lost")
	}
}

func TestValidationErrors(t *testing.T) {
	f, _ := newFTL(t, 10)
	if err := f.WriteBlock(-1, nil); !errors.Is(err, ErrBadLBA) {
		t.Fatal("negative LBA accepted")
	}
	if err := f.WriteBlock(10, nil); !errors.Is(err, ErrBadLBA) {
		t.Fatal("out-of-range LBA accepted")
	}
	if err := f.WriteBlock(0, make([]byte, 5000)); !errors.Is(err, ErrBadSize) {
		t.Fatal("oversized data accepted")
	}
	if _, err := f.ReadBlock(5); !errors.Is(err, ErrNotWritten) {
		t.Fatal("unwritten LBA readable")
	}
}

func TestConfigValidation(t *testing.T) {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	if _, err := New(dev, 5000, 10, 0.1); err == nil {
		t.Fatal("non-dividing block size accepted")
	}
	if _, err := New(dev, 4096, 0, 0.1); err == nil {
		t.Fatal("zero LBAs accepted")
	}
	if _, err := New(dev, 4096, 1<<30, 0.1); err == nil {
		t.Fatal("over-capacity LBAs accepted")
	}
}

func TestGCReclaimsUnderChurn(t *testing.T) {
	// Logical space is 25% of physical; churn many overwrites so GC must
	// run, then verify all content.
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	lbas := int(dev.Geometry().CapacityBytes() / 4096 / 4)
	f, err := New(dev, 4096, lbas, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	version := make(map[int]int)
	rng := rand.New(rand.NewSource(2))
	cold := lbas / 4
	for i := 0; i < lbas*8; i++ {
		// Mix hot overwrites with cold singletons so GC victims contain
		// valid blocks that must be moved.
		var lba int
		if i%8 == 0 && cold < lbas {
			lba = cold
			cold++
		} else {
			lba = rng.Intn(lbas / 4)
		}
		version[lba]++
		if err := f.WriteBlock(lba, blockContent(lba, version[lba], 4096)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if f.Stats().Erases == 0 || f.Stats().GCMoves == 0 {
		t.Fatalf("GC inactive: %+v", f.Stats())
	}
	for lba, v := range version {
		got, err := f.ReadBlock(lba)
		if err != nil {
			t.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(got, blockContent(lba, v, 4096)) {
			t.Fatalf("lba %d content wrong after GC", lba)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	f, _ := newFTL(t, 50)
	for i := 0; i < 16; i++ {
		_ = f.WriteBlock(i, blockContent(i, 1, 4096))
	}
	_, _ = f.ReadBlock(0)
	s := f.Stats()
	if s.HostWrites != 16 || s.HostReads != 1 {
		t.Fatalf("stats: %+v", s)
	}
	// 16 blocks round-robin over 4 channels fill one 16KB wblock each.
	if s.WBlocksFlush == 0 {
		t.Fatal("16 blocks should flush wblocks")
	}
}

func TestManyLBAsFullDevice(t *testing.T) {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	lbas := int(dev.Geometry().CapacityBytes() / 4096 / 2)
	f, err := New(dev, 4096, lbas, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential fill then full overwrite; everything must survive.
	for round := 1; round <= 2; round++ {
		for lba := 0; lba < lbas; lba++ {
			if err := f.WriteBlock(lba, blockContent(lba, round, 512)); err != nil {
				t.Fatalf("round %d lba %d: %v", round, lba, err)
			}
		}
	}
	for lba := 0; lba < lbas; lba += 97 {
		got, err := f.ReadBlock(lba)
		if err != nil || !bytes.Equal(got[:512], blockContent(lba, 2, 512)) {
			t.Fatalf("lba %d wrong after full overwrite: %v", lba, err)
		}
	}
}
