// Package blockftl implements "OX-Block": a conventional block-at-a-time
// page-mapped FTL, the paper's baseline interface (§II-B, §IX).
//
// The host reads and writes fixed-size logical blocks (4 KB by default),
// one command per block. Internally the FTL is still log structured — it
// must be, because of NAND's erase-before-write semantics — with a dense
// LBA→physical mapping held in controller DRAM, per-channel write points,
// controller-RAM staging of partial WBLOCKs (a 4 KB block is smaller than
// the 32 KB smallest writable unit), and greedy garbage collection.
//
// This package models the data path and media traffic of a conventional
// SSD; host-visible transport costs (one command and one write context per
// block — the asymmetry the paper measures) are charged by the caller via
// the nvme meter.
package blockftl

import (
	"errors"
	"fmt"
	"sync"

	"eleos/internal/flash"
)

// Errors.
var (
	ErrBadLBA     = errors.New("blockftl: LBA out of range")
	ErrBadSize    = errors.New("blockftl: data exceeds block size")
	ErrNotWritten = errors.New("blockftl: LBA never written")
	ErrDeviceFull = errors.New("blockftl: no free eblocks")
)

// Stats counts FTL activity.
type Stats struct {
	HostWrites   int64 // blocks written by the host
	HostReads    int64
	GCMoves      int64 // blocks relocated by GC
	Erases       int64
	WBlocksFlush int64 // wblocks programmed
}

type slotAddr struct {
	ch, eb, slot int // slot = block index within the eblock
}

var noSlot = slotAddr{-1, -1, -1}

type eblockState struct {
	state int     // 0 free, 1 open, 2 used
	valid int     // live blocks
	lbas  []int32 // per-slot owning LBA (-1 = none); the FTL's in-DRAM OOB
}

const (
	stFree = iota
	stOpen
	stUsed
)

type channelState struct {
	eblocks  []eblockState
	openEB   int // -1 none
	nextSlot int
	staged   []byte // partial wblock staged in controller RAM
	stagedN  int    // blocks staged
}

// FTL is the block-interface translation layer. Safe for concurrent use.
type FTL struct {
	mu         sync.Mutex
	dev        *flash.Device
	geo        flash.Geometry
	blockBytes int
	blocksPerW int
	blocksPerE int

	mapping  []slotAddr
	chans    []channelState
	rotate   int
	gcThresh float64 // free fraction below which GC runs

	stats Stats
}

// New creates a block FTL over the device exposing `lbas` logical blocks of
// blockBytes each. gcFreeFraction triggers greedy GC (e.g. 0.1).
func New(dev *flash.Device, blockBytes, lbas int, gcFreeFraction float64) (*FTL, error) {
	geo := dev.Geometry()
	if blockBytes <= 0 || geo.WBlockBytes%blockBytes != 0 {
		return nil, fmt.Errorf("blockftl: block size %d must divide wblock size %d", blockBytes, geo.WBlockBytes)
	}
	if lbas <= 0 {
		return nil, errors.New("blockftl: need at least one LBA")
	}
	logical := int64(lbas) * int64(blockBytes)
	if logical > geo.CapacityBytes() {
		return nil, fmt.Errorf("blockftl: %d LBAs exceed device capacity", lbas)
	}
	f := &FTL{
		dev:        dev,
		geo:        geo,
		blockBytes: blockBytes,
		blocksPerW: geo.WBlockBytes / blockBytes,
		blocksPerE: geo.EBlockBytes / blockBytes,
		mapping:    make([]slotAddr, lbas),
		chans:      make([]channelState, geo.Channels),
		gcThresh:   gcFreeFraction,
	}
	for i := range f.mapping {
		f.mapping[i] = noSlot
	}
	for ch := range f.chans {
		f.chans[ch].eblocks = make([]eblockState, geo.EBlocksPerChannel)
		f.chans[ch].openEB = -1
		f.chans[ch].staged = make([]byte, geo.WBlockBytes)
	}
	return f, nil
}

// BlockBytes returns the logical block size.
func (f *FTL) BlockBytes() int { return f.blockBytes }

// LBAs returns the logical capacity in blocks.
func (f *FTL) LBAs() int { return len(f.mapping) }

// Stats returns a snapshot of the counters.
func (f *FTL) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// WriteBlock writes one logical block (block-at-a-time interface). Short
// data is zero-padded to the block size.
func (f *FTL) WriteBlock(lba int, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if lba < 0 || lba >= len(f.mapping) {
		return fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	if len(data) > f.blockBytes {
		return fmt.Errorf("%w: %d > %d", ErrBadSize, len(data), f.blockBytes)
	}
	if err := f.writeInternalLocked(lba, data); err != nil {
		return err
	}
	f.stats.HostWrites++
	f.maybeGCLocked()
	return nil
}

func (f *FTL) writeInternalLocked(lba int, data []byte) error {
	ch := f.rotate
	f.rotate = (f.rotate + 1) % f.geo.Channels
	// Find a channel with space, starting at the rotation point.
	for i := 0; i < f.geo.Channels; i++ {
		if f.ensureOpenLocked((ch+i)%f.geo.Channels) == nil {
			ch = (ch + i) % f.geo.Channels
			break
		}
		if i == f.geo.Channels-1 {
			return ErrDeviceFull
		}
	}
	cs := &f.chans[ch]
	eb := cs.openEB
	slot := cs.nextSlot
	// Stage into the partial wblock buffer.
	off := (slot % f.blocksPerW) * f.blockBytes
	copy(cs.staged[off:off+f.blockBytes], data)
	for i := len(data); i < f.blockBytes; i++ {
		cs.staged[off+i] = 0
	}
	cs.stagedN++
	// Invalidate the previous version.
	if old := f.mapping[lba]; old != noSlot {
		es := &f.chans[old.ch].eblocks[old.eb]
		es.valid--
		es.lbas[old.slot] = -1
	}
	f.mapping[lba] = slotAddr{ch, eb, slot}
	es := &f.chans[ch].eblocks[eb]
	es.valid++
	es.lbas[slot] = int32(lba)
	cs.nextSlot++
	// Program when the wblock fills.
	if cs.stagedN == f.blocksPerW {
		wb := (slot / f.blocksPerW)
		if err := f.dev.Program(ch, eb, wb, cs.staged); err != nil {
			return err
		}
		f.stats.WBlocksFlush++
		cs.stagedN = 0
	}
	// Retire the eblock when full.
	if cs.nextSlot == f.blocksPerE {
		es.state = stUsed
		cs.openEB = -1
		cs.nextSlot = 0
	}
	return nil
}

func (f *FTL) ensureOpenLocked(ch int) error {
	cs := &f.chans[ch]
	if cs.openEB >= 0 {
		return nil
	}
	for eb := range cs.eblocks {
		if cs.eblocks[eb].state == stFree {
			cs.eblocks[eb] = eblockState{state: stOpen, lbas: newLBAs(f.blocksPerE)}
			cs.openEB = eb
			cs.nextSlot = 0
			cs.stagedN = 0
			return nil
		}
	}
	return ErrDeviceFull
}

func newLBAs(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// WriteRange writes len(data)/BlockBytes consecutive logical blocks
// starting at lba with a single host command (the transport still splits
// it into packets). The FTL remaps each block individually, exactly as for
// single-block writes.
func (f *FTL) WriteRange(lba int, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(data) == 0 || len(data)%f.blockBytes != 0 {
		return fmt.Errorf("%w: range length %d", ErrBadSize, len(data))
	}
	n := len(data) / f.blockBytes
	if lba < 0 || lba+n > len(f.mapping) {
		return fmt.Errorf("%w: range [%d,%d)", ErrBadLBA, lba, lba+n)
	}
	for i := 0; i < n; i++ {
		if err := f.writeInternalLocked(lba+i, data[i*f.blockBytes:(i+1)*f.blockBytes]); err != nil {
			return err
		}
		f.stats.HostWrites++
	}
	f.maybeGCLocked()
	return nil
}

// ReadBlock returns one logical block.
func (f *FTL) ReadBlock(lba int) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if lba < 0 || lba >= len(f.mapping) {
		return nil, fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	a := f.mapping[lba]
	if a == noSlot {
		return nil, fmt.Errorf("%w: %d", ErrNotWritten, lba)
	}
	f.stats.HostReads++
	return f.readSlotLocked(a)
}

func (f *FTL) readSlotLocked(a slotAddr) ([]byte, error) {
	cs := &f.chans[a.ch]
	// Blocks still staged in controller RAM are served from there.
	if a.eb == cs.openEB {
		wb := a.slot / f.blocksPerW
		stagedWB := cs.nextSlot / f.blocksPerW
		if wb == stagedWB && cs.stagedN > 0 {
			off := (a.slot % f.blocksPerW) * f.blockBytes
			out := make([]byte, f.blockBytes)
			copy(out, cs.staged[off:off+f.blockBytes])
			return out, nil
		}
	}
	off := a.slot * f.blockBytes
	data, _, err := f.dev.ReadExtent(a.ch, a.eb, off, f.blockBytes)
	return data, err
}

// FreeFraction returns the fraction of a channel's eblocks that are free.
func (f *FTL) FreeFraction(ch int) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.freeFractionLocked(ch)
}

func (f *FTL) freeFractionLocked(ch int) float64 {
	n := 0
	for eb := range f.chans[ch].eblocks {
		if f.chans[ch].eblocks[eb].state == stFree {
			n++
		}
	}
	return float64(n) / float64(f.geo.EBlocksPerChannel)
}

func (f *FTL) maybeGCLocked() {
	for ch := 0; ch < f.geo.Channels; ch++ {
		for f.freeFractionLocked(ch) < f.gcThresh {
			if !f.gcOnceLocked(ch) {
				break
			}
		}
	}
}

// GCNow forces one GC round on a channel (benchmarks).
func (f *FTL) GCNow(ch int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gcOnceLocked(ch)
}

// gcOnceLocked collects the used eblock with the fewest valid blocks
// (greedy). Returns false if nothing was collectable.
func (f *FTL) gcOnceLocked(ch int) bool {
	cs := &f.chans[ch]
	victim, victimValid := -1, 1<<31
	for eb := range cs.eblocks {
		es := &cs.eblocks[eb]
		if es.state == stUsed && es.valid < victimValid {
			victim, victimValid = eb, es.valid
		}
	}
	if victim < 0 {
		return false
	}
	es := &cs.eblocks[victim]
	// Move valid blocks through the normal write path.
	for slot, lba := range es.lbas {
		if lba < 0 {
			continue
		}
		if f.mapping[lba] != (slotAddr{ch, victim, slot}) {
			continue
		}
		data, err := f.readSlotLocked(slotAddr{ch, victim, slot})
		if err != nil {
			return false
		}
		if err := f.writeInternalLocked(int(lba), data); err != nil {
			return false
		}
		f.stats.GCMoves++
	}
	if err := f.dev.Erase(ch, victim); err != nil {
		return false
	}
	cs.eblocks[victim] = eblockState{state: stFree}
	f.stats.Erases++
	return true
}
