package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"eleos/internal/addr"
	"eleos/internal/flash"
	"eleos/internal/provision"
	"eleos/internal/record"
	"eleos/internal/summary"
	"eleos/internal/trace"
	"eleos/internal/wal"
)

// Checkpoint performs a fuzzy checkpoint (§VIII-B): it force-closes
// long-open EBLOCKs, determines the log truncation LSN, flushes dirty
// mapping / small / summary pages and a full session-table snapshot with a
// checkpoint system action, and finally persists a checkpoint record to
// the reserved well-known area.
func (c *Controller) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return c.checkpointLocked()
}

func (c *Controller) maybeCheckpointLocked() {
	if c.cfg.AutoCheckpointLogBytes > 0 && c.logBytes >= c.cfg.AutoCheckpointLogBytes {
		_ = c.checkpointLocked()
	}
}

func (c *Controller) checkpointLocked() error {
	if c.inCheckpoint {
		return nil
	}
	c.inCheckpoint = true
	defer func() { c.inCheckpoint = false }()
	var t0 time.Time
	if c.met.on || c.trc.Enabled() {
		t0 = time.Now()
	}
	// Force-close EBLOCKs open since before the previous checkpoint so the
	// truncation LSN can advance (GC buckets can stay open a long time).
	for _, ref := range c.st.OpenEBlocks() {
		if ref.Stream == record.StreamLog {
			continue
		}
		if ref.OpenLSN != 0 && ref.OpenLSN < c.lastCkptLSN {
			if c.inflight[[2]int{ref.Channel, ref.EBlock}] > 0 {
				// A concurrent action has programs queued at this EBLOCK's
				// tail; a direct metadata program would violate the NAND
				// sequential-write order. Leave it for the next checkpoint.
				continue
			}
			if err := c.forceCloseLocked(ref); err != nil {
				return err
			}
		}
	}

	// Truncation LSN = min(active actions, dirty table pages, open
	// EBLOCKs) (§VIII-B). Computed before the flush: conservative.
	trunc := c.log.NextLSN()
	consider := func(l record.LSN) {
		if l != 0 && l < trunc {
			trunc = l
		}
	}
	for _, l := range c.active {
		consider(l)
	}
	consider(c.mt.MinRecLSN())
	consider(c.st.MinRecLSN())
	consider(c.st.MinOpenLSN())
	if trunc < c.lastTruncLSN {
		trunc = c.lastTruncLSN
	}

	if err := c.flushTablesLocked(); err != nil {
		return err
	}
	if err := c.crashIf("ckpt.after-flush"); err != nil {
		return err
	}

	// Assemble and persist the checkpoint record.
	ck := ckptRecord{
		Seq:        c.ckptSeq + 1,
		TruncLSN:   trunc,
		Tiny:       c.mt.TinyTable(),
		Locator:    c.st.Locator(),
		SessAddr:   c.sessSnapAddr,
		UpdateSeq:  c.updateSeq,
		NextAction: c.nextAction,
	}
	if s, first, ok := c.log.PageFor(trunc); ok {
		ck.StartSlots = []wal.Slot{s}
		ck.StartLSN = first
	} else if s, first, ok := c.log.LastPage(); ok {
		ck.StartSlots = []wal.Slot{s}
		ck.StartLSN = first
	} else {
		cands, err := c.log.StartCandidates()
		if err != nil {
			return err
		}
		ck.StartSlots = cands
		ck.StartLSN = c.log.NextLSN()
	}
	if err := c.writeCkptRecordLocked(&ck); err != nil {
		return err
	}
	c.ckptSeq = ck.Seq
	c.lastTruncLSN = trunc
	c.lastCkptLSN = c.log.NextLSN()
	c.log.Truncate(trunc)
	c.logBytes = 0
	c.stats.Checkpoints++
	if c.met.on {
		c.met.checkpoints.Inc()
		c.met.checkpointNS.ObserveDuration(time.Since(t0))
	}
	c.trc.Span(trace.KCheckpoint, 0, 0, 0, t0, int64(ck.Seq), 0)
	return nil
}

// forceCloseLocked closes a long-open EBLOCK by flushing its metadata to
// its next WBLOCKs directly (no provisioning needed — the space is the
// EBLOCK's own tail).
func (c *Controller) forceCloseLocked(ref summary.OpenRef) error {
	d, err := c.st.Desc(ref.Channel, ref.EBlock)
	if err != nil {
		return err
	}
	meta := c.st.Meta(ref.Channel, ref.EBlock)
	img := summary.EncodeMetaBlock(meta)
	w := c.geo.WBlockBytes
	metaWB := (len(img) + w - 1) / w
	if int(d.DataWBlocks)+metaWB > c.geo.WBlocksPerEBlock() {
		return fmt.Errorf("core: no room to close eblock (%d,%d)", ref.Channel, ref.EBlock)
	}
	for k := 0; k < metaWB; k++ {
		lo := k * w
		hi := lo + w
		if hi > len(img) {
			hi = len(img)
		}
		if err := c.dev.ProgramSrc(c.attributeSrc(flash.SrcCheckpoint), ref.Channel, ref.EBlock, int(d.DataWBlocks)+k, img[lo:hi]); err != nil {
			// Treat like any write failure: migrate the EBLOCK away.
			c.migrateFailedLocked([][2]int{{ref.Channel, ref.EBlock}}, 0)
			return nil
		}
		c.stats.IOCommands++
	}
	ts := c.clock()
	if ref.Stream == record.StreamGC {
		ts = d.Timestamp
	}
	lsn := c.lsnHint()
	dbg("forceClose (%d,%d) stream=%v openLSN=%d lastCkptLSN=%d", ref.Channel, ref.EBlock, ref.Stream, ref.OpenLSN, c.lastCkptLSN)
	if err := c.st.CloseEBlock(ref.Channel, ref.EBlock, ts, metaWB, lsn); err != nil {
		return err
	}
	tail := (c.geo.WBlocksPerEBlock() - int(d.DataWBlocks) - metaWB) * w
	if tail > 0 {
		if err := c.st.AddAvail(ref.Channel, ref.EBlock, tail, lsn); err != nil {
			return err
		}
	}
	if _, err := c.append(record.CloseEBlock{
		Channel: uint32(ref.Channel), EBlock: uint32(ref.EBlock),
		Timestamp: ts, DataWBlocks: d.DataWBlocks, MetaWBlocks: uint32(metaWB),
	}); err != nil {
		return err
	}
	c.prov.DropOpen(ref.Channel, ref.EBlock)
	return nil
}

// flushTablesLocked writes dirty mapping pages, dirty small-table pages,
// dirty summary pages, and a full session snapshot as one checkpoint
// system action, one WBLOCK at a time via the ordinary write path.
func (c *Controller) flushTablesLocked() error {
	mapDirty := c.mt.DirtyPages()
	smallDirty := c.mt.DirtySmallPages()
	sessImg := c.sess.Serialize()

	// Mapping and small-table and session images are stable now; summary
	// images must be serialized after provisioning (provisioning mutates
	// the summary table), so only their sizes are fixed here.
	type flushPage struct {
		lpid addr.LPID
		ty   addr.PageType
		idx  int
		img  []byte // nil for summary pages until post-provisioning
	}
	var fps []flushPage
	for _, idx := range mapDirty {
		img, err := c.mt.SerializePage(idx)
		if err != nil {
			return err
		}
		fps = append(fps, flushPage{lpid: addr.MakeTableLPID(addr.PageMap, uint64(idx)), ty: addr.PageMap, idx: idx, img: img})
	}
	for _, sp := range smallDirty {
		fps = append(fps, flushPage{lpid: addr.MakeTableLPID(addr.PageSmallMap, uint64(sp)), ty: addr.PageSmallMap, idx: sp, img: c.mt.SerializeSmallPage(sp)})
	}
	sumDirty := c.st.DirtyPages()
	sumSize := len(c.st.SerializePage(0, 0))
	for _, idx := range sumDirty {
		fps = append(fps, flushPage{lpid: addr.MakeTableLPID(addr.PageSummary, uint64(idx)), ty: addr.PageSummary, idx: idx, img: nil})
	}
	fps = append(fps, flushPage{lpid: addr.MakeTableLPID(addr.PageSession, 0), ty: addr.PageSession, idx: 0, img: sessImg})

	// Provision the whole flush as one batch.
	bps := make([]provision.BatchPage, len(fps))
	off := 0
	for i, fp := range fps {
		n := sumSize
		if fp.img != nil {
			n = len(fp.img)
		}
		bps[i] = provision.BatchPage{LPID: fp.lpid, Type: fp.ty, Length: n, BufOff: off}
		off += n
	}
	hint := c.lsnHint()
	plan, err := c.prov.ProvisionBatch(bps, c.clock, hint)
	if errors.Is(err, provision.ErrNoSpace) {
		c.gcAllLocked()
		plan, err = c.prov.ProvisionBatch(bps, c.clock, hint)
	}
	if err != nil {
		return err
	}
	id := c.nextAction
	c.nextAction++
	c.active[id] = hint
	lsns, err := c.logPlanLocked(id, plan, nil)
	if err != nil {
		delete(c.active, id)
		return err
	}

	// Serialize summary pages now, embedding each page's own update-record
	// LSN as its flush LSN (§VIII-C3), then assemble the buffer.
	buf := make([]byte, off)
	lsnByLPID := make(map[addr.LPID]record.LSN, len(plan.Pages))
	for i, pg := range plan.Pages {
		lsnByLPID[pg.LPID] = lsns[i]
	}
	for i, fp := range fps {
		img := fp.img
		if fp.ty == addr.PageSummary {
			img = c.st.SerializePage(fp.idx, lsnByLPID[fp.lpid])
		}
		copy(buf[bps[i].BufOff:], img)
	}

	failed := c.executeIOsLocked(buf, plan, flash.SrcCheckpoint)
	if len(failed) > 0 {
		c.abortActionLocked(id, plan)
		c.migrateFailedLocked(failed, 0)
		return fmt.Errorf("%w: checkpoint action %d", ErrWriteFailed, id)
	}
	// Commit-phase failures abort the action: the old table-page homes are
	// still authoritative (nothing was installed), and leaving the action
	// in c.active would pin the truncation LSN forever.
	if err := c.logClosesLocked(plan); err != nil {
		c.abortActionLocked(id, plan)
		return err
	}
	if _, err := c.append(record.Commit{Action: id, AKind: record.ActionCheckpoint}); err != nil {
		c.abortActionLocked(id, plan)
		return err
	}
	if err := c.forceLog(); err != nil {
		c.abortActionLocked(id, plan)
		return err
	}

	// Install: record new table-page homes; old homes become garbage.
	var garbage []record.AddrPair
	for i, pg := range plan.Pages {
		fp := fps[i]
		var old addr.PhysAddr
		switch fp.ty {
		case addr.PageMap:
			old = c.mt.PageAddr(fp.idx)
			c.mt.MarkFlushed(fp.idx, pg.Addr, lsns[i])
		case addr.PageSmallMap:
			old = c.mt.SmallPageAddr(fp.idx)
			c.mt.MarkSmallFlushed(fp.idx, pg.Addr)
		case addr.PageSummary:
			old = c.st.Locator()[fp.idx]
			c.st.MarkFlushed(fp.idx, pg.Addr, lsns[i])
		case addr.PageSession:
			old = c.sessSnapAddr
			c.sessSnapAddr = pg.Addr
		}
		if old.IsValid() {
			garbage = append(garbage, record.AddrPair{LPID: pg.LPID, Addr: old})
			if err := c.st.AddAvail(old.Channel(), old.EBlock(), old.Length(), lsns[i]); err != nil {
				return err
			}
		}
	}
	if err := c.lazyGarbageLocked(id, garbage); err != nil {
		return err
	}
	delete(c.active, id)
	return nil
}

// --- checkpoint record -------------------------------------------------------

// ckptRecord is the state persisted at the well-known location.
type ckptRecord struct {
	Seq        uint64
	TruncLSN   record.LSN
	StartSlots []wal.Slot // where replay probes for the first log page
	StartLSN   record.LSN // expected first LSN at the start page
	Tiny       []addr.PhysAddr
	Locator    []addr.PhysAddr
	SessAddr   addr.PhysAddr
	UpdateSeq  uint64
	NextAction uint64
}

const (
	ckptMagic     = 0x434B5054 // "CKPT"
	ckptPartMagic = 0x434B5050 // "CKPP"
)

func encodeCkpt(ck *ckptRecord) []byte {
	var b []byte
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u32(ckptMagic)
	u64(ck.Seq)
	u64(uint64(ck.TruncLSN))
	u64(uint64(ck.StartLSN))
	u32(uint32(len(ck.StartSlots)))
	for _, s := range ck.StartSlots {
		u32(uint32(int32(s.Channel)))
		u32(uint32(int32(s.EBlock)))
		u32(uint32(int32(s.WBlock)))
	}
	u32(uint32(len(ck.Tiny)))
	for _, a := range ck.Tiny {
		u64(uint64(a))
	}
	u32(uint32(len(ck.Locator)))
	for _, a := range ck.Locator {
		u64(uint64(a))
	}
	u64(uint64(ck.SessAddr))
	u64(ck.UpdateSeq)
	u64(ck.NextAction)
	crc := crc32.ChecksumIEEE(b)
	b = binary.LittleEndian.AppendUint32(b, crc)
	return b
}

var errBadCkpt = errors.New("core: bad checkpoint record")

func decodeCkpt(b []byte) (*ckptRecord, error) {
	if len(b) < 8 {
		return nil, errBadCkpt
	}
	if crc32.ChecksumIEEE(b[:len(b)-4]) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return nil, errBadCkpt
	}
	pos := 0
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(b[pos:]); pos += 8; return v }
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(b[pos:]); pos += 4; return v }
	if u32() != ckptMagic {
		return nil, errBadCkpt
	}
	ck := &ckptRecord{}
	ck.Seq = u64()
	ck.TruncLSN = record.LSN(u64())
	ck.StartLSN = record.LSN(u64())
	n := int(u32())
	for i := 0; i < n; i++ {
		ck.StartSlots = append(ck.StartSlots, wal.Slot{
			Channel: int(int32(u32())), EBlock: int(int32(u32())), WBlock: int(int32(u32())),
		})
	}
	n = int(u32())
	for i := 0; i < n; i++ {
		ck.Tiny = append(ck.Tiny, addr.PhysAddr(u64()))
	}
	n = int(u32())
	for i := 0; i < n; i++ {
		ck.Locator = append(ck.Locator, addr.PhysAddr(u64()))
	}
	ck.SessAddr = addr.PhysAddr(u64())
	ck.UpdateSeq = u64()
	ck.NextAction = u64()
	return ck, nil
}

// part header: magic u32 | seq u64 | part u16 | totalParts u16 |
// payloadLen u32 | crc u32 (over header sans crc + payload).
const ckptPartHeader = 4 + 8 + 2 + 2 + 4 + 4

func (c *Controller) encodeCkptParts(ck *ckptRecord) [][]byte {
	body := encodeCkpt(ck)
	w := c.geo.WBlockBytes
	per := w - ckptPartHeader
	total := (len(body) + per - 1) / per
	parts := make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		lo := i * per
		hi := lo + per
		if hi > len(body) {
			hi = len(body)
		}
		payload := body[lo:hi]
		hdr := make([]byte, ckptPartHeader-4)
		binary.LittleEndian.PutUint32(hdr[0:], ckptPartMagic)
		binary.LittleEndian.PutUint64(hdr[4:], ck.Seq)
		binary.LittleEndian.PutUint16(hdr[12:], uint16(i))
		binary.LittleEndian.PutUint16(hdr[14:], uint16(total))
		binary.LittleEndian.PutUint32(hdr[16:], uint32(len(payload)))
		crc := crc32.ChecksumIEEE(hdr)
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		part := make([]byte, 0, ckptPartHeader+len(payload))
		part = append(part, hdr...)
		part = binary.LittleEndian.AppendUint32(part, crc)
		part = append(part, payload...)
		parts = append(parts, part)
	}
	return parts
}

type ckptPart struct {
	seq     uint64
	part    int
	total   int
	payload []byte
}

func decodeCkptPart(raw []byte) (*ckptPart, error) {
	if len(raw) < ckptPartHeader {
		return nil, errBadCkpt
	}
	if binary.LittleEndian.Uint32(raw[0:]) != ckptPartMagic {
		return nil, errBadCkpt
	}
	seq := binary.LittleEndian.Uint64(raw[4:])
	part := int(binary.LittleEndian.Uint16(raw[12:]))
	total := int(binary.LittleEndian.Uint16(raw[14:]))
	plen := int(binary.LittleEndian.Uint32(raw[16:]))
	if plen < 0 || ckptPartHeader+plen > len(raw) || total == 0 || part >= total {
		return nil, errBadCkpt
	}
	payload := raw[ckptPartHeader : ckptPartHeader+plen]
	crc := crc32.ChecksumIEEE(raw[:16+4])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if binary.LittleEndian.Uint32(raw[20:]) != crc {
		return nil, errBadCkpt
	}
	return &ckptPart{seq: seq, part: part, total: total, payload: payload}, nil
}

// writeCkptRecordLocked writes the record's parts into the checkpoint
// area, switching (and erasing) the other area EBLOCK when the current one
// is full. The previous complete record always survives until the new one
// is fully durable. A program failure in the current EBLOCK (which
// disables its remaining WBLOCKs) fails over to the other EBLOCK once.
func (c *Controller) writeCkptRecordLocked(ck *ckptRecord) error {
	parts := c.encodeCkptParts(ck)
	if len(parts) > c.geo.WBlocksPerEBlock() {
		return fmt.Errorf("core: checkpoint record too large (%d parts)", len(parts))
	}
	switchArea := func() error {
		other := ckptEBlockA
		if c.ckptEB == ckptEBlockA {
			other = ckptEBlockB
		}
		if err := c.dev.Erase(ckptChannel, other); err != nil {
			return err
		}
		c.ckptEB, c.ckptWB = other, 0
		return nil
	}
	if c.ckptWB+len(parts) > c.geo.WBlocksPerEBlock() {
		if err := switchArea(); err != nil {
			return err
		}
	}
	for attempt := 0; attempt < 2; attempt++ {
		err := func() error {
			for i, part := range parts {
				if err := c.dev.ProgramSrc(c.attributeSrc(flash.SrcCheckpoint), ckptChannel, c.ckptEB, c.ckptWB+i, part); err != nil {
					return err
				}
				c.stats.IOCommands++
			}
			return nil
		}()
		if err == nil {
			c.ckptWB += len(parts)
			return nil
		}
		if attempt == 0 {
			// A torn partial record in the old EBLOCK is harmless: the
			// recovery scan only accepts complete part sets.
			if serr := switchArea(); serr != nil {
				return serr
			}
			continue
		}
		return fmt.Errorf("core: checkpoint area write failed in both eblocks")
	}
	return nil
}
