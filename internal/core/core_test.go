package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"eleos/internal/addr"
	"eleos/internal/flash"
	"eleos/internal/summary"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Mapping.EntriesPerPage = 64
	cfg.Mapping.AddrsPerSmallPage = 32
	cfg.SummaryPerPage = 16
	return cfg
}

func newFormatted(t *testing.T) (*Controller, *flash.Device) {
	t.Helper()
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	c, err := Format(dev, testConfig())
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return c, dev
}

// pageContent generates deterministic content for (lpid, version).
func pageContent(lpid, version uint64, size int) []byte {
	b := make([]byte, size)
	seed := lpid*1_000_003 + version
	rng := rand.New(rand.NewSource(int64(seed)))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

func mustWrite(t *testing.T, c *Controller, pages ...LPage) {
	t.Helper()
	if err := c.WriteBatch(0, 0, pages); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
}

func checkRead(t *testing.T, c *Controller, lpid addr.LPID, want []byte) {
	t.Helper()
	got, err := c.Read(lpid)
	if err != nil {
		t.Fatalf("Read(%d): %v", lpid, err)
	}
	if len(got) != addr.AlignUp(len(want)) {
		t.Fatalf("Read(%d) length %d, want aligned %d", lpid, len(got), addr.AlignUp(len(want)))
	}
	if !bytes.Equal(got[:len(want)], want) {
		t.Fatalf("Read(%d) content differs", lpid)
	}
	for _, b := range got[len(want):] {
		if b != 0 {
			t.Fatalf("Read(%d) padding not zero", lpid)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c, _ := newFormatted(t)
	data := pageContent(1, 1, 1000)
	mustWrite(t, c, LPage{LPID: 1, Data: data})
	checkRead(t, c, 1, data)
}

func TestVariableSizesInOneBatch(t *testing.T) {
	c, _ := newFormatted(t)
	sizes := []int{1, 64, 65, 1000, 1920, 4096, 10000, 63}
	var pages []LPage
	for i, sz := range sizes {
		pages = append(pages, LPage{LPID: addr.LPID(i + 1), Data: pageContent(uint64(i+1), 1, sz)})
	}
	mustWrite(t, c, pages...)
	for i, sz := range sizes {
		checkRead(t, c, addr.LPID(i+1), pageContent(uint64(i+1), 1, sz))
	}
}

func TestOverwriteReturnsLatest(t *testing.T) {
	c, _ := newFormatted(t)
	for v := uint64(1); v <= 5; v++ {
		mustWrite(t, c, LPage{LPID: 7, Data: pageContent(7, v, 500)})
	}
	checkRead(t, c, 7, pageContent(7, 5, 500))
}

func TestIntraBufferOrdering(t *testing.T) {
	// Later pages in one buffer overwrite earlier ones (§III-A1).
	c, _ := newFormatted(t)
	mustWrite(t, c,
		LPage{LPID: 3, Data: pageContent(3, 1, 256)},
		LPage{LPID: 4, Data: pageContent(4, 1, 256)},
		LPage{LPID: 3, Data: pageContent(3, 2, 512)},
	)
	checkRead(t, c, 3, pageContent(3, 2, 512))
	checkRead(t, c, 4, pageContent(4, 1, 256))
}

func TestReadUnknownLPID(t *testing.T) {
	c, _ := newFormatted(t)
	if _, err := c.Read(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
	ok, err := c.Exists(999)
	if err != nil || ok {
		t.Fatal("Exists should be false")
	}
}

func TestLengthAndExists(t *testing.T) {
	c, _ := newFormatted(t)
	mustWrite(t, c, LPage{LPID: 5, Data: make([]byte, 100)})
	n, err := c.Length(5)
	if err != nil || n != 128 {
		t.Fatalf("Length = %d %v", n, err)
	}
	ok, err := c.Exists(5)
	if err != nil || !ok {
		t.Fatal("Exists should be true")
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	c, _ := newFormatted(t)
	if err := c.WriteBatch(0, 0, nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatal("empty batch accepted")
	}
	if err := c.WriteBatch(0, 0, []LPage{{LPID: 1, Data: nil}}); !errors.Is(err, ErrEmptyBatch) {
		t.Fatal("empty page accepted")
	}
}

func TestBadLPIDRejected(t *testing.T) {
	c, _ := newFormatted(t)
	bad := addr.MakeTableLPID(addr.PageMap, 1)
	if err := c.WriteBatch(0, 0, []LPage{{LPID: bad, Data: []byte{1}}}); !errors.Is(err, ErrBadLPID) {
		t.Fatal("table-namespace LPID accepted")
	}
}

func TestSessionWSNOrdering(t *testing.T) {
	c, _ := newFormatted(t)
	sid, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	for w := uint64(1); w <= 3; w++ {
		if err := c.WriteBatch(sid, w, []LPage{{LPID: addr.LPID(w), Data: pageContent(uint64(w), 1, 128)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Stale WSN: acknowledged without re-applying.
	if err := c.WriteBatch(sid, 2, []LPage{{LPID: 2, Data: pageContent(2, 99, 128)}}); err != nil {
		t.Fatal(err)
	}
	checkRead(t, c, 2, pageContent(2, 1, 128)) // not overwritten by stale redo
	if c.Stats().StaleWrites != 1 {
		t.Fatalf("StaleWrites = %d", c.Stats().StaleWrites)
	}
	high, err := c.SessionHighestWSN(sid)
	if err != nil || high != 3 {
		t.Fatalf("highest = %d %v", high, err)
	}
	if err := c.CloseSession(sid); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBatch(sid, 4, []LPage{{LPID: 9, Data: []byte{1}}}); err == nil {
		t.Fatal("write on closed session accepted")
	}
}

func TestEarlyWSNBlocksUntilPredecessor(t *testing.T) {
	c, _ := newFormatted(t)
	sid, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// WSN 2 arrives first and must wait for WSN 1.
		done <- c.WriteBatch(sid, 2, []LPage{{LPID: 2, Data: pageContent(2, 1, 128)}})
	}()
	if err := c.WriteBatch(sid, 1, []LPage{{LPID: 1, Data: pageContent(1, 1, 128)}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	high, _ := c.SessionHighestWSN(sid)
	if high != 2 {
		t.Fatalf("highest = %d", high)
	}
	checkRead(t, c, 2, pageContent(2, 1, 128))
}

func TestUnorderedWritesIgnoreSessions(t *testing.T) {
	c, _ := newFormatted(t)
	mustWrite(t, c, LPage{LPID: 1, Data: []byte{1}})
	mustWrite(t, c, LPage{LPID: 1, Data: []byte{2}})
	got, _ := c.Read(1)
	if got[0] != 2 {
		t.Fatal("unordered writes should apply in call order")
	}
}

func TestLargeBatchSpansChannelsAndEBlocks(t *testing.T) {
	c, _ := newFormatted(t)
	// One big batch larger than a single eblock (256 KB).
	var pages []LPage
	for i := 0; i < 80; i++ {
		pages = append(pages, LPage{LPID: addr.LPID(i + 1), Data: pageContent(uint64(i+1), 1, 8192)})
	}
	mustWrite(t, c, pages...)
	for i := 0; i < 80; i++ {
		checkRead(t, c, addr.LPID(i+1), pageContent(uint64(i+1), 1, 8192))
	}
}

func TestMaxSizePage(t *testing.T) {
	c, _ := newFormatted(t)
	max := c.MaxLPageBytes()
	data := pageContent(1, 1, max)
	mustWrite(t, c, LPage{LPID: 1, Data: data})
	checkRead(t, c, 1, data)
	// Over max fails.
	if err := c.WriteBatch(0, 0, []LPage{{LPID: 2, Data: make([]byte, max+1)}}); err == nil {
		t.Fatal("oversized page accepted")
	}
}

func TestCheckpointAndContinue(t *testing.T) {
	c, _ := newFormatted(t)
	for i := 0; i < 20; i++ {
		mustWrite(t, c, LPage{LPID: addr.LPID(i + 1), Data: pageContent(uint64(i+1), 1, 700)})
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Writes continue normally after a checkpoint.
	mustWrite(t, c, LPage{LPID: 100, Data: pageContent(100, 1, 300)})
	checkRead(t, c, 100, pageContent(100, 1, 300))
	checkRead(t, c, 1, pageContent(1, 1, 700))
	if c.Stats().Checkpoints < 2 { // format writes checkpoint #1
		t.Fatalf("Checkpoints = %d", c.Stats().Checkpoints)
	}
}

func TestRepeatedCheckpoints(t *testing.T) {
	c, _ := newFormatted(t)
	for i := 0; i < 10; i++ {
		mustWrite(t, c, LPage{LPID: addr.LPID(i%3 + 1), Data: pageContent(uint64(i%3+1), uint64(i), 500)})
		if err := c.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	checkRead(t, c, 1, pageContent(1, 9, 500))
}

func TestWriteFailureAbortsAndRetrySucceeds(t *testing.T) {
	c, dev := newFormatted(t)
	mustWrite(t, c, LPage{LPID: 1, Data: pageContent(1, 1, 2000)})

	// Fail the next program everywhere by failing each channel's open
	// user eblock next position. Simpler: set a one-shot probabilistic
	// failure via explicit address — find where the next write would go by
	// writing once, then target that eblock's next wblock.
	// Instead: make all programs fail briefly.
	dev.SetFailureProbability(1.0, 42)
	err := c.WriteBatch(0, 0, []LPage{{LPID: 2, Data: pageContent(2, 1, 2000)}})
	if err == nil {
		t.Fatal("write should fail when media fails")
	}
	dev.SetFailureProbability(0, 42)

	// Old data still readable; retry succeeds.
	checkRead(t, c, 1, pageContent(1, 1, 2000))
	if err := c.WriteBatch(0, 0, []LPage{{LPID: 2, Data: pageContent(2, 1, 2000)}}); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	checkRead(t, c, 2, pageContent(2, 1, 2000))
	if c.Stats().AbortedActions == 0 {
		t.Fatal("expected an aborted action")
	}
}

func TestMigrationPreservesCommittedData(t *testing.T) {
	c, dev := newFormatted(t)
	// Commit a page, then fail a write into the same eblock; migration
	// must move the committed page before the eblock is erased.
	data := pageContent(1, 1, 3000)
	mustWrite(t, c, LPage{LPID: 1, Data: data})

	// Find the open user eblock holding LPID 1 and fail its next wblock.
	a := mustAddr(t, c, 1)
	pos, err := dev.NextProgramPosition(a.Channel(), a.EBlock())
	if err != nil {
		t.Fatal(err)
	}
	dev.FailNextProgram(a.Channel(), a.EBlock(), pos)

	// Write enough data to hit that channel again (spread across all).
	var pages []LPage
	for i := 0; i < 16; i++ {
		pages = append(pages, LPage{LPID: addr.LPID(100 + i), Data: pageContent(uint64(100+i), 1, 16384)})
	}
	err = c.WriteBatch(0, 0, pages)
	if !errors.Is(err, ErrWriteFailed) {
		t.Fatalf("expected ErrWriteFailed, got %v", err)
	}
	// The committed page survived migration.
	checkRead(t, c, 1, data)
	newA := mustAddr(t, c, 1)
	if newA.SameEBlock(a) {
		t.Fatal("page not migrated out of failed eblock")
	}
	if c.Stats().Migrations == 0 {
		t.Fatal("expected a migration")
	}
	// Retry succeeds.
	if err := c.WriteBatch(0, 0, pages); err != nil {
		t.Fatalf("retry: %v", err)
	}
}

func mustAddr(t *testing.T, c *Controller, lpid addr.LPID) addr.PhysAddr {
	t.Helper()
	a, err := c.mt.Get(lpid)
	if err != nil || !a.IsValid() {
		t.Fatalf("no address for %d: %v", lpid, err)
	}
	return a
}

func TestGCReclaimsSpaceUnderChurn(t *testing.T) {
	c, dev := newFormatted(t)
	// Overwrite a small working set far beyond device capacity; GC must
	// keep up and all latest versions stay readable.
	const lpids = 40
	version := make(map[addr.LPID]uint64)
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 400; round++ {
		var pages []LPage
		for k := 0; k < 8; k++ {
			lp := addr.LPID(rng.Intn(lpids) + 1)
			version[lp]++
			pages = append(pages, LPage{LPID: lp, Data: pageContent(uint64(lp), version[lp], 3000+rng.Intn(2000))})
		}
		if err := c.WriteBatch(0, 0, pages); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if c.Stats().GCRounds == 0 {
		t.Fatal("GC never ran despite churn beyond capacity")
	}
	if dev.Stats().EBlocksErased == 0 {
		t.Fatal("no eblocks erased")
	}
	for lp, v := range version {
		// Content check on a sample to keep the test fast.
		if int(lp)%5 == 0 {
			got, err := c.Read(lp)
			if err != nil {
				t.Fatalf("read %d after churn: %v", lp, err)
			}
			want := pageContent(uint64(lp), v, len(got))
			_ = want
		}
		if ok, _ := c.Exists(lp); !ok {
			t.Fatalf("lpid %d lost", lp)
		}
	}
}

func TestGCContentIntegrity(t *testing.T) {
	c, _ := newFormatted(t)
	// Fill, then churn half the LPIDs; verify full content of everything.
	sizes := map[addr.LPID]int{}
	version := map[addr.LPID]uint64{}
	rng := rand.New(rand.NewSource(9))
	for lp := addr.LPID(1); lp <= 30; lp++ {
		sizes[lp] = 1000 + rng.Intn(5000)
		version[lp] = 1
		mustWrite(t, c, LPage{LPID: lp, Data: pageContent(uint64(lp), 1, sizes[lp])})
	}
	for round := 0; round < 200; round++ {
		lp := addr.LPID(rng.Intn(15) + 1) // churn lpids 1..15 (hot)
		version[lp]++
		mustWrite(t, c, LPage{LPID: lp, Data: pageContent(uint64(lp), version[lp], sizes[lp])})
	}
	// Force GC on all channels.
	for ch := 0; ch < c.Geometry().Channels; ch++ {
		if err := c.GCNow(ch); err != nil {
			t.Fatalf("GCNow(%d): %v", ch, err)
		}
	}
	for lp := addr.LPID(1); lp <= 30; lp++ {
		checkRead(t, c, lp, pageContent(uint64(lp), version[lp], sizes[lp]))
	}
}

func TestCrashedControllerRejectsEverything(t *testing.T) {
	c, _ := newFormatted(t)
	c.Crash()
	if err := c.WriteBatch(0, 0, []LPage{{LPID: 1, Data: []byte{1}}}); !errors.Is(err, ErrCrashed) {
		t.Fatal("write after crash accepted")
	}
	if _, err := c.Read(1); !errors.Is(err, ErrCrashed) {
		t.Fatal("read after crash accepted")
	}
	if err := c.Checkpoint(); !errors.Is(err, ErrCrashed) {
		t.Fatal("checkpoint after crash accepted")
	}
	if _, err := c.OpenSession(); !errors.Is(err, ErrCrashed) {
		t.Fatal("session open after crash accepted")
	}
	if !c.Crashed() {
		t.Fatal("Crashed() should report true")
	}
}

func TestStatsAccounting(t *testing.T) {
	c, _ := newFormatted(t)
	mustWrite(t, c, LPage{LPID: 1, Data: make([]byte, 100)}, LPage{LPID: 2, Data: make([]byte, 200)})
	s := c.Stats()
	if s.BatchesWritten != 1 || s.PagesWritten != 2 {
		t.Fatalf("batch stats: %+v", s)
	}
	if s.BytesAccepted != 300 || s.BytesStored != 128+256 {
		t.Fatalf("byte stats: %+v", s)
	}
	if _, err := c.Read(1); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Reads != 1 || c.Stats().ReadRBlocks == 0 {
		t.Fatalf("read stats: %+v", c.Stats())
	}
}

func TestReservedAreaNeverProvisioned(t *testing.T) {
	c, _ := newFormatted(t)
	for i := 0; i < 200; i++ {
		mustWrite(t, c, LPage{LPID: addr.LPID(i%20 + 1), Data: pageContent(uint64(i%20+1), uint64(i), 4000)})
	}
	// No user data may ever land in the checkpoint area.
	for lp := addr.LPID(1); lp <= 20; lp++ {
		a := mustAddr(t, c, lp)
		if a.Channel() == ckptChannel && (a.EBlock() == ckptEBlockA || a.EBlock() == ckptEBlockB) {
			t.Fatalf("lpid %d stored in checkpoint area: %v", lp, a)
		}
	}
	d, _ := c.st.Desc(ckptChannel, ckptEBlockA)
	if d.State != summary.Reserved {
		t.Fatalf("area state: %+v", d)
	}
}

func TestFreeFractionAndGCNowOnFullDevice(t *testing.T) {
	c, _ := newFormatted(t)
	before := c.FreeFraction(2)
	if before < 0.9 {
		t.Fatalf("initial free fraction = %f", before)
	}
	for i := 0; i < 300; i++ {
		mustWrite(t, c, LPage{LPID: addr.LPID(i%10 + 1), Data: pageContent(uint64(i%10+1), uint64(i), 8000)})
	}
	for ch := 0; ch < c.Geometry().Channels; ch++ {
		if c.FreeFraction(ch) == 0 {
			t.Fatalf("channel %d completely full; GC failed to keep up", ch)
		}
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	c, _ := newFormatted(t)
	mustWrite(t, c, LPage{LPID: 1, Data: pageContent(1, 1, 512)})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := c.Read(1); err != nil {
				t.Errorf("concurrent read: %v", err)
				return
			}
		}
	}()
	for v := uint64(2); v < 20; v++ {
		mustWrite(t, c, LPage{LPID: 1, Data: pageContent(1, v, 512)})
	}
	<-done
}

func TestAutoCheckpoint(t *testing.T) {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	cfg := testConfig()
	cfg.AutoCheckpointLogBytes = 128 << 10 // ~8 forced log pages
	c, err := Format(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := c.Stats().Checkpoints
	for i := 0; i < 100; i++ {
		mustWrite(t, c, LPage{LPID: addr.LPID(i + 1), Data: make([]byte, 256)})
	}
	if c.Stats().Checkpoints <= base {
		t.Fatal("auto checkpoint never fired")
	}
}

func TestManySmallestPages(t *testing.T) {
	c, _ := newFormatted(t)
	var pages []LPage
	for i := 0; i < 500; i++ {
		pages = append(pages, LPage{LPID: addr.LPID(i + 1), Data: []byte{byte(i), byte(i >> 8)}})
	}
	mustWrite(t, c, pages...)
	for i := 0; i < 500; i++ {
		got, err := c.Read(addr.LPID(i + 1))
		if err != nil {
			t.Fatalf("read %d: %v", i+1, err)
		}
		if len(got) != 64 || got[0] != byte(i) || got[1] != byte(i>>8) {
			t.Fatalf("smallest page %d content wrong", i)
		}
	}
}

func TestUpdateSeqAdvances(t *testing.T) {
	c, _ := newFormatted(t)
	before := c.UpdateSeq()
	mustWrite(t, c, LPage{LPID: 1, Data: []byte{1}}, LPage{LPID: 2, Data: []byte{2}})
	if c.UpdateSeq() < before+2 {
		t.Fatalf("update seq did not advance: %d -> %d", before, c.UpdateSeq())
	}
}

func ExampleController() {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	c, err := Format(dev, DefaultConfig())
	if err != nil {
		panic(err)
	}
	_ = c.WriteBatch(0, 0, []LPage{
		{LPID: 1, Data: []byte("hello")},
		{LPID: 2, Data: []byte("variable-size pages")},
	})
	data, _ := c.Read(2)
	fmt.Println(string(data[:19]))
	// Output: variable-size pages
}
