package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"eleos/internal/addr"
	"eleos/internal/flash"
)

func reopen(t *testing.T, dev *flash.Device) *Controller {
	t.Helper()
	c, err := Open(dev, testConfig())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c
}

func TestRecoverFreshFormat(t *testing.T) {
	_, dev := newFormatted(t)
	c2 := reopen(t, dev)
	// Fresh device recovers to an empty, writable state.
	mustWrite(t, c2, LPage{LPID: 1, Data: pageContent(1, 1, 512)})
	checkRead(t, c2, 1, pageContent(1, 1, 512))
}

func TestRecoverUncheckpointedWrites(t *testing.T) {
	c, dev := newFormatted(t)
	for i := 1; i <= 25; i++ {
		mustWrite(t, c, LPage{LPID: addr.LPID(i), Data: pageContent(uint64(i), 1, 100*i)})
	}
	c.Crash()
	c2 := reopen(t, dev)
	for i := 1; i <= 25; i++ {
		checkRead(t, c2, addr.LPID(i), pageContent(uint64(i), 1, 100*i))
	}
}

func TestRecoverAfterCheckpoint(t *testing.T) {
	c, dev := newFormatted(t)
	for i := 1; i <= 10; i++ {
		mustWrite(t, c, LPage{LPID: addr.LPID(i), Data: pageContent(uint64(i), 1, 777)})
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 20; i++ {
		mustWrite(t, c, LPage{LPID: addr.LPID(i), Data: pageContent(uint64(i), 1, 777)})
	}
	// Overwrite some checkpointed pages post-checkpoint.
	mustWrite(t, c, LPage{LPID: 3, Data: pageContent(3, 2, 900)})
	c.Crash()
	c2 := reopen(t, dev)
	for i := 1; i <= 20; i++ {
		if i == 3 {
			continue
		}
		checkRead(t, c2, addr.LPID(i), pageContent(uint64(i), 1, 777))
	}
	checkRead(t, c2, 3, pageContent(3, 2, 900))
}

func TestRecoveryAtomicity(t *testing.T) {
	// Crash points before the commit record is durable must erase every
	// trace of the buffer; crash points after must preserve all of it.
	beforeCommit := []string{"write.after-init", "write.after-exec", "commit.before-force"}
	afterCommit := []string{"commit.after-force"}

	for _, point := range append(append([]string{}, beforeCommit...), afterCommit...) {
		t.Run(point, func(t *testing.T) {
			c, dev := newFormatted(t)
			mustWrite(t, c, LPage{LPID: 1, Data: pageContent(1, 1, 500)})
			c.SetCrashPoint(point)
			err := c.WriteBatch(0, 0, []LPage{
				{LPID: 1, Data: pageContent(1, 2, 600)},
				{LPID: 2, Data: pageContent(2, 1, 400)},
			})
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("expected crash, got %v", err)
			}
			c2 := reopen(t, dev)
			committed := false
			for _, p := range afterCommit {
				if p == point {
					committed = true
				}
			}
			if committed {
				checkRead(t, c2, 1, pageContent(1, 2, 600))
				checkRead(t, c2, 2, pageContent(2, 1, 400))
			} else {
				// All-or-nothing: the old version of 1 must survive and 2
				// must not exist.
				checkRead(t, c2, 1, pageContent(1, 1, 500))
				if ok, _ := c2.Exists(2); ok {
					t.Fatal("uncommitted page visible after recovery")
				}
			}
			// The recovered controller accepts new writes.
			mustWrite(t, c2, LPage{LPID: 50, Data: pageContent(50, 1, 256)})
			checkRead(t, c2, 50, pageContent(50, 1, 256))
		})
	}
}

func TestRecoverySessions(t *testing.T) {
	c, dev := newFormatted(t)
	sid, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	for w := uint64(1); w <= 4; w++ {
		if err := c.WriteBatch(sid, w, []LPage{{LPID: addr.LPID(w), Data: pageContent(w, w, 200)}}); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash()
	c2 := reopen(t, dev)
	// The session survives with its WSN high-water mark: a host redo of an
	// already-applied WSN is acknowledged but not re-applied (§III-A2).
	if err := c2.WriteBatch(sid, 3, []LPage{{LPID: 3, Data: pageContent(3, 99, 200)}}); err != nil {
		t.Fatalf("stale redo after recovery: %v", err)
	}
	checkRead(t, c2, 3, pageContent(3, 3, 200))
	// The next WSN continues the sequence.
	if err := c2.WriteBatch(sid, 5, []LPage{{LPID: 5, Data: pageContent(5, 5, 200)}}); err != nil {
		t.Fatal(err)
	}
	high, err := c2.SessionHighestWSN(sid)
	if err != nil || high != 5 {
		t.Fatalf("highest = %d %v", high, err)
	}
}

func TestRecoveryAfterGCActivity(t *testing.T) {
	c, dev := newFormatted(t)
	rng := rand.New(rand.NewSource(11))
	version := map[addr.LPID]uint64{}
	size := map[addr.LPID]int{}
	// Churn far beyond capacity so GC runs, with periodic checkpoints so
	// table pages land on flash and can be moved by GC (two-pass replay).
	for round := 0; round < 300; round++ {
		var pages []LPage
		for k := 0; k < 6; k++ {
			lp := addr.LPID(rng.Intn(30) + 1)
			version[lp]++
			if size[lp] == 0 {
				size[lp] = 500 + rng.Intn(6000)
			}
			pages = append(pages, LPage{LPID: lp, Data: pageContent(uint64(lp), version[lp], size[lp])})
		}
		if err := c.WriteBatch(0, 0, pages); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round%60 == 30 {
			if err := c.Checkpoint(); err != nil {
				t.Fatalf("checkpoint at %d: %v", round, err)
			}
		}
	}
	if c.Stats().GCRounds == 0 {
		t.Fatal("test needs GC activity to be meaningful")
	}
	c.Crash()
	c2 := reopen(t, dev)
	for lp, v := range version {
		checkRead(t, c2, lp, pageContent(uint64(lp), v, size[lp]))
	}
	// And the recovered instance keeps working under churn.
	for round := 0; round < 50; round++ {
		lp := addr.LPID(rng.Intn(30) + 1)
		version[lp]++
		if err := c2.WriteBatch(0, 0, []LPage{{LPID: lp, Data: pageContent(uint64(lp), version[lp], size[lp])}}); err != nil {
			t.Fatalf("post-recovery round %d: %v", round, err)
		}
	}
	for lp, v := range version {
		checkRead(t, c2, lp, pageContent(uint64(lp), v, size[lp]))
	}
}

func TestCrashDuringGC(t *testing.T) {
	for _, point := range []string{"gc.after-commit", "gc.before-erase"} {
		t.Run(point, func(t *testing.T) {
			c, dev := newFormatted(t)
			version := map[addr.LPID]uint64{}
			rng := rand.New(rand.NewSource(17))
			for round := 0; round < 150; round++ {
				lp := addr.LPID(rng.Intn(20) + 1)
				version[lp]++
				if err := c.WriteBatch(0, 0, []LPage{{LPID: lp, Data: pageContent(uint64(lp), version[lp], 4000)}}); err != nil {
					t.Fatal(err)
				}
			}
			c.SetCrashPoint(point)
			// Force GC until the crash point fires (GC may or may not move
			// pages in any given round).
			crashed := false
			for ch := 0; ch < c.Geometry().Channels && !crashed; ch++ {
				for i := 0; i < 10; i++ {
					if err := c.GCNow(ch); errors.Is(err, ErrCrashed) {
						crashed = true
						break
					}
				}
			}
			if !crashed {
				t.Skip("crash point not reached (no GC movement)")
			}
			c2 := reopen(t, dev)
			for lp, v := range version {
				checkRead(t, c2, lp, pageContent(uint64(lp), v, 4000))
			}
		})
	}
}

func TestCrashDuringCheckpoint(t *testing.T) {
	c, dev := newFormatted(t)
	for i := 1; i <= 15; i++ {
		mustWrite(t, c, LPage{LPID: addr.LPID(i), Data: pageContent(uint64(i), 1, 600)})
	}
	c.SetCrashPoint("ckpt.after-flush")
	if err := c.Checkpoint(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("expected crash, got %v", err)
	}
	// The previous checkpoint record is intact; everything replays.
	c2 := reopen(t, dev)
	for i := 1; i <= 15; i++ {
		checkRead(t, c2, addr.LPID(i), pageContent(uint64(i), 1, 600))
	}
	// A new checkpoint on the recovered instance succeeds.
	if err := c2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCrashRecoverCycles(t *testing.T) {
	_, dev := newFormatted(t)
	version := map[addr.LPID]uint64{}
	rng := rand.New(rand.NewSource(23))
	for cycle := 0; cycle < 6; cycle++ {
		c := reopen(t, dev)
		for round := 0; round < 40; round++ {
			lp := addr.LPID(rng.Intn(12) + 1)
			version[lp]++
			if err := c.WriteBatch(0, 0, []LPage{{LPID: lp, Data: pageContent(uint64(lp), version[lp], 1500)}}); err != nil {
				t.Fatalf("cycle %d round %d: %v", cycle, round, err)
			}
		}
		if cycle%2 == 0 {
			if err := c.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		for lp, v := range version {
			checkRead(t, c, lp, pageContent(uint64(lp), v, 1500))
		}
		c.Crash()
	}
	final := reopen(t, dev)
	for lp, v := range version {
		checkRead(t, final, lp, pageContent(uint64(lp), v, 1500))
	}
}

// TestRandomCrashRecoveryProperty is the core durability property test:
// random batches with crashes injected at random points; after every
// recovery, each LPID shows either its last acknowledged version (required
// if the write returned success) or, for the batch in flight at the crash,
// atomically all-or-none of it.
func TestRandomCrashRecoveryProperty(t *testing.T) {
	points := []string{"write.after-init", "write.after-exec", "commit.before-force", "commit.after-force"}
	for seed := int64(0); seed < 8; seed++ {
		t.Run(string(rune('A'+seed)), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			_, dev := newFormatted(t)
			acked := map[addr.LPID]uint64{}    // versions whose write returned nil
			inflight := map[addr.LPID]uint64{} // versions in the crashed batch
			version := map[addr.LPID]uint64{}
			c := reopen(t, dev)
			for op := 0; op < 120; op++ {
				var pages []LPage
				batch := map[addr.LPID]uint64{}
				for k := 0; k < 1+rng.Intn(4); k++ {
					lp := addr.LPID(rng.Intn(10) + 1)
					version[lp]++
					batch[lp] = version[lp]
					pages = append(pages, LPage{LPID: lp, Data: pageContent(uint64(lp), version[lp], 300+rng.Intn(900))})
				}
				willCrash := rng.Intn(12) == 0
				if willCrash {
					c.SetCrashPoint(points[rng.Intn(len(points))])
				}
				err := c.WriteBatch(0, 0, pages)
				// §VIII-C3: the controller tolerates write failures caused
				// by EBLOCKs opened by actions whose log records were lost
				// in a crash — the host simply retries, and migration has
				// already cleaned the EBLOCK.
				for retries := 0; errors.Is(err, ErrWriteFailed) && retries < 5; retries++ {
					err = c.WriteBatch(0, 0, pages)
				}
				switch {
				case err == nil:
					for lp, v := range batch {
						acked[lp] = v
					}
				case errors.Is(err, ErrCrashed):
					inflight = batch
					c = reopen(t, dev)
					// Check: every acked version or newer is present.
					for lp, v := range acked {
						got, err := c.Read(lp)
						if err != nil {
							t.Fatalf("op %d: acked lpid %d unreadable: %v", op, lp, err)
						}
						okAcked := contentMatches(got, uint64(lp), v)
						okInflight := inflight[lp] > v && contentMatches(got, uint64(lp), inflight[lp])
						if !okAcked && !okInflight {
							t.Fatalf("op %d: lpid %d has neither acked v%d nor inflight content", op, lp, v)
						}
					}
					// Atomicity: the inflight batch is all-in or all-out.
					// (All-in only possible for post-commit crash points.)
					in, out := 0, 0
					for lp, v := range inflight {
						got, err := c.Read(lp)
						if err == nil && contentMatches(got, uint64(lp), v) {
							in++
						} else {
							out++
						}
					}
					if in > 0 && out > 0 {
						t.Fatalf("op %d: torn batch after recovery (%d in, %d out)", op, in, out)
					}
					if in > 0 {
						for lp, v := range inflight {
							acked[lp] = v
						}
					} else {
						for lp := range inflight {
							version[lp] = acked[lp] // roll the model back
						}
					}
					inflight = nil
				default:
					t.Fatalf("op %d: unexpected error %v", op, err)
				}
				if rng.Intn(25) == 0 {
					if err := c.Checkpoint(); err != nil && !errors.Is(err, ErrCrashed) {
						t.Fatalf("checkpoint: %v", err)
					}
				}
			}
		})
	}
}

// contentMatches reports whether got equals the deterministic content for
// (lpid, version) at got's unaligned prefix length.
func contentMatches(got []byte, lpid, version uint64) bool {
	// Sizes are unknown here: compare against generated content of the
	// aligned length, ignoring the zero padding tail.
	want := pageContent(lpid, version, len(got))
	if bytes.Equal(got, want) {
		return true
	}
	// The stored page was padded: try matching a shorter prefix.
	for l := len(got) - 1; l > len(got)-64 && l > 0; l-- {
		want = pageContent(lpid, version, l)
		if bytes.Equal(got[:l], want) {
			tail := got[l:]
			allZero := true
			for _, b := range tail {
				if b != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				return true
			}
		}
	}
	return false
}

func TestOpenWithoutFormatFails(t *testing.T) {
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	if _, err := Open(dev, testConfig()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("expected ErrNoCheckpoint, got %v", err)
	}
}

func TestManyCheckpointsCycleArea(t *testing.T) {
	// Enough checkpoints to wrap the ping-pong checkpoint area several
	// times; recovery must always find the latest.
	c, dev := newFormatted(t)
	per := c.Geometry().WBlocksPerEBlock()
	for i := 0; i < per*3; i++ {
		mustWrite(t, c, LPage{LPID: addr.LPID(i%7 + 1), Data: pageContent(uint64(i%7+1), uint64(i), 400)})
		if err := c.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	c.Crash()
	c2 := reopen(t, dev)
	mustWrite(t, c2, LPage{LPID: 100, Data: pageContent(100, 1, 128)})
	checkRead(t, c2, 100, pageContent(100, 1, 128))
}
