package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"eleos/internal/addr"
)

func TestBatchWireRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		pages := make([]LPage, n)
		for i := range pages {
			data := make([]byte, 1+rng.Intn(500))
			rng.Read(data)
			pages[i] = LPage{LPID: addr.LPID(rng.Uint64() & uint64(addr.MaxUserLPID)), Data: data}
		}
		got, err := DecodeBatch(EncodeBatch(pages))
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i].LPID != pages[i].LPID || !bytes.Equal(got[i].Data, pages[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchWireCorruption(t *testing.T) {
	wire := EncodeBatch([]LPage{{LPID: 1, Data: []byte("hello")}})
	for _, off := range []int{0, 5, 10, len(wire) - 2} {
		bad := append([]byte(nil), wire...)
		bad[off] ^= 0xFF
		if _, err := DecodeBatch(bad); !errors.Is(err, ErrBadBatch) {
			t.Fatalf("corruption at %d not detected", off)
		}
	}
	if _, err := DecodeBatch(nil); !errors.Is(err, ErrBadBatch) {
		t.Fatal("nil accepted")
	}
	if _, err := DecodeBatch(wire[:8]); !errors.Is(err, ErrBadBatch) {
		t.Fatal("truncated accepted")
	}
}

func TestWriteBatchWireEndToEnd(t *testing.T) {
	c, _ := newFormatted(t)
	wire := EncodeBatch([]LPage{
		{LPID: 1, Data: pageContent(1, 1, 300)},
		{LPID: 2, Data: pageContent(2, 1, 1200)},
	})
	if err := c.WriteBatchWire(0, 0, wire); err != nil {
		t.Fatal(err)
	}
	checkRead(t, c, 1, pageContent(1, 1, 300))
	checkRead(t, c, 2, pageContent(2, 1, 1200))
	// A corrupted wire buffer is rejected before any state changes.
	wire[20] ^= 0xFF
	if err := c.WriteBatchWire(0, 0, wire); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("corrupt wire accepted: %v", err)
	}
}

func TestEmptyWireBatch(t *testing.T) {
	c, _ := newFormatted(t)
	wire := EncodeBatch(nil)
	if err := c.WriteBatchWire(0, 0, wire); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty wire batch: %v", err)
	}
}
