package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"eleos/internal/addr"
)

// The batch wire format (§IX-A2): flush_batch ships one opaque buffer and
// the controller identifies the pages by parsing metadata *within* the
// batch. Layout:
//
//	magic u32 | count u32 | { lpid u64 | len u32 | payload } ... | crc u32
//
// The CRC covers everything before it.

const batchMagic = 0x454C4246 // "ELBF"

// ErrBadBatch reports a malformed wire batch.
var ErrBadBatch = errors.New("core: malformed batch buffer")

// EncodeBatch serialises pages into the wire format a host sends with one
// flush_batch command.
func EncodeBatch(pages []LPage) []byte {
	n := 8 + 4
	for _, p := range pages {
		n += 12 + len(p.Data)
	}
	return AppendBatch(make([]byte, 0, n), pages)
}

// AppendBatch is EncodeBatch appending into caller scratch, so a client
// encoding batches in a loop reuses one buffer instead of allocating
// per flush.
func AppendBatch(dst []byte, pages []LPage) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, batchMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pages)))
	for _, p := range pages {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(p.LPID))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Data)))
		dst = append(dst, p.Data...)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// DecodeBatch parses a wire batch back into pages. Page data is copied,
// so the result outlives the wire buffer.
func DecodeBatch(wire []byte) ([]LPage, error) {
	return decodeBatch(wire, nil, true)
}

// AppendBatchView parses a wire batch appending into dst, with each
// page's Data aliasing wire — the zero-copy decode of the network hot
// path. The views are valid only while the caller keeps the wire buffer
// alive (for pooled frames: until the frame's refcount is released,
// which the server does only after the flash programs complete).
func AppendBatchView(dst []LPage, wire []byte) ([]LPage, error) {
	return decodeBatch(wire, dst, false)
}

func decodeBatch(wire []byte, dst []LPage, copyData bool) ([]LPage, error) {
	if len(wire) < 12 {
		return nil, fmt.Errorf("%w: short", ErrBadBatch)
	}
	if binary.LittleEndian.Uint32(wire[0:]) != batchMagic {
		return nil, fmt.Errorf("%w: magic", ErrBadBatch)
	}
	body, tail := wire[:len(wire)-4], wire[len(wire)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum", ErrBadBatch)
	}
	count := int(binary.LittleEndian.Uint32(wire[4:]))
	// Every page costs at least its 12-byte header, so the buffer itself
	// bounds a plausible count: a forged count field (from a host that
	// computed a valid CRC over hostile content) must not size the
	// preallocation, or 4 bytes of input could demand a multi-GB make.
	if count > (len(body)-8)/12 {
		return nil, fmt.Errorf("%w: count %d exceeds buffer capacity", ErrBadBatch, count)
	}
	pages := dst
	if cap(pages)-len(pages) < count {
		grown := make([]LPage, len(pages), len(pages)+count)
		copy(grown, pages)
		pages = grown
	}
	off := 8
	for i := 0; i < count; i++ {
		if off+12 > len(body) {
			return nil, fmt.Errorf("%w: truncated page header", ErrBadBatch)
		}
		lpid := addr.LPID(binary.LittleEndian.Uint64(body[off:]))
		l := int(binary.LittleEndian.Uint32(body[off+8:]))
		off += 12
		// Bound the length before any use: l is attacker-controlled and
		// must index only within the CRC-covered body.
		if l < 0 || l > len(body)-off {
			return nil, fmt.Errorf("%w: truncated page payload", ErrBadBatch)
		}
		data := body[off : off+l : off+l]
		if copyData {
			data = append([]byte(nil), data...)
		}
		pages = append(pages, LPage{LPID: lpid, Data: data})
		off += l
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadBatch)
	}
	return pages, nil
}

// viewPool recycles the page-view slices WriteBatchWire decodes into,
// so the wire entry point allocates no per-batch slice in steady state.
var viewPool = sync.Pool{New: func() any { return new([]LPage) }}

// WriteBatchWire is flush_batch as it crosses the transport: the
// controller parses the buffer's in-batch metadata, then executes the
// write as one system action.
func (c *Controller) WriteBatchWire(sid, wsn uint64, wire []byte) error {
	return c.WriteBatchWireTraced(sid, wsn, 0, wire)
}

// WriteBatchWireTraced is WriteBatchWire carrying the flush frame's
// trace ID (see WriteBatchTraced). The wire buffer is borrowed, not
// copied: its bytes are read (through page views) up to the moment the
// batch's flash programs are submitted, so callers passing a pooled
// frame may release it as soon as the call returns.
func (c *Controller) WriteBatchWireTraced(sid, wsn, traceID uint64, wire []byte) error {
	vp := viewPool.Get().(*[]LPage)
	pages, err := AppendBatchView((*vp)[:0], wire)
	if err == nil {
		err = c.WriteBatchTraced(sid, wsn, traceID, pages)
	}
	// Drop the data views before pooling the slice: a pooled slice must
	// not pin the caller's wire buffer (or a recycled pooled frame).
	if pages != nil {
		clear(pages)
		*vp = pages[:0]
	}
	viewPool.Put(vp)
	return err
}
