package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"eleos/internal/addr"
)

// The batch wire format (§IX-A2): flush_batch ships one opaque buffer and
// the controller identifies the pages by parsing metadata *within* the
// batch. Layout:
//
//	magic u32 | count u32 | { lpid u64 | len u32 | payload } ... | crc u32
//
// The CRC covers everything before it.

const batchMagic = 0x454C4246 // "ELBF"

// ErrBadBatch reports a malformed wire batch.
var ErrBadBatch = errors.New("core: malformed batch buffer")

// EncodeBatch serialises pages into the wire format a host sends with one
// flush_batch command.
func EncodeBatch(pages []LPage) []byte {
	n := 8 + 4
	for _, p := range pages {
		n += 12 + len(p.Data)
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint32(buf, batchMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pages)))
	for _, p := range pages {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.LPID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Data)))
		buf = append(buf, p.Data...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeBatch parses a wire batch back into pages.
func DecodeBatch(wire []byte) ([]LPage, error) {
	if len(wire) < 12 {
		return nil, fmt.Errorf("%w: short", ErrBadBatch)
	}
	if binary.LittleEndian.Uint32(wire[0:]) != batchMagic {
		return nil, fmt.Errorf("%w: magic", ErrBadBatch)
	}
	body, tail := wire[:len(wire)-4], wire[len(wire)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum", ErrBadBatch)
	}
	count := int(binary.LittleEndian.Uint32(wire[4:]))
	// Every page costs at least its 12-byte header, so the buffer itself
	// bounds a plausible count: a forged count field (from a host that
	// computed a valid CRC over hostile content) must not size the
	// preallocation, or 4 bytes of input could demand a multi-GB make.
	if count > (len(body)-8)/12 {
		return nil, fmt.Errorf("%w: count %d exceeds buffer capacity", ErrBadBatch, count)
	}
	pages := make([]LPage, 0, count)
	off := 8
	for i := 0; i < count; i++ {
		if off+12 > len(body) {
			return nil, fmt.Errorf("%w: truncated page header", ErrBadBatch)
		}
		lpid := addr.LPID(binary.LittleEndian.Uint64(body[off:]))
		l := int(binary.LittleEndian.Uint32(body[off+8:]))
		off += 12
		// Bound the length before any use: l is attacker-controlled and
		// must index only within the CRC-covered body.
		if l < 0 || l > len(body)-off {
			return nil, fmt.Errorf("%w: truncated page payload", ErrBadBatch)
		}
		pages = append(pages, LPage{LPID: lpid, Data: append([]byte(nil), body[off:off+l]...)})
		off += l
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadBatch)
	}
	return pages, nil
}

// WriteBatchWire is flush_batch as it crosses the transport: the
// controller parses the buffer's in-batch metadata, then executes the
// write as one system action.
func (c *Controller) WriteBatchWire(sid, wsn uint64, wire []byte) error {
	return c.WriteBatchWireTraced(sid, wsn, 0, wire)
}

// WriteBatchWireTraced is WriteBatchWire carrying the flush frame's
// trace ID (see WriteBatchTraced).
func (c *Controller) WriteBatchWireTraced(sid, wsn, traceID uint64, wire []byte) error {
	pages, err := DecodeBatch(wire)
	if err != nil {
		return err
	}
	return c.WriteBatchTraced(sid, wsn, traceID, pages)
}
