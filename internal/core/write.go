package core

import (
	"errors"
	"fmt"
	"time"

	"eleos/internal/addr"
	"eleos/internal/bufpool"
	"eleos/internal/flash"
	"eleos/internal/provision"
	"eleos/internal/record"
	"eleos/internal/session"
	"eleos/internal/summary"
	"eleos/internal/trace"
)

// flushRef identifies one (sid, wsn) flush carried by an action. A
// plain WriteBatch action carries exactly one; a coalesced group action
// (WriteBatchGroup) carries one per merged sub-flush, and the commit,
// session-advance and trace machinery fan out over them.
type flushRef struct {
	sid   uint64
	wsn   uint64
	tid   uint64 // flight-recorder trace ID (0 = untraced)
	pages int    // logical page count of this flush
	bytes int64  // logical byte count of this flush
}

// action carries one batched write's state through the pipeline phases.
// Keeping it explicit (instead of controller fields) lets many actions be
// in flight at once: each runs its own init/execute/commit/install sequence
// and c.mu is held only for the sections that touch shared state.
type action struct {
	id   uint64
	hint record.LSN // lsnHint at init; pins the truncation LSN while active

	buf  []byte                // aligned page images, back to back
	pb   *bufpool.Buf          // pooled backing of buf; released by the caller after writeUser
	bps  []provision.BatchPage // layout handed to the provisioner
	plan *provision.Plan
	lsns []record.LSN // per-page Update record LSNs

	subs    []flushRef   // the flushes this action carries (≥1)
	subsArr [1]flushRef  // inline storage for the single-flush case
}

// WriteBatch durably writes a buffer of variable-size logical pages as one
// atomic system action (§IV). Pages are applied in buffer order: a later
// page for the same LPID overwrites an earlier one.
//
// sid/wsn order buffers within a session (§III-A2): pass sid = 0 for
// unordered writes. A WSN already applied returns nil without re-applying
// (the paper re-ACKs the highest WSN); a WSN ahead of its predecessors
// blocks until they arrive.
//
// WriteBatch is safe for concurrent use. Concurrent batches pipeline: each
// holds c.mu only for admission, the provision/log/submit critical section,
// and the install; flash programs execute on the per-channel device workers
// and the commit force runs with the lock released (committers share forced
// log pages — group commit).
func (c *Controller) WriteBatch(sid, wsn uint64, pages []LPage) error {
	return c.WriteBatchTraced(sid, wsn, 0, pages)
}

// WriteBatchTraced is WriteBatch with an explicit flight-recorder trace
// ID tying the batch's spans to the originating request (the network
// front-end propagates the ID from flush_batch_traced frames). traceID 0
// gets a fresh ID when tracing is enabled, so every batch is always
// attributable in the recorder.
func (c *Controller) WriteBatchTraced(sid, wsn, traceID uint64, pages []LPage) error {
	tracing := c.trc.Enabled()
	if tracing {
		if traceID == 0 {
			traceID = c.trc.NewTraceID()
		}
		c.trc.Emit(trace.KBatchStart, traceID, sid, wsn, int64(len(pages)), 0)
	}
	err := c.writeBatch(sid, wsn, traceID, pages)
	if tracing {
		var fail int64
		if err != nil {
			fail = 1
		}
		c.trc.Emit(trace.KBatchEnd, traceID, sid, wsn, fail, 0)
	}
	return err
}

func (c *Controller) writeBatch(sid, wsn, traceID uint64, pages []LPage) error {
	// Claim stage: lock acquisition plus WSN admission (which may wait for
	// predecessor WSNs). Timed only when the registry or tracer needs it.
	timed := c.met.on || c.trc.Enabled()
	var tClaim time.Time
	if timed {
		tClaim = time.Now()
	}
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return ErrCrashed
	}
	if len(pages) == 0 {
		c.mu.Unlock()
		return ErrEmptyBatch
	}
	if sid != 0 {
		ok, err := c.admitWSNLocked(sid, wsn)
		if !ok {
			c.mu.Unlock()
			return err
		}
	}
	c.mu.Unlock()
	if timed {
		if c.met.on {
			c.met.claimNS.ObserveDuration(time.Since(tClaim))
		}
		c.trc.Span(trace.KClaim, traceID, sid, wsn, tClaim, 0, 0)
	}

	// Build the aligned write buffer outside the lock: validating, copying
	// and padding the batch is per-action work.
	a := &action{}
	a.subs = a.subsArr[:1]
	a.subs[0] = flushRef{sid: sid, wsn: wsn, tid: traceID, pages: len(pages), bytes: logicalBytes(pages)}
	var err error
	a.buf, a.pb, a.bps, err = buildBatch(pages)

	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil && c.crashed {
		err = ErrCrashed
	}
	if err == nil {
		err = c.writeUser(a)
	}
	if a.pb != nil {
		// The flash programs have completed (or were never submitted):
		// the pooled program buffer goes back to the pool here and
		// nowhere else.
		a.pb.Release()
		a.pb = nil
	}
	if sid != 0 {
		delete(c.wsnInflight, [2]uint64{sid, wsn})
		c.wsnCond.Broadcast()
	}
	if err == nil {
		c.maybeGCLocked()
		c.maybeCheckpointLocked()
	}
	return err
}

// logicalBytes sums the pages' logical (pre-alignment) sizes.
func logicalBytes(pages []LPage) int64 {
	var n int64
	for _, p := range pages {
		n += int64(len(p.Data))
	}
	return n
}

// admitWSNLocked gates a batch on its session's write sequence number
// (§III-A2) and claims (sid, wsn) so a concurrent duplicate submission of
// the same WSN cannot be admitted while this one runs outside the lock.
// ok=false with a nil error means the batch is stale and was re-ACKed.
func (c *Controller) admitWSNLocked(sid, wsn uint64) (bool, error) {
	key := [2]uint64{sid, wsn}
	for {
		v, _, err := c.sess.Check(sid, wsn)
		if err != nil {
			return false, err
		}
		if v == session.Stale {
			c.stats.StaleWrites++
			c.met.staleWrites.Inc()
			return false, nil
		}
		if v == session.Apply && !c.wsnInflight[key] {
			c.wsnInflight[key] = true
			return true, nil
		}
		c.wsnCond.Wait()
		if c.crashed {
			return false, ErrCrashed
		}
	}
}

// buildBatch lays the pages out back to back (64-byte aligned) in one
// pooled write buffer, exactly as the batch arrives over the wire. The
// buffer is borrowed from bufpool — the caller releases it once the
// flash programs have completed (after writeUser returns) — so the
// steady-state write path allocates no per-batch program buffer.
func buildBatch(pages []LPage) ([]byte, *bufpool.Buf, []provision.BatchPage, error) {
	total, err := validatePages(pages)
	if err != nil {
		return nil, nil, nil, err
	}
	pb := bufpool.Get(total)
	buf := pb.Bytes()
	bps, _ := layoutPages(buf, make([]provision.BatchPage, 0, len(pages)), 0, pages)
	return buf, pb, bps, nil
}

// validatePages rejects empty or non-user pages and returns the total
// aligned buffer size the batch needs. Split from layoutPages so a
// coalesced group can validate each sub-flush in isolation before
// laying all of them into one shared buffer.
func validatePages(pages []LPage) (alignedTotal int, err error) {
	total := 0
	for _, p := range pages {
		if len(p.Data) == 0 {
			return 0, fmt.Errorf("%w: LPID %d has no data", ErrEmptyBatch, p.LPID)
		}
		if !p.LPID.IsUser() {
			return 0, fmt.Errorf("%w: %d", ErrBadLPID, p.LPID)
		}
		total += addr.AlignUp(len(p.Data))
	}
	return total, nil
}

// layoutPages copies already-validated pages into buf starting at off,
// zeroing each page's alignment padding (pooled buffers arrive dirty),
// and appends the provisioning layout to bps. It returns the extended
// layout and the next free offset.
func layoutPages(buf []byte, bps []provision.BatchPage, off int, pages []LPage) ([]provision.BatchPage, int) {
	for _, p := range pages {
		n := addr.AlignUp(len(p.Data))
		bps = append(bps, provision.BatchPage{LPID: p.LPID, Type: addr.PageUser, Length: n, BufOff: off})
		copy(buf[off:], p.Data)
		clear(buf[off+len(p.Data) : off+n])
		off += n
	}
	return bps, off
}

// spanSubs emits one span per flush the action carries, so every
// merged sub-flush of a coalesced group (and the single flush of a
// plain batch) sees the action's stage under its own trace ID.
func (c *Controller) spanSubs(k trace.Kind, a *action, t0 time.Time) {
	for i := range a.subs {
		s := &a.subs[i]
		c.trc.Span(k, s.tid, s.sid, s.wsn, t0, 0, 0)
	}
}

// writeUser runs one user system action — one flush, or a coalesced
// group of them sharing the provision/program/commit machinery. Called
// and returned with c.mu held; the lock is released while flash
// programs execute and while the commit record is forced. The caller
// owns a.pb and releases it after writeUser returns: every read of
// a.buf (the flash programs included) has completed by then.
func (c *Controller) writeUser(a *action) error {
	c.updateSeq += uint64(len(a.bps))
	timed := c.met.on || c.trc.Enabled()
	var tInit time.Time
	if timed {
		tInit = time.Now()
	}

	// Initialization phase (§IV-A). Provisioning, the init log records and
	// the queue submission form one critical section: the provisioner
	// assigns consecutive WBLOCK ranges, recovery's per-EBLOCK replay and
	// the GC validity scan assume the log sees them in ascending-offset
	// order, and the per-channel FIFO queues must receive the programs in
	// that same order for the NAND sequential-program rule.
	a.hint = c.lsnHint()
	plan, err := c.prov.ProvisionBatch(a.bps, c.clock, a.hint)
	if errors.Is(err, provision.ErrNoSpace) {
		c.gcAllLocked()
		plan, err = c.prov.ProvisionBatch(a.bps, c.clock, a.hint)
	}
	if err != nil {
		return err
	}
	a.plan = plan
	a.id = c.nextAction
	c.nextAction++
	c.active[a.id] = a.hint
	a.lsns, err = c.logPlanLocked(a.id, plan, nil)
	if err != nil {
		// Log-space exhaustion mid-init aborts the action; GC plus the
		// checkpoint it takes first free truncated log EBLOCKs, so the
		// caller's retry can proceed.
		c.abortActionLocked(a.id, plan)
		if errors.Is(err, provision.ErrNoSpace) {
			c.gcAllLocked()
			return fmt.Errorf("%w: log space exhausted: %v", ErrWriteFailed, err)
		}
		return err
	}
	if err := c.crashIf("write.after-init"); err != nil {
		return err
	}

	// Execution phase (§IV-B): the programs run on the per-channel device
	// workers with c.mu released, so concurrent actions' I/O overlaps in
	// wall-clock time.
	batch := c.submitPlanLocked(a.buf, plan, flash.SrcUser)
	// The submit pinned the plan's EBLOCKs against GC/migration erase.
	// Every exit from here on must release the pins — after the install
	// or the abort, whichever ends the action. The deferred call covers
	// the error returns; paths that must unpin earlier (migration waits
	// on pins and would self-deadlock) call unpin directly.
	unpinned := false
	unpin := func() {
		if !unpinned {
			unpinned = true
			c.unpinPlanLocked(plan)
		}
	}
	defer unpin()
	var tExec time.Time
	if timed {
		tExec = time.Now()
		if c.met.on {
			c.met.initNS.ObserveDuration(tExec.Sub(tInit))
		}
		c.spanSubs(trace.KInit, a, tInit)
	}
	c.mu.Unlock()
	res := batch.Wait()
	c.mu.Lock()
	if timed {
		if c.met.on {
			c.met.programWaitNS.ObserveDuration(time.Since(tExec))
		}
		c.spanSubs(trace.KProgramWait, a, tExec)
	}
	c.finishPlanLocked(plan, res)
	if c.crashed {
		return ErrCrashed
	}
	if err := c.crashIf("write.after-exec"); err != nil {
		return err
	}
	if len(res.FailedEBlocks) > 0 {
		c.met.mediaAborts.Inc()
		for i := range a.subs {
			s := &a.subs[i]
			c.trc.Emit(trace.KMediaAbort, s.tid, s.sid, s.wsn, int64(len(res.FailedEBlocks)), 0)
		}
		c.abortActionLocked(a.id, plan)
		unpin()
		c.migrateFailedLocked(res.FailedEBlocks, a.subs[0].tid)
		return fmt.Errorf("%w: action %d", ErrWriteFailed, a.id)
	}

	// Commit phase (§IV-C): append the commit record under c.mu, force the
	// log without it. A commit-phase error must abort the action, or its
	// entry in c.active would pin the truncation LSN forever.
	if err := c.logClosesLocked(plan); err != nil {
		c.abortActionLocked(a.id, plan)
		return err
	}
	if err := c.crashIf("commit.before-force"); err != nil {
		return err
	}
	// One Commit record per carried flush, all sharing the action id.
	// Recovery treats repeated commits of one action idempotently and
	// replays each record's session advance independently, so a coalesced
	// group commits every merged (sid, wsn) atomically with the action.
	for i := range a.subs {
		s := &a.subs[i]
		if _, err := c.append(record.Commit{Action: a.id, AKind: record.ActionUser, SID: s.sid, WSN: s.wsn}); err != nil {
			c.abortActionLocked(a.id, plan)
			return err
		}
	}
	var tForce time.Time
	if timed {
		tForce = time.Now()
	}
	if err := c.forceCommitLocked(a.id); err != nil {
		return err
	}
	var tInstall time.Time
	if timed {
		tInstall = time.Now()
		if c.met.on {
			c.met.forceWaitNS.ObserveDuration(tInstall.Sub(tForce))
		}
		c.spanSubs(trace.KForceWait, a, tForce)
	}
	if err := c.crashIf("commit.after-force"); err != nil {
		return err
	}

	// Install phase: publish the new addresses, record old versions as
	// garbage, and advance the session.
	var garbage []record.AddrPair
	for i, pg := range a.plan.Pages {
		old, err := c.mt.Get(pg.LPID)
		if err != nil {
			return err
		}
		if err := c.mt.Set(pg.LPID, pg.Addr, a.lsns[i]); err != nil {
			return err
		}
		// Mapping install under c.mu: drop any cached copy and poison
		// in-flight fills so the read cache can never serve pre-install
		// bytes (see internal/readcache).
		c.invalidateRead(pg.LPID)
		if old.IsValid() {
			garbage = append(garbage, record.AddrPair{LPID: pg.LPID, Addr: old})
			if err := c.st.AddAvail(old.Channel(), old.EBlock(), old.Length(), a.lsns[i]); err != nil {
				return err
			}
		}
	}
	var totalPages int64
	for i := range a.subs {
		s := &a.subs[i]
		if s.sid != 0 {
			if err := c.sess.Advance(s.sid, s.wsn); err != nil {
				return err
			}
		}
		totalPages += int64(s.pages)
		c.stats.BytesAccepted += s.bytes
		c.met.bytesAccepted.Add(s.bytes)
		c.tenantWriteLocked(s.sid, s.bytes, int64(s.pages))
	}
	if err := c.lazyGarbageLocked(a.id, garbage); err != nil {
		return err
	}
	delete(c.active, a.id)

	c.stats.BatchesWritten += int64(len(a.subs))
	if len(a.subs) > 1 {
		c.stats.GroupWrites++
		c.stats.GroupedFlushes += int64(len(a.subs))
	}
	c.stats.PagesWritten += totalPages
	for _, bp := range a.bps {
		c.stats.BytesStored += int64(bp.Length)
		c.met.bytesStored.Add(int64(bp.Length))
	}
	if timed {
		if c.met.on {
			c.met.installNS.ObserveDuration(time.Since(tInstall))
			c.met.batches.Add(int64(len(a.subs)))
			c.met.pages.Add(totalPages)
			for i := range a.subs {
				c.met.batchPages.Observe(int64(a.subs[i].pages))
			}
		}
		c.spanSubs(trace.KInstall, a, tInstall)
	}
	return nil
}

// forceCommitLocked makes the appended commit record durable. c.mu is
// released during the force, so concurrent committers batch their commit
// records into one forced log page (group commit). If the force fails the
// commit record's durability is unknown and the log can no longer record
// an abort; after one rescue attempt (checkpoint + GC to free log space)
// the controller declares itself crashed and recovery resolves the action
// from the durable log prefix.
func (c *Controller) forceCommitLocked(id uint64) error {
	c.mu.Unlock()
	err := c.log.Force()
	c.mu.Lock()
	if err == nil {
		c.stats.LogForces++
		c.logBytes += c.geo.WBlockBytes
		return nil
	}
	if !c.crashed && !c.log.Dead() {
		c.gcAllLocked()
		c.mu.Unlock()
		err2 := c.log.Force()
		c.mu.Lock()
		if err2 == nil {
			c.stats.LogForces++
			c.logBytes += c.geo.WBlockBytes
			return nil
		}
	}
	if c.crashed {
		return ErrCrashed
	}
	c.crashed = true
	c.crashedA.Store(true)
	c.wsnCond.Broadcast()
	delete(c.active, id)
	c.stats.AbortedActions++
	c.met.aborted.Inc()
	return fmt.Errorf("%w: commit force failed: %v", ErrCrashed, err)
}

// logPlanLocked produces the init-phase log records for a plan: open-EBLOCK
// records plus one Update (or GCUpdate when olds is non-nil) per page. It
// returns the per-page LSNs.
func (c *Controller) logPlanLocked(id uint64, plan *provision.Plan, olds []addr.PhysAddr) ([]record.LSN, error) {
	for _, op := range plan.Opens {
		if op.Stream == record.StreamLog {
			continue // the chain itself is the durable record for log EBLOCKs
		}
		if _, err := c.append(record.OpenEBlock{Channel: uint32(op.Channel), EBlock: uint32(op.EBlock), Stream: op.Stream}); err != nil {
			return nil, err
		}
	}
	lsns := make([]record.LSN, len(plan.Pages))
	for i, pg := range plan.Pages {
		var r record.Record
		if olds != nil {
			r = record.GCUpdate{Action: id, LPID: pg.LPID, Type: pg.Type, Old: olds[i], New: pg.Addr}
		} else {
			r = record.Update{Action: id, LPID: pg.LPID, Type: pg.Type, New: pg.Addr}
		}
		lsn, err := c.append(r)
		if err != nil {
			return nil, err
		}
		lsns[i] = lsn
	}
	return lsns, nil
}

// logClosesLocked logs close records for EBLOCKs whose metadata this
// action just made durable. Logged only at commit time so a close record
// implies readable metadata (§VIII-C).
func (c *Controller) logClosesLocked(plan *provision.Plan) error {
	for _, cl := range plan.Closes {
		if _, err := c.append(record.CloseEBlock{
			Channel: uint32(cl.Channel), EBlock: uint32(cl.EBlock),
			Timestamp:   cl.Timestamp,
			DataWBlocks: uint32(cl.DataWBlocks), MetaWBlocks: uint32(cl.MetaWBlocks),
		}); err != nil {
			return err
		}
	}
	return nil
}

// submitPlanLocked queues a plan's I/O commands on the per-channel device
// workers and marks their EBLOCKs in flight. Must run in the same c.mu
// critical section as the provisioning: within a channel the FIFO queue
// must receive WBLOCK programs in provisioning order.
func (c *Controller) submitPlanLocked(buf []byte, plan *provision.Plan, src flash.Source) *flash.Batch {
	cmds := make([]flash.BatchCmd, 0, len(plan.IOs))
	for _, io := range plan.IOs {
		data := io.Inline
		if data == nil {
			data = buf[io.BufLo:io.BufHi]
		}
		cmds = append(cmds, flash.BatchCmd{Channel: io.Channel, EBlock: io.EBlock, WBlock: io.WBlock, Data: data, Src: c.attributeSrc(src)})
		key := [2]int{io.Channel, io.EBlock}
		c.inflight[key]++
		c.pinned[key]++
	}
	return c.dev.SubmitBatch(cmds)
}

// unpinPlanLocked releases the erase-protection pins taken at submit.
// Called once per plan when the owning action installs or aborts.
func (c *Controller) unpinPlanLocked(plan *provision.Plan) {
	for _, io := range plan.IOs {
		key := [2]int{io.Channel, io.EBlock}
		if c.pinned[key]--; c.pinned[key] <= 0 {
			delete(c.pinned, key)
		}
	}
	c.ioCond.Broadcast()
}

// finishPlanLocked retires a completed batch's in-flight bookkeeping and
// wakes waiters (GC, checkpoint and migration drain on ioCond).
func (c *Controller) finishPlanLocked(plan *provision.Plan, res flash.BatchResult) {
	for _, io := range plan.IOs {
		key := [2]int{io.Channel, io.EBlock}
		if c.inflight[key]--; c.inflight[key] <= 0 {
			delete(c.inflight, key)
		}
	}
	c.stats.IOCommands += int64(res.Attempted)
	c.ioCond.Broadcast()
}

// waitInflightLocked blocks until no queued programs target (ch, eb) and
// no landed-but-uninstalled action pins it. The wait is bounded: queued
// programs always complete (the workers depend only on device locks), and
// pins drain when their action installs or aborts — both of which happen
// on every writeUser exit path.
func (c *Controller) waitInflightLocked(ch, eb int) {
	key := [2]int{ch, eb}
	for c.inflight[key] > 0 || c.pinned[key] > 0 {
		c.ioCond.Wait()
	}
}

// executeIOsLocked runs a plan's I/O commands to completion while holding
// c.mu — GC, migration and checkpoint actions stay fully serialized. The
// failed EBLOCKs come back sorted by (channel, eblock), keeping migration
// order (and the virtual-time accounting after injected failures)
// deterministic.
func (c *Controller) executeIOsLocked(buf []byte, plan *provision.Plan, src flash.Source) [][2]int {
	batch := c.submitPlanLocked(buf, plan, src)
	res := batch.Wait()
	c.finishPlanLocked(plan, res)
	// The pins are moot here — c.mu is held from submit through the
	// caller's install — but submit takes them unconditionally, so
	// release them before anyone else can observe the counts.
	c.unpinPlanLocked(plan)
	return res.FailedEBlocks
}

// abortActionLocked aborts a system action: the provisioned space is
// treated as garbage via AVAIL (§IV-C); nothing is installed.
func (c *Controller) abortActionLocked(id uint64, plan *provision.Plan) {
	lsn, _ := c.append(record.Abort{Action: id})
	for _, pg := range plan.Pages {
		_ = c.st.AddAvail(pg.Addr.Channel(), pg.Addr.EBlock(), pg.Addr.Length(), lsn)
	}
	delete(c.active, id)
	c.stats.AbortedActions++
	c.met.aborted.Inc()
}

// lazyGarbageLocked appends the lazy old-address records and the DONE
// record for a committed action (§VIII-C2). They are not forced.
func (c *Controller) lazyGarbageLocked(id uint64, pairs []record.AddrPair) error {
	per := c.cfg.GarbagePairsPerRecord
	for len(pairs) > 0 {
		n := per
		if n > len(pairs) {
			n = len(pairs)
		}
		if _, err := c.append(record.Garbage{Action: id, Pairs: pairs[:n]}); err != nil {
			return err
		}
		pairs = pairs[n:]
	}
	_, err := c.append(record.Done{Action: id})
	return err
}

// migrateFailedLocked migrates every EBLOCK that suffered a write failure:
// committed LPAGEs still stored there are moved to new locations with the
// GC machinery, then the EBLOCK is erased (§VII). traceID attributes the
// migrations to the batch whose program failure triggered them (0 when
// the trigger was a GC/checkpoint action).
func (c *Controller) migrateFailedLocked(failed [][2]int, traceID uint64) {
	for _, f := range failed {
		if err := c.migrateEBlockLocked(f[0], f[1], traceID); err != nil {
			// Migration failures cascade into further migrations; a hard
			// error here leaves the EBLOCK for GC to retry.
			continue
		}
	}
}

func (c *Controller) migrateEBlockLocked(ch, eb int, traceID uint64) error {
	if c.migrationDepth >= 8 {
		return fmt.Errorf("core: migration depth exceeded for (%d,%d)", ch, eb)
	}
	c.migrationDepth++
	defer func() { c.migrationDepth-- }()
	if start := c.trc.Now(); !start.IsZero() {
		defer func() {
			c.trc.Span(trace.KMigration, traceID, 0, 0, start, int64(ch), int64(eb))
		}()
	}

	// Other actions may still have programs queued against this EBLOCK;
	// they must land (and fail, feeding those actions' own abort paths)
	// before the migration reads metadata and erases.
	c.waitInflightLocked(ch, eb)

	d, err := c.st.Desc(ch, eb)
	if err != nil {
		return err
	}
	var entries []summary.MetaEntry
	switch d.State {
	case summary.Open:
		entries = c.st.Meta(ch, eb)
	case summary.Used:
		entries, err = c.readMetaLocked(ch, eb, d)
		if err != nil {
			entries = nil // unreadable: nothing reachable lives here
			c.stats.GCMetaUnreadable++
		}
	default:
		return nil
	}
	err = c.relocateLocked(ch, eb, entries, d.Timestamp, record.ActionMigration)
	if err != nil {
		return err
	}
	c.stats.Migrations++
	c.met.migrations.Inc()
	return c.eraseAndFreeLocked(ch, eb)
}
