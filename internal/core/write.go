package core

import (
	"errors"
	"fmt"

	"eleos/internal/addr"
	"eleos/internal/provision"
	"eleos/internal/record"
	"eleos/internal/session"
	"eleos/internal/summary"
)

// WriteBatch durably writes a buffer of variable-size logical pages as one
// atomic system action (§IV). Pages are applied in buffer order: a later
// page for the same LPID overwrites an earlier one.
//
// sid/wsn order buffers within a session (§III-A2): pass sid = 0 for
// unordered writes. A WSN already applied returns nil without re-applying
// (the paper re-ACKs the highest WSN); a WSN ahead of its predecessors
// blocks until they arrive.
func (c *Controller) WriteBatch(sid, wsn uint64, pages []LPage) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	if len(pages) == 0 {
		return ErrEmptyBatch
	}
	if sid != 0 {
		for {
			v, _, err := c.sess.Check(sid, wsn)
			if err != nil {
				return err
			}
			if v == session.Stale {
				c.stats.StaleWrites++
				return nil
			}
			if v == session.Apply {
				break
			}
			c.wsnCond.Wait()
			if c.crashed {
				return ErrCrashed
			}
		}
	}
	err := c.writeUserLocked(sid, wsn, pages)
	if err == nil {
		if sid != 0 {
			c.wsnCond.Broadcast()
		}
		c.maybeGCLocked()
		c.maybeCheckpointLocked()
	}
	return err
}

// buildBatch lays the pages out back to back (64-byte aligned) in the
// internal write buffer, exactly as the batch arrives over the wire.
func buildBatch(pages []LPage) ([]byte, []provision.BatchPage, error) {
	total := 0
	for _, p := range pages {
		total += addr.AlignUp(len(p.Data))
	}
	buf := make([]byte, 0, total)
	bps := make([]provision.BatchPage, 0, len(pages))
	for _, p := range pages {
		if len(p.Data) == 0 {
			return nil, nil, fmt.Errorf("%w: LPID %d has no data", ErrEmptyBatch, p.LPID)
		}
		if !p.LPID.IsUser() {
			return nil, nil, fmt.Errorf("%w: %d", ErrBadLPID, p.LPID)
		}
		n := addr.AlignUp(len(p.Data))
		bps = append(bps, provision.BatchPage{LPID: p.LPID, Type: addr.PageUser, Length: n, BufOff: len(buf)})
		buf = append(buf, p.Data...)
		buf = append(buf, make([]byte, n-len(p.Data))...)
	}
	return buf, bps, nil
}

func (c *Controller) writeUserLocked(sid, wsn uint64, pages []LPage) error {
	buf, bps, err := buildBatch(pages)
	if err != nil {
		return err
	}
	c.updateSeq += uint64(len(pages))

	// Initialization phase (§IV-A): provision, generate I/O commands
	// (inside the plan), and produce log records.
	hint := c.lsnHint()
	plan, err := c.prov.ProvisionBatch(bps, c.clock, hint)
	if errors.Is(err, provision.ErrNoSpace) {
		c.gcAllLocked()
		plan, err = c.prov.ProvisionBatch(bps, c.clock, hint)
	}
	if err != nil {
		return err
	}
	id := c.nextAction
	c.nextAction++
	c.active[id] = hint
	lsns, err := c.logPlanLocked(id, plan, nil)
	if err != nil {
		// Log-space exhaustion mid-init aborts the action; GC plus the
		// checkpoint it takes first free truncated log EBLOCKs, so the
		// caller's retry can proceed.
		c.abortActionLocked(id, plan)
		if errors.Is(err, provision.ErrNoSpace) {
			c.gcAllLocked()
			return fmt.Errorf("%w: log space exhausted: %v", ErrWriteFailed, err)
		}
		return err
	}
	if err := c.crashIf("write.after-init"); err != nil {
		return err
	}

	// Execution phase (§IV-B).
	failed := c.executeIOsLocked(buf, plan)
	if err := c.crashIf("write.after-exec"); err != nil {
		return err
	}
	if len(failed) > 0 {
		c.abortActionLocked(id, plan)
		c.migrateFailedLocked(failed)
		return fmt.Errorf("%w: action %d", ErrWriteFailed, id)
	}

	// Commit phase (§IV-C): force the commit record, then install.
	if err := c.logClosesLocked(plan); err != nil {
		return err
	}
	if err := c.crashIf("commit.before-force"); err != nil {
		return err
	}
	if _, err := c.append(record.Commit{Action: id, AKind: record.ActionUser, SID: sid, WSN: wsn}); err != nil {
		return err
	}
	if err := c.forceLog(); err != nil {
		return err
	}
	if err := c.crashIf("commit.after-force"); err != nil {
		return err
	}

	var garbage []record.AddrPair
	for i, pg := range plan.Pages {
		old, err := c.mt.Get(pg.LPID)
		if err != nil {
			return err
		}
		if err := c.mt.Set(pg.LPID, pg.Addr, lsns[i]); err != nil {
			return err
		}
		if old.IsValid() {
			garbage = append(garbage, record.AddrPair{LPID: pg.LPID, Addr: old})
			if err := c.st.AddAvail(old.Channel(), old.EBlock(), old.Length(), lsns[i]); err != nil {
				return err
			}
		}
	}
	if sid != 0 {
		if err := c.sess.Advance(sid, wsn); err != nil {
			return err
		}
	}
	if err := c.lazyGarbageLocked(id, garbage); err != nil {
		return err
	}
	delete(c.active, id)

	c.stats.BatchesWritten++
	c.stats.PagesWritten += int64(len(pages))
	for _, p := range pages {
		c.stats.BytesAccepted += int64(len(p.Data))
	}
	for _, bp := range bps {
		c.stats.BytesStored += int64(bp.Length)
	}
	return nil
}

// logPlanLocked produces the init-phase log records for a plan: open-EBLOCK
// records plus one Update (or GCUpdate when olds is non-nil) per page. It
// returns the per-page LSNs.
func (c *Controller) logPlanLocked(id uint64, plan *provision.Plan, olds []addr.PhysAddr) ([]record.LSN, error) {
	for _, op := range plan.Opens {
		if op.Stream == record.StreamLog {
			continue // the chain itself is the durable record for log EBLOCKs
		}
		if _, err := c.append(record.OpenEBlock{Channel: uint32(op.Channel), EBlock: uint32(op.EBlock), Stream: op.Stream}); err != nil {
			return nil, err
		}
	}
	lsns := make([]record.LSN, len(plan.Pages))
	for i, pg := range plan.Pages {
		var r record.Record
		if olds != nil {
			r = record.GCUpdate{Action: id, LPID: pg.LPID, Type: pg.Type, Old: olds[i], New: pg.Addr}
		} else {
			r = record.Update{Action: id, LPID: pg.LPID, Type: pg.Type, New: pg.Addr}
		}
		lsn, err := c.append(r)
		if err != nil {
			return nil, err
		}
		lsns[i] = lsn
	}
	return lsns, nil
}

// logClosesLocked logs close records for EBLOCKs whose metadata this
// action just made durable. Logged only at commit time so a close record
// implies readable metadata (§VIII-C).
func (c *Controller) logClosesLocked(plan *provision.Plan) error {
	for _, cl := range plan.Closes {
		if _, err := c.append(record.CloseEBlock{
			Channel: uint32(cl.Channel), EBlock: uint32(cl.EBlock),
			Timestamp:   cl.Timestamp,
			DataWBlocks: uint32(cl.DataWBlocks), MetaWBlocks: uint32(cl.MetaWBlocks),
		}); err != nil {
			return err
		}
	}
	return nil
}

// executeIOsLocked executes a plan's I/O commands, one submission queue per
// channel in order (the flash device accounts the per-channel parallelism
// in virtual time). It returns the EBLOCKs that suffered write failures.
func (c *Controller) executeIOsLocked(buf []byte, plan *provision.Plan) [][2]int {
	failed := make(map[[2]int]bool)
	for _, io := range plan.IOs {
		key := [2]int{io.Channel, io.EBlock}
		if failed[key] {
			continue // §VII: subsequent commands to a failed EBLOCK fail too
		}
		data := io.Inline
		if data == nil {
			data = buf[io.BufLo:io.BufHi]
		}
		if err := c.dev.Program(io.Channel, io.EBlock, io.WBlock, data); err != nil {
			failed[key] = true
		}
		c.stats.IOCommands++
	}
	out := make([][2]int, 0, len(failed))
	for k := range failed {
		out = append(out, k)
	}
	return out
}

// abortActionLocked aborts a system action: the provisioned space is
// treated as garbage via AVAIL (§IV-C); nothing is installed.
func (c *Controller) abortActionLocked(id uint64, plan *provision.Plan) {
	lsn, _ := c.append(record.Abort{Action: id})
	for _, pg := range plan.Pages {
		_ = c.st.AddAvail(pg.Addr.Channel(), pg.Addr.EBlock(), pg.Addr.Length(), lsn)
	}
	delete(c.active, id)
	c.stats.AbortedActions++
}

// lazyGarbageLocked appends the lazy old-address records and the DONE
// record for a committed action (§VIII-C2). They are not forced.
func (c *Controller) lazyGarbageLocked(id uint64, pairs []record.AddrPair) error {
	per := c.cfg.GarbagePairsPerRecord
	for len(pairs) > 0 {
		n := per
		if n > len(pairs) {
			n = len(pairs)
		}
		if _, err := c.append(record.Garbage{Action: id, Pairs: pairs[:n]}); err != nil {
			return err
		}
		pairs = pairs[n:]
	}
	_, err := c.append(record.Done{Action: id})
	return err
}

// migrateFailedLocked migrates every EBLOCK that suffered a write failure:
// committed LPAGEs still stored there are moved to new locations with the
// GC machinery, then the EBLOCK is erased (§VII).
func (c *Controller) migrateFailedLocked(failed [][2]int) {
	for _, f := range failed {
		if err := c.migrateEBlockLocked(f[0], f[1]); err != nil {
			// Migration failures cascade into further migrations; a hard
			// error here leaves the EBLOCK for GC to retry.
			continue
		}
	}
}

func (c *Controller) migrateEBlockLocked(ch, eb int) error {
	if c.migrationDepth >= 8 {
		return fmt.Errorf("core: migration depth exceeded for (%d,%d)", ch, eb)
	}
	c.migrationDepth++
	defer func() { c.migrationDepth-- }()

	d, err := c.st.Desc(ch, eb)
	if err != nil {
		return err
	}
	var entries []summary.MetaEntry
	switch d.State {
	case summary.Open:
		entries = c.st.Meta(ch, eb)
	case summary.Used:
		entries, err = c.readMetaLocked(ch, eb, d)
		if err != nil {
			entries = nil // unreadable: nothing reachable lives here
			c.stats.GCMetaUnreadable++
		}
	default:
		return nil
	}
	err = c.relocateLocked(ch, eb, entries, d.Timestamp, record.ActionMigration)
	if err != nil {
		return err
	}
	c.stats.Migrations++
	return c.eraseAndFreeLocked(ch, eb)
}
