package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"eleos/internal/addr"
	"eleos/internal/flash"
	"eleos/internal/summary"
)

// TestWearLevelling verifies that free-EBLOCK selection (lowest erase
// count first) keeps erase wear spread across EBLOCKs under heavy churn.
func TestWearLevelling(t *testing.T) {
	c, dev := newFormatted(t)
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 600; round++ {
		var pages []LPage
		for k := 0; k < 6; k++ {
			lp := addr.LPID(rng.Intn(20) + 1)
			pages = append(pages, LPage{LPID: lp, Data: pageContent(uint64(lp), uint64(round), 4000)})
		}
		mustWrite(t, c, pages...)
	}
	g := c.Geometry()
	var min, max, erased int
	min = 1 << 30
	for ch := 0; ch < g.Channels; ch++ {
		for eb := 0; eb < g.EBlocksPerChannel; eb++ {
			if ch == ckptChannel && (eb == ckptEBlockA || eb == ckptEBlockB) {
				continue
			}
			n, err := dev.EraseCount(ch, eb)
			if err != nil {
				t.Fatal(err)
			}
			if n > 0 {
				erased++
			}
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
	}
	if max == 0 {
		t.Fatal("no erases at all; churn insufficient")
	}
	// Wear must be spread: the most-worn EBLOCK should not dominate while
	// most blocks are untouched.
	if erased < g.Channels*g.EBlocksPerChannel/3 {
		t.Fatalf("only %d eblocks ever erased (max wear %d): wear levelling failed", erased, max)
	}
	if max > min+12 {
		t.Fatalf("wear spread too wide: min=%d max=%d", min, max)
	}
}

// TestLogProgramFailuresDuringOperation injects failures on upcoming log
// slots; the forward-pointer failover must keep the log alive, and the
// device must still recover afterwards.
func TestLogProgramFailuresDuringOperation(t *testing.T) {
	c, dev := newFormatted(t)
	version := map[addr.LPID]uint64{}
	rng := rand.New(rand.NewSource(37))
	failures := 0
	for round := 0; round < 120; round++ {
		if round%17 == 5 {
			// Fail the next log-page program wherever the cursor is.
			ch, eb, wb := c.prov.LogCursor()
			if eb >= 0 && wb < c.geo.WBlocksPerEBlock() {
				if w, _ := dev.IsWritten(ch, eb, wb); !w {
					dev.FailNextProgram(ch, eb, wb)
					failures++
				}
			}
		}
		lp := addr.LPID(rng.Intn(15) + 1)
		version[lp]++
		if err := c.WriteBatch(0, 0, []LPage{{LPID: lp, Data: pageContent(uint64(lp), version[lp], 1200)}}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if failures == 0 {
		t.Skip("no failures injected")
	}
	if dev.Stats().WriteFailures == 0 {
		t.Fatal("injected failures never fired")
	}
	// Everything still readable, and recovery still works.
	c.Crash()
	c2 := reopen(t, dev)
	for lp, v := range version {
		checkRead(t, c2, lp, pageContent(uint64(lp), v, 1200))
	}
}

// TestCheckpointAreaFailover verifies checkpointing survives a program
// failure inside the reserved checkpoint area.
func TestCheckpointAreaFailover(t *testing.T) {
	c, dev := newFormatted(t)
	mustWrite(t, c, LPage{LPID: 1, Data: pageContent(1, 1, 500)})
	// Fail the next checkpoint-area program at the current cursor.
	dev.FailNextProgram(ckptChannel, c.ckptEB, c.ckptWB)
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("checkpoint should fail over to the other area eblock: %v", err)
	}
	// Recovery must find the new record.
	c.Crash()
	c2 := reopen(t, dev)
	checkRead(t, c2, 1, pageContent(1, 1, 500))
	if err := c2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestTruncationAdvances verifies that checkpoints advance the truncation
// LSN even with long-open GC buckets (forced closes, §VIII-B).
func TestTruncationAdvances(t *testing.T) {
	c, _ := newFormatted(t)
	rng := rand.New(rand.NewSource(41))
	// Create GC activity so GC buckets open (they would otherwise pin the
	// truncation LSN forever).
	for round := 0; round < 300; round++ {
		lp := addr.LPID(rng.Intn(10) + 1)
		mustWrite(t, c, LPage{LPID: lp, Data: pageContent(uint64(lp), uint64(round), 4000)})
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	t1 := c.lastTruncLSN
	for round := 0; round < 50; round++ {
		lp := addr.LPID(rng.Intn(10) + 1)
		mustWrite(t, c, LPage{LPID: lp, Data: pageContent(uint64(lp), uint64(round+1000), 4000)})
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if c.lastTruncLSN <= t1 {
		t.Fatalf("truncation LSN stuck: %d -> %d", t1, c.lastTruncLSN)
	}
}

// TestMultiSessionInterleaving runs several sessions from separate
// goroutines, presenting WSNs in order per session; all must apply and the
// per-session final states must reflect their own last writes.
func TestMultiSessionInterleaving(t *testing.T) {
	c, _ := newFormatted(t)
	const sessions = 4
	const writes = 12
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	sids := make([]uint64, sessions)
	for i := 0; i < sessions; i++ {
		sid, err := c.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		sids[i] = sid
	}
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := addr.LPID(1000 * (i + 1))
			for w := uint64(1); w <= writes; w++ {
				err := c.WriteBatch(sids[i], w, []LPage{{LPID: base, Data: pageContent(uint64(base), w, 300)}})
				if err != nil {
					errs <- fmt.Errorf("session %d wsn %d: %w", i, w, err)
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sessions; i++ {
		high, err := c.SessionHighestWSN(sids[i])
		if err != nil || high != writes {
			t.Fatalf("session %d highest = %d (%v)", i, high, err)
		}
		checkRead(t, c, addr.LPID(1000*(i+1)), pageContent(uint64(1000*(i+1)), writes, 300))
	}
}

// TestGCPoliciesIntegrity churns under each GC policy and verifies content
// integrity and reclamation for all of them.
func TestGCPoliciesIntegrity(t *testing.T) {
	for _, policy := range []GCPolicy{GCMinCostDecline, GCGreedy, GCOldest} {
		t.Run(policy.String(), func(t *testing.T) {
			dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
			cfg := testConfig()
			cfg.GCPolicy = policy
			cfg.GCMaxRounds = 32
			c, err := Format(dev, cfg)
			if err != nil {
				t.Fatal(err)
			}
			version := map[addr.LPID]uint64{}
			rng := rand.New(rand.NewSource(43))
			for round := 0; round < 500; round++ {
				lp := addr.LPID(rng.Intn(25) + 1)
				version[lp]++
				if err := c.WriteBatch(0, 0, []LPage{{LPID: lp, Data: pageContent(uint64(lp), version[lp], 3500)}}); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			if c.Stats().GCEBlocksFreed == 0 {
				t.Fatalf("%v: GC never freed", policy)
			}
			for lp, v := range version {
				checkRead(t, c, lp, pageContent(uint64(lp), v, 3500))
			}
		})
	}
}

// TestInvariantMappingPointsAtReadableData is a whole-device invariant
// check after a mixed workload: every mapped LPID's physical address must
// fall inside a used or open EBLOCK and be readable with matching length.
func TestInvariantMappingPointsAtReadableData(t *testing.T) {
	c, _ := newFormatted(t)
	rng := rand.New(rand.NewSource(47))
	lpids := map[addr.LPID]int{}
	for round := 0; round < 300; round++ {
		lp := addr.LPID(rng.Intn(40) + 1)
		size := 64 * (1 + rng.Intn(60))
		lpids[lp] = size
		mustWrite(t, c, LPage{LPID: lp, Data: pageContent(uint64(lp), uint64(round), size)})
	}
	for ch := 0; ch < c.Geometry().Channels; ch++ {
		_ = c.GCNow(ch)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for lp, size := range lpids {
		a, err := c.mt.Get(lp)
		if err != nil || !a.IsValid() {
			t.Fatalf("lpid %d unmapped: %v", lp, err)
		}
		if a.Length() != addr.AlignUp(size) {
			t.Fatalf("lpid %d length %d, want %d", lp, a.Length(), addr.AlignUp(size))
		}
		d, err := c.st.Desc(a.Channel(), a.EBlock())
		if err != nil {
			t.Fatal(err)
		}
		if d.State != summary.Used && d.State != summary.Open {
			t.Fatalf("lpid %d points into %v eblock (%d,%d)", lp, d.State, a.Channel(), a.EBlock())
		}
		if _, err := c.Read(lp); err != nil {
			t.Fatalf("lpid %d unreadable: %v", lp, err)
		}
	}
}

// TestStaleWSNAfterSessionReopenFails ensures sessions cannot be confused
// across close boundaries.
func TestStaleWSNAfterSessionReopenFails(t *testing.T) {
	c, _ := newFormatted(t)
	sid, _ := c.OpenSession()
	if err := c.WriteBatch(sid, 1, []LPage{{LPID: 1, Data: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseSession(sid); err != nil {
		t.Fatal(err)
	}
	// The SID is gone; reusing it must fail rather than silently reset.
	err := c.WriteBatch(sid, 2, []LPage{{LPID: 2, Data: []byte{2}}})
	if err == nil {
		t.Fatal("write on closed session accepted")
	}
}

// TestEraseLimitMarksBad drives an EBLOCK past its erase limit via GC and
// verifies it is retired rather than reused.
func TestEraseLimitMarksBad(t *testing.T) {
	g := flash.SmallGeometry()
	g.EraseLimit = 3
	dev := flash.MustNewDevice(g, flash.Latency{})
	cfg := testConfig()
	c, err := Format(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	version := map[addr.LPID]uint64{}
	rng := rand.New(rand.NewSource(53))
	var wedged bool
	for round := 0; round < 1500 && !wedged; round++ {
		lp := addr.LPID(rng.Intn(10) + 1)
		version[lp]++
		err := c.WriteBatch(0, 0, []LPage{{LPID: lp, Data: pageContent(uint64(lp), version[lp], 4000)}})
		if err != nil {
			// The device eventually wears out entirely; that is expected
			// with EraseLimit 3 — but data must never be silently lost.
			if errors.Is(err, ErrWriteFailed) {
				continue // migrations handle transient failures
			}
			wedged = true
		}
	}
	// Some eblocks must have been retired.
	bad := 0
	for ch := 0; ch < g.Channels; ch++ {
		for eb := 0; eb < g.EBlocksPerChannel; eb++ {
			if isBad, _ := dev.IsBad(ch, eb); isBad {
				bad++
			}
		}
	}
	if bad == 0 {
		t.Skip("erase limit never reached")
	}
	// All committed data still readable.
	for lp, v := range version {
		got, err := c.Read(lp)
		if err != nil {
			t.Fatalf("lpid %d lost after bad blocks: %v", lp, err)
		}
		want := pageContent(uint64(lp), v, 4000)
		if len(got) < len(want) {
			t.Fatalf("lpid %d truncated", lp)
		}
	}
}

// TestLogDeathLeavesReadsWorking exhausts all three forward candidates of
// a log page (the §VIII-A shutdown case): writes must fail cleanly while
// reads keep working, and recovery restores a writable controller.
func TestLogDeathLeavesReadsWorking(t *testing.T) {
	c, dev := newFormatted(t)
	mustWrite(t, c, LPage{LPID: 1, Data: pageContent(1, 1, 500)})

	// Kill both log streams' current EBLOCKs plus whatever the failover
	// lands on, until the log declares itself dead.
	died := false
	for attempt := 0; attempt < 20 && !died; attempt++ {
		ch, eb, wb := c.prov.LogCursor()
		if eb >= 0 && wb < c.geo.WBlocksPerEBlock() {
			if w, _ := dev.IsWritten(ch, eb, wb); !w {
				dev.FailNextProgram(ch, eb, wb)
			}
		}
		// Also pre-fail a broad set of upcoming programs so the failover
		// candidates die too.
		dev.SetFailureProbability(1.0, int64(attempt))
		err := c.WriteBatch(0, 0, []LPage{{LPID: 2, Data: pageContent(2, uint64(attempt), 200)}})
		if err != nil && c.log.Dead() {
			died = true
		}
		dev.SetFailureProbability(0, 0)
	}
	if !died {
		t.Skip("log did not die under injected failures")
	}
	// Writes now fail...
	if err := c.WriteBatch(0, 0, []LPage{{LPID: 3, Data: []byte{1}}}); err == nil {
		t.Fatal("write succeeded on a dead log")
	}
	// ...but committed data stays readable.
	checkRead(t, c, 1, pageContent(1, 1, 500))
	// And recovery on the same device brings back a writable controller.
	c.Crash()
	c2 := reopen(t, dev)
	checkRead(t, c2, 1, pageContent(1, 1, 500))
	mustWrite(t, c2, LPage{LPID: 4, Data: pageContent(4, 1, 100)})
	checkRead(t, c2, 4, pageContent(4, 1, 100))
}
