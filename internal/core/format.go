package core

import (
	"eleos/internal/flash"
	"eleos/internal/wal"
)

// Format initialises a fresh device: reserves the checkpoint area, starts
// the log, and writes the initial checkpoint so Open can always recover.
func Format(dev *flash.Device, cfg Config) (*Controller, error) {
	c, err := newController(dev, cfg)
	if err != nil {
		return nil, err
	}
	if err := dev.Erase(ckptChannel, ckptEBlockA); err != nil {
		return nil, err
	}
	if err := dev.Erase(ckptChannel, ckptEBlockB); err != nil {
		return nil, err
	}
	if err := c.st.Reserve(ckptChannel, ckptEBlockA); err != nil {
		return nil, err
	}
	if err := c.st.Reserve(ckptChannel, ckptEBlockB); err != nil {
		return nil, err
	}
	c.log, err = wal.New(logSink{c}, c.geo.WBlockBytes, wal.WithRegistry(c.reg), wal.WithTracer(c.trc))
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkpointLocked(); err != nil {
		return nil, err
	}
	return c, nil
}
