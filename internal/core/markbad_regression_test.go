package core

import (
	"errors"
	"testing"

	"eleos/internal/addr"
	"eleos/internal/flash"
	"eleos/internal/record"
	"eleos/internal/summary"
)

// TestGCMarkBadDropsCursor pins the exact interleaving behind the chaos
// corpus flake `provision: apply close: eblock not open: (ch,eb) is bad`
// (ROADMAP Known issues): a migration of the *open* user EBLOCK relocates
// its pages, then hits an injected erase fault in eraseAndFreeLocked. The
// EBLOCK is marked Bad, but before the fix the provisioner's user cursor
// was only dropped on the erase success path, so the next ProvisionBatch
// planned pages into the Bad EBLOCK and applyClose failed. Single channel
// makes the interleaving deterministic: the follow-up write has no other
// cursor to land on.
func TestGCMarkBadDropsCursor(t *testing.T) {
	geo := flash.Geometry{
		Channels: 1, EBlocksPerChannel: 16,
		EBlockBytes: 256 << 10, WBlockBytes: 16 << 10, RBlockBytes: 4 << 10,
	}
	dev := flash.MustNewDevice(geo, flash.Latency{})
	c, err := Format(dev, testConfig())
	if err != nil {
		t.Fatalf("Format: %v", err)
	}

	// Open the channel's user cursor with real data.
	want1 := pageContent(100, 1, 3000)
	if err := c.WriteBatch(0, 0, []LPage{{LPID: 100, Data: want1}}); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}

	c.mu.Lock()
	eb := -1
	for _, ref := range c.st.OpenEBlocks() {
		if ref.Stream == record.StreamUser && ref.Channel == 0 {
			eb = ref.EBlock
		}
	}
	if eb < 0 {
		c.mu.Unlock()
		t.Fatal("no open user EBLOCK after a write")
	}

	// Migrate the open user EBLOCK with the next erase armed to fail —
	// exactly what a program fault on the open EBLOCK triggers via
	// migrateFailedLocked. Relocation succeeds (data is safe at its new
	// address), the erase faults, and the EBLOCK goes Bad.
	dev.FailNthErase(1)
	merr := c.migrateEBlockLocked(0, eb, 0)
	c.mu.Unlock()
	if merr == nil {
		t.Fatal("migration succeeded; the armed erase fault never fired")
	}
	if !errors.Is(merr, flash.ErrEraseFailed) {
		t.Fatalf("migration error = %v, want injected erase failure", merr)
	}
	d, err := c.st.Desc(0, eb)
	if err != nil {
		t.Fatalf("Desc: %v", err)
	}
	if d.State != summary.Bad {
		t.Fatalf("EBLOCK state after failed erase = %v, want Bad", d.State)
	}

	// The regression: follow-up writes on this channel must open a fresh
	// EBLOCK, not program through the stale cursor into the Bad one. Write
	// more than one EBLOCK's worth so the cursor EBLOCK fills and closes —
	// the buggy interleaving only surfaced at close time, as applyClose on
	// the Bad EBLOCK.
	wants := map[uint64][]byte{}
	written := 0
	for lpid := uint64(200); written < geo.EBlockBytes+geo.WBlockBytes; lpid++ {
		data := pageContent(lpid, 1, 14000)
		if err := c.WriteBatch(0, 0, []LPage{{LPID: addr.LPID(lpid), Data: data}}); err != nil {
			t.Fatalf("WriteBatch after MarkBad planned into the dead cursor: %v", err)
		}
		wants[lpid] = data
		written += len(data)
	}

	checkRead(t, c, 100, want1)
	for lpid, data := range wants {
		checkRead(t, c, addr.LPID(lpid), data)
	}
}
