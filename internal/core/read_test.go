package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"eleos/internal/addr"
	"eleos/internal/flash"
)

func cachedConfig() Config {
	cfg := testConfig()
	cfg.ReadCacheBytes = 1 << 20
	return cfg
}

func newFormattedCfg(t *testing.T, cfg Config) (*Controller, *flash.Device) {
	t.Helper()
	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	c, err := Format(dev, cfg)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return c, dev
}

func TestReadBatchScatterGather(t *testing.T) {
	c, _ := newFormatted(t)
	var pages []LPage
	sizes := []int{100, 1920, 64, 4000, 777, 2048}
	for i, sz := range sizes {
		pages = append(pages, LPage{LPID: addr.LPID(i + 1), Data: pageContent(uint64(i+1), 1, sz)})
	}
	mustWrite(t, c, pages...)

	lpids := []addr.LPID{3, 1, 99, 6, 2, 4, 5} // out of order, one unmapped
	got, err := c.ReadBatch(lpids)
	if err != nil {
		t.Fatalf("ReadBatch: %v", err)
	}
	if len(got) != len(lpids) {
		t.Fatalf("ReadBatch returned %d results, want %d", len(got), len(lpids))
	}
	if got[2] != nil {
		t.Fatalf("unmapped LPID should yield nil, got %d bytes", len(got[2]))
	}
	for gi, lpid := range lpids {
		if lpid == 99 {
			continue
		}
		want := pageContent(uint64(lpid), 1, sizes[int(lpid)-1])
		if !bytes.Equal(got[gi][:len(want)], want) {
			t.Fatalf("ReadBatch entry for LPID %d differs", lpid)
		}
	}
}

func TestReadBatchEmptyAndAllMissing(t *testing.T) {
	c, _ := newFormatted(t)
	if got, err := c.ReadBatch(nil); err != nil || got != nil {
		t.Fatalf("empty batch: got %v, %v", got, err)
	}
	got, err := c.ReadBatch([]addr.LPID{7, 8, 9})
	if err != nil {
		t.Fatalf("all-missing batch must not error: %v", err)
	}
	for i, d := range got {
		if d != nil {
			t.Fatalf("entry %d should be nil", i)
		}
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	for _, cached := range []bool{false, true} {
		name := "uncached"
		cfg := testConfig()
		if cached {
			name = "cached"
			cfg = cachedConfig()
		}
		t.Run(name, func(t *testing.T) {
			c, _ := newFormattedCfg(t, cfg)
			const nPages = 32
			for i := 1; i <= nPages; i++ {
				mustWrite(t, c, LPage{LPID: addr.LPID(i), Data: pageContent(uint64(i), 1, 500+i)})
			}
			var wg, wwg sync.WaitGroup
			stop := make(chan struct{})
			// Writers keep overwriting a disjoint LPID range to force
			// GC/install churn under the readers.
			wwg.Add(1)
			go func() {
				defer wwg.Done()
				v := uint64(2)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for i := nPages + 1; i <= nPages+8; i++ {
						c.WriteBatch(0, 0, []LPage{{LPID: addr.LPID(i), Data: pageContent(uint64(i), v, 900)}})
					}
					v++
				}
			}()
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 400; i++ {
						lpid := addr.LPID(1 + (w*7+i)%nPages)
						want := pageContent(uint64(lpid), 1, 500+int(lpid))
						got, err := c.Read(lpid)
						if err != nil {
							t.Errorf("Read(%d): %v", lpid, err)
							return
						}
						if !bytes.Equal(got[:len(want)], want) {
							t.Errorf("Read(%d) content differs", lpid)
							return
						}
					}
				}(w)
			}
			wg.Wait() // readers finish
			close(stop)
			wwg.Wait()
			if n := c.PinnedEBlocks(); n != 0 {
				t.Fatalf("reader pins leaked: %d", n)
			}
		})
	}
}

func TestCacheHitsSkipFlash(t *testing.T) {
	c, dev := newFormattedCfg(t, cachedConfig())
	data := pageContent(1, 1, 3000)
	mustWrite(t, c, LPage{LPID: 1, Data: data})

	if _, err := c.Read(1); err != nil { // cold: goes to flash
		t.Fatalf("Read: %v", err)
	}
	before := dev.Stats().RBlocksRead
	for i := 0; i < 50; i++ {
		got, err := c.Read(1)
		if err != nil || !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("warm Read: %v", err)
		}
	}
	if after := dev.Stats().RBlocksRead; after != before {
		t.Fatalf("warm reads touched flash: %d extra RBLOCKs", after-before)
	}
	snap := c.MetricsSnapshot()
	if snap.Counter("read.cache_hits") < 50 {
		t.Fatalf("cache_hits = %d, want >= 50", snap.Counter("read.cache_hits"))
	}
}

func TestCacheInvalidatedOnOverwrite(t *testing.T) {
	c, _ := newFormattedCfg(t, cachedConfig())
	v1 := pageContent(1, 1, 1000)
	v2 := pageContent(1, 2, 1200)
	mustWrite(t, c, LPage{LPID: 1, Data: v1})
	if _, err := c.Read(1); err != nil {
		t.Fatalf("Read v1: %v", err)
	}
	mustWrite(t, c, LPage{LPID: 1, Data: v2}) // install must invalidate
	got, err := c.Read(1)
	if err != nil {
		t.Fatalf("Read v2: %v", err)
	}
	if !bytes.Equal(got[:len(v2)], v2) {
		t.Fatalf("read returned stale bytes after overwrite")
	}
}

func TestCacheCoherentAcrossGC(t *testing.T) {
	c, _ := newFormattedCfg(t, cachedConfig())
	// Warm the cache, then churn overwrites until GC relocates, then
	// verify every surviving page re-reads exactly.
	const keep = 8
	for i := 1; i <= keep; i++ {
		mustWrite(t, c, LPage{LPID: addr.LPID(i), Data: pageContent(uint64(i), 1, 2000)})
		if _, err := c.Read(addr.LPID(i)); err != nil {
			t.Fatalf("warm Read(%d): %v", i, err)
		}
	}
	for v := uint64(1); v < 40; v++ {
		for i := 0; i < 8; i++ {
			lpid := addr.LPID(100 + i)
			if err := c.WriteBatch(0, 0, []LPage{{LPID: lpid, Data: pageContent(uint64(lpid), v, 8000)}}); err != nil {
				t.Fatalf("churn write: %v", err)
			}
		}
	}
	if c.Stats().GCEBlocksFreed == 0 {
		t.Skipf("churn did not trigger GC in this geometry")
	}
	for i := 1; i <= keep; i++ {
		want := pageContent(uint64(i), 1, 2000)
		got, err := c.Read(addr.LPID(i))
		if err != nil {
			t.Fatalf("post-GC Read(%d): %v", i, err)
		}
		if !bytes.Equal(got[:len(want)], want) {
			t.Fatalf("post-GC Read(%d) content differs", i)
		}
	}
}

func TestLengthExistsShortLockAndTypedErrors(t *testing.T) {
	c, _ := newFormatted(t)
	data := pageContent(5, 1, 999)
	mustWrite(t, c, LPage{LPID: 5, Data: data})

	n, err := c.Length(5)
	if err != nil || n != addr.AlignUp(len(data)) {
		t.Fatalf("Length = %d, %v", n, err)
	}
	if _, err := c.Length(6); !errors.Is(err, ErrNotFound) || !IsNotFound(err) {
		t.Fatalf("Length(unmapped) err = %v, want ErrNotFound", err)
	}
	if _, err := c.Read(6); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read(unmapped) err = %v, want ErrNotFound", err)
	}
	ok, err := c.Exists(5)
	if err != nil || !ok {
		t.Fatalf("Exists(5) = %v, %v", ok, err)
	}
	ok, err = c.Exists(6)
	if err != nil || ok {
		t.Fatalf("Exists(6) = %v, %v (want false, nil)", ok, err)
	}
}

func TestReadAfterCrashRejected(t *testing.T) {
	for _, cached := range []bool{false, true} {
		cfg := testConfig()
		if cached {
			cfg = cachedConfig()
		}
		c, _ := newFormattedCfg(t, cfg)
		mustWrite(t, c, LPage{LPID: 1, Data: pageContent(1, 1, 100)})
		if _, err := c.Read(1); err != nil {
			t.Fatalf("Read: %v", err)
		}
		c.Crash()
		if _, err := c.Read(1); !errors.Is(err, ErrCrashed) {
			t.Fatalf("cached=%v: Read after crash err = %v, want ErrCrashed", cached, err)
		}
		if _, err := c.ReadBatch([]addr.LPID{1}); !errors.Is(err, ErrCrashed) {
			t.Fatalf("cached=%v: ReadBatch after crash err = %v, want ErrCrashed", cached, err)
		}
	}
}

func TestSerialReadsBaselineStillCorrect(t *testing.T) {
	cfg := testConfig()
	cfg.SerialReads = true
	c, _ := newFormattedCfg(t, cfg)
	data := pageContent(3, 1, 1234)
	mustWrite(t, c, LPage{LPID: 3, Data: data})
	got, err := c.Read(3)
	if err != nil || !bytes.Equal(got[:len(data)], data) {
		t.Fatalf("serial Read: %v", err)
	}
}
