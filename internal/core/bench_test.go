package core

import (
	"fmt"
	"sync"
	"testing"

	"eleos/internal/addr"
	"eleos/internal/flash"
)

// Micro-benchmarks of the controller itself (wall-clock cost of the
// simulation, complementing the virtual-time experiment benchmarks at the
// repository root).

func benchController(b *testing.B) *Controller {
	b.Helper()
	geo := flash.Geometry{
		Channels: 8, EBlocksPerChannel: 64,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}
	dev := flash.MustNewDevice(geo, flash.Latency{})
	cfg := DefaultConfig()
	cfg.AutoCheckpointLogBytes = 8 << 20 // keep truncation ahead of the log
	c, err := Format(dev, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkWriteBatchVP measures batched variable-size writes through the
// whole controller stack (provisioning, logging, media programs, install).
func BenchmarkWriteBatchVP(b *testing.B) {
	for _, pages := range []int{16, 256} {
		b.Run(fmt.Sprintf("pages%d", pages), func(b *testing.B) {
			c := benchController(b)
			data := make([]byte, 1920)
			batch := make([]LPage, pages)
			// Steady state: a bounded working set is overwritten, so GC
			// has garbage to reclaim no matter how long the bench runs.
			const workingSet = 40_000
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					batch[j] = LPage{LPID: addr.LPID((i*pages+j)%workingSet + 1), Data: data}
				}
				if err := c.WriteBatch(0, 0, batch); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(pages * len(data)))
		})
	}
}

// BenchmarkReadLPID measures the read path (mapping lookup + RBLOCK
// transfer + extent extraction).
func BenchmarkReadLPID(b *testing.B) {
	c := benchController(b)
	data := make([]byte, 1920)
	var batch []LPage
	for j := 0; j < 256; j++ {
		batch = append(batch, LPage{LPID: addr.LPID(j + 1), Data: data})
	}
	if err := c.WriteBatch(0, 0, batch); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Read(addr.LPID(i%256 + 1)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(data)))
}

// BenchmarkCheckpoint measures a fuzzy checkpoint after a burst of writes.
func BenchmarkCheckpoint(b *testing.B) {
	c := benchController(b)
	data := make([]byte, 1024)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 64; j++ {
			if err := c.WriteBatch(0, 0, []LPage{{LPID: addr.LPID(j + 1), Data: data}}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := c.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecovery measures Open() against a device with a realistic mix
// of checkpointed state and log tail.
func BenchmarkRecovery(b *testing.B) {
	geo := flash.Geometry{
		Channels: 8, EBlocksPerChannel: 64,
		EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
	}
	dev := flash.MustNewDevice(geo, flash.Latency{})
	cfg := DefaultConfig()
	c, err := Format(dev, cfg)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1500)
	for j := 0; j < 200; j++ {
		if err := c.WriteBatch(0, 0, []LPage{{LPID: addr.LPID(j%40 + 1), Data: data}}); err != nil {
			b.Fatal(err)
		}
		if j == 100 {
			if err := c.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
	}
	c.Crash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(dev, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentSessions measures wall-clock write throughput as the
// writer count grows. The device emulates NAND channel occupancy in real
// time (SetWallLatencyScale), so the numbers show what the pipelined write
// path buys: per-channel workers overlap programs across channels and
// concurrent committers share forced log pages (group commit), where a
// single writer leaves every channel idle during its commit force.
func BenchmarkConcurrentSessions(b *testing.B) {
	const (
		pagesPerBatch = 4 // stripes over a subset of channels, so batches overlap
		pageBytes     = 1920
		workingSet    = 2000
	)
	for _, writers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("writers%d", writers), func(b *testing.B) {
			geo := flash.Geometry{
				Channels: 8, EBlocksPerChannel: 64,
				EBlockBytes: 1 << 20, WBlockBytes: 32 << 10, RBlockBytes: 4 << 10,
			}
			dev := flash.MustNewDevice(geo, flash.TypicalNANDLatency())
			dev.SetWallLatencyScale(1)
			cfg := DefaultConfig()
			cfg.AutoCheckpointLogBytes = 16 << 20
			c, err := Format(dev, cfg)
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, pageBytes)
			sids := make([]uint64, writers)
			for w := range sids {
				if sids[w], err = c.OpenSession(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				n := b.N / writers
				if w < b.N%writers {
					n++
				}
				wg.Add(1)
				go func(w, n int) {
					defer wg.Done()
					base := uint64(w+1) * 1_000_000
					batch := make([]LPage, pagesPerBatch)
					for i := 0; i < n; i++ {
						for j := range batch {
							lpid := base + uint64((i*pagesPerBatch+j)%workingSet)
							batch[j] = LPage{LPID: addr.LPID(lpid), Data: data}
						}
						if err := c.WriteBatch(sids[w], uint64(i+1), batch); err != nil {
							b.Error(err)
							return
						}
					}
				}(w, n)
			}
			wg.Wait()
			b.SetBytes(int64(pagesPerBatch * pageBytes))
		})
	}
}
