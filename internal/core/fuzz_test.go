package core

import (
	"math/rand"
	"testing"
)

// TestDecodeBatchNeverPanics hammers the wire-batch parser (§IX-A2) with
// arbitrary bytes — a hostile host must not crash the controller.
func TestDecodeBatchNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(300))
		rng.Read(b)
		pages, err := DecodeBatch(b)
		if err == nil && pages == nil {
			t.Fatal("nil pages with nil error")
		}
	}
}

// TestDecodeCkptPartNeverPanics hammers the checkpoint part parser.
func TestDecodeCkptPartNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		_, _ = decodeCkptPart(b)
	}
}

// TestDecodeCkptNeverPanics hammers the checkpoint record parser.
func TestDecodeCkptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(400))
		rng.Read(b)
		_, _ = decodeCkpt(b)
	}
	// Mutations of a valid record must be caught by the CRC.
	valid := encodeCkpt(&ckptRecord{Seq: 3, TruncLSN: 7, StartLSN: 1})
	for i := 0; i < 2000; i++ {
		b := append([]byte(nil), valid...)
		b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		if ck, err := decodeCkpt(b); err == nil && ck == nil {
			t.Fatal("nil record with nil error")
		}
	}
}
