package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"
	"unsafe"
)

// TestDecodeBatchNeverPanics hammers the wire-batch parser (§IX-A2) with
// arbitrary bytes — a hostile host must not crash the controller.
func TestDecodeBatchNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(300))
		rng.Read(b)
		pages, err := DecodeBatch(b)
		if err == nil && pages == nil {
			t.Fatal("nil pages with nil error")
		}
	}
}

// TestDecodeBatchForgedCount plants hostile count and per-page length
// fields behind VALID checksums — a host can always produce a correct
// CRC over malicious content, so the CRC is no defence. The parser must
// reject them cheaply, never sizing an allocation from the forged field.
func TestDecodeBatchForgedCount(t *testing.T) {
	forge := func(mutate func(body []byte) []byte) []byte {
		body := binary.LittleEndian.AppendUint32(nil, 0x454C4246) // batchMagic
		body = binary.LittleEndian.AppendUint32(body, 1)
		body = binary.LittleEndian.AppendUint64(body, 42)                       // lpid
		body = binary.LittleEndian.AppendUint32(body, 4)                        // len
		body = append(body, 'd', 'a', 't', 'a')                                 //
		body = mutate(body)                                                     //
		return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body)) // valid CRC
	}
	cases := map[string][]byte{
		// count = 4G claims ~200 GB of []LPage backing: must be rejected
		// by the buffer-capacity bound, not allocated.
		"count 0xFFFFFFFF": forge(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 0xFFFFFFFF)
			return b
		}),
		"count just past capacity": forge(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 2)
			return b
		}),
		// page length pointing far past the CRC-covered body.
		"len 0xFFFFFFF0": forge(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:], 0xFFFFFFF0)
			return b
		}),
	}
	for name, wire := range cases {
		if _, err := DecodeBatch(wire); !errors.Is(err, ErrBadBatch) {
			t.Errorf("%s: err = %v, want ErrBadBatch", name, err)
		}
	}
	// The unmutated encoding stays decodable (the bound is not too tight).
	good := forge(func(b []byte) []byte { return b })
	pages, err := DecodeBatch(good)
	if err != nil || len(pages) != 1 || string(pages[0].Data) != "data" {
		t.Fatalf("well-formed batch rejected: %v", err)
	}
}

// FuzzDecodeBatch fuzzes the wire-batch parser directly: any input must
// either decode or fail with ErrBadBatch — no panics, no giant
// allocations, and round-tripping a decoded batch must be stable.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBatch([]LPage{{LPID: 1, Data: []byte("x")}}))
	f.Add(EncodeBatch([]LPage{
		{LPID: 7, Data: make([]byte, 100)},
		{LPID: 9, Data: []byte("variable size")},
	}))
	hostile := binary.LittleEndian.AppendUint32(nil, 0x454C4246)
	hostile = binary.LittleEndian.AppendUint32(hostile, 0xFFFFFFFF)
	f.Add(binary.LittleEndian.AppendUint32(hostile, crc32.ChecksumIEEE(hostile)))
	f.Fuzz(func(t *testing.T, wire []byte) {
		pages, err := DecodeBatch(wire)
		if err != nil {
			if !errors.Is(err, ErrBadBatch) {
				t.Fatalf("non-ErrBadBatch failure: %v", err)
			}
			return
		}
		// Anything that decodes must re-encode to a decodable batch with
		// identical content.
		again, err := DecodeBatch(EncodeBatch(pages))
		if err != nil || len(again) != len(pages) {
			t.Fatalf("round trip: %d pages, %v", len(again), err)
		}
		for i := range pages {
			if again[i].LPID != pages[i].LPID || !bytes.Equal(again[i].Data, pages[i].Data) {
				t.Fatalf("page %d content changed across round trip", i)
			}
		}
	})
}

// TestDecodeCkptPartNeverPanics hammers the checkpoint part parser.
func TestDecodeCkptPartNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		_, _ = decodeCkptPart(b)
	}
}

// TestDecodeCkptNeverPanics hammers the checkpoint record parser.
func TestDecodeCkptNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(400))
		rng.Read(b)
		_, _ = decodeCkpt(b)
	}
	// Mutations of a valid record must be caught by the CRC.
	valid := encodeCkpt(&ckptRecord{Seq: 3, TruncLSN: 7, StartLSN: 1})
	for i := 0; i < 2000; i++ {
		b := append([]byte(nil), valid...)
		b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		if ck, err := decodeCkpt(b); err == nil && ck == nil {
			t.Fatal("nil record with nil error")
		}
	}
}

// FuzzAppendBatchView pins the zero-copy decode to the copying one: on
// every input the two must agree on error-ness, and on success the
// views must carry identical content while aliasing the wire buffer
// (the coalesced path feeds AppendBatchView straight from pooled
// request frames, so a divergence here is silent data corruption).
func FuzzAppendBatchView(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBatch(nil))
	f.Add(EncodeBatch([]LPage{{LPID: 1, Data: []byte("x")}}))
	f.Add(EncodeBatch([]LPage{
		{LPID: 7, Data: make([]byte, 100)},
		{LPID: 9, Data: []byte("variable size")},
	}))
	f.Fuzz(func(t *testing.T, wire []byte) {
		copied, cerr := DecodeBatch(wire)
		scratch := make([]LPage, 0, 4)
		views, verr := AppendBatchView(scratch, wire)
		if (cerr == nil) != (verr == nil) {
			t.Fatalf("decoders disagree: copy=%v view=%v", cerr, verr)
		}
		if cerr != nil {
			if !errors.Is(verr, ErrBadBatch) {
				t.Fatalf("non-ErrBadBatch failure: %v", verr)
			}
			return
		}
		if len(views) != len(copied) {
			t.Fatalf("page count: view %d, copy %d", len(views), len(copied))
		}
		for i := range views {
			if views[i].LPID != copied[i].LPID || !bytes.Equal(views[i].Data, copied[i].Data) {
				t.Fatalf("page %d differs between view and copy decode", i)
			}
			// Non-empty view data must alias wire, not a fresh allocation.
			if len(views[i].Data) > 0 {
				base := uintptr(unsafe.Pointer(&wire[0]))
				d := uintptr(unsafe.Pointer(&views[i].Data[0]))
				if d < base || d >= base+uintptr(len(wire)) {
					t.Fatalf("page %d view does not alias the wire buffer", i)
				}
			}
		}
	})
}
