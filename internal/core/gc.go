package core

import (
	"fmt"
	"math"

	"eleos/internal/addr"
	"eleos/internal/flash"
	gcpolicy "eleos/internal/gc"
	"eleos/internal/provision"
	"eleos/internal/record"
	"eleos/internal/summary"
	"eleos/internal/trace"
)

// maybeGCLocked runs garbage collection on every channel whose free-EBLOCK
// fraction has fallen below the configured threshold (§VI).
func (c *Controller) maybeGCLocked() {
	for ch := 0; ch < c.geo.Channels; ch++ {
		if c.freeFractionLocked(ch) < c.cfg.GCFreeFraction {
			_ = c.gcChannelLocked(ch)
		}
	}
}

// gcAllLocked collects on all channels regardless of thresholds (used when
// provisioning runs out of space). It first takes a checkpoint so the log
// truncation LSN advances and truncated log EBLOCKs become reclaimable —
// under log-heavy workloads those are usually the bulk of the reclaimable
// space.
func (c *Controller) gcAllLocked() {
	if !c.inCheckpoint {
		_ = c.checkpointLocked()
	}
	for ch := 0; ch < c.geo.Channels; ch++ {
		_ = c.gcChannelLocked(ch)
	}
}

// GCNow forces a GC pass on one channel (tests and benchmarks).
func (c *Controller) GCNow(ch int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return c.gcChannelLocked(ch)
}

func (c *Controller) freeFractionLocked(ch int) float64 {
	return float64(c.st.FreeCount(ch)) / float64(c.geo.EBlocksPerChannel)
}

func (c *Controller) gcChannelLocked(ch int) error {
	for round := 0; round < c.cfg.GCMaxRounds; round++ {
		if c.freeFractionLocked(ch) >= c.cfg.GCFreeFraction*1.5 && round > 0 {
			return nil
		}
		eb, ok := c.selectVictimLocked(ch)
		c.met.gcVictims.Inc()
		if !ok {
			return nil
		}
		if err := c.gcEBlockLocked(ch, eb); err != nil {
			return err
		}
	}
	return nil
}

// selectVictimLocked picks a used EBLOCK to collect. The core owns the
// safety rules — skipping EBLOCKs with inflight or pinned actions and
// the truncated-log fast path (no data movement, always the "smallest
// score") — and delegates only the ranking to the pluggable policy
// (internal/gc): each eligible EBLOCK becomes a gcpolicy.Candidate and
// the lowest score wins; +Inf declines the candidate.
func (c *Controller) selectVictimLocked(ch int) (int, bool) {
	best, bestScore := -1, math.Inf(1)
	for _, eb := range c.st.UsedEBlocks(ch) {
		if c.inflight[[2]int{ch, eb}] > 0 || c.pinned[[2]int{ch, eb}] > 0 {
			// A concurrent action still has programs queued against this
			// EBLOCK (it fills and closes in the same plan, so it can be
			// Used before its last program lands), or has landed programs
			// but is still waiting on its commit force with c.mu released
			// and its mapping install pending. Either way the validity
			// scan would see its pages as unreferenced and erasing the
			// EBLOCK would lose committed data; skip it this round.
			continue
		}
		d, err := c.st.Desc(ch, eb)
		if err != nil {
			continue
		}
		if d.Stream == record.StreamLog {
			if record.LSN(d.Timestamp) < c.lastTruncLSN {
				return eb, true // reclaim immediately, no movement
			}
			continue
		}
		if d.Avail == 0 {
			continue // nothing reclaimable
		}
		age := c.updateSeq - d.Timestamp + 1
		if c.updateSeq < d.Timestamp {
			age = 1
		}
		score := c.gcPolicy.Score(gcpolicy.Candidate{
			Ch:         ch,
			EB:         eb,
			Avail:      d.Avail,
			CapBytes:   uint64(c.geo.EBlockBytes),
			Age:        age,
			EraseCount: d.EraseCount,
			Timestamp:  d.Timestamp,
		})
		if score < bestScore {
			best, bestScore = eb, score
		}
	}
	return best, best >= 0
}

// gcEBlockLocked collects one EBLOCK: moves its valid LPAGEs to open GC
// EBLOCKs of similar age, then erases it (§VI).
func (c *Controller) gcEBlockLocked(ch, eb int) error {
	d, err := c.st.Desc(ch, eb)
	if err != nil {
		return err
	}
	if d.State != summary.Used {
		return nil
	}
	if start := c.trc.Now(); !start.IsZero() {
		defer func() {
			c.trc.Span(trace.KGC, 0, 0, 0, start, int64(ch), int64(eb))
		}()
	}
	c.stats.GCRounds++
	c.met.gcRounds.Inc()
	if d.Stream == record.StreamLog {
		return c.eraseAndFreeLocked(ch, eb)
	}
	entries, err := c.readMetaLocked(ch, eb, d)
	if err != nil {
		// Metadata unreadable: the EBLOCK was erased after a committed GC
		// pre-crash (nothing reachable lives here) — reclaim it.
		c.stats.GCMetaUnreadable++
		return c.eraseAndFreeLocked(ch, eb)
	}
	srcTS := d.Timestamp
	if c.gcRetime {
		// Circular-log cleaning (LLAMA) re-appends survivors at the tail:
		// give relocations the current time, or the moved cold data would
		// immediately be "oldest" again and the cleaner would livelock
		// reshuffling it.
		srcTS = c.updateSeq
	}
	if err := c.relocateLocked(ch, eb, entries, srcTS, record.ActionGC); err != nil {
		return err
	}
	if err := c.crashIf("gc.before-erase"); err != nil {
		return err
	}
	return c.eraseAndFreeLocked(ch, eb)
}

// readMetaLocked reads and decodes an EBLOCK's flushed metadata block.
func (c *Controller) readMetaLocked(ch, eb int, d summary.Descriptor) ([]summary.MetaEntry, error) {
	if d.MetaWBlocks == 0 {
		return nil, fmt.Errorf("core: eblock (%d,%d) has no metadata", ch, eb)
	}
	w := c.geo.WBlockBytes
	raw, nR, err := c.dev.ReadExtent(ch, eb, int(d.DataWBlocks)*w, int(d.MetaWBlocks)*w)
	if err != nil {
		return nil, err
	}
	c.stats.ReadRBlocks += int64(nR)
	return summary.DecodeMetaBlock(raw)
}

// currentAddrLocked returns the authoritative current address for a TAG,
// dispatching on the page type (user data, mapping page, small-table page,
// summary page, session snapshot).
func (c *Controller) currentAddrLocked(e summary.MetaEntry) (addr.PhysAddr, error) {
	switch e.Type {
	case addr.PageUser:
		return c.mt.Get(e.LPID)
	case addr.PageMap:
		return c.mt.PageAddr(int(e.LPID.TableIndex())), nil
	case addr.PageSmallMap:
		return c.mt.SmallPageAddr(int(e.LPID.TableIndex())), nil
	case addr.PageSummary:
		loc := c.st.Locator()
		idx := int(e.LPID.TableIndex())
		if idx < 0 || idx >= len(loc) {
			return 0, nil
		}
		return loc[idx], nil
	case addr.PageSession:
		return c.sessSnapAddr, nil
	default:
		return 0, nil
	}
}

// installRelocationLocked conditionally installs a relocation old->new for
// the TAG's page type (§VI-C). It reports whether the install happened.
func (c *Controller) installRelocationLocked(e summary.MetaEntry, old, new addr.PhysAddr, lsn record.LSN) (bool, error) {
	switch e.Type {
	case addr.PageUser:
		ok, err := c.mt.SetIf(e.LPID, old, new, lsn)
		if ok {
			// Relocation preserves content but retires the old address;
			// invalidating keeps the cache's coherence rule uniform: any
			// mapping change drops the entry and poisons in-flight fills.
			c.invalidateRead(e.LPID)
		}
		return ok, err
	case addr.PageMap:
		return c.mt.SetPageAddrIf(int(e.LPID.TableIndex()), old, new, lsn), nil
	case addr.PageSmallMap:
		return c.mt.SmallPageAddrIf(int(e.LPID.TableIndex()), old, new), nil
	case addr.PageSummary:
		return c.st.PageAddrIf(int(e.LPID.TableIndex()), old, new), nil
	case addr.PageSession:
		if c.sessSnapAddr != old {
			return false, nil
		}
		c.sessSnapAddr = new
		return true, nil
	default:
		return false, nil
	}
}

// relocateLocked moves every still-valid LPAGE out of (ch, eb) with a
// GC/migration system action. Validity uses the paper's monotonic scan:
// processing TAGs newest to oldest, valid pages' addresses strictly
// decrease; an entry whose mapped address is not below the previous valid
// one is an obsolete duplicate (§VI-C, Fig. 6).
func (c *Controller) relocateLocked(ch, eb int, entries []summary.MetaEntry, srcTS uint64, kind record.ActionKind) error {
	type victim struct {
		e   summary.MetaEntry
		old addr.PhysAddr
	}
	var valid []victim
	prevOff := c.geo.EBlockBytes + 1
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		cur, err := c.currentAddrLocked(e)
		if err != nil {
			return err
		}
		want, err := addr.Pack(ch, eb, e.Offset, e.Length)
		if err != nil {
			continue
		}
		if cur == want && e.Offset < prevOff {
			valid = append(valid, victim{e: e, old: want})
			prevOff = e.Offset
		}
	}
	if len(valid) == 0 {
		return nil
	}
	// Restore oldest-first (ascending offset) order for contiguous packing.
	for i, j := 0, len(valid)-1; i < j; i, j = i+1, j-1 {
		valid[i], valid[j] = valid[j], valid[i]
	}

	// Read the valid pages into a contiguous move buffer.
	var buf []byte
	bps := make([]provision.BatchPage, 0, len(valid))
	olds := make([]addr.PhysAddr, 0, len(valid))
	for _, v := range valid {
		data, nR, err := c.dev.ReadExtent(ch, eb, v.e.Offset, v.e.Length)
		if err != nil {
			return err
		}
		c.stats.ReadRBlocks += int64(nR)
		bps = append(bps, provision.BatchPage{LPID: v.e.LPID, Type: v.e.Type, Length: v.e.Length, BufOff: len(buf)})
		olds = append(olds, v.old)
		buf = append(buf, data...)
	}

	// System action: same code path as user writes (§VI-C).
	hint := c.lsnHint()
	plan, err := c.prov.ProvisionGC(ch, bps, srcTS, c.clock, hint)
	if err != nil {
		return err
	}
	id := c.nextAction
	c.nextAction++
	c.active[id] = hint
	lsns, err := c.logPlanLocked(id, plan, olds)
	if err != nil {
		delete(c.active, id)
		return err
	}
	failed := c.executeIOsLocked(buf, plan, flash.SrcGC)
	if len(failed) > 0 {
		c.abortActionLocked(id, plan)
		c.migrateFailedLocked(failed, 0)
		return fmt.Errorf("%w: gc action %d", ErrWriteFailed, id)
	}
	// A commit-phase failure aborts the relocation: both copies stay valid
	// (the source EBLOCK is only erased after a successful return), and the
	// abort unpins the action's truncation LSN. Aborting after a failed
	// force is safe because the unforced commit record was never written.
	if err := c.logClosesLocked(plan); err != nil {
		c.abortActionLocked(id, plan)
		return err
	}
	if _, err := c.append(record.Commit{Action: id, AKind: kind}); err != nil {
		c.abortActionLocked(id, plan)
		return err
	}
	if err := c.forceLog(); err != nil {
		c.abortActionLocked(id, plan)
		return err
	}
	if err := c.crashIf("gc.after-commit"); err != nil {
		return err
	}

	// Conditional installs; abandoned relocations become garbage at their
	// new location (old addresses were already logged in GCUpdate records).
	var abandoned []record.AddrPair
	for i, pg := range plan.Pages {
		ok, err := c.installRelocationLocked(valid[i].e, olds[i], pg.Addr, lsns[i])
		if err != nil {
			return err
		}
		if !ok {
			abandoned = append(abandoned, record.AddrPair{LPID: pg.LPID, Addr: pg.Addr})
			if err := c.st.AddAvail(pg.Addr.Channel(), pg.Addr.EBlock(), pg.Addr.Length(), lsns[i]); err != nil {
				return err
			}
		}
		c.stats.GCPagesMoved++
		c.met.gcPagesMoved.Inc()
		c.stats.GCBytesMoved += int64(pg.Addr.Length())
		c.met.gcBytesMoved.Add(int64(pg.Addr.Length()))
	}
	if err := c.lazyGarbageLocked(id, abandoned); err != nil {
		return err
	}
	delete(c.active, id)
	return nil
}

// dbgFn, when set by tests, receives internal debug traces (distinct
// from the flight recorder in internal/trace, which is always on).
var dbgFn func(format string, args ...any)

// SetTraceForTests installs a debug-trace sink (tests only).
func SetTraceForTests(fn func(format string, args ...any)) { dbgFn = fn }

func dbg(format string, args ...any) {
	if dbgFn != nil {
		dbgFn(format, args...)
	}
}

// eraseAndFreeLocked erases an EBLOCK and returns it to the free list,
// logging the transition (unforced; recovery tolerates a lost free record
// by re-collecting the EBLOCK).
func (c *Controller) eraseAndFreeLocked(ch, eb int) error {
	d, _ := c.st.Desc(ch, eb)
	dbg("eraseAndFree (%d,%d) state=%v stream=%v ts=%d trunc=%d hint=%d", ch, eb, d.State, d.Stream, d.Timestamp, c.lastTruncLSN, c.lsnHint())
	if c.inflight[[2]int{ch, eb}] > 0 || c.pinned[[2]int{ch, eb}] > 0 {
		// Should be unreachable: victim selection skips these. Counted
		// rather than panicking so a chaos schedule that finds a hole in
		// the protocol fails its invariant check with a replayable seed.
		c.met.eraseWhilePinned.Inc()
	}
	// Drop any provisioner cursor BEFORE attempting the erase: whether the
	// erase succeeds (EBLOCK goes Free) or fails (MarkBad), this EBLOCK
	// must never be programmed through a stale open-stream cursor again.
	// Dropping only on the success path left a window where a migration of
	// an open user EBLOCK hit an injected erase fault, marked the EBLOCK
	// Bad, and the next ProvisionBatch planned into the dead cursor — the
	// chaos corpus surfaced it as `apply close: eblock not open: (ch,eb)
	// is bad` (see TestGCMarkBadDropsCursor).
	c.prov.DropOpen(ch, eb)
	if err := c.dev.Erase(ch, eb); err != nil {
		_ = c.st.MarkBad(ch, eb, c.lsnHint())
		return err
	}
	if err := c.st.FreeEBlock(ch, eb, c.lsnHint()); err != nil {
		return err
	}
	if _, err := c.append(record.FreeEBlock{Channel: uint32(ch), EBlock: uint32(eb)}); err != nil {
		return err
	}
	c.stats.GCEBlocksFreed++
	c.met.gcFreed.Inc()
	return nil
}
