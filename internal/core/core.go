// Package core implements ELEOS, the SSD controller FTL of the paper:
// a batched write interface for variable-size pages (§III), with
// provisioning and I/O command generation (§IV), the RBLOCK-aligned read
// path (§V), minimum-cost-decline garbage collection with hot/cold
// separation (§VI), write-failure handling by EBLOCK migration (§VII), and
// redo-only logging, fuzzy checkpointing, and two-pass crash recovery
// (§VIII).
//
// The controller operates over the flash media simulator. All multi-page
// writes execute as *system actions* with initialization, execution and
// commit phases; a write buffer's pages become visible in the mapping
// table all-or-nothing, in buffer order, and sessions order entire buffers
// by write sequence number (WSN).
//
// A Controller is obtained by formatting a device (Format) or recovering
// one (Open). Crash simulation: SetCrashPoint makes the controller die at
// a named point; a dead controller rejects every call, and Open on the
// same device recovers exactly the committed state.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"eleos/internal/addr"
	"eleos/internal/flash"
	gcpolicy "eleos/internal/gc"
	"eleos/internal/mapping"
	"eleos/internal/metrics"
	"eleos/internal/provision"
	"eleos/internal/readcache"
	"eleos/internal/record"
	"eleos/internal/session"
	"eleos/internal/summary"
	"eleos/internal/trace"
	"eleos/internal/wal"
)

// GCPolicy selects the victim-selection strategy (§VI-A discusses the
// first three; ELEOS uses minimum cost decline). Each value maps to an
// implementation of gcpolicy.Policy; Config.GCPolicyPlugin overrides
// the enum with an arbitrary policy.
type GCPolicy int

const (
	// GCMinCostDecline scores EBLOCKs by (1-E)/(E^2*age) and collects the
	// smallest — the paper's strategy.
	GCMinCostDecline GCPolicy = iota
	// GCGreedy collects the EBLOCK with the most reclaimable space, the
	// locally-optimal strategy the paper argues against.
	GCGreedy
	// GCOldest collects the oldest EBLOCK (LLAMA's circular-log
	// cleaning), optimal only for uniform updates.
	GCOldest
	// GCCostBenefit ranks by the LFS cleaner's benefit/cost ratio
	// E·age/(2-E).
	GCCostBenefit
	// GCWearAware is min-cost-decline with a per-erase score penalty,
	// steering collection toward low-wear EBLOCKs.
	GCWearAware
)

func (p GCPolicy) String() string { return builtinPolicy(p).Name() }

// builtinPolicy maps the enum to its implementation; unknown values get
// the paper default.
func builtinPolicy(p GCPolicy) gcpolicy.Policy {
	switch p {
	case GCGreedy:
		return gcpolicy.Greedy{}
	case GCOldest:
		return gcpolicy.Oldest{}
	case GCCostBenefit:
		return gcpolicy.CostBenefit{}
	case GCWearAware:
		return gcpolicy.WearAware{}
	default:
		return gcpolicy.MinCostDecline{}
	}
}

// Config tunes the controller.
type Config struct {
	// Mapping sizes the three-level mapping table.
	Mapping mapping.Config
	// SummaryPerPage is the number of EBLOCK descriptors per summary page.
	SummaryPerPage int
	// Provision tunes write provisioning (GC buckets etc.).
	Provision provision.Config
	// GCFreeFraction triggers GC on a channel when its free-EBLOCK
	// fraction drops below this value (the paper uses 10%).
	GCFreeFraction float64
	// GCMaxRounds bounds how many EBLOCKs one GC pass may collect per
	// channel.
	GCMaxRounds int
	// GCPolicy selects the victim-selection strategy (default: the
	// paper's minimum cost decline).
	GCPolicy GCPolicy
	// GCPolicyPlugin, when non-nil, overrides GCPolicy with a custom
	// victim-selection policy. The core still enforces the safety
	// rules (inflight/pinned skip, truncated-log fast path); the plugin
	// only ranks.
	GCPolicyPlugin gcpolicy.Policy
	// GarbagePairsPerRecord chunks lazy Garbage log records.
	GarbagePairsPerRecord int
	// SessionSeed seeds random SID generation.
	SessionSeed int64
	// AutoCheckpointLogBytes forces a checkpoint after this much log
	// *space* has been consumed — every log force burns a WBLOCK-sized
	// page — so truncation keeps pace with log growth (0 disables auto
	// checkpointing). Values below a few WBLOCKs checkpoint every write.
	AutoCheckpointLogBytes int
	// ReadCacheBytes sizes the server-side read cache
	// (internal/readcache) in bytes. 0 — the default — disables caching:
	// every Read goes to flash, and the paper-fidelity read-amplification
	// stats (Stats.ReadRBlocks) count exactly the media transfers the
	// paper's §V model predicts. A caching controller still counts only
	// real media transfers there, so warm workloads show ReadRBlocks ≪
	// reads — that gap is the cache's proof of work.
	ReadCacheBytes int64
	// SerialReads forces the pre-concurrent read path that holds the
	// global controller lock across the flash transfer. It exists only as
	// the A/B baseline for the concurrent-reader benchmark; leave false.
	SerialReads bool
	// Metrics is the registry every layer (core, flash, wal) records
	// into. Nil gets a private enabled registry; pass
	// metrics.NewDisabled() to strip instrumentation entirely (the
	// metricsoverhead benchmark's baseline).
	Metrics *metrics.Registry
	// Trace is the flight recorder every layer (core, flash, wal) emits
	// events into. Nil gets a private always-on recorder of
	// trace.DefaultSize — tracing is on by default so the last few
	// thousand events are available after any incident; pass
	// trace.NewDisabled() to strip it (the traceoverhead benchmark's
	// baseline).
	Trace *trace.Recorder
}

// DefaultConfig returns production-like defaults.
func DefaultConfig() Config {
	return Config{
		Mapping:                mapping.DefaultConfig(),
		SummaryPerPage:         64,
		Provision:              provision.DefaultConfig(),
		GCFreeFraction:         0.10,
		GCMaxRounds:            8,
		GarbagePairsPerRecord:  256,
		SessionSeed:            1,
		AutoCheckpointLogBytes: 0,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Mapping.EntriesPerPage == 0 {
		c.Mapping = d.Mapping
	}
	if c.SummaryPerPage == 0 {
		c.SummaryPerPage = d.SummaryPerPage
	}
	if c.Provision.GCBuckets == 0 {
		c.Provision = d.Provision
	}
	if c.GCFreeFraction == 0 {
		c.GCFreeFraction = d.GCFreeFraction
	}
	if c.GCMaxRounds == 0 {
		c.GCMaxRounds = d.GCMaxRounds
	}
	if c.GarbagePairsPerRecord == 0 {
		c.GarbagePairsPerRecord = d.GarbagePairsPerRecord
	}
	if c.SessionSeed == 0 {
		c.SessionSeed = d.SessionSeed
	}
	return c
}

// Errors.
var (
	ErrCrashed      = errors.New("core: controller crashed; recover with Open")
	ErrEmptyBatch   = errors.New("core: empty write buffer")
	ErrBadLPID      = errors.New("core: invalid application LPID")
	ErrNotFound     = errors.New("core: LPID not mapped")
	ErrWriteFailed  = errors.New("core: write buffer aborted by media failure; retry")
	ErrNoCheckpoint = errors.New("core: no valid checkpoint record on device")
)

// LPage is one logical page of a write buffer. Data of any length is
// accepted; it is stored padded to the 64-byte LPAGE alignment and reads
// return the padded image (applications track exact lengths themselves,
// as with the paper's in-batch metadata).
type LPage struct {
	LPID addr.LPID
	Data []byte
}

// Stats counts controller activity.
type Stats struct {
	BatchesWritten   int64
	PagesWritten     int64
	BytesAccepted    int64 // logical bytes handed to WriteBatch
	BytesStored      int64 // aligned LPAGE bytes placed on flash
	Reads            int64
	ReadRBlocks      int64 // RBLOCKs transferred for reads (amplification)
	IOCommands       int64
	LogRecords       int64
	LogForces        int64
	StaleWrites      int64
	GroupWrites      int64 // actions that merged ≥2 coalesced flushes
	GroupedFlushes   int64 // flushes written as part of such actions
	AbortedActions   int64
	GCRounds         int64
	GCPagesMoved     int64
	GCBytesMoved     int64
	GCEBlocksFreed   int64
	GCMetaUnreadable int64
	Migrations       int64
	Checkpoints      int64
}

// checkpoint area location: the first two EBLOCKs of channel 0 are
// reserved and ping-pong full checkpoint records (§VIII-B "well-known
// location").
const (
	ckptChannel = 0
	ckptEBlockA = 0
	ckptEBlockB = 1
)

// Controller is the ELEOS FTL.
//
// Concurrency: c.mu protects all controller state, but the write path holds
// it only for short critical sections — WSN admission, the
// provision/log/submit sequence, and the install — and releases it while
// flash programs execute on the per-channel device workers and while the
// commit force runs (see DESIGN.md §4, "Concurrency model"). GC, migration
// and checkpointing run entirely under c.mu.
type Controller struct {
	mu      sync.Mutex
	wsnCond *sync.Cond // admission waiters (WSN order, duplicate claims)
	ioCond  *sync.Cond // waiters draining in-flight programs per EBLOCK

	cfg  Config
	dev  *flash.Device
	geo  flash.Geometry
	st   *summary.Table
	mt   *mapping.Table
	sess *session.Table
	prov *provision.Provisioner
	log  *wal.Log

	updateSeq    uint64                // timestamp proxy (update sequence number)
	nextAction   uint64                // next system action ID
	active       map[uint64]record.LSN // active actions -> first LSN
	sessSnapAddr addr.PhysAddr         // current durable session snapshot

	// inflight counts programs queued on the device workers per (channel,
	// eblock). GC victim selection, checkpoint force-close and migration
	// must not touch an EBLOCK while its count is non-zero.
	inflight map[[2]int]int
	// pinned counts actions whose programs landed on an EBLOCK but whose
	// mapping install (or abort) has not happened yet. A user action's
	// commit force releases c.mu with its programs already drained from
	// inflight; without the pin, GC running in that window would scan the
	// freshly closed EBLOCK, find its pages unreferenced (the mapping
	// still points at the old versions), and erase it — the action would
	// then install addresses into erased flash. Pins are taken at submit
	// and released at install/abort; GC victim selection and migration
	// skip or wait on them exactly like inflight.
	pinned map[[2]int]int
	// wsnInflight claims a (sid, wsn) admission while its batch runs with
	// c.mu released, so a concurrent duplicate submission cannot be
	// admitted twice.
	wsnInflight map[[2]uint64]bool

	hintLSN      atomic.Uint64 // mirrors log.NextLSN without taking the log lock
	ckptSeq      uint64
	ckptEB       int // current checkpoint-area EBLOCK (A or B)
	ckptWB       int // next WBLOCK within it
	lastTruncLSN record.LSN
	lastCkptLSN  record.LSN // log position at last checkpoint
	logBytes     int        // record bytes appended since last checkpoint

	migrationDepth int
	inCheckpoint   bool

	crashed     bool
	crashedA    atomic.Bool // lock-free mirror of crashed for the cache-hit read path
	crashPoints map[string]bool

	// recovering is set for the duration of Open so flash programs issued
	// by recovery (WAL resume, post-replay fix-ups) are attributed to
	// SrcRecovery instead of their steady-state source. Atomic because the
	// WAL sink programs without c.mu.
	recovering atomic.Bool

	// tenantWrites caches per-tenant write-attribution counter handles
	// (see tenantWriteLocked). Protected by c.mu.
	tenantWrites map[string]*tenantWriteCounters

	// gcPolicy ranks GC victims (resolved once from Config at
	// construction; see internal/gc). gcRetime marks circular-log
	// policies whose relocations take the current timestamp so moved
	// cold data does not immediately become "oldest" again.
	gcPolicy gcpolicy.Policy
	gcRetime bool

	stats Stats
	reg   *metrics.Registry
	met   coreMetrics
	trc   *trace.Recorder

	// rcache is the optional byte-budget read cache (nil when
	// Config.ReadCacheBytes is 0). Coherence is the controller's job: the
	// cache is invalidated on every user-page mapping install and GC
	// relocation under c.mu, and crash→Open builds a fresh controller —
	// and therefore a fresh, empty cache. Lock order: c.mu before the
	// cache's internal mutex, never the reverse.
	rcache *readcache.Cache
}

func newController(dev *flash.Device, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	geo := dev.Geometry()
	st, err := summary.New(geo, cfg.SummaryPerPage)
	if err != nil {
		return nil, err
	}
	mt, err := mapping.New(cfg.Mapping)
	if err != nil {
		return nil, err
	}
	prov, err := provision.New(geo, st, cfg.Provision)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:         cfg,
		dev:         dev,
		geo:         geo,
		st:          st,
		mt:          mt,
		sess:        session.New(cfg.SessionSeed),
		prov:        prov,
		nextAction:  1,
		active:      make(map[uint64]record.LSN),
		inflight:    make(map[[2]int]int),
		pinned:      make(map[[2]int]int),
		wsnInflight: make(map[[2]uint64]bool),
		ckptEB:       ckptEBlockA,
		crashPoints:  make(map[string]bool),
		tenantWrites: make(map[string]*tenantWriteCounters),
	}
	c.gcPolicy = cfg.GCPolicyPlugin
	if c.gcPolicy == nil {
		c.gcPolicy = builtinPolicy(cfg.GCPolicy)
	}
	c.gcRetime = c.gcPolicy.Name() == gcpolicy.Oldest{}.Name()
	c.hintLSN.Store(1)
	c.wsnCond = sync.NewCond(&c.mu)
	c.ioCond = sync.NewCond(&c.mu)
	c.mt.SetLoader(c.loadExtent)
	c.reg = cfg.Metrics
	if c.reg == nil {
		c.reg = metrics.New()
	}
	c.met = newCoreMetrics(c.reg)
	if cfg.ReadCacheBytes > 0 {
		c.rcache = readcache.New(readcache.Config{
			CapacityBytes: cfg.ReadCacheBytes,
			Metrics:       c.reg,
		})
	}
	dev.SetMetrics(c.reg)
	c.trc = cfg.Trace
	if c.trc == nil {
		c.trc = trace.New(trace.DefaultSize)
	}
	dev.SetTracer(c.trc)
	return c, nil
}

// loadExtent reads an LPAGE image from flash given its physical address
// (the shared loader for all table pages).
func (c *Controller) loadExtent(a addr.PhysAddr) ([]byte, error) {
	data, nR, err := c.dev.ReadExtent(a.Channel(), a.EBlock(), a.Offset(), a.Length())
	if err != nil {
		return nil, err
	}
	c.stats.ReadRBlocks += int64(nR)
	return data, nil
}

// clock returns the current update sequence number (the paper's time
// proxy).
func (c *Controller) clock() uint64 { return c.updateSeq }

// lsnHint returns a conservative lower bound for LSNs about to be
// assigned. It deliberately avoids log.NextLSN(): the WAL calls back into
// the controller (slot provisioning, program failover) while holding its
// own lock, so the hint is mirrored here instead. Atomic because the WAL
// callbacks run without c.mu (a commit force releases it).
func (c *Controller) lsnHint() record.LSN {
	h := record.LSN(c.hintLSN.Load())
	if h == 0 {
		return 1
	}
	return h
}

// append adds a log record, tracking statistics. Requires c.mu.
func (c *Controller) append(r record.Record) (record.LSN, error) {
	lsn, err := c.log.Append(r)
	if err != nil {
		return 0, err
	}
	c.hintLSN.Store(uint64(lsn + 1))
	c.stats.LogRecords++
	return lsn, nil
}

func (c *Controller) forceLog() error {
	if err := c.log.Force(); err != nil {
		return err
	}
	c.stats.LogForces++
	// Auto-checkpoint accounting tracks log *space*: every force consumes
	// a whole WBLOCK-sized log page regardless of how few records it
	// carries, and reclaiming that space needs the truncation LSN to
	// advance — i.e. a checkpoint.
	c.logBytes += c.geo.WBlockBytes
	return nil
}

// --- crash simulation -------------------------------------------------------

// SetCrashPoint arms a named crash point; the controller dies when
// execution reaches it. Used by fault-injection tests and benchmarks.
func (c *Controller) SetCrashPoint(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashPoints[name] = true
}

// Crash kills the controller immediately (simulated power loss). All
// volatile state is considered lost; recover with Open on the same device.
func (c *Controller) Crash() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = true
	c.crashedA.Store(true)
	c.wsnCond.Broadcast()
}

// Crashed reports whether the controller has died.
func (c *Controller) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// crashIf kills the controller if the named crash point is armed.
func (c *Controller) crashIf(point string) error {
	if c.crashPoints[point] {
		delete(c.crashPoints, point)
		c.crashed = true
		c.crashedA.Store(true)
		c.wsnCond.Broadcast()
		return fmt.Errorf("%w: at %q", ErrCrashed, point)
	}
	return nil
}

// --- accessors ---------------------------------------------------------------

// Stats returns a snapshot of controller statistics.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// LogStats returns the write-ahead log's activity counters; group-commit
// behaviour is visible as FreeRides and GroupCommitSize.
func (c *Controller) LogStats() wal.Stats { return c.log.Stats() }

// Device returns the underlying flash device (for media-time accounting in
// benchmarks).
func (c *Controller) Device() *flash.Device { return c.dev }

// Geometry returns the device geometry.
func (c *Controller) Geometry() flash.Geometry { return c.geo }

// UpdateSeq returns the current update sequence number.
func (c *Controller) UpdateSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.updateSeq
}

// FreeFraction returns the fraction of a channel's EBLOCKs that are free.
func (c *Controller) FreeFraction(ch int) float64 {
	return float64(c.st.FreeCount(ch)) / float64(c.geo.EBlocksPerChannel)
}

// MaxLPageBytes returns the largest storable LPAGE for this geometry.
func (c *Controller) MaxLPageBytes() int { return c.prov.MaxLPageBytes() }

// --- sessions ---------------------------------------------------------------

// OpenSession opens a durable write-ordering session and returns its SID
// (§III-A2). The session carries the default (empty) tenant tag.
func (c *Controller) OpenSession() (uint64, error) {
	return c.OpenSessionTenant("", 0)
}

// OpenSessionTenant opens a session tagged with a tenant name and
// priority. The tag is durable: it rides the forced SessionOpen log
// record and the checkpoint session snapshot, so recovery re-attributes
// the session to its tenant — admission accounting and QoS survive
// crashes and reconnects.
func (c *Controller) OpenSessionTenant(tenant string, priority uint8) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrashed
	}
	sid := c.sess.OpenTenant(tenant, priority)
	if _, err := c.append(record.SessionOpen{SID: sid, Priority: priority, Tenant: tenant}); err != nil {
		return 0, err
	}
	if err := c.forceLog(); err != nil {
		return 0, err
	}
	return sid, nil
}

// SessionTenant returns a session's tenant tag and priority. It takes
// only the session table's own lock, so the server's per-flush tenant
// attribution never contends with the write path on c.mu.
func (c *Controller) SessionTenant(sid uint64) (string, uint8, error) {
	return c.sess.Tenant(sid)
}

// CloseSession closes a session.
func (c *Controller) CloseSession(sid uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	if err := c.sess.Close(sid); err != nil {
		return err
	}
	if _, err := c.append(record.SessionClose{SID: sid}); err != nil {
		return err
	}
	return c.forceLog()
}

// SessionHighestWSN returns the session's highest applied WSN.
func (c *Controller) SessionHighestWSN(sid uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sess.HighestWSN(sid)
}

// --- wal sink ----------------------------------------------------------------

// logSink adapts the provisioner + device to the WAL's Sink interface.
type logSink struct{ c *Controller }

func (s logSink) ProvisionSlots(n int) ([]wal.Slot, error) {
	slots, _, err := s.c.prov.ProvisionLogSlots(n, s.c.lsnHint())
	return slots, err
}

func (s logSink) Program(sl wal.Slot, page []byte) error {
	err := s.c.dev.ProgramSrc(s.c.attributeSrc(flash.SrcWAL), sl.Channel, sl.EBlock, sl.WBlock, page)
	if err != nil {
		// Retire the EBLOCK so fresh slots come from elsewhere; the WAL's
		// forward candidates handle the in-flight page.
		_ = s.c.prov.AbandonLogEBlock(sl.Channel, sl.EBlock, s.c.lsnHint())
		return err
	}
	// Track the highest LSN actually stored in the EBLOCK: slots are
	// provisioned ahead of writing, so the EBLOCK may already be retired
	// (Used) when this page lands — the raise keeps truncation-reclaim
	// from erasing it while it still holds live log pages.
	if _, last, ok := wal.PageLSNRange(page); ok {
		_ = s.c.st.RaiseTimestamp(sl.Channel, sl.EBlock, uint64(last), last)
	}
	return nil
}

func (s logSink) Read(sl wal.Slot) ([]byte, error) {
	data, _, err := s.c.dev.ReadExtent(sl.Channel, sl.EBlock, sl.WBlock*s.c.geo.WBlockBytes, s.c.geo.WBlockBytes)
	return data, err
}
