package core

import (
	"sync"
	"testing"

	"eleos/internal/addr"
	"eleos/internal/flash"
	gcpolicy "eleos/internal/gc"
	"eleos/internal/record"
)

// recordingPolicy scores greedily while recording every candidate the
// core offered it, so tests can assert what selection was allowed to
// see.
type recordingPolicy struct {
	mu   sync.Mutex
	seen []gcpolicy.Candidate
}

func (p *recordingPolicy) Name() string { return "recording" }

func (p *recordingPolicy) Score(c gcpolicy.Candidate) float64 {
	p.mu.Lock()
	p.seen = append(p.seen, c)
	p.mu.Unlock()
	return gcpolicy.Greedy{}.Score(c)
}

func (p *recordingPolicy) candidates() []gcpolicy.Candidate {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]gcpolicy.Candidate(nil), p.seen...)
}

// TestGCPolicyEnumMapping pins the Config enum → policy resolution and
// the plugin override.
func TestGCPolicyEnumMapping(t *testing.T) {
	for _, tc := range []struct {
		policy GCPolicy
		want   string
	}{
		{GCMinCostDecline, "min-cost-decline"},
		{GCGreedy, "greedy"},
		{GCOldest, "oldest"},
		{GCCostBenefit, "cost-benefit"},
		{GCWearAware, "wear-aware"},
	} {
		dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
		cfg := testConfig()
		cfg.GCPolicy = tc.policy
		c, err := Format(dev, cfg)
		if err != nil {
			t.Fatalf("Format(%v): %v", tc.policy, err)
		}
		if got := c.GCPolicyName(); got != tc.want {
			t.Errorf("GCPolicyName for %v = %q, want %q", tc.policy, got, tc.want)
		}
		if tc.policy.String() != tc.want {
			t.Errorf("GCPolicy(%d).String() = %q, want %q", int(tc.policy), tc.policy.String(), tc.want)
		}
	}

	dev := flash.MustNewDevice(flash.SmallGeometry(), flash.Latency{})
	cfg := testConfig()
	cfg.GCPolicy = GCGreedy // plugin must win over the enum
	cfg.GCPolicyPlugin = &recordingPolicy{}
	c, err := Format(dev, cfg)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	if got := c.GCPolicyName(); got != "recording" {
		t.Fatalf("plugin GCPolicyName = %q, want recording", got)
	}
}

// TestGCPluginRespectsPinnedAndInflight: whatever the policy wants, the
// core must never offer it an EBLOCK with queued programs (inflight) or
// an uninstalled action (pinned) — erasing either loses committed data.
func TestGCPluginRespectsPinnedAndInflight(t *testing.T) {
	geo := flash.Geometry{
		Channels: 1, EBlocksPerChannel: 16,
		EBlockBytes: 256 << 10, WBlockBytes: 16 << 10, RBlockBytes: 4 << 10,
	}
	dev := flash.MustNewDevice(geo, flash.Latency{})
	pol := &recordingPolicy{}
	cfg := testConfig()
	cfg.GCPolicyPlugin = pol
	c, err := Format(dev, cfg)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}

	// Fill a few EBLOCKs with overwrites so Used EBLOCKs with garbage
	// exist.
	for round := 0; round < 3; round++ {
		for lpid := uint64(1); lpid <= 40; lpid++ {
			data := pageContent(lpid, uint64(round+1), 12000)
			if err := c.WriteBatch(0, 0, []LPage{{LPID: addr.LPID(lpid), Data: data}}); err != nil {
				t.Fatalf("WriteBatch: %v", err)
			}
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	used := c.st.UsedEBlocks(0)
	var reclaimable []int
	for _, eb := range used {
		if d, err := c.st.Desc(0, eb); err == nil && d.Stream == record.StreamUser && d.Avail > 0 {
			reclaimable = append(reclaimable, eb)
		}
	}
	if len(reclaimable) < 2 {
		t.Fatalf("need >= 2 reclaimable user EBLOCKs, have %v", reclaimable)
	}

	// Pin one and mark another inflight; selection must skip both.
	pinnedEB, inflightEB := reclaimable[0], reclaimable[1]
	c.pinned[[2]int{0, pinnedEB}]++
	c.inflight[[2]int{0, inflightEB}]++
	defer func() {
		c.pinned[[2]int{0, pinnedEB}]--
		c.inflight[[2]int{0, inflightEB}]--
	}()

	pol.mu.Lock()
	pol.seen = nil
	pol.mu.Unlock()
	victim, ok := c.selectVictimLocked(0)
	if ok && (victim == pinnedEB || victim == inflightEB) {
		t.Fatalf("selected victim %d is pinned/inflight", victim)
	}
	for _, cand := range pol.candidates() {
		if cand.EB == pinnedEB || cand.EB == inflightEB {
			t.Fatalf("policy was offered protected EBLOCK %d", cand.EB)
		}
		if cand.CapBytes != uint64(geo.EBlockBytes) {
			t.Fatalf("candidate CapBytes = %d, want %d", cand.CapBytes, geo.EBlockBytes)
		}
		if cand.Age == 0 {
			t.Fatalf("candidate Age = 0, want >= 1")
		}
	}
}

// TestGCSelectionMatchesPolicyRanking drives an identical cold/hot
// overwrite workload under every policy and checks two things: (a) the
// victim selectVictimLocked returns is exactly the argmin of the
// policy's own Score over the eligible candidates (the delegation
// contract), and (b) the policies do not all agree — the layout has a
// young mostly-garbage hot block and an old lightly-dented cold block,
// which provably splits e.g. greedy from oldest.
func TestGCSelectionMatchesPolicyRanking(t *testing.T) {
	policies := []GCPolicy{GCMinCostDecline, GCGreedy, GCOldest, GCCostBenefit, GCWearAware}
	victims := map[GCPolicy]int{}
	for _, policy := range policies {
		geo := flash.Geometry{
			Channels: 1, EBlocksPerChannel: 48,
			EBlockBytes: 256 << 10, WBlockBytes: 16 << 10, RBlockBytes: 4 << 10,
		}
		dev := flash.MustNewDevice(geo, flash.Latency{})
		cfg := testConfig()
		cfg.GCPolicy = policy
		c, err := Format(dev, cfg)
		if err != nil {
			t.Fatalf("Format: %v", err)
		}
		// Cold extent, closed early; dented slightly so it is a
		// candidate.
		for lpid := uint64(1); lpid <= 25; lpid++ {
			mustWriteSized(t, c, lpid, 1, 12000)
		}
		for lpid := uint64(1); lpid <= 4; lpid++ {
			mustWriteSized(t, c, lpid, 2, 12000)
		}
		// Time filler: unique pages, never invalidated (Avail 0, so the
		// filler blocks are not candidates) — ages the cold block.
		for lpid := uint64(1000); lpid < 1080; lpid++ {
			mustWriteSized(t, c, lpid, 1, 12000)
		}
		// Hot churn at the end: young blocks, mostly garbage.
		for v := uint64(1); v <= 3; v++ {
			for lpid := uint64(100); lpid <= 120; lpid++ {
				mustWriteSized(t, c, lpid, v, 12000)
			}
		}

		c.mu.Lock()
		// Compute the expected victim by replaying the policy over the
		// eligible candidates exactly as selection defines them.
		pol := builtinPolicy(policy)
		wantEB, wantScore := -1, 0.0
		for _, eb := range c.st.UsedEBlocks(0) {
			if c.inflight[[2]int{0, eb}] > 0 || c.pinned[[2]int{0, eb}] > 0 {
				continue
			}
			d, err := c.st.Desc(0, eb)
			if err != nil || d.Stream != record.StreamUser || d.Avail == 0 {
				continue
			}
			age := c.updateSeq - d.Timestamp + 1
			score := pol.Score(gcpolicy.Candidate{
				Ch: 0, EB: eb, Avail: d.Avail, CapBytes: uint64(geo.EBlockBytes),
				Age: age, EraseCount: d.EraseCount, Timestamp: d.Timestamp,
			})
			if wantEB == -1 || score < wantScore {
				wantEB, wantScore = eb, score
			}
		}
		victim, ok := c.selectVictimLocked(0)
		d, _ := c.st.Desc(0, victim)
		c.mu.Unlock()
		if !ok || wantEB == -1 {
			t.Fatalf("%v: no victim (ok=%v wantEB=%d)", policy, ok, wantEB)
		}
		if victim != wantEB {
			t.Fatalf("%v selected %d, but its own ranking prefers %d", policy, victim, wantEB)
		}
		t.Logf("%v chose eblock %d (avail %d, ts %d)", policy, victim, d.Avail, d.Timestamp)
		victims[policy] = victim
	}
	distinct := map[int]bool{}
	for _, v := range victims {
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all policies chose the same victim (%v); layout failed to split any pair", victims)
	}
}

// mustWriteSized writes one page of deterministic content.
func mustWriteSized(t *testing.T, c *Controller, lpid, version uint64, size int) {
	t.Helper()
	if err := c.WriteBatch(0, 0, []LPage{{LPID: addr.LPID(lpid), Data: pageContent(lpid, version, size)}}); err != nil {
		t.Fatalf("WriteBatch(%d v%d): %v", lpid, version, err)
	}
}
