package core

import (
	"eleos/internal/health"
	"eleos/internal/summary"
)

// DeviceHealth builds a point-in-time wear and space census of the
// EBLOCK array: state population, per-EBLOCK erase counts (from the
// media itself — the summary's mirror can lag across crashes), and the
// free/valid/dead byte split with the valid-utilization histogram that
// GC victim selection is optimizing over. Runs under c.mu so the census
// is a consistent cut against concurrent writes and GC.
func (c *Controller) DeviceHealth() health.DeviceHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deviceHealthLocked()
}

func (c *Controller) deviceHealthLocked() health.DeviceHealth {
	var h health.DeviceHealth
	ebBytes := int64(c.geo.EBlockBytes)
	wbBytes := int64(c.geo.WBlockBytes)
	h.EraseMin = -1
	for ch := 0; ch < c.geo.Channels; ch++ {
		for eb := 0; eb < c.geo.EBlocksPerChannel; eb++ {
			h.EBlocksTotal++
			ec, err := c.dev.EraseCount(ch, eb)
			if err == nil {
				e := int64(ec)
				h.EraseTotal += e
				if h.EraseMin < 0 || e < h.EraseMin {
					h.EraseMin = e
				}
				if e > h.EraseMax {
					h.EraseMax = e
				}
				h.EraseHist[health.EraseBucket(e)]++
			}
			d, err := c.st.Desc(ch, eb)
			if err != nil {
				continue
			}
			switch d.State {
			case summary.Free:
				h.FreeEBlocks++
				h.FreeBytes += ebBytes
			case summary.Bad:
				h.BadEBlocks++
			case summary.Reserved:
				h.ReservedEBlocks++
			case summary.Open:
				h.OpenEBlocks++
				written := int64(d.DataWBlocks) * wbBytes
				if written > ebBytes {
					written = ebBytes
				}
				dead := int64(d.Avail)
				if dead > written {
					dead = written
				}
				h.DeadBytes += dead
				h.ValidBytes += written - dead
				h.FreeBytes += ebBytes - written
			case summary.Used:
				h.UsedEBlocks++
				dead := int64(d.Avail)
				if dead > ebBytes {
					dead = ebBytes
				}
				h.DeadBytes += dead
				valid := ebBytes - dead
				h.ValidBytes += valid
				h.UtilHist[health.UtilBucket(float64(valid)/float64(ebBytes))]++
			}
		}
	}
	if h.EraseMin < 0 {
		h.EraseMin = 0
	}
	return h
}
