package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eleos/internal/chaos/invariant"
	"eleos/internal/provision"
	"eleos/internal/trace"
)

// Fault-schedule tests: deterministic program-failure injections at exact
// media sequence points while WriteBatch, GC, and checkpoint traffic runs
// concurrently. After the storm, the system must hold the shared invariant
// set implemented once in internal/chaos/invariant: content integrity,
// session monotonicity, no leaked actions or pins, and exact fault
// accounting. All schedules run under -race in CI.

// faultWriters mirrors runStressWriters but retries ErrWriteFailed with
// the same WSN, which is the documented client contract for media aborts.
// Returns per-writer highest acknowledged WSN and total observed aborts.
func faultWriters(t *testing.T, c *Controller, sids []uint64, batches uint64) ([]uint64, int64) {
	t.Helper()
	acked := make([]uint64, len(sids))
	var aborts int64
	var abortMu sync.Mutex
	errs := make(chan error, len(sids))
	var wg sync.WaitGroup
	for w := range sids {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for wsn := uint64(1); wsn <= batches; wsn++ {
				const maxRetries = 50
				var err error
				for attempt := 0; attempt < maxRetries; attempt++ {
					err = c.WriteBatch(sids[w], wsn, stressBatch(w, wsn))
					if errors.Is(err, ErrWriteFailed) {
						abortMu.Lock()
						aborts++
						abortMu.Unlock()
						continue
					}
					if errors.Is(err, provision.ErrNoSpace) {
						// Transiently full: concurrent force-window actions
						// pin their EBLOCKs against GC, so under maximal
						// churn a channel can run dry until they install.
						time.Sleep(time.Millisecond)
						continue
					}
					break
				}
				if err != nil {
					errs <- fmt.Errorf("writer %d wsn %d: %v", w, wsn, err)
					return
				}
				acked[w] = wsn
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	return acked, aborts
}

// TestFaultSchedule injects faults at fixed program-attempt offsets and
// asserts the invariants above. Offsets are relative to the arming point
// (after Format), so each schedule is deterministic regardless of how
// many programs formatting itself issued.
func TestFaultSchedule(t *testing.T) {
	schedules := []struct {
		name string
		arm  []int // 1-based program-attempt offsets that must fail
	}{
		// Offsets are spaced: when an armed fault lands on a WAL log page,
		// the failover retry is the very next program attempt, so adjacent
		// offsets can chain through the log's forward candidates and shut
		// the log down — a designed durability limit, not the scenario
		// under test here.
		{"single", []int{5}},
		{"burst", []int{10, 22, 34}},
		{"spread", []int{3, 25, 60, 110, 170}},
	}
	for _, sc := range schedules {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			c, dev := stressController(t)
			for _, n := range sc.arm {
				dev.FailNthProgram(n)
			}

			sids := make([]uint64, 4)
			for w := range sids {
				sid, err := c.OpenSession()
				if err != nil {
					t.Fatalf("OpenSession: %v", err)
				}
				sids[w] = sid
			}

			// Background GC + checkpoint churn racing the writers. Both
			// may themselves absorb an injected fault; that surfaces as
			// ErrWriteFailed and is retried on the next tick.
			stop := make(chan struct{})
			var bg sync.WaitGroup
			bg.Add(1)
			go func() {
				defer bg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					var err error
					if i%2 == 0 {
						err = c.Checkpoint()
					} else {
						err = c.GCNow(i % c.Geometry().Channels)
					}
					if err != nil && !errors.Is(err, ErrWriteFailed) && !errors.Is(err, provision.ErrNoSpace) {
						t.Errorf("background churn: %v", err)
						return
					}
				}
			}()

			const batches = 60
			acked, aborts := faultWriters(t, c, sids, batches)
			close(stop)
			bg.Wait()

			// Every armed fault must have fired: the writer fleet issues
			// far more program attempts than the largest armed offset. The
			// shared checker covers accounting, leak, session, and content
			// invariants in one place.
			want := int64(len(sc.arm))
			exp := invariant.Expect{
				ProgramFaults:        want,
				EraseFaults:          0,
				MetricsProgramFaults: want,
				MetricsEraseFaults:   0,
				MinPrograms:          want + 1,
				MinMediaAborts:       aborts,
			}
			for w, sid := range sids {
				if acked[w] != batches {
					t.Fatalf("writer %d acked %d/%d", w, acked[w], batches)
				}
				exp.Sessions = append(exp.Sessions, invariant.Session{SID: sid, MinWSN: batches, Exact: true})
				for wsn := uint64(1); wsn <= batches; wsn++ {
					lpid := stressLPID(w, wsn)
					size := 200 + int((uint64(w)*131+wsn*97)%1800)
					exp.Pages = append(exp.Pages, invariant.Page{LPID: lpid, Want: pageContent(uint64(lpid), wsn, size)})
				}
				churn := stressChurnLPID(w)
				exp.Pages = append(exp.Pages, invariant.Page{LPID: churn, Want: pageContent(uint64(churn), batches, 8000)})
			}
			invariant.MustHold(t, c, exp)
		})
	}
}

// TestFaultScheduleTraceAttribution injects spaced program faults under a
// single traced writer and asserts the flight recorder attributes each
// client-visible media abort to the right batch: the batch's trace ID
// carries a media_abort instant AND at least one migration span, so an
// operator reading the dump sees not just that a batch failed but what
// cleanup its failure triggered (§VII). Single writer, no background
// churn: every user-visible abort is unambiguously one known trace ID.
func TestFaultScheduleTraceAttribution(t *testing.T) {
	c, dev := stressController(t)
	// Spaced offsets (see TestFaultSchedule): adjacent faults can chain
	// through the WAL's failover candidates. Some of these land on log
	// pages rather than user programs and surface as no client abort;
	// the test only asserts on aborts that did surface.
	for _, n := range []int{5, 9, 14, 20, 27} {
		dev.FailNthProgram(n)
	}
	sid, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}

	const batches = 30
	traceFor := func(wsn uint64) uint64 { return 7000 + wsn }
	aborted := map[uint64]bool{} // trace IDs that returned ErrWriteFailed
	for wsn := uint64(1); wsn <= batches; wsn++ {
		var werr error
		for attempt := 0; attempt < 10; attempt++ {
			werr = c.WriteBatchTraced(sid, wsn, traceFor(wsn), stressBatch(0, wsn))
			if errors.Is(werr, ErrWriteFailed) {
				aborted[traceFor(wsn)] = true
				continue
			}
			break
		}
		if werr != nil {
			t.Fatalf("wsn %d: %v", wsn, werr)
		}
	}
	if len(aborted) == 0 {
		t.Fatal("no client-visible abort surfaced; the schedule no longer exercises the abort path")
	}

	// The storm must hold the shared invariant set before any trace
	// attribution is worth checking.
	exp := invariant.Expect{
		ProgramFaults:        5,
		EraseFaults:          0,
		MetricsProgramFaults: 5,
		MetricsEraseFaults:   0,
		MinMediaAborts:       int64(len(aborted)),
		Sessions:             []invariant.Session{{SID: sid, MinWSN: batches, Exact: true}},
	}
	for wsn := uint64(1); wsn <= batches; wsn++ {
		lpid := stressLPID(0, wsn)
		size := 200 + int((wsn*97)%1800)
		exp.Pages = append(exp.Pages, invariant.Page{LPID: lpid, Want: pageContent(uint64(lpid), wsn, size)})
	}
	invariant.MustHold(t, c, exp)

	d := c.TraceDump()
	if d.Dropped != 0 {
		t.Fatalf("ring dropped %d events; workload outgrew the default ring", d.Dropped)
	}
	abortsByID := map[uint64]int{}
	migrationsByID := map[uint64]int{}
	endsByID := map[uint64]int{}
	for _, ev := range d.Events {
		switch ev.Kind {
		case trace.KMediaAbort:
			abortsByID[ev.TraceID]++
			if ev.Arg1 < 1 {
				t.Errorf("media_abort for trace %d reports %d failed eblocks", ev.TraceID, ev.Arg1)
			}
		case trace.KMigration:
			migrationsByID[ev.TraceID]++
		case trace.KBatchEnd:
			if ev.Arg1 != 0 {
				endsByID[ev.TraceID]++
			}
		}
	}
	for id := range aborted {
		if abortsByID[id] == 0 {
			t.Errorf("trace %d returned ErrWriteFailed but has no media_abort event", id)
		}
		if migrationsByID[id] == 0 {
			t.Errorf("trace %d aborted but no migration span carries its ID", id)
		}
		if endsByID[id] == 0 {
			t.Errorf("trace %d aborted but no batch_end records the error", id)
		}
	}
	// And no abort was attributed to a batch that never failed.
	for id := range abortsByID {
		if !aborted[id] {
			t.Errorf("media_abort attributed to trace %d, which never returned ErrWriteFailed", id)
		}
	}
	// The successful retries completed: the final attempt of every WSN
	// has a clean batch_end.
	cleanEnds := map[uint64]bool{}
	for _, ev := range d.Events {
		if ev.Kind == trace.KBatchEnd && ev.Arg1 == 0 {
			cleanEnds[ev.TraceID] = true
		}
	}
	for wsn := uint64(1); wsn <= batches; wsn++ {
		if !cleanEnds[traceFor(wsn)] {
			t.Errorf("wsn %d never recorded a successful batch_end", wsn)
		}
	}
}

// TestFaultScheduleSurvivesRecovery injects a fault mid-traffic, crashes,
// reopens, and checks the committed prefix — a media abort must never
// corrupt what recovery replays.
func TestFaultScheduleSurvivesRecovery(t *testing.T) {
	c, dev := stressController(t)
	sid, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	dev.FailNthProgram(4)
	dev.FailNthProgram(9)

	const batches = 30
	var lastAcked uint64
	for wsn := uint64(1); wsn <= batches; wsn++ {
		var werr error
		for attempt := 0; attempt < 10; attempt++ {
			werr = c.WriteBatch(sid, wsn, stressBatch(0, wsn))
			if !errors.Is(werr, ErrWriteFailed) {
				break
			}
		}
		if werr != nil {
			t.Fatalf("wsn %d: %v", wsn, werr)
		}
		lastAcked = wsn
	}
	if got := dev.Stats().WriteFailures; got != 2 {
		t.Fatalf("WriteFailures = %d, want 2", got)
	}
	c.Crash()

	c2, err := Open(dev, testConfig())
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	high, err := c2.SessionHighestWSN(sid)
	if err != nil {
		t.Fatal(err)
	}
	// Device fault counts persist across recovery; the metrics registry is
	// per-controller and resets at Open, so those expectations are skipped.
	exp := invariant.Expect{
		ProgramFaults:        2,
		EraseFaults:          0,
		MetricsProgramFaults: invariant.Skip,
		MetricsEraseFaults:   invariant.Skip,
		Sessions:             []invariant.Session{{SID: sid, MinWSN: lastAcked}},
	}
	for wsn := uint64(1); wsn <= high; wsn++ {
		lpid := stressLPID(0, wsn)
		size := 200 + int((wsn*97)%1800)
		exp.Pages = append(exp.Pages, invariant.Page{LPID: lpid, Want: pageContent(uint64(lpid), wsn, size)})
	}
	invariant.MustHold(t, c2, exp)
}
