package core

import (
	"math/rand"
	"sync"
	"testing"

	"eleos/internal/addr"
	"eleos/internal/flash"
)

// TestReadPathRBlockAmplification verifies §V's read path accounting: an
// LPAGE stored across k RBLOCKs transfers exactly k RBLOCKs from the
// media, and the host receives exactly the stored extent.
func TestReadPathRBlockAmplification(t *testing.T) {
	c, _ := newFormatted(t)
	rb := c.Geometry().RBlockBytes // 4 KB in SmallGeometry

	cases := []struct {
		size    int
		maxRBlk int64 // upper bound on RBLOCKs one read may transfer
	}{
		{64, 1},         // tiny page: one RBLOCK
		{rb, 2},         // one RBLOCK worth, possibly straddling a boundary
		{2*rb + 128, 4}, // spans at least 3 RBLOCKs
	}
	for i, tc := range cases {
		lpid := addr.LPID(100 + i)
		mustWrite(t, c, LPage{LPID: lpid, Data: pageContent(uint64(lpid), 1, tc.size)})
		before := c.Stats().ReadRBlocks
		checkRead(t, c, lpid, pageContent(uint64(lpid), 1, tc.size))
		got := c.Stats().ReadRBlocks - before
		minNeeded := int64((tc.size + rb - 1) / rb)
		if got < minNeeded || got > tc.maxRBlk {
			t.Fatalf("size %d: transferred %d rblocks, want in [%d,%d]", tc.size, got, minNeeded, tc.maxRBlk)
		}
	}
}

// TestAdjacentPagesNotRevealed verifies §V's security property: a read
// returns exactly the requested LPAGE even when neighbours share its
// RBLOCKs.
func TestAdjacentPagesNotRevealed(t *testing.T) {
	c, _ := newFormatted(t)
	// Three small pages packed into the same WBLOCK (single-channel GC
	// path would guarantee adjacency; a single small batch chunk does too).
	a := pageContent(1, 1, 100)
	b := pageContent(2, 1, 100)
	d := pageContent(3, 1, 100)
	mustWrite(t, c,
		LPage{LPID: 1, Data: a},
		LPage{LPID: 2, Data: b},
		LPage{LPID: 3, Data: d},
	)
	got, err := c.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != addr.AlignUp(100) {
		t.Fatalf("read returned %d bytes, want the exact aligned extent %d", len(got), addr.AlignUp(100))
	}
	// The neighbours' content must not appear in the returned extent.
	for i := range got[:100] {
		if got[i] != b[i] {
			t.Fatal("wrong page content")
		}
	}
}

// TestShuffledWSNArrival delivers a session's WSNs from concurrent
// goroutines in random order; the controller must apply them in WSN order
// and finish with the highest WSN's content visible.
func TestShuffledWSNArrival(t *testing.T) {
	c, _ := newFormatted(t)
	sid, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	order := rand.New(rand.NewSource(61)).Perm(n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, idx := range order {
		wsn := uint64(idx + 1)
		wg.Add(1)
		go func(wsn uint64) {
			defer wg.Done()
			errs <- c.WriteBatch(sid, wsn, []LPage{{LPID: 7, Data: pageContent(7, wsn, 256)}})
		}(wsn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	high, err := c.SessionHighestWSN(sid)
	if err != nil || high != n {
		t.Fatalf("highest = %d (%v)", high, err)
	}
	// The last WSN's write wins (applied in order regardless of arrival).
	checkRead(t, c, 7, pageContent(7, n, 256))
}

// TestDeviceImageSurvivesControllerState checks the eleosctl workflow:
// format, write, save image, load image, recover, read — across two
// controller generations on the same persisted media.
func TestDeviceImageSurvivesControllerState(t *testing.T) {
	c, dev := newFormatted(t)
	mustWrite(t, c, LPage{LPID: 5, Data: pageContent(5, 1, 900)})
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/dev.img"
	if err := dev.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	dev2, err := loadDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dev2, testConfig())
	if err != nil {
		t.Fatalf("recover from image: %v", err)
	}
	checkRead(t, c2, 5, pageContent(5, 1, 900))
	// And the second generation keeps working and persists again.
	mustWrite(t, c2, LPage{LPID: 6, Data: pageContent(6, 1, 300)})
	if err := c2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := dev2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	dev3, err := loadDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := Open(dev3, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkRead(t, c3, 5, pageContent(5, 1, 900))
	checkRead(t, c3, 6, pageContent(6, 1, 300))
}

// loadDevice is a tiny helper around flash.LoadFile with zero latency.
func loadDevice(path string) (*flash.Device, error) {
	return flash.LoadFile(path, flash.Latency{})
}
