package core

import (
	"fmt"

	"eleos/internal/addr"
)

// Read returns the current content of an LPAGE (§V). The mapping table
// yields the physical address (with exact length); the covering RBLOCKs
// are transferred and the exact extent is returned — adjacent LPAGEs'
// bytes are never revealed.
func (c *Controller) Read(lpid addr.LPID) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	a, err := c.mt.Get(lpid)
	if err != nil {
		return nil, err
	}
	if !a.IsValid() {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, lpid)
	}
	data, nR, err := c.dev.ReadExtent(a.Channel(), a.EBlock(), a.Offset(), a.Length())
	if err != nil {
		return nil, err
	}
	c.stats.Reads++
	c.stats.ReadRBlocks += int64(nR)
	return data, nil
}

// Length returns the stored (aligned) length of an LPAGE without reading
// its data.
func (c *Controller) Length(lpid addr.LPID) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrashed
	}
	a, err := c.mt.Get(lpid)
	if err != nil {
		return 0, err
	}
	if !a.IsValid() {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, lpid)
	}
	return a.Length(), nil
}

// Exists reports whether an LPID is currently mapped.
func (c *Controller) Exists(lpid addr.LPID) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return false, ErrCrashed
	}
	a, err := c.mt.Get(lpid)
	if err != nil {
		return false, err
	}
	return a.IsValid(), nil
}
