package core

import (
	"errors"
	"fmt"
	"time"

	"eleos/internal/addr"
	"eleos/internal/flash"
	"eleos/internal/readcache"
	"eleos/internal/trace"
)

// The read path (§V, made concurrent).
//
// Reads no longer hold the global controller lock across the flash
// transfer. A read is: a short c.mu section that resolves the mapping and
// pins the target EBLOCK, the flash ReadExtent with c.mu released, and a
// second short c.mu section that unpins and accounts. The pin is the
// read/installation fence — it extends the pinned-EBLOCK protocol that
// already protects the commit-force window of writes to readers:
//
//   - GC victim selection (selectVictimLocked) skips pinned EBLOCKs, and
//     migration/checkpoint force-close wait on ioCond for pins to drain
//     (waitInflightLocked), so an EBLOCK can never be erased between a
//     reader's lookup and its flash transfer;
//   - the lookup and the pin happen atomically under c.mu, and every
//     mapping install and relocation also runs under c.mu, so a pinned
//     address is current at pin time and the pinned EBLOCK keeps its
//     bytes until the unpin — the read returns either the version that
//     was current at lookup or (trivially) the same bytes relocated
//     elsewhere, never erased flash.
//
// Readers use the same c.pinned map as writers, so the quiesce invariant
// ("PinnedEBlocks()==0 after drain") covers them, and the chaos checker
// needs no new bookkeeping.
//
// With a read cache configured (Config.ReadCacheBytes), the fence is
// wrapped in the cache's single-flight protocol: the Flight is registered
// BEFORE the locked lookup, so a mapping install racing the fill — which
// invalidates the LPID under c.mu — always poisons the fill and the cache
// can never retain pre-install bytes. See internal/readcache.

// Read returns the current content of an LPAGE (§V). The mapping table
// yields the physical address (with exact length); the covering RBLOCKs
// are transferred and the exact extent is returned — adjacent LPAGEs'
// bytes are never revealed.
func (c *Controller) Read(lpid addr.LPID) ([]byte, error) {
	if c.cfg.SerialReads {
		return c.readSerial(lpid)
	}
	var t0 time.Time
	if c.met.on {
		t0 = time.Now()
	}
	if c.rcache == nil {
		data, err := c.readFenced(lpid)
		if err != nil {
			return nil, err
		}
		c.met.reads.Inc()
		if c.met.on {
			c.met.readNS.ObserveDuration(time.Since(t0))
		}
		return data, nil
	}
	data, err := c.readCached(lpid)
	if err != nil {
		return nil, err
	}
	c.met.reads.Inc()
	if c.met.on {
		c.met.readNS.ObserveDuration(time.Since(t0))
	}
	return data, nil
}

// readCached serves one page through the cache's single-flight protocol.
// The dead-controller check is the lock-free mirror: a cache hit must not
// touch c.mu, but a dead controller still rejects every call.
func (c *Controller) readCached(lpid addr.LPID) ([]byte, error) {
	if c.crashedA.Load() {
		return nil, ErrCrashed
	}
	data, f, leader := c.rcache.GetOrStart(uint64(lpid))
	if data != nil {
		c.trc.Emit(trace.KReadCacheHit, 0, 0, 0, int64(lpid), int64(len(data)))
		return data, nil
	}
	if !leader {
		data, err := f.Wait()
		if err != nil {
			// The leader's load failed for ITS lookup; retry ours once
			// rather than propagate a possibly unrelated error.
			if data, err2 := c.readFenced(lpid); err2 == nil {
				return data, nil
			}
			return nil, err
		}
		return data, nil
	}
	data, err := c.readFenced(lpid)
	c.rcache.Complete(uint64(lpid), f, data, err)
	return data, err
}

// readFenced is the concurrent fenced flash read: lookup+pin under c.mu,
// ReadExtent outside it, unpin+account under c.mu again.
func (c *Controller) readFenced(lpid addr.LPID) ([]byte, error) {
	var tl time.Time
	if c.trc.Enabled() {
		tl = c.trc.Now()
	}
	c.mu.Lock()
	a, err := c.lookupLocked(lpid)
	if err != nil {
		c.mu.Unlock()
		if errors.Is(err, ErrNotFound) {
			c.met.readNotFound.Inc()
		}
		return nil, err
	}
	key := [2]int{a.Channel(), a.EBlock()}
	c.pinned[key]++
	c.mu.Unlock()
	c.trc.Span(trace.KReadLookup, 0, 0, 0, tl, int64(lpid), 0)

	var tf time.Time
	if c.trc.Enabled() {
		tf = c.trc.Now()
	}
	data, nR, rerr := c.dev.ReadExtent(a.Channel(), a.EBlock(), a.Offset(), a.Length())
	c.trc.Span(trace.KReadFlash, 0, 0, 0, tf, int64(lpid), int64(len(data)))

	c.mu.Lock()
	c.unpinReadLocked(key)
	if rerr == nil {
		c.stats.Reads++
		c.stats.ReadRBlocks += int64(nR)
	}
	c.mu.Unlock()
	if rerr != nil {
		return nil, rerr
	}
	c.met.readFlashLoads.Inc()
	return data, nil
}

// readSerial is the pre-concurrency baseline: the global lock is held
// across the flash transfer, so concurrent readers and writers fully
// serialize. Kept only for the A/B read-scaling benchmark.
func (c *Controller) readSerial(lpid addr.LPID) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, err := c.lookupLocked(lpid)
	if err != nil {
		return nil, err
	}
	data, nR, err := c.dev.ReadExtent(a.Channel(), a.EBlock(), a.Offset(), a.Length())
	if err != nil {
		return nil, err
	}
	c.stats.Reads++
	c.stats.ReadRBlocks += int64(nR)
	c.met.reads.Inc()
	c.met.readFlashLoads.Inc()
	return data, nil
}

// ReadBatch reads many LPAGEs at once, scatter-gathering the flash
// transfers through the per-channel I/O workers: one locked pass resolves
// and pins every address, the device executes the per-channel segments
// concurrently, and one more locked pass unpins and accounts. The result
// slice is indexed like lpids; an unmapped LPID yields a nil entry (the
// batch succeeds — per-page absence is data, not failure). With a cache
// configured, hits and coalesced in-flight fills are served without
// touching flash, and only the remaining misses are submitted.
func (c *Controller) ReadBatch(lpids []addr.LPID) ([][]byte, error) {
	if len(lpids) == 0 {
		return nil, nil
	}
	if c.crashedA.Load() {
		return nil, ErrCrashed
	}
	var t0 time.Time
	if c.met.on {
		t0 = time.Now()
	}
	out := make([][]byte, len(lpids))

	// Cache pass: serve hits, join in-flight fills, claim leaderships.
	// flights[i] != nil marks a slot this call must fill and Complete.
	var flights []*flightSlot
	var waiters []waitSlot
	load := lpids
	loadIdx := make([]int, 0, len(lpids))
	if c.rcache != nil {
		load = load[:0:0]
		for i, lpid := range lpids {
			data, f, leader := c.rcache.GetOrStart(uint64(lpid))
			switch {
			case data != nil:
				c.trc.Emit(trace.KReadCacheHit, 0, 0, 0, int64(lpid), int64(len(data)))
				out[i] = data
			case leader:
				flights = append(flights, &flightSlot{i: i, f: f})
				load = append(load, lpid)
				loadIdx = append(loadIdx, i)
			default:
				waiters = append(waiters, waitSlot{i: i, f: f})
			}
		}
	} else {
		for i := range lpids {
			loadIdx = append(loadIdx, i)
		}
	}

	var firstErr error
	if len(load) > 0 {
		errsAt, err := c.readManyFenced(load, loadIdx, out)
		firstErr = err
		// Complete leaderships (on error too, or waiters hang). flights
		// and load were appended in lockstep, so flights[fi] owns load
		// slot fi. A page that resolved to nothing completes with the
		// typed not-found error so single-page waiters on the same
		// flight see it, not a silent nil.
		for fi, fs := range flights {
			ferr := firstErr
			if ferr == nil && errsAt != nil {
				ferr = errsAt[fi]
			}
			if ferr == nil && out[fs.i] == nil {
				ferr = fmt.Errorf("%w: %d", ErrNotFound, lpids[fs.i])
			}
			c.rcache.Complete(uint64(lpids[fs.i]), fs.f, out[fs.i], ferr)
		}
	}
	for _, ws := range waiters {
		data, err := ws.f.Wait()
		if err != nil {
			// Retry this page alone; its leader's failure may not be ours.
			data, err = c.readFenced(lpids[ws.i])
			if err != nil && !IsNotFound(err) {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
		}
		out[ws.i] = data
	}
	if firstErr != nil {
		return nil, firstErr
	}
	c.met.readBatches.Inc()
	c.met.reads.Add(int64(len(lpids)))
	if c.met.on {
		c.met.readNS.ObserveDuration(time.Since(t0))
	}
	return out, nil
}

type flightSlot struct {
	i int // index into lpids/out
	f *readcache.Flight
}

type waitSlot struct {
	i int // index into lpids/out
	f *readcache.Flight
}

// readManyFenced resolves, pins, scatter-reads and unpins a set of LPIDs,
// writing results into out at outIdx. It returns per-load errors (nil
// slice when all loads succeeded; not-found is recorded as a nil page,
// not an error) and the first hard media error, if any.
func (c *Controller) readManyFenced(load []addr.LPID, outIdx []int, out [][]byte) ([]error, error) {
	var tl time.Time
	if c.trc.Enabled() {
		tl = c.trc.Now()
	}
	type pinned struct {
		key  [2]int
		cmd  flash.ReadCmd
		slot int // index into load/outIdx
	}
	pins := make([]pinned, 0, len(load))
	notFound := 0
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return nil, ErrCrashed
	}
	for si, lpid := range load {
		a, err := c.lookupLocked(lpid)
		if err != nil {
			notFound++
			continue // unmapped: nil entry
		}
		key := [2]int{a.Channel(), a.EBlock()}
		c.pinned[key]++
		pins = append(pins, pinned{
			key: key,
			cmd: flash.ReadCmd{
				Channel: a.Channel(), EBlock: a.EBlock(),
				Offset: a.Offset(), Length: a.Length(),
				Index: len(pins),
			},
			slot: si,
		})
	}
	c.mu.Unlock()
	c.trc.Span(trace.KReadLookup, 0, 0, 0, tl, int64(len(load)), int64(len(pins)))
	c.met.readNotFound.Add(int64(notFound))
	if len(pins) == 0 {
		return nil, nil
	}

	var tf time.Time
	if c.trc.Enabled() {
		tf = c.trc.Now()
	}
	cmds := make([]flash.ReadCmd, len(pins))
	for i, p := range pins {
		cmds[i] = p.cmd
	}
	results := c.dev.SubmitReads(len(pins), cmds).Wait()
	c.trc.Span(trace.KReadFlash, 0, 0, 0, tf, int64(len(pins)), 0)

	var errsAt []error
	var firstErr error
	var nPages, nRBlocks int64
	for i, p := range pins {
		res := results[i]
		if res.Err != nil {
			if errsAt == nil {
				errsAt = make([]error, len(load))
			}
			errsAt[p.slot] = res.Err
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		out[outIdx[p.slot]] = res.Data
		nPages++
		nRBlocks += int64(res.RBlocks)
	}
	c.met.readFlashLoads.Add(nPages)

	c.mu.Lock()
	for _, p := range pins {
		if c.pinned[p.key]--; c.pinned[p.key] <= 0 {
			delete(c.pinned, p.key)
		}
	}
	c.ioCond.Broadcast()
	c.stats.Reads += nPages
	c.stats.ReadRBlocks += nRBlocks
	c.mu.Unlock()
	return errsAt, firstErr
}

// lookupLocked resolves an LPID under c.mu, returning typed errors:
// ErrCrashed on a dead controller, ErrNotFound (wrapped with the LPID)
// when unmapped.
func (c *Controller) lookupLocked(lpid addr.LPID) (addr.PhysAddr, error) {
	if c.crashed {
		return 0, ErrCrashed
	}
	a, err := c.mt.Get(lpid)
	if err != nil {
		return 0, err
	}
	if !a.IsValid() {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, lpid)
	}
	return a, nil
}

// unpinReadLocked releases one reader pin and wakes pin-drain waiters
// (GC, checkpoint and migration wait on ioCond).
func (c *Controller) unpinReadLocked(key [2]int) {
	if c.pinned[key]--; c.pinned[key] <= 0 {
		delete(c.pinned, key)
	}
	c.ioCond.Broadcast()
}

// invalidateRead drops an LPID from the read cache and poisons any
// in-flight fill. Must be called (under c.mu, like all installs) whenever
// the LPID's mapping changes: user-page install and GC relocation.
func (c *Controller) invalidateRead(lpid addr.LPID) {
	if c.rcache != nil {
		c.rcache.Invalidate(uint64(lpid))
	}
}

// Length returns the stored (aligned) length of an LPAGE without reading
// its data. Like Read it holds c.mu only for the mapping lookup.
func (c *Controller) Length(lpid addr.LPID) (int, error) {
	c.mu.Lock()
	a, err := c.lookupLocked(lpid)
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return a.Length(), nil
}

// Exists reports whether an LPID is currently mapped, holding c.mu only
// for the lookup.
func (c *Controller) Exists(lpid addr.LPID) (bool, error) {
	c.mu.Lock()
	a, err := c.lookupLocked(lpid)
	c.mu.Unlock()
	if err != nil {
		if IsNotFound(err) {
			return false, nil
		}
		return false, err
	}
	return a.IsValid(), nil
}

// IsNotFound reports whether err is the typed not-found error every
// metadata query returns for an unmapped LPID.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }
