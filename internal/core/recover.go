package core

import (
	"fmt"

	"eleos/internal/addr"
	"eleos/internal/flash"
	"eleos/internal/record"
	"eleos/internal/summary"
	"eleos/internal/wal"
)

// Open recovers a controller from a formatted device (§VIII-C): it reads
// the most recent complete checkpoint record from the well-known area and
// performs the two-pass log replay — pass one repairs the flash addresses
// of system-table pages that garbage collection moved after they were
// checkpointed, pass two redoes committed system actions against the
// loaded tables, guarded by per-page flush LSNs.
func Open(dev *flash.Device, cfg Config) (*Controller, error) {
	c, err := newController(dev, cfg)
	if err != nil {
		return nil, err
	}
	// Programs issued during recovery (WAL resume, fix-ups) are
	// attributed to SrcRecovery for the write-amplification accounting.
	c.recovering.Store(true)
	defer c.recovering.Store(false)
	ck, areaEB, areaWB, err := scanCheckpointArea(c)
	if err != nil {
		return nil, err
	}
	c.ckptSeq = ck.Seq
	c.ckptEB, c.ckptWB = areaEB, areaWB
	c.lastTruncLSN = ck.TruncLSN
	c.updateSeq = ck.UpdateSeq
	c.nextAction = ck.NextAction

	// Walk the log chain once, collecting records at or past the
	// truncation LSN, and determining which actions committed.
	type logged struct {
		lsn record.LSN
		rec record.Record
	}
	var recs []logged
	sink := logSink{c}
	tail, err := wal.FollowChain(sink, ck.StartSlots, ck.StartLSN, func(p *wal.ChainPage) error {
		lsn := p.FirstLSN
		for _, r := range p.Records {
			if lsn >= ck.TruncLSN {
				recs = append(recs, logged{lsn: lsn, rec: r})
			}
			lsn++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	committed := make(map[uint64]record.ActionKind)
	for _, lr := range recs {
		if cm, ok := lr.rec.(record.Commit); ok {
			committed[cm.Action] = cm.AKind
		}
		if lr.rec.Kind() == record.KindUpdate || lr.rec.Kind() == record.KindGCUpdate {
			// Track the highest action id seen so new actions are unique.
			var id uint64
			switch r := lr.rec.(type) {
			case record.Update:
				id = r.Action
			case record.GCUpdate:
				id = r.Action
			}
			if id >= c.nextAction {
				c.nextAction = id + 1
			}
		}
	}

	// --- Pass 1: repair table-page addresses (§VIII-C1) ---------------------
	tiny := append([]addr.PhysAddr(nil), ck.Tiny...)
	locator := append([]addr.PhysAddr(nil), ck.Locator...)
	sessAddr := ck.SessAddr
	setAt := func(s *[]addr.PhysAddr, idx int, a addr.PhysAddr) {
		for idx >= len(*s) {
			*s = append(*s, 0)
		}
		(*s)[idx] = a
	}
	setIfAt := func(s *[]addr.PhysAddr, idx int, old, a addr.PhysAddr) {
		if idx < len(*s) && (*s)[idx] == old {
			(*s)[idx] = a
		}
	}
	for _, lr := range recs {
		switch r := lr.rec.(type) {
		case record.Update:
			if _, ok := committed[r.Action]; !ok {
				continue
			}
			idx := int(r.LPID.TableIndex())
			switch r.Type {
			case addr.PageSmallMap:
				setAt(&tiny, idx, r.New)
			case addr.PageSummary:
				setAt(&locator, idx, r.New)
			case addr.PageSession:
				sessAddr = r.New
			}
		case record.GCUpdate:
			if _, ok := committed[r.Action]; !ok {
				continue
			}
			idx := int(r.LPID.TableIndex())
			switch r.Type {
			case addr.PageSmallMap:
				setIfAt(&tiny, idx, r.Old, r.New)
			case addr.PageSummary:
				setIfAt(&locator, idx, r.Old, r.New)
			case addr.PageSession:
				if sessAddr == r.Old {
					sessAddr = r.New
				}
			}
		}
	}
	if err := c.mt.LoadFromTiny(tiny); err != nil {
		return nil, err
	}
	for _, lr := range recs {
		switch r := lr.rec.(type) {
		case record.Update:
			if _, ok := committed[r.Action]; ok && r.Type == addr.PageMap {
				c.mt.SetPageAddr(int(r.LPID.TableIndex()), r.New, lr.lsn)
			}
		case record.GCUpdate:
			if _, ok := committed[r.Action]; ok && r.Type == addr.PageMap {
				c.mt.SetPageAddrIf(int(r.LPID.TableIndex()), r.Old, r.New, lr.lsn)
			}
		}
	}
	// Grow the locator to the table's full size before loading.
	full := make([]addr.PhysAddr, c.st.NumPages())
	copy(full, locator)
	if err := c.st.LoadFromLocator(full, c.loadExtent); err != nil {
		return nil, err
	}
	if sessAddr.IsValid() {
		img, err := c.loadExtent(sessAddr)
		if err != nil {
			return nil, err
		}
		if err := c.sess.Load(img); err != nil {
			return nil, err
		}
		c.sessSnapAddr = sessAddr
	}

	// --- Pass 2: redo committed actions (§VIII-C2, C3) ----------------------
	ctx := &replayCtx{committed: committed, lastEnd: make(map[[2]int]int), post: make(map[[2]int]bool)}
	for _, lr := range recs {
		if err := c.replayRecordLocked(lr.lsn, lr.rec, ctx); err != nil {
			return nil, err
		}
		if lr.rec.Kind() == record.KindUpdate || lr.rec.Kind() == record.KindGCUpdate {
			c.updateSeq++
		}
	}

	// --- Fix-ups (§VIII-C3) --------------------------------------------------
	// Fix-up state is derived from the device itself (position probes, the
	// chain walk), not from log records, so it is re-derived on any future
	// recovery: dirty it at the log tail so it never pins the truncation
	// LSN back.
	fixLSN := tail.LastLSN + 1
	candidateEBs := make(map[[2]int]bool)
	for _, s := range tail.Candidates {
		if s.IsValid() {
			candidateEBs[[2]int{s.Channel, s.EBlock}] = true
		}
	}
	chainEBs := make(map[[2]int]bool)
	for _, p := range tail.Pages {
		chainEBs[[2]int{p.Slot.Channel, p.Slot.EBlock}] = true
		// Timestamp raises from post-flush programs are volatile; restore
		// them from the chain so live log pages stay reclaim-protected.
		if err := c.st.RaiseTimestamp(p.Slot.Channel, p.Slot.EBlock, uint64(p.Last), fixLSN); err != nil {
			return nil, err
		}
	}
	for k := range candidateEBs {
		chainEBs[k] = true
	}
	// The chain is authoritative for log EBLOCKs: anything it touches that
	// the summary believes free must be claimed for the log stream.
	for k := range chainEBs {
		d, err := c.st.Desc(k[0], k[1])
		if err != nil {
			return nil, err
		}
		if d.State == summary.Free {
			d.State = summary.Open
			d.Stream = record.StreamLog
			if err := c.st.SetDesc(k[0], k[1], d, fixLSN); err != nil {
				return nil, err
			}
		}
	}
	for ch := 0; ch < c.geo.Channels; ch++ {
		for eb := 0; eb < c.geo.EBlocksPerChannel; eb++ {
			d, err := c.st.Desc(ch, eb)
			if err != nil {
				return nil, err
			}
			if d.State != summary.Open {
				continue
			}
			if d.Stream == record.StreamLog {
				// Stale open-log EBLOCKs (not hosting the resume
				// candidates) are retired so truncation can reclaim them.
				if !candidateEBs[[2]int{ch, eb}] {
					if err := c.st.CloseEBlock(ch, eb, uint64(tail.LastLSN), 0, fixLSN); err != nil {
						return nil, err
					}
				}
				continue
			}
			// Fix the write position of open user/GC EBLOCKs by probing
			// for the first unwritten WBLOCK; WBLOCKs written by actions
			// whose log records were lost count as aborted-write garbage.
			pos, err := c.dev.NextProgramPosition(ch, eb)
			if err != nil {
				return nil, err
			}
			if pos > int(d.DataWBlocks) {
				if err := c.st.AddAvail(ch, eb, (pos-int(d.DataWBlocks))*c.geo.WBlockBytes, fixLSN); err != nil {
					return nil, err
				}
			}
			if err := c.st.SetDataWBlocks(ch, eb, pos, fixLSN); err != nil {
				return nil, err
			}
		}
	}

	// Resume the log at the tail candidates and rebuild cursors.
	var resumeCands []wal.Slot
	for _, s := range tail.Candidates {
		if s.IsValid() {
			resumeCands = append(resumeCands, s)
		}
	}
	if len(resumeCands) == 0 {
		return nil, fmt.Errorf("core: log chain has no resume candidates")
	}
	c.prov.SetLogCursorFromCandidates(resumeCands)
	c.log, err = wal.Resume(sink, c.geo.WBlockBytes, tail.LastLSN+1, resumeCands, tail.Pages, wal.WithRegistry(c.reg), wal.WithTracer(c.trc))
	if err != nil {
		return nil, err
	}
	c.hintLSN.Store(uint64(tail.LastLSN + 1))
	c.prov.RebuildFromSummary()
	c.lastCkptLSN = tail.LastLSN + 1
	return c, nil
}

// replayCtx carries pass-2 state: the committed-action set and, per open
// EBLOCK, the end offset of the last replayed write, which lets replay
// reconstruct fragmentation gaps (run tails and placement padding) that
// were only ever recorded in the volatile AVAIL counters.
type replayCtx struct {
	committed map[uint64]record.ActionKind
	lastEnd   map[[2]int]int
	post      map[[2]int]bool // saw a post-flush record for this EBLOCK
}

// replayRecordLocked applies one log record during pass 2 using the
// paper's flush-LSN-guarded case analysis (§VIII-C3).
func (c *Controller) replayRecordLocked(lsn record.LSN, r record.Record, ctx *replayCtx) error {
	switch rec := r.(type) {
	case record.Update:
		_, isCommitted := ctx.committed[rec.Action]
		return c.replayWriteLocked(lsn, rec.LPID, rec.Type, 0, rec.New, isCommitted, false, ctx)
	case record.GCUpdate:
		_, isCommitted := ctx.committed[rec.Action]
		return c.replayWriteLocked(lsn, rec.LPID, rec.Type, rec.Old, rec.New, isCommitted, true, ctx)
	case record.Commit:
		if rec.SID != 0 {
			c.sess.AdvanceTo(rec.SID, rec.WSN)
		}
	case record.Garbage:
		for _, p := range rec.Pairs {
			ch, eb := p.Addr.Channel(), p.Addr.EBlock()
			if lsn > c.st.FlushLSNFor(ch, eb) {
				if err := c.st.AddAvail(ch, eb, p.Addr.Length(), lsn); err != nil {
					return err
				}
			}
		}
	case record.OpenEBlock:
		ch, eb := int(rec.Channel), int(rec.EBlock)
		flush := c.st.FlushLSNFor(ch, eb)
		d, err := c.st.Desc(ch, eb)
		if err != nil {
			return err
		}
		if lsn > flush || d.State != summary.Open {
			d = summary.Descriptor{State: summary.Open, Stream: rec.Stream, EraseCount: d.EraseCount}
			if err := c.st.SetDesc(ch, eb, d, lsn); err != nil {
				return err
			}
			c.st.ClearMeta(ch, eb)
			ctx.lastEnd[[2]int{ch, eb}] = 0
			ctx.post[[2]int{ch, eb}] = true
		}
		c.st.SetOpenLSN(ch, eb, lsn)
	case record.CloseEBlock:
		ch, eb := int(rec.Channel), int(rec.EBlock)
		flush := c.st.FlushLSNFor(ch, eb)
		d, err := c.st.Desc(ch, eb)
		if err != nil {
			return err
		}
		if d.State == summary.Used && lsn <= flush {
			return nil // case 2: already reflected
		}
		d.State = summary.Used
		d.Timestamp = rec.Timestamp
		d.DataWBlocks = rec.DataWBlocks
		d.MetaWBlocks = rec.MetaWBlocks
		if err := c.st.SetDesc(ch, eb, d, lsn); err != nil {
			return err
		}
		c.st.ClearMeta(ch, eb)
		c.st.SetOpenLSN(ch, eb, 0)
		if lsn > flush {
			// Reconstruct the fragmentation only the volatile AVAIL knew:
			// the gap between the last data byte and the metadata region,
			// plus the unusable tail after the metadata.
			w := c.geo.WBlockBytes
			frag := 0
			if le, ok := ctx.lastEnd[[2]int{ch, eb}]; ok && int(rec.DataWBlocks)*w > le {
				frag += int(rec.DataWBlocks)*w - le
			}
			frag += (c.geo.WBlocksPerEBlock() - int(rec.DataWBlocks) - int(rec.MetaWBlocks)) * w
			if frag > 0 {
				if err := c.st.AddAvail(ch, eb, frag, lsn); err != nil {
					return err
				}
			}
		}
		delete(ctx.lastEnd, [2]int{ch, eb})
		delete(ctx.post, [2]int{ch, eb})
	case record.FreeEBlock:
		ch, eb := int(rec.Channel), int(rec.EBlock)
		flush := c.st.FlushLSNFor(ch, eb)
		d, err := c.st.Desc(ch, eb)
		if err != nil {
			return err
		}
		if lsn > flush && d.State != summary.Free {
			d = summary.Descriptor{State: summary.Free, EraseCount: d.EraseCount + 1}
			if err := c.st.SetDesc(ch, eb, d, lsn); err != nil {
				return err
			}
			c.st.ClearMeta(ch, eb)
			c.st.SetOpenLSN(ch, eb, 0)
			delete(ctx.lastEnd, [2]int{ch, eb})
			delete(ctx.post, [2]int{ch, eb})
		}
	case record.SessionOpen:
		c.sess.RestoreOpen(rec.SID, rec.Tenant, rec.Priority)
	case record.SessionClose:
		c.sess.RestoreClose(rec.SID)
	}
	return nil
}

// replayWriteLocked redoes one LPAGE write record: summary-table case 1
// plus the mapping-table install (user pages committed actions only;
// table pages were handled in pass 1; aborted actions contribute their new
// addresses to AVAIL).
func (c *Controller) replayWriteLocked(lsn record.LSN, lpid addr.LPID, ty addr.PageType, old, new addr.PhysAddr, isCommitted, conditional bool, ctx *replayCtx) error {
	ch, eb := new.Channel(), new.EBlock()
	key := [2]int{ch, eb}
	flush := c.st.FlushLSNFor(ch, eb)
	d, err := c.st.Desc(ch, eb)
	if err != nil {
		return err
	}
	// Case 1 (§VIII-C3): skip only when the EBLOCK is closed and the
	// summary page already reflects this record.
	if !(d.State != summary.Open && lsn <= flush) {
		if d.State != summary.Open {
			// The write implies the EBLOCK was open; restore that.
			d = summary.Descriptor{State: summary.Open, Stream: record.StreamUser, EraseCount: d.EraseCount}
			if err := c.st.SetDesc(ch, eb, d, lsn); err != nil {
				return err
			}
			c.st.ClearMeta(ch, eb)
			c.st.SetOpenLSN(ch, eb, lsn)
			ctx.lastEnd[key] = 0
			ctx.post[key] = true
		}
		if err := c.st.AppendMeta(ch, eb, summary.MetaEntry{LPID: lpid, Type: ty, Offset: new.Offset(), Length: new.Length()}); err != nil {
			return err
		}
		if lsn > flush {
			// Reconstruct fragmentation: a gap between the previous write
			// end and this offset is run-tail padding that only the
			// volatile AVAIL counter knew about. The first post-flush
			// record measures from the flushed DataWBlocks boundary (runs
			// always end at WBLOCK boundaries before a flush); subsequent
			// records measure byte-exact from the previous record's end.
			le, ok := ctx.lastEnd[key]
			if !ctx.post[key] {
				if base := int(d.DataWBlocks) * c.geo.WBlockBytes; !ok || base > le {
					le = base
				}
				ctx.post[key] = true
			} else if !ok {
				le = 0
			}
			if new.Offset() > le {
				if err := c.st.AddAvail(ch, eb, new.Offset()-le, lsn); err != nil {
					return err
				}
			}
			w := c.geo.WBlockBytes
			wbEnd := (new.End() + w - 1) / w
			if wbEnd > int(d.DataWBlocks) {
				if err := c.st.SetDataWBlocks(ch, eb, wbEnd, lsn); err != nil {
					return err
				}
			}
		}
		if new.End() > ctx.lastEnd[key] {
			ctx.lastEnd[key] = new.End()
		}
	}
	if !isCommitted {
		// Aborted action: the provisioned space is garbage (case 3).
		if lsn > flush {
			return c.st.AddAvail(ch, eb, new.Length(), lsn)
		}
		return nil
	}
	if ty != addr.PageUser {
		return nil // table-page homes were repaired in pass 1
	}
	if conditional {
		_, err = c.mt.SetIf(lpid, old, new, lsn)
		return err
	}
	return c.mt.Set(lpid, new, lsn)
}

// scanCheckpointArea finds the most recent complete checkpoint record and
// returns it with the area cursor (EBLOCK and next free WBLOCK).
func scanCheckpointArea(c *Controller) (*ckptRecord, int, int, error) {
	type found struct {
		eb, firstWB, total int
		parts              map[int][]byte
	}
	best := (*found)(nil)
	var bestSeq uint64
	w := c.geo.WBlockBytes
	for _, eb := range []int{ckptEBlockA, ckptEBlockB} {
		var cur *found
		var curSeq uint64
		for wb := 0; wb < c.geo.WBlocksPerEBlock(); wb++ {
			raw, _, err := c.dev.ReadExtent(ckptChannel, eb, wb*w, w)
			if err != nil {
				return nil, 0, 0, err
			}
			part, err := decodeCkptPart(raw)
			if err != nil {
				cur = nil
				continue
			}
			if cur == nil || part.seq != curSeq || part.part != len(cur.parts) {
				cur = &found{eb: eb, firstWB: wb, total: part.total, parts: map[int][]byte{}}
				curSeq = part.seq
				if part.part != 0 {
					cur = nil
					continue
				}
			}
			cur.parts[part.part] = part.payload
			if len(cur.parts) == cur.total {
				if best == nil || curSeq > bestSeq {
					cp := *cur
					best, bestSeq = &cp, curSeq
				}
				cur = nil
			}
		}
	}
	if best == nil {
		return nil, 0, 0, ErrNoCheckpoint
	}
	var body []byte
	for i := 0; i < best.total; i++ {
		body = append(body, best.parts[i]...)
	}
	ck, err := decodeCkpt(body)
	if err != nil {
		return nil, 0, 0, err
	}
	return ck, best.eb, best.firstWB + best.total, nil
}
