package core

import (
	"eleos/internal/flash"
	"eleos/internal/metrics"
	"eleos/internal/trace"
)

// coreMetrics holds the controller's instrument handles, resolved once in
// newController. The write-stage histograms decompose a WriteBatch into
// the paper's system-action phases so the cost accounting (Table II's
// write-context argument) is visible at runtime: claim (WSN admission
// wait), init (provision + log plan + submit under c.mu), program wait
// (flash workers, c.mu released), force wait (commit group-commit force),
// and install (mapping/summary/session updates under c.mu).
//
// The `on` flag gates the time.Now() calls: with a disabled registry the
// handles are nil (recording is a nil-receiver branch) and `on` is false,
// so the hot path pays no clock reads either.
type coreMetrics struct {
	on bool

	claimNS       *metrics.Histogram
	initNS        *metrics.Histogram
	programWaitNS *metrics.Histogram
	forceWaitNS   *metrics.Histogram
	installNS     *metrics.Histogram
	batchPages    *metrics.Histogram

	batches       *metrics.Counter
	pages         *metrics.Counter
	staleWrites   *metrics.Counter
	mediaAborts   *metrics.Counter
	aborted       *metrics.Counter
	bytesAccepted *metrics.Counter
	bytesStored   *metrics.Counter

	gcRounds     *metrics.Counter
	gcVictims    *metrics.Counter
	gcPagesMoved *metrics.Counter
	gcBytesMoved *metrics.Counter
	gcFreed      *metrics.Counter
	migrations   *metrics.Counter

	checkpoints  *metrics.Counter
	checkpointNS *metrics.Histogram

	// Read-path instruments. reads counts every Read/ReadBatch page
	// served (hits and misses alike); flashLoads counts only the pages
	// that went to the media, so a warm cache shows flashLoads ≪ reads.
	// readNS is the wall-clock service time of one page read, whichever
	// way it was served.
	reads          *metrics.Counter
	readBatches    *metrics.Counter
	readFlashLoads *metrics.Counter
	readNotFound   *metrics.Counter
	readNS         *metrics.Histogram

	// eraseWhilePinned counts erases issued against an EBLOCK that a
	// concurrent action still had inflight or pinned — the PR 4 data-loss
	// bug class. It must stay zero; the chaos invariant checker asserts it.
	eraseWhilePinned *metrics.Counter
}

func newCoreMetrics(reg *metrics.Registry) coreMetrics {
	return coreMetrics{
		on: reg.Enabled(),

		claimNS:       reg.Histogram("core.write.claim_ns", metrics.DurationBounds()),
		initNS:        reg.Histogram("core.write.init_ns", metrics.DurationBounds()),
		programWaitNS: reg.Histogram("core.write.program_wait_ns", metrics.DurationBounds()),
		forceWaitNS:   reg.Histogram("core.write.force_wait_ns", metrics.DurationBounds()),
		installNS:     reg.Histogram("core.write.install_ns", metrics.DurationBounds()),
		batchPages:    reg.Histogram("core.write.batch_pages", metrics.SizeBounds()),

		batches:       reg.Counter("core.write.batches"),
		pages:         reg.Counter("core.write.pages"),
		staleWrites:   reg.Counter("core.write.stale"),
		mediaAborts:   reg.Counter("core.write.media_aborts"),
		aborted:       reg.Counter("core.aborted_actions"),
		bytesAccepted: reg.Counter("core.write.bytes_accepted"),
		bytesStored:   reg.Counter("core.write.bytes_stored"),

		gcRounds:     reg.Counter("core.gc.rounds"),
		gcVictims:    reg.Counter("core.gc.victim_selections"),
		gcPagesMoved: reg.Counter("core.gc.pages_moved"),
		gcBytesMoved: reg.Counter("core.gc.bytes_moved"),
		gcFreed:      reg.Counter("core.gc.eblocks_freed"),
		migrations:   reg.Counter("core.migrations"),

		checkpoints:  reg.Counter("core.checkpoints"),
		checkpointNS: reg.Histogram("core.checkpoint_ns", metrics.DurationBounds()),

		reads:          reg.Counter("read.reads"),
		readBatches:    reg.Counter("read.batches"),
		readFlashLoads: reg.Counter("read.flash_loads"),
		readNotFound:   reg.Counter("read.not_found"),
		readNS:         reg.Histogram("read.ns", metrics.DurationBounds()),

		eraseWhilePinned: reg.Counter("core.erase_while_pinned"),
	}
}

// attributeSrc maps a program's source to SrcRecovery while crash
// recovery is running, so recovery-issued WAL/checkpoint traffic shows up
// under its own accounting bucket.
func (c *Controller) attributeSrc(src flash.Source) flash.Source {
	if c.recovering.Load() {
		return flash.SrcRecovery
	}
	return src
}

// tenantWriteLocked charges one flush's logical bytes and pages to its
// session's tenant ("write.tenant.<tenant>.bytes"/".pages", label
// "default" for untagged sessions, matching the qos.* convention). The
// counter handles are cached per tenant under c.mu, so the steady state
// pays two atomic adds and a map lookup.
func (c *Controller) tenantWriteLocked(sid uint64, bytes, pages int64) {
	if !c.met.on {
		return
	}
	tenant := ""
	if sid != 0 {
		tenant, _, _ = c.sess.Tenant(sid)
	}
	if tenant == "" {
		tenant = "default"
	}
	tc := c.tenantWrites[tenant]
	if tc == nil {
		tc = &tenantWriteCounters{
			bytes: c.reg.Counter("write.tenant." + tenant + ".bytes"),
			pages: c.reg.Counter("write.tenant." + tenant + ".pages"),
		}
		c.tenantWrites[tenant] = tc
	}
	tc.bytes.Add(bytes)
	tc.pages.Add(pages)
}

// tenantWriteCounters is one tenant's cached write-attribution handles.
type tenantWriteCounters struct {
	bytes *metrics.Counter
	pages *metrics.Counter
}

// Metrics returns the controller's metrics registry (never nil; a
// controller built without Config.Metrics owns a private registry).
func (c *Controller) Metrics() *metrics.Registry { return c.reg }

// MetricsSnapshot exports every instrument in the controller's registry.
// Lock-free: safe to call concurrently with writes, GC and checkpoints.
func (c *Controller) MetricsSnapshot() metrics.Snapshot { return c.reg.Snapshot() }

// GCPolicyName returns the active GC victim-selection policy's name
// (the stats_full "gc.policy" label).
func (c *Controller) GCPolicyName() string { return c.gcPolicy.Name() }

// Tracer returns the controller's flight recorder (never nil; a
// controller built without Config.Trace owns a private always-on
// recorder).
func (c *Controller) Tracer() *trace.Recorder { return c.trc }

// TraceDump snapshots the flight recorder. Lock-free: safe to call
// concurrently with writes, GC and checkpoints.
func (c *Controller) TraceDump() trace.Dump { return c.trc.Dump() }

// ActiveActions returns the number of in-progress system actions. After
// traffic quiesces — even traffic that suffered injected media failures —
// this must be zero, or an abort path leaked an active-table entry and
// log truncation is pinned forever.
func (c *Controller) ActiveActions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.active)
}

// InflightEBlocks returns the number of EBLOCKs with programs still queued
// on the device workers. Zero after traffic quiesces.
func (c *Controller) InflightEBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}

// PinnedEBlocks returns the number of EBLOCKs pinned by actions in their
// commit-force window (programs landed, mapping install pending). Zero
// after traffic quiesces; a leak here re-opens the GC-erases-fresh-EBLOCK
// bug that the pinning protocol closed.
func (c *Controller) PinnedEBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pinned)
}
