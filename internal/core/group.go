package core

import (
	"time"

	"eleos/internal/bufpool"
	"eleos/internal/provision"
	"eleos/internal/session"
	"eleos/internal/trace"
)

// SubFlush is one host flush submitted as part of a coalesced group:
// the network front-end merges small pending flushes from different
// connections into one controller batch, and each keeps its own
// (SID, WSN) ack semantics, trace attribution and error through Err.
// Pages may be zero-copy views into pooled frames; the caller keeps
// those frames alive until WriteBatchGroup returns.
type SubFlush struct {
	SID     uint64
	WSN     uint64
	TraceID uint64 // flight-recorder trace ID (0 = assign when tracing)
	Pages   []LPage
	Err     error // per-sub outcome, valid after WriteBatchGroup returns
}

// WriteBatchGroup durably writes several independent flushes as one
// system action sharing a single provision/program/commit cycle — the
// server-side analogue of the paper's batched-write interface, applied
// across connections. Each sub-flush keeps its own semantics:
//
//   - WSN claims are taken per sub, exactly as WriteBatch takes them. A
//     stale WSN is re-ACKed (Err = nil) without joining the group; an
//     early WSN, or a duplicate of an in-flight one, is deferred to the
//     individual path after the group — a gap in one session must never
//     stall every other connection's flush.
//   - One Commit record is appended per sub, all under the group's
//     action id, so every merged (sid, wsn) commits atomically with the
//     group and recovery advances each session independently.
//   - A malformed sub is rejected alone (its Err set, claim released);
//     its groupmates still write.
//
// On return every sub's Err is set. The group's media failures and
// crash outcomes apply to all merged subs — they shared the action.
func (c *Controller) WriteBatchGroup(subs []*SubFlush) {
	switch len(subs) {
	case 0:
		return
	case 1:
		s := subs[0]
		s.Err = c.WriteBatchTraced(s.SID, s.WSN, s.TraceID, s.Pages)
		return
	}
	tracing := c.trc.Enabled()
	if tracing {
		for _, s := range subs {
			if s.TraceID == 0 {
				s.TraceID = c.trc.NewTraceID()
			}
			c.trc.Emit(trace.KBatchStart, s.TraceID, s.SID, s.WSN, int64(len(s.Pages)), 0)
		}
	}
	included, deferred := c.claimGroup(subs)
	if len(included) > 0 {
		c.writeGroup(included)
	}
	for _, s := range deferred {
		s.Err = c.writeBatch(s.SID, s.WSN, s.TraceID, s.Pages)
	}
	if tracing {
		for _, s := range subs {
			var fail int64
			if s.Err != nil {
				fail = 1
			}
			c.trc.Emit(trace.KBatchEnd, s.TraceID, s.SID, s.WSN, fail, 0)
		}
	}
}

// claimGroup runs WSN admission for every sub under one lock
// acquisition. It partitions the subs into those claimed for the group
// write and those deferred to the individual (waiting) path; stale and
// erroneous subs are finished in place.
func (c *Controller) claimGroup(subs []*SubFlush) (included, deferred []*SubFlush) {
	timed := c.met.on || c.trc.Enabled()
	var tClaim time.Time
	if timed {
		tClaim = time.Now()
	}
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		for _, s := range subs {
			s.Err = ErrCrashed
		}
		return nil, nil
	}
	for _, s := range subs {
		if len(s.Pages) == 0 {
			s.Err = ErrEmptyBatch
			continue
		}
		if s.SID == 0 {
			included = append(included, s)
			continue
		}
		v, _, err := c.sess.Check(s.SID, s.WSN)
		if err != nil {
			s.Err = err
			continue
		}
		key := [2]uint64{s.SID, s.WSN}
		switch {
		case v == session.Stale:
			// Already applied; the re-ACK is the success path (§III-A2).
			c.stats.StaleWrites++
			c.met.staleWrites.Inc()
			s.Err = nil
		case v == session.Apply && !c.wsnInflight[key]:
			c.wsnInflight[key] = true
			included = append(included, s)
		default:
			deferred = append(deferred, s)
		}
	}
	c.mu.Unlock()
	if timed {
		if c.met.on {
			c.met.claimNS.ObserveDuration(time.Since(tClaim))
		}
		for _, s := range included {
			c.trc.Span(trace.KClaim, s.TraceID, s.SID, s.WSN, tClaim, 0, 0)
		}
	}
	return included, deferred
}

// writeGroup lays the claimed subs into one pooled program buffer and
// runs them as a single action. Validation is per sub so one malformed
// flush drops out alone; everything after layout is shared.
func (c *Controller) writeGroup(subs []*SubFlush) {
	valid := make([]*SubFlush, 0, len(subs))
	total, npages := 0, 0
	for _, s := range subs {
		n, err := validatePages(s.Pages)
		if err != nil {
			s.Err = err
			c.releaseClaim(s)
			continue
		}
		total += n
		npages += len(s.Pages)
		valid = append(valid, s)
	}
	if len(valid) == 0 {
		return
	}

	a := &action{}
	a.pb = bufpool.Get(total)
	a.buf = a.pb.Bytes()
	a.bps = make([]provision.BatchPage, 0, npages)
	a.subs = make([]flushRef, len(valid))
	off := 0
	for i, s := range valid {
		a.subs[i] = flushRef{sid: s.SID, wsn: s.WSN, tid: s.TraceID, pages: len(s.Pages), bytes: logicalBytes(s.Pages)}
		a.bps, off = layoutPages(a.buf, a.bps, off, s.Pages)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	if c.crashed {
		err = ErrCrashed
	} else {
		err = c.writeUser(a)
	}
	a.pb.Release()
	a.pb = nil
	for _, s := range valid {
		s.Err = err
		if s.SID != 0 {
			delete(c.wsnInflight, [2]uint64{s.SID, s.WSN})
		}
	}
	c.wsnCond.Broadcast()
	if err == nil {
		c.maybeGCLocked()
		c.maybeCheckpointLocked()
	}
}

// releaseClaim drops a claimed (sid, wsn) whose sub failed after
// admission, so a retry of the same WSN can be admitted again.
func (c *Controller) releaseClaim(s *SubFlush) {
	if s.SID == 0 {
		return
	}
	c.mu.Lock()
	delete(c.wsnInflight, [2]uint64{s.SID, s.WSN})
	c.wsnCond.Broadcast()
	c.mu.Unlock()
}
