package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eleos/internal/addr"
	"eleos/internal/flash"
)

// Concurrent write-path stress tests: many writer goroutines, each with
// its own durable session, pipelining batches through the controller while
// GC and auto-checkpointing run. All of these must pass `go test -race`.

const (
	stressWriters     = 8
	stressLPIDsPerSID = 1 << 20 // LPID space per writer
)

// stressLPID returns writer w's unique LPID for its wsn'th batch.
func stressLPID(w int, wsn uint64) addr.LPID {
	return addr.LPID(uint64(w+1)*stressLPIDsPerSID + wsn)
}

// stressChurnLPID is writer w's constantly-overwritten page (GC fodder).
func stressChurnLPID(w int) addr.LPID {
	return addr.LPID(uint64(w+1) * stressLPIDsPerSID)
}

// stressBatch builds writer w's wsn'th batch: one unique page plus one
// overwrite of the writer's churn page, variable sizes.
func stressBatch(w int, wsn uint64) []LPage {
	size := 200 + int((uint64(w)*131+wsn*97)%1800)
	return []LPage{
		{LPID: stressLPID(w, wsn), Data: pageContent(uint64(stressLPID(w, wsn)), wsn, size)},
		{LPID: stressChurnLPID(w), Data: pageContent(uint64(stressChurnLPID(w)), wsn, 8000)},
	}
}

func stressController(t *testing.T) (*Controller, *flash.Device) {
	t.Helper()
	geo := flash.Geometry{
		Channels: 4, EBlocksPerChannel: 24,
		EBlockBytes: 256 << 10, WBlockBytes: 16 << 10, RBlockBytes: 4 << 10,
	}
	dev := flash.MustNewDevice(geo, flash.Latency{})
	cfg := testConfig()
	cfg.GCFreeFraction = 0.25 // enough pressure that GC runs during the test
	cfg.AutoCheckpointLogBytes = 1 << 20
	c, err := Format(dev, cfg)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return c, dev
}

// runStressWriters starts one goroutine per session writing batches in WSN
// order until its batch count is exhausted or the controller crashes. It
// returns per-writer highest WSN successfully acknowledged.
func runStressWriters(t *testing.T, c *Controller, sids []uint64, batches uint64) []uint64 {
	t.Helper()
	acked := make([]uint64, len(sids))
	errs := make(chan error, len(sids))
	var wg sync.WaitGroup
	for w := range sids {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for wsn := uint64(1); wsn <= batches; wsn++ {
				err := c.WriteBatch(sids[w], wsn, stressBatch(w, wsn))
				if errors.Is(err, ErrCrashed) {
					return
				}
				if err != nil {
					errs <- fmt.Errorf("writer %d wsn %d: %v", w, wsn, err)
					return
				}
				acked[w] = wsn
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	return acked
}

// TestConcurrentSessions runs the full pipeline with GC and checkpoints on
// and verifies every acknowledged batch afterwards.
func TestConcurrentSessions(t *testing.T) {
	c, _ := stressController(t)
	sids := make([]uint64, stressWriters)
	for w := range sids {
		sid, err := c.OpenSession()
		if err != nil {
			t.Fatalf("OpenSession: %v", err)
		}
		sids[w] = sid
	}
	const batches = 150
	acked := runStressWriters(t, c, sids, batches)

	st := c.Stats()
	if st.GCRounds == 0 {
		t.Logf("note: GC never triggered (rounds=0, freed=%d)", st.GCEBlocksFreed)
	}
	for w, sid := range sids {
		if acked[w] != batches {
			t.Fatalf("writer %d acked %d/%d batches", w, acked[w], batches)
		}
		high, err := c.SessionHighestWSN(sid)
		if err != nil {
			t.Fatalf("SessionHighestWSN(%d): %v", sid, err)
		}
		if high != batches {
			t.Fatalf("session %d highest WSN %d, want %d", sid, high, batches)
		}
		for wsn := uint64(1); wsn <= batches; wsn++ {
			lpid := stressLPID(w, wsn)
			size := 200 + int((uint64(w)*131+wsn*97)%1800)
			checkRead(t, c, lpid, pageContent(uint64(lpid), wsn, size))
		}
		churn := stressChurnLPID(w)
		checkRead(t, c, churn, pageContent(uint64(churn), batches, 8000))
	}
	// A duplicate WSN must be re-ACKed without re-applying.
	if err := c.WriteBatch(sids[0], 3, stressBatch(0, 3)); err != nil {
		t.Fatalf("stale WSN replay: %v", err)
	}
}

// TestConcurrentCrashRecovery crashes the controller while the writer
// fleet is mid-flight, recovers, and verifies that exactly each session's
// committed prefix survived: everything at or below the recovered highest
// WSN readable with the right content, everything above it absent.
func TestConcurrentCrashRecovery(t *testing.T) {
	c, dev := stressController(t)
	sids := make([]uint64, stressWriters)
	for w := range sids {
		sid, err := c.OpenSession()
		if err != nil {
			t.Fatalf("OpenSession: %v", err)
		}
		sids[w] = sid
	}

	// Pull the plug while the fleet is running. The writers stop on
	// ErrCrashed; Wait below joins them all before recovery starts.
	crashDone := make(chan struct{})
	go func() {
		defer close(crashDone)
		time.Sleep(5 * time.Millisecond)
		c.Crash()
	}()
	acked := runStressWriters(t, c, sids, 400)
	<-crashDone
	if !c.Crashed() {
		t.Fatal("controller did not crash")
	}

	c2, err := Open(dev, testConfig())
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	for w, sid := range sids {
		high, err := c2.SessionHighestWSN(sid)
		if err != nil {
			t.Fatalf("SessionHighestWSN(%d): %v", sid, err)
		}
		// The committed prefix can run at most one batch ahead of the acks
		// (a commit can be durable before WriteBatch returns), never behind.
		if high < acked[w] {
			t.Fatalf("writer %d: recovered WSN %d below acknowledged %d", w, high, acked[w])
		}
		for wsn := uint64(1); wsn <= high; wsn++ {
			lpid := stressLPID(w, wsn)
			size := 200 + int((uint64(w)*131+wsn*97)%1800)
			checkRead(t, c2, lpid, pageContent(uint64(lpid), wsn, size))
		}
		if high > 0 {
			churn := stressChurnLPID(w)
			checkRead(t, c2, churn, pageContent(uint64(churn), high, 8000))
		}
		lost := stressLPID(w, high+1)
		ok, err := c2.Exists(lost)
		if err != nil {
			t.Fatalf("Exists(%d): %v", lost, err)
		}
		if ok {
			t.Fatalf("writer %d: uncommitted WSN %d visible after recovery", w, high+1)
		}
	}

	// The recovered controller must accept the next WSN in each session.
	for w, sid := range sids {
		high, err := c2.SessionHighestWSN(sid)
		if err != nil {
			t.Fatal(err)
		}
		if err := c2.WriteBatch(sid, high+1, stressBatch(w, high+1)); err != nil {
			t.Fatalf("writer %d: post-recovery write: %v", w, err)
		}
	}
}

// TestConcurrentDuplicateWSN hammers the same (sid, wsn) from several
// goroutines: exactly one application must win and the rest be absorbed as
// stale or blocked duplicates, never a double-apply or a deadlock.
func TestConcurrentDuplicateWSN(t *testing.T) {
	c, _ := stressController(t)
	sid, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	const batches = 40
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for wsn := uint64(1); wsn <= batches; wsn++ {
				if err := c.WriteBatch(sid, wsn, stressBatch(0, wsn)); err != nil {
					t.Errorf("wsn %d: %v", wsn, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	high, err := c.SessionHighestWSN(sid)
	if err != nil {
		t.Fatal(err)
	}
	if high != batches {
		t.Fatalf("highest WSN %d, want %d", high, batches)
	}
	for wsn := uint64(1); wsn <= batches; wsn++ {
		lpid := stressLPID(0, wsn)
		size := 200 + int((wsn*97)%1800)
		checkRead(t, c, lpid, pageContent(uint64(lpid), wsn, size))
	}
}
