package costmodel

import "testing"

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.DRAMPerGB = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero DRAM price accepted")
	}
	bad = DefaultParams()
	bad.CacheFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("cache fraction > 1 accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	p := DefaultParams()
	const dataset = 1000.0 // GB

	// (a) Flash capacity is cheaper than DRAM.
	if p.SSDCost(dataset, 0, 1) >= p.MemoryCost(dataset, 0) {
		t.Fatal("at zero ops, SSD capacity should be cheaper")
	}
	// (b) Per-op execution is more expensive on the SSD path.
	low := 1e3
	memSlope := (p.MemoryCost(dataset, 2*low) - p.MemoryCost(dataset, low)) / low
	ssdSlope := (p.SSDCost(dataset, 2*low, 1) - p.SSDCost(dataset, low, 1)) / low
	if ssdSlope <= memSlope {
		t.Fatal("SSD execution slope should be steeper")
	}
	// (c) There is a crossover where memory becomes cheaper, and reducing
	// the I/O cost moves it to a higher operation rate.
	x1, ok1 := p.Crossover(dataset, 1, 1e9, 1)
	if !ok1 {
		t.Fatal("no crossover with conventional I/O cost")
	}
	x2, ok2 := p.Crossover(dataset, 1, 1e9, 1.0/4.0) // I/O cost reduced 4x -> ioScale 0.25
	if !ok2 {
		t.Fatal("no crossover with reduced I/O cost")
	}
	if x2 <= x1 {
		t.Fatalf("reducing I/O cost should push the crossover out: %.0f -> %.0f", x1, x2)
	}
}

func TestReducedCurveBetweenMemAndSSD(t *testing.T) {
	p := DefaultParams()
	rates := []float64{1e3, 1e4, 1e5, 1e6}
	mem, ssd, red := p.Series(1000, rates, 4)
	if len(mem) != len(rates) || len(ssd) != len(rates) || len(red) != len(rates) {
		t.Fatal("series lengths wrong")
	}
	for i := range rates {
		if red[i].CostUSD >= ssd[i].CostUSD {
			t.Fatalf("reduced-I/O curve should be below SSD at %.0f ops", rates[i])
		}
		if red[i].CostUSD <= 0 || mem[i].CostUSD <= 0 {
			t.Fatal("non-positive costs")
		}
	}
	// Monotone in ops.
	for i := 1; i < len(rates); i++ {
		if ssd[i].CostUSD <= ssd[i-1].CostUSD || mem[i].CostUSD <= mem[i-1].CostUSD {
			t.Fatal("costs should increase with rate")
		}
	}
}

func TestCrossoverNotFound(t *testing.T) {
	p := DefaultParams()
	if _, ok := p.Crossover(1000, 1, 10, 1); ok {
		t.Fatal("crossover should not exist in a tiny range")
	}
}
